package factorml

// Trace-overhead benchmarks: the span primitives are timed on the
// untraced path (which must add zero allocations — the predict hot path
// calls trace.Start unconditionally) and on a fully sampled request, and
// Engine.PredictCtx is timed with and without a recording trace on the
// context. Measurements land in BENCH_trace.json (see TestMain) with
// allocs/op alongside ns/op so an allocation regression on the disabled
// path fails loudly in CI, not quietly in production.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"factorml/internal/data"
	"factorml/internal/nn"
	"factorml/internal/serve"
	"factorml/internal/trace"
)

// traceBenchRecord is one overhead measurement in BENCH_trace.json.
type traceBenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

var traceBenchRecorder struct {
	mu      sync.Mutex
	order   []string
	records map[string]traceBenchRecord
}

func recordTraceBench(rec traceBenchRecord) {
	traceBenchRecorder.mu.Lock()
	defer traceBenchRecorder.mu.Unlock()
	if traceBenchRecorder.records == nil {
		traceBenchRecorder.records = make(map[string]traceBenchRecord)
	}
	if _, seen := traceBenchRecorder.records[rec.Name]; !seen {
		traceBenchRecorder.order = append(traceBenchRecorder.order, rec.Name)
	}
	traceBenchRecorder.records[rec.Name] = rec
}

// flushTraceBench writes the overhead measurements to BENCH_trace.json
// (called from TestMain).
func flushTraceBench() {
	traceBenchRecorder.mu.Lock()
	records := make([]traceBenchRecord, 0, len(traceBenchRecorder.order))
	for _, key := range traceBenchRecorder.order {
		records = append(records, traceBenchRecorder.records[key])
	}
	traceBenchRecorder.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		Unit    string             `json:"unit"`
		NumCPU  int                `json:"num_cpu"`
		Results []traceBenchRecord `json:"results"`
	}{Unit: "ns/op", NumCPU: runtime.NumCPU(), Results: records}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_trace.json", append(blob, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_trace.json: %v\n", err)
	}
}

// benchAllocs runs f once under AllocsPerRun to attribute allocations
// per op for the JSON artifact (b.ReportAllocs covers the console).
func benchAllocs(f func()) float64 { return testing.AllocsPerRun(1, f) }

// BenchmarkTraceSpanUntraced times trace.Start/SetAttr/End on a context
// with no sampled trace — the shape of every span call on the predict
// hot path when tracing is off or the request was not sampled. The
// benchmark fails outright if this path allocates.
func BenchmarkTraceSpanUntraced(b *testing.B) {
	ctx := context.Background()
	op := func() {
		_, sp := trace.Start(ctx, "bench.span")
		sp.SetAttr("k", "v")
		sp.End()
	}
	if allocs := benchAllocs(op); allocs != 0 {
		b.Fatalf("untraced span path allocates %.0f objects/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	recordTraceBench(traceBenchRecord{
		Name:    "trace_span/untraced",
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	})
}

// BenchmarkTraceSpanSampled times a full sampled request lifecycle:
// StartRequest, two nested spans with an attribute, Finish into the
// flight recorder.
func BenchmarkTraceSpanSampled(b *testing.B) {
	tracer := trace.New(trace.Config{SampleFraction: 1, Recent: 8, Slow: 8})
	op := func() {
		ctx, tr, _ := tracer.StartRequest(context.Background(), "bench", "")
		ctx, outer := trace.Start(ctx, "outer")
		_, inner := trace.Start(ctx, "inner")
		inner.SetAttr("k", "v")
		inner.End()
		outer.End()
		tr.Finish(200)
	}
	allocs := benchAllocs(op)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	recordTraceBench(traceBenchRecord{
		Name:        "trace_span/sampled_request",
		NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp: allocs,
	})
}

// BenchmarkPredictTraceOverhead times Engine.PredictCtx over the same
// batch with an untraced context and with a fully sampled trace, so the
// BENCH_trace.json artifact pins the cost of span assembly relative to
// the undisturbed hot path.
func BenchmarkPredictTraceOverhead(b *testing.B) {
	db := benchDB(b)
	spec, err := data.Generate(db, "tr", data.SynthConfig{
		NS: 1000, NR: []int{50}, DS: 6, DR: []int{6},
		Seed: 11, WithTarget: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	nres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{8}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	reg, err := serve.NewRegistry(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.SaveNN("bench-tr", nres.Net); err != nil {
		b.Fatal(err)
	}
	eng, err := serve.NewEngine(reg, spec.Plan(), serve.EngineConfig{NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	var rows []serve.Row
	sc := spec.S.NewScanner()
	for sc.Next() && len(rows) < 64 {
		tp := sc.Tuple()
		rows = append(rows, serve.Row{
			Fact: append([]float64{}, tp.Features...),
			FKs:  append([]int64{}, tp.Keys[1:]...),
		})
	}
	if err := sc.Err(); err != nil {
		b.Fatal(err)
	}

	tracer := trace.New(trace.Config{SampleFraction: 1, Recent: 8, Slow: 8})
	cases := []struct {
		name string
		ctx  func() (context.Context, *trace.Trace)
	}{
		{"untraced", func() (context.Context, *trace.Trace) { return context.Background(), nil }},
		{"traced", func() (context.Context, *trace.Trace) {
			ctx, tr, _ := tracer.StartRequest(context.Background(), "bench", "")
			return ctx, tr
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			op := func() {
				ctx, tr := tc.ctx()
				preds, _, err := eng.PredictCtx(ctx, "bench-tr", rows)
				if err != nil {
					b.Fatal(err)
				}
				if preds[0].Err != "" {
					b.Fatal(preds[0].Err)
				}
				tr.Finish(200)
			}
			allocs := benchAllocs(op)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
			recordTraceBench(traceBenchRecord{
				Name:        "predict_64rows/" + tc.name,
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				AllocsPerOp: allocs,
			})
		})
	}
}
