#!/usr/bin/env bash
# Streaming smoke test: datagen → train -save → boot cmd/serve with the
# change feed enabled → ingest deltas over HTTP → verify that a dimension
# update changes served predictions immediately, that the refresh-rows
# policy triggers an automatic incremental refresh which republishes the
# model (version bump, served without a restart), and that /statsz carries
# the stream counters. Exercises the full path through the real binaries.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/datagen" ./cmd/datagen
go build -o "$tmp/train" ./cmd/train
go build -o "$tmp/serve" ./cmd/serve

echo "== rejecting invalid datagen flags"
if "$tmp/datagen" -db "$tmp/bad" -ns -5 2>"$tmp/err"; then
    echo "datagen accepted -ns -5" >&2; exit 1
fi
grep -q 'ns must be >= 1' "$tmp/err"
if "$tmp/datagen" -db "$tmp/bad" -dr -3 2>"$tmp/err"; then
    echo "datagen accepted -dr -3" >&2; exit 1
fi
grep -q 'dr must be >= 1' "$tmp/err"

echo "== generating tiny synthetic star schema"
"$tmp/datagen" -db "$tmp/db" -ns 600 -nr 20 -ds 3 -dr 3 -seed 1

echo "== training and saving models"
"$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model gmm -algo f \
    -k 2 -iters 2 -save smoke-gmm
"$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model nn -algo f \
    -hidden 6 -epochs 2 -save smoke-nn

echo "== booting serve with streaming ingestion (-fact, auto-refresh at 30 rows)"
"$tmp/serve" -db "$tmp/db" -dims synth_R1 -fact synth_S -refresh-rows 30 \
    -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^factorml-serve listening on \([^ ]*\).*/\1/p' "$tmp/serve.log")"
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
# The listener answers before the model registry finishes loading; wait
# for readiness so the checks below see the fully booted server.
for _ in $(seq 1 50); do
    curl -sf "http://$addr/readyz" >/dev/null && break
    sleep 0.1
done
curl -sf "http://$addr/readyz" >/dev/null || { echo "server never became ready" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q 'streaming ingestion enabled' "$tmp/serve.log"
echo "   serving on $addr"

curl_json() { curl -sSf "$@"; }

echo "== /healthz"
curl_json "http://$addr/healthz" | grep -q '"status": "ok"'

predict_gmm() {
    curl_json -X POST "http://$addr/v1/models/smoke-gmm/predict" \
        -H 'Content-Type: application/json' \
        -d '{"rows":[{"fact":[0.1,0.2,0.3],"fks":[5]}]}'
}

echo "== baseline prediction (fk 5)"
p1="$(predict_gmm)"
echo "   $p1"
grep -q '"version": 1' <<<"$p1"

echo "== dimension update reaches served predictions immediately"
curl_json -X POST "http://$addr/v1/ingest" -H 'Content-Type: application/json' \
    -d '{"dims":[{"table":"synth_R1","rid":5,"features":[9.5,-9.5,4.0]}]}' \
    | grep -q '"dim_updates": 1'
p2="$(predict_gmm)"
echo "   $p2"
if [ "$p1" = "$p2" ]; then
    echo "prediction unchanged after dimension update" >&2; exit 1
fi

echo "== ingesting 35 fact rows trips the 30-row auto-refresh"
rows=""
for i in $(seq 0 34); do
    [ -n "$rows" ] && rows="$rows,"
    rows="$rows{\"sid\":$((600+i)),\"fks\":[$((i%20))],\"features\":[0.5,-0.5,1.0],\"target\":1}"
done
ingest="$(curl_json -X POST "http://$addr/v1/ingest" -H 'Content-Type: application/json' \
    -d "{\"facts\":[$rows]}")"
echo "   $ingest"
grep -q '"refresh_triggered": true' <<<"$ingest"

echo "== refreshed model is served without a restart (version bump)"
p3="$(predict_gmm)"
echo "   $p3"
grep -q '"version": 2' <<<"$p3"

echo "== invalid batches are rejected"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/ingest" \
    -H 'Content-Type: application/json' -d '{"facts":[{"sid":1,"fks":[999],"features":[1,2,3]}]}')"
[ "$code" = "400" ] || { echo "unknown fk accepted ($code)" >&2; exit 1; }

echo "== /statsz carries the stream counters"
stats="$(curl_json "http://$addr/statsz")"
echo "   $stats"
grep -q '"stream"' <<<"$stats"
grep -q '"facts_ingested": 35' <<<"$stats"
grep -q '"dim_updates": 1' <<<"$stats"
grep -q '"auto_refreshes": 1' <<<"$stats"

echo "stream smoke OK"
