#!/usr/bin/env bash
# Multi-process crash smoke: datagen → train -save (baseline captured
# into lineage) → boot cmd/serve with the write-ahead log → drive ingest
# traffic with cmd/loadgen and explicit acked batches → kill -9 the
# server MID-TRAFFIC → reboot on the same directory and assert:
#
#   - /readyz comes back up and the log names the recovered LSN;
#   - zero acked-record loss: the recovered LSN is at least the WAL LSN
#     observed via /statsz after the last acknowledged ingest;
#   - /v1/models/{name}/health still answers with the same lineage
#     (training rows) as before the crash;
#   - the rebooted server keeps serving: dimension updates change
#     predictions and /metrics carries the WAL gauges.
#
# The kill is a real SIGKILL on a separate OS process — nothing flushes,
# exactly the failure the WAL exists for.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
loadgen_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    [ -n "$loadgen_pid" ] && kill -9 "$loadgen_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/datagen" ./cmd/datagen
go build -o "$tmp/train" ./cmd/train
go build -o "$tmp/serve" ./cmd/serve
go build -o "$tmp/loadgen" ./cmd/loadgen

echo "== rejecting durability flags without -wal-dir"
if "$tmp/serve" -db "$tmp/nope" -dims synth_R1 -fsync-every 4 2>"$tmp/err"; then
    echo "serve accepted -fsync-every without -wal-dir" >&2; exit 1
fi
grep -q 'wal-dir' "$tmp/err"

echo "== generating tiny synthetic star schema"
"$tmp/datagen" -db "$tmp/db" -ns 600 -nr 20 -ds 3 -dr 3 -seed 1

echo "== training and saving a model (baseline captured into lineage)"
"$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model gmm -algo f \
    -k 2 -iters 2 -save smoke-gmm

boot_serve() {
    "$tmp/serve" -db "$tmp/db" -dims synth_R1 -fact synth_S -refresh-rows 30 \
        -wal-dir "$tmp/db.wal" -fsync-every 1 \
        -drift-warn 0.1 -drift-psi 0.25 -staleness-max-rows 1000000 -health-sample 1 \
        -addr 127.0.0.1:0 >"$1" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr="$(sed -n 's/^factorml-serve listening on \([^ ]*\).*/\1/p' "$1")"
        [ -n "$addr" ] && break
        kill -0 "$server_pid" 2>/dev/null || { cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "server never reported its address" >&2; cat "$1" >&2; exit 1; }
    for _ in $(seq 1 50); do
        curl -sf "http://$addr/readyz" >/dev/null && break
        sleep 0.1
    done
    curl -sf "http://$addr/readyz" >/dev/null || { echo "server never became ready" >&2; cat "$1" >&2; exit 1; }
    grep -q 'durability: wal-dir=' "$1"
}

curl_json() { curl -sSf "$@"; }

json_int() { # json_int <field> — first integer value of "field" on stdin
    grep -o "\"$1\": [0-9]*" | head -1 | grep -o '[0-9]*$'
}

predict_gmm() {
    curl_json -X POST "http://$addr/v1/models/smoke-gmm/predict" \
        -H 'Content-Type: application/json' \
        -d '{"rows":[{"fact":[0.1,0.2,0.3],"fks":[5]}]}'
}

echo "== booting serve with the WAL enabled"
boot_serve "$tmp/serve1.log"
echo "   serving on $addr"

echo "== health lineage before the crash"
h1="$(curl_json "http://$addr/v1/models/smoke-gmm/health")"
rows_before="$(json_int training_rows <<<"$h1")"
[ -n "$rows_before" ] || { echo "no training_rows in health: $h1" >&2; exit 1; }
echo "   training_rows=$rows_before"

echo "== ingest traffic: loadgen in the background, explicit acked batches in front"
"$tmp/loadgen" -url "http://$addr" -mix ingest=1 -rates 150 -step 4s \
    -fact-width 3 -fk-max 20 -ingest-facts 8 -sid-start 2000000 -seed 7 \
    -trace-fraction 0 -out "$tmp/load.json" >"$tmp/loadgen.log" 2>&1 &
loadgen_pid=$!
sleep 1

curl_json -X POST "http://$addr/v1/ingest" -H 'Content-Type: application/json' \
    -d '{"dims":[{"table":"synth_R1","rid":5,"features":[9.5,-9.5,4.0]}]}' \
    | grep -q '"dim_updates": 1'
rows=""
for i in $(seq 0 34); do
    [ -n "$rows" ] && rows="$rows,"
    rows="$rows{\"sid\":$((600+i)),\"fks\":[$((i%20))],\"features\":[0.5,-0.5,1.0],\"target\":1}"
done
curl_json -X POST "http://$addr/v1/ingest" -H 'Content-Type: application/json' \
    -d "{\"facts\":[$rows]}" | grep -q '"facts": 35'

# Every record at or below this LSN has been acknowledged — and with
# -fsync-every 1, fsynced. None of them may be lost. The lineage rows
# observed here came from refreshes over durable batches, so recovery
# may only grow the count (replay re-fires the same refreshes, plus
# whatever loadgen lands between this probe and the kill).
acked_lsn="$(curl_json "http://$addr/statsz" | json_int last_lsn)"
[ -n "$acked_lsn" ] && [ "$acked_lsn" -ge 2 ] || { echo "bad acked LSN: $acked_lsn" >&2; exit 1; }
rows_mid="$(curl_json "http://$addr/v1/models/smoke-gmm/health" | json_int training_rows)"
echo "   acked through LSN $acked_lsn (lineage rows $rows_mid)"

echo "== kill -9 mid-traffic"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
wait "$loadgen_pid" 2>/dev/null || true # loadgen sees refused connections; that is the point
loadgen_pid=""

echo "== rebooting on the crashed directory"
boot_serve "$tmp/serve2.log"
recovered="$(sed -n 's/.*recovered to LSN \([0-9]*\)).*/\1/p' "$tmp/serve2.log")"
echo "   recovered to LSN $recovered (acked through $acked_lsn)"
[ -n "$recovered" ] || { echo "reboot log names no recovered LSN" >&2; cat "$tmp/serve2.log" >&2; exit 1; }
if [ "$recovered" -lt "$acked_lsn" ]; then
    echo "acked-record loss: recovered LSN $recovered < acked LSN $acked_lsn" >&2
    exit 1
fi

echo "== health lineage is consistent after recovery"
h2="$(curl_json "http://$addr/v1/models/smoke-gmm/health")"
rows_after="$(json_int training_rows <<<"$h2")"
if [ -z "$rows_after" ] || [ "$rows_after" -lt "$rows_mid" ]; then
    echo "lineage lost rows across the crash: training_rows $rows_mid -> $rows_after" >&2
    exit 1
fi
echo "   training_rows $rows_before -> $rows_mid (pre-kill) -> $rows_after (recovered)"

echo "== rebooted server keeps serving"
p1="$(predict_gmm)"
curl_json -X POST "http://$addr/v1/ingest" -H 'Content-Type: application/json' \
    -d '{"dims":[{"table":"synth_R1","rid":5,"features":[-3.0,7.0,-1.5]}]}' \
    | grep -q '"dim_updates": 1'
p2="$(predict_gmm)"
if [ "$p1" = "$p2" ]; then
    echo "prediction unchanged after post-recovery dimension update" >&2; exit 1
fi

echo "== WAL telemetry is live on the rebooted server"
curl_json "http://$addr/statsz" | grep -q '"wal"'
curl_json "http://$addr/metrics" | grep -q '^factorml_wal_last_lsn '

echo "crash smoke OK"
