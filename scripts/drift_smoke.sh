#!/usr/bin/env bash
# Drift smoke test: datagen → train -save (which captures the training
# baseline into the model's lineage) → boot cmd/serve with the change
# feed and health monitoring → verify the health endpoint answers
# "fresh" at boot, ingest a deliberately shifted delta over HTTP, and
# assert the verdict flips to "drifting" with the PSI gauges visible in
# /metrics and the health section in /statsz. Exercises the full
# monitoring path through the real binaries.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/datagen" ./cmd/datagen
go build -o "$tmp/train" ./cmd/train
go build -o "$tmp/serve" ./cmd/serve

echo "== generating tiny synthetic star schema"
"$tmp/datagen" -db "$tmp/db" -ns 600 -nr 20 -ds 3 -dr 3 -seed 1

echo "== training and saving a model (baseline captured into lineage)"
"$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model gmm -algo f \
    -k 2 -iters 2 -save drift-gmm

echo "== rejecting invalid monitoring flags"
if "$tmp/serve" -db "$tmp/db" -dims synth_R1 -drift-warn 0.5 -drift-psi 0.2 2>"$tmp/err"; then
    echo "serve accepted -drift-warn > -drift-psi" >&2; exit 1
fi
grep -q 'drift-warn' "$tmp/err"
if "$tmp/serve" -db "$tmp/db" -dims synth_R1 -health-sample 1.5 2>"$tmp/err"; then
    echo "serve accepted -health-sample 1.5" >&2; exit 1
fi
grep -q 'health-sample' "$tmp/err"

echo "== booting serve with monitoring (drift-psi 0.25, staleness at 5000 rows)"
"$tmp/serve" -db "$tmp/db" -dims synth_R1 -fact synth_S \
    -drift-warn 0.1 -drift-psi 0.25 -staleness-max-rows 5000 -health-sample 1 \
    -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^factorml-serve listening on \([^ ]*\).*/\1/p' "$tmp/serve.log")"
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
for _ in $(seq 1 50); do
    curl -sf "http://$addr/readyz" >/dev/null && break
    sleep 0.1
done
curl -sf "http://$addr/readyz" >/dev/null || { echo "server never became ready" >&2; cat "$tmp/serve.log" >&2; exit 1; }
grep -q 'health monitoring:' "$tmp/serve.log"
echo "   serving on $addr"

curl_json() { curl -sSf "$@"; }

echo "== lineage rides the models listing"
curl_json "http://$addr/v1/models" | grep -q '"strategy": "factorized"'

echo "== health is fresh at boot"
h1="$(curl_json "http://$addr/v1/models/drift-gmm/health")"
grep -q '"verdict": "fresh"' <<<"$h1"
grep -q '"training_rows": 600' <<<"$h1"

echo "== ingesting a shifted delta (features far outside the baseline)"
rows=""
for i in $(seq 0 79); do
    [ -n "$rows" ] && rows="$rows,"
    rows="$rows{\"sid\":$((600+i)),\"fks\":[$((i%20))],\"features\":[500.0,-500.0,250.0],\"target\":1}"
done
curl_json -X POST "http://$addr/v1/ingest" -H 'Content-Type: application/json' \
    -d "{\"facts\":[$rows]}" | grep -q '"facts": 80'

echo "== health flips to drifting with the shifted columns named"
h2="$(curl_json "http://$addr/v1/models/drift-gmm/health")"
echo "   $h2"
grep -q '"verdict": "drifting"' <<<"$h2"
grep -q '"status": "drift"' <<<"$h2"
grep -q '"rows_since_refresh": 80' <<<"$h2"

echo "== drift gauges render in /metrics"
metrics="$(curl_json "http://$addr/metrics")"
grep -q 'factorml_model_drift_psi{model="drift-gmm"}' <<<"$metrics"
grep -q 'factorml_model_health{model="drift-gmm",verdict="drifting"} 1' <<<"$metrics"
grep -q 'factorml_model_rows_since_refresh{model="drift-gmm"} 80' <<<"$metrics"

echo "== /statsz carries the health section"
curl_json "http://$addr/statsz" | grep -q '"health"'

echo "== a refresh absorbs the delta and restores fresh"
curl_json -X POST "http://$addr/v1/refresh" -d '{}' >/dev/null
h3="$(curl_json "http://$addr/v1/models/drift-gmm/health")"
grep -q '"verdict": "fresh"' <<<"$h3"
grep -q '"version": 2' <<<"$h3"

echo "drift smoke OK"
