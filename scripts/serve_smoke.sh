#!/usr/bin/env bash
# Serve smoke test: datagen → train -save → boot cmd/serve → curl /healthz,
# one predict, and /statsz. Exercises the full train→save→reload→serve path
# through the real binaries, the way CI and operators run them.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$tmp/datagen" ./cmd/datagen
go build -o "$tmp/train" ./cmd/train
go build -o "$tmp/serve" ./cmd/serve

echo "== generating tiny synthetic star schema"
"$tmp/datagen" -db "$tmp/db" -ns 500 -nr 20 -ds 3 -dr 3 -seed 1

echo "== rejecting invalid flags"
if "$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model nn -workers -2 2>"$tmp/err"; then
    echo "train accepted -workers -2" >&2; exit 1
fi
grep -q 'workers must be >= 0' "$tmp/err"

echo "== training and saving models"
"$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model nn -algo f \
    -hidden 8 -epochs 2 -save smoke-nn
"$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model gmm -algo f \
    -k 2 -iters 2 -save smoke-gmm

echo "== booting serve"
"$tmp/serve" -db "$tmp/db" -dims synth_R1 -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^factorml-serve listening on \([^ ]*\).*/\1/p' "$tmp/serve.log")"
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
# The listener answers before the model registry finishes loading; wait
# for readiness so the checks below see the fully booted server.
for _ in $(seq 1 50); do
    curl -sf "http://$addr/readyz" >/dev/null && break
    sleep 0.1
done
curl -sf "http://$addr/readyz" >/dev/null || { echo "server never became ready" >&2; cat "$tmp/serve.log" >&2; exit 1; }
echo "   serving on $addr"

curl_json() { curl -sSf "$@"; }

echo "== /healthz"
health="$(curl_json "http://$addr/healthz")"
echo "   $health"
grep -q '"status": "ok"' <<<"$health"
grep -q '"models": 2' <<<"$health"

echo "== predict (repeated fk so the dimension cache must hit)"
pred="$(curl_json -X POST "http://$addr/v1/models/smoke-nn/predict" \
    -H 'Content-Type: application/json' \
    -d '{"rows":[{"fact":[0.1,0.2,0.3],"fks":[5]},{"fact":[1,1,1],"fks":[5]}]}')"
echo "   $pred"
grep -q '"output"' <<<"$pred"
if grep -q '"error"' <<<"$pred"; then
    echo "predict returned a row error" >&2; exit 1
fi

gpred="$(curl_json -X POST "http://$addr/v1/models/smoke-gmm/predict" \
    -H 'Content-Type: application/json' \
    -d '{"rows":[{"fact":[0.1,0.2,0.3],"fks":[5]}]}')"
echo "   $gpred"
grep -q '"log_prob"' <<<"$gpred"
grep -q '"cluster"' <<<"$gpred"

echo "== /statsz (hit rate must be non-zero)"
stats="$(curl_json "http://$addr/statsz")"
echo "   $stats"
grep -q '"dim_cache_hits"' <<<"$stats"
if grep -q '"dim_cache_hit_rate": 0,' <<<"$stats"; then
    echo "dimension cache hit rate is zero" >&2; exit 1
fi

echo "serve smoke: OK"
