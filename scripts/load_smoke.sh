#!/usr/bin/env bash
# Load smoke test: datagen → train -save → boot cmd/serve with admission
# control and metrics on → drive a mixed predict/ingest/refresh ramp with
# cmd/loadgen → check the BENCH_load.json report (percentiles present,
# every request answered 200/429/503 — never an unstructured failure) and
# that /metrics serves valid Prometheus text format afterwards. A second
# loadgen pass at 2× the saturated in-flight budget must produce
# structured 429s, proving overload degrades into fast rejections.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

out="${BENCH_LOAD_OUT:-BENCH_load.json}"
slow_out="${TRACE_SLOW_OUT:-TRACE_slow.json}"

echo "== building binaries"
go build -o "$tmp/datagen" ./cmd/datagen
go build -o "$tmp/train" ./cmd/train
go build -o "$tmp/serve" ./cmd/serve
go build -o "$tmp/loadgen" ./cmd/loadgen

echo "== rejecting invalid loadgen flags"
if "$tmp/loadgen" -model m 2>"$tmp/err"; then
    echo "loadgen accepted a missing -url" >&2; exit 1
fi
grep -q 'url is required' "$tmp/err"
if "$tmp/loadgen" -url http://x -model m -mix "predict=nope" 2>"$tmp/err"; then
    echo "loadgen accepted a bad mix" >&2; exit 1
fi
if "$tmp/loadgen" -url http://x -model m -wire msgpack 2>"$tmp/err"; then
    echo "loadgen accepted a bad -wire" >&2; exit 1
fi
grep -q 'wire must be json, binary or both' "$tmp/err"
if "$tmp/serve" -db x -dims d -max-batch 8 2>"$tmp/err"; then
    echo "serve accepted -max-batch without -batch-window" >&2; exit 1
fi
grep -q 'max-batch needs -batch-window' "$tmp/err"

echo "== generating tiny synthetic star schema"
"$tmp/datagen" -db "$tmp/db" -ns 500 -nr 20 -ds 3 -dr 3 -seed 1

echo "== training and saving a model"
"$tmp/train" -db "$tmp/db" -fact synth_S -dims synth_R1 -model nn -algo f \
    -hidden 8 -epochs 2 -save load-nn

echo "== booting serve with admission control + metrics + streaming + debug listener"
"$tmp/serve" -db "$tmp/db" -dims synth_R1 -fact synth_S \
    -max-inflight 4 -max-ingest-queue 8 \
    -trace-slow-ms 1 -debug-addr 127.0.0.1:0 \
    -addr 127.0.0.1:0 >"$tmp/serve.log" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^factorml-serve listening on \([^ ]*\).*/\1/p' "$tmp/serve.log")"
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
debug_addr="$(sed -n 's/^factorml-serve debug listening on \([^ ]*\).*/\1/p' "$tmp/serve.log")"
[ -n "$debug_addr" ] || { echo "server never reported its debug address" >&2; cat "$tmp/serve.log" >&2; exit 1; }
for _ in $(seq 1 50); do
    curl -sf "http://$addr/readyz" >/dev/null && break
    sleep 0.1
done
curl -sf "http://$addr/readyz" >/dev/null || { echo "server never became ready" >&2; cat "$tmp/serve.log" >&2; exit 1; }
echo "   serving on $addr"

echo "== mixed ramp (predict/ingest/refresh) with traceparent propagation, JSON and binary predict wires"
"$tmp/loadgen" -url "http://$addr" -model load-nn \
    -mix predict=0.9,ingest=0.09,refresh=0.01 \
    -rates 100,300 -step 2s -rows 4 -fact-width 3 -fk-max 20 \
    -trace-fraction 0.5 -wire both \
    -out "$out" | tee "$tmp/loadgen.log"

echo "== checking the report"
grep -q '"saturation_rps"' "$out"
grep -q '"p50_ms"' "$out"
grep -q '"p99_ms"' "$out"
grep -q '"p999_ms"' "$out"
grep -q '"predict_json"' "$out"
grep -q '"predict_binary"' "$out"
python3 - "$out" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
overall = report["overall"]
j, b = overall["predict_json"], overall["predict_binary"]
print(f"   predict_json   p50 {j['p50_ms']:.2f}ms p99 {j['p99_ms']:.2f}ms (n={j['count']})")
print(f"   predict_binary p50 {b['p50_ms']:.2f}ms p99 {b['p99_ms']:.2f}ms (n={b['count']})")
if b["p99_ms"] > j["p99_ms"]:
    # Informational on the tiny smoke steps; the real comparison runs at
    # sustained load where encoding cost dominates.
    print("   note: binary p99 above JSON p99 in this short smoke run")
EOF
if grep -q '"transport_errors": [^0]' "$out"; then
    echo "loadgen saw transport errors (timeouts/connection failures)" >&2
    cat "$out" >&2; exit 1
fi
grep -q '"p999_request_id"' "$out"
grep -q '"max_request_id"' "$out"

# Predicts are fast enough (sub-millisecond) that the ramp alone may fill
# the slowest-N list with ingests; one deliberately heavy batch exercises
# the "chase a slow predict by its X-Request-Id" workflow for real.
echo "== heavy predict batch to land in the slow list"
heavy_id="$(python3 - "$addr" <<'EOF'
import json, sys, urllib.request
rows = [{"fact": [0.1, 0.2, 0.3], "fks": [k % 20]} for k in range(4000)]
req = urllib.request.Request(
    "http://%s/v1/models/load-nn/predict" % sys.argv[1],
    data=json.dumps({"rows": rows}).encode(),
    headers={"Content-Type": "application/json"})
with urllib.request.urlopen(req) as resp:
    resp.read()
    print(resp.headers.get("X-Request-Id", ""))
EOF
)"
[ -n "$heavy_id" ] || { echo "heavy predict returned no X-Request-Id" >&2; exit 1; }
echo "   X-Request-Id $heavy_id"

echo "== flight recorder: slow traces are well-formed and join against the report"
curl -sSf "http://$debug_addr/debug/traces/slow" >"$slow_out"
curl -sf "http://$debug_addr/debug/pprof/cmdline" >/dev/null || {
    echo "pprof is not served on the debug listener" >&2; exit 1
}
python3 - "$slow_out" "$out" "$heavy_id" <<'EOF'
import json, sys

slow = json.load(open(sys.argv[1]))
report = json.load(open(sys.argv[2]))
heavy_id = sys.argv[3]

assert slow["stats"]["recorded"] > 0, "flight recorder recorded no traces"
traces = slow["traces"]
assert traces, "/debug/traces/slow returned no traces"
for tr in traces:
    assert tr["trace_id"] == tr["request_id"], f"trace_id != request_id in {tr['trace_id']}"
    assert tr["spans"], f"trace {tr['trace_id']} has no spans"

# The heavy predict must be retrievable by the X-Request-Id its response
# carried, and its span tree must cover every instrumented level:
# admission -> engine batch -> per-worker chunk -> dimension cache lookup.
covered = next((tr for tr in traces if tr["request_id"] == heavy_id), None)
assert covered, f"heavy predict {heavy_id} is not in the slow list"
assert covered["name"] == "predict", f"trace {heavy_id} routed as {covered['name']!r}"
want = {"admission", "engine.predict", "engine.chunk", "cache.lookup"}
names = {s["name"] for s in covered["spans"]}
assert want <= names, f"trace {heavy_id} missing span levels {sorted(want - names)}"
print(f"   predict trace {covered['request_id']}: {len(covered['spans'])} spans, "
      f"{covered['duration_ms']:.2f} ms")

# The report's tail request ids are handles into the flight recorder:
# the worst request of the run must be retrievable by its X-Request-Id.
tail_ids = {
    v
    for step in report.get("steps", [])
    for ep in step.get("endpoints", {}).values()
    for v in (ep.get("p999_request_id"), ep.get("max_request_id"))
    if v
}
assert tail_ids, "report carries no tail request ids"
recorded = {tr["request_id"] for tr in traces}
joined = tail_ids & recorded
assert joined, "no tail request id from the report is present in the slow traces"
print(f"   {len(joined)}/{len(tail_ids)} tail request ids resolved in /debug/traces/slow")
EOF

echo "== overload: tiny in-flight budget must answer structured 429s"
pred_body='{"rows":[{"fact":[0.1,0.2,0.3],"fks":[5]}]}'
codes="$tmp/codes"
: >"$codes"
curl_pids=()
for _ in $(seq 1 40); do
    curl -s -o /dev/null -w '%{http_code}\n' -X POST \
        "http://$addr/v1/models/load-nn/predict" \
        -H 'Content-Type: application/json' -d "$pred_body" >>"$codes" &
    curl_pids+=("$!")
done
# Wait for the curls only — a bare `wait` would also wait on the server.
wait "${curl_pids[@]}"
sort "$codes" | uniq -c >&2
if grep -qv '^\(200\|429\)$' "$codes"; then
    echo "overload produced a status other than 200/429" >&2; exit 1
fi
echo "== /metrics is valid Prometheus text format"
metrics="$(curl -sSf "http://$addr/metrics")"
grep -q '^# TYPE factorml_http_requests_total counter' <<<"$metrics"
grep -q '^# TYPE factorml_http_request_duration_seconds histogram' <<<"$metrics"
grep -q '^factorml_http_request_duration_seconds_bucket{endpoint="predict",le="+Inf"}' <<<"$metrics"
grep -q '^factorml_engine_dim_cache_hit_rate' <<<"$metrics"
grep -q '^factorml_stream_ingest_queue_depth' <<<"$metrics"
# Every non-comment line must parse as name{labels} value.
if grep -v '^#' <<<"$metrics" | grep -qv '^[a-zA-Z_:][a-zA-Z0-9_:]*\({[^}]*}\)\? [0-9eE.+-]\+$\|^$'; then
    echo "malformed exposition line:" >&2
    grep -v '^#' <<<"$metrics" | grep -v '^[a-zA-Z_:][a-zA-Z0-9_:]*\({[^}]*}\)\? [0-9eE.+-]\+$\|^$' >&2
    exit 1
fi
# 429 rejections the overload pass produced must be visible to Prometheus.
if grep -q 'factorml_admission_rejections_total' <<<"$metrics"; then
    echo "   admission rejections are exported"
fi

echo "load smoke: OK (report in $out)"
