#!/usr/bin/env bash
# Fails when total statement coverage drops below the recorded baseline.
#
# Usage: check_coverage.sh <coverage.out> <baseline-percent>
#
# The baseline lives in the Makefile (COVERAGE_BASELINE) — the single
# source of truth; it was recorded from the snowflake PR's 71.9% total
# minus a small slack for run-to-run drift. Raise it as coverage grows,
# never lower it to make a PR pass.
set -euo pipefail

profile="${1:?usage: check_coverage.sh <coverage.out> <baseline>}"
baseline="${2:?usage: check_coverage.sh <coverage.out> <baseline>}"

total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
if [ -z "$total" ]; then
    echo "check_coverage: no total in $profile" >&2
    exit 1
fi
echo "total statement coverage: ${total}% (baseline ${baseline}%)"
awk -v t="$total" -v b="$baseline" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }' || {
    echo "check_coverage: coverage ${total}% fell below the ${baseline}% baseline" >&2
    exit 1
}
