package factorml

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// buildRetail assembles a small orders ⋈ items star schema through the
// public API.
func buildRetail(t *testing.T, db *DB, nOrders, nItems int) *Dataset {
	t.Helper()
	items, err := db.CreateDimensionTable("items", []string{"price", "size", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nItems; i++ {
		err := items.Append(int64(i), []float64{float64(10 + i), float64(i % 5), 0.5 * float64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount", "hour"}, true, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nOrders; i++ {
		err := orders.Append(int64(i), []int64{int64(i % nItems)},
			[]float64{float64(i%7) + 0.5, float64(i % 24)}, float64(i%3))
		if err != nil {
			t.Fatal(err)
		}
	}
	ds, err := db.Dataset(orders)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicAPIDatasetShape(t *testing.T) {
	db := openDB(t)
	ds := buildRetail(t, db, 100, 8)
	if ds.JoinedWidth() != 5 {
		t.Fatalf("JoinedWidth = %d, want 5", ds.JoinedWidth())
	}
	if ds.NumRows() != 100 {
		t.Fatalf("NumRows = %d, want 100", ds.NumRows())
	}
	count := 0
	err := ds.Stream(func(sid int64, x []float64, y float64) error {
		if len(x) != 5 {
			t.Fatalf("streamed %d features", len(x))
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("streamed %d rows", count)
	}
}

func TestPublicAPITrainGMMAllAlgorithms(t *testing.T) {
	db := openDB(t)
	ds := buildRetail(t, db, 200, 10)
	var models []*GMMModel
	for _, algo := range []Algorithm{Materialized, Streaming, Factorized} {
		res, err := TrainGMM(ds, algo, GMMConfig{K: 2, MaxIter: 4, Tol: 1e-12})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		models = append(models, res.Model)
	}
	if d := models[0].MaxParamDiff(models[1]); d > 1e-9 {
		t.Fatalf("materialized vs streaming differ by %v", d)
	}
	if d := models[1].MaxParamDiff(models[2]); d > 1e-7 {
		t.Fatalf("streaming vs factorized differ by %v", d)
	}
}

func TestPublicAPITrainNNAllAlgorithms(t *testing.T) {
	db := openDB(t)
	ds := buildRetail(t, db, 150, 10)
	var nets []*NNNetwork
	for _, algo := range []Algorithm{Materialized, Streaming, Factorized} {
		res, err := TrainNN(ds, algo, NNConfig{Hidden: []int{6}, Act: Sigmoid, Epochs: 3, LearningRate: 0.01})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		nets = append(nets, res.Net)
	}
	if d := nets[0].MaxParamDiff(nets[1]); d > 1e-9 {
		t.Fatalf("materialized vs streaming differ by %v", d)
	}
	if d := nets[1].MaxParamDiff(nets[2]); d > 1e-6 {
		t.Fatalf("streaming vs factorized differ by %v", d)
	}
}

func TestPublicAPIUnknownAlgorithm(t *testing.T) {
	db := openDB(t)
	ds := buildRetail(t, db, 50, 5)
	if _, err := TrainGMM(ds, Algorithm(99), GMMConfig{K: 1}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := TrainNN(ds, Algorithm(99), NNConfig{}); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if Algorithm(99).String() == "" || Factorized.String() != "factorized" {
		t.Fatal("Algorithm.String wrong")
	}
}

func TestPublicAPIGenerateSynthetic(t *testing.T) {
	db := openDB(t)
	ds, err := GenerateSynthetic(db, "syn", SyntheticConfig{
		NS: 300, NR: []int{20}, DS: 3, DR: []int{4}, WithTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainNN(ds, Factorized, NNConfig{Hidden: []int{5}, Epochs: 2, LearningRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Epochs != 2 || len(res.Stats.Loss) != 2 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestPublicAPIRealShapes(t *testing.T) {
	shapes := RealDatasetShapes()
	if len(shapes) < 8 {
		t.Fatalf("expected the paper's real dataset shapes, got %d", len(shapes))
	}
	db := openDB(t)
	ds, err := GenerateRealShape(db, "Walmart", 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainGMM(ds, Factorized, GMMConfig{K: 2, MaxIter: 2, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Stats.FinalLL()) {
		t.Fatal("NaN log-likelihood")
	}
	if _, err := GenerateRealShape(db, "missing", 0.1, 1); err == nil {
		t.Fatal("unknown shape should fail")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := openDB(t)
	if _, err := db.CreateFactTable("s", nil, false); err == nil {
		t.Fatal("fact table without dimensions should fail")
	}
	items, err := db.CreateDimensionTable("i", []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := db.CreateFactTable("o", []string{"g"}, false, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := orders.Append(1, []int64{1, 2}, []float64{1}, 0); err == nil {
		t.Fatal("fk arity mismatch should fail")
	}
}

func TestIOStatsExposed(t *testing.T) {
	db := openDB(t)
	ds := buildRetail(t, db, 50, 5)
	db.ResetIOStats()
	if _, err := TrainGMM(ds, Factorized, GMMConfig{K: 1, MaxIter: 1, Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	if db.IOStats().LogicalReads == 0 {
		t.Fatal("expected page reads to be counted")
	}
}

// TestPublicAPIModelRegistry covers the facade's save/load/list/delete
// surface and the persistence of models across Open cycles.
func TestPublicAPIModelRegistry(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds := buildRetail(t, db, 120, 8)
	nres, err := TrainNN(ds, Factorized, NNConfig{Hidden: []int{6}, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := TrainGMM(ds, Factorized, GMMConfig{K: 2, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveNN("retail-nn", nres.Net); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveGMM("retail-gmm", gres.Model); err != nil {
		t.Fatal(err)
	}
	models, err := db.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Kind != KindGMM || models[1].Kind != KindNN {
		t.Fatalf("Models = %+v", models)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	net, err := db2.LoadNN("retail-nn")
	if err != nil {
		t.Fatal(err)
	}
	if d := net.MaxParamDiff(nres.Net); d != 0 {
		t.Fatalf("reloaded network differs by %g, want bit-identical", d)
	}
	model, err := db2.LoadGMM("retail-gmm")
	if err != nil {
		t.Fatal(err)
	}
	if d := model.MaxParamDiff(gres.Model); d != 0 {
		t.Fatalf("reloaded mixture differs by %g, want bit-identical", d)
	}
	if err := db2.DeleteModel("retail-gmm"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.LoadGMM("retail-gmm"); err == nil {
		t.Fatal("LoadGMM succeeded after DeleteModel")
	}
}

// TestPublicAPIPredictionServer boots the facade's HTTP handler and checks
// a served prediction bit-for-bit against the in-process network.
func TestPublicAPIPredictionServer(t *testing.T) {
	db := openDB(t)
	ds := buildRetail(t, db, 120, 8)
	nres, err := TrainNN(ds, Factorized, NNConfig{Hidden: []int{6}, Epochs: 2, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveNN("retail-nn", nres.Net); err != nil {
		t.Fatal(err)
	}
	handler, err := NewPredictionServer(db, []string{"items"}, ServeConfig{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/models/retail-nn/predict", "application/json",
		strings.NewReader(`{"rows":[{"fact":[1.5,10],"fks":[3]},{"fact":[1.5,10],"fks":[3]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var out struct {
		Predictions []struct {
			Output *float64 `json:"output"`
		} `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Predictions) != 2 || out.Predictions[0].Output == nil {
		t.Fatalf("response = %+v", out)
	}
	// items tuple 3 has features [13, 3, 1.5] (see buildRetail).
	want := nres.Net.Predict([]float64{1.5, 10, 13, 3, 1.5})
	if got := *out.Predictions[0].Output; math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("served %v, in-process %v", got, want)
	}
	if *out.Predictions[0].Output != *out.Predictions[1].Output {
		t.Fatal("identical rows served different outputs")
	}

	// The repeated foreign key must register as a dimension-cache hit.
	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		HitRate float64 `json:"dim_cache_hit_rate"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.HitRate == 0 {
		t.Fatal("dimension-cache hit rate is zero after a repeated fk")
	}
}
