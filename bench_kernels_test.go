package factorml

// Kernel-level benchmarks for the raw-speed pass: the fused GMM E-step
// against its pre-fusion per-term baseline, the fused linalg helpers, and
// the steady-state serving engine (ns/row and allocs/op). Measurements
// are flushed to BENCH_kernels.json (uploaded as a CI artifact alongside
// the other BENCH files; see TestMain). The fused/unfused E-step pair is
// the acceptance measurement for the pass: fused rows/sec must stay well
// above the baseline (≥1.5× at the PR that introduced it).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"factorml/internal/core"
	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/linalg"
	"factorml/internal/nn"
	"factorml/internal/serve"
)

// kernelBenchRecord is one (bench, variant) measurement in BENCH_kernels.json.
type kernelBenchRecord struct {
	Bench       string  `json:"bench"`
	Variant     string  `json:"variant"`
	NsPerOp     float64 `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

var kernelBenchRecorder struct {
	mu      sync.Mutex
	order   []string
	records map[string]kernelBenchRecord
}

// recordKernelBench keeps the latest measurement per (bench, variant) —
// the testing package re-invokes benchmark bodies while calibrating b.N.
func recordKernelBench(rec kernelBenchRecord) {
	kernelBenchRecorder.mu.Lock()
	defer kernelBenchRecorder.mu.Unlock()
	key := rec.Bench + "/" + rec.Variant
	if kernelBenchRecorder.records == nil {
		kernelBenchRecorder.records = make(map[string]kernelBenchRecord)
	}
	if _, seen := kernelBenchRecorder.records[key]; !seen {
		kernelBenchRecorder.order = append(kernelBenchRecorder.order, key)
	}
	kernelBenchRecorder.records[key] = rec
}

// flushKernelsBench writes the kernel measurements to BENCH_kernels.json
// (called from TestMain).
func flushKernelsBench() {
	kernelBenchRecorder.mu.Lock()
	records := make([]kernelBenchRecord, 0, len(kernelBenchRecorder.order))
	for _, key := range kernelBenchRecorder.order {
		records = append(records, kernelBenchRecorder.records[key])
	}
	kernelBenchRecorder.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		Unit    string              `json:"unit"`
		NumCPU  int                 `json:"num_cpu"`
		Results []kernelBenchRecord `json:"results"`
	}{Unit: "ns/op", NumCPU: runtime.NumCPU(), Results: records}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_kernels.json", append(blob, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_kernels.json: %v\n", err)
	}
}

// E-step kernel workload: a three-part partition (fact + two dimension
// relations, 8 features each) and K=8 components — wide enough that the
// per-row quadratic forms dominate, the regime the fusion targets.
const (
	benchKernelK    = 8
	benchKernelRows = 512
)

var benchKernelDims = []int{8, 8, 8}

// benchKernelModel builds a well-conditioned random mixture (covariances
// are A·Aᵀ + ½I) without touching storage, mirroring the gmm package's
// kernel-test construction.
func benchKernelModel(rng *rand.Rand, K, D int) *gmm.Model {
	m := &gmm.Model{K: K, D: D}
	total := 0.0
	for k := 0; k < K; k++ {
		w := rng.Float64() + 0.1
		m.Weights = append(m.Weights, w)
		total += w
		mean := make([]float64, D)
		for i := range mean {
			mean[i] = rng.NormFloat64()
		}
		m.Means = append(m.Means, mean)
		cov := linalg.NewDense(D, D)
		a := linalg.NewDense(D, D)
		for i := range a.Data() {
			a.Data()[i] = 0.3 * rng.NormFloat64()
		}
		for i := 0; i < D; i++ {
			for j := 0; j < D; j++ {
				s := 0.0
				for l := 0; l < D; l++ {
					s += a.At(i, l) * a.At(j, l)
				}
				cov.Set(i, j, s)
			}
			cov.Set(i, i, cov.At(i, i)+0.5)
		}
		m.Covs = append(m.Covs, cov)
	}
	for k := range m.Weights {
		m.Weights[k] /= total
	}
	return m
}

// BenchmarkKernelEStep times the factorized GMM E-step kernel — fill
// responsibilities for a block of fact tuples against prefilled dimension
// caches — in its fused (production) and pre-fusion (reference) forms.
// One op scores benchKernelRows rows.
func BenchmarkKernelEStep(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := core.NewPartition(benchKernelDims)
	m := benchKernelModel(rng, benchKernelK, p.D)
	s, err := m.NewScorer(p)
	if err != nil {
		b.Fatal(err)
	}
	sc := s.NewScratch()
	caches := make([][]core.QuadCache, p.Parts()-1)
	for j := range caches {
		caches[j] = make([]core.QuadCache, m.K)
		xr := make([]float64, p.Dims[j+1])
		for i := range xr {
			xr[i] = rng.NormFloat64()
		}
		s.FillDimCaches(caches[j], j+1, xr, &sc.Ops)
	}
	rows := make([][]float64, benchKernelRows)
	for i := range rows {
		rows[i] = make([]float64, p.Dims[0])
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	gamma := make([]float64, m.K)
	fused, unfused := s.EStepBenchHooks()
	for _, v := range []struct {
		name   string
		kernel func([]float64, [][]core.QuadCache, *gmm.ScoreScratch, []float64) float64
	}{{"fused", fused}, {"unfused", unfused}} {
		b.Run(v.name, func(b *testing.B) {
			sink := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, xs := range rows {
					sink += v.kernel(xs, caches, sc, gamma)
				}
			}
			b.StopTimer()
			if sink == 0 {
				b.Fatal("kernel produced exactly zero likelihood mass")
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			recordKernelBench(kernelBenchRecord{
				Bench: "gmm_estep", Variant: v.name,
				NsPerOp:    nsPerOp,
				RowsPerSec: float64(benchKernelRows) / (nsPerOp / 1e9),
			})
		})
	}
}

// BenchmarkKernelLinalg times the fused helper loops the blocked kernels
// are built from, at the width class the E-step actually uses.
func BenchmarkKernelLinalg(b *testing.B) {
	const n = 64
	rng := rand.New(rand.NewSource(8))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	a := linalg.NewDense(n, n)
	b.Run("dotn", func(b *testing.B) {
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += linalg.DotN(x, y, n)
		}
		if sink == 0 && n > 0 {
			b.Log("zero dot product") // keep the sink live
		}
		recordKernelBench(kernelBenchRecord{
			Bench: "linalg_dotn", Variant: fmt.Sprintf("n=%d", n),
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
	b.Run("axpyn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.AxpyN(1e-9, x, y, n)
		}
		recordKernelBench(kernelBenchRecord{
			Bench: "linalg_axpyn", Variant: fmt.Sprintf("n=%d", n),
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
	b.Run("syrk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.SyrkAccum(a, 0.5, x)
		}
		recordKernelBench(kernelBenchRecord{
			Bench: "linalg_syrk", Variant: fmt.Sprintf("n=%d", n),
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// BenchmarkKernelEnginePredict times the steady-state serving path —
// PredictInto over a warm single-worker engine into a caller-owned
// buffer — and records ns/row plus allocs/op (which the zero-alloc pin
// in internal/serve holds at exactly 0).
func BenchmarkKernelEnginePredict(b *testing.B) {
	db := benchDB(b)
	spec, err := data.Generate(db, "kp", data.SynthConfig{
		NS: 2000, NR: []int{100}, DS: 6, DR: []int{4}, Seed: 5, WithTarget: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	nres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{benchNH}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	gres, err := gmm.TrainF(db, spec, gmm.Config{K: 4, MaxIter: 1, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	reg, err := serve.NewRegistry(db)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.SaveNN("k-nn", nres.Net); err != nil {
		b.Fatal(err)
	}
	if err := reg.SaveGMM("k-gmm", gres.Model); err != nil {
		b.Fatal(err)
	}
	var rows []serve.Row
	sc := spec.S.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		rows = append(rows, serve.Row{
			Fact: append([]float64{}, tp.Features...),
			FKs:  append([]int64{}, tp.Keys[1:]...),
		})
		if len(rows) == 256 {
			break
		}
	}
	if err := sc.Err(); err != nil {
		b.Fatal(err)
	}
	eng, err := serve.NewEngine(reg, spec.Plan(), serve.EngineConfig{NumWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]serve.Prediction, len(rows))
	for _, model := range []string{"k-nn", "k-gmm"} {
		b.Run(model, func(b *testing.B) {
			// Warm the dimension caches and the scratch pool so the loop
			// measures the steady state the zero-alloc pin covers.
			for i := 0; i < 3; i++ {
				if _, err := eng.PredictInto(model, rows, out); err != nil {
					b.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := eng.PredictInto(model, rows, out); err != nil {
					b.Fatal(err)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.PredictInto(model, rows, out); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			recordKernelBench(kernelBenchRecord{
				Bench: "engine_predict", Variant: model,
				NsPerOp:     nsPerOp,
				RowsPerSec:  float64(len(rows)) / (nsPerOp / 1e9),
				AllocsPerOp: allocs,
			})
		})
	}
}
