package factorml

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// snowflakeFixture is a depth-3 hierarchy built through the public API:
//
//	orders ⋈ items ⋈ categories ⋈ suppliers
//	              └─ brands
type snowflakeFixture struct {
	fact                                 *FactTable
	items, categories, suppliers         *DimensionTable
	brands                               *DimensionTable
	nItems, nCats, nSupp, nBrands, nRows int
}

func buildSnowflakeFixture(t *testing.T, db *DB, nRows int) *snowflakeFixture {
	t.Helper()
	fx := &snowflakeFixture{nItems: 30, nCats: 8, nSupp: 4, nBrands: 5, nRows: nRows}
	rng := rand.New(rand.NewSource(17))
	var err error
	fx.suppliers, err = db.CreateDimensionTable("suppliers", []string{"rating"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fx.nSupp; i++ {
		if err := fx.suppliers.Append(int64(i), []float64{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	fx.categories, err = db.CreateDimensionTable("categories", []string{"margin", "rate"}, fx.suppliers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fx.nCats; i++ {
		err := fx.categories.AppendRefs(int64(i), []int64{int64(rng.Intn(fx.nSupp))},
			[]float64{rng.NormFloat64(), rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
	}
	fx.brands, err = db.CreateDimensionTable("brands", []string{"prestige"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fx.nBrands; i++ {
		if err := fx.brands.Append(int64(i), []float64{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	fx.items, err = db.CreateDimensionTable("items", []string{"price", "weight"}, fx.categories, fx.brands)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fx.nItems; i++ {
		err := fx.items.AppendRefs(int64(i),
			[]int64{int64(rng.Intn(fx.nCats)), int64(rng.Intn(fx.nBrands))},
			[]float64{rng.NormFloat64(), rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
	}
	fx.fact, err = db.CreateFactTable("orders", []string{"amount", "hour"}, true, fx.items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRows; i++ {
		a := rng.NormFloat64()
		err := fx.fact.Append(int64(i), []int64{int64(rng.Intn(fx.nItems))},
			[]float64{a, rng.NormFloat64()}, 0.5*a)
		if err != nil {
			t.Fatal(err)
		}
	}
	return fx
}

// TestSnowflakeServingMatchesDense trains over the depth-3 snowflake,
// serves the models over HTTP with only the DIRECT foreign key on each
// request row, and checks every prediction against the dense model applied
// to the hand-assembled joined vector — the engine resolved
// items → categories → suppliers and items → brands on its own.
func TestSnowflakeServingMatchesDense(t *testing.T) {
	db := openDB(t)
	fx := buildSnowflakeFixture(t, db, 300)
	ds, err := db.Dataset(fx.fact)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := TrainNN(ds, Factorized, NNConfig{Hidden: []int{5}, Epochs: 2, LearningRate: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := TrainGMM(ds, Factorized, GMMConfig{K: 2, MaxIter: 3, Tol: 1e-300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveNN("sf-nn", nres.Net); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveGMM("sf-gmm", gres.Model); err != nil {
		t.Fatal(err)
	}
	handler, err := NewPredictionServer(db, []string{"items"}, ServeConfig{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Assemble expected joined vectors by following the hierarchy by hand.
	type reqRow struct {
		Fact []float64 `json:"fact"`
		FKs  []int64   `json:"fks"`
	}
	var rows []reqRow
	var joined [][]float64
	err = ds.Stream(func(sid int64, x []float64, y float64) error {
		if len(rows) >= 40 {
			return nil
		}
		joined = append(joined, append([]float64{}, x...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := fx.fact.tbl.NewScanner()
	for sc.Next() && len(rows) < 40 {
		tp := sc.Tuple()
		rows = append(rows, reqRow{Fact: append([]float64{}, tp.Features...), FKs: append([]int64{}, tp.Keys[1:]...)})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"rows": rows})
	resp, err := http.Post(ts.URL+"/v1/models/sf-nn/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var nout struct {
		Predictions []struct {
			Output *float64 `json:"output"`
			Err    string   `json:"error"`
		} `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&nout); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nout.Predictions) != len(rows) {
		t.Fatalf("%d predictions for %d rows", len(nout.Predictions), len(rows))
	}
	for i, p := range nout.Predictions {
		if p.Err != "" {
			t.Fatalf("row %d: %s", i, p.Err)
		}
		want := nres.Net.Predict(joined[i])
		if d := math.Abs(*p.Output - want); d > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("row %d: served %v, dense %v (diff %g)", i, *p.Output, want, d)
		}
	}

	resp, err = http.Post(ts.URL+"/v1/models/sf-gmm/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var gout struct {
		Predictions []struct {
			LogProb *float64 `json:"log_prob"`
			Cluster *int     `json:"cluster"`
			Err     string   `json:"error"`
		} `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gout); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i, p := range gout.Predictions {
		if p.Err != "" {
			t.Fatalf("row %d: %s", i, p.Err)
		}
		want := gres.Model.LogProb(joined[i])
		if d := math.Abs(*p.LogProb - want); d > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("row %d: served log-prob %v, dense %v (diff %g)", i, *p.LogProb, want, d)
		}
		if wc := gres.Model.Predict(joined[i]); *p.Cluster != wc {
			t.Fatalf("row %d: served cluster %d, dense %d", i, *p.Cluster, wc)
		}
	}
}

// TestSnowflakeConcurrentServeIngestDimUpdate is the -race stress test:
// one goroutine hammers predictions against a snowflake-served model while
// others ingest fact rows and update dimension tuples at EVERY level of
// the hierarchy — including mid-level category updates that repoint their
// supplier reference, which must propagate through the serving cache
// without a restart. Auto-refresh republishes models concurrently.
func TestSnowflakeConcurrentServeIngestDimUpdate(t *testing.T) {
	db := openDB(t)
	fx := buildSnowflakeFixture(t, db, 250)
	ds, err := db.Dataset(fx.fact)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := TrainGMM(ds, Factorized, GMMConfig{K: 2, MaxIter: 2, Tol: 1e-300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveGMM("sf-gmm", gres.Model); err != nil {
		t.Fatal(err)
	}
	handler, _, err := NewStreamingPredictionServer(db, "orders", []string{"items"},
		ServeConfig{NumWorkers: 2}, StreamPolicy{RefreshRows: 40, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	post := func(path string, payload any) (int, []byte) {
		body, _ := json.Marshal(payload)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, []byte(err.Error())
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	const iters = 60
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	wg.Add(4)
	go func() { // predictor
		defer wg.Done()
		for i := 0; i < iters*2; i++ {
			code, body := post("/v1/models/sf-gmm/predict", map[string]any{
				"rows": []map[string]any{{"fact": []float64{0.1, 0.2}, "fks": []int64{int64(i % fx.nItems)}}},
			})
			if code != http.StatusOK {
				errCh <- fmt.Errorf("predict status %d: %s", code, body)
				return
			}
		}
	}()
	go func() { // fact ingester (triggers auto-refresh + republish)
		defer wg.Done()
		for i := 0; i < iters; i++ {
			sid := int64(10000 + i)
			code, body := post("/v1/ingest", StreamBatch{Facts: []FactRow{
				{SID: sid, FKs: []int64{sid % int64(fx.nItems)}, Features: []float64{0.3, 0.7}, Target: 0.15},
			}})
			if code != http.StatusOK {
				errCh <- fmt.Errorf("ingest status %d: %s", code, body)
				return
			}
		}
	}()
	go func() { // mid-level dimension updater: categories repoint suppliers
		defer wg.Done()
		for i := 0; i < iters; i++ {
			code, body := post("/v1/ingest", StreamBatch{Dims: []DimUpdate{
				{Table: "categories", RID: int64(i % fx.nCats),
					FKs:      []int64{int64(i % fx.nSupp)},
					Features: []float64{float64(i) * 0.01, -float64(i) * 0.01}},
			}})
			if code != http.StatusOK {
				errCh <- fmt.Errorf("category update status %d: %s", code, body)
				return
			}
		}
	}()
	go func() { // leaf-level updater: suppliers
		defer wg.Done()
		for i := 0; i < iters; i++ {
			code, body := post("/v1/ingest", StreamBatch{Dims: []DimUpdate{
				{Table: "suppliers", RID: int64(i % fx.nSupp), Features: []float64{float64(i) * 0.02}},
			}})
			if code != http.StatusOK {
				errCh <- fmt.Errorf("supplier update status %d: %s", code, body)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The system is still coherent: a final prediction resolves the whole
	// (heavily updated) hierarchy and matches the dense score of the
	// CURRENT model over the CURRENT dimension tuples.
	gm, err := db.LoadGMM("sf-gmm")
	if err != nil {
		t.Fatal(err)
	}
	code, body := post("/v1/models/sf-gmm/predict", map[string]any{
		"rows": []map[string]any{{"fact": []float64{0.5, -0.5}, "fks": []int64{3}}},
	})
	if code != http.StatusOK {
		t.Fatalf("final predict status %d: %s", code, body)
	}
	var out struct {
		Predictions []struct {
			LogProb *float64 `json:"log_prob"`
			Err     string   `json:"error"`
		} `json:"predictions"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Predictions[0].Err != "" {
		t.Fatal(out.Predictions[0].Err)
	}
	// Assemble the joined vector from the stored tables (post-updates).
	x := []float64{0.5, -0.5}
	itemTp, catTp, brandTp, suppTp := tupleOf(t, fx.items, 3), StorageTuple{}, StorageTuple{}, StorageTuple{}
	catTp = tupleOf(t, fx.categories, itemTp.Keys[1])
	brandTp = tupleOf(t, fx.brands, itemTp.Keys[2])
	suppTp = tupleOf(t, fx.suppliers, catTp.Keys[1])
	x = append(x, itemTp.Features...)
	x = append(x, catTp.Features...)
	x = append(x, suppTp.Features...)
	x = append(x, brandTp.Features...)
	want := gm.LogProb(x)
	if d := math.Abs(*out.Predictions[0].LogProb - want); d > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("final served log-prob %v, dense over updated hierarchy %v (diff %g)", *out.Predictions[0].LogProb, want, d)
	}
}

// StorageTuple mirrors the bits of storage.Tuple the final-coherence check
// needs without importing internal/storage in the public-API test file.
type StorageTuple struct {
	Keys     []int64
	Features []float64
}

// tupleOf scans a dimension table for the tuple with the given rid.
func tupleOf(t *testing.T, dt *DimensionTable, rid int64) StorageTuple {
	t.Helper()
	sc := dt.tbl.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		if tp.PrimaryKey() == rid {
			return StorageTuple{Keys: append([]int64{}, tp.Keys...), Features: append([]float64{}, tp.Features...)}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	t.Fatalf("no tuple %d in %q", rid, dt.Name())
	return StorageTuple{}
}
