package factorml

// Crash-recovery property harness for the durability layer: a "victim"
// run with the write-ahead log enabled is abandoned mid-flight (no
// Close — the on-disk state is exactly what a kill -9 leaves behind),
// and the harness then proves the headline guarantee at every cut
// point:
//
//   - kill at ANY WAL byte offset: truncate a copy of the victim's
//     directory at that offset, reboot, re-issue exactly the operations
//     the surviving log had not recorded, and the refreshed GMM and NN
//     models are BIT-IDENTICAL (zero tolerance) to an unkilled
//     reference run — for every NumWorkers value;
//   - flip one bit in any non-final CRC frame: boot fails loudly with a
//     *wal.CorruptError naming the damaged segment and byte offset;
//   - flip one bit in the final frame: indistinguishable from a torn
//     tail, so the record is discarded, recovery succeeds, and
//     re-issuing the lost tail converges to the same bits.
//
// The workload is deterministic from a printed seed; rerun one case
// with FACTORML_WAL_SEED=<seed>. FACTORML_WAL_COUNT overrides the op
// count and FACTORML_WAL_STRIDE=1 forces exhaustive per-byte coverage.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"factorml/internal/wal"
)

// crashDurability is the victim/recovery durability config: NoSync
// because the harness simulates crashes by copying files, not by
// losing power; no automatic checkpoints so every WAL byte offset is a
// reachable crash state.
func crashDurability() DurabilityConfig {
	return DurabilityConfig{NoSync: true, SegmentBytes: 1 << 10, SnapshotEvery: 0}
}

func crashPolicy(workers int) StreamPolicy {
	return StreamPolicy{RefreshRows: 7, RebaselineEvery: 3, NumWorkers: workers}
}

// crashWorkload is one deterministic run: fixed base schema content
// plus a generated op sequence.
type crashWorkload struct {
	seed     int64
	dimRows  [][]float64 // items rid = index
	factRows []crashFactRow
	ops      []crashOp
}

type crashFactRow struct {
	fk     int64
	feat   float64
	target float64
}

// crashOp is one logged operation: an explicit refresh or a change
// batch. (The two model attaches are implicit ops 0 and 1 of every
// run.)
type crashOp struct {
	refresh bool
	batch   StreamBatch
}

// crashAttachOps is how many WAL records precede ops[0]: the GMM and
// NN attach records.
const crashAttachOps = 2

func genCrashWorkload(seed int64, nOps int) *crashWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := &crashWorkload{seed: seed}
	for i := 0; i < 8; i++ {
		w.dimRows = append(w.dimRows, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < 48; i++ {
		w.factRows = append(w.factRows, crashFactRow{
			fk:     int64(rng.Intn(len(w.dimRows))),
			feat:   rng.NormFloat64(),
			target: rng.NormFloat64(),
		})
	}
	rids := make([]int64, len(w.dimRows))
	for i := range rids {
		rids[i] = int64(i)
	}
	nextRID, nextSID := int64(100), int64(1000)
	for i := 0; i < nOps; i++ {
		if rng.Intn(4) == 0 {
			w.ops = append(w.ops, crashOp{refresh: true})
			continue
		}
		var b StreamBatch
		if rng.Intn(3) == 0 {
			rid := nextRID
			if rng.Intn(2) == 0 { // in-place update of an existing tuple
				rid = rids[rng.Intn(len(rids))]
			} else {
				nextRID++
				rids = append(rids, rid)
			}
			b.Dims = append(b.Dims, DimUpdate{
				Table:    "items",
				RID:      rid,
				Features: []float64{rng.NormFloat64(), rng.NormFloat64()},
			})
		}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			b.Facts = append(b.Facts, FactRow{
				SID:      nextSID,
				FKs:      []int64{rids[rng.Intn(len(rids))]},
				Features: []float64{rng.NormFloat64()},
				Target:   rng.NormFloat64(),
			})
			nextSID++
		}
		w.ops = append(w.ops, crashOp{batch: b})
	}
	return w
}

// buildCrashBase creates the schema, loads the base rows, trains and
// saves the two models, and opens the stream with both attached (WAL
// records 1 and 2 on a durable database).
func buildCrashBase(t *testing.T, db *DB, w *crashWorkload, workers int) *Stream {
	t.Helper()
	items, err := db.CreateDimensionTable("items", []string{"price", "size"})
	if err != nil {
		t.Fatal(err)
	}
	for i, feats := range w.dimRows {
		if err := items.Append(int64(i), feats); err != nil {
			t.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount"}, true, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range w.factRows {
		if err := orders.Append(int64(i), []int64{fr.fk}, []float64{fr.feat}, fr.target); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := db.Dataset(orders)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := TrainGMM(ds, Factorized, GMMConfig{K: 2, MaxIter: 2, Tol: 1e-300, NumWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveGMM("g", gres.Model); err != nil {
		t.Fatal(err)
	}
	nres, err := TrainNN(ds, Factorized, NNConfig{Hidden: []int{4}, Epochs: 1, NumWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveNN("n", nres.Net); err != nil {
		t.Fatal(err)
	}
	st, err := db.NewStream(orders, crashPolicy(workers))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AttachGMM("g", gres.Model); err != nil {
		t.Fatal(err)
	}
	if err := st.AttachNN("n", nres.Net); err != nil {
		t.Fatal(err)
	}
	return st
}

func applyCrashOps(t *testing.T, st *Stream, ops []crashOp) {
	t.Helper()
	for i, op := range ops {
		if op.refresh {
			if _, err := st.Refresh(); err != nil {
				t.Fatalf("op %d (refresh): %v", i, err)
			}
			continue
		}
		if _, err := st.Ingest(op.batch); err != nil {
			t.Fatalf("op %d (batch): %v", i, err)
		}
	}
}

// crashModelBytes serializes both refreshed models after a final
// refresh; byte equality of the output is bit equality of every
// parameter.
func crashModelBytes(t *testing.T, st *Stream) (gmmB, nnB []byte) {
	t.Helper()
	if _, err := st.Refresh(); err != nil {
		t.Fatal(err)
	}
	gm, err := st.GMM("g")
	if err != nil {
		t.Fatal(err)
	}
	var gb bytes.Buffer
	if err := gm.Save(&gb); err != nil {
		t.Fatal(err)
	}
	net, err := st.NN("n")
	if err != nil {
		t.Fatal(err)
	}
	var nb bytes.Buffer
	if err := net.Save(&nb); err != nil {
		t.Fatal(err)
	}
	return gb.Bytes(), nb.Bytes()
}

// runCrashReference runs the whole workload with a clean close and
// returns the final model bytes — the bits every recovery must hit.
func runCrashReference(t *testing.T, w *crashWorkload, workers int, durable bool) (gmmB, nnB []byte) {
	t.Helper()
	var extra []OpenOption
	if durable {
		extra = append(extra, WithDurability(crashDurability()))
	}
	db, err := Open(t.TempDir(), Options{NumWorkers: workers}, extra...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st := buildCrashBase(t, db, w, workers)
	applyCrashOps(t, st, w.ops)
	return crashModelBytes(t, st)
}

// runCrashVictim runs the workload on a durable database and abandons
// it without Close: dir then holds exactly what a kill -9 leaves.
func runCrashVictim(t *testing.T, w *crashWorkload, workers int) (dir string) {
	t.Helper()
	dir = t.TempDir()
	db, err := Open(dir, Options{NumWorkers: workers}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	st := buildCrashBase(t, db, w, workers)
	applyCrashOps(t, st, w.ops)
	return dir
}

// recoverAndFinish reboots a crashed directory, lets the stream replay
// the surviving WAL tail, re-issues every operation the log had not
// recorded, and returns the final model bytes.
func recoverAndFinish(t *testing.T, dir string, w *crashWorkload, workers int) (gmmB, nnB []byte, k int64) {
	t.Helper()
	db, err := Open(dir, Options{NumWorkers: workers}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k = db.WALStats().LastLSN
	orders, err := db.FactTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.NewStream(orders, crashPolicy(workers))
	if err != nil {
		t.Fatal(err)
	}
	// Re-issue what the surviving log had not recorded: the attaches
	// (records 1 and 2) from the registry's saved parameters, then the
	// lost ops. Recovery replays everything at or below LSN k, so
	// replayed models are already in Attached().
	if k < 1 {
		gm, err := db.LoadGMM("g")
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AttachGMM("g", gm); err != nil {
			t.Fatal(err)
		}
	}
	if k < 2 {
		net, err := db.LoadNN("n")
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AttachNN("n", net); err != nil {
			t.Fatal(err)
		}
	}
	first := int(k) - crashAttachOps
	if first < 0 {
		first = 0
	}
	applyCrashOps(t, st, w.ops[first:])
	gmmB, nnB = crashModelBytes(t, st)
	return gmmB, nnB, k
}

// --- WAL file surgery ------------------------------------------------------

type walFrame struct {
	seg       string // segment path relative to the WAL dir
	off       int64  // frame offset within the segment
	globalOff int64  // offset across all segments in LSN order
	size      int64
	final     bool // last frame of the last segment
}

// readWALLayout parses the victim's segment files into frame
// boundaries.
func readWALLayout(t *testing.T, walDir string) (frames []walFrame, segSizes map[string]int64, total int64) {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	// Segment names are zero-padded hex first-LSNs: lexical order is
	// LSN order.
	for i := 1; i < len(segs); i++ {
		if segs[i] < segs[i-1] {
			t.Fatalf("segments out of order: %v", segs)
		}
	}
	segSizes = make(map[string]int64)
	for _, seg := range segs {
		buf, err := os.ReadFile(filepath.Join(walDir, seg))
		if err != nil {
			t.Fatal(err)
		}
		segSizes[seg] = int64(len(buf))
		off := 0
		for off < len(buf) {
			if len(buf)-off < 8 {
				t.Fatalf("segment %s: trailing %d bytes", seg, len(buf)-off)
			}
			plen := int(binary.LittleEndian.Uint32(buf[off:]))
			size := int64(8 + plen)
			frames = append(frames, walFrame{
				seg: seg, off: int64(off), globalOff: total, size: size,
			})
			off += 8 + plen
			total += size
		}
	}
	if len(frames) > 0 {
		frames[len(frames)-1].final = true
	}
	return frames, segSizes, total
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// truncateWALAt cuts the copied WAL at a global byte offset: the
// containing segment is truncated and every later segment removed,
// exactly the prefix a crash at that write position leaves.
func truncateWALAt(t *testing.T, walDir string, segSizes map[string]int64, globalOff int64) {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	pos := int64(0)
	for _, seg := range segs {
		size := segSizes[seg]
		path := filepath.Join(walDir, seg)
		switch {
		case globalOff <= pos:
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		case globalOff < pos+size:
			if err := os.Truncate(path, globalOff-pos); err != nil {
				t.Fatal(err)
			}
		}
		pos += size
	}
}

func crashEnvInt(name string, def int64) int64 {
	return equivEnvInt(name, def) // same env idiom as the equivalence harness
}

// TestKillAtAnyWALOffset is the headline crash-safety property: for a
// sweep of WAL byte offsets (every frame boundary and its neighbors,
// plus a stride over the interior; FACTORML_WAL_STRIDE=1 makes it every
// byte), truncating the victim's log at that offset and recovering
// converges to models bit-identical to the unkilled run.
func TestKillAtAnyWALOffset(t *testing.T) {
	seed := crashEnvInt("FACTORML_WAL_SEED", 20260807)
	nOps := int(crashEnvInt("FACTORML_WAL_COUNT", 12))
	t.Logf("seed=%d ops=%d (override with FACTORML_WAL_SEED / FACTORML_WAL_COUNT)", seed, nOps)
	w := genCrashWorkload(seed, nOps)

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			refGMM, refNN := runCrashReference(t, w, workers, true)

			// WAL-off control: durability must not change what the
			// stream computes.
			offGMM, offNN := runCrashReference(t, w, workers, false)
			if !bytes.Equal(refGMM, offGMM) || !bytes.Equal(refNN, offNN) {
				t.Fatal("WAL-on and WAL-off runs diverged")
			}

			victim := runCrashVictim(t, w, workers)
			walDir := filepath.Join(victim, "wal")
			frames, segSizes, total := readWALLayout(t, walDir)
			if len(frames) < nOps {
				t.Fatalf("victim WAL has %d frames for %d ops", len(frames), nOps)
			}

			stride := crashEnvInt("FACTORML_WAL_STRIDE", 0)
			if stride <= 0 {
				stride = total/96 + 1
				if testing.Short() {
					stride = total/16 + 1
				}
			}
			offsets := map[int64]bool{0: true, total: true}
			for _, fr := range frames {
				for d := int64(-1); d <= 1; d++ {
					if o := fr.globalOff + d; o >= 0 && o <= total {
						offsets[o] = true
					}
				}
			}
			for o := int64(0); o <= total; o += stride {
				offsets[o] = true
			}
			tested := 0
			for off := range offsets {
				clone := t.TempDir()
				copyTree(t, victim, clone)
				truncateWALAt(t, filepath.Join(clone, "wal"), segSizes, off)
				gmmB, nnB, k := recoverAndFinish(t, clone, w, workers)
				if !bytes.Equal(gmmB, refGMM) {
					t.Fatalf("offset %d (recovered to LSN %d): GMM diverged from the unkilled run", off, k)
				}
				if !bytes.Equal(nnB, refNN) {
					t.Fatalf("offset %d (recovered to LSN %d): NN diverged from the unkilled run", off, k)
				}
				tested++
			}
			t.Logf("workers=%d: %d offsets over %d WAL bytes (%d frames), all bit-identical", workers, tested, total, len(frames))
		})
	}
}

// TestWALBitFlipRecovery flips one bit in every CRC frame of the
// victim's log: damage in a non-final frame must fail the boot with a
// *wal.CorruptError naming the segment and offset (valid records
// behind the damage prove it is rot, not a crash), while damage in the
// final frame is indistinguishable from a torn tail — the record is
// discarded and recovery converges after re-issuing it.
func TestWALBitFlipRecovery(t *testing.T) {
	seed := crashEnvInt("FACTORML_WAL_SEED", 20260807)
	nOps := int(crashEnvInt("FACTORML_WAL_COUNT", 12))
	const workers = 1
	w := genCrashWorkload(seed, nOps)
	refGMM, refNN := runCrashReference(t, w, workers, true)
	victim := runCrashVictim(t, w, workers)
	frames, _, _ := readWALLayout(t, filepath.Join(victim, "wal"))

	for i, fr := range frames {
		clone := t.TempDir()
		copyTree(t, victim, clone)
		segPath := filepath.Join(clone, "wal", fr.seg)
		f, err := os.OpenFile(segPath, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one bit in the middle of the frame (payload for any
		// frame big enough to have one).
		pos := fr.off + fr.size/2
		var b [1]byte
		if _, err := f.ReadAt(b[:], pos); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x08
		if _, err := f.WriteAt(b[:], pos); err != nil {
			t.Fatal(err)
		}
		f.Close()

		if fr.final {
			gmmB, nnB, k := recoverAndFinish(t, clone, w, workers)
			if int(k) != len(frames)-1 {
				t.Fatalf("frame %d (final): recovered to LSN %d, want %d (flipped record discarded as torn)", i, k, len(frames)-1)
			}
			if !bytes.Equal(gmmB, refGMM) || !bytes.Equal(nnB, refNN) {
				t.Fatalf("frame %d (final): models diverged after torn-tail recovery", i)
			}
			continue
		}
		_, err = Open(clone, Options{NumWorkers: workers}, WithDurability(crashDurability()))
		var ce *wal.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("frame %d: open after bit flip = %v, want *wal.CorruptError", i, err)
		}
		if ce.Segment != segPath {
			t.Fatalf("frame %d: corruption reported in %s, flipped %s", i, ce.Segment, segPath)
		}
		if ce.Offset != fr.off {
			t.Fatalf("frame %d: corruption reported at offset %d, flipped frame starts at %d", i, ce.Offset, fr.off)
		}
	}
}
