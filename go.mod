module factorml

go 1.24
