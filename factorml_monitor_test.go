package factorml

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildMonitorDB creates a small star schema, trains a GMM over it and
// saves it with training lineage — the fixture the monitoring tests
// share. Everything is deterministic, so two calls build bit-identical
// databases and models.
func buildMonitorDB(t *testing.T) (*DB, *FactTable) {
	t.Helper()
	db := openDB(t)
	items, err := db.CreateDimensionTable("items", []string{"price", "size"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := items.Append(int64(i), []float64{float64(10 + i), float64(i % 4)}); err != nil {
			t.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount"}, true, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := orders.Append(int64(i), []int64{int64(i % 12)}, []float64{float64(i%9) * 0.5}, float64(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := db.Dataset(orders)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := TrainGMM(ds, Factorized, GMMConfig{K: 2, MaxIter: 2, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := GMMLineage(ds, gres.Model, "factorized")
	if err != nil {
		t.Fatal(err)
	}
	if lin.TrainingRows != 300 || lin.Baseline == nil || len(lin.Baseline.Columns) != 3 {
		t.Fatalf("captured lineage: %+v", lin)
	}
	if err := db.SaveGMMLineage("orders-gmm", gres.Model, lin); err != nil {
		t.Fatal(err)
	}
	return db, orders
}

// shiftedIngestBody builds an ingest batch of n fact rows far outside
// the training distribution (amount ~300 vs the trained 0..4 range).
func shiftedIngestBody(t *testing.T, n, from int) *bytes.Reader {
	t.Helper()
	var b StreamBatch
	for i := 0; i < n; i++ {
		b.Facts = append(b.Facts, FactRow{
			SID: int64(from + i), FKs: []int64{int64(i % 12)},
			Features: []float64{300 + float64(i%7)}, Target: 1,
		})
	}
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(body)
}

// TestPublicAPIModelHealth drives the whole monitoring surface over
// HTTP: lineage in the models listing, a fresh verdict after boot, a
// drifting verdict (with the offending column named) after ingesting a
// shifted delta, drift gauges in /metrics and the health section in
// /statsz.
func TestPublicAPIModelHealth(t *testing.T) {
	db, _ := buildMonitorDB(t)
	server, err := NewServer(db, []string{"items"},
		WithEngineConfig(ServeConfig{NumWorkers: 1}),
		WithStream("orders", StreamPolicy{NumWorkers: 1}),
		WithMonitoring(MonitorConfig{MinWindowRows: 10}),
		WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, []byte) {
		rec := httptest.NewRecorder()
		server.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.Bytes()
	}

	// Lineage rides the models listing.
	code, body := get("/v1/models")
	if code != 200 || !bytes.Contains(body, []byte(`"lineage"`)) || !bytes.Contains(body, []byte(`"strategy": "factorized"`)) {
		t.Fatalf("GET /v1/models = %d %s", code, body)
	}

	code, body = get("/v1/models/orders-gmm/health")
	var h ModelHealth
	if code != 200 {
		t.Fatalf("GET health = %d %s", code, body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Verdict != VerdictFresh || h.TrainingRows != 300 || len(h.Columns) != 3 {
		t.Fatalf("boot health: %+v", h)
	}

	code, body = get("/v1/models/nope/health")
	if code != 404 || !bytes.Contains(body, []byte("model_not_found")) {
		t.Fatalf("GET health for unknown model = %d %s", code, body)
	}

	// A shifted delta flips the verdict.
	rec := httptest.NewRecorder()
	server.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/ingest", shiftedIngestBody(t, 40, 300)))
	if rec.Code != 200 {
		t.Fatalf("POST /v1/ingest = %d %s", rec.Code, rec.Body)
	}
	code, body = get("/v1/models/orders-gmm/health")
	if code != 200 {
		t.Fatalf("GET health = %d %s", code, body)
	}
	h = ModelHealth{}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Verdict != VerdictDrifting || h.RowsSinceRefresh != 40 || len(h.Reasons) == 0 {
		t.Fatalf("post-shift health: %+v", h)
	}
	var drifted bool
	for _, c := range h.Columns {
		if c.Table == "orders" && c.Status == "drift" {
			drifted = true
		}
	}
	if !drifted {
		t.Fatalf("shifted fact column not flagged: %+v", h.Columns)
	}

	// The drift gauges render in the Prometheus exposition and the
	// health section in /statsz; the facade accessor agrees.
	code, body = get("/metrics")
	if code != 200 || !bytes.Contains(body, []byte(`factorml_model_drift_psi{model="orders-gmm"}`)) {
		t.Fatalf("GET /metrics = %d (drift gauge missing)", code)
	}
	if !bytes.Contains(body, []byte(`factorml_model_health{model="orders-gmm",verdict="drifting"}`)) {
		t.Fatal("verdict gauge missing from /metrics")
	}
	code, body = get("/statsz")
	var stats struct {
		Health []ModelHealth `json:"health"`
	}
	if code != 200 {
		t.Fatalf("GET /statsz = %d", code)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Health) != 1 || stats.Health[0].Verdict != VerdictDrifting {
		t.Fatalf("statsz health section: %+v", stats.Health)
	}
	if mh := server.ModelHealth(); len(mh) != 1 || mh[0].Model != "orders-gmm" {
		t.Fatalf("ModelHealth() = %+v", mh)
	}

	// A refresh folds the window into the baseline and restores fresh.
	rec = httptest.NewRecorder()
	server.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/refresh", strings.NewReader("{}")))
	if rec.Code != 200 {
		t.Fatalf("POST /v1/refresh = %d %s", rec.Code, rec.Body)
	}
	code, body = get("/v1/models/orders-gmm/health")
	h = ModelHealth{}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if code != 200 || h.Verdict != VerdictFresh || h.Version != 2 || h.TrainingRows != 340 {
		t.Fatalf("post-refresh health: %+v", h)
	}
}

// TestMonitorHealthWithoutMonitoring pins the disabled surface: the
// health endpoint answers 503 monitoring_disabled on a server booted
// without WithMonitoring, and the facade accessor returns nil.
func TestMonitorHealthWithoutMonitoring(t *testing.T) {
	db, _ := buildMonitorDB(t)
	server, err := NewServer(db, []string{"items"}, WithEngineConfig(ServeConfig{NumWorkers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	server.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/models/orders-gmm/health", nil))
	if rec.Code != 503 || !bytes.Contains(rec.Body.Bytes(), []byte("monitoring_disabled")) {
		t.Fatalf("health without monitoring = %d %s", rec.Code, rec.Body)
	}
	if mh := server.ModelHealth(); mh != nil {
		t.Fatalf("ModelHealth() without monitoring = %+v", mh)
	}
}

// TestMonitoringEquivalence is the guard the whole subsystem is built
// under: monitoring is passive. Two bit-identical databases are served
// with monitoring on and off; after the same ingests, predictions and
// the refreshed model parameters must match exactly.
func TestMonitoringEquivalence(t *testing.T) {
	dbOn, _ := buildMonitorDB(t)
	dbOff, _ := buildMonitorDB(t)

	common := func(extra ...ServerOption) []ServerOption {
		return append([]ServerOption{
			WithEngineConfig(ServeConfig{NumWorkers: 1}),
			WithStream("orders", StreamPolicy{NumWorkers: 1}),
		}, extra...)
	}
	srvOn, err := NewServer(dbOn, []string{"items"}, common(WithMonitoring(MonitorConfig{MinWindowRows: 5}))...)
	if err != nil {
		t.Fatal(err)
	}
	srvOff, err := NewServer(dbOff, []string{"items"}, common()...)
	if err != nil {
		t.Fatal(err)
	}

	do := func(s *Server, method, path string, body []byte) (int, []byte) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(method, path, bytes.NewReader(body)))
		return rec.Code, rec.Body.Bytes()
	}
	both := func(method, path string, body []byte) {
		t.Helper()
		codeOn, bodyOn := do(srvOn, method, path, body)
		codeOff, bodyOff := do(srvOff, method, path, body)
		if codeOn != codeOff || !bytes.Equal(bodyOn, bodyOff) {
			t.Fatalf("%s %s diverges with monitoring on:\n  on:  %d %s\n  off: %d %s",
				method, path, codeOn, bodyOn, codeOff, bodyOff)
		}
	}

	predictBody := []byte(`{"rows":[{"fact":[1.5],"fks":[3]},{"fact":[0.25],"fks":[7]},{"fact":[2.0],"fks":[11]}]}`)
	both("POST", "/v1/models/orders-gmm/predict", predictBody)

	var ingest StreamBatch
	for i := 0; i < 60; i++ {
		ingest.Facts = append(ingest.Facts, FactRow{
			SID: int64(300 + i), FKs: []int64{int64(i % 12)},
			Features: []float64{float64(i%11) * 0.7}, Target: float64(i % 3),
		})
	}
	ingest.Dims = append(ingest.Dims, DimUpdate{Table: "items", RID: 3, Features: []float64{99, 2}})
	ibody, err := json.Marshal(ingest)
	if err != nil {
		t.Fatal(err)
	}
	both("POST", "/v1/ingest", ibody)
	both("POST", "/v1/models/orders-gmm/predict", predictBody)
	both("POST", "/v1/refresh", []byte("{}"))

	mOn, err := srvOn.Stream().GMM("orders-gmm")
	if err != nil {
		t.Fatal(err)
	}
	mOff, err := srvOff.Stream().GMM("orders-gmm")
	if err != nil {
		t.Fatal(err)
	}
	if d := mOn.MaxParamDiff(mOff); d != 0 {
		t.Fatalf("refreshed models diverge with monitoring on: max param diff %g", d)
	}
	both("POST", "/v1/models/orders-gmm/predict", predictBody)

	if h := srvOn.ModelHealth(); len(h) != 1 {
		t.Fatalf("monitored server health: %+v", h)
	}
}
