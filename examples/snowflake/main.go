// Snowflake schemas: dimension tables that reference sub-dimension tables.
// This example builds the three-hop hierarchy
//
//	orders ⋈ items ⋈ categories ⋈ suppliers
//	              └─ brands
//
// through the public API (CreateDimensionTable with parent references and
// AppendRefs), trains the same GMM and NN with the materialized baseline
// and the factorized algorithm over the flattened join, verifies the
// models agree, and shows the factorized run doing a fraction of the
// multiplications — the per-distinct-tuple reuse now happens at every
// level of the hierarchy (category and supplier work is shared across all
// items that point at them, not just item work across orders).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"factorml"
)

func main() {
	dir, err := os.MkdirTemp("", "factorml-snowflake-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := factorml.Open(dir, factorml.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	const (
		nSuppliers  = 12
		nCategories = 30
		nBrands     = 25
		nItems      = 400
		nOrders     = 20000
	)

	// Leaf level: suppliers(rid; rating, lead_days).
	suppliers, err := db.CreateDimensionTable("suppliers", []string{"rating", "lead_days"})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nSuppliers; i++ {
		if err := suppliers.Append(int64(i), []float64{rng.Float64() * 5, 1 + 20*rng.Float64()}); err != nil {
			log.Fatal(err)
		}
	}

	// Mid level: categories(rid, fk→suppliers; margin, return_rate) — a
	// dimension table with its own parent reference.
	categories, err := db.CreateDimensionTable("categories", []string{"margin", "return_rate"}, suppliers)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nCategories; i++ {
		err := categories.AppendRefs(int64(i), []int64{int64(rng.Intn(nSuppliers))},
			[]float64{0.05 + 0.4*rng.Float64(), 0.3 * rng.Float64()})
		if err != nil {
			log.Fatal(err)
		}
	}

	// brands(rid; prestige) — a second, leaf-level branch under items.
	brands, err := db.CreateDimensionTable("brands", []string{"prestige"})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nBrands; i++ {
		if err := brands.Append(int64(i), []float64{rng.Float64()}); err != nil {
			log.Fatal(err)
		}
	}

	// Top level: items(rid, fk→categories, fk→brands; price, weight).
	items, err := db.CreateDimensionTable("items", []string{"price", "weight"}, categories, brands)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nItems; i++ {
		err := items.AppendRefs(int64(i),
			[]int64{int64(rng.Intn(nCategories)), int64(rng.Intn(nBrands))},
			[]float64{10 + 90*rng.Float64(), 0.1 + 5*rng.Float64()})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Fact table: orders(sid, fk→items; amount, hour; Y).
	orders, err := db.CreateFactTable("orders", []string{"amount", "hour"}, true, items)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nOrders; i++ {
		amount := 1 + 4*rng.Float64()
		err := orders.Append(int64(i), []int64{int64(rng.Intn(nItems))},
			[]float64{amount, float64(rng.Intn(24))}, amount*0.2+0.05*rng.NormFloat64())
		if err != nil {
			log.Fatal(err)
		}
	}

	ds, err := db.Dataset(orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snowflake orders ⋈ items ⋈ {categories ⋈ suppliers, brands}: %d rows, joined width %d\n",
		ds.NumRows(), ds.JoinedWidth())

	gcfg := factorml.GMMConfig{K: 3, MaxIter: 5, Seed: 1}
	mg, err := factorml.TrainGMM(ds, factorml.Materialized, gcfg)
	if err != nil {
		log.Fatal(err)
	}
	fg, err := factorml.TrainGMM(ds, factorml.Factorized, gcfg)
	if err != nil {
		log.Fatal(err)
	}
	if d := mg.Model.MaxParamDiff(fg.Model); d > 1e-9 {
		log.Fatalf("materialized and factorized GMMs differ by %g", d)
	}
	fmt.Printf("GMM  : models agree; multiplies materialized=%d factorized=%d (%.1fx fewer)\n",
		mg.Stats.Ops.Mul, fg.Stats.Ops.Mul, float64(mg.Stats.Ops.Mul)/float64(fg.Stats.Ops.Mul))

	ncfg := factorml.NNConfig{Hidden: []int{16}, Epochs: 3, LearningRate: 0.05, Seed: 1}
	mn, err := factorml.TrainNN(ds, factorml.Materialized, ncfg)
	if err != nil {
		log.Fatal(err)
	}
	fn, err := factorml.TrainNN(ds, factorml.Factorized, ncfg)
	if err != nil {
		log.Fatal(err)
	}
	if d := mn.Net.MaxParamDiff(fn.Net); d > 1e-9 {
		log.Fatalf("materialized and factorized NNs differ by %g", d)
	}
	fmt.Printf("NN   : models agree; multiplies materialized=%d factorized=%d (%.1fx fewer)\n",
		mn.Stats.Ops.Mul, fn.Stats.Ops.Mul, float64(mn.Stats.Ops.Mul)/float64(fn.Stats.Ops.Mul))

	// Serving probes the same hierarchy: a prediction row carries the fact
	// features and ONE foreign key (items); the engine resolves
	// items → categories → suppliers and items → brands internally.
	if err := db.SaveGMM("orders-gmm", fg.Model); err != nil {
		log.Fatal(err)
	}
	fmt.Println("saved orders-gmm; serve it with: serve -db <dir> -dims items")
}
