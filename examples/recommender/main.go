// Recommender: train a rating-prediction neural network over the normalized
// three-way schema Ratings ⋈ Users ⋈ Movies (the paper's Movies-3way
// setting) and compare all three execution strategies. Multi-way joins are
// where factorization pays off most: every rating row repeats both a user
// row and a movie row.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"factorml"
)

func main() {
	dir, err := os.MkdirTemp("", "factorml-recsys-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := factorml.Open(dir, factorml.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(11))
	const (
		nUsers   = 400
		nMovies  = 250
		nRatings = 30000
	)

	// Users(rid; age, activity, 3 genre affinities).
	users, err := db.CreateDimensionTable("users",
		[]string{"age", "activity", "aff_action", "aff_drama", "aff_comedy"})
	if err != nil {
		log.Fatal(err)
	}
	userAff := make([][3]float64, nUsers)
	for u := 0; u < nUsers; u++ {
		aff := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		userAff[u] = aff
		err := users.Append(int64(u), []float64{
			18 + 50*rng.Float64(), rng.Float64(), aff[0], aff[1], aff[2],
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Movies(rid; year, popularity, 3 genre intensities).
	movies, err := db.CreateDimensionTable("movies",
		[]string{"year", "popularity", "g_action", "g_drama", "g_comedy"})
	if err != nil {
		log.Fatal(err)
	}
	movieGen := make([][3]float64, nMovies)
	for m := 0; m < nMovies; m++ {
		g := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		movieGen[m] = g
		err := movies.Append(int64(m), []float64{
			float64(1960 + rng.Intn(60)), rng.Float64(), g[0], g[1], g[2],
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Ratings(sid, fk_user, fk_movie; hour_of_day) with the rating as the
	// target: affinity·genre match plus noise.
	ratings, err := db.CreateFactTable("ratings", []string{"hour"}, true, users, movies)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nRatings; i++ {
		u := rng.Intn(nUsers)
		m := rng.Intn(nMovies)
		match := userAff[u][0]*movieGen[m][0] + userAff[u][1]*movieGen[m][1] + userAff[u][2]*movieGen[m][2]
		rating := 1 + 4*match/3 + 0.3*rng.NormFloat64()
		err := ratings.Append(int64(i), []int64{int64(u), int64(m)},
			[]float64{float64(rng.Intn(24))}, rating)
		if err != nil {
			log.Fatal(err)
		}
	}

	ds, err := db.Dataset(ratings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ratings ⋈ users ⋈ movies: %d rows, %d features after join\n",
		ds.NumRows(), ds.JoinedWidth())

	cfg := factorml.NNConfig{
		Hidden: []int{32}, Act: factorml.Tanh,
		Epochs: 10, LearningRate: 0.05,
	}
	type outcome struct {
		name string
		algo factorml.Algorithm
		res  *factorml.NNResult
	}
	runs := []outcome{
		{"M-NN (materialize join)", factorml.Materialized, nil},
		{"S-NN (stream join)", factorml.Streaming, nil},
		{"F-NN (factorized)", factorml.Factorized, nil},
	}
	for i := range runs {
		runs[i].res, err = factorml.TrainNN(ds, runs[i].algo, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nstrategy                    time        multiplies     pages read  pages written")
	for _, r := range runs {
		st := r.res.Stats
		fmt.Printf("%-26s %-10v %14d %12d %14d\n",
			r.name, st.TrainTime, st.Ops.Mul, st.IO.LogicalReads, st.IO.PageWrites)
	}
	f := runs[2].res
	fmt.Printf("\nfactorized speedup: %.2fx vs materialized, %.2fx vs streaming\n",
		float64(runs[0].res.Stats.TrainTime)/float64(f.Stats.TrainTime),
		float64(runs[1].res.Stats.TrainTime)/float64(f.Stats.TrainTime))
	fmt.Printf("models identical: max parameter diff %.2e\n", runs[0].res.Net.MaxParamDiff(f.Net))
	fmt.Printf("final training loss: %.4f\n", f.Stats.FinalLoss())

	// Sample predictions.
	fmt.Println("\nsample rating predictions:")
	shown := 0
	err = ds.Stream(func(sid int64, x []float64, y float64) error {
		if shown < 5 && sid%6000 == 0 {
			fmt.Printf("  rating %5d: predicted %.2f, actual %.2f\n", sid, f.Net.Predict(x), y)
			shown++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
