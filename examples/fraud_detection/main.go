// Fraud scoring: a banking-style workload from the paper's introduction —
// "building fraud detection models … requires a join of customer
// purchasing/spending records with merchant data". A neural network scores
// transactions over the normalized Transactions ⋈ Merchants schema using
// block-wise mini-batch updates, and the factorized trainer is validated
// against the streaming baseline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"sort"

	"factorml"
)

type scored struct{ pred, actual float64 }

func main() {
	dir, err := os.MkdirTemp("", "factorml-fraud-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := factorml.Open(dir, factorml.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(99))
	const (
		nMerchants    = 500
		nTransactions = 40000
	)

	// Merchants(rid; risk_score, avg_ticket, chargeback_rate, years_active).
	merchants, err := db.CreateDimensionTable("merchants",
		[]string{"risk_score", "avg_ticket", "chargeback_rate", "years_active"})
	if err != nil {
		log.Fatal(err)
	}
	merchantRisk := make([]float64, nMerchants)
	for m := 0; m < nMerchants; m++ {
		risk := rng.Float64()
		merchantRisk[m] = risk
		// Features are standardized to ~[0,1] so gradient descent behaves.
		err := merchants.Append(int64(m), []float64{
			risk,
			rng.Float64(),                // avg ticket, normalized
			0.2 * risk * rng.Float64(),   // chargeback rate
			float64(1+rng.Intn(20)) / 20, // years active, normalized
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Transactions(sid, fk; amount, hour, foreign) with a fraud-propensity
	// target mixing transaction and merchant signals — the cross-relation
	// dependency is exactly why the join cannot be skipped.
	txns, err := db.CreateFactTable("transactions",
		[]string{"amount", "hour", "foreign"}, true, merchants)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nTransactions; i++ {
		m := rng.Intn(nMerchants)
		amount := rng.Float64() // normalized transaction amount
		hour := float64(rng.Intn(24)) / 24
		foreign := float64(rng.Intn(2))
		logit := 3*merchantRisk[m] + 2*amount + foreign - 3
		if hour < 0.25 {
			logit += 0.5
		}
		fraudScore := 1 / (1 + math.Exp(-logit))
		err := txns.Append(int64(i), []int64{int64(m)},
			[]float64{amount, hour, foreign}, fraudScore)
		if err != nil {
			log.Fatal(err)
		}
	}

	ds, err := db.Dataset(txns)
	if err != nil {
		log.Fatal(err)
	}

	cfg := factorml.NNConfig{
		Hidden: []int{16, 8}, Act: factorml.ReLU,
		Epochs: 60, LearningRate: 0.2,
		Mode: factorml.BlockUpdates, // mini-batch: one step per join block
	}
	stream, err := factorml.TrainNN(ds, factorml.Streaming, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fact, err := factorml.TrainNN(ds, factorml.Factorized, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fraud model over %d transactions ⋈ %d merchants (deep net %v, ReLU, block updates)\n",
		nTransactions, nMerchants, cfg.Hidden)
	fmt.Printf("S-NN: %v (%d mults), F-NN: %v (%d mults), param diff %.2e\n",
		stream.Stats.TrainTime, stream.Stats.Ops.Mul,
		fact.Stats.TrainTime, fact.Stats.Ops.Mul,
		stream.Net.MaxParamDiff(fact.Net))
	fmt.Printf("F-NN eliminates %.1f%% of multiplications; with a deep net most work\n",
		100*float64(stream.Stats.Ops.Mul-fact.Stats.Ops.Mul)/float64(stream.Stats.Ops.Mul))
	fmt.Println("sits in the unfactorized upper layers — the paper's §VI-A2 point that")
	fmt.Println("sharing beyond layer 1 does not pay (see the single-layer benchmarks")
	fmt.Println("for the headline speedups).")
	fmt.Printf("loss: first epoch %.5f -> last epoch %.5f\n",
		fact.Stats.Loss[0], fact.Stats.FinalLoss())

	// Rank transactions by predicted fraud score and check the top decile
	// is enriched in genuinely risky transactions.
	var all []scored
	err = ds.Stream(func(_ int64, x []float64, y float64) error {
		all = append(all, scored{fact.Net.Predict(x), y})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	var sumTop, sumAll float64
	nTop := len(all) / 10
	// Partial selection: find the top decile by predicted score.
	threshold := quantile(all, 0.9)
	count := 0
	for _, s := range all {
		sumAll += s.actual
		if s.pred >= threshold && count < nTop {
			sumTop += s.actual
			count++
		}
	}
	fmt.Printf("mean true fraud score: top decile by prediction %.3f vs population %.3f (lift %.2fx)\n",
		sumTop/float64(count), sumAll/float64(len(all)),
		(sumTop/float64(count))/(sumAll/float64(len(all))))
}

// quantile returns the q-th quantile of predicted scores.
func quantile(all []scored, q float64) float64 {
	preds := make([]float64, len(all))
	for i, s := range all {
		preds[i] = s.pred
	}
	sort.Float64s(preds)
	idx := int(q * float64(len(preds)))
	if idx >= len(preds) {
		idx = len(preds) - 1
	}
	return preds[idx]
}
