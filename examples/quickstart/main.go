// Quickstart: build a tiny normalized schema through the public API, train
// the same GMM with the materialized baseline and the factorized algorithm,
// and verify the models are identical while the factorized run does less
// work.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"factorml"
)

func main() {
	dir, err := os.MkdirTemp("", "factorml-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := factorml.Open(dir, factorml.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Normalized schema: Orders(sid, fk→Items; amount, hour) ⋈ Items(rid;
	// price, size, weight). The paper's introductory example.
	itemCols := []string{"price", "size", "weight",
		"cat_grocery", "cat_apparel", "cat_electronics", "cat_home", "cat_toys"}
	items, err := db.CreateDimensionTable("items", itemCols)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const nItems, nOrders = 200, 20000
	for i := 0; i < nItems; i++ {
		feats := []float64{
			10 + 90*rng.Float64(), // price
			float64(rng.Intn(5)),  // size class
			0.1 + 5*rng.Float64(), // weight
		}
		for c := 0; c < 5; c++ { // category affinity scores
			feats = append(feats, rng.Float64())
		}
		if err := items.Append(int64(i), feats); err != nil {
			log.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount", "hour"}, false, items)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nOrders; i++ {
		err := orders.Append(int64(i), []int64{int64(rng.Intn(nItems))},
			[]float64{1 + 4*rng.Float64(), float64(rng.Intn(24))}, 0)
		if err != nil {
			log.Fatal(err)
		}
	}

	ds, err := db.Dataset(orders)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d orders ⋈ %d items, joined width %d\n",
		ds.NumRows(), nItems, ds.JoinedWidth())

	cfg := factorml.GMMConfig{K: 4, MaxIter: 8, Tol: 1e-12}
	baseline, err := factorml.TrainGMM(ds, factorml.Materialized, cfg)
	if err != nil {
		log.Fatal(err)
	}
	factored, err := factorml.TrainGMM(ds, factorml.Factorized, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("M-GMM: %8v, %12d multiplies\n", baseline.Stats.TrainTime, baseline.Stats.Ops.Mul)
	fmt.Printf("F-GMM: %8v, %12d multiplies\n", factored.Stats.TrainTime, factored.Stats.Ops.Mul)
	fmt.Printf("speedup: %.2fx wall clock, %.2fx fewer multiplies\n",
		float64(baseline.Stats.TrainTime)/float64(factored.Stats.TrainTime),
		float64(baseline.Stats.Ops.Mul)/float64(factored.Stats.Ops.Mul))
	fmt.Printf("max parameter difference: %.2e (exact decomposition)\n",
		baseline.Model.MaxParamDiff(factored.Model))
}
