// Streaming walkthrough: train and serve models over a normalized star
// schema, then keep them fresh while the data changes — new orders stream
// in through the change feed, a dimension tuple (an item's attributes) is
// updated in place, and the models are refreshed incrementally: the GMM
// refresh costs time proportional to the delta (one warm-start EM step
// from maintained factorized statistics, bit-identical to recomputing
// over base+delta), while the served predictions pick up dimension
// updates immediately through surgical cache invalidation — all without
// restarting the server.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"

	"factorml"
)

func main() {
	dir, err := os.MkdirTemp("", "factorml-streaming-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := factorml.Open(dir, factorml.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Normalized schema: Orders(sid, fk→Items; amount, hour) ⋈ Items(rid;
	// price, size, weight).
	items, err := db.CreateDimensionTable("items", []string{"price", "size", "weight"})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const nItems, nOrders = 80, 4000
	for i := 0; i < nItems; i++ {
		feats := []float64{10 + 90*rng.Float64(), float64(rng.Intn(5)), 0.1 + 5*rng.Float64()}
		if err := items.Append(int64(i), feats); err != nil {
			log.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount", "hour"}, true, items)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nOrders; i++ {
		if err := orders.Append(int64(i), []int64{int64(rng.Intn(nItems))},
			[]float64{1 + 4*rng.Float64(), float64(rng.Intn(24))}, 10*rng.NormFloat64()); err != nil {
			log.Fatal(err)
		}
	}
	ds, err := db.Dataset(orders)
	if err != nil {
		log.Fatal(err)
	}

	// Train factorized and persist in the registry.
	gres, err := factorml.TrainGMM(ds, factorml.Factorized, factorml.GMMConfig{K: 3, MaxIter: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.SaveGMM("orders-gmm", gres.Model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained orders-gmm over %d orders (LL %.1f)\n", nOrders, gres.Stats.FinalLL())

	// Boot the streaming prediction server: serving + change feed in one
	// handler. Every 1000 pending rows trigger an automatic refresh.
	handler, _, err := factorml.NewStreamingPredictionServer(db, "orders", []string{"items"},
		factorml.ServeConfig{}, factorml.StreamPolicy{RefreshRows: 1000})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving + streaming on %s\n", base)

	predict := func() (float64, int) {
		resp, err := http.Post(base+"/v1/models/orders-gmm/predict", "application/json",
			strings.NewReader(`{"rows":[{"fact":[2.5,14],"fks":[7]}]}`))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Version     int `json:"version"`
			Predictions []struct {
				LogProb float64 `json:"log_prob"`
			} `json:"predictions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out.Predictions[0].LogProb, out.Version
	}

	lp0, v0 := predict()
	fmt.Printf("before any delta:         log p(x) = %.4f (model version %d)\n", lp0, v0)

	// 1. Update item 7 in place: the very next prediction reflects it —
	// the server invalidated exactly the cached partials of item 7.
	post := func(body string) map[string]any {
		resp, err := http.Post(base+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != 200 {
			log.Fatalf("ingest failed: %v", m)
		}
		return m
	}
	post(`{"dims":[{"table":"items","rid":7,"features":[55,2,1.25]}]}`)
	lp1, v1 := predict()
	fmt.Printf("after dim update (live):  log p(x) = %.4f (model version %d, no refresh needed)\n", lp1, v1)

	// 2. Stream 1200 new orders in three batches; the third crosses the
	// 1000-row policy and triggers an automatic incremental refresh, which
	// republishes the model — the server picks up version 2 on its own.
	sid := int64(nOrders)
	for b := 0; b < 3; b++ {
		var rows []string
		for i := 0; i < 400; i++ {
			rows = append(rows, fmt.Sprintf(`{"sid":%d,"fks":[%d],"features":[%.3f,%d],"target":%.3f}`,
				sid, rng.Intn(nItems), 1+4*rng.Float64(), rng.Intn(24), 10*rng.NormFloat64()))
			sid++
		}
		res := post(`{"facts":[` + strings.Join(rows, ",") + `]}`)
		fmt.Printf("batch %d: pending_rows=%v refresh_triggered=%v\n", b+1, res["pending_rows"], res["refresh_triggered"])
	}
	lp2, v2 := predict()
	fmt.Printf("after auto refresh:       log p(x) = %.4f (model version %d)\n", lp2, v2)

	// Stream counters land in /statsz next to the serving counters.
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	var stats struct {
		DimInvalidations uint64 `json:"dim_invalidations"`
		Stream           struct {
			FactsIngested uint64 `json:"facts_ingested"`
			DimUpdates    uint64 `json:"dim_updates"`
			Refreshes     uint64 `json:"refreshes"`
			AutoRefreshes uint64 `json:"auto_refreshes"`
		} `json:"stream"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("statsz: %d facts ingested, %d dim updates (%d cache invalidations), %d refreshes (%d automatic)\n",
		stats.Stream.FactsIngested, stats.Stream.DimUpdates, stats.DimInvalidations,
		stats.Stream.Refreshes, stats.Stream.AutoRefreshes)
}
