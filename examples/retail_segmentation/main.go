// Retail segmentation: soft-cluster customer orders with a full-covariance
// GMM trained directly over the normalized Orders ⋈ Items schema — the
// paper's motivating scenario ("an analyst modeling customer shopping
// trends"). Demonstrates that F-GMM never materializes the join and reports
// per-segment profiles.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"factorml"
)

// Three ground-truth shopper archetypes drive the synthetic orders:
// bargain hunters (cheap items, many units), premium shoppers (expensive
// items, few units) and bulk buyers (mid-price, heavy items).
type archetype struct {
	name     string
	priceMu  float64
	amountMu float64
	weightMu float64
}

var archetypes = []archetype{
	{"bargain", 12, 8, 1.0},
	{"premium", 140, 1.5, 0.6},
	{"bulk", 55, 20, 8.0},
}

func main() {
	dir, err := os.MkdirTemp("", "factorml-retail-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := factorml.Open(dir, factorml.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	const nItems, nOrders = 300, 30000

	// Items carry the archetype signal in price and weight; each item
	// belongs to the catalog segment of one archetype.
	items, err := db.CreateDimensionTable("items", []string{"price", "weight"})
	if err != nil {
		log.Fatal(err)
	}
	itemArch := make([]int, nItems)
	for i := 0; i < nItems; i++ {
		a := rng.Intn(len(archetypes))
		itemArch[i] = a
		err := items.Append(int64(i), []float64{
			archetypes[a].priceMu * (0.8 + 0.4*rng.Float64()),
			archetypes[a].weightMu * (0.8 + 0.4*rng.Float64()),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount"}, false, items)
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]int, nOrders)
	for i := 0; i < nOrders; i++ {
		item := rng.Intn(nItems)
		a := itemArch[item]
		truth[i] = a
		amount := archetypes[a].amountMu * math.Abs(1+0.3*rng.NormFloat64())
		if err := orders.Append(int64(i), []int64{int64(item)}, []float64{amount}, 0); err != nil {
			log.Fatal(err)
		}
	}

	ds, err := db.Dataset(orders)
	if err != nil {
		log.Fatal(err)
	}

	res, err := factorml.TrainGMM(ds, factorml.Factorized, factorml.GMMConfig{
		K: len(archetypes), MaxIter: 40, Tol: 1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F-GMM trained in %v over %d orders (no join materialized: %d pages written)\n",
		res.Stats.TrainTime, ds.NumRows(), res.Stats.IO.PageWrites)
	fmt.Printf("converged=%v after %d EM iterations, log-likelihood %.1f\n",
		res.Stats.Converged, res.Stats.Iters, res.Stats.FinalLL())

	// Profile each learned segment: mean feature vector [amount, price,
	// weight] and its share of the order stream.
	fmt.Println("\nlearned segments (features: amount | price | weight):")
	for k := 0; k < res.Model.K; k++ {
		m := res.Model.Means[k]
		fmt.Printf("  segment %d: weight %.2f, amount %6.1f, price %6.1f, item-weight %5.2f\n",
			k, res.Model.Weights[k], m[0], m[1], m[2])
	}

	// Purity: how well the soft clusters recover the generating archetypes.
	assign := make(map[[2]int]int)
	i := 0
	err = ds.Stream(func(sid int64, x []float64, _ float64) error {
		k := res.Model.Predict(x)
		assign[[2]int{k, truth[i]}]++
		i++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for k := 0; k < res.Model.K; k++ {
		best := 0
		for a := range archetypes {
			if c := assign[[2]int{k, a}]; c > best {
				best = c
			}
		}
		correct += best
	}
	fmt.Printf("\ncluster purity vs ground-truth archetypes: %.1f%%\n",
		100*float64(correct)/float64(nOrders))
}
