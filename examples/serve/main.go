// Serving walkthrough: train a network and a mixture over a normalized
// star schema, persist them in the model registry, boot the factorized
// inference server, and query it over HTTP — demonstrating that served
// predictions match in-process evaluation and that repeated foreign keys
// hit the dimension cache (dimension-tuple work is done once, not once per
// row, at serve time just like at train time).
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"

	"factorml"
)

func main() {
	dir, err := os.MkdirTemp("", "factorml-serve-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := factorml.Open(dir, factorml.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Normalized schema: Orders(sid, fk→Items; amount, hour) ⋈ Items(rid;
	// price, size, weight).
	items, err := db.CreateDimensionTable("items", []string{"price", "size", "weight"})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const nItems, nOrders = 100, 5000
	itemFeats := make([][]float64, nItems)
	for i := 0; i < nItems; i++ {
		itemFeats[i] = []float64{10 + 90*rng.Float64(), float64(rng.Intn(5)), 0.1 + 5*rng.Float64()}
		if err := items.Append(int64(i), itemFeats[i]); err != nil {
			log.Fatal(err)
		}
	}
	orders, err := db.CreateFactTable("orders", []string{"amount", "hour"}, true, items)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nOrders; i++ {
		item := rng.Intn(nItems)
		amount := 1 + 4*rng.Float64()
		hour := float64(rng.Intn(24))
		target := amount*itemFeats[item][0] + 0.5*rng.NormFloat64()
		if err := orders.Append(int64(i), []int64{int64(item)}, []float64{amount, hour}, target); err != nil {
			log.Fatal(err)
		}
	}
	ds, err := db.Dataset(orders)
	if err != nil {
		log.Fatal(err)
	}

	// Train factorized, then persist both models in the registry.
	nres, err := factorml.TrainNN(ds, factorml.Factorized, factorml.NNConfig{Hidden: []int{16}, Epochs: 5})
	if err != nil {
		log.Fatal(err)
	}
	gres, err := factorml.TrainGMM(ds, factorml.Factorized, factorml.GMMConfig{K: 3, MaxIter: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.SaveNN("orders-nn", nres.Net); err != nil {
		log.Fatal(err)
	}
	if err := db.SaveGMM("orders-gmm", gres.Model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained and saved orders-nn (loss %.4f) and orders-gmm (LL %.1f)\n",
		nres.Stats.FinalLoss(), gres.Stats.FinalLL())

	// Boot the HTTP server on a free local port.
	handler, err := factorml.NewPredictionServer(db, []string{"items"}, factorml.ServeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// A batch of normalized rows: fact features + the item foreign key. The
	// join is never materialized — the server resolves fk→item features and
	// caches each item's partial computation once.
	body := `{"rows":[
		{"fact":[2.5,14],"fks":[7]},
		{"fact":[1.0,9],"fks":[7]},
		{"fact":[4.2,20],"fks":[13]}
	]}`
	resp, err := http.Post(base+"/v1/models/orders-nn/predict", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var nnOut struct {
		Predictions []struct {
			Output float64 `json:"output"`
		} `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&nnOut); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()

	// Check the first served prediction against in-process evaluation over
	// the assembled joined vector.
	joined := append([]float64{2.5, 14}, itemFeats[7]...)
	inProc := nres.Net.Predict(joined)
	fmt.Printf("served nn outputs: %.6f %.6f %.6f\n",
		nnOut.Predictions[0].Output, nnOut.Predictions[1].Output, nnOut.Predictions[2].Output)
	fmt.Printf("in-process Predict over the joined row: %.6f (diff %.2g)\n",
		inProc, math.Abs(inProc-nnOut.Predictions[0].Output))

	resp, err = http.Post(base+"/v1/models/orders-gmm/predict", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var gmmOut struct {
		Predictions []struct {
			LogProb float64 `json:"log_prob"`
			Cluster int     `json:"cluster"`
		} `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gmmOut); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for i, p := range gmmOut.Predictions {
		fmt.Printf("served gmm row %d: log p(x) = %.3f, cluster %d\n", i, p.LogProb, p.Cluster)
	}

	// The repeated fks=[7] rows hit the dimension cache.
	resp, err = http.Get(base + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	var stats struct {
		Hits    uint64  `json:"dim_cache_hits"`
		Misses  uint64  `json:"dim_cache_misses"`
		HitRate float64 `json:"dim_cache_hit_rate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("dimension cache: %d hits / %d misses (hit rate %.0f%%)\n",
		stats.Hits, stats.Misses, 100*stats.HitRate)
}
