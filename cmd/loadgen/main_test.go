package main

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("predict=0.9,ingest=0.08,refresh=0.02")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	if m.predict != 0.9 || m.ingest != 0.08 || m.refresh != 0.02 {
		t.Fatalf("weights = %+v", m)
	}

	m, err = parseMix("predict=1")
	if err != nil || m.predict != 1 || m.ingest != 0 || m.refresh != 0 {
		t.Fatalf("predict-only mix = %+v, err %v", m, err)
	}

	// Spaces and empty entries are tolerated.
	if _, err := parseMix(" predict=0.5 , ingest=0.5 ,"); err != nil {
		t.Fatalf("spaced mix rejected: %v", err)
	}

	for _, bad := range []string{
		"predict",            // no weight
		"predict=nope",       // non-numeric
		"predict=-1",         // negative
		"scan=1",             // unknown endpoint
		"predict=0,ingest=0", // no positive weight
		"",                   // empty
	} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates("50, 100,200.5")
	if err != nil {
		t.Fatalf("parseRates: %v", err)
	}
	if len(rates) != 3 || rates[0] != 50 || rates[1] != 100 || rates[2] != 200.5 {
		t.Fatalf("rates = %v", rates)
	}
	for _, bad := range []string{"", "0", "-5", "abc", "50,x"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestPctIndex(t *testing.T) {
	cases := []struct {
		q    float64
		want int
	}{
		{0.50, 49},
		{0.99, 98},
		{0.999, 99},
		{1.0, 99},
		{0.001, 0}, // clamps at the low end
	}
	for _, c := range cases {
		if got := pctIndex(100, c.q); got != c.want {
			t.Errorf("pctIndex(100, q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestReport(t *testing.T) {
	r := report(nil)
	if r.Count != 0 || r.MaxMs != 0 {
		t.Fatalf("empty report = %+v", r)
	}
	// Unsorted input: report must sort a copy without mutating the input,
	// and the tail entries must carry the request ids of the exact
	// requests at the p999 and max latencies.
	in := []sample{{5, "e"}, {1, "a"}, {3, "c"}, {2, "b"}, {4, "d"}}
	r = report(in)
	if r.Count != 5 || r.MaxMs != 5 || r.P50Ms != 3 {
		t.Fatalf("report = %+v", r)
	}
	if r.MaxRequestID != "e" || r.P999RequestID != "e" {
		t.Fatalf("tail request ids = %q/%q, want e/e", r.P999RequestID, r.MaxRequestID)
	}
	if in[0].ms != 5 {
		t.Fatalf("report mutated its input: %v", in)
	}
}

func TestGeneratorTraceparent(t *testing.T) {
	g := &generator{rng: rand.New(rand.NewSource(7))}
	h := g.traceparent()
	if len(h) != 55 || h[:3] != "00-" || h[len(h)-3:] != "-01" {
		t.Fatalf("traceparent = %q", h)
	}
	if h2 := g.traceparent(); h2 == h {
		t.Fatalf("consecutive traceparents identical: %q", h)
	}
}

func TestGeneratorBodies(t *testing.T) {
	g := &generator{
		rng:       rand.New(rand.NewSource(42)),
		factWidth: 3, fkMax: []int64{10, 5},
		rows: 2, ingestRows: 3,
		sid: 1 << 40, model: "m",
	}

	var pred struct {
		Rows []struct {
			Fact []float64 `json:"fact"`
			FKs  []int64   `json:"fks"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(g.predictBody(), &pred); err != nil {
		t.Fatalf("predict body is not JSON: %v", err)
	}
	if len(pred.Rows) != 2 {
		t.Fatalf("predict rows = %d", len(pred.Rows))
	}
	for _, row := range pred.Rows {
		if len(row.Fact) != 3 || len(row.FKs) != 2 {
			t.Fatalf("row shape = %+v", row)
		}
		if row.FKs[0] < 0 || row.FKs[0] >= 10 || row.FKs[1] < 0 || row.FKs[1] >= 5 {
			t.Fatalf("fk out of bounds: %+v", row.FKs)
		}
	}

	var ing struct {
		Facts []struct {
			SID      int64     `json:"sid"`
			FKs      []int64   `json:"fks"`
			Features []float64 `json:"features"`
			Target   float64   `json:"target"`
		} `json:"facts"`
	}
	if err := json.Unmarshal(g.ingestBody(), &ing); err != nil {
		t.Fatalf("ingest body is not JSON: %v", err)
	}
	if len(ing.Facts) != 3 {
		t.Fatalf("ingest facts = %d", len(ing.Facts))
	}
	for i, f := range ing.Facts {
		if f.SID != int64(1<<40)+int64(i) {
			t.Fatalf("sid[%d] = %d, want sequential from 1<<40", i, f.SID)
		}
		if len(f.FKs) != 2 || len(f.Features) != 3 {
			t.Fatalf("fact shape = %+v", f)
		}
		if math.IsNaN(f.Target) {
			t.Fatalf("target is NaN")
		}
	}
	// A second batch continues the sid sequence — no collisions.
	if err := json.Unmarshal(g.ingestBody(), &ing); err != nil {
		t.Fatalf("second ingest body: %v", err)
	}
	if ing.Facts[0].SID != int64(1<<40)+3 {
		t.Fatalf("second batch sid = %d", ing.Facts[0].SID)
	}
}

func TestStepRunReport(t *testing.T) {
	run := &stepRun{
		targetRPS: 100, duration: 2 * time.Second,
		sent: 10, failed: 1,
		statuses: map[string]int{"200": 8, "429": 1},
		stats: map[string]*endpointStats{
			"predict": {count: 7, samples: []sample{{1, ""}, {2, ""}, {3, ""}, {4, ""}, {5, ""}, {6, ""}, {7, ""}}},
			"ingest":  {count: 2, samples: []sample{{10, ""}, {20, ""}}},
		},
		elapsed: 3 * time.Second,
	}
	res := run.report()
	if res.Completed != 9 || res.Sent != 10 || res.Failed != 1 {
		t.Fatalf("report = %+v", res)
	}
	if got := res.AchievedRPS; math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("achieved_rps = %v, want 3", got)
	}
	if res.Endpoints["predict"].P50Ms != 4 || res.Endpoints["ingest"].MaxMs != 20 {
		t.Fatalf("endpoint reports = %+v", res.Endpoints)
	}

	// Zero elapsed must not divide by zero.
	run.elapsed = 0
	if got := run.report().AchievedRPS; got != 0 {
		t.Fatalf("achieved_rps with zero elapsed = %v", got)
	}
}

// TestRunStepOpenLoop fires a short step at a local server and checks
// the open-loop accounting: every arrival is sent, completions carry
// statuses and latencies, and transport errors are counted separately.
func TestRunStepOpenLoop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if strings.HasSuffix(r.URL.Path, "/refresh") {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	calls := 0
	pick := func() arrival {
		calls++
		if calls%3 == 0 {
			return arrival{endpoint: "refresh", path: "/v1/refresh"}
		}
		return arrival{endpoint: "predict", path: "/v1/models/m/predict", body: []byte(`{}`)}
	}
	client := &http.Client{Timeout: 2 * time.Second}
	run := runStep(client, srv.URL, 200, 200*time.Millisecond, pick)

	if run.sent == 0 {
		t.Fatal("no arrivals fired")
	}
	if run.failed != 0 {
		t.Fatalf("transport errors against a live server: %d", run.failed)
	}
	if int(hits.Load()) != run.sent {
		t.Fatalf("server saw %d requests, loadgen sent %d", hits.Load(), run.sent)
	}
	completed := 0
	for _, s := range run.stats {
		completed += s.count
		if len(s.samples) != s.count {
			t.Fatalf("sample count mismatch: %d vs %d", len(s.samples), s.count)
		}
	}
	if completed != run.sent {
		t.Fatalf("completed %d != sent %d", completed, run.sent)
	}
	if run.statuses["200"] == 0 || run.statuses["429"] == 0 {
		t.Fatalf("statuses = %v, want both 200 and 429", run.statuses)
	}
	if run.elapsed < 100*time.Millisecond {
		t.Fatalf("elapsed %v far shorter than the 200ms step", run.elapsed)
	}

	// A dead server turns into transport errors, not a crash.
	srv.Close()
	run = runStep(client, srv.URL, 100, 50*time.Millisecond, pick)
	if run.failed != run.sent || run.failed == 0 {
		t.Fatalf("dead server: failed=%d sent=%d", run.failed, run.sent)
	}
}
