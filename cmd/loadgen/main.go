// Command loadgen drives mixed traffic against a running factorml serve
// instance and reports latency percentiles and saturation throughput.
//
// Traffic is open-loop: arrivals fire on a fixed schedule derived from
// the target rate regardless of how fast the server answers, so
// overload shows up as growing latency and 429/503 rejections instead
// of the generator politely slowing down (closed-loop coordination
// omission). The schedule ramps through the -rates list, one step of
// -step duration per rate, and the mix of predict/ingest/refresh
// requests follows the -mix weights.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -model smoke-nn \
//	    -mix predict=0.9,ingest=0.08,refresh=0.02 \
//	    -rates 50,100,200,400 -step 5s -out BENCH_load.json
//
// The report (written to -out as JSON) carries, per step and overall:
// request counts by status code, achieved throughput, and
// p50/p99/p999/max latency per endpoint. The saturation throughput is
// the highest completed-request rate achieved across the ramp — beyond
// it, extra offered load only produces rejections or queueing.
//
// Predict rows are synthesized from -fact-width and -fk-max (foreign
// keys are drawn uniformly from [0, fk-max)); ingest batches append
// -ingest-facts fact rows per request with unique synthetic ids starting
// at -sid-start, so repeated runs against the same database never
// collide. All randomness is seeded (-seed) for reproducible schedules.
//
// -wire selects the predict request encoding: json (the default), binary
// (the length-prefixed little-endian wire format, Content-Type
// application/x-factorml-binary), or both — which alternates encodings
// request by request and reports them as separate endpoints
// (predict_json / predict_binary), so one run's BENCH_load.json carries
// the JSON-vs-binary latency comparison side by side at identical
// offered load.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"factorml/internal/serve"
)

type mixWeights struct {
	predict, ingest, refresh float64
}

func parseMix(s string) (mixWeights, error) {
	var m mixWeights
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix weight %q must be a number >= 0", kv[1])
		}
		switch kv[0] {
		case "predict":
			m.predict = w
		case "ingest":
			m.ingest = w
		case "refresh":
			m.refresh = w
		default:
			return m, fmt.Errorf("unknown mix endpoint %q (want predict/ingest/refresh)", kv[0])
		}
	}
	if m.predict+m.ingest+m.refresh <= 0 {
		return m, fmt.Errorf("mix %q has no positive weight", s)
	}
	return m, nil
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("rate %q must be a number > 0", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("empty rate schedule")
	}
	return rates, nil
}

// endpointStats accumulates one endpoint's completions within a step.
type endpointStats struct {
	count   int
	samples []sample
}

// sample is one completed request: its latency and the X-Request-Id the
// server stamped on the response, so the report can name the exact
// requests behind the tail percentiles (look them up in the server's
// /debug/traces/slow flight recorder).
type sample struct {
	ms float64
	id string
}

// stepResult is one ramp step's report.
type stepResult struct {
	TargetRPS   float64                   `json:"target_rps"`
	DurationS   float64                   `json:"duration_s"`
	Sent        int                       `json:"sent"`
	Completed   int                       `json:"completed"`
	Failed      int                       `json:"transport_errors"`
	Statuses    map[string]int            `json:"statuses"`
	AchievedRPS float64                   `json:"achieved_rps"`
	Endpoints   map[string]*latencyReport `json:"endpoints"`
}

type latencyReport struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	// The X-Request-Id of the requests at the p999 and max latencies —
	// the handles for chasing this endpoint's tail through the server's
	// slow-trace flight recorder.
	P999RequestID string `json:"p999_request_id,omitempty"`
	MaxRequestID  string `json:"max_request_id,omitempty"`
}

func pctIndex(n int, q float64) int {
	idx := int(q*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

func report(samples []sample) *latencyReport {
	if len(samples) == 0 {
		return &latencyReport{}
	}
	sorted := append([]sample{}, samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ms < sorted[j].ms })
	p999 := sorted[pctIndex(len(sorted), 0.999)]
	worst := sorted[len(sorted)-1]
	return &latencyReport{
		Count:         len(sorted),
		P50Ms:         sorted[pctIndex(len(sorted), 0.50)].ms,
		P99Ms:         sorted[pctIndex(len(sorted), 0.99)].ms,
		P999Ms:        p999.ms,
		MaxMs:         worst.ms,
		P999RequestID: p999.id,
		MaxRequestID:  worst.id,
	}
}

// generator owns the synthetic request bodies.
type generator struct {
	rng        *rand.Rand
	factWidth  int
	fkMax      []int64
	rows       int
	ingestRows int
	sid        int64
	model      string
}

func (g *generator) predictBody() []byte {
	var sb strings.Builder
	sb.WriteString(`{"rows":[`)
	for i := 0; i < g.rows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"fact":[`)
		for d := 0; d < g.factWidth; d++ {
			if d > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%.4f", g.rng.NormFloat64())
		}
		sb.WriteString(`],"fks":[`)
		for k, max := range g.fkMax {
			if k > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", g.rng.Int63n(max))
		}
		sb.WriteString(`]}`)
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

// predictBinaryBody synthesizes the same shaped batch as predictBody but
// encodes it as a binary wire-format request. The per-value rng draws
// match the JSON generator's, so a -wire both run offers statistically
// identical work to both encodings.
func (g *generator) predictBinaryBody() []byte {
	rows := make([]serve.Row, g.rows)
	for i := range rows {
		fact := make([]float64, g.factWidth)
		for d := range fact {
			fact[d] = g.rng.NormFloat64()
		}
		fks := make([]int64, len(g.fkMax))
		for k, max := range g.fkMax {
			fks[k] = g.rng.Int63n(max)
		}
		rows[i] = serve.Row{Fact: fact, FKs: fks}
	}
	// Uniform shape by construction, so the encoder cannot fail.
	body, err := serve.AppendBinaryRequest(nil, rows)
	if err != nil {
		panic(err)
	}
	return body
}

func (g *generator) ingestBody() []byte {
	var sb strings.Builder
	sb.WriteString(`{"facts":[`)
	for i := 0; i < g.ingestRows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"sid":%d,"fks":[`, g.sid)
		g.sid++
		for k, max := range g.fkMax {
			if k > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", g.rng.Int63n(max))
		}
		sb.WriteString(`],"features":[`)
		for d := 0; d < g.factWidth; d++ {
			if d > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%.4f", g.rng.NormFloat64())
		}
		fmt.Fprintf(&sb, `],"target":%.4f}`, g.rng.NormFloat64())
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

// traceparent synthesizes a sampled W3C traceparent header (version 00,
// flags 01) from the seeded rng, so trace-carrying requests are as
// reproducible as the rest of the schedule. The low bit is forced so the
// ids can never be the all-zero invalid values.
func (g *generator) traceparent() string {
	return fmt.Sprintf("00-%016x%016x-%016x-01",
		g.rng.Uint64()|1, g.rng.Uint64()|1, g.rng.Uint64()|1)
}

// arrival is one scheduled request, prepared on the scheduler goroutine
// so the workers never share the rng.
type arrival struct {
	endpoint    string
	path        string
	body        []byte
	contentType string // empty means application/json
	traceparent string // non-empty on the -trace-fraction sample
}

func main() {
	url := flag.String("url", "", "base URL of the serve instance (required)")
	model := flag.String("model", "", "model name for predict traffic (required when the mix predicts)")
	mixFlag := flag.String("mix", "predict=1", "traffic mix weights, e.g. predict=0.9,ingest=0.08,refresh=0.02")
	ratesFlag := flag.String("rates", "50,100,200", "ramp schedule: comma-separated open-loop arrival rates (requests/second)")
	step := flag.Duration("step", 5*time.Second, "duration of each ramp step")
	rows := flag.Int("rows", 4, "rows per predict request")
	factWidth := flag.Int("fact-width", 3, "fact features per synthesized row")
	fkMaxFlag := flag.String("fk-max", "20", "comma-separated per-dimension foreign-key bounds (keys drawn from [0, bound))")
	ingestRows := flag.Int("ingest-facts", 16, "fact rows per ingest batch")
	sidStart := flag.Int64("sid-start", 1<<40, "first synthetic fact id for ingest batches")
	seed := flag.Int64("seed", 1, "rng seed for schedules and bodies")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	wire := flag.String("wire", "json", "predict request encoding: json, binary, or both (alternating; reported as predict_json / predict_binary)")
	traceFraction := flag.Float64("trace-fraction", 0.1, "fraction of requests carrying a sampled W3C traceparent header, forcing the server to record their span tree (0 disables)")
	out := flag.String("out", "BENCH_load.json", "report output path")
	flag.Parse()

	if *url == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url is required")
		os.Exit(2)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	if mix.predict > 0 && *model == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -model is required when the mix includes predict")
		os.Exit(2)
	}
	rates, err := parseRates(*ratesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	if *rows < 1 || *factWidth < 1 || *ingestRows < 1 || *step <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -rows, -fact-width, -ingest-facts must be >= 1 and -step > 0")
		os.Exit(2)
	}
	if *traceFraction < 0 || *traceFraction > 1 {
		fmt.Fprintf(os.Stderr, "loadgen: -trace-fraction must be in [0, 1], got %g\n", *traceFraction)
		os.Exit(2)
	}
	if *wire != "json" && *wire != "binary" && *wire != "both" {
		fmt.Fprintf(os.Stderr, "loadgen: -wire must be json, binary or both, got %q\n", *wire)
		os.Exit(2)
	}
	var fkMax []int64
	for _, part := range strings.Split(*fkMaxFlag, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "loadgen: fk bound %q must be an integer >= 1\n", part)
			os.Exit(2)
		}
		fkMax = append(fkMax, v)
	}

	gen := &generator{
		rng:       rand.New(rand.NewSource(*seed)),
		factWidth: *factWidth, fkMax: fkMax,
		rows: *rows, ingestRows: *ingestRows,
		sid: *sidStart, model: *model,
	}
	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*url, "/")

	total := mix.predict + mix.ingest + mix.refresh
	binaryTurn := false // -wire both alternates encodings deterministically
	pick := func() arrival {
		var a arrival
		r := gen.rng.Float64() * total
		switch {
		case r < mix.predict:
			path := "/v1/models/" + gen.model + "/predict"
			useBinary := *wire == "binary" || (*wire == "both" && binaryTurn)
			if *wire == "both" {
				binaryTurn = !binaryTurn
			}
			switch {
			case useBinary:
				a = arrival{endpoint: "predict_binary", path: path, body: gen.predictBinaryBody(), contentType: serve.BinaryContentType}
			case *wire == "both":
				a = arrival{endpoint: "predict_json", path: path, body: gen.predictBody()}
			default:
				a = arrival{endpoint: "predict", path: path, body: gen.predictBody()}
			}
		case r < mix.predict+mix.ingest:
			a = arrival{endpoint: "ingest", path: "/v1/ingest", body: gen.ingestBody()}
		default:
			a = arrival{endpoint: "refresh", path: "/v1/refresh"}
		}
		if *traceFraction > 0 && gen.rng.Float64() < *traceFraction {
			a.traceparent = gen.traceparent()
		}
		return a
	}

	var steps []stepResult
	allSamples := map[string][]sample{}
	for _, rate := range rates {
		fmt.Printf("loadgen: step %.0f req/s for %s\n", rate, *step)
		res := runStep(client, base, rate, *step, pick)
		for ep, s := range res.stats {
			allSamples[ep] = append(allSamples[ep], s.samples...)
		}
		steps = append(steps, res.report())
	}

	overall := map[string]*latencyReport{}
	for ep, ds := range allSamples {
		overall[ep] = report(ds)
	}
	saturation := 0.0
	for _, s := range steps {
		if s.AchievedRPS > saturation {
			saturation = s.AchievedRPS
		}
	}
	doc := map[string]any{
		"tool": "factorml-loadgen",
		"config": map[string]any{
			"url": base, "model": *model, "mix": *mixFlag, "rates": rates,
			"step_s": step.Seconds(), "rows": *rows, "fact_width": *factWidth,
			"fk_max": fkMax, "ingest_facts": *ingestRows, "seed": *seed,
			"trace_fraction": *traceFraction, "wire": *wire,
		},
		"steps":          steps,
		"overall":        overall,
		"saturation_rps": saturation,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("loadgen: saturation %.1f req/s, report written to %s\n", saturation, *out)
	for ep, r := range overall {
		fmt.Printf("loadgen: %-7s p50 %.2fms p99 %.2fms p999 %.2fms (n=%d)\n",
			ep, r.P50Ms, r.P99Ms, r.P999Ms, r.Count)
	}
}

// stepRun collects one step's raw results.
type stepRun struct {
	targetRPS float64
	duration  time.Duration
	sent      int
	failed    int
	statuses  map[string]int
	stats     map[string]*endpointStats
	elapsed   time.Duration
}

func (r *stepRun) report() stepResult {
	completed := 0
	eps := map[string]*latencyReport{}
	for ep, s := range r.stats {
		completed += s.count
		eps[ep] = report(s.samples)
	}
	achieved := 0.0
	if r.elapsed > 0 {
		achieved = float64(completed) / r.elapsed.Seconds()
	}
	return stepResult{
		TargetRPS: r.targetRPS, DurationS: r.duration.Seconds(),
		Sent: r.sent, Completed: completed, Failed: r.failed,
		Statuses: r.statuses, AchievedRPS: achieved, Endpoints: eps,
	}
}

// runStep fires open-loop arrivals at the target rate for the step
// duration and waits for the stragglers.
func runStep(client *http.Client, base string, rate float64, duration time.Duration, pick func() arrival) *stepRun {
	interval := time.Duration(float64(time.Second) / rate)
	run := &stepRun{
		targetRPS: rate, duration: duration,
		statuses: map[string]int{}, stats: map[string]*endpointStats{},
	}
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	deadline := start.Add(duration)
	for next := start; next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		a := pick() // on the scheduler goroutine: rng stays single-threaded
		run.sent++
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			var body *bytes.Reader
			if a.body != nil {
				body = bytes.NewReader(a.body)
			} else {
				body = bytes.NewReader(nil)
			}
			req, err := http.NewRequest(http.MethodPost, base+a.path, body)
			if err != nil {
				mu.Lock()
				run.failed++
				mu.Unlock()
				return
			}
			ct := a.contentType
			if ct == "" {
				ct = "application/json"
			}
			req.Header.Set("Content-Type", ct)
			if a.traceparent != "" {
				req.Header.Set("traceparent", a.traceparent)
			}
			t0 := time.Now()
			resp, err := client.Do(req)
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				run.failed++
				return
			}
			reqID := resp.Header.Get("X-Request-Id")
			resp.Body.Close()
			run.statuses[strconv.Itoa(resp.StatusCode)]++
			s := run.stats[a.endpoint]
			if s == nil {
				s = &endpointStats{}
				run.stats[a.endpoint] = s
			}
			s.count++
			s.samples = append(s.samples, sample{ms: ms, id: reqID})
		}(a)
	}
	wg.Wait()
	run.elapsed = time.Since(start)
	return run
}
