// Command datagen creates a workload database on disk, either a synthetic
// star schema with explicit cardinalities or a simulated instance of one of
// the paper's real datasets (Tables IV/V).
//
// Usage:
//
//	datagen -db orders.db -ns 100000 -nr 1000 -ds 5 -dr 15 [-nr2 … -dr2 …]
//	datagen -db orders.db -ns 100000 -nr 1000 -ds 5 -dr 15 -depth 3 -dims-per-level 2
//	datagen -db walmart.db -shape Walmart -scale 0.01
//	datagen -list
//
// The resulting database can be trained with the train command.
package main

import (
	"flag"
	"fmt"
	"os"

	"factorml/internal/data"
	"factorml/internal/storage"
)

func main() {
	dbDir := flag.String("db", "", "database directory to create")
	ns := flag.Int("ns", 100000, "fact-table cardinality")
	nr := flag.Int("nr", 1000, "dimension-table cardinality")
	ds := flag.Int("ds", 5, "fact feature width")
	dr := flag.Int("dr", 15, "dimension feature width")
	nr2 := flag.Int("nr2", 0, "second dimension table cardinality (0 = binary join)")
	dr2 := flag.Int("dr2", 0, "second dimension table feature width")
	depth := flag.Int("depth", 1, "dimension-hierarchy depth (1 = star, >1 = snowflake)")
	dimsPerLevel := flag.Int("dims-per-level", 1, "sub-dimension tables per dimension at each deeper level (needs -depth > 1)")
	seed := flag.Int64("seed", 1, "generator seed")
	target := flag.Bool("target", true, "generate a regression target (needed for NN)")
	shape := flag.String("shape", "", "generate a simulated real dataset by name instead")
	scale := flag.Float64("scale", 1.0, "scale factor for -shape")
	list := flag.Bool("list", false, "list the available real dataset shapes and exit")
	flag.Parse()

	if *list {
		fmt.Println("Available real dataset shapes (Tables IV/V of the paper):")
		for _, s := range data.RealShapes {
			kind := "binary"
			if s.Multi() {
				kind = "3-way"
			}
			fmt.Printf("  %-18s nS=%-8d dS=%-4d nR=%-6d dR=%-4d %s sparse=%v\n",
				s.Name, s.NS, s.DS, s.NR, s.DR, kind, s.Sparse)
		}
		return
	}
	if *dbDir == "" {
		fmt.Fprintln(os.Stderr, "datagen: -db is required (or -list)")
		os.Exit(2)
	}
	if err := validateFlags(*ns, *nr, *ds, *dr, *nr2, *dr2, *depth, *dimsPerLevel, *scale, *shape); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(2)
	}
	if err := run(*dbDir, *ns, *nr, *ds, *dr, *nr2, *dr2, *depth, *dimsPerLevel, *seed, *target, *shape, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// validateFlags rejects numeric flag values that would otherwise panic or
// loop in the generator (negative cardinalities, zero-or-negative widths,
// a second dimension table without a width, an out-of-range scale).
func validateFlags(ns, nr, ds, dr, nr2, dr2, depth, dimsPerLevel int, scale float64, shape string) error {
	if shape != "" {
		if scale <= 0 || scale > 1 {
			return fmt.Errorf("-scale must be in (0,1], got %g", scale)
		}
		return nil
	}
	if depth < 1 {
		return fmt.Errorf("-depth must be >= 1, got %d", depth)
	}
	if dimsPerLevel < 1 {
		return fmt.Errorf("-dims-per-level must be >= 1, got %d", dimsPerLevel)
	}
	if dimsPerLevel > 1 && depth == 1 {
		return fmt.Errorf("-dims-per-level needs -depth > 1, got depth %d", depth)
	}
	if ns < 1 {
		return fmt.Errorf("-ns must be >= 1, got %d", ns)
	}
	if nr < 1 {
		return fmt.Errorf("-nr must be >= 1, got %d", nr)
	}
	if ds < 1 {
		return fmt.Errorf("-ds must be >= 1, got %d", ds)
	}
	if dr < 1 {
		return fmt.Errorf("-dr must be >= 1, got %d", dr)
	}
	if nr2 < 0 || dr2 < 0 {
		return fmt.Errorf("-nr2 and -dr2 must be >= 0, got %d and %d", nr2, dr2)
	}
	if nr2 > 0 && dr2 < 1 {
		return fmt.Errorf("-dr2 must be >= 1 when -nr2 is set, got %d", dr2)
	}
	return nil
}

func run(dbDir string, ns, nr, ds, dr, nr2, dr2, depth, dimsPerLevel int, seed int64, target bool, shape string, scale float64) error {
	db, err := storage.Open(dbDir, storage.Options{PoolPages: -1})
	if err != nil {
		return err
	}
	defer db.Close()

	if shape != "" {
		sh, err := data.ShapeByName(shape)
		if err != nil {
			return err
		}
		spec, err := data.GenerateShape(db, sh, scale, seed)
		if err != nil {
			return err
		}
		report(spec.S.Schema().Name, spec.S.NumTuples(), len(spec.Rs))
		return nil
	}

	cfg := data.SynthConfig{
		NS: ns, NR: []int{nr}, DS: ds, DR: []int{dr},
		Depth: depth, DimsPerLevel: dimsPerLevel,
		Seed: seed, WithTarget: target,
	}
	if nr2 > 0 {
		cfg.NR = append(cfg.NR, nr2)
		cfg.DR = append(cfg.DR, dr2)
	}
	spec, err := data.Generate(db, "synth", cfg)
	if err != nil {
		return err
	}
	report(spec.S.Schema().Name, spec.S.NumTuples(), len(spec.Rs))
	return nil
}

func report(fact string, n int64, dims int) {
	fmt.Printf("created fact table %q (%d tuples) with %d dimension table(s)\n", fact, n, dims)
}
