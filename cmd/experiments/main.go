// Command experiments regenerates the paper's evaluation: every figure
// (3a-c, 4a-c, 5a-c, 6a-c) and both real-dataset tables (VI, VII).
//
// Usage:
//
//	experiments [-profile quick|paper] [-exp all|Fig3a|…|TableVII]
//	            [-out results] [-work /tmp/factorml-work]
//
// For each experiment it writes <out>/<name>.csv and appends a markdown
// section to <out>/RESULTS.md, printing progress rows to stderr as it goes.
// The quick profile finishes in minutes; the paper profile uses the paper's
// cardinalities (nS up to 5·10⁶) and takes hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"factorml/internal/experiments"
)

func main() {
	profile := flag.String("profile", "quick", "workload profile: quick or paper")
	exp := flag.String("exp", "all", "experiment to run (all, Fig3a..Fig6c, TableVI, TableVII)")
	out := flag.String("out", "results", "output directory for CSV and markdown")
	work := flag.String("work", "", "scratch directory for databases (default: a temp dir)")
	flag.Parse()

	if err := run(*profile, *exp, *out, *work); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(profileName, exp, out, work string) error {
	var p experiments.Profile
	switch profileName {
	case "quick":
		p = experiments.Quick
	case "paper":
		p = experiments.PaperProfile
	default:
		return fmt.Errorf("unknown profile %q (quick or paper)", profileName)
	}

	if work == "" {
		dir, err := os.MkdirTemp("", "factorml-work-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		work = dir
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	h := experiments.New(work, p, os.Stderr)

	names := []string{exp}
	if exp == "all" {
		names = experiments.Experiments()
	}
	results := make(map[string][]experiments.Row)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "== %s (profile %s) ==\n", name, p.Name)
		rows, err := h.Run(name)
		if err != nil {
			return err
		}
		results[name] = rows
		f, err := os.Create(filepath.Join(out, name+".csv"))
		if err != nil {
			return err
		}
		if err := experiments.WriteCSV(f, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	md, err := os.Create(filepath.Join(out, "RESULTS.md"))
	if err != nil {
		return err
	}
	defer md.Close()
	fmt.Fprintf(md, "# Experiment results (profile: %s)\n\n", p.Name)
	fmt.Fprintf(md, "Times are wall-clock per full training run; S/F and M/F are the\n")
	fmt.Fprintf(md, "speedups of the factorized algorithm over the streaming and\n")
	fmt.Fprintf(md, "materialized baselines (higher = F wins bigger).\n\n")
	return experiments.WriteAllMarkdown(md, results)
}
