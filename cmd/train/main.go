// Command train runs one of the six training algorithms (M/S/F × GMM/NN)
// over a star schema stored in a database directory created by datagen.
//
// Usage:
//
//	train -db orders.db -fact synth_S -dims synth_R1 -model gmm -algo f -k 5
//	train -db orders.db -fact synth_S -dims synth_R1,synth_R2 \
//	      -model nn -algo f -hidden 50 -epochs 10
//
// It prints training time, page I/O, multiplication counts and the model's
// final log-likelihood (GMM) or loss (NN).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/storage"
)

func main() {
	dbDir := flag.String("db", "", "database directory (from datagen)")
	fact := flag.String("fact", "", "fact table name")
	dims := flag.String("dims", "", "comma-separated dimension table names, join order")
	model := flag.String("model", "gmm", "model: gmm or nn")
	algo := flag.String("algo", "f", "algorithm: m (materialized), s (streaming), f (factorized)")
	k := flag.Int("k", 5, "GMM components")
	iters := flag.Int("iters", 10, "GMM max EM iterations")
	tol := flag.Float64("tol", 1e-4, "GMM convergence tolerance")
	hidden := flag.String("hidden", "50", "NN hidden layer sizes, comma-separated")
	act := flag.String("act", "sigmoid", "NN activation: sigmoid, tanh, relu, identity")
	epochs := flag.Int("epochs", 10, "NN training epochs")
	lr := flag.Float64("lr", 0.05, "NN learning rate")
	seed := flag.Int64("seed", 1, "initialization seed")
	workers := flag.Int("workers", 0, "training worker pool size (0 = all CPUs, 1 = sequential); the result is bit-identical for every value")
	flag.Parse()

	if *dbDir == "" || *fact == "" || *dims == "" {
		fmt.Fprintln(os.Stderr, "train: -db, -fact and -dims are required")
		os.Exit(2)
	}
	if err := run(*dbDir, *fact, *dims, *model, *algo, *k, *iters, *tol, *hidden, *act, *epochs, *lr, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run(dbDir, fact, dims, model, algo string, k, iters int, tol float64,
	hidden, act string, epochs int, lr float64, seed int64, workers int) error {

	db, err := storage.Open(dbDir, storage.Options{PoolPages: -1})
	if err != nil {
		return err
	}
	defer db.Close()

	sTbl, err := db.Table(fact)
	if err != nil {
		return err
	}
	spec := &join.Spec{S: sTbl}
	for _, name := range strings.Split(dims, ",") {
		rTbl, err := db.Table(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		spec.Rs = append(spec.Rs, rTbl)
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	switch model {
	case "gmm":
		cfg := gmm.Config{K: k, MaxIter: iters, Tol: tol, Seed: seed, NumWorkers: workers}
		var res *gmm.Result
		switch algo {
		case "m":
			res, err = gmm.TrainM(db, spec, cfg)
		case "s":
			res, err = gmm.TrainS(db, spec, cfg)
		case "f":
			res, err = gmm.TrainF(db, spec, cfg)
		default:
			return fmt.Errorf("unknown algorithm %q (m, s or f)", algo)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s-GMM over %s ⋈ %s\n", strings.ToUpper(algo), fact, dims)
		fmt.Printf("  iterations:     %d (converged=%v)\n", res.Stats.Iters, res.Stats.Converged)
		fmt.Printf("  log-likelihood: %.4f\n", res.Stats.FinalLL())
		fmt.Printf("  train time:     %v\n", res.Stats.TrainTime)
		fmt.Printf("  multiplies:     %d\n", res.Stats.Ops.Mul)
		fmt.Printf("  page IO:        %v\n", res.Stats.IO)
		return nil

	case "nn":
		var sizes []int
		for _, part := range strings.Split(hidden, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -hidden %q: %w", hidden, err)
			}
			sizes = append(sizes, v)
		}
		var activation nn.Activation
		switch act {
		case "sigmoid":
			activation = nn.Sigmoid
		case "tanh":
			activation = nn.Tanh
		case "relu":
			activation = nn.ReLU
		case "identity":
			activation = nn.Identity
		default:
			return fmt.Errorf("unknown activation %q", act)
		}
		cfg := nn.Config{Hidden: sizes, Act: activation, Epochs: epochs, LearningRate: lr, Seed: seed, NumWorkers: workers}
		var res *nn.Result
		switch algo {
		case "m":
			res, err = nn.TrainM(db, spec, cfg)
		case "s":
			res, err = nn.TrainS(db, spec, cfg)
		case "f":
			res, err = nn.TrainF(db, spec, cfg)
		default:
			return fmt.Errorf("unknown algorithm %q (m, s or f)", algo)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s-NN over %s ⋈ %s\n", strings.ToUpper(algo), fact, dims)
		fmt.Printf("  epochs:      %d\n", res.Stats.Epochs)
		fmt.Printf("  final loss:  %.6f\n", res.Stats.FinalLoss())
		fmt.Printf("  train time:  %v\n", res.Stats.TrainTime)
		fmt.Printf("  multiplies:  %d\n", res.Stats.Ops.Mul)
		fmt.Printf("  page IO:     %v\n", res.Stats.IO)
		return nil

	default:
		return fmt.Errorf("unknown model %q (gmm or nn)", model)
	}
}
