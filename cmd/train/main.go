// Command train runs one of the six training algorithms (M/S/F × GMM/NN)
// over a star schema stored in a database directory created by datagen —
// or lets the cost-based planner pick the strategy with -algo auto.
//
// Usage:
//
//	train -db orders.db -fact synth_S -dims synth_R1 -model gmm -algo f -k 5
//	train -db orders.db -fact synth_S -dims synth_R1,synth_R2 \
//	      -model nn -algo auto -hidden 50 -epochs 10 -save orders-nn
//	train -db orders.db -fact synth_S -dims synth_R1 -model gmm -k 5 -explain
//
// It prints training time, page I/O, multiplication counts and the model's
// final log-likelihood (GMM) or loss (NN). With -save the trained model is
// persisted in the database's model registry under the given name, ready
// for the serve command, together with its training lineage — trained-at
// time, row count, resolved strategy and the training-time baseline
// statistics the serve command's health monitor scores drift against.
// With -explain the planner's per-strategy cost
// table (estimated flops, page I/O and combined score from the catalog's
// table statistics) is printed and nothing is trained.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/monitor"
	"factorml/internal/nn"
	"factorml/internal/plan"
	"factorml/internal/serve"
	"factorml/internal/storage"
)

func main() {
	dbDir := flag.String("db", "", "database directory (from datagen)")
	fact := flag.String("fact", "", "fact table name")
	dims := flag.String("dims", "", "comma-separated dimension table names, join order")
	model := flag.String("model", "gmm", "model: gmm or nn")
	algo := flag.String("algo", "f", "algorithm: m (materialized), s (streaming), f (factorized), auto (cost-based planner)")
	k := flag.Int("k", 5, "GMM components")
	iters := flag.Int("iters", 10, "GMM max EM iterations")
	tol := flag.Float64("tol", 1e-4, "GMM convergence tolerance")
	hidden := flag.String("hidden", "50", "NN hidden layer sizes, comma-separated")
	act := flag.String("act", "sigmoid", "NN activation: sigmoid, tanh, relu, identity")
	epochs := flag.Int("epochs", 10, "NN training epochs")
	lr := flag.Float64("lr", 0.05, "NN learning rate")
	seed := flag.Int64("seed", 1, "initialization seed")
	workers := flag.Int("workers", 0, "training worker pool size (0 = all CPUs, 1 = sequential); the result is bit-identical for every value")
	save := flag.String("save", "", "save the trained model in the database's model registry under this name (for the serve command)")
	explain := flag.Bool("explain", false, "print the planner's per-strategy cost table for this dataset and configuration, then exit without training")
	tracePath := flag.String("trace", "", "write the per-pass phase-timing breakdown (scan, cache fill, fold, ordered merge) as JSON to this file and print the table after training")
	flag.Parse()

	if *dbDir == "" || *fact == "" || *dims == "" {
		fmt.Fprintln(os.Stderr, "train: -db, -fact and -dims are required")
		os.Exit(2)
	}
	if err := validateFlags(*model, *algo, *k, *iters, *tol, *epochs, *lr, *workers, *save); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(2)
	}
	if err := run(*dbDir, *fact, *dims, *model, *algo, *k, *iters, *tol, *hidden, *act, *epochs, *lr, *seed, *workers, *save, *explain, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

// validateFlags rejects unknown strategies and out-of-range numeric flags
// up front with a clear message, instead of passing them through to the
// trainers (where, e.g., an invalid -algo used to fall through to a late
// error and a negative -workers would silently clamp to sequential).
func validateFlags(model, algo string, k, iters int, tol float64, epochs int, lr float64, workers int, save string) error {
	switch algo {
	case "m", "s", "f", "auto":
	default:
		return fmt.Errorf("unknown -algo %q: valid strategies are m (materialized), s (streaming), f (factorized), auto (cost-based planner)", algo)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = all CPUs, 1 = sequential), got %d", workers)
	}
	switch model {
	case "gmm":
		if k < 1 {
			return fmt.Errorf("-k must be >= 1, got %d", k)
		}
		if iters < 1 {
			return fmt.Errorf("-iters must be >= 1, got %d", iters)
		}
		if tol < 0 {
			return fmt.Errorf("-tol must be >= 0, got %g", tol)
		}
	case "nn":
		if epochs < 1 {
			return fmt.Errorf("-epochs must be >= 1, got %d", epochs)
		}
		if lr <= 0 {
			return fmt.Errorf("-lr must be > 0, got %g", lr)
		}
		// An unknown -model is rejected by run's switch; this function only
		// range-checks the numeric flags of the known families.
	}
	if save != "" && !serve.ValidModelName(save) {
		return fmt.Errorf("-save %q is not a valid model name (1-64 chars: letters, digits, '_', '-', starting alphanumeric)", save)
	}
	return nil
}

// parseHidden parses and validates the -hidden layer list.
func parseHidden(hidden string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(hidden, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -hidden %q: %w", hidden, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("bad -hidden %q: layer size %d, want >= 1", hidden, v)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

func run(dbDir, fact, dims, model, algo string, k, iters int, tol float64,
	hidden, act string, epochs int, lr float64, seed int64, workers int, save string, explain bool, tracePath string) error {

	// -trace observes every pass the training makes (factor.SetObserver /
	// parallel.SetWorkerObserver) and, on the way out, writes the
	// aggregated phase-timing artifact keyed by the strategy that actually
	// ran (after auto resolution — the deferred closure reads the final
	// algo value).
	if tracePath != "" {
		pt := newPassTracer()
		defer func() {
			pt.stop()
			if werr := pt.write(tracePath, model, algo, parallelWorkers(workers)); werr != nil {
				fmt.Fprintln(os.Stderr, "train: writing -trace artifact:", werr)
			}
		}()
	}

	db, err := storage.Open(dbDir, storage.Options{PoolPages: -1})
	if err != nil {
		return err
	}
	defer db.Close()

	sTbl, err := db.Table(fact)
	if err != nil {
		return err
	}
	// -dims names the direct dimension tables; sub-dimension references
	// recorded in the catalog (snowflake schemas) are expanded from there.
	var direct []*storage.Table
	for _, name := range strings.Split(dims, ",") {
		rTbl, err := db.Table(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		direct = append(direct, rTbl)
	}
	spec, err := join.NewSnowflakeSpec(sTbl, direct, db.Table)
	if err != nil {
		return err
	}

	// The planner is consulted for -explain and -algo auto: catalog table
	// statistics price every strategy with the trainers' own flop
	// accounting plus a page-I/O model (internal/plan).
	var pl *plan.Plan
	if explain || algo == "auto" {
		mspec, err := plannerSpec(model, k, iters, hidden, epochs)
		if err != nil {
			return err
		}
		ss, err := plan.Collect(spec)
		if err != nil {
			return err
		}
		pl, err = plan.Choose(ss, mspec, plan.Options{})
		if err != nil {
			return err
		}
	}
	if explain {
		printPlan(pl, fact, dims)
		return nil
	}
	if algo == "auto" {
		algo = map[plan.Strategy]string{plan.Materialized: "m", plan.Streaming: "s", plan.Factorized: "f"}[pl.Chosen]
		best := pl.Estimates[0]
		fmt.Printf("planner chose %s (est %.1f Mflops, %d pages, score %.3g)\n",
			pl.Chosen, float64(best.Ops.Total())/1e6, best.Pages, best.Score)
	}

	// A saved model carries training lineage: one extra streaming pass
	// over the join captures the per-column baseline statistics (plus a
	// per-row quality baseline) that the serve command's health monitor
	// scores live drift against.
	strategyName := map[string]string{"m": "materialized", "s": "streaming", "f": "factorized"}
	captureLineage := func(score func(x []float64, y float64) float64, metric string) (*monitor.Lineage, error) {
		base, err := monitor.CaptureBaseline(spec, 0, score, metric)
		if err != nil {
			return nil, fmt.Errorf("capturing training baseline: %w", err)
		}
		return &monitor.Lineage{
			TrainedAtUnix: base.CapturedAtUnix,
			TrainingRows:  base.Rows,
			Strategy:      strategyName[algo],
			Baseline:      base,
		}, nil
	}

	saveModel := func(kind string, doSave func(*serve.Registry) error) error {
		if save == "" {
			return nil
		}
		// NewRegistry loads every model persisted in the database, not just
		// the one being overwritten — the price of keeping version numbering
		// and validation in one place. Fine for a training CLI; a dedicated
		// save-only path is only worth it if databases accumulate many large
		// models.
		reg, err := serve.NewRegistry(db)
		if err != nil {
			return err
		}
		if err := doSave(reg); err != nil {
			return err
		}
		info, _ := reg.Get(save)
		fmt.Printf("  saved:          %s model %q (version %d)\n", kind, save, info.Version)
		return nil
	}

	switch model {
	case "gmm":
		cfg := gmm.Config{K: k, MaxIter: iters, Tol: tol, Seed: seed, NumWorkers: workers}
		var res *gmm.Result
		switch algo {
		case "m":
			res, err = gmm.TrainM(db, spec, cfg)
		case "s":
			res, err = gmm.TrainS(db, spec, cfg)
		case "f":
			res, err = gmm.TrainF(db, spec, cfg)
		default:
			return fmt.Errorf("unknown algorithm %q (m, s or f)", algo)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s-GMM over %s ⋈ %s\n", strings.ToUpper(algo), fact, dims)
		fmt.Printf("  iterations:     %d (converged=%v)\n", res.Stats.Iters, res.Stats.Converged)
		fmt.Printf("  log-likelihood: %.4f\n", res.Stats.FinalLL())
		fmt.Printf("  train time:     %v\n", res.Stats.TrainTime)
		fmt.Printf("  multiplies:     %d\n", res.Stats.Ops.Mul)
		fmt.Printf("  page IO:        %v\n", res.Stats.IO)
		return saveModel("gmm", func(reg *serve.Registry) error {
			lin, err := captureLineage(func(x []float64, y float64) float64 { return res.Model.LogProb(x) }, "log_likelihood")
			if err != nil {
				return err
			}
			return reg.SaveGMMLineage(save, res.Model, lin)
		})

	case "nn":
		sizes, err := parseHidden(hidden)
		if err != nil {
			return err
		}
		var activation nn.Activation
		switch act {
		case "sigmoid":
			activation = nn.Sigmoid
		case "tanh":
			activation = nn.Tanh
		case "relu":
			activation = nn.ReLU
		case "identity":
			activation = nn.Identity
		default:
			return fmt.Errorf("unknown activation %q", act)
		}
		cfg := nn.Config{Hidden: sizes, Act: activation, Epochs: epochs, LearningRate: lr, Seed: seed, NumWorkers: workers}
		var res *nn.Result
		switch algo {
		case "m":
			res, err = nn.TrainM(db, spec, cfg)
		case "s":
			res, err = nn.TrainS(db, spec, cfg)
		case "f":
			res, err = nn.TrainF(db, spec, cfg)
		default:
			return fmt.Errorf("unknown algorithm %q (m, s or f)", algo)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s-NN over %s ⋈ %s\n", strings.ToUpper(algo), fact, dims)
		fmt.Printf("  epochs:      %d\n", res.Stats.Epochs)
		fmt.Printf("  final loss:  %.6f\n", res.Stats.FinalLoss())
		fmt.Printf("  train time:  %v\n", res.Stats.TrainTime)
		fmt.Printf("  multiplies:  %d\n", res.Stats.Ops.Mul)
		fmt.Printf("  page IO:     %v\n", res.Stats.IO)
		return saveModel("nn", func(reg *serve.Registry) error {
			lin, err := captureLineage(func(x []float64, y float64) float64 { return res.Net.Predict(x) }, "output")
			if err != nil {
				return err
			}
			return reg.SaveNNLineage(save, res.Net, lin)
		})

	default:
		return fmt.Errorf("unknown model %q (gmm or nn)", model)
	}
}

// plannerSpec builds the planner's model description from the CLI flags.
func plannerSpec(model string, k, iters int, hidden string, epochs int) (plan.ModelSpec, error) {
	switch model {
	case "gmm":
		return plan.ModelSpec{Family: plan.FamilyGMM, K: k, Iters: iters}, nil
	case "nn":
		sizes, err := parseHidden(hidden)
		if err != nil {
			return plan.ModelSpec{}, err
		}
		return plan.ModelSpec{Family: plan.FamilyNN, Hidden: sizes, Epochs: epochs}, nil
	default:
		return plan.ModelSpec{}, fmt.Errorf("unknown model %q (gmm or nn)", model)
	}
}

// printPlan renders the -explain cost table.
func printPlan(pl *plan.Plan, fact, dims string) {
	fmt.Printf("strategy plan for %s over %s ⋈ %s (from catalog TableStats)\n", pl.Model, fact, dims)
	fmt.Printf("  %-14s %14s %14s %12s %14s\n", "strategy", "est Mmul", "est Madd", "est pages", "score")
	for _, e := range pl.Estimates {
		marker := " "
		if e.Strategy == pl.Chosen {
			marker = "*"
		}
		fmt.Printf("%s %-14s %14.2f %14.2f %12d %14.4g\n",
			marker, e.Strategy, float64(e.Ops.Mul)/1e6, float64(e.Ops.Adds)/1e6, e.Pages, e.Score)
	}
	fmt.Printf("  planner would choose: %s\n", pl.Chosen)
}
