package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"factorml/internal/factor"
	"factorml/internal/parallel"
)

// passTracer aggregates factor.PassEvents and parallel.WorkerEvents for
// the lifetime of one training run. Installed by -trace, it produces the
// per-pass phase-timing breakdown (TRACE_train.json plus a printed
// table) that attributes training wall time to E-step/SGD folds, cache
// fills, scans and ordered merges, and exposes worker skew.
type passTracer struct {
	mu      sync.Mutex
	passes  map[string]*passAgg
	workers map[int]*workerAgg
}

type passAgg struct {
	Pass    string  `json:"pass"`
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	Rows    int64   `json:"rows"`
	Chunks  int64   `json:"chunks"`
	WallMs  float64 `json:"wall_ms"`
	FoldMs  float64 `json:"fold_ms"`
	MergeMs float64 `json:"merge_ms"`
	Errors  int64   `json:"errors"`
}

type workerAgg struct {
	Worker int     `json:"worker"`
	Chunks int64   `json:"chunks"`
	BusyMs float64 `json:"busy_ms"`
}

// traceReport is the TRACE_train.json document, keyed by the strategy
// the run executed (after auto resolution) so sweeps over -algo can be
// compared side by side.
type traceReport struct {
	Model   string       `json:"model"`
	Algo    string       `json:"algo"`
	Workers int          `json:"workers"`
	Passes  []*passAgg   `json:"passes"`
	Pool    []*workerAgg `json:"pool_workers,omitempty"`
}

// newPassTracer installs the process-wide pass and worker observers and
// starts aggregating. Call stop before reading the aggregates.
func newPassTracer() *passTracer {
	pt := &passTracer{passes: map[string]*passAgg{}, workers: map[int]*workerAgg{}}
	factor.SetObserver(func(ev factor.PassEvent) {
		pt.mu.Lock()
		defer pt.mu.Unlock()
		key := ev.Pass + "\x00" + ev.Phase
		a := pt.passes[key]
		if a == nil {
			a = &passAgg{Pass: ev.Pass, Phase: ev.Phase}
			pt.passes[key] = a
		}
		a.Count++
		a.Rows += ev.Rows
		a.Chunks += ev.Chunks
		a.WallMs += float64(ev.Wall.Nanoseconds()) / 1e6
		a.FoldMs += float64(ev.Fold.Nanoseconds()) / 1e6
		a.MergeMs += float64(ev.Merge.Nanoseconds()) / 1e6
		if ev.Err {
			a.Errors++
		}
	})
	parallel.SetWorkerObserver(func(ev parallel.WorkerEvent) {
		pt.mu.Lock()
		defer pt.mu.Unlock()
		w := pt.workers[ev.Worker]
		if w == nil {
			w = &workerAgg{Worker: ev.Worker}
			pt.workers[ev.Worker] = w
		}
		w.Chunks += ev.Chunks
		w.BusyMs += float64(ev.Busy.Nanoseconds()) / 1e6
	})
	return pt
}

// stop removes the observers; further passes are untracked.
func (pt *passTracer) stop() {
	factor.SetObserver(nil)
	parallel.SetWorkerObserver(nil)
}

// report assembles the aggregates, ordered by descending wall time.
func (pt *passTracer) report(model, algo string, workers int) *traceReport {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	rep := &traceReport{Model: model, Algo: algo, Workers: workers}
	for _, a := range pt.passes {
		rep.Passes = append(rep.Passes, a)
	}
	sort.Slice(rep.Passes, func(i, j int) bool {
		if rep.Passes[i].WallMs != rep.Passes[j].WallMs {
			return rep.Passes[i].WallMs > rep.Passes[j].WallMs
		}
		return rep.Passes[i].Pass+rep.Passes[i].Phase < rep.Passes[j].Pass+rep.Passes[j].Phase
	})
	for _, w := range pt.workers {
		rep.Pool = append(rep.Pool, w)
	}
	sort.Slice(rep.Pool, func(i, j int) bool { return rep.Pool[i].Worker < rep.Pool[j].Worker })
	return rep
}

// write saves the report as JSON and prints the phase-timing table.
func (pt *passTracer) write(path, model, algo string, workers int) error {
	rep := pt.report(model, algo, workers)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("pass phase timing (%s, algo %s; written to %s):\n", model, algo, path)
	fmt.Printf("  %-18s %-11s %6s %10s %8s %10s %10s %10s\n",
		"pass", "phase", "count", "rows", "chunks", "wall(ms)", "fold(ms)", "merge(ms)")
	for _, a := range rep.Passes {
		fmt.Printf("  %-18s %-11s %6d %10d %8d %10.1f %10.1f %10.1f\n",
			a.Pass, a.Phase, a.Count, a.Rows, a.Chunks, a.WallMs, a.FoldMs, a.MergeMs)
	}
	if len(rep.Pool) > 1 {
		var minB, maxB float64
		for i, w := range rep.Pool {
			if i == 0 || w.BusyMs < minB {
				minB = w.BusyMs
			}
			if w.BusyMs > maxB {
				maxB = w.BusyMs
			}
		}
		fmt.Printf("  pool: %d workers, busy %.1f–%.1f ms (skew %.2fx)\n",
			len(rep.Pool), minB, maxB, skewRatio(maxB, minB))
	}
	return nil
}

func skewRatio(maxB, minB float64) float64 {
	if minB <= 0 {
		return 0
	}
	return maxB / minB
}

// parallelWorkers resolves the -workers knob the same way the trainers
// do, so the trace artifact records the effective pool size.
func parallelWorkers(n int) int { return parallel.Workers(n) }
