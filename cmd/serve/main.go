// Command serve boots the factorized inference server over a database
// directory: models saved by `train -save` (or the factorml facade) are
// loaded from the model registry on startup and served over an HTTP JSON
// API, scoring normalized fact tuples without materializing the join.
//
// With -fact the server also opens the streaming change feed over the
// star schema: POST /v1/ingest appends fact rows and inserts/updates
// dimension tuples, dimension updates reach served predictions
// immediately (exactly the touched cache entries are invalidated), and
// every registered model is kept under incremental maintenance —
// refreshed from the ingested deltas either on the -refresh-rows
// threshold, on the -fact POST /v1/refresh endpoint, or on demand,
// without restarting the server.
//
// With -wal-dir the server runs crash-safe: every ingest batch is
// written to a write-ahead log and fsynced (group commit, -fsync-every)
// before the HTTP ack, atomic snapshots truncate the log every
// -snapshot-every records, and after a kill -9 the next boot replays the
// WAL tail — acked rows, incremental statistics and refreshed models all
// come back bit-identical to the pre-crash state.
//
// Usage:
//
//	serve -db orders.db -dims synth_R1,synth_R2 -addr :8080
//	serve -db orders.db -dims synth_R1 -fact synth_S -refresh-rows 1000
//	serve -db orders.db -dims synth_R1 -fact synth_S -wal-dir orders.wal
//	serve -db orders.db -dims synth_R1 -max-inflight 8 -max-ingest-queue 32
//	serve -db orders.db -dims synth_R1,synth_R2 -batch-window 2ms -max-batch 256
//
// Endpoints:
//
//	GET  /healthz                       liveness (+ model count once booted)
//	GET  /readyz                        readiness (503 not_ready while booting)
//	GET  /statsz                        cache hit rate, latency, stream counters
//	GET  /metrics                       Prometheus text format (disable: -metrics=false)
//	GET  /v1/models                     registered models (+ training lineage)
//	GET  /v1/models/{name}/health       drift/staleness verdict with per-column reasons (disable: -monitor=false)
//	POST /v1/models/{name}/predict      {"rows":[{"fact":[…],"fks":[…]}]}, or the binary
//	                                    wire format via Content-Type: application/x-factorml-binary
//	POST /v1/ingest                     {"facts":[…],"dims":[…]} (with -fact)
//	POST /v1/refresh                    fold ingested deltas into models (with -fact)
//	GET  /debug/traces                  recent request traces (disable: -trace=false)
//	GET  /debug/traces/slow             slowest/errored request traces
//
// Every response carries an X-Request-Id header; sampled requests
// (-trace-sample) record a span tree — admission, engine micro-batch
// fan-out, per-dimension cache lookups, ingest/refresh phases — kept in
// a bounded in-memory flight recorder. Incoming W3C traceparent headers
// are honored. With -debug-addr a side listener additionally serves
// net/http/pprof under /debug/pprof/ plus the same trace endpoints, and
// -log-level emits one JSON log line per request, stamped with the
// trace ID.
//
// The listener binds before the model registry loads: during boot the
// server answers /healthz (alive, not ready) and 503 not_ready
// elsewhere, then atomically swaps in the real handler. With
// -max-inflight / -max-ingest-queue, admission control rejects excess
// load with structured 429 responses (error codes predict_overloaded /
// ingest_overloaded, Retry-After header) before any work is admitted.
//
// With -batch-window, concurrent predict requests against the same model
// are coalesced into one engine batch — flushed when the window elapses
// or the batch reaches -max-batch rows — and the batcher's telemetry
// shows up in /metrics and /statsz. Because rows are scored independently
// in a fixed per-row order, coalescing never changes a single bit of any
// response.
//
// Predictions are bit-identical for every -workers value; -dims must list
// the DIRECT dimension tables in the join order used at training time —
// sub-dimension tables of a snowflake hierarchy are expanded from the
// references recorded in the database catalog, and prediction rows carry
// one foreign key per direct dimension only.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"factorml"
)

func main() {
	dbDir := flag.String("db", "", "database directory (from datagen; holds tables and saved models)")
	dims := flag.String("dims", "", "comma-separated dimension table names, join order")
	addr := flag.String("addr", ":8080", "HTTP listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "prediction worker pool size (0 = all CPUs, 1 = sequential); responses are bit-identical for every value")
	cacheEntries := flag.Int("cache", 0, "per-(model, dimension) LRU capacity in entries (0 = default 4096)")
	batchRows := flag.Int("batch", 0, "rows per worker micro-batch chunk (0 = default 64)")
	fact := flag.String("fact", "", "fact table name; enables streaming ingestion at POST /v1/ingest")
	refreshRows := flag.Int("refresh-rows", 0, "auto-refresh attached models once this many ingested fact rows are pending (0 = manual; needs -fact)")
	rebaseline := flag.Int("rebaseline-every", 0, "rebuild GMM statistics from scratch every Nth refresh (0 = only after dimension updates; needs -fact)")
	refreshEpochs := flag.Int("refresh-epochs", 1, "warm-start SGD epochs per NN refresh (needs -fact)")
	refreshLR := flag.Float64("refresh-lr", 0.05, "learning rate of NN refresh epochs (needs -fact)")
	batchWindow := flag.Duration("batch-window", 0, "coalesce concurrent predict requests per model for this long before scoring them as one engine batch (0 = batching off); per-row results stay bit-identical")
	maxBatch := flag.Int("max-batch", 0, "flush a coalesced batch early once it holds this many rows; single requests at or over the cap bypass the window (0 = window-only flush; needs -batch-window)")
	float32Kernels := flag.Bool("float32", false, "store GMM kernel matrices as float32 (half the cache traffic, float64 accumulation, ≤1e-5 relative of the default); NN serving is unaffected")
	maxInflight := flag.Int("max-inflight", 0, "per-model in-flight prediction limit; excess answers 429 predict_overloaded (0 = unlimited)")
	maxIngestQueue := flag.Int("max-ingest-queue", 0, "bounded ingest queue: admitted-but-unfinished batches; excess answers 429 ingest_overloaded (0 = unlimited)")
	retryAfter := flag.Int("retry-after", 0, "Retry-After seconds on 429/503 rejections (0 = default 1)")
	metricsOn := flag.Bool("metrics", true, "expose Prometheus text-format metrics at GET /metrics")
	traceOn := flag.Bool("trace", true, "record request traces: X-Request-Id on every response, span trees for sampled requests, flight recorder at GET /debug/traces[/slow]")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of requests that record spans (0 < f <= 1; incoming sampled traceparent headers always record)")
	traceSlowMS := flag.Int("trace-slow-ms", 0, "requests at or over this duration are kept in the slow-trace list regardless of recency (0 = default 100)")
	logLevel := flag.String("log-level", "", "request logging to stderr as JSON lines at this level: debug, info, warn, error (empty = no request log)")
	debugAddr := flag.String("debug-addr", "", "side listener for operational debugging: net/http/pprof under /debug/pprof/ plus the trace flight recorder at /debug/traces[/slow] (empty = disabled; port 0 picks a free port)")
	monitorOn := flag.Bool("monitor", true, "model and data health monitoring: drift/staleness verdicts at GET /v1/models/{name}/health, gauges in /metrics, a health section in /statsz")
	driftWarn := flag.Float64("drift-warn", 0.1, "per-column PSI at or above this marks the column \"warn\" (needs -monitor)")
	driftPSI := flag.Float64("drift-psi", 0.25, "per-column PSI at or above this marks the column \"drift\" and the model verdict \"drifting\" (needs -monitor)")
	stalenessMaxRows := flag.Int64("staleness-max-rows", 0, "verdict flips to \"stale\" once this many fact rows were ingested since the model's last refresh (0 = staleness by rows disabled; needs -monitor)")
	healthSample := flag.Float64("health-sample", 1.0, "fraction of predict requests whose outputs feed the prediction-quality sketch (0 < f <= 1; needs -monitor)")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory; enables crash-safe durability (ingest acks only after fsync, WAL replay on reboot); empty = durability off")
	fsyncEvery := flag.Int("fsync-every", 0, "group-commit window: fsync at the latest after this many WAL records, acking every waiting append together (0/1 = every record; needs -wal-dir)")
	snapshotEvery := flag.Int("snapshot-every", 10000, "commit an atomic snapshot and truncate the WAL after this many records past the last snapshot (0 = boot/shutdown checkpoints only; needs -wal-dir)")
	flag.Parse()

	if *dbDir == "" || *dims == "" {
		fmt.Fprintln(os.Stderr, "serve: -db and -dims are required")
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "serve: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *cacheEntries < 0 || *batchRows < 0 {
		fmt.Fprintln(os.Stderr, "serve: -cache and -batch must be >= 0")
		os.Exit(2)
	}
	if *refreshRows < 0 || *rebaseline < 0 || *refreshEpochs < 1 || *refreshLR <= 0 {
		fmt.Fprintln(os.Stderr, "serve: -refresh-rows and -rebaseline-every must be >= 0, -refresh-epochs >= 1, -refresh-lr > 0")
		os.Exit(2)
	}
	if *fact == "" && (*refreshRows > 0 || *rebaseline > 0 || *refreshEpochs != 1 || *refreshLR != 0.05) {
		fmt.Fprintln(os.Stderr, "serve: -refresh-rows/-rebaseline-every/-refresh-epochs/-refresh-lr need -fact (streaming ingestion)")
		os.Exit(2)
	}
	if *maxInflight < 0 || *maxIngestQueue < 0 || *retryAfter < 0 {
		fmt.Fprintln(os.Stderr, "serve: -max-inflight, -max-ingest-queue and -retry-after must be >= 0")
		os.Exit(2)
	}
	if *batchWindow < 0 || *maxBatch < 0 {
		fmt.Fprintln(os.Stderr, "serve: -batch-window and -max-batch must be >= 0")
		os.Exit(2)
	}
	if *batchWindow == 0 && *maxBatch > 0 {
		fmt.Fprintln(os.Stderr, "serve: -max-batch needs -batch-window (dynamic batching)")
		os.Exit(2)
	}
	if *traceSample <= 0 || *traceSample > 1 {
		fmt.Fprintf(os.Stderr, "serve: -trace-sample must be in (0, 1], got %g\n", *traceSample)
		os.Exit(2)
	}
	if *traceSlowMS < 0 {
		fmt.Fprintf(os.Stderr, "serve: -trace-slow-ms must be >= 0, got %d\n", *traceSlowMS)
		os.Exit(2)
	}
	if *driftWarn <= 0 || *driftPSI <= 0 || *driftWarn > *driftPSI {
		fmt.Fprintf(os.Stderr, "serve: -drift-warn and -drift-psi must be > 0 with -drift-warn <= -drift-psi, got %g / %g\n", *driftWarn, *driftPSI)
		os.Exit(2)
	}
	if *stalenessMaxRows < 0 {
		fmt.Fprintf(os.Stderr, "serve: -staleness-max-rows must be >= 0, got %d\n", *stalenessMaxRows)
		os.Exit(2)
	}
	if *healthSample <= 0 || *healthSample > 1 {
		fmt.Fprintf(os.Stderr, "serve: -health-sample must be in (0, 1], got %g\n", *healthSample)
		os.Exit(2)
	}
	if *fsyncEvery < 0 || *snapshotEvery < 0 {
		fmt.Fprintln(os.Stderr, "serve: -fsync-every and -snapshot-every must be >= 0")
		os.Exit(2)
	}
	if *walDir == "" && (*fsyncEvery > 0 || *snapshotEvery != 10000) {
		fmt.Fprintln(os.Stderr, "serve: -fsync-every/-snapshot-every need -wal-dir (durability)")
		os.Exit(2)
	}
	var logger *factorml.Logger
	if *logLevel != "" {
		level, err := factorml.ParseLogLevel(*logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(2)
		}
		logger = factorml.NewLogger(os.Stderr, level)
	}
	cfg := serveFlags{
		dbDir: *dbDir, dims: *dims, addr: *addr, fact: *fact,
		workers: *workers, cacheEntries: *cacheEntries, batchRows: *batchRows,
		refreshRows: *refreshRows, rebaseline: *rebaseline,
		refreshEpochs: *refreshEpochs, refreshLR: *refreshLR,
		maxInflight: *maxInflight, maxIngestQueue: *maxIngestQueue,
		batchWindow: *batchWindow, maxBatch: *maxBatch, float32Kernels: *float32Kernels,
		retryAfter: *retryAfter, metrics: *metricsOn,
		trace: *traceOn, traceSample: *traceSample, traceSlowMS: *traceSlowMS,
		debugAddr: *debugAddr, logger: logger,
		monitor: *monitorOn, driftWarn: *driftWarn, driftPSI: *driftPSI,
		stalenessMaxRows: *stalenessMaxRows, healthSample: *healthSample,
		walDir: *walDir, fsyncEvery: *fsyncEvery, snapshotEvery: *snapshotEvery,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

type serveFlags struct {
	dbDir, dims, addr, fact                 string
	workers, cacheEntries, batchRows        int
	refreshRows, rebaseline, refreshEpochs  int
	refreshLR                               float64
	maxInflight, maxIngestQueue, retryAfter int
	batchWindow                             time.Duration
	maxBatch                                int
	float32Kernels                          bool
	metrics                                 bool
	trace                                   bool
	traceSample                             float64
	traceSlowMS                             int
	debugAddr                               string
	logger                                  *factorml.Logger
	monitor                                 bool
	driftWarn, driftPSI                     float64
	stalenessMaxRows                        int64
	healthSample                            float64
	walDir                                  string
	fsyncEvery, snapshotEvery               int
}

func run(cfg serveFlags) error {
	// Bind the listener before loading the registry so the process
	// answers health checks from the first instant: the swappable handler
	// serves "booting" (alive, not ready) until the real server is up.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	// atomic.Value needs one consistent concrete type, so the handler is
	// boxed (the booting stand-in and the real server differ).
	type handlerBox struct{ h http.Handler }
	var handler atomic.Value
	handler.Store(handlerBox{factorml.BootingHandler()})
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(handlerBox).h.ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// The resolved address is printed (not just logged) so scripts can use
	// port 0 and parse the chosen port.
	fmt.Printf("factorml-serve listening on %s (booting)\n", ln.Addr())

	var openOpts []factorml.OpenOption
	if cfg.walDir != "" {
		openOpts = append(openOpts, factorml.WithDurability(factorml.DurabilityConfig{
			Dir:           cfg.walDir,
			FsyncEvery:    cfg.fsyncEvery,
			SnapshotEvery: cfg.snapshotEvery,
		}))
	}
	db, err := factorml.Open(cfg.dbDir, factorml.Options{}, openOpts...)
	if err != nil {
		return err
	}
	defer db.Close()

	var dimTables []string
	for _, name := range strings.Split(cfg.dims, ",") {
		dimTables = append(dimTables, strings.TrimSpace(name))
	}
	opts := []factorml.ServerOption{
		factorml.WithEngineConfig(factorml.ServeConfig{
			NumWorkers: cfg.workers, CacheEntries: cfg.cacheEntries, BatchRows: cfg.batchRows,
			Float32: cfg.float32Kernels,
		}),
		factorml.WithLimits(factorml.Limits{
			MaxInFlightPerModel: cfg.maxInflight,
			MaxQueuedIngest:     cfg.maxIngestQueue,
			RetryAfterSeconds:   cfg.retryAfter,
			BatchWindow:         cfg.batchWindow,
			MaxBatchRows:        cfg.maxBatch,
		}),
	}
	if cfg.metrics {
		opts = append(opts, factorml.WithMetrics())
	}
	if cfg.trace {
		opts = append(opts, factorml.WithTracing(factorml.TraceConfig{
			SampleFraction: cfg.traceSample,
			SlowThreshold:  time.Duration(cfg.traceSlowMS) * time.Millisecond,
		}))
	}
	if cfg.logger != nil {
		opts = append(opts, factorml.WithServerLogger(cfg.logger))
	}
	if cfg.monitor {
		opts = append(opts, factorml.WithMonitoring(factorml.MonitorConfig{
			DriftWarnPSI:     cfg.driftWarn,
			DriftPSI:         cfg.driftPSI,
			StalenessMaxRows: cfg.stalenessMaxRows,
			SampleFraction:   cfg.healthSample,
		}))
	}
	if cfg.fact != "" {
		opts = append(opts, factorml.WithStream(cfg.fact, factorml.StreamPolicy{
			RefreshRows:     cfg.refreshRows,
			RebaselineEvery: cfg.rebaseline,
			NumWorkers:      cfg.workers,
			NNEpochs:        cfg.refreshEpochs,
			NNLearningRate:  cfg.refreshLR,
		}))
	}
	server, err := factorml.NewServer(db, dimTables, opts...)
	if err != nil {
		return err
	}
	models, err := db.Models()
	if err != nil {
		return err
	}
	for _, m := range models {
		fmt.Printf("loaded model %q (%s, version %d, dim %d)\n", m.Name, m.Kind, m.Version, m.Dim)
	}
	if st := server.Stream(); st != nil {
		fmt.Printf("models under incremental maintenance: %s\n", strings.Join(st.Attached(), ", "))
		fmt.Printf("streaming ingestion enabled over fact table %q (refresh-rows=%d)\n", cfg.fact, cfg.refreshRows)
	}
	if cfg.maxInflight > 0 || cfg.maxIngestQueue > 0 {
		fmt.Printf("admission control: max-inflight=%d max-ingest-queue=%d\n", cfg.maxInflight, cfg.maxIngestQueue)
	}
	if cfg.batchWindow > 0 {
		fmt.Printf("dynamic batching: batch-window=%s max-batch=%d\n", cfg.batchWindow, cfg.maxBatch)
	}
	if cfg.monitor {
		fmt.Printf("health monitoring: drift-warn=%g drift-psi=%g staleness-max-rows=%d health-sample=%g\n",
			cfg.driftWarn, cfg.driftPSI, cfg.stalenessMaxRows, cfg.healthSample)
	}
	if cfg.walDir != "" {
		ws := db.WALStats()
		fmt.Printf("durability: wal-dir=%s fsync-every=%d snapshot-every=%d (recovered to LSN %d)\n",
			cfg.walDir, cfg.fsyncEvery, cfg.snapshotEvery, ws.LastLSN)
	}
	// The debug side listener carries the profiling and trace-export
	// surface away from the serving port: pprof endpoints plus the same
	// flight-recorder handler the main mux mounts. Its address is printed
	// like the serving address so scripts can bind port 0 and parse it.
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return err
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		if th := server.TraceHandler(); th != nil {
			dmux.Handle("/debug/traces", th)
			dmux.Handle("/debug/traces/slow", th)
		}
		dsrv := &http.Server{Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = dsrv.Serve(dln) }()
		defer dsrv.Close()
		fmt.Printf("factorml-serve debug listening on %s\n", dln.Addr())
	}

	handler.Store(handlerBox{server})
	fmt.Printf("factorml-serve ready on %s (%d models, dims %s)\n", ln.Addr(), len(models), cfg.dims)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
		server.SetReady(false) // drain: fail readiness before closing
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
