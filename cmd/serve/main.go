// Command serve boots the factorized inference server over a database
// directory: models saved by `train -save` (or the factorml facade) are
// loaded from the model registry on startup and served over an HTTP JSON
// API, scoring normalized fact tuples without materializing the join.
//
// With -fact the server also opens the streaming change feed over the
// star schema: POST /v1/ingest appends fact rows and inserts/updates
// dimension tuples, dimension updates reach served predictions
// immediately (exactly the touched cache entries are invalidated), and
// every registered model is kept under incremental maintenance —
// refreshed from the ingested deltas either on the -refresh-rows
// threshold or on demand, without restarting the server.
//
// Usage:
//
//	serve -db orders.db -dims synth_R1,synth_R2 -addr :8080
//	serve -db orders.db -dims synth_R1 -fact synth_S -refresh-rows 1000
//
// Endpoints:
//
//	GET  /healthz                       liveness + model count
//	GET  /statsz                        cache hit rate, latency, stream counters
//	GET  /v1/models                     registered models
//	POST /v1/models/{name}/predict      {"rows":[{"fact":[…],"fks":[…]}]}
//	POST /v1/ingest                     {"facts":[…],"dims":[…]} (with -fact)
//
// Predictions are bit-identical for every -workers value; -dims must list
// the DIRECT dimension tables in the join order used at training time —
// sub-dimension tables of a snowflake hierarchy are expanded from the
// references recorded in the database catalog, and prediction rows carry
// one foreign key per direct dimension only.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"factorml"
)

func main() {
	dbDir := flag.String("db", "", "database directory (from datagen; holds tables and saved models)")
	dims := flag.String("dims", "", "comma-separated dimension table names, join order")
	addr := flag.String("addr", ":8080", "HTTP listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 0, "prediction worker pool size (0 = all CPUs, 1 = sequential); responses are bit-identical for every value")
	cacheEntries := flag.Int("cache", 0, "per-(model, dimension) LRU capacity in entries (0 = default 4096)")
	batchRows := flag.Int("batch", 0, "rows per worker micro-batch chunk (0 = default 64)")
	fact := flag.String("fact", "", "fact table name; enables streaming ingestion at POST /v1/ingest")
	refreshRows := flag.Int("refresh-rows", 0, "auto-refresh attached models once this many ingested fact rows are pending (0 = manual; needs -fact)")
	rebaseline := flag.Int("rebaseline-every", 0, "rebuild GMM statistics from scratch every Nth refresh (0 = only after dimension updates; needs -fact)")
	refreshEpochs := flag.Int("refresh-epochs", 1, "warm-start SGD epochs per NN refresh (needs -fact)")
	refreshLR := flag.Float64("refresh-lr", 0.05, "learning rate of NN refresh epochs (needs -fact)")
	flag.Parse()

	if *dbDir == "" || *dims == "" {
		fmt.Fprintln(os.Stderr, "serve: -db and -dims are required")
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "serve: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *cacheEntries < 0 || *batchRows < 0 {
		fmt.Fprintln(os.Stderr, "serve: -cache and -batch must be >= 0")
		os.Exit(2)
	}
	if *refreshRows < 0 || *rebaseline < 0 || *refreshEpochs < 1 || *refreshLR <= 0 {
		fmt.Fprintln(os.Stderr, "serve: -refresh-rows and -rebaseline-every must be >= 0, -refresh-epochs >= 1, -refresh-lr > 0")
		os.Exit(2)
	}
	if *fact == "" && (*refreshRows > 0 || *rebaseline > 0 || *refreshEpochs != 1 || *refreshLR != 0.05) {
		fmt.Fprintln(os.Stderr, "serve: -refresh-rows/-rebaseline-every/-refresh-epochs/-refresh-lr need -fact (streaming ingestion)")
		os.Exit(2)
	}
	if err := run(*dbDir, *dims, *addr, *fact, *workers, *cacheEntries, *batchRows,
		*refreshRows, *rebaseline, *refreshEpochs, *refreshLR); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(dbDir, dims, addr, fact string, workers, cacheEntries, batchRows,
	refreshRows, rebaseline, refreshEpochs int, refreshLR float64) error {
	db, err := factorml.Open(dbDir, factorml.Options{})
	if err != nil {
		return err
	}
	defer db.Close()

	var dimTables []string
	for _, name := range strings.Split(dims, ",") {
		dimTables = append(dimTables, strings.TrimSpace(name))
	}
	scfg := factorml.ServeConfig{NumWorkers: workers, CacheEntries: cacheEntries, BatchRows: batchRows}
	var handler http.Handler
	if fact != "" {
		pol := factorml.StreamPolicy{
			RefreshRows:     refreshRows,
			RebaselineEvery: rebaseline,
			NumWorkers:      workers,
			NNEpochs:        refreshEpochs,
			NNLearningRate:  refreshLR,
		}
		h, st, err := factorml.NewStreamingPredictionServer(db, fact, dimTables, scfg, pol)
		if err != nil {
			return err
		}
		handler = h
		fmt.Printf("models under incremental maintenance: %s\n", strings.Join(st.Attached(), ", "))
	} else {
		handler, err = factorml.NewPredictionServer(db, dimTables, scfg)
		if err != nil {
			return err
		}
	}
	models, err := db.Models()
	if err != nil {
		return err
	}
	for _, m := range models {
		fmt.Printf("loaded model %q (%s, version %d, dim %d)\n", m.Name, m.Kind, m.Version, m.Dim)
	}
	if fact != "" {
		fmt.Printf("streaming ingestion enabled over fact table %q (refresh-rows=%d)\n", fact, refreshRows)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address is printed (not just logged) so scripts can use
	// port 0 and parse the chosen port.
	fmt.Printf("factorml-serve listening on %s (%d models, dims %s)\n", ln.Addr(), len(models), dims)

	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
