package factorml

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// This file is the randomized cross-strategy equivalence harness: it
// generates random snowflake schemas — depth 1–3, up to 4 dimension tables
// per level, random column widths including the zero-width edge, random
// cardinalities and row counts — and asserts that for both model families
//
//   - every strategy is bit-identical across NumWorkers ∈ {1, 4} (the
//     parallel engine's headline guarantee), and
//   - Materialized, Streaming and Factorized agree to within 1e-9 relative
//     (the strategies evaluate the same sums in different floating-point
//     orders — the factorized quadratic form is block-decomposed — so
//     cross-strategy equality is exact-up-to-summation-order, the same
//     contract the hand-written fixtures in factorml_test.go pin).
//
// Every schema's generator seed is printed on failure; rerun a single
// failing schema with FACTORML_EQUIV_SEED=<seed> FACTORML_EQUIV_COUNT=1.

// equivSchemas is how many random schemas the harness sweeps.
const equivSchemas = 50

// maxEquivDims caps the total number of dimension tables per schema so a
// depth-3 fanout stays affordable.
const maxEquivDims = 8

// rdim is one node of a random dimension hierarchy.
type rdim struct {
	tbl  *DimensionTable
	n    int // cardinality
	subs []*rdim
}

// buildRandomSnowflake creates a random schema in db and returns the fact
// table plus a shape description for failure messages.
func buildRandomSnowflake(t *testing.T, db *DB, rng *rand.Rand) (*FactTable, string) {
	t.Helper()
	depth := 1 + rng.Intn(3)
	total := 0
	shape := fmt.Sprintf("depth=%d dims=[", depth)

	// Decide the tree, then create tables bottom-up (a parent needs its
	// sub-dimension handles at creation time).
	var build func(level int) *rdim
	nodeID := 0
	build = func(level int) *rdim {
		total++
		d := &rdim{n: 2 + rng.Intn(9)}
		if level < depth {
			nsubs := 1 + rng.Intn(4)
			for c := 0; c < nsubs && total < maxEquivDims; c++ {
				d.subs = append(d.subs, build(level+1))
			}
		}
		return d
	}
	var create func(d *rdim) *DimensionTable
	create = func(d *rdim) *DimensionTable {
		var subs []*DimensionTable
		for _, s := range d.subs {
			subs = append(subs, create(s))
		}
		width := rng.Intn(3) // 0, 1 or 2 features — zero-width included
		var cols []string
		for i := 0; i < width; i++ {
			cols = append(cols, fmt.Sprintf("x%d", i))
		}
		name := fmt.Sprintf("d%d", nodeID)
		nodeID++
		tbl, err := db.CreateDimensionTable(name, cols, subs...)
		if err != nil {
			t.Fatal(err)
		}
		shape += fmt.Sprintf(" %s(n=%d,w=%d,subs=%d)", name, d.n, width, len(subs))
		feats := make([]float64, width)
		fks := make([]int64, len(subs))
		for i := 0; i < d.n; i++ {
			for j := range feats {
				feats[j] = rng.NormFloat64()
			}
			for j, s := range d.subs {
				fks[j] = int64(rng.Intn(s.n))
			}
			var err error
			if len(subs) == 0 {
				err = tbl.Append(int64(i), feats)
			} else {
				err = tbl.AppendRefs(int64(i), fks, feats)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		d.tbl = tbl
		return tbl
	}

	nDirect := 1 + rng.Intn(2)
	var roots []*rdim
	var direct []*DimensionTable
	for i := 0; i < nDirect && total < maxEquivDims; i++ {
		roots = append(roots, build(1))
	}
	for _, r := range roots {
		direct = append(direct, create(r))
	}
	shape += " ]"

	dS := 1 + rng.Intn(3)
	var factCols []string
	for i := 0; i < dS; i++ {
		factCols = append(factCols, fmt.Sprintf("f%d", i))
	}
	fact, err := db.CreateFactTable("fact", factCols, true, direct...)
	if err != nil {
		t.Fatal(err)
	}
	nRows := 40 + rng.Intn(121)
	shape += fmt.Sprintf(" rows=%d dS=%d", nRows, dS)
	feats := make([]float64, dS)
	fks := make([]int64, len(roots))
	for i := 0; i < nRows; i++ {
		y := 0.0
		for j := range feats {
			feats[j] = rng.NormFloat64()
			y += feats[j]
		}
		for j, r := range roots {
			fks[j] = int64(rng.Intn(r.n))
		}
		if err := fact.Append(int64(i), fks, feats, 0.3*y+0.1*rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	return fact, shape
}

// equivEnvInt reads an integer override from the environment.
func equivEnvInt(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func relDiffTooBig(d float64) bool { return d > 1e-9 }

// TestRandomizedCrossStrategyEquivalence is the harness described in the
// file comment.
func TestRandomizedCrossStrategyEquivalence(t *testing.T) {
	masterSeed := equivEnvInt("FACTORML_EQUIV_SEED", 20260730)
	count := int(equivEnvInt("FACTORML_EQUIV_COUNT", equivSchemas))
	if testing.Short() {
		count = 8
	}
	algos := []Algorithm{Materialized, Streaming, Factorized}
	workerSweep := []int{1, 4}

	for i := 0; i < count; i++ {
		seed := masterSeed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		db := openDB(t)
		fact, shape := buildRandomSnowflake(t, db, rng)
		ds, err := db.Dataset(fact)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, shape, err)
		}
		fail := func(format string, args ...any) {
			t.Helper()
			t.Errorf("schema seed %d (%s): %s", seed, shape, fmt.Sprintf(format, args...))
		}

		// --- GMM: Tol=0 disables early convergence so every strategy runs
		// the same fixed number of EM iterations.
		gmms := make(map[Algorithm][]*GMMModel)
		for _, algo := range algos {
			for _, w := range workerSweep {
				res, err := TrainGMM(ds, algo, GMMConfig{K: 2, MaxIter: 3, Tol: 1e-300, Seed: seed, NumWorkers: w})
				if err != nil {
					t.Fatalf("seed %d (%s): %v-GMM workers=%d: %v", seed, shape, algo, w, err)
				}
				gmms[algo] = append(gmms[algo], res.Model)
			}
			if d := gmms[algo][0].MaxParamDiff(gmms[algo][1]); d != 0 {
				fail("%v-GMM differs across worker counts by %g, want bit-identical", algo, d)
			}
		}
		for _, algo := range algos[1:] {
			if d := gmms[Materialized][0].MaxParamDiff(gmms[algo][0]); relDiffTooBig(d) {
				fail("M-GMM vs %v-GMM differ by %g", algo, d)
			}
		}

		// --- NN.
		nns := make(map[Algorithm][]*NNNetwork)
		for _, algo := range algos {
			for _, w := range workerSweep {
				res, err := TrainNN(ds, algo, NNConfig{Hidden: []int{3}, Epochs: 2, LearningRate: 0.05, Seed: seed, NumWorkers: w})
				if err != nil {
					t.Fatalf("seed %d (%s): %v-NN workers=%d: %v", seed, shape, algo, w, err)
				}
				nns[algo] = append(nns[algo], res.Net)
			}
			if d := nns[algo][0].MaxParamDiff(nns[algo][1]); d != 0 {
				fail("%v-NN differs across worker counts by %g, want bit-identical", algo, d)
			}
		}
		for _, algo := range algos[1:] {
			if d := nns[Materialized][0].MaxParamDiff(nns[algo][0]); relDiffTooBig(d) {
				fail("M-NN vs %v-NN differ by %g", algo, d)
			}
		}
	}
}

// TestSnowflakeDepth3PinnedEquivalence is the deterministic anchor of the
// harness: one fixed depth-3 schema (fact → items → categories →
// suppliers, with a second brands branch under items), every strategy,
// workers ∈ {1, 2, 4}. Factorized training over the snowflake matches
// Materialized/Streaming over the flattened join, bit-identical across
// every worker count within a strategy.
func TestSnowflakeDepth3PinnedEquivalence(t *testing.T) {
	db := openDB(t)
	rng := rand.New(rand.NewSource(99))

	suppliers, err := db.CreateDimensionTable("suppliers", []string{"rating"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := suppliers.Append(int64(i), []float64{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	categories, err := db.CreateDimensionTable("categories", []string{"margin", "rate"}, suppliers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := categories.AppendRefs(int64(i), []int64{int64(rng.Intn(5))}, []float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	brands, err := db.CreateDimensionTable("brands", []string{"prestige"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := brands.Append(int64(i), []float64{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	items, err := db.CreateDimensionTable("items", []string{"price", "weight"}, categories, brands)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		err := items.AppendRefs(int64(i), []int64{int64(rng.Intn(9)), int64(rng.Intn(4))},
			[]float64{rng.NormFloat64(), rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
	}
	fact, err := db.CreateFactTable("orders", []string{"amount", "hour"}, true, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		a := rng.NormFloat64()
		if err := fact.Append(int64(i), []int64{int64(rng.Intn(40))}, []float64{a, rng.NormFloat64()}, 0.5*a); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := db.Dataset(fact)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + 2 + 2 + 1 + 1; ds.JoinedWidth() != want {
		t.Fatalf("JoinedWidth = %d, want %d", ds.JoinedWidth(), want)
	}

	algos := []Algorithm{Materialized, Streaming, Factorized}
	var gref *GMMModel
	var nref *NNNetwork
	for _, algo := range algos {
		var gw []*GMMModel
		var nw []*NNNetwork
		for _, w := range []int{1, 2, 4} {
			gres, err := TrainGMM(ds, algo, GMMConfig{K: 3, MaxIter: 4, Tol: 1e-300, Seed: 5, NumWorkers: w})
			if err != nil {
				t.Fatalf("%v-GMM workers=%d: %v", algo, w, err)
			}
			gw = append(gw, gres.Model)
			nres, err := TrainNN(ds, algo, NNConfig{Hidden: []int{6}, Epochs: 3, LearningRate: 0.05, Seed: 5, NumWorkers: w})
			if err != nil {
				t.Fatalf("%v-NN workers=%d: %v", algo, w, err)
			}
			nw = append(nw, nres.Net)
		}
		for i := 1; i < len(gw); i++ {
			if d := gw[0].MaxParamDiff(gw[i]); d != 0 {
				t.Errorf("%v-GMM: workers sweep position %d differs by %g, want bit-identical", algo, i, d)
			}
			if d := nw[0].MaxParamDiff(nw[i]); d != 0 {
				t.Errorf("%v-NN: workers sweep position %d differs by %g, want bit-identical", algo, i, d)
			}
		}
		if gref == nil {
			gref, nref = gw[0], nw[0]
			continue
		}
		if d := gref.MaxParamDiff(gw[0]); relDiffTooBig(d) {
			t.Errorf("GMM: %v differs from Materialized by %g", algo, d)
		}
		if d := nref.MaxParamDiff(nw[0]); relDiffTooBig(d) {
			t.Errorf("NN: %v differs from Materialized by %g", algo, d)
		}
	}
}
