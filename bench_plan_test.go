package factorml

// Planner-accuracy benchmark: three schema shapes chosen to have three
// different winners (wide dimensions → Factorized, zero-width dimensions →
// Streaming, narrow dimensions with a multi-block R1 and many passes →
// Materialized). Every strategy is actually trained on each shape, the
// planner's estimated core.Ops and page counts are recorded against the
// measured Stats.Ops/Stats.IO, and the results land in BENCH_plan.json (a
// CI artifact). TestPlannerPicksMeasuredCheapest asserts — on every test
// run, without -bench — that the planner picked the measured-cheapest
// strategy (by the same flops+pages score it estimates, 5% tie tolerance)
// on at least 2 of the 3 shapes.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"factorml/internal/gmm"
	"factorml/internal/plan"
)

// planShape is one benchmark schema plus the GMM config priced over it.
type planShape struct {
	name       string
	ns, nr     int
	ds, dr     int
	k, iters   int
	blockPages int
}

var planShapes = []planShape{
	// High fan-out, wide dimension: per-tuple reuse dominates.
	{name: "wide-dim", ns: 3000, nr: 50, ds: 2, dr: 24, k: 3, iters: 3},
	// Zero-width dimension, single block, one iteration: nothing to
	// factorize and nothing to amortize a materialization over.
	{name: "zero-width-dim", ns: 4000, nr: 80, ds: 3, dr: 0, k: 3, iters: 1},
	// Narrow dimension forced multi-block (BlockPages=1) with many EM
	// passes: every streamed pass rescans the fact table once per block,
	// while a narrow T amortizes.
	{name: "narrow-dim-multiblock", ns: 4000, nr: 2000, ds: 2, dr: 1, k: 3, iters: 6, blockPages: 1},
}

// planStrategyRecord is one (shape, strategy) row of BENCH_plan.json.
type planStrategyRecord struct {
	Strategy      string  `json:"strategy"`
	EstMul        int64   `json:"est_mul"`
	EstAdds       int64   `json:"est_adds"`
	MeasMul       int64   `json:"meas_mul"`
	MeasAdds      int64   `json:"meas_adds"`
	OpsRatio      float64 `json:"ops_ratio"` // estimated / measured flops
	EstPages      int64   `json:"est_pages"`
	MeasPages     int64   `json:"meas_pages"` // logical reads + writes
	MeasuredScore float64 `json:"measured_score"`
}

type planShapeRecord struct {
	Shape            string               `json:"shape"`
	Chosen           string               `json:"chosen"`
	MeasuredCheapest string               `json:"measured_cheapest"`
	Hit              bool                 `json:"hit"`
	Strategies       []planStrategyRecord `json:"strategies"`
}

var planBench struct {
	mu      sync.Mutex
	once    sync.Once
	records []planShapeRecord
	hits    int
	err     error
}

// runPlanShapes trains every strategy on every shape once, comparing the
// planner's estimates with the measured counters (memoized: the benchmark
// and the assertion test share one run).
func runPlanShapes(tb testing.TB) ([]planShapeRecord, int) {
	tb.Helper()
	planBench.once.Do(func() { planBench.records, planBench.hits, planBench.err = measurePlanShapes() })
	if planBench.err != nil {
		tb.Fatal(planBench.err)
	}
	return planBench.records, planBench.hits
}

func measurePlanShapes() ([]planShapeRecord, int, error) {
	var records []planShapeRecord
	hits := 0
	for _, sh := range planShapes {
		dir, err := os.MkdirTemp("", "factorml-plan-bench-")
		if err != nil {
			return nil, 0, err
		}
		db, err := Open(dir, Options{NumWorkers: 1})
		if err != nil {
			return nil, 0, err
		}
		ds, err := GenerateSynthetic(db, "plan", SyntheticConfig{
			NS: sh.ns, NR: []int{sh.nr}, DS: sh.ds, DR: []int{sh.dr}, Seed: 11,
		})
		if err != nil {
			return nil, 0, err
		}
		cfg := GMMConfig{K: sh.k, MaxIter: sh.iters, Tol: 1e-300, Seed: 5, BlockPages: sh.blockPages, NumWorkers: 1}
		pl, err := PlanGMM(ds, cfg)
		if err != nil {
			return nil, 0, err
		}

		rec := planShapeRecord{Shape: sh.name, Chosen: pl.Chosen.String()}
		bestScore := 0.0
		for _, strat := range []plan.Strategy{plan.Materialized, plan.Streaming, plan.Factorized} {
			var res *gmm.Result
			res, err = TrainGMM(ds, Algorithm(strat), cfg)
			if err != nil {
				return nil, 0, fmt.Errorf("shape %s, %v: %w", sh.name, strat, err)
			}
			est := pl.Estimate(strat)
			measPages := res.Stats.IO.LogicalReads + res.Stats.IO.PageWrites
			meas := res.Stats.Ops
			score := float64(meas.Total()) + plan.DefaultFlopsPerPage*float64(measPages)
			sr := planStrategyRecord{
				Strategy: strat.String(),
				EstMul:   est.Ops.Mul, EstAdds: est.Ops.Adds,
				MeasMul: meas.Mul, MeasAdds: meas.Adds,
				EstPages: est.Pages, MeasPages: measPages,
				MeasuredScore: score,
			}
			if meas.Total() > 0 {
				sr.OpsRatio = float64(est.Ops.Total()) / float64(meas.Total())
			}
			rec.Strategies = append(rec.Strategies, sr)
			if rec.MeasuredCheapest == "" || score < bestScore {
				rec.MeasuredCheapest, bestScore = strat.String(), score
			}
		}
		// The pick "hits" when its measured score is within 5% of the
		// measured-cheapest (M and S do identical math, so exact argmin
		// would be a coin flip on I/O jitter between near-ties).
		for _, sr := range rec.Strategies {
			if sr.Strategy == rec.Chosen && sr.MeasuredScore <= 1.05*bestScore {
				rec.Hit = true
				hits++
			}
		}
		records = append(records, rec)
		db.Close()
		os.RemoveAll(dir)
	}
	return records, hits, nil
}

// TestPlannerPicksMeasuredCheapest is the always-on guarantee behind
// BENCH_plan.json: on at least 2 of the 3 shapes, the planner's choice is
// the measured-cheapest strategy (5% tie tolerance).
func TestPlannerPicksMeasuredCheapest(t *testing.T) {
	records, hits := runPlanShapes(t)
	for _, r := range records {
		t.Logf("shape %s: chose %s, measured cheapest %s (hit=%v)", r.Shape, r.Chosen, r.MeasuredCheapest, r.Hit)
	}
	if hits < 2 {
		blob, _ := json.MarshalIndent(records, "", "  ")
		t.Fatalf("planner matched the measured-cheapest strategy on %d/3 shapes, want >= 2\n%s", hits, blob)
	}
}

// BenchmarkPlanner times the planning step itself (statistics collection
// plus pricing all strategies) and populates BENCH_plan.json with the
// estimated-vs-measured comparison.
func BenchmarkPlanner(b *testing.B) {
	runPlanShapes(b)
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ds, err := GenerateSynthetic(db, "plan", SyntheticConfig{NS: 5000, NR: []int{100}, DS: 4, DR: []int{12}, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	cfg := GMMConfig{K: 4, MaxIter: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanGMM(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// flushPlanBench writes BENCH_plan.json (called from TestMain). The file
// is written whenever the shapes were measured — by the benchmark or by
// the always-on assertion test.
func flushPlanBench() {
	planBench.mu.Lock()
	records := planBench.records
	planBench.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		FlopsPerPage float64           `json:"flops_per_page"`
		Hits         int               `json:"hits"`
		Shapes       []planShapeRecord `json:"shapes"`
	}{FlopsPerPage: plan.DefaultFlopsPerPage, Hits: planBench.hits, Shapes: records}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_plan.json", append(blob, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_plan.json: %v\n", err)
	}
}
