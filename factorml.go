// Package factorml trains nonlinear machine-learning models — full-
// covariance Gaussian Mixture Models and feed-forward Neural Networks —
// directly over normalized relational data, reproducing "Efficient
// Construction of Nonlinear Models over Normalized Data" (ICDE 2021).
//
// Instead of denormalizing a star schema S ⋈ R1 ⋈ … ⋈ Rq into a wide table
// before training, the factorized trainers push the training computation
// through the join: work that depends only on a dimension tuple is done
// once per dimension tuple rather than once per joined row. The
// decomposition is exact — the model is bit-for-bit the one you would get
// from training over the denormalized table — while typically being 2-6×
// faster and never materializing the join.
//
// Three execution strategies are provided for each model family, matching
// the paper's M-/S-/F- algorithm triples, plus a planner that picks one:
//
//	Materialized — write the join result T to disk, train from T (baseline)
//	Streaming    — re-execute the join on the fly each pass (no T storage)
//	Factorized   — stream the join and factorize the computation (the paper)
//	Auto         — consult the cost-based planner (internal/plan): catalog
//	               statistics (row counts, widths, distinct foreign keys,
//	               fan-out — storage.TableStats) price every strategy with
//	               the same flop accounting the trainers measure, plus a
//	               block-nested-loops page-I/O model, and the cheapest wins.
//	               The decision and full cost table land in Stats.Plan; the
//	               trained model is bit-identical to invoking the chosen
//	               strategy directly.
//
// Training additionally runs on a chunked worker pool (internal/parallel),
// sized by Options.NumWorkers or the per-training NumWorkers field of
// GMMConfig/NNConfig (0 = all CPUs, 1 = sequential). The pool's chunk
// geometry and merge order never depend on the worker count, so the
// trained model is bit-for-bit identical for every setting — parallelism
// preserves the exactness guarantee above.
//
// Schemas are not limited to one-hop stars: a dimension table may itself
// reference sub-dimension tables (CreateDimensionTable's variadic parent
// references), forming an arbitrary-depth snowflake DAG. Datasets,
// trainers, the prediction server and the streaming change feed all
// operate on the flattened hierarchy, and the factorized paths reuse
// per-distinct-tuple work at every level — sub-dimension computation is
// shared across all parent tuples that reach it.
//
// Quick start:
//
//	db, _ := factorml.Open(dir, factorml.Options{})
//	defer db.Close()
//	brands, _ := db.CreateDimensionTable("brands", []string{"prestige"})
//	items, _ := db.CreateDimensionTable("items", []string{"price", "size"}, brands)
//	orders, _ := db.CreateFactTable("orders", []string{"amount"}, true, items)
//	… append tuples (AppendRefs on tables with sub-dimensions) …
//	ds, _ := db.Dataset(orders)
//	res, _ := factorml.TrainGMM(ds, factorml.Factorized, factorml.GMMConfig{K: 5})
package factorml

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/metrics"
	"factorml/internal/monitor"
	"factorml/internal/nn"
	"factorml/internal/plan"
	"factorml/internal/serve"
	"factorml/internal/storage"
	"factorml/internal/stream"
	"factorml/internal/trace"
	"factorml/internal/wal"
	"factorml/internal/xlog"
)

// Algorithm selects the execution strategy for training.
type Algorithm int

const (
	// Materialized is the paper's M-GMM/M-NN baseline: join, write T to
	// disk, train from T.
	Materialized Algorithm = iota
	// Streaming is the paper's S-GMM/S-NN: join on the fly every pass.
	Streaming
	// Factorized is the paper's F-GMM/F-NN: join on the fly with
	// factorized, redundancy-free computation.
	Factorized
	// Auto consults the cost-based planner: the catalog's table statistics
	// price every strategy for this dataset and configuration, and training
	// runs the cheapest one. The decision (chosen strategy plus the ranked
	// per-strategy estimates) is reported in the result's Stats.Plan.
	Auto
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Materialized:
		return "materialized"
	case Streaming:
		return "streaming"
	case Factorized:
		return "factorized"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Re-exported configuration and result types. These are aliases of the
// implementation types so that the facade stays zero-cost.
type (
	// GMMConfig configures EM training (K is required).
	GMMConfig = gmm.Config
	// GMMResult is a trained mixture model plus training statistics.
	GMMResult = gmm.Result
	// GMMModel is a trained Gaussian mixture.
	GMMModel = gmm.Model
	// NNConfig configures backprop training.
	NNConfig = nn.Config
	// NNResult is a trained network plus training statistics.
	NNResult = nn.Result
	// NNNetwork is a trained feed-forward network.
	NNNetwork = nn.Network
	// Activation selects the NN hidden activation.
	Activation = nn.Activation
	// BatchMode selects the NN update cadence.
	BatchMode = nn.BatchMode
	// IOStats carries buffer-pool page counters.
	IOStats = storage.IOStats
	// SyntheticConfig configures the synthetic workload generator.
	SyntheticConfig = data.SynthConfig
	// DatasetShape describes one of the paper's real-dataset shapes.
	DatasetShape = data.Shape
	// ModelInfo describes one model in the database's model registry.
	ModelInfo = serve.ModelInfo
	// ModelKind identifies a registered model's family ("gmm" or "nn").
	ModelKind = serve.Kind
	// ServeConfig tunes the prediction engine behind NewServer (worker
	// pool size, dimension-cache capacity, micro-batch rows).
	ServeConfig = serve.EngineConfig
	// Limits configures admission control on a Server: the per-model
	// in-flight prediction cap and the bounded ingest queue. Zero fields
	// mean unlimited.
	Limits = serve.Limits
	// MetricsRegistry holds the Prometheus metric families a Server
	// built WithMetrics exposes at GET /metrics.
	MetricsRegistry = metrics.Registry
	// StreamPolicy tunes when and how a Stream refreshes its attached
	// models (refresh-row threshold, rebaseline cadence, worker pool,
	// NN warm-start epochs and learning rate, GMM regularizer).
	StreamPolicy = stream.Policy
	// StreamBatch is one atomic change batch: fact appends plus dimension
	// inserts/updates.
	StreamBatch = stream.Batch
	// FactRow is one new fact tuple in a StreamBatch.
	FactRow = stream.FactRow
	// DimUpdate is one dimension insert/update in a StreamBatch.
	DimUpdate = stream.DimUpdate
	// IngestResult reports what one Ingest applied.
	IngestResult = stream.IngestResult
	// RefreshResult reports one refresh across the attached models.
	RefreshResult = stream.RefreshResult
	// StreamCounters is a snapshot of a stream's cumulative counters.
	StreamCounters = stream.Counters
	// WALStats is a snapshot of the write-ahead log's cumulative
	// counters (LSN watermarks, segment/byte footprint, fsync totals).
	WALStats = wal.Stats
	// StrategyPlan is the cost-based planner's ranked decision: the chosen
	// strategy plus one StrategyEstimate per strategy, ascending by score.
	// Plan.Chosen's integer value matches the Algorithm constants.
	StrategyPlan = plan.Plan
	// StrategyEstimate is one strategy's priced cost: estimated training
	// flops (core.Ops, the same accounting Stats.Ops measures), page I/O,
	// and the combined score the ranking uses.
	StrategyEstimate = plan.Estimate
	// TableStats is the catalog's per-relation statistics snapshot the
	// planner prices strategies from (rows, pages, width, distinct foreign
	// keys; collected at append/flush, persisted in the catalog).
	TableStats = storage.TableStats
	// MonitorConfig tunes the model-health monitor a Server builds
	// WithMonitoring: PSI warn/drift thresholds, the staleness row
	// budget, the prediction-quality sampling fraction and the live-
	// window evidence floor. The zero value selects the defaults
	// (0.1 / 0.25 PSI, staleness disabled, sample everything, 50 rows).
	MonitorConfig = monitor.Config
	// ModelHealth is one model's health evaluation: verdict, per-column
	// drift scores, staleness counters and training lineage.
	ModelHealth = monitor.Health
	// ModelColumnHealth is one joined column's drift score inside a
	// ModelHealth.
	ModelColumnHealth = monitor.ColumnHealth
	// ModelLineage is the training provenance persisted with a model
	// version: when it was trained, over how many rows, with which
	// strategy, and the training-time baseline statistics drift is
	// scored against.
	ModelLineage = monitor.Lineage
	// ModelBaseline is the training-time per-column statistics snapshot
	// inside a ModelLineage.
	ModelBaseline = monitor.Baseline
	// TraceConfig tunes the request tracer a Server builds WithTracing:
	// sampling fraction, slow-trace threshold, flight-recorder capacities
	// and the per-trace span cap. The zero value selects the defaults
	// (sample everything, 100 ms slow threshold, 128 recent / 64 slow
	// traces, 512 spans).
	TraceConfig = trace.Config
	// TraceStats is the tracer's cumulative counter snapshot (requests
	// seen, sampled, errored, slow, recorded), embedded in /statsz.
	TraceStats = trace.Stats
	// Logger is the leveled JSON line logger a Server accepts through
	// WithServerLogger; build one with NewLogger. Request log lines carry
	// the trace ID of sampled requests.
	Logger = xlog.Logger
	// LogLevel is a Logger severity threshold (see ParseLogLevel).
	LogLevel = xlog.Level
)

// Logger severity levels, most to least verbose.
const (
	LogDebug = xlog.LevelDebug
	LogInfo  = xlog.LevelInfo
	LogWarn  = xlog.LevelWarn
	LogError = xlog.LevelError
)

// NewLogger builds a leveled JSON line logger writing to w (one object
// per line; keys ts/level/msg/trace_id lead). A nil *Logger is silent
// everywhere it is accepted.
func NewLogger(w io.Writer, min LogLevel) *Logger { return xlog.New(w, min) }

// ParseLogLevel parses "debug", "info", "warn"/"warning" or "error"
// (case-insensitive) into a LogLevel.
func ParseLogLevel(s string) (LogLevel, error) { return xlog.ParseLevel(s) }

// Registered model kinds.
const (
	KindGMM = serve.KindGMM
	KindNN  = serve.KindNN
)

// Model-health verdicts reported by ModelHealth.Verdict, strongest to
// weakest: drifting beats stale beats fresh; unmonitored means the model
// has no persisted baseline to score drift against.
const (
	VerdictFresh       = monitor.VerdictFresh
	VerdictDrifting    = monitor.VerdictDrifting
	VerdictStale       = monitor.VerdictStale
	VerdictUnmonitored = monitor.VerdictUnmonitored
)

// Re-exported NN activation and batching constants.
const (
	Sigmoid  = nn.Sigmoid
	Tanh     = nn.Tanh
	ReLU     = nn.ReLU
	Identity = nn.Identity

	EpochUpdates = nn.Epoch
	BlockUpdates = nn.Block
)

// Options configures a database.
type Options struct {
	// PoolPages is the buffer-pool capacity in pages (8 KiB each).
	// Zero disables caching; negative selects the default (256).
	PoolPages int

	// NumWorkers is the default worker-pool size for training over this
	// database, used whenever a GMMConfig/NNConfig leaves its own
	// NumWorkers at zero: 0 = all CPUs, 1 = sequential, n > 1 = n workers.
	// Note that a per-training NumWorkers of 0 therefore means "inherit
	// this default", not "all CPUs"; pass runtime.NumCPU() explicitly to
	// override a sequential default for one call.
	// The trained model is bit-for-bit identical for every value — the
	// parallel engine's chunk geometry and merge order never depend on the
	// worker count (see internal/parallel).
	NumWorkers int
}

// DB is a database of normalized relations backed by heap files in a
// directory.
type DB struct {
	db   *storage.Database
	opts Options

	// Durability state (nil/zero unless opened WithDurability).
	wal       *wal.Log
	snapEvery int
	walStream *stream.Stream
	// pendingReplay marks a crash boot whose WAL tail has not been
	// replayed yet: set when the directory was not closed cleanly and
	// recovery work exists, cleared once a stream boot has recovered.
	// While set, Close leaves the crash state untouched so a later boot
	// can still recover it.
	pendingReplay bool

	regOnce sync.Once
	reg     *serve.Registry
	regErr  error
}

// DurabilityConfig switches on crash-safe streaming for a database: a
// write-ahead log makes every acknowledged ingest batch durable before
// the ack, and periodic atomic snapshots bound recovery time. After a
// crash, the next Open restores the last committed snapshot and the
// first NewStream/NewServer replays the WAL tail, rebuilding tables,
// incremental statistics, and the model registry to the exact pre-crash
// state — refreshed models are bit-identical to an unkilled run.
type DurabilityConfig struct {
	// Dir is the WAL directory. Empty selects "<dbdir>/wal". It may live
	// on a different filesystem than the database directory.
	Dir string

	// FsyncEvery is the group-commit window: an fsync is issued at the
	// latest after this many appended records, and every waiting append
	// is acknowledged by the same fsync. 0 or 1 syncs every record;
	// higher values amortize fsyncs across concurrent writers without
	// weakening the guarantee (no append returns before its record is
	// on disk).
	FsyncEvery int

	// SnapshotEvery triggers an automatic checkpoint after this many WAL
	// records past the last snapshot. 0 disables automatic checkpoints
	// (explicit Stream.Checkpoint and the boot/close checkpoints still
	// run), which bounds neither WAL growth nor recovery time.
	SnapshotEvery int

	// SegmentBytes rotates WAL segment files at this size. 0 selects the
	// default (4 MiB).
	SegmentBytes int64

	// NoSync skips fsync entirely (testing only: durability reduces to
	// "whatever the OS flushed").
	NoSync bool
}

// OpenOption is an optional setting for Open.
type OpenOption func(*openConfig)

type openConfig struct {
	dur *DurabilityConfig
}

// WithDurability opens the database with a write-ahead log and atomic
// snapshots (see DurabilityConfig). A database previously opened without
// durability can be upgraded by passing this option; dropping the option
// later is safe only after a clean Close.
func WithDurability(cfg DurabilityConfig) OpenOption {
	return func(o *openConfig) {
		c := cfg
		o.dur = &c
	}
}

// Open creates or opens a database directory.
//
// With WithDurability, Open also inspects the WAL directory: after a
// crash (no clean-shutdown marker) it first restores the database files
// captured by the last committed snapshot, leaving the WAL tail to be
// replayed by the first NewStream/NewServer on the returned DB.
func Open(dir string, opts Options, extra ...OpenOption) (*DB, error) {
	var oc openConfig
	for _, o := range extra {
		o(&oc)
	}
	pool := opts.PoolPages
	if pool == 0 {
		pool = -1 // facade default: enabled
	}
	var l *wal.Log
	pending := false
	if oc.dur != nil {
		walDir := oc.dur.Dir
		if walDir == "" {
			walDir = filepath.Join(dir, "wal")
		}
		clean, err := wal.IsClean(walDir)
		if err != nil {
			return nil, fmt.Errorf("factorml: checking clean-shutdown marker: %w", err)
		}
		if !clean {
			// Crash boot (or first boot): rewind the database files to
			// the last committed snapshot before opening them. A no-op
			// when no snapshot exists yet.
			if err := stream.RestoreSnapshotFiles(dir, walDir); err != nil {
				return nil, fmt.Errorf("factorml: restoring snapshot: %w", err)
			}
		}
		l, err = wal.Open(walDir, wal.Options{
			SegmentBytes: oc.dur.SegmentBytes,
			FsyncEvery:   oc.dur.FsyncEvery,
			NoSync:       oc.dur.NoSync,
		})
		if err != nil {
			return nil, fmt.Errorf("factorml: opening WAL: %w", err)
		}
		if !clean {
			_, _, snapOK, err := wal.CurrentSnapshot(walDir)
			if err != nil {
				l.Close()
				return nil, err
			}
			if !snapOK && l.LastLSN() > 0 {
				// Records but no snapshot to anchor them: genesis never
				// checkpointed, so replay has no base state. NewServer
				// commits a boot checkpoint before clearing the marker
				// exactly so this cannot happen in normal operation.
				l.Close()
				return nil, fmt.Errorf("factorml: WAL %s holds %d records but no committed snapshot; cannot recover", walDir, l.LastLSN())
			}
			pending = snapOK || l.LastLSN() > 0
		}
	}
	sdb, err := storage.Open(dir, storage.Options{PoolPages: pool})
	if err != nil {
		if l != nil {
			l.Close()
		}
		return nil, err
	}
	snapEvery := 0
	if oc.dur != nil {
		snapEvery = oc.dur.SnapshotEvery
	}
	return &DB{db: sdb, opts: opts, wal: l, snapEvery: snapEvery, pendingReplay: pending}, nil
}

// Durable reports whether the database was opened WithDurability.
func (d *DB) Durable() bool { return d.wal.Enabled() }

// WALStats returns the write-ahead log's cumulative counters (all zero
// when durability is off).
func (d *DB) WALStats() WALStats { return d.wal.Stats() }

// Close flushes and closes all tables. With durability on and a live
// stream, Close first commits a checkpoint and marks the shutdown clean,
// so the next Open skips recovery entirely; after a crash boot whose WAL
// tail was never replayed (no stream was built), Close leaves the crash
// state on disk untouched for a later boot to recover.
func (d *DB) Close() error {
	if d.wal == nil {
		return d.db.Close()
	}
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	clean := !d.pendingReplay
	if d.walStream != nil {
		if err := d.walStream.Checkpoint(); err != nil {
			keep(fmt.Errorf("factorml: close checkpoint: %w", err))
			clean = false
		}
	}
	keep(d.db.Close())
	// CLEAN means "the live database files are authoritative": mark it
	// only after the file flush above, and never over unreplayed crash
	// state.
	if clean && firstErr == nil {
		keep(wal.MarkClean(d.wal.Dir()))
	}
	keep(d.wal.Close())
	return firstErr
}

// IOStats returns the cumulative buffer-pool counters.
func (d *DB) IOStats() IOStats { return d.db.Pool().Stats() }

// ResetIOStats zeroes the buffer-pool counters.
func (d *DB) ResetIOStats() { d.db.Pool().ResetStats() }

// DimensionTable is a relation R(rid, fk…, features…) referenced by fact
// tables — and, in a snowflake schema, by other dimension tables. A
// dimension table created with sub-dimension references carries one
// foreign-key column per reference.
type DimensionTable struct {
	tbl  *storage.Table
	subs []*DimensionTable
}

// Name returns the table name.
func (t *DimensionTable) Name() string { return t.tbl.Schema().Name }

// NumTuples returns the number of appended tuples.
func (t *DimensionTable) NumTuples() int64 { return t.tbl.NumTuples() }

// SubDimensions returns the sub-dimension tables this table references, in
// foreign-key order (empty for a leaf table).
func (t *DimensionTable) SubDimensions() []*DimensionTable {
	return append([]*DimensionTable{}, t.subs...)
}

// Append adds a tuple to a leaf dimension table. rid must be unique within
// the table. Tables with sub-dimension references take AppendRefs instead.
func (t *DimensionTable) Append(rid int64, features []float64) error {
	if len(t.subs) > 0 {
		return fmt.Errorf("factorml: dimension table %q references %d sub-dimensions; use AppendRefs", t.Name(), len(t.subs))
	}
	return t.tbl.Append(&storage.Tuple{Keys: []int64{rid}, Features: features})
}

// AppendRefs adds a tuple to a dimension table with sub-dimension
// references: fks must name an existing rid in each referenced
// sub-dimension table, in the order passed to CreateDimensionTable
// (checked at join time).
func (t *DimensionTable) AppendRefs(rid int64, fks []int64, features []float64) error {
	if len(fks) != len(t.subs) {
		return fmt.Errorf("factorml: %d foreign keys for %d sub-dimension tables of %q", len(fks), len(t.subs), t.Name())
	}
	keys := make([]int64, 1+len(fks))
	keys[0] = rid
	copy(keys[1:], fks)
	return t.tbl.Append(&storage.Tuple{Keys: keys, Features: features})
}

// Flush persists any buffered tuples.
func (t *DimensionTable) Flush() error { return t.tbl.Flush() }

// FactTable is a relation S(sid, fk…, features…, target?) with one foreign
// key per referenced dimension table.
type FactTable struct {
	tbl  *storage.Table
	dims []*DimensionTable
}

// Name returns the table name.
func (t *FactTable) Name() string { return t.tbl.Schema().Name }

// NumTuples returns the number of appended tuples.
func (t *FactTable) NumTuples() int64 { return t.tbl.NumTuples() }

// Append adds a fact tuple; fks must name an existing rid in each
// referenced dimension table (checked at join time). target is ignored
// unless the table was created with a target column.
func (t *FactTable) Append(sid int64, fks []int64, features []float64, target float64) error {
	if len(fks) != len(t.dims) {
		return fmt.Errorf("factorml: %d foreign keys for %d dimension tables", len(fks), len(t.dims))
	}
	keys := make([]int64, 1+len(fks))
	keys[0] = sid
	copy(keys[1:], fks)
	return t.tbl.Append(&storage.Tuple{Keys: keys, Features: features, Target: target})
}

// Flush persists any buffered tuples.
func (t *FactTable) Flush() error { return t.tbl.Flush() }

// CreateDimensionTable creates a dimension relation with the given feature
// columns. Passing sub-dimension tables builds a snowflake level: the new
// table gets one foreign-key column per referenced table (fill them with
// AppendRefs), and every join rooted at a fact table referencing this one
// transparently extends through the whole hierarchy. The references are
// recorded in the database catalog, so reopened databases — and cmd/train
// and cmd/serve — reconstruct the hierarchy without redeclaring it.
func (d *DB) CreateDimensionTable(name string, features []string, subs ...*DimensionTable) (*DimensionTable, error) {
	schema := &storage.Schema{
		Name:     name,
		Keys:     []string{"rid"},
		Features: features,
	}
	for i, sub := range subs {
		if sub == nil {
			return nil, fmt.Errorf("factorml: sub-dimension table %d of %q is nil", i, name)
		}
		schema.Keys = append(schema.Keys, fmt.Sprintf("fk%d", i+1))
		schema.Refs = append(schema.Refs, sub.Name())
	}
	tbl, err := d.db.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	return &DimensionTable{tbl: tbl, subs: append([]*DimensionTable{}, subs...)}, nil
}

// CreateFactTable creates a fact relation with one foreign key per listed
// dimension table and, when withTarget is set, a target column for
// supervised training.
func (d *DB) CreateFactTable(name string, features []string, withTarget bool, dims ...*DimensionTable) (*FactTable, error) {
	if len(dims) == 0 {
		return nil, errors.New("factorml: a fact table needs at least one dimension table")
	}
	schema := &storage.Schema{
		Name:      name,
		Keys:      []string{"sid"},
		Features:  features,
		HasTarget: withTarget,
	}
	for i, dim := range dims {
		if dim == nil {
			return nil, fmt.Errorf("factorml: dimension table %d of %q is nil", i, name)
		}
		schema.Keys = append(schema.Keys, fmt.Sprintf("fk%d", i+1))
		schema.Refs = append(schema.Refs, dim.Name())
	}
	tbl, err := d.db.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	return &FactTable{tbl: tbl, dims: dims}, nil
}

// DimensionTable opens an existing dimension relation by name,
// rebuilding its sub-dimension handles from the references recorded in
// the database catalog.
func (d *DB) DimensionTable(name string) (*DimensionTable, error) {
	tbl, err := d.db.Table(name)
	if err != nil {
		return nil, err
	}
	var subs []*DimensionTable
	for _, ref := range tbl.Schema().Refs {
		sub, err := d.DimensionTable(ref)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
	return &DimensionTable{tbl: tbl, subs: subs}, nil
}

// FactTable opens an existing fact relation by name, rebuilding its
// dimension-table handles from the references recorded in the database
// catalog — the handle a reopened database needs for Dataset or
// NewStream (e.g. when rebooting a durable database after a crash).
func (d *DB) FactTable(name string) (*FactTable, error) {
	tbl, err := d.db.Table(name)
	if err != nil {
		return nil, err
	}
	var dims []*DimensionTable
	for _, ref := range tbl.Schema().Refs {
		dim, err := d.DimensionTable(ref)
		if err != nil {
			return nil, err
		}
		dims = append(dims, dim)
	}
	return &FactTable{tbl: tbl, dims: dims}, nil
}

// Dataset binds a fact table to its dimension tables for training.
type Dataset struct {
	db   *DB
	spec *join.Spec
}

// Dataset builds a training dataset over the join rooted at fact — the
// one-hop star, or, when any dimension table references sub-dimensions,
// the whole snowflake hierarchy flattened in depth-first preorder (the
// feature layout every trainer and server over this schema shares).
func (d *DB) Dataset(fact *FactTable) (*Dataset, error) {
	var direct []*storage.Table
	for _, dim := range fact.dims {
		direct = append(direct, dim.tbl)
	}
	spec, err := join.NewSnowflakeSpec(fact.tbl, direct, d.db.Table)
	if err != nil {
		return nil, err
	}
	if err := fact.Flush(); err != nil {
		return nil, err
	}
	for _, r := range spec.Rs {
		if err := r.Flush(); err != nil {
			return nil, err
		}
	}
	return &Dataset{db: d, spec: spec}, nil
}

// JoinedWidth returns the feature dimensionality of the (virtual) join.
func (ds *Dataset) JoinedWidth() int { return ds.spec.JoinedWidth() }

// NumRows returns the number of fact tuples.
func (ds *Dataset) NumRows() int64 { return ds.spec.S.NumTuples() }

// Stream iterates the joined rows without materializing them. The feature
// slice is reused between calls.
func (ds *Dataset) Stream(fn func(sid int64, features []float64, target float64) error) error {
	return join.Stream(ds.spec, fn)
}

// TrainGMM trains a Gaussian mixture over the dataset with the chosen
// execution strategy. With Auto, the cost-based planner selects the
// strategy from the catalog's table statistics; the decision is recorded
// in the result's Stats.Plan and the trained model is bit-identical to
// invoking the chosen strategy directly.
func TrainGMM(ds *Dataset, algo Algorithm, cfg GMMConfig) (*GMMResult, error) {
	if cfg.NumWorkers == 0 {
		cfg.NumWorkers = ds.db.opts.NumWorkers
	}
	var planned *StrategyPlan
	if algo == Auto {
		p, err := PlanGMM(ds, cfg)
		if err != nil {
			return nil, err
		}
		planned = p
		algo = Algorithm(p.Chosen)
	}
	var res *GMMResult
	var err error
	switch algo {
	case Materialized:
		res, err = gmm.TrainM(ds.db.db, ds.spec, cfg)
	case Streaming:
		res, err = gmm.TrainS(ds.db.db, ds.spec, cfg)
	case Factorized:
		res, err = gmm.TrainF(ds.db.db, ds.spec, cfg)
	default:
		return nil, fmt.Errorf("factorml: unknown algorithm %d", int(algo))
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Plan = planned
	return res, nil
}

// TrainNN trains a feed-forward network over the dataset with the chosen
// execution strategy. The fact table must have been created with a target.
// With Auto, the cost-based planner selects the strategy (see TrainGMM).
func TrainNN(ds *Dataset, algo Algorithm, cfg NNConfig) (*NNResult, error) {
	if cfg.NumWorkers == 0 {
		cfg.NumWorkers = ds.db.opts.NumWorkers
	}
	var planned *StrategyPlan
	if algo == Auto {
		p, err := PlanNN(ds, cfg)
		if err != nil {
			return nil, err
		}
		planned = p
		algo = Algorithm(p.Chosen)
	}
	var res *NNResult
	var err error
	switch algo {
	case Materialized:
		res, err = nn.TrainM(ds.db.db, ds.spec, cfg)
	case Streaming:
		res, err = nn.TrainS(ds.db.db, ds.spec, cfg)
	case Factorized:
		res, err = nn.TrainF(ds.db.db, ds.spec, cfg)
	default:
		return nil, fmt.Errorf("factorml: unknown algorithm %d", int(algo))
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Plan = planned
	return res, nil
}

// PlanGMM prices the three execution strategies for EM training of a
// mixture with this configuration over the dataset, using the catalog's
// persisted table statistics (storage.TableStats), and returns the ranked
// plan without training. Plan.Chosen converts to an Algorithm by integer
// value (the planner's strategy constants mirror Materialized, Streaming,
// Factorized).
func PlanGMM(ds *Dataset, cfg GMMConfig) (*StrategyPlan, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("factorml: GMMConfig.K = %d, want >= 1", cfg.K)
	}
	ss, err := plan.Collect(ds.spec)
	if err != nil {
		return nil, err
	}
	iters := cfg.MaxIter
	if iters == 0 {
		iters = gmm.DefaultMaxIter
	}
	return plan.Choose(ss, plan.ModelSpec{
		Family:     plan.FamilyGMM,
		K:          cfg.K,
		Iters:      iters,
		Diagonal:   cfg.Diagonal,
		BlockPages: cfg.BlockPages,
	}, plan.Options{})
}

// PlanNN prices the three execution strategies for SGD training of a
// network with this configuration over the dataset; see PlanGMM.
func PlanNN(ds *Dataset, cfg NNConfig) (*StrategyPlan, error) {
	ss, err := plan.Collect(ds.spec)
	if err != nil {
		return nil, err
	}
	hidden := cfg.Hidden
	if cfg.Init != nil {
		// A warm start fixes the architecture: price the network that will
		// actually train, even when it has no hidden layers.
		hidden = cfg.Init.Sizes[1 : len(cfg.Init.Sizes)-1]
	} else if len(hidden) == 0 {
		hidden = []int{nn.DefaultHidden}
	}
	epochs := cfg.Epochs
	if epochs == 0 {
		epochs = nn.DefaultEpochs
	}
	return plan.Choose(ss, plan.ModelSpec{
		Family:          plan.FamilyNN,
		Hidden:          hidden,
		Epochs:          epochs,
		BlockMode:       cfg.Mode == BlockUpdates,
		GroupedGradient: cfg.GroupedGradient,
		BlockPages:      cfg.BlockPages,
	}, plan.Options{})
}

// GenerateSynthetic creates a synthetic star schema in the database and
// returns it as a Dataset (see SyntheticConfig for the shape knobs).
func GenerateSynthetic(d *DB, name string, cfg SyntheticConfig) (*Dataset, error) {
	spec, err := data.Generate(d.db, name, cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{db: d, spec: spec}, nil
}

// RealDatasetShapes lists the shapes of the paper's real datasets
// (Tables IV/V).
func RealDatasetShapes() []DatasetShape {
	return append([]DatasetShape{}, data.RealShapes...)
}

// GenerateRealShape creates a simulated instance of one of the paper's real
// datasets at the given scale ∈ (0,1].
func GenerateRealShape(d *DB, name string, scale float64, seed int64) (*Dataset, error) {
	shape, err := data.ShapeByName(name)
	if err != nil {
		return nil, err
	}
	spec, err := data.GenerateShape(d.db, shape, scale, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{db: d, spec: spec}, nil
}

// registry lazily opens the model registry of the database directory. The
// registry loads every persisted model on first use and is shared by the
// save/load methods and NewPredictionServer.
func (d *DB) registry() (*serve.Registry, error) {
	d.regOnce.Do(func() { d.reg, d.regErr = serve.NewRegistry(d.db) })
	return d.reg, d.regErr
}

// SaveGMM persists a trained mixture model under a name in the database's
// model registry (version 1, or a bumped version when the name exists).
// Saved models survive Close/Open and are served by NewPredictionServer
// and cmd/serve. The registry keeps a reference to the model; do not
// mutate it afterwards.
func (d *DB) SaveGMM(name string, m *GMMModel) error {
	reg, err := d.registry()
	if err != nil {
		return err
	}
	return reg.SaveGMM(name, m)
}

// SaveNN persists a trained network under a name in the database's model
// registry. See SaveGMM for the registry semantics.
func (d *DB) SaveNN(name string, n *NNNetwork) error {
	reg, err := d.registry()
	if err != nil {
		return err
	}
	return reg.SaveNN(name, n)
}

// GMMLineage captures training lineage for a mixture just trained over
// the dataset: two streaming passes over the join snapshot per-column
// distribution statistics plus a per-row log-likelihood baseline, the
// reference every later drift and prediction-quality score compares
// against. Pass the result to SaveGMMLineage (and a health monitor picks
// it up from the registry).
func GMMLineage(ds *Dataset, m *GMMModel, strategy string) (*ModelLineage, error) {
	base, err := monitor.CaptureBaseline(ds.spec, 0,
		func(x []float64, y float64) float64 { return m.LogProb(x) }, "log_likelihood")
	if err != nil {
		return nil, err
	}
	return &ModelLineage{
		TrainedAtUnix: base.CapturedAtUnix,
		TrainingRows:  base.Rows,
		Strategy:      strategy,
		Baseline:      base,
	}, nil
}

// NNLineage captures training lineage for a network just trained over
// the dataset; the quality baseline sketches the network's output
// distribution. See GMMLineage.
func NNLineage(ds *Dataset, n *NNNetwork, strategy string) (*ModelLineage, error) {
	base, err := monitor.CaptureBaseline(ds.spec, 0,
		func(x []float64, y float64) float64 { return n.Predict(x) }, "output")
	if err != nil {
		return nil, err
	}
	return &ModelLineage{
		TrainedAtUnix: base.CapturedAtUnix,
		TrainingRows:  base.Rows,
		Strategy:      strategy,
		Baseline:      base,
	}, nil
}

// SaveGMMLineage is SaveGMM with training lineage persisted alongside
// the model version (surfaced in GET /v1/models and the health
// endpoint). A nil lineage behaves like SaveGMM: the previous version's
// lineage, if any, is carried forward.
func (d *DB) SaveGMMLineage(name string, m *GMMModel, lin *ModelLineage) error {
	reg, err := d.registry()
	if err != nil {
		return err
	}
	return reg.SaveGMMLineage(name, m, lin)
}

// SaveNNLineage is SaveNN with training lineage persisted alongside the
// model version; see SaveGMMLineage.
func (d *DB) SaveNNLineage(name string, n *NNNetwork, lin *ModelLineage) error {
	reg, err := d.registry()
	if err != nil {
		return err
	}
	return reg.SaveNNLineage(name, n, lin)
}

// LoadGMM returns the named mixture model from the registry. The model is
// shared with the registry: treat it as read-only.
func (d *DB) LoadGMM(name string) (*GMMModel, error) {
	reg, err := d.registry()
	if err != nil {
		return nil, err
	}
	return reg.GMM(name)
}

// LoadNN returns the named network from the registry. The network is
// shared with the registry: treat it as read-only.
func (d *DB) LoadNN(name string) (*NNNetwork, error) {
	reg, err := d.registry()
	if err != nil {
		return nil, err
	}
	return reg.NN(name)
}

// Models lists every registered model's metadata, sorted by name.
func (d *DB) Models() ([]ModelInfo, error) {
	reg, err := d.registry()
	if err != nil {
		return nil, err
	}
	return reg.List(), nil
}

// DeleteModel removes a model from the registry and from disk.
func (d *DB) DeleteModel(name string) error {
	reg, err := d.registry()
	if err != nil {
		return err
	}
	return reg.Delete(name)
}

// Stream is a live change feed over one star schema (see internal/stream):
// Ingest appends fact and dimension deltas, and Refresh folds them into
// every attached model incrementally — one warm-start EM step per GMM in
// time proportional to the delta, NN warm-start epochs — publishing
// refreshed models to the database's registry.
type Stream struct {
	st *stream.Stream
}

// NewStream opens a change feed over the star join rooted at fact. The
// database's model registry receives every refreshed model (version
// bump), so a prediction server over the same database serves refreshed
// parameters without a restart.
//
// On a database opened WithDurability, the stream writes every batch to
// the WAL before applying it, and NewStream finishes any pending crash
// recovery: it replays the WAL tail past the last snapshot (re-attaching
// the models the checkpoint had under maintenance) and commits a fresh
// boot checkpoint. Models the replay attached show up in Attached() —
// re-attach only what is missing.
func (d *DB) NewStream(fact *FactTable, pol StreamPolicy) (*Stream, error) {
	reg, err := d.registry()
	if err != nil {
		return nil, err
	}
	ds, err := d.Dataset(fact) // validates and flushes the tables
	if err != nil {
		return nil, err
	}
	st, err := stream.New(d.db, ds.spec, stream.Options{
		Registry:      reg,
		Policy:        pol,
		WAL:           d.wal,
		SnapshotEvery: d.snapEvery,
	})
	if err != nil {
		return nil, err
	}
	if err := d.bootStream(st); err != nil {
		return nil, err
	}
	return &Stream{st: st}, nil
}

// bootStream finishes durability boot on a freshly built stream: replay
// the WAL tail past the last snapshot, commit a boot checkpoint so the
// snapshot covers the current state, and clear the clean-shutdown marker
// (from here on, a missing marker means "crashed, recover on next
// boot"). A no-op when durability is off.
func (d *DB) bootStream(st *stream.Stream) error {
	if d.wal == nil {
		return nil
	}
	if err := st.Recover(context.Background()); err != nil {
		return fmt.Errorf("factorml: WAL recovery: %w", err)
	}
	if err := st.Checkpoint(); err != nil {
		return fmt.Errorf("factorml: boot checkpoint: %w", err)
	}
	if err := wal.ClearClean(d.wal.Dir()); err != nil {
		return err
	}
	d.walStream = st
	d.pendingReplay = false
	return nil
}

// AttachGMM puts a trained mixture under incremental maintenance (the
// base statistics are built with one pass over the current fact table).
func (s *Stream) AttachGMM(name string, m *GMMModel) error { return s.st.AttachGMM(name, m) }

// AttachNN puts a trained network under incremental maintenance
// (refreshes warm-start the factorized trainer from its parameters).
func (s *Stream) AttachNN(name string, n *NNNetwork) error { return s.st.AttachNN(name, n) }

// Ingest validates and applies one change batch; see DB.Ingest.
func (s *Stream) Ingest(b StreamBatch) (IngestResult, error) { return s.st.Ingest(b) }

// Refresh folds everything ingested so far into the attached models; see
// DB.Refresh.
func (s *Stream) Refresh() (RefreshResult, error) { return s.st.Refresh() }

// GMM returns the current refreshed parameters of an attached mixture.
func (s *Stream) GMM(name string) (*GMMModel, error) { return s.st.GMM(name) }

// NN returns the current refreshed parameters of an attached network.
func (s *Stream) NN(name string) (*NNNetwork, error) { return s.st.NN(name) }

// Pending returns the number of fact rows ingested since the last refresh.
func (s *Stream) Pending() int64 { return s.st.Pending() }

// Counters returns a snapshot of the stream's cumulative counters.
func (s *Stream) Counters() StreamCounters { return s.st.Counters() }

// Attached returns the names of the models under incremental maintenance.
func (s *Stream) Attached() []string { return s.st.Attached() }

// Checkpoint commits an atomic snapshot of the database files plus the
// stream's incremental state and truncates the WAL behind it. A no-op
// without durability. Close calls this automatically; call it directly
// to bound recovery time between automatic SnapshotEvery checkpoints.
func (s *Stream) Checkpoint() error { return s.st.Checkpoint() }

// Ingest validates and applies one change batch on the stream: dimension
// inserts/updates first, then fact appends; nothing is applied when any
// row fails validation. When the batch pushes the pending-row count over
// StreamPolicy.RefreshRows, a refresh runs before Ingest returns.
func (d *DB) Ingest(s *Stream, b StreamBatch) (IngestResult, error) { return s.Ingest(b) }

// Refresh folds everything the stream has ingested into every attached
// model — one incremental EM step per GMM (cost proportional to the
// delta, bit-identical to recomputing the statistics over base+delta for
// every worker count), NN warm-start epochs — and publishes the refreshed
// models in the registry.
func (d *DB) Refresh(s *Stream) (RefreshResult, error) { return s.Refresh() }

// serverOptions collects what the ServerOption functions configure.
type serverOptions struct {
	engineCfg   ServeConfig
	limits      Limits
	withStream  bool
	fact        string
	pol         StreamPolicy
	withMetrics bool
	withTracing bool
	traceCfg    TraceConfig
	logger      *Logger
	withMonitor bool
	monCfg      MonitorConfig
}

// ServerOption configures NewServer.
type ServerOption func(*serverOptions)

// WithEngineConfig tunes the prediction engine (worker pool size,
// dimension-cache capacity, micro-batch rows). The zero ServeConfig is
// the default.
func WithEngineConfig(cfg ServeConfig) ServerOption {
	return func(o *serverOptions) { o.engineCfg = cfg }
}

// WithStream wires a live change feed into the server: every compatible
// registered model is attached for incremental maintenance, POST
// /v1/ingest accepts StreamBatch JSON, POST /v1/refresh folds the
// ingested delta into every attached model, dimension updates invalidate
// exactly the serving-cache entries they touch, refreshed models are
// republished (and served) without a restart, and /statsz gains "stream"
// and "planner" sections. fact names the fact table; the dimension
// tables are the ones passed to NewServer.
//
// A registered model that does not fit this star schema — wrong joined
// width, or an NN over a target-less fact table — is left un-attached
// and keeps serving its saved parameters; Server.Stream().Attached()
// reports which models are under maintenance.
func WithStream(fact string, pol StreamPolicy) ServerOption {
	return func(o *serverOptions) { o.withStream = true; o.fact = fact; o.pol = pol }
}

// WithLimits switches on admission control: predictions over the
// per-model in-flight cap answer 429 predict_overloaded, ingest batches
// over the bounded queue answer 429 ingest_overloaded — both with a
// Retry-After hint, both rejected before any work is admitted, so an
// overloaded server degrades into fast structured rejections and every
// admitted batch still runs to completion (the bit-identical-results
// guarantee is never traded away mid-batch).
func WithLimits(l Limits) ServerOption {
	return func(o *serverOptions) { o.limits = l }
}

// WithTracing switches on end-to-end request tracing: every response
// carries an X-Request-Id header, a sampled fraction of requests
// (TraceConfig.SampleFraction) records a span tree covering admission,
// engine micro-batch fan-out, per-dimension cache lookups and — with
// WithStream — ingest/refresh phases, and a bounded in-memory flight
// recorder keeps the most recent and the slowest traces for export at
// GET /debug/traces and /debug/traces/slow. Incoming W3C traceparent
// headers are honored (the trace ID is adopted and sampling is forced),
// and sampled responses echo a traceparent header. Unsampled requests
// skip all span work — the predict hot path allocates nothing extra.
func WithTracing(cfg TraceConfig) ServerOption {
	return func(o *serverOptions) { o.withTracing = true; o.traceCfg = cfg }
}

// WithServerLogger attaches a request logger: one JSON line per request
// (endpoint, method, status, duration) stamped with the trace ID of
// sampled requests, at Error level for 5xx responses. Build the logger
// with NewLogger; nil disables logging.
func WithServerLogger(l *Logger) ServerOption {
	return func(o *serverOptions) { o.logger = l }
}

// WithMonitoring switches on model and data health monitoring: every
// attached model's live input distribution is sketched incrementally
// from the change feed (O(1) per ingested row — the same
// no-rescan discipline the factorized trainers follow) and scored by
// PSI against the training-time baseline persisted with the model's
// lineage (SaveGMMLineage / SaveNNLineage, or cmd/train -save). A
// sampled fraction of predictions additionally feeds a prediction-
// quality sketch. GET /v1/models/{name}/health answers the verdict —
// fresh, drifting or stale — with per-column reasons, /statsz gains a
// "health" section, /metrics (WithMetrics) gains drift/staleness
// gauges, and verdict transitions log through WithServerLogger.
// Monitoring is passive: it never mutates models, and serving and
// refresh results are bit-identical with it on or off.
func WithMonitoring(cfg MonitorConfig) ServerOption {
	return func(o *serverOptions) { o.withMonitor = true; o.monCfg = cfg }
}

// WithMetrics switches on the Prometheus endpoint: GET /metrics serves
// the text exposition format (0.0.4) with per-endpoint request counts
// and latency histograms, engine cache hit-rate gauges, and — when
// combined with WithStream — ingest-queue depth, rejection counters and
// per-model planner decisions. The instrumentation adds no locks to the
// serving hot path (atomics plus scrape-time snapshot collectors).
func WithMetrics() ServerOption {
	return func(o *serverOptions) { o.withMetrics = true }
}

// Server is the production serving surface over one database: the
// versioned data plane under /v1/ (models, predict, ingest, refresh) and
// the unversioned operational endpoints /healthz, /readyz, /statsz and —
// WithMetrics — /metrics. Build one with NewServer; it is an
// http.Handler, ready for http.Server.
type Server struct {
	srv *serve.Server
	st  *Stream // nil without WithStream
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.srv.ServeHTTP(w, r) }

// Stream returns the change feed wired by WithStream, or nil.
func (s *Server) Stream() *Stream { return s.st }

// Metrics returns the registry behind /metrics, or nil without
// WithMetrics. Callers may register additional application metrics on
// it; they render in the same exposition.
func (s *Server) Metrics() *MetricsRegistry { return s.srv.Metrics() }

// ModelHealth evaluates every monitored model's current health, sorted
// by model name — the same payload GET /v1/models/{name}/health serves
// per model. Nil without WithMonitoring.
func (s *Server) ModelHealth() []ModelHealth { return s.srv.Monitor().HealthAll() }

// TraceHandler returns the flight-recorder export handler (the one the
// server itself mounts at GET /debug/traces and /debug/traces/slow), or
// nil without WithTracing. Mount it on a side debug listener to scrape
// traces without going through the serving port — cmd/serve -debug-addr
// does exactly that, next to net/http/pprof.
func (s *Server) TraceHandler() http.Handler {
	tr := s.srv.Tracer()
	if tr == nil {
		return nil
	}
	return tr.DebugHandler()
}

// SetReady flips the /readyz readiness signal (liveness at /healthz is
// unaffected). Servers start ready; an operator draining the process
// can park it not-ready first so load balancers stop routing to it.
func (s *Server) SetReady(ready bool) { s.srv.SetReady(ready) }

// NewServer builds the serving stack over this database: registered
// models are scored against normalized fact rows whose foreign keys are
// resolved in the named dimension tables (join order — the same order
// used at training time). Like training, prediction does
// dimension-tuple work once, not once per row: per-dimension-tuple
// partial results are cached in a bounded LRU and batches fan out over
// the worker pool, with responses bit-identical for every
// ServeConfig.NumWorkers value.
//
// The zero-option server exposes the data plane and health endpoints;
// WithStream, WithLimits and WithMetrics layer on live ingestion,
// admission control and Prometheus observability. Every error response
// on every endpoint carries the unified envelope
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// with a stable machine-readable code (see the README's API reference
// for the catalog). See cmd/serve for a runnable server and cmd/loadgen
// for a load generator against it.
func NewServer(d *DB, dimTables []string, opts ...ServerOption) (*Server, error) {
	var o serverOptions
	for _, opt := range opts {
		opt(&o)
	}
	reg, err := d.registry()
	if err != nil {
		return nil, err
	}
	plan, err := d.dimPlan(dimTables)
	if err != nil {
		return nil, err
	}
	eng, err := serve.NewEngine(reg, plan, o.engineCfg)
	if err != nil {
		return nil, err
	}
	sopts := []serve.Option{serve.WithLimits(o.limits)}
	if o.withMetrics {
		sopts = append(sopts, serve.WithMetrics(metrics.NewRegistry()))
	}
	var mon *monitor.Monitor
	if o.withMonitor {
		if o.monCfg.Logger == nil {
			o.monCfg.Logger = o.logger
		}
		mon = monitor.New(o.monCfg)
		sopts = append(sopts, serve.WithMonitor(mon))
	}
	if o.withTracing {
		sopts = append(sopts, serve.WithTracer(trace.New(o.traceCfg)))
	}
	if o.logger != nil {
		sopts = append(sopts, serve.WithLogger(o.logger))
	}
	// serve.NewServer already wires the engine collector when metrics
	// are on; the stream collector is added below once the stream exists.
	srv := serve.NewServer(eng, sopts...)
	out := &Server{srv: srv}
	if !o.withStream {
		return out, nil
	}

	factTbl, err := d.db.Table(o.fact)
	if err != nil {
		return nil, err
	}
	st, err := stream.New(d.db, plan.Spec(factTbl), stream.Options{
		Engine:          eng,
		Registry:        reg,
		Policy:          o.pol,
		MaxQueuedIngest: o.limits.MaxQueuedIngest,
		Monitor:         mon,
		WAL:             d.wal,
		SnapshotEvery:   d.snapEvery,
	})
	if err != nil {
		return nil, err
	}
	// Replay any WAL tail left by a crash before attaching registry
	// models: recovery re-attaches exactly the models the last checkpoint
	// had under maintenance, with their incremental statistics intact.
	if d.wal != nil {
		if err := st.Recover(context.Background()); err != nil {
			return nil, fmt.Errorf("factorml: WAL recovery: %w", err)
		}
	}
	recovered := make(map[string]bool)
	for _, name := range st.Attached() {
		recovered[name] = true
	}
	for _, mi := range reg.List() {
		if recovered[mi.Name] {
			continue
		}
		var attachErr error
		switch mi.Kind {
		case KindGMM:
			m, err := reg.GMM(mi.Name)
			if err != nil {
				return nil, err
			}
			attachErr = st.AttachGMM(mi.Name, m)
		case KindNN:
			n, err := reg.NN(mi.Name)
			if err != nil {
				return nil, err
			}
			attachErr = st.AttachNN(mi.Name, n)
		}
		// Schema-incompatible models stay served-but-static; anything
		// else (storage I/O, dangling foreign keys found by the base
		// statistics pass) is a real failure the operator must see.
		if attachErr != nil && !stream.IsIncompatibleModel(attachErr) {
			return nil, fmt.Errorf("factorml: attaching model %q to the stream: %w", mi.Name, attachErr)
		}
	}
	// Boot checkpoint + clean-marker clear: from here on, a kill leaves
	// recoverable crash state (snapshot + WAL tail) behind.
	if d.wal != nil {
		if err := st.Checkpoint(); err != nil {
			return nil, fmt.Errorf("factorml: boot checkpoint: %w", err)
		}
		if err := wal.ClearClean(d.wal.Dir()); err != nil {
			return nil, err
		}
		d.walStream = st
		d.pendingReplay = false
	}
	srv.SetIngestHandler(st.Handler())
	srv.SetRefreshHandler(st.RefreshHandler())
	srv.SetStreamStats(st.StatsProvider())
	srv.SetPlannerStats(st.PlannerProvider())
	if ws := st.WALStatsProvider(); ws != nil {
		srv.SetWALStats(ws)
	}
	if o.withMetrics {
		srv.Metrics().Collect(st.MetricsCollector())
	}
	out.st = &Stream{st: st}
	return out, nil
}

// BootingHandler is a stand-in to serve while a Server is still being
// constructed (the registry loads every persisted model at boot, which
// can take a while on large registries): /healthz answers 200 with
// {"ready": false} (the process is alive) and every other path answers
// 503 not_ready with a Retry-After hint. Bind the listener first, serve
// this, then atomically swap in the real Server once NewServer returns —
// cmd/serve does exactly that.
func BootingHandler() http.Handler { return serve.BootingHandler() }

// NewStreamingPredictionServer builds a prediction server with a live
// change feed.
//
// Deprecated: use NewServer with WithStream (and optionally WithLimits,
// WithMetrics), which also mounts POST /v1/refresh. This wrapper remains
// for source compatibility and behaves identically otherwise.
func NewStreamingPredictionServer(d *DB, fact string, dimTables []string, cfg ServeConfig, pol StreamPolicy) (http.Handler, *Stream, error) {
	s, err := NewServer(d, dimTables, WithEngineConfig(cfg), WithStream(fact, pol))
	if err != nil {
		return nil, nil, err
	}
	return s, s.Stream(), nil
}

// NewPredictionServer builds the factorized inference HTTP handler over
// this database.
//
// Deprecated: use NewServer, which returns a *Server (an http.Handler)
// and accepts WithLimits/WithMetrics. This wrapper remains for source
// compatibility and behaves identically.
func NewPredictionServer(d *DB, dimTables []string, cfg ServeConfig) (http.Handler, error) {
	return NewServer(d, dimTables, WithEngineConfig(cfg))
}

// dimPlan expands the named direct dimension tables — and every
// sub-dimension their catalog entries reference — into the flattened
// snowflake plan shared by serving and streaming.
func (d *DB) dimPlan(dimTables []string) (*join.DimPlan, error) {
	var direct []*storage.Table
	for _, name := range dimTables {
		tbl, err := d.db.Table(name)
		if err != nil {
			return nil, err
		}
		direct = append(direct, tbl)
	}
	return join.ExpandDims(direct, d.db.Table)
}
