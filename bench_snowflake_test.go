package factorml

// BenchmarkSnowflake times — and op-counts — factorized versus
// materialized training over a shared-sub-dimension snowflake: a depth-3
// hierarchy whose deep levels have far fewer tuples than their parents, so
// a sub-dimension tuple's per-distinct-tuple work is shared by many parent
// tuples at EVERY level. The FLOP counts (core.Ops, the paper's §V-B
// accounting) are flushed to BENCH_snowflake.json; CI asserts the
// factorized path does at least 2× fewer FLOPs than the materialized
// baseline (TestSnowflakeFactorizedOpsAdvantage, which runs without
// -bench so the guarantee holds on every test run).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/storage"
)

// snowBenchRecord is one (model, algo) measurement in BENCH_snowflake.json.
type snowBenchRecord struct {
	Model   string  `json:"model"`
	Algo    string  `json:"algo"`
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	Mul     int64   `json:"mul"`
	Add     int64   `json:"add"`
	// FlopRatio is materialized FLOPs / this algo's FLOPs (1.0 for the
	// materialized rows themselves).
	FlopRatio float64 `json:"flop_ratio,omitempty"`
}

var snowBench struct {
	mu      sync.Mutex
	order   []string
	records map[string]snowBenchRecord
}

func recordSnowBench(r snowBenchRecord) {
	snowBench.mu.Lock()
	defer snowBench.mu.Unlock()
	key := r.Model + "/" + r.Algo
	if snowBench.records == nil {
		snowBench.records = make(map[string]snowBenchRecord)
	}
	if _, seen := snowBench.records[key]; !seen {
		snowBench.order = append(snowBench.order, key)
	}
	snowBench.records[key] = r
}

// flushSnowflakeBench writes BENCH_snowflake.json (called from TestMain).
func flushSnowflakeBench() {
	snowBench.mu.Lock()
	records := make([]snowBenchRecord, 0, len(snowBench.order))
	for _, key := range snowBench.order {
		records = append(records, snowBench.records[key])
	}
	snowBench.mu.Unlock()
	if len(records) == 0 {
		return
	}
	// Fill in the FLOP ratios against the materialized baseline per model.
	base := make(map[string]float64)
	for _, r := range records {
		if r.Algo == "materialized" {
			base[r.Model] = float64(r.Mul + r.Add)
		}
	}
	for i := range records {
		if b := base[records[i].Model]; b > 0 {
			records[i].FlopRatio = b / float64(records[i].Mul+records[i].Add)
		}
	}
	out := struct {
		Schema  string            `json:"schema"`
		NumCPU  int               `json:"num_cpu"`
		Results []snowBenchRecord `json:"results"`
	}{
		Schema:  "depth-3 snowflake chain, shared sub-dimensions (nS=6000, nR=150 → 37 → 9, dS=2, dR=8)",
		NumCPU:  runtime.NumCPU(),
		Results: records,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_snowflake.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_snowflake.json: %v\n", err)
	}
}

// snowBenchSpec generates the shared-sub-dimension schema in a fresh
// database directory.
func snowBenchSpec(tb testing.TB) (*storage.Database, *join.Spec) {
	tb.Helper()
	db, err := storage.Open(tb.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		tb.Fatal(err)
	}
	spec, err := data.Generate(db, "snowbench", data.SynthConfig{
		NS: 6000, NR: []int{150}, DS: 2, DR: []int{8},
		Depth: 3, DimsPerLevel: 1,
		Seed: 11, WithTarget: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { db.Close() })
	return db, spec
}

// measureSnowflakeOps trains GMM and NN with both strategies once and
// records the op counts. withTiming, when set, wraps each training run and
// returns its ns/op measurement for the record.
func measureSnowflakeOps(tb testing.TB, withTiming func(model, algo string, train func()) float64) {
	db, spec := snowBenchSpec(tb)
	gcfg := gmm.Config{K: 3, MaxIter: 2, Tol: 1e-300, Seed: 1, NumWorkers: 1}
	// GroupedGradient is the paper's per-group layer-1 gradient extension:
	// without it the factorized backward still touches every dimension
	// column per joined tuple, which caps the saving well under 2x; with
	// it the dimension gradient flushes once per distinct tuple, like
	// every other factorized quantity. TrainM ignores the flag, and the
	// trained networks still agree to 1e-9.
	ncfg := nn.Config{Hidden: []int{16}, Epochs: 2, LearningRate: 0.05, Seed: 1, NumWorkers: 1, GroupedGradient: true}

	run := func(model, algo string, train func() (mul, add int64, err error)) {
		var mul, add int64
		var nsPerOp float64
		body := func() {
			var err error
			mul, add, err = train()
			if err != nil {
				tb.Fatal(err)
			}
		}
		if withTiming != nil {
			nsPerOp = withTiming(model, algo, body)
		} else {
			body()
		}
		recordSnowBench(snowBenchRecord{Model: model, Algo: algo, Mul: mul, Add: add, NsPerOp: nsPerOp})
	}
	run("gmm", "materialized", func() (int64, int64, error) {
		res, err := gmm.TrainM(db, spec, gcfg)
		if err != nil {
			return 0, 0, err
		}
		return res.Stats.Ops.Mul, res.Stats.Ops.Adds, nil
	})
	run("gmm", "factorized", func() (int64, int64, error) {
		res, err := gmm.TrainF(db, spec, gcfg)
		if err != nil {
			return 0, 0, err
		}
		return res.Stats.Ops.Mul, res.Stats.Ops.Adds, nil
	})
	run("nn", "materialized", func() (int64, int64, error) {
		res, err := nn.TrainM(db, spec, ncfg)
		if err != nil {
			return 0, 0, err
		}
		return res.Stats.Ops.Mul, res.Stats.Ops.Adds, nil
	})
	run("nn", "factorized", func() (int64, int64, error) {
		res, err := nn.TrainF(db, spec, ncfg)
		if err != nil {
			return 0, 0, err
		}
		return res.Stats.Ops.Mul, res.Stats.Ops.Adds, nil
	})
}

// BenchmarkSnowflake times each (model, algo) pair and records ns/op next
// to the FLOP counts in BENCH_snowflake.json.
func BenchmarkSnowflake(b *testing.B) {
	measureSnowflakeOps(b, func(model, algo string, train func()) float64 {
		var nsPerOp float64
		b.Run(model+"/"+algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				train()
			}
			nsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		return nsPerOp
	})
}

// TestSnowflakeFactorizedOpsAdvantage pins the ≥2× FLOP saving of the
// factorized path on the shared-sub-dimension schema — the recursive
// analogue of the paper's Eq. 7–12 savings, measured with the same
// core.Ops accounting — and writes BENCH_snowflake.json even on plain
// test runs, so CI always uploads a fresh artifact.
func TestSnowflakeFactorizedOpsAdvantage(t *testing.T) {
	measureSnowflakeOps(t, nil)
	snowBench.mu.Lock()
	recs := make(map[string]snowBenchRecord, len(snowBench.records))
	for k, v := range snowBench.records {
		recs[k] = v
	}
	snowBench.mu.Unlock()
	for _, model := range []string{"gmm", "nn"} {
		m, f := recs[model+"/materialized"], recs[model+"/factorized"]
		mFlops, fFlops := float64(m.Mul+m.Add), float64(f.Mul+f.Add)
		if mFlops == 0 || fFlops == 0 {
			t.Fatalf("%s: missing op counts (materialized %+v, factorized %+v)", model, m, f)
		}
		ratio := mFlops / fFlops
		t.Logf("%s: materialized %.3g FLOPs, factorized %.3g FLOPs (%.2fx fewer)", model, mFlops, fFlops, ratio)
		if ratio < 2 {
			t.Errorf("%s: factorized does only %.2fx fewer FLOPs than materialized, want >= 2x", model, ratio)
		}
	}
}
