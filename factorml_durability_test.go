package factorml

// Unit tests for the durability boot/close protocol around the edges
// the kill-at-any-offset sweep does not reach: legacy (pre-WAL)
// directories, checkpoint cadence with stale snapshots behind a live
// tail, empty rotated segments, the ack-implies-durable contract, and
// the close protocol over unrecovered crash state.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crashIngest applies one tiny valid batch and returns its fact count.
func crashIngest(t *testing.T, st *Stream, sid int64) {
	t.Helper()
	_, err := st.Ingest(StreamBatch{Facts: []FactRow{
		{SID: sid, FKs: []int64{0}, Features: []float64{0.5}, Target: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDurabilityUpgradeLegacyDir opens a database that predates the
// WAL (created without durability, closed normally) WithDurability:
// the boot must treat the missing clean marker as a fresh start, not a
// crash, and the first stream boot makes the directory crash-safe.
func TestDurabilityUpgradeLegacyDir(t *testing.T) {
	dir := t.TempDir()
	w := genCrashWorkload(1, 0)
	db, err := Open(dir, Options{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := buildCrashBase(t, db, w, 1)
	_ = st
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Legacy layout: no wal/ directory at all.
	if _, err := os.Stat(filepath.Join(dir, "wal")); !os.IsNotExist(err) {
		t.Fatalf("legacy dir unexpectedly has a wal directory (err %v)", err)
	}
	db2, err := Open(dir, Options{NumWorkers: 1}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatalf("upgrading legacy dir: %v", err)
	}
	if !db2.Durable() {
		t.Fatal("Durable() = false after WithDurability")
	}
	orders, err := db2.FactTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	base := orders.NumTuples()
	st2, err := db2.NewStream(orders, crashPolicy(1))
	if err != nil {
		t.Fatal(err)
	}
	crashIngest(t, st2, 9000) // acked and logged; db2 abandoned without Close

	// Crash: reboot a copy and the acked row must survive.
	clone := t.TempDir()
	copyTree(t, dir, clone)
	db3, err := Open(clone, Options{NumWorkers: 1}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	orders3, err := db3.FactTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db3.NewStream(orders3, crashPolicy(1)); err != nil {
		t.Fatal(err)
	}
	if got := orders3.NumTuples(); got != base+1 {
		t.Fatalf("recovered fact rows = %d, want %d", got, base+1)
	}
}

// TestCheckpointCadenceTruncatesWAL drives enough records through a
// SnapshotEvery cadence to commit several automatic checkpoints, then
// crashes with a stale snapshot behind a live tail: recovery must
// restore the snapshot and replay only the tail.
func TestCheckpointCadenceTruncatesWAL(t *testing.T) {
	w := genCrashWorkload(2, 0)
	cfg := crashDurability()
	cfg.SnapshotEvery = 4
	cfg.SegmentBytes = 256 // force rotation so pruning is observable

	dir := t.TempDir()
	db, err := Open(dir, Options{NumWorkers: 1}, WithDurability(cfg))
	if err != nil {
		t.Fatal(err)
	}
	st := buildCrashBase(t, db, w, 1)
	for i := int64(0); i < 15; i++ {
		crashIngest(t, st, 9000+i)
	}
	ws := db.WALStats()
	if ws.SnapshotLSN == 0 {
		t.Fatalf("no automatic checkpoint after 17 records: %+v", ws)
	}
	if ws.LastLSN <= ws.SnapshotLSN {
		t.Fatalf("tail should extend past the snapshot: %+v", ws)
	}
	if c := st.Counters(); c.Checkpoints < 2 {
		t.Fatalf("Checkpoints = %d, want >= 2 (boot + cadence)", c.Checkpoints)
	}
	// Covered segments must have been pruned: the live log holds only
	// records past the stale snapshot (plus the active segment).
	if ws.Segments > 4 {
		t.Fatalf("WAL kept %d segments after checkpoints: %+v", ws.Segments, ws)
	}
	want := st.Pending()

	clone := t.TempDir()
	copyTree(t, dir, clone) // db abandoned: crash with stale snapshot + tail
	db2, err := Open(clone, Options{NumWorkers: 1}, WithDurability(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	orders, err := db2.FactTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := db2.NewStream(orders, crashPolicy(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Pending(); got != want {
		t.Fatalf("recovered pending rows = %d, want %d", got, want)
	}
	if got := len(st2.Attached()); got != 2 {
		t.Fatalf("recovered attached models = %d, want 2", got)
	}
	if got := orders.NumTuples(); got != int64(len(w.factRows))+15 {
		t.Fatalf("recovered fact rows = %d, want %d", got, len(w.factRows)+15)
	}
}

// TestEmptySegmentRecovery reboots a crash state whose WAL ends in a
// freshly rotated, still-empty segment file.
func TestEmptySegmentRecovery(t *testing.T) {
	w := genCrashWorkload(3, 4)
	refGMM, refNN := runCrashReference(t, w, 1, true)
	victim := runCrashVictim(t, w, 1)
	frames, _, _ := readWALLayout(t, filepath.Join(victim, "wal"))
	next := int64(len(frames)) + 1
	empty := filepath.Join(victim, "wal", walSegmentName(next))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	gmmB, nnB, k := recoverAndFinish(t, victim, w, 1)
	if int(k) != len(frames) {
		t.Fatalf("recovered to LSN %d, want %d", k, len(frames))
	}
	if !bytes.Equal(gmmB, refGMM) || !bytes.Equal(nnB, refNN) {
		t.Fatal("models diverged after empty-segment recovery")
	}
}

// walSegmentName mirrors the wal package's segment naming for test
// fixtures.
func walSegmentName(firstLSN int64) string {
	const hexDigits = "0123456789abcdef"
	name := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		name[i] = hexDigits[firstLSN&0xf]
		firstLSN >>= 4
	}
	return string(name) + ".wal"
}

// TestIngestAckImpliesDurable is the white-box regression for the
// ack-before-durable bug: by the time Ingest (and the HTTP 200 it
// backs) returns, the batch's WAL record must be appended and fsynced.
// The stream is then abandoned without any flush or close — exactly a
// crash between the ack and the next flush — and the acked row must
// survive recovery.
func TestIngestAckImpliesDurable(t *testing.T) {
	w := genCrashWorkload(4, 0)
	dir := t.TempDir()
	// Real fsync (no NoSync), strictest window: every append durable.
	db, err := Open(dir, Options{NumWorkers: 1}, WithDurability(DurabilityConfig{
		FsyncEvery: 1, SnapshotEvery: 0,
	}))
	if err != nil {
		t.Fatal(err)
	}
	st := buildCrashBase(t, db, w, 1)
	before := db.WALStats()
	crashIngest(t, st, 9000)
	after := db.WALStats()
	if after.LastLSN != before.LastLSN+1 {
		t.Fatalf("ack without a WAL record: LastLSN %d -> %d", before.LastLSN, after.LastLSN)
	}
	if after.Fsyncs <= before.Fsyncs {
		t.Fatalf("ack without an fsync: Fsyncs %d -> %d", before.Fsyncs, after.Fsyncs)
	}

	clone := t.TempDir()
	copyTree(t, dir, clone) // crash between ack and any flush
	db2, err := Open(clone, Options{NumWorkers: 1}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	orders, err := db2.FactTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.NewStream(orders, crashPolicy(1)); err != nil {
		t.Fatal(err)
	}
	if got := orders.NumTuples(); got != int64(len(w.factRows))+1 {
		t.Fatalf("acked row lost: fact rows = %d, want %d", got, len(w.factRows)+1)
	}
}

// TestCloseWithoutRecoveryKeepsCrashState opens a crashed directory
// without building a stream and closes it again: the close must NOT
// mark the shutdown clean, so a later boot still recovers the tail.
func TestCloseWithoutRecoveryKeepsCrashState(t *testing.T) {
	w := genCrashWorkload(5, 4)
	refGMM, refNN := runCrashReference(t, w, 1, true)
	victim := runCrashVictim(t, w, 1)

	// Open/close without recovery (no stream built).
	db, err := Open(victim, Options{NumWorkers: 1}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadGMM("g"); err != nil { // read-only use of the crashed dir
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	gmmB, nnB, _ := recoverAndFinish(t, victim, w, 1)
	if !bytes.Equal(gmmB, refGMM) || !bytes.Equal(nnB, refNN) {
		t.Fatal("crash state was damaged by an open/close without recovery")
	}
}

// TestCleanShutdownSkipsRecovery closes a durable streaming database
// cleanly and reboots it: the clean marker must short-circuit restore,
// and the reopened stream continues from the checkpointed state.
func TestCleanShutdownSkipsRecovery(t *testing.T) {
	w := genCrashWorkload(6, 0)
	dir := t.TempDir()
	db, err := Open(dir, Options{NumWorkers: 1}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	st := buildCrashBase(t, db, w, 1)
	crashIngest(t, st, 9000)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{NumWorkers: 1}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	orders, err := db2.FactTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := orders.NumTuples(); got != int64(len(w.factRows))+1 {
		t.Fatalf("rows after clean reboot = %d, want %d", got, len(w.factRows)+1)
	}
	st2, err := db2.NewStream(orders, crashPolicy(1))
	if err != nil {
		t.Fatal(err)
	}
	// The close checkpoint carried the stream state across the reboot.
	if got := len(st2.Attached()); got != 2 {
		t.Fatalf("attached models after clean reboot = %d, want 2", got)
	}
	if got := st2.Pending(); got != 1 {
		t.Fatalf("pending rows after clean reboot = %d, want 1", got)
	}
}

// TestServerExposesWALTelemetry wires a durable streaming server and
// checks the observability surface: the "wal" section of /statsz and
// the factorml_wal_* samples in /metrics.
func TestServerExposesWALTelemetry(t *testing.T) {
	w := genCrashWorkload(7, 0)
	dir := t.TempDir()
	db, err := Open(dir, Options{NumWorkers: 1}, WithDurability(crashDurability()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st := buildCrashBase(t, db, w, 1)
	_ = st
	srv, err := NewServer(db, []string{"items"},
		WithStream("orders", crashPolicy(1)), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/ingest",
		strings.NewReader(`{"facts":[{"sid":9000,"fks":[0],"features":[0.5],"target":1}]}`)))
	if rec.Code != 200 {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	var stats struct {
		WAL WALStats `json:"wal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.WAL.LastLSN < 1 || stats.WAL.Appends < 1 {
		t.Fatalf("statsz wal section: %+v", stats.WAL)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, name := range []string{"factorml_wal_last_lsn", "factorml_wal_appends_total", "factorml_stream_checkpoints_total"} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}
