package factorml

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file pins the Auto strategy's contract: the planner's choice always
// matches the cheapest estimate, and training with Auto is bit-identical
// to invoking the chosen strategy directly — for every NumWorkers value.

// autoSchemas is how many random schemas the Auto harness sweeps (the
// schemas come from the same generator as the cross-strategy equivalence
// harness, so zero-width dimensions and depth-3 hierarchies are covered).
const autoSchemas = 12

func TestAutoMatchesCheapestEstimateAndTrainsBitIdentically(t *testing.T) {
	masterSeed := equivEnvInt("FACTORML_EQUIV_SEED", 20260730)
	count := autoSchemas
	if testing.Short() {
		count = 4
	}
	workerSweep := []int{1, 4}

	for i := 0; i < count; i++ {
		seed := masterSeed + int64(1000+i)
		rng := rand.New(rand.NewSource(seed))
		db := openDB(t)
		fact, shape := buildRandomSnowflake(t, db, rng)
		ds, err := db.Dataset(fact)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, shape, err)
		}
		fail := func(format string, args ...any) {
			t.Helper()
			t.Errorf("schema seed %d (%s): %s", seed, shape, fmt.Sprintf(format, args...))
		}

		// --- GMM.
		gcfg := GMMConfig{K: 2, MaxIter: 3, Tol: 1e-300, Seed: seed}
		gplan, err := PlanGMM(ds, gcfg)
		if err != nil {
			t.Fatalf("seed %d (%s): PlanGMM: %v", seed, shape, err)
		}
		if got, want := gplan.Chosen, gplan.Estimates[0].Strategy; got != want {
			fail("GMM plan chose %v but cheapest estimate is %v", got, want)
		}
		for _, w := range workerSweep {
			cfg := gcfg
			cfg.NumWorkers = w
			auto, err := TrainGMM(ds, Auto, cfg)
			if err != nil {
				t.Fatalf("seed %d (%s): Auto-GMM workers=%d: %v", seed, shape, w, err)
			}
			if auto.Stats.Plan == nil {
				fail("Auto-GMM result carries no plan")
			} else if auto.Stats.Plan.Chosen != gplan.Chosen {
				fail("Auto-GMM trained with %v, plan says %v", auto.Stats.Plan.Chosen, gplan.Chosen)
			}
			direct, err := TrainGMM(ds, Algorithm(gplan.Chosen), cfg)
			if err != nil {
				t.Fatalf("seed %d (%s): %v-GMM workers=%d: %v", seed, shape, gplan.Chosen, w, err)
			}
			if direct.Stats.Plan != nil {
				fail("directly-invoked strategy reports a plan")
			}
			if d := auto.Model.MaxParamDiff(direct.Model); d != 0 {
				fail("Auto-GMM differs from direct %v by %g at workers=%d, want bit-identical", gplan.Chosen, d, w)
			}
		}

		// --- NN.
		ncfg := NNConfig{Hidden: []int{3}, Epochs: 2, LearningRate: 0.05, Seed: seed}
		nplan, err := PlanNN(ds, ncfg)
		if err != nil {
			t.Fatalf("seed %d (%s): PlanNN: %v", seed, shape, err)
		}
		if got, want := nplan.Chosen, nplan.Estimates[0].Strategy; got != want {
			fail("NN plan chose %v but cheapest estimate is %v", got, want)
		}
		for _, w := range workerSweep {
			cfg := ncfg
			cfg.NumWorkers = w
			auto, err := TrainNN(ds, Auto, cfg)
			if err != nil {
				t.Fatalf("seed %d (%s): Auto-NN workers=%d: %v", seed, shape, w, err)
			}
			if auto.Stats.Plan == nil {
				fail("Auto-NN result carries no plan")
			}
			direct, err := TrainNN(ds, Algorithm(nplan.Chosen), cfg)
			if err != nil {
				t.Fatalf("seed %d (%s): %v-NN workers=%d: %v", seed, shape, nplan.Chosen, w, err)
			}
			if d := auto.Net.MaxParamDiff(direct.Net); d != 0 {
				fail("Auto-NN differs from direct %v by %g at workers=%d, want bit-identical", nplan.Chosen, d, w)
			}
		}
	}
}

// TestAutoAlgorithmString pins the facade naming and the numeric
// correspondence between plan strategies and Algorithm values.
func TestAutoAlgorithmString(t *testing.T) {
	if Auto.String() != "auto" {
		t.Errorf("Auto.String() = %q", Auto.String())
	}
	for _, a := range []Algorithm{Materialized, Streaming, Factorized} {
		if a.String() == "auto" {
			t.Errorf("%d stringifies as auto", int(a))
		}
	}
}

// TestPlanRejectsBadConfig: Auto surfaces configuration errors before any
// training starts.
func TestPlanRejectsBadConfig(t *testing.T) {
	db := openDB(t)
	rng := rand.New(rand.NewSource(7))
	fact, _ := buildRandomSnowflake(t, db, rng)
	ds, err := db.Dataset(fact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainGMM(ds, Auto, GMMConfig{K: 0}); err == nil {
		t.Error("Auto accepted K=0")
	}
	if _, err := PlanGMM(ds, GMMConfig{K: -1}); err == nil {
		t.Error("PlanGMM accepted K=-1")
	}
}
