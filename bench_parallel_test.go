package factorml

// Worker-scaling benchmarks for the parallel execution engine: every
// algorithm triple is timed at 1 and N workers on the same synthetic star
// schema, and the measurements are flushed to BENCH_parallel.json so the
// perf trajectory is machine-readable from PR 1 onward (see TestMain).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/nn"
)

// benchRecord is one (benchmark, algorithm, workers) timing in BENCH_parallel.json.
type benchRecord struct {
	Bench   string  `json:"bench"`
	Algo    string  `json:"algo"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
}

var benchRecorder struct {
	mu      sync.Mutex
	order   []string
	records map[string]benchRecord
}

// recordBench keeps the latest measurement per (bench, algo, workers): the
// testing package re-invokes benchmark bodies while calibrating b.N, and
// only the final, highest-N invocation should land in the JSON.
func recordBench(bench, algo string, workers int, nsPerOp float64) {
	benchRecorder.mu.Lock()
	defer benchRecorder.mu.Unlock()
	key := fmt.Sprintf("%s/%s/%d", bench, algo, workers)
	if benchRecorder.records == nil {
		benchRecorder.records = make(map[string]benchRecord)
	}
	if _, seen := benchRecorder.records[key]; !seen {
		benchRecorder.order = append(benchRecorder.order, key)
	}
	benchRecorder.records[key] = benchRecord{
		Bench: bench, Algo: algo, Workers: workers, NsPerOp: nsPerOp,
	}
}

// TestMain flushes any benchmark measurements to their JSON files after
// the run (benchmarks only populate the recorders under -bench).
func TestMain(m *testing.M) {
	code := m.Run()
	flushParallelBench()
	flushServeBench()     // see bench_serve_test.go
	flushStreamBench()    // see bench_stream_test.go
	flushSnowflakeBench() // see bench_snowflake_test.go
	flushPlanBench()      // see bench_plan_test.go
	flushTraceBench()     // see bench_trace_test.go
	flushMonitorBench()   // see bench_monitor_test.go
	flushWALBench()       // see bench_wal_test.go
	flushKernelsBench()   // see bench_kernels_test.go
	os.Exit(code)
}

// flushParallelBench writes the parallel-sweep measurements to
// BENCH_parallel.json.
func flushParallelBench() {
	benchRecorder.mu.Lock()
	records := make([]benchRecord, 0, len(benchRecorder.order))
	for _, key := range benchRecorder.order {
		records = append(records, benchRecorder.records[key])
	}
	benchRecorder.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		Unit    string        `json:"unit"`
		NumCPU  int           `json:"num_cpu"`
		Results []benchRecord `json:"results"`
	}{Unit: "ns/op", NumCPU: runtime.NumCPU(), Results: records}
	data, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_parallel.json: %v\n", err)
	}
}

// benchWorkerCounts returns the worker counts to sweep: sequential, 4 (the
// determinism test's point of comparison), and the full machine when it is
// larger.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// Parallel-bench workload: wider tuples and more components than the
// figure benchmarks, so the per-tuple training math (which the worker pool
// parallelizes) dominates the sequential scan/probe feeder.
const (
	benchParNS = 10000
	benchParNR = 200
	benchParDS = 20
	benchParDR = 20
	benchParK  = 8
)

// BenchmarkParallelGMM sweeps worker counts for the three GMM strategies on
// a dense synthetic star schema.
func BenchmarkParallelGMM(b *testing.B) {
	db := benchDB(b)
	spec, err := data.Generate(db, "w", data.SynthConfig{
		NS: benchParNS, NR: []int{benchParNR}, DS: benchParDS, DR: []int{benchParDR}, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	trainers := gmmTrainers()
	for _, algo := range gmmAlgoOrder {
		train := trainers[algo]
		for _, workers := range benchWorkerCounts() {
			cfg := gmm.Config{K: benchParK, MaxIter: benchIt, Tol: 1e-300, NumWorkers: workers}
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := train(db, spec, cfg); err != nil {
						b.Fatal(err)
					}
				}
				recordBench("GMM", algo, workers, float64(b.Elapsed().Nanoseconds())/float64(b.N))
			})
		}
	}
}

// BenchmarkParallelNN sweeps worker counts for the three NN strategies.
func BenchmarkParallelNN(b *testing.B) {
	db := benchDB(b)
	spec, err := data.Generate(db, "w", data.SynthConfig{
		NS: benchParNS, NR: []int{benchParNR}, DS: benchParDS, DR: []int{benchParDR},
		Seed: 3, WithTarget: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	trainers := nnTrainers()
	for _, algo := range nnAlgoOrder {
		train := trainers[algo]
		for _, workers := range benchWorkerCounts() {
			cfg := nn.Config{Hidden: []int{benchNH}, Epochs: benchEp, NumWorkers: workers}
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := train(db, spec, cfg); err != nil {
						b.Fatal(err)
					}
				}
				recordBench("NN", algo, workers, float64(b.Elapsed().Nanoseconds())/float64(b.N))
			})
		}
	}
}
