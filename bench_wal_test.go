package factorml

// Durability benchmarks: raw WAL append throughput under group commit
// at 1/8/64 concurrent writers (fsyncs-per-append from Stats deltas
// shows the batching effect), the end-to-end facade ingest path with
// the WAL off and on, and the nil-*wal.Log hook shape compiled into
// the WAL-disabled serving path — which must add zero allocations, in
// the same discipline as the monitoring-off pin. Measurements land in
// BENCH_wal.json (see TestMain).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"factorml/internal/wal"
)

// walBenchRecord is one durability measurement in BENCH_wal.json.
type walBenchRecord struct {
	Name            string  `json:"name"`
	Writers         int     `json:"writers,omitempty"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	FsyncsPerAppend float64 `json:"fsyncs_per_append,omitempty"`
}

var walBenchRecorder struct {
	mu      sync.Mutex
	order   []string
	records map[string]walBenchRecord
}

func recordWALBench(rec walBenchRecord) {
	walBenchRecorder.mu.Lock()
	defer walBenchRecorder.mu.Unlock()
	if walBenchRecorder.records == nil {
		walBenchRecorder.records = make(map[string]walBenchRecord)
	}
	if _, seen := walBenchRecorder.records[rec.Name]; !seen {
		walBenchRecorder.order = append(walBenchRecorder.order, rec.Name)
	}
	walBenchRecorder.records[rec.Name] = rec
}

// flushWALBench writes the durability measurements to BENCH_wal.json
// (called from TestMain).
func flushWALBench() {
	walBenchRecorder.mu.Lock()
	records := make([]walBenchRecord, 0, len(walBenchRecorder.order))
	for _, key := range walBenchRecorder.order {
		records = append(records, walBenchRecorder.records[key])
	}
	walBenchRecorder.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		Unit    string           `json:"unit"`
		NumCPU  int              `json:"num_cpu"`
		Results []walBenchRecord `json:"results"`
	}{Unit: "ns/op", NumCPU: runtime.NumCPU(), Results: records}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_wal.json", append(blob, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_wal.json: %v\n", err)
	}
}

// BenchmarkWALAppend measures durable append latency at 1, 8, and 64
// concurrent writers with real fsync. Group commit means the sync cost
// amortizes across whoever is waiting: fsyncs/append (reported as a
// metric and in the JSON) should fall well below 1 as writers grow.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, writers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			l, err := wal.Open(b.TempDir(), wal.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			before := l.Stats()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			var firstErr atomic.Value
			for wid := 0; wid < writers; wid++ {
				n := b.N / writers
				if wid < b.N%writers {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := l.Append(payload); err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			b.StopTimer()
			if err, _ := firstErr.Load().(error); err != nil {
				b.Fatal(err)
			}
			after := l.Stats()
			fsyncs := float64(after.Fsyncs - before.Fsyncs)
			perAppend := fsyncs / float64(b.N)
			b.ReportMetric(perAppend, "fsyncs/append")
			recordWALBench(walBenchRecord{
				Name: fmt.Sprintf("wal_append/writers=%d", writers), Writers: writers,
				NsPerOp:         float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				FsyncsPerAppend: perAppend,
			})
		})
	}
}

// BenchmarkWALDisabledHooks times the nil-*wal.Log reads compiled into
// the WAL-off serving path (the facade's Durable/WALStats probes and
// the stream's enabled check). This path must not allocate: the
// benchmark fails outright if it does.
func BenchmarkWALDisabledHooks(b *testing.B) {
	var l *wal.Log
	var sink int64
	op := func() {
		if l.Enabled() {
			b.Fatal("nil log reports enabled")
		}
		sink += l.LastLSN()
		sink += l.Stats().Appends
	}
	if allocs := benchAllocs(op); allocs != 0 {
		b.Fatalf("WAL-disabled hook path allocates %.0f objects/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op()
	}
	_ = sink
	recordWALBench(walBenchRecord{
		Name:    "wal_hooks/disabled",
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	})
}

// BenchmarkIngestDurable times a full 8-row facade ingest with the WAL
// off and on (fsync-per-ack): the gap is the total price of the
// ack-implies-durable guarantee on the serving path.
func BenchmarkIngestDurable(b *testing.B) {
	const rowsPerBatch = 8
	for _, mode := range []string{"wal-off", "wal-on"} {
		b.Run(mode, func(b *testing.B) {
			var extra []OpenOption
			if mode == "wal-on" {
				extra = append(extra, WithDurability(DurabilityConfig{
					FsyncEvery: 1, SnapshotEvery: 0,
				}))
			}
			db, err := Open(b.TempDir(), Options{NumWorkers: 1}, extra...)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			items, err := db.CreateDimensionTable("items", []string{"price"})
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 8; i++ {
				if err := items.Append(i, []float64{float64(i) * 0.5}); err != nil {
					b.Fatal(err)
				}
			}
			orders, err := db.CreateFactTable("orders", []string{"amount"}, true, items)
			if err != nil {
				b.Fatal(err)
			}
			st, err := db.NewStream(orders, StreamPolicy{RefreshRows: 1 << 30, NumWorkers: 1})
			if err != nil {
				b.Fatal(err)
			}
			next := int64(0)
			batch := func() StreamBatch {
				var bt StreamBatch
				for i := 0; i < rowsPerBatch; i++ {
					bt.Facts = append(bt.Facts, FactRow{
						SID: next, FKs: []int64{next % 8},
						Features: []float64{0.25}, Target: 1,
					})
					next++
				}
				return bt
			}
			allocs := testing.AllocsPerRun(1, func() {
				if _, err := st.Ingest(batch()); err != nil {
					b.Fatal(err)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Ingest(batch()); err != nil {
					b.Fatal(err)
				}
			}
			recordWALBench(walBenchRecord{
				Name:        fmt.Sprintf("ingest_%drows/%s", rowsPerBatch, mode),
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				AllocsPerOp: allocs,
			})
		})
	}
}
