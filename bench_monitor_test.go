package factorml

// Monitoring-overhead benchmarks: the observation primitives are timed
// with monitoring disabled (a nil *Monitor — the exact shape of every
// hook on the ingest and predict hot paths, which must add zero
// allocations) and enabled, and a full stream ingest is timed both
// ways. Measurements land in BENCH_monitor.json (see TestMain) with
// allocs/op alongside ns/op so an allocation regression on the
// disabled path fails loudly in CI.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/monitor"
	"factorml/internal/serve"
	"factorml/internal/stream"
)

// monitorBenchRecord is one overhead measurement in BENCH_monitor.json.
type monitorBenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

var monitorBenchRecorder struct {
	mu      sync.Mutex
	order   []string
	records map[string]monitorBenchRecord
}

func recordMonitorBench(rec monitorBenchRecord) {
	monitorBenchRecorder.mu.Lock()
	defer monitorBenchRecorder.mu.Unlock()
	if monitorBenchRecorder.records == nil {
		monitorBenchRecorder.records = make(map[string]monitorBenchRecord)
	}
	if _, seen := monitorBenchRecorder.records[rec.Name]; !seen {
		monitorBenchRecorder.order = append(monitorBenchRecorder.order, rec.Name)
	}
	monitorBenchRecorder.records[rec.Name] = rec
}

// flushMonitorBench writes the overhead measurements to
// BENCH_monitor.json (called from TestMain).
func flushMonitorBench() {
	monitorBenchRecorder.mu.Lock()
	records := make([]monitorBenchRecord, 0, len(monitorBenchRecorder.order))
	for _, key := range monitorBenchRecorder.order {
		records = append(records, monitorBenchRecorder.records[key])
	}
	monitorBenchRecorder.mu.Unlock()
	if len(records) == 0 {
		return
	}
	out := struct {
		Unit    string               `json:"unit"`
		NumCPU  int                  `json:"num_cpu"`
		Results []monitorBenchRecord `json:"results"`
	}{Unit: "ns/op", NumCPU: runtime.NumCPU(), Results: records}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_monitor.json", append(blob, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing BENCH_monitor.json: %v\n", err)
	}
}

// BenchmarkMonitorObserve times the per-row observation hooks on a nil
// *Monitor (monitoring off — the shape compiled into the ingest and
// predict hot paths) and on a live monitor with one attached model.
// Both paths must not allocate: the benchmark fails outright if either
// does.
func BenchmarkMonitorObserve(b *testing.B) {
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) * 0.25
	}

	b.Run("disabled", func(b *testing.B) {
		var m *monitor.Monitor
		op := func() {
			m.ObserveJoined(x)
			if m.SampleQuality("g") {
				m.ObserveQuality("g", 1)
			}
			m.CheckAll()
		}
		if allocs := benchAllocs(op); allocs != 0 {
			b.Fatalf("disabled monitoring path allocates %.0f objects/op, want 0", allocs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op()
		}
		recordMonitorBench(monitorBenchRecord{
			Name:    "monitor_observe/disabled",
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})

	b.Run("enabled", func(b *testing.B) {
		base := &monitor.Baseline{Rows: 1}
		for i := range x {
			cb := monitor.ColumnBaseline{Table: "t", Name: fmt.Sprintf("c%d", i)}
			cb.Sketch = *monitor.NewSketch(-10, 10, 0)
			cb.Sketch.Observe(0)
			base.Columns = append(base.Columns, cb)
		}
		m := monitor.New(monitor.Config{})
		m.Attach("g", "gmm", 1, &monitor.Lineage{TrainingRows: 1, Baseline: base})
		op := func() { m.ObserveJoined(x) }
		if allocs := benchAllocs(op); allocs != 0 {
			b.Fatalf("enabled observe path allocates %.0f objects/op, want 0", allocs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op()
		}
		recordMonitorBench(monitorBenchRecord{
			Name:    "monitor_observe/enabled",
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		})
	})
}

// BenchmarkMonitorIngest times a full 16-row stream ingest with
// monitoring off and on over the same star schema, pinning the end-to-
// end overhead of sketch maintenance relative to the undisturbed
// change-feed path.
func BenchmarkMonitorIngest(b *testing.B) {
	const rowsPerBatch = 16
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			db := benchDB(b)
			spec, err := data.Generate(db, "mb", data.SynthConfig{
				NS: 2000, NR: []int{50}, DS: 4, DR: []int{4},
				Seed: 17, WithTarget: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			gres, err := gmm.TrainF(db, spec, gmm.Config{K: 3, MaxIter: 2, Tol: 1e-300, NumWorkers: 1})
			if err != nil {
				b.Fatal(err)
			}
			reg, err := serve.NewRegistry(db)
			if err != nil {
				b.Fatal(err)
			}
			var mon *monitor.Monitor
			if mode == "enabled" {
				base, err := monitor.CaptureBaseline(spec, 0,
					func(x []float64, y float64) float64 { return gres.Model.LogProb(x) }, "log_likelihood")
				if err != nil {
					b.Fatal(err)
				}
				lin := &monitor.Lineage{TrainedAtUnix: base.CapturedAtUnix, TrainingRows: base.Rows, Baseline: base}
				if err := reg.SaveGMMLineage("bench-mon", gres.Model, lin); err != nil {
					b.Fatal(err)
				}
				mon = monitor.New(monitor.Config{})
			} else if err := reg.SaveGMM("bench-mon", gres.Model); err != nil {
				b.Fatal(err)
			}
			st, err := stream.New(db, spec, stream.Options{
				Registry: reg,
				Monitor:  mon,
				Policy:   stream.Policy{NumWorkers: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.AttachGMM("bench-mon", gres.Model); err != nil {
				b.Fatal(err)
			}
			var idx *join.ResidentIndex
			if idx, err = join.BuildResidentIndex(spec.Rs[0]); err != nil {
				b.Fatal(err)
			}
			next := spec.S.NumTuples()
			batch := func() stream.Batch {
				var bt stream.Batch
				for i := 0; i < rowsPerBatch; i++ {
					pk, _ := idx.At(i % idx.Len())
					bt.Facts = append(bt.Facts, stream.FactRow{
						SID: next, FKs: []int64{pk},
						Features: []float64{0.1, 0.2, 0.3, 0.4},
						Target:   1,
					})
					next++
				}
				return bt
			}
			allocs := testing.AllocsPerRun(1, func() {
				if _, err := st.Ingest(batch()); err != nil {
					b.Fatal(err)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Ingest(batch()); err != nil {
					b.Fatal(err)
				}
			}
			recordMonitorBench(monitorBenchRecord{
				Name:        fmt.Sprintf("ingest_%drows/%s", rowsPerBatch, mode),
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				AllocsPerOp: allocs,
			})
		})
	}
}
