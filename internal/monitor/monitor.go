package monitor

import (
	"sort"
	"sync"
	"time"

	"factorml/internal/xlog"
)

// Config sets the monitor's drift and staleness thresholds. The zero
// value selects the documented defaults.
type Config struct {
	// DriftWarnPSI marks a column "warn" at or above this PSI.
	// Defaults to 0.1 (the conventional moderate-shift threshold).
	DriftWarnPSI float64
	// DriftPSI marks a column "drift" at or above this PSI and flips
	// the model verdict to "drifting". Defaults to 0.25.
	DriftPSI float64
	// StalenessMaxRows flips the verdict to "stale" once this many
	// fact rows have been ingested since the last refresh. 0 disables
	// staleness-by-rows.
	StalenessMaxRows int64
	// SampleFraction is the fraction of predict requests whose outputs
	// feed the quality sketch (counter-based, deterministic). Values
	// outside (0, 1] select 1 (every request).
	SampleFraction float64
	// MinWindowRows is the live-window evidence floor: a column's PSI
	// only counts toward the verdict once its window holds at least
	// this many observations. Defaults to 50.
	MinWindowRows int64
	// Bins is the interior histogram resolution used by NewWindow
	// consumers; capture callers pass it explicitly. <1 selects
	// DefaultBins.
	Bins int
	// Logger, when set, receives an event on every verdict transition.
	Logger *xlog.Logger

	now func() time.Time // test seam; nil means time.Now
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.DriftWarnPSI <= 0 {
		out.DriftWarnPSI = 0.1
	}
	if out.DriftPSI <= 0 {
		out.DriftPSI = 0.25
	}
	if out.SampleFraction <= 0 || out.SampleFraction > 1 {
		out.SampleFraction = 1
	}
	if out.MinWindowRows <= 0 {
		out.MinWindowRows = 50
	}
	if out.Bins < 1 {
		out.Bins = DefaultBins
	}
	if out.now == nil {
		out.now = time.Now
	}
	return out
}

// Monitor tracks per-model live distribution windows against persisted
// baselines. All methods are safe for concurrent use, and every method
// on a nil *Monitor is a free no-op, so call sites never branch on
// whether monitoring is enabled.
type Monitor struct {
	mu          sync.Mutex
	cfg         Config
	sampleEvery uint64
	models      map[string]*modelMon
}

type modelMon struct {
	name, kind  string
	version     int
	lin         *Lineage
	window      []Sketch           // live per-column sketches, baseline layout
	quality     *Sketch            // live prediction-quality sketch
	dimRuns     map[string][][]int // table -> column-index runs in the joined layout
	rowsSince   int64
	dimUpdates  int64
	refreshedAt time.Time
	samples     uint64
	lastVerdict string
}

// New returns a Monitor with cfg's zero fields replaced by defaults.
func New(cfg Config) *Monitor {
	c := cfg.withDefaults()
	return &Monitor{
		cfg:         c,
		sampleEvery: uint64(1/c.SampleFraction + 0.5),
		models:      make(map[string]*modelMon),
	}
}

// Attach registers (or replaces) a model under monitoring. lin may be
// nil or baseline-free, in which case staleness is still tracked but
// the verdict reports "unmonitored" until a refresh installs one.
func (m *Monitor) Attach(name, kind string, version int, lin *Lineage) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mm := &modelMon{name: name, kind: kind, version: version, lin: lin.Clone(), refreshedAt: m.cfg.now()}
	if b := baselineOf(mm.lin); b != nil {
		mm.window = make([]Sketch, len(b.Columns))
		mm.dimRuns = make(map[string][][]int)
		var run []int
		var runTable string
		flush := func() {
			if len(run) > 0 {
				mm.dimRuns[runTable] = append(mm.dimRuns[runTable], run)
			}
		}
		for i, col := range b.Columns {
			mm.window[i] = *col.Sketch.EmptyCopy()
			if col.Table != runTable {
				flush()
				run, runTable = nil, col.Table
			}
			run = append(run, i)
		}
		flush()
		if b.Quality != nil {
			mm.quality = b.Quality.EmptyCopy()
		}
		if b.CapturedAtUnix > 0 {
			mm.refreshedAt = time.Unix(b.CapturedAtUnix, 0)
		}
	}
	m.models[name] = mm
}

// Detach drops a model from monitoring.
func (m *Monitor) Detach(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.models, name)
}

func baselineOf(l *Lineage) *Baseline {
	if l == nil {
		return nil
	}
	return l.Baseline
}

// ObserveJoined folds one ingested fact row — already resolved to its
// full joined feature vector — into every attached model's live window.
// O(models × columns) with zero allocations: the constant-per-row cost
// that lets drift monitoring ride the change feed instead of rescanning.
func (m *Monitor) ObserveJoined(x []float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mm := range m.models {
		mm.rowsSince++
		if len(mm.window) != len(x) {
			continue
		}
		for i := range x {
			mm.window[i].Observe(x[i])
		}
	}
}

// ObserveDimUpdate folds an in-place dimension update's new feature
// values into each model's window sketches for that table's columns.
// An update is treated as fresh observations of the new values — an
// approximation (the old values are not retracted), matching the
// stream's own treatment of dimension updates as rebaseline triggers.
func (m *Monitor) ObserveDimUpdate(table string, feats []float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mm := range m.models {
		runs, ok := mm.dimRuns[table]
		if !ok {
			continue
		}
		mm.dimUpdates++
		for _, run := range runs {
			for k, ci := range run {
				if k < len(feats) {
					mm.window[ci].Observe(feats[k])
				}
			}
		}
	}
}

// SampleQuality reports whether this predict request's outputs should
// feed the quality sketch (deterministic counter-based sampling at
// Config.SampleFraction), advancing the model's sample counter.
func (m *Monitor) SampleQuality(name string) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mm, ok := m.models[name]
	if !ok || mm.quality == nil {
		return false
	}
	n := mm.samples
	mm.samples++
	return n%m.sampleEvery == 0
}

// ObserveQuality folds one per-row quality value (GMM log-likelihood or
// NN output) into the model's live quality sketch.
func (m *Monitor) ObserveQuality(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if mm, ok := m.models[name]; ok && mm.quality != nil {
		mm.quality.Observe(v)
	}
}

// NoteRefresh records that a model's parameters were just refreshed at
// the given registry version over totalRows training rows using
// strategy. The live window is folded into the baseline with an exact
// sketch merge — the factorized trick, no rescan — and reset, staleness
// counters restart, and the updated lineage (deep copy) is returned for
// the caller to persist alongside the new version. version <= 0 keeps
// the current version; empty strategy and zero totalRows keep the
// previous values. Returns nil when the model is unknown or has no
// baseline to advance.
func (m *Monitor) NoteRefresh(name string, version int, strategy string, totalRows int64) *Lineage {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mm, ok := m.models[name]
	if !ok {
		return nil
	}
	now := m.cfg.now()
	if version > 0 {
		mm.version = version
	}
	mm.rowsSince = 0
	mm.dimUpdates = 0
	mm.refreshedAt = now
	b := baselineOf(mm.lin)
	if b == nil {
		return nil
	}
	for i := range b.Columns {
		b.Columns[i].Sketch.Merge(&mm.window[i]) //nolint:errcheck // layouts match by construction
		reset(&mm.window[i])
	}
	if b.Quality != nil && mm.quality != nil {
		b.Quality.Merge(mm.quality) //nolint:errcheck // layouts match by construction
		reset(mm.quality)
	}
	b.CapturedAtUnix = now.Unix()
	b.Rows = b.Columns[0].Sketch.Count
	mm.lin.TrainedAtUnix = now.Unix()
	if totalRows > 0 {
		mm.lin.TrainingRows = totalRows
	}
	if strategy != "" {
		mm.lin.Strategy = strategy
	}
	return mm.lin.Clone()
}

func reset(s *Sketch) {
	s.Count, s.Mean, s.M2, s.Min, s.Max = 0, 0, 0, 0, 0
	for i := range s.Bins {
		s.Bins[i] = 0
	}
}

// Health evaluates one model's current health, firing a verdict
// transition event if the verdict changed since the last evaluation.
func (m *Monitor) Health(name string) (Health, bool) {
	if m == nil {
		return Health{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mm, ok := m.models[name]
	if !ok {
		return Health{}, false
	}
	return m.healthLocked(mm), true
}

// HealthAll evaluates every attached model, sorted by name, firing
// verdict transition events as it goes.
func (m *Monitor) HealthAll() []Health {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Health, 0, len(m.models))
	for _, mm := range m.models {
		out = append(out, m.healthLocked(mm))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// CheckAll re-evaluates every model's verdict so transitions fire
// promptly after an ingest batch rather than waiting for a scrape.
func (m *Monitor) CheckAll() {
	if m == nil {
		return
	}
	m.HealthAll()
}
