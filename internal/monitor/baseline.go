package monitor

// ColumnBaseline is the training-time distribution snapshot of one
// joined feature column, identified by the table it lives in and its
// catalog column name.
type ColumnBaseline struct {
	Table  string `json:"table"`
	Name   string `json:"name"`
	Sketch Sketch `json:"sketch"`
}

// Baseline is the distribution snapshot a model version was trained
// (or last refreshed) against: one sketch per joined feature column in
// joined-vector order, plus an optional prediction-quality sketch
// (per-row GMM log-likelihood or NN output over the training data).
type Baseline struct {
	CapturedAtUnix int64            `json:"captured_at_unix"`
	Rows           int64            `json:"rows"`
	Columns        []ColumnBaseline `json:"columns"`
	Quality        *Sketch          `json:"quality,omitempty"`
	QualityMetric  string           `json:"quality_metric,omitempty"` // "log_likelihood" or "output"
}

// Lineage is the per-version provenance record persisted with a model
// in the registry: when it was trained, over how many rows, which
// strategy the planner picked, and the baseline statistics drift
// scoring compares against.
type Lineage struct {
	TrainedAtUnix int64     `json:"trained_at_unix"`
	TrainingRows  int64     `json:"training_rows"`
	Strategy      string    `json:"strategy,omitempty"`
	Baseline      *Baseline `json:"baseline,omitempty"`
}

// Clone returns a deep copy, so a persisted lineage never aliases the
// monitor's mutable state.
func (l *Lineage) Clone() *Lineage {
	if l == nil {
		return nil
	}
	c := *l
	c.Baseline = l.Baseline.clone()
	return &c
}

func (b *Baseline) clone() *Baseline {
	if b == nil {
		return nil
	}
	c := *b
	c.Columns = make([]ColumnBaseline, len(b.Columns))
	for i, col := range b.Columns {
		c.Columns[i] = col
		c.Columns[i].Sketch.Bins = append([]int64(nil), col.Sketch.Bins...)
	}
	if b.Quality != nil {
		q := *b.Quality
		q.Bins = append([]int64(nil), b.Quality.Bins...)
		c.Quality = &q
	}
	return &c
}
