package monitor

import (
	"fmt"
	"math"
)

// Sketch is an online summary of a single numeric column: exact
// count/mean/variance/min/max moments (Welford) plus a fixed-bin
// histogram with explicit underflow and overflow bins. Observing a
// value is O(1) and allocation-free; two sketches over the same bin
// layout merge exactly, which is what lets a refresh fold the live
// window into the baseline without rescanning the dataset.
//
// Bins[0] counts values below Lo, Bins[len-1] counts values at or
// above Hi, and the len(Bins)-2 interior bins split [Lo, Hi) evenly.
// The zero Sketch (no bins) is a valid moments-only sketch.
type Sketch struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	M2    float64 `json:"m2"` // sum of squared deviations from the mean
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Lo    float64 `json:"lo"` // lower edge of the interior histogram range
	Hi    float64 `json:"hi"` // upper edge of the interior histogram range
	Bins  []int64 `json:"bins,omitempty"`
}

// DefaultBins is the interior histogram resolution used when a caller
// does not pick one. Ten interior bins is the classic PSI decile setup.
const DefaultBins = 10

// NewSketch returns an empty sketch whose interior histogram splits
// [lo, hi) into bins equal cells. A degenerate range (hi <= lo, e.g. a
// constant column) is widened by one unit so every observation lands in
// a well-defined bin. bins < 1 falls back to DefaultBins.
func NewSketch(lo, hi float64, bins int) *Sketch {
	if bins < 1 {
		bins = DefaultBins
	}
	if !(hi > lo) { // also catches NaN
		hi = lo + 1
	}
	return &Sketch{Lo: lo, Hi: hi, Min: 0, Max: 0, Bins: make([]int64, bins+2)}
}

// EmptyCopy returns a zeroed sketch sharing the receiver's bin layout —
// the live-window counterpart of a baseline sketch, so PSI compares
// like with like.
func (s *Sketch) EmptyCopy() *Sketch {
	c := &Sketch{Lo: s.Lo, Hi: s.Hi}
	if len(s.Bins) > 0 {
		c.Bins = make([]int64, len(s.Bins))
	}
	return c
}

// Observe folds one value into the sketch: O(1), no allocations.
func (s *Sketch) Observe(x float64) {
	s.Count++
	if s.Count == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	delta := x - s.Mean
	s.Mean += delta / float64(s.Count)
	s.M2 += delta * (x - s.Mean)
	if n := len(s.Bins); n > 0 {
		switch {
		case x < s.Lo:
			s.Bins[0]++
		case x >= s.Hi:
			s.Bins[n-1]++
		default:
			i := 1 + int(float64(n-2)*(x-s.Lo)/(s.Hi-s.Lo))
			if i > n-2 { // guard float rounding at the upper edge
				i = n - 2
			}
			s.Bins[i]++
		}
	}
}

// Variance returns the sample variance (0 with fewer than two
// observations).
func (s *Sketch) Variance() float64 {
	if s.Count < 2 {
		return 0
	}
	return s.M2 / float64(s.Count-1)
}

// Merge folds o into s exactly: the merged moments equal those of
// observing both input streams, and same-layout histograms add
// bin-wise. Histograms with different layouts cannot merge.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.Count == 0 {
		return nil
	}
	if len(s.Bins) != len(o.Bins) || (len(s.Bins) > 0 && (s.Lo != o.Lo || s.Hi != o.Hi)) {
		return fmt.Errorf("monitor: cannot merge sketches with different bin layouts ([%g,%g)x%d vs [%g,%g)x%d)",
			s.Lo, s.Hi, len(s.Bins), o.Lo, o.Hi, len(o.Bins))
	}
	if s.Count == 0 {
		s.Count, s.Mean, s.M2, s.Min, s.Max = o.Count, o.Mean, o.M2, o.Min, o.Max
		copy(s.Bins, o.Bins)
		return nil
	}
	n := float64(s.Count + o.Count)
	delta := o.Mean - s.Mean
	s.M2 += o.M2 + delta*delta*float64(s.Count)*float64(o.Count)/n
	s.Mean += delta * float64(o.Count) / n
	s.Count += o.Count
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Bins {
		s.Bins[i] += o.Bins[i]
	}
	return nil
}

// psiEpsilon floors each bin proportion before the log-ratio so that a
// bin empty on one side contributes a large-but-finite term instead of
// an infinity.
const psiEpsilon = 1e-4

// PSI returns the Population Stability Index of live against base — the
// standard drift score Σ (p_i − q_i)·ln(p_i/q_i) over matching histogram
// bins, with proportions floored at psiEpsilon. Conventional reading:
// below 0.1 stable, 0.1–0.25 moderate shift, above 0.25 shifted. The
// score is 0 when either sketch is empty or the layouts differ (no
// evidence either way).
func PSI(base, live *Sketch) float64 {
	if base == nil || live == nil || base.Count == 0 || live.Count == 0 {
		return 0
	}
	if len(base.Bins) != len(live.Bins) || len(base.Bins) == 0 ||
		base.Lo != live.Lo || base.Hi != live.Hi {
		return 0
	}
	bn, ln := float64(base.Count), float64(live.Count)
	var psi float64
	for i := range base.Bins {
		p := float64(base.Bins[i]) / bn
		q := float64(live.Bins[i]) / ln
		if p < psiEpsilon {
			p = psiEpsilon
		}
		if q < psiEpsilon {
			q = psiEpsilon
		}
		psi += (q - p) * math.Log(q/p)
	}
	return psi
}
