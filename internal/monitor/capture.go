package monitor

import (
	"fmt"
	"math"
	"time"

	"factorml/internal/join"
)

// CaptureBaseline snapshots the joined training distribution of spec in
// two streaming passes over the factorized join (never materialized):
// the first pass finds each column's range, the second fills fixed-bin
// histograms over exactly that range. score, when non-nil, is evaluated
// per joined row to capture the prediction-quality baseline (the GMM
// per-row log-likelihood or the NN output) under metric's name. bins
// picks the interior histogram resolution (<1 selects DefaultBins).
func CaptureBaseline(sp *join.Spec, bins int, score func(x []float64, y float64) float64, metric string) (*Baseline, error) {
	if bins < 1 {
		bins = DefaultBins
	}
	d := sp.JoinedWidth()
	lo := make([]float64, d)
	hi := make([]float64, d)
	var sLo, sHi float64
	var rows int64
	err := join.Stream(sp, func(sid int64, x []float64, y float64) error {
		if rows == 0 {
			copy(lo, x)
			copy(hi, x)
		} else {
			for i, v := range x {
				if v < lo[i] {
					lo[i] = v
				}
				if v > hi[i] {
					hi[i] = v
				}
			}
		}
		if score != nil {
			s := score(x, y)
			if rows == 0 {
				sLo, sHi = s, s
			} else {
				if s < sLo {
					sLo = s
				}
				if s > sHi {
					sHi = s
				}
			}
		}
		rows++
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("monitor: baseline range pass: %w", err)
	}
	if rows == 0 {
		return nil, fmt.Errorf("monitor: cannot capture a baseline over an empty join")
	}
	b := &Baseline{
		CapturedAtUnix: time.Now().Unix(),
		Rows:           rows,
		Columns:        make([]ColumnBaseline, d),
	}
	names := columnNames(sp)
	sketches := make([]*Sketch, d)
	for i := 0; i < d; i++ {
		b.Columns[i] = ColumnBaseline{Table: names[i][0], Name: names[i][1]}
		// Widen the upper edge one ULP so the training maximum itself
		// lands in the last interior bin, not overflow.
		sketches[i] = NewSketch(lo[i], math.Nextafter(hi[i], math.Inf(1)), bins)
	}
	var quality *Sketch
	if score != nil {
		quality = NewSketch(sLo, math.Nextafter(sHi, math.Inf(1)), bins)
	}
	err = join.Stream(sp, func(sid int64, x []float64, y float64) error {
		for i, v := range x {
			sketches[i].Observe(v)
		}
		if score != nil {
			quality.Observe(score(x, y))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("monitor: baseline histogram pass: %w", err)
	}
	for i := 0; i < d; i++ {
		b.Columns[i].Sketch = *sketches[i]
	}
	if quality != nil {
		b.Quality = quality
		b.QualityMetric = metric
	}
	return b, nil
}

// columnNames returns, per joined feature offset, the (table, column)
// pair it came from, in the joined layout's [S, R1, …, Rq] order.
func columnNames(sp *join.Spec) [][2]string {
	out := make([][2]string, 0, sp.JoinedWidth())
	add := func(table string, feats []string) {
		for _, f := range feats {
			out = append(out, [2]string{table, f})
		}
	}
	add(sp.S.Schema().Name, sp.S.Schema().Features)
	for _, r := range sp.Rs {
		add(r.Schema().Name, r.Schema().Features)
	}
	return out
}
