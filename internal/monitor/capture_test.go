package monitor

import (
	"testing"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// captureSpec builds S(sid, fk1; x0, x1; target) joined with R1(rid; r0):
// 8 fact rows referencing 2 dimension rows.
func captureSpec(t *testing.T) *join.Spec {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	sTbl, err := db.CreateTable(&storage.Schema{
		Name: "S", Keys: []string{"sid", "fk1"}, Features: []string{"x0", "x1"}, HasTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rTbl, err := db.CreateTable(&storage.Schema{
		Name: "R1", Keys: []string{"rid"}, Features: []string{"r0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := rTbl.Append(&storage.Tuple{Keys: []int64{int64(i)}, Features: []float64{float64(100 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rTbl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := sTbl.Append(&storage.Tuple{
			Keys:     []int64{int64(i), int64(i % 2)},
			Features: []float64{float64(i), float64(10 * i)},
			Target:   float64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sTbl.Flush(); err != nil {
		t.Fatal(err)
	}
	sp := &join.Spec{S: sTbl, Rs: []*storage.Table{rTbl}}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestCaptureBaseline(t *testing.T) {
	sp := captureSpec(t)
	score := func(x []float64, y float64) float64 { return x[0] + y }
	b, err := CaptureBaseline(sp, 5, score, "output")
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != 8 {
		t.Fatalf("rows = %d, want 8", b.Rows)
	}
	wantCols := [][2]string{{"S", "x0"}, {"S", "x1"}, {"R1", "r0"}}
	if len(b.Columns) != len(wantCols) {
		t.Fatalf("got %d columns, want %d", len(b.Columns), len(wantCols))
	}
	for i, w := range wantCols {
		c := b.Columns[i]
		if c.Table != w[0] || c.Name != w[1] {
			t.Fatalf("column %d = %s.%s, want %s.%s", i, c.Table, c.Name, w[0], w[1])
		}
		if c.Sketch.Count != 8 {
			t.Fatalf("column %s.%s count = %d, want 8", c.Table, c.Name, c.Sketch.Count)
		}
	}
	if b.Columns[0].Sketch.Min != 0 || b.Columns[0].Sketch.Max != 7 {
		t.Fatalf("S.x0 range = [%v, %v], want [0, 7]", b.Columns[0].Sketch.Min, b.Columns[0].Sketch.Max)
	}
	// R1.r0 takes only 100 and 101, 4 rows each.
	if b.Columns[2].Sketch.Min != 100 || b.Columns[2].Sketch.Max != 101 {
		t.Fatalf("R1.r0 range = [%v, %v], want [100, 101]", b.Columns[2].Sketch.Min, b.Columns[2].Sketch.Max)
	}
	// No observation may land in underflow/overflow: the histogram range
	// came from the same data.
	for _, c := range b.Columns {
		if c.Sketch.Bins[0] != 0 || c.Sketch.Bins[len(c.Sketch.Bins)-1] != 0 {
			t.Fatalf("column %s.%s has out-of-range bins: %v", c.Table, c.Name, c.Sketch.Bins)
		}
	}
	if b.Quality == nil || b.Quality.Count != 8 || b.QualityMetric != "output" {
		t.Fatalf("quality sketch = %+v (%q), want 8 scored rows", b.Quality, b.QualityMetric)
	}
	if b.Quality.Min != 0 || b.Quality.Max != 14 {
		t.Fatalf("quality range = [%v, %v], want [0, 14]", b.Quality.Min, b.Quality.Max)
	}
}

func TestCaptureBaselineNoScoreAndEmpty(t *testing.T) {
	sp := captureSpec(t)
	b, err := CaptureBaseline(sp, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if b.Quality != nil {
		t.Fatal("no score function should mean no quality sketch")
	}
	if len(b.Columns[0].Sketch.Bins) != DefaultBins+2 {
		t.Fatalf("bins<1 should select DefaultBins, got %d", len(b.Columns[0].Sketch.Bins))
	}
}
