package monitor

import (
	"math"
	"math/rand"
	"testing"
)

func TestSketchMoments(t *testing.T) {
	s := NewSketch(0, 10, 10)
	vals := []float64{1, 2, 3, 4, 5, 9.5, -2, 12}
	var sum float64
	for _, v := range vals {
		s.Observe(v)
		sum += v
	}
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	mean := sum / float64(len(vals))
	if math.Abs(s.Mean-mean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", s.Mean, mean)
	}
	var m2 float64
	for _, v := range vals {
		m2 += (v - mean) * (v - mean)
	}
	if math.Abs(s.Variance()-m2/float64(len(vals)-1)) > 1e-9 {
		t.Fatalf("variance = %v, want %v", s.Variance(), m2/float64(len(vals)-1))
	}
	if s.Min != -2 || s.Max != 12 {
		t.Fatalf("min/max = %v/%v, want -2/12", s.Min, s.Max)
	}
	// -2 underflows, 12 overflows, the rest land in interior bins.
	if s.Bins[0] != 1 {
		t.Fatalf("underflow bin = %d, want 1", s.Bins[0])
	}
	if s.Bins[len(s.Bins)-1] != 1 {
		t.Fatalf("overflow bin = %d, want 1", s.Bins[len(s.Bins)-1])
	}
	var interior int64
	for _, b := range s.Bins[1 : len(s.Bins)-1] {
		interior += b
	}
	if interior != 6 {
		t.Fatalf("interior count = %d, want 6", interior)
	}
}

func TestSketchUpperEdgeRounding(t *testing.T) {
	// A value epsilon below Hi must land in the last interior bin, not
	// panic past it.
	s := NewSketch(0, 1, 10)
	s.Observe(math.Nextafter(1, 0))
	if s.Bins[10] != 1 {
		t.Fatalf("value just below Hi landed in bin %v, want interior bin 10", s.Bins)
	}
}

func TestSketchDegenerateRange(t *testing.T) {
	s := NewSketch(5, 5, 10)
	for i := 0; i < 3; i++ {
		s.Observe(5)
	}
	if s.Bins[1] != 3 {
		t.Fatalf("constant column: bins = %v, want all 3 in first interior bin", s.Bins)
	}
}

func TestSketchMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := NewSketch(-3, 3, 12)
	a := NewSketch(-3, 3, 12)
	b := NewSketch(-3, 3, 12)
	for i := 0; i < 500; i++ {
		v := rng.NormFloat64()
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != whole.Count {
		t.Fatalf("merged count = %d, want %d", a.Count, whole.Count)
	}
	if math.Abs(a.Mean-whole.Mean) > 1e-9 || math.Abs(a.M2-whole.M2) > 1e-6 {
		t.Fatalf("merged moments (%v, %v) != whole (%v, %v)", a.Mean, a.M2, whole.Mean, whole.M2)
	}
	if a.Min != whole.Min || a.Max != whole.Max {
		t.Fatalf("merged min/max (%v, %v) != whole (%v, %v)", a.Min, a.Max, whole.Min, whole.Max)
	}
	for i := range a.Bins {
		if a.Bins[i] != whole.Bins[i] {
			t.Fatalf("merged bin %d = %d, want %d", i, a.Bins[i], whole.Bins[i])
		}
	}
}

func TestSketchMergeIntoEmptyAndLayoutMismatch(t *testing.T) {
	empty := NewSketch(0, 1, 4)
	full := NewSketch(0, 1, 4)
	full.Observe(0.5)
	if err := empty.Merge(full); err != nil {
		t.Fatal(err)
	}
	if empty.Count != 1 || empty.Min != 0.5 || empty.Max != 0.5 {
		t.Fatalf("merge into empty lost state: %+v", empty)
	}
	other := NewSketch(0, 2, 4)
	other.Observe(1)
	if err := full.Merge(other); err == nil {
		t.Fatal("merging different layouts should fail")
	}
	// Merging an empty sketch is a no-op regardless of layout.
	if err := full.Merge(NewSketch(9, 10, 2)); err != nil {
		t.Fatalf("merging an empty sketch should be a no-op, got %v", err)
	}
}

func TestPSI(t *testing.T) {
	base := NewSketch(0, 1, 10)
	same := NewSketch(0, 1, 10)
	shifted := NewSketch(0, 1, 10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		base.Observe(rng.Float64() * 0.5)
		same.Observe(rng.Float64() * 0.5)
		shifted.Observe(0.5 + rng.Float64()*0.5)
	}
	if psi := PSI(base, same); psi > 0.05 {
		t.Fatalf("PSI(base, same) = %v, want ~0", psi)
	}
	if psi := PSI(base, shifted); psi < 1 {
		t.Fatalf("PSI(base, shifted) = %v, want a large shift score", psi)
	}
	if psi := PSI(base, NewSketch(0, 1, 10)); psi != 0 {
		t.Fatalf("PSI against an empty sketch = %v, want 0 (no evidence)", psi)
	}
	if psi := PSI(base, NewSketch(0, 2, 10)); psi != 0 {
		t.Fatalf("PSI across layouts = %v, want 0", psi)
	}
	if psi := PSI(nil, base); psi != 0 {
		t.Fatalf("PSI with nil base = %v, want 0", psi)
	}
}

func TestObserveAllocFree(t *testing.T) {
	s := NewSketch(0, 1, 10)
	if allocs := testing.AllocsPerRun(100, func() { s.Observe(0.3) }); allocs != 0 {
		t.Fatalf("Observe allocated %v times per run, want 0", allocs)
	}
}
