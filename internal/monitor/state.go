package monitor

import (
	"sort"
	"time"
)

// Checkpoint support: a Monitor's live windows are part of the stream's
// crash-recovery state. Snapshot captures every attached model's
// mutable fields in a JSON-serializable form; Restore rebuilds the
// exact monitoring state on a fresh Monitor during recovery, so a
// recovered process reports the same drift/staleness picture as the
// one that crashed.

// ModelState is one attached model's live monitoring state.
type ModelState struct {
	Name            string   `json:"name"`
	Kind            string   `json:"kind"`
	Version         int      `json:"version"`
	Lineage         *Lineage `json:"lineage,omitempty"`
	Window          []Sketch `json:"window,omitempty"`
	Quality         *Sketch  `json:"quality,omitempty"`
	RowsSince       int64    `json:"rows_since"`
	DimUpdates      int64    `json:"dim_updates"`
	RefreshedAtUnix int64    `json:"refreshed_at_unix"`
	Samples         uint64   `json:"samples"`
	LastVerdict     string   `json:"last_verdict,omitempty"`
}

// State is the monitor's full checkpointable state.
type State struct {
	Models []ModelState `json:"models"`
}

func cloneSketch(s *Sketch) Sketch {
	c := *s
	if s.Bins != nil {
		c.Bins = append([]int64(nil), s.Bins...)
	}
	return c
}

// Snapshot returns a deep copy of the live monitoring state, sorted by
// model name. Safe on a nil *Monitor, where it returns nil.
func (m *Monitor) Snapshot() *State {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &State{}
	for _, name := range sortedModelNames(m.models) {
		mm := m.models[name]
		ms := ModelState{
			Name:            mm.name,
			Kind:            mm.kind,
			Version:         mm.version,
			Lineage:         mm.lin.Clone(),
			RowsSince:       mm.rowsSince,
			DimUpdates:      mm.dimUpdates,
			RefreshedAtUnix: mm.refreshedAt.Unix(),
			Samples:         mm.samples,
			LastVerdict:     mm.lastVerdict,
		}
		for i := range mm.window {
			ms.Window = append(ms.Window, cloneSketch(&mm.window[i]))
		}
		if mm.quality != nil {
			q := cloneSketch(mm.quality)
			ms.Quality = &q
		}
		st.Models = append(st.Models, ms)
	}
	return st
}

// Restore re-attaches every model from a Snapshot and overlays its live
// window, quality, and staleness state. Models already attached under
// the same names are replaced. Safe no-ops on a nil receiver or state.
func (m *Monitor) Restore(st *State) {
	if m == nil || st == nil {
		return
	}
	for _, ms := range st.Models {
		m.Attach(ms.Name, ms.Kind, ms.Version, ms.Lineage)
		m.mu.Lock()
		mm := m.models[ms.Name]
		if len(ms.Window) == len(mm.window) {
			for i := range ms.Window {
				mm.window[i] = cloneSketch(&ms.Window[i])
			}
		}
		if ms.Quality != nil && mm.quality != nil {
			q := cloneSketch(ms.Quality)
			mm.quality = &q
		}
		mm.rowsSince = ms.RowsSince
		mm.dimUpdates = ms.DimUpdates
		mm.refreshedAt = time.Unix(ms.RefreshedAtUnix, 0)
		mm.samples = ms.Samples
		mm.lastVerdict = ms.LastVerdict
		m.mu.Unlock()
	}
}

func sortedModelNames(models map[string]*modelMon) []string {
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
