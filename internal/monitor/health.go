package monitor

import (
	"context"
	"fmt"

	"factorml/internal/metrics"
)

// Model health verdicts, strongest first: drift beats staleness beats
// fresh; a model with no baseline lineage can only report staleness or
// "unmonitored".
const (
	VerdictFresh       = "fresh"
	VerdictDrifting    = "drifting"
	VerdictStale       = "stale"
	VerdictUnmonitored = "unmonitored"
)

// ColumnHealth is one joined column's drift reading: the PSI of its
// live window against the model's baseline and the status that PSI
// earns under the configured thresholds ("ok", "warn", or "drift" —
// "ok" is also reported while the window is below the evidence floor).
type ColumnHealth struct {
	Table        string  `json:"table"`
	Name         string  `json:"name"`
	PSI          float64 `json:"psi"`
	Status       string  `json:"status"`
	BaselineMean float64 `json:"baseline_mean"`
	LiveMean     float64 `json:"live_mean"`
	LiveRows     int64   `json:"live_rows"`
}

// Health is one model's health verdict with the evidence behind it.
type Health struct {
	Model                  string         `json:"model"`
	Kind                   string         `json:"kind"`
	Version                int            `json:"version"`
	Verdict                string         `json:"verdict"`
	MaxPSI                 float64        `json:"max_psi"`
	MeanPSI                float64        `json:"mean_psi"`
	QualityPSI             float64        `json:"quality_psi"`
	QualityMetric          string         `json:"quality_metric,omitempty"`
	RowsSinceRefresh       int64          `json:"rows_since_refresh"`
	DimUpdatesSinceRefresh int64          `json:"dim_updates_since_refresh"`
	RefreshAgeSeconds      float64        `json:"refresh_age_seconds"`
	TrainedAtUnix          int64          `json:"trained_at_unix,omitempty"`
	TrainingRows           int64          `json:"training_rows,omitempty"`
	Strategy               string         `json:"strategy,omitempty"`
	Columns                []ColumnHealth `json:"columns,omitempty"`
	Reasons                []string       `json:"reasons,omitempty"`
}

// healthLocked evaluates mm under m.mu and fires a verdict-transition
// event when the verdict moved since the last evaluation.
func (m *Monitor) healthLocked(mm *modelMon) Health {
	h := Health{
		Model:                  mm.name,
		Kind:                   mm.kind,
		Version:                mm.version,
		RowsSinceRefresh:       mm.rowsSince,
		DimUpdatesSinceRefresh: mm.dimUpdates,
		RefreshAgeSeconds:      m.cfg.now().Sub(mm.refreshedAt).Seconds(),
	}
	if mm.lin != nil {
		h.TrainedAtUnix = mm.lin.TrainedAtUnix
		h.TrainingRows = mm.lin.TrainingRows
		h.Strategy = mm.lin.Strategy
	}
	b := baselineOf(mm.lin)
	stale := m.cfg.StalenessMaxRows > 0 && mm.rowsSince >= m.cfg.StalenessMaxRows
	if b == nil {
		if stale {
			h.Verdict = VerdictStale
			h.Reasons = append(h.Reasons, fmt.Sprintf("%d rows ingested since last refresh (max %d)",
				mm.rowsSince, m.cfg.StalenessMaxRows))
		} else {
			h.Verdict = VerdictUnmonitored
			h.Reasons = append(h.Reasons, "no baseline lineage persisted for this model version")
		}
		m.transitionLocked(mm, h)
		return h
	}
	h.Columns = make([]ColumnHealth, len(b.Columns))
	var sum float64
	var scored int
	drift := false
	for i := range b.Columns {
		col := &b.Columns[i]
		live := &mm.window[i]
		psi := PSI(&col.Sketch, live)
		ch := ColumnHealth{
			Table:        col.Table,
			Name:         col.Name,
			PSI:          psi,
			Status:       "ok",
			BaselineMean: col.Sketch.Mean,
			LiveMean:     live.Mean,
			LiveRows:     live.Count,
		}
		if live.Count >= m.cfg.MinWindowRows {
			scored++
			sum += psi
			if psi > h.MaxPSI {
				h.MaxPSI = psi
			}
			switch {
			case psi >= m.cfg.DriftPSI:
				ch.Status = "drift"
				drift = true
				h.Reasons = append(h.Reasons, fmt.Sprintf("column %s.%s PSI %.3f >= %.3f",
					col.Table, col.Name, psi, m.cfg.DriftPSI))
			case psi >= m.cfg.DriftWarnPSI:
				ch.Status = "warn"
				h.Reasons = append(h.Reasons, fmt.Sprintf("column %s.%s PSI %.3f >= warn %.3f",
					col.Table, col.Name, psi, m.cfg.DriftWarnPSI))
			}
		}
		h.Columns[i] = ch
	}
	if scored > 0 {
		h.MeanPSI = sum / float64(scored)
	}
	if b.Quality != nil && mm.quality != nil {
		h.QualityMetric = b.QualityMetric
		h.QualityPSI = PSI(b.Quality, mm.quality)
		if mm.quality.Count >= m.cfg.MinWindowRows {
			if h.QualityPSI > h.MaxPSI {
				h.MaxPSI = h.QualityPSI
			}
			if h.QualityPSI >= m.cfg.DriftPSI {
				drift = true
				h.Reasons = append(h.Reasons, fmt.Sprintf("prediction quality (%s) PSI %.3f >= %.3f",
					b.QualityMetric, h.QualityPSI, m.cfg.DriftPSI))
			}
		}
	}
	switch {
	case drift:
		h.Verdict = VerdictDrifting
	case stale:
		h.Verdict = VerdictStale
		h.Reasons = append(h.Reasons, fmt.Sprintf("%d rows ingested since last refresh (max %d)",
			mm.rowsSince, m.cfg.StalenessMaxRows))
	default:
		h.Verdict = VerdictFresh
	}
	m.transitionLocked(mm, h)
	return h
}

// transitionLocked emits an xlog event when mm's verdict moved. The
// very first evaluation seeds the state silently — a transition is a
// change, not an initial reading.
func (m *Monitor) transitionLocked(mm *modelMon, h Health) {
	prev := mm.lastVerdict
	mm.lastVerdict = h.Verdict
	if prev == "" || prev == h.Verdict {
		return
	}
	kv := []any{
		"model", mm.name, "kind", mm.kind, "version", h.Version,
		"from", prev, "to", h.Verdict,
		"max_psi", h.MaxPSI, "quality_psi", h.QualityPSI,
		"rows_since_refresh", h.RowsSinceRefresh,
	}
	if h.Verdict == VerdictFresh {
		m.cfg.Logger.Info(context.Background(), "model health verdict changed", kv...)
	} else {
		m.cfg.Logger.Warn(context.Background(), "model health verdict changed", kv...)
	}
}

// StatsProvider adapts HealthAll for the "health" section of /statsz.
func (m *Monitor) StatsProvider() func() any {
	return func() any { return m.HealthAll() }
}

// MetricsCollector emits per-model drift and staleness gauges at scrape
// time: the max-column PSI (the drift score the verdict routes on), the
// quality PSI, rows since refresh, refresh age, and a one-hot verdict
// gauge labeled with the verdict string.
func (m *Monitor) MetricsCollector() metrics.Collector {
	return func(emit func(metrics.Sample)) {
		for _, h := range m.HealthAll() {
			model := [][2]string{{"model", h.Model}}
			emit(metrics.Sample{
				Name:   "factorml_model_drift_psi",
				Help:   "Max per-column PSI of the live window against the model's baseline.",
				Labels: model, Value: h.MaxPSI,
			})
			emit(metrics.Sample{
				Name:   "factorml_model_quality_psi",
				Help:   "PSI of sampled prediction quality against the training baseline.",
				Labels: model, Value: h.QualityPSI,
			})
			emit(metrics.Sample{
				Name:   "factorml_model_rows_since_refresh",
				Help:   "Fact rows ingested since the model's last refresh.",
				Labels: model, Value: float64(h.RowsSinceRefresh),
			})
			emit(metrics.Sample{
				Name:   "factorml_model_refresh_age_seconds",
				Help:   "Seconds since the model's baseline was captured or refreshed.",
				Labels: model, Value: h.RefreshAgeSeconds,
			})
			emit(metrics.Sample{
				Name:   "factorml_model_health",
				Help:   "Model health verdict (value is always 1; the verdict is in the labels).",
				Labels: [][2]string{{"model", h.Model}, {"verdict", h.Verdict}},
				Value:  1,
			})
		}
	}
}
