// Package monitor watches model and data health for the serving stack:
// per-column distribution sketches maintained incrementally from the
// stream change feed, training-time baseline snapshots persisted with
// each model version (lineage), PSI drift scoring of the live window
// against the serving model's baseline, sampled prediction-quality
// telemetry, and staleness tracking (rows since refresh, refresh age).
//
// The package applies the paper's factorized-maintenance discipline to
// observability itself: a sketch update is O(1) per ingested row, and a
// refresh folds the live window into the baseline with an exact sketch
// merge — no rescan of the dataset, ever. Everything here is
// dependency-free (standard library plus the repo's own internal
// packages) and passive: monitoring never changes a trained model or a
// prediction, a guarantee pinned by the equivalence tests, and a nil
// *Monitor is valid and free, mirroring the trace/xlog discipline.
package monitor
