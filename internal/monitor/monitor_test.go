package monitor

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"factorml/internal/metrics"
	"factorml/internal/xlog"
)

// testLineage builds a two-column (S.x0, R1.r0) baseline over U[0, 0.5)
// with a quality baseline over U[0, 0.2).
func testLineage() *Lineage {
	colS := NewSketch(0, 1, 10)
	colR := NewSketch(0, 1, 10)
	q := NewSketch(-1, 1, 10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		colS.Observe(rng.Float64() * 0.5)
		colR.Observe(rng.Float64() * 0.5)
		q.Observe(rng.Float64() * 0.2)
	}
	return &Lineage{
		TrainedAtUnix: 100, TrainingRows: 1000, Strategy: "factorized",
		Baseline: &Baseline{
			CapturedAtUnix: 100, Rows: 1000,
			Columns: []ColumnBaseline{
				{Table: "S", Name: "x0", Sketch: *colS},
				{Table: "R1", Name: "r0", Sketch: *colR},
			},
			Quality: q, QualityMetric: "output",
		},
	}
}

func TestVerdictLifecycle(t *testing.T) {
	var logBuf bytes.Buffer
	m := New(Config{MinWindowRows: 20, Logger: xlog.New(&logBuf, xlog.LevelInfo)})
	m.Attach("m1", "gmm", 1, testLineage())

	// In-distribution rows keep the model fresh.
	rng := rand.New(rand.NewSource(2))
	row := make([]float64, 2)
	for i := 0; i < 100; i++ {
		row[0], row[1] = rng.Float64()*0.5, rng.Float64()*0.5
		m.ObserveJoined(row)
	}
	h, ok := m.Health("m1")
	if !ok || h.Verdict != VerdictFresh {
		t.Fatalf("in-distribution verdict = %q (ok=%v), want fresh", h.Verdict, ok)
	}
	if h.RowsSinceRefresh != 100 || h.TrainingRows != 1000 || h.Strategy != "factorized" {
		t.Fatalf("lineage/staleness fields wrong: %+v", h)
	}

	// A shifted delta flips it to drifting and logs the transition.
	for i := 0; i < 300; i++ {
		row[0], row[1] = 0.5+rng.Float64()*0.5, rng.Float64()*0.5
		m.ObserveJoined(row)
	}
	h, _ = m.Health("m1")
	if h.Verdict != VerdictDrifting {
		t.Fatalf("shifted verdict = %q, want drifting (max PSI %v)", h.Verdict, h.MaxPSI)
	}
	if h.Columns[0].Status != "drift" {
		t.Fatalf("shifted column status = %q, want drift", h.Columns[0].Status)
	}
	if len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "S.x0") {
		t.Fatalf("reasons = %v, want the shifted column named", h.Reasons)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "model health verdict changed") ||
		!strings.Contains(logged, `"to":"drifting"`) {
		t.Fatalf("no drifting transition event logged: %q", logged)
	}

	// A refresh folds the window into the baseline and resets the verdict.
	lin := m.NoteRefresh("m1", 2, "incremental", 1400)
	if lin == nil {
		t.Fatal("NoteRefresh returned no lineage")
	}
	if lin.Baseline.Rows != 1400 || lin.TrainingRows != 1400 || lin.Strategy != "incremental" {
		t.Fatalf("refreshed lineage = rows %d / training %d / %q, want 1400/1400/incremental",
			lin.Baseline.Rows, lin.TrainingRows, lin.Strategy)
	}
	h, _ = m.Health("m1")
	if h.Verdict != VerdictFresh || h.RowsSinceRefresh != 0 || h.Version != 2 {
		t.Fatalf("post-refresh health = %+v, want fresh at version 2 with 0 rows", h)
	}
	if !strings.Contains(logBuf.String(), `"to":"fresh"`) {
		t.Fatal("no recovery transition event logged")
	}
}

func TestStaleness(t *testing.T) {
	m := New(Config{StalenessMaxRows: 50, MinWindowRows: 1 << 30})
	m.Attach("m1", "nn", 1, testLineage())
	rng := rand.New(rand.NewSource(3))
	row := make([]float64, 2)
	for i := 0; i < 50; i++ {
		row[0], row[1] = rng.Float64()*0.5, rng.Float64()*0.5
		m.ObserveJoined(row)
	}
	h, _ := m.Health("m1")
	if h.Verdict != VerdictStale {
		t.Fatalf("verdict after %d rows = %q, want stale", h.RowsSinceRefresh, h.Verdict)
	}
	m.NoteRefresh("m1", 2, "", 0)
	if h, _ = m.Health("m1"); h.Verdict != VerdictFresh {
		t.Fatalf("post-refresh verdict = %q, want fresh", h.Verdict)
	}
}

func TestUnmonitoredVerdict(t *testing.T) {
	m := New(Config{})
	m.Attach("bare", "gmm", 1, nil)
	h, ok := m.Health("bare")
	if !ok || h.Verdict != VerdictUnmonitored {
		t.Fatalf("health = %+v (ok=%v), want unmonitored", h, ok)
	}
}

func TestQualityDrift(t *testing.T) {
	m := New(Config{MinWindowRows: 20})
	m.Attach("m1", "nn", 1, testLineage())
	if !m.SampleQuality("m1") {
		t.Fatal("SampleFraction 1 should sample every request")
	}
	for i := 0; i < 100; i++ {
		m.ObserveQuality("m1", 0.9) // far outside the quality baseline
	}
	h, _ := m.Health("m1")
	if h.Verdict != VerdictDrifting || h.QualityPSI < 0.25 {
		t.Fatalf("quality drift verdict = %q (quality PSI %v), want drifting", h.Verdict, h.QualityPSI)
	}
	if h.QualityMetric != "output" {
		t.Fatalf("quality metric = %q, want output", h.QualityMetric)
	}
}

func TestQualitySamplingFraction(t *testing.T) {
	m := New(Config{SampleFraction: 0.25})
	m.Attach("m1", "gmm", 1, testLineage())
	sampled := 0
	for i := 0; i < 100; i++ {
		if m.SampleQuality("m1") {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 requests at fraction 0.25, want 25", sampled)
	}
	if m.SampleQuality("unknown") {
		t.Fatal("unknown model should never sample")
	}
}

func TestObserveDimUpdate(t *testing.T) {
	m := New(Config{MinWindowRows: 1})
	m.Attach("m1", "gmm", 1, testLineage())
	m.ObserveDimUpdate("R1", []float64{0.9})
	m.ObserveDimUpdate("nosuch", []float64{0.9})
	h, _ := m.Health("m1")
	if h.DimUpdatesSinceRefresh != 1 {
		t.Fatalf("dim updates = %d, want 1 (unknown table ignored)", h.DimUpdatesSinceRefresh)
	}
	if h.Columns[1].LiveRows != 1 || h.Columns[0].LiveRows != 0 {
		t.Fatalf("dim update touched wrong columns: %+v", h.Columns)
	}
}

func TestNilMonitorIsFree(t *testing.T) {
	var m *Monitor
	row := []float64{1, 2}
	m.Attach("x", "gmm", 1, nil)
	m.ObserveDimUpdate("t", row)
	m.ObserveQuality("x", 1)
	m.CheckAll()
	m.Detach("x")
	if m.SampleQuality("x") {
		t.Fatal("nil monitor sampled")
	}
	if lin := m.NoteRefresh("x", 1, "", 0); lin != nil {
		t.Fatal("nil monitor returned lineage")
	}
	if h := m.HealthAll(); h != nil {
		t.Fatal("nil monitor returned health")
	}
	if allocs := testing.AllocsPerRun(100, func() { m.ObserveJoined(row) }); allocs != 0 {
		t.Fatalf("nil ObserveJoined allocated %v times per run, want 0", allocs)
	}
}

func TestObserveJoinedAllocFree(t *testing.T) {
	m := New(Config{})
	m.Attach("m1", "gmm", 1, testLineage())
	row := []float64{0.1, 0.2}
	if allocs := testing.AllocsPerRun(100, func() { m.ObserveJoined(row) }); allocs != 0 {
		t.Fatalf("ObserveJoined allocated %v times per run, want 0", allocs)
	}
}

func TestMetricsCollector(t *testing.T) {
	fixed := time.Unix(1000, 0)
	m := New(Config{now: func() time.Time { return fixed }})
	m.Attach("m1", "gmm", 3, testLineage())
	reg := metrics.NewRegistry()
	reg.Collect(m.MetricsCollector())
	var sb strings.Builder
	reg.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		`factorml_model_drift_psi{model="m1"}`,
		`factorml_model_rows_since_refresh{model="m1"} 0`,
		`factorml_model_health{model="m1",verdict="fresh"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
