package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestRecentRingBoundsAndOrder(t *testing.T) {
	tr := New(Config{Recent: 3, SlowThreshold: time.Hour})
	for i := 0; i < 5; i++ {
		_, trace, _ := tr.StartRequest(context.Background(), "r", "")
		trace.SetName(string(rune('a' + i)))
		trace.Finish(200)
	}
	recs := tr.Recent()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recs))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if recs[i].Name != want {
			t.Fatalf("recent[%d] = %q, want %q", i, recs[i].Name, want)
		}
	}
}

func TestSlowListTailSampling(t *testing.T) {
	tr := New(Config{Slow: 2, SlowThreshold: time.Hour, Recent: 8})
	finish := func(name string, durMs float64, status int) {
		_, trace, _ := tr.StartRequest(context.Background(), name, "")
		trace.mu.Lock()
		trace.start = time.Now().Add(-time.Duration(durMs * float64(time.Millisecond)))
		trace.mu.Unlock()
		trace.Finish(status)
	}
	finish("fast1", 1, 200)
	finish("fast2", 2, 200)
	finish("slowest", 500, 200) // outranks fast1/fast2
	finish("err", 0.5, 500)     // errors outrank any healthy duration
	byName := map[string]bool{}
	for _, r := range tr.Slow() {
		byName[r.Name] = true
	}
	if !byName["err"] || !byName["slowest"] {
		t.Fatalf("slow list %v must retain the error and the slowest trace", byName)
	}
	// Worst first: the error leads.
	if tr.Slow()[0].Name != "err" {
		t.Fatalf("slow[0] = %q, want err", tr.Slow()[0].Name)
	}
}

func TestDebugHandlerServesWellFormedJSON(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Nanosecond})
	ctx, trace, _ := tr.StartRequest(context.Background(), "request", "")
	_, sp := Start(ctx, "engine.predict")
	sp.End()
	trace.Finish(200)

	for _, path := range []string{"/debug/traces", "/debug/traces/slow"} {
		rr := httptest.NewRecorder()
		tr.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 {
			t.Fatalf("%s: status %d", path, rr.Code)
		}
		var p debugPayload
		if err := json.Unmarshal(rr.Body.Bytes(), &p); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if len(p.Traces) != 1 || p.Traces[0].TraceID == "" || len(p.Traces[0].Spans) != 2 {
			t.Fatalf("%s: payload %+v", path, p)
		}
		if p.Stats.Sampled != 1 {
			t.Fatalf("%s: stats %+v", path, p.Stats)
		}
	}
}

// TestFlightRecorderConcurrentRecordScrape hammers the recorder with
// concurrent request recording, span churn and scrapes; run under
// -race it pins the locking discipline of the whole package.
func TestFlightRecorderConcurrentRecordScrape(t *testing.T) {
	tr := New(Config{Recent: 16, Slow: 8, SlowThreshold: time.Microsecond, MaxSpans: 32})
	const writers, scrapers, iters = 8, 4, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, trace, _ := tr.StartRequest(context.Background(), "req", "")
				ctx2, sp := Start(ctx, "engine.predict")
				var inner sync.WaitGroup
				for c := 0; c < 3; c++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						_, chunk := Start(ctx2, "engine.chunk")
						lk := chunk.Child("cache.lookup")
						lk.SetBool("hit", true)
						lk.End()
						chunk.End()
					}()
				}
				inner.Wait()
				sp.End()
				status := 200
				if i%17 == 0 {
					status = 500
				}
				trace.Finish(status)
			}
		}(w)
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rr := httptest.NewRecorder()
				tr.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/slow", nil))
				_ = tr.Recent()
				_ = tr.Stats()
			}
		}()
	}
	wg.Wait()

	st := tr.Stats()
	if st.Sampled != writers*iters {
		t.Fatalf("sampled %d, want %d", st.Sampled, writers*iters)
	}
	if st.Recorded != writers*iters {
		t.Fatalf("recorded %d, want %d", st.Recorded, writers*iters)
	}
	if st.Errors == 0 {
		t.Fatal("expected some errored traces")
	}
	slow := tr.Slow()
	if len(slow) == 0 || len(slow) > 8 {
		t.Fatalf("slow list size %d out of bounds", len(slow))
	}
}
