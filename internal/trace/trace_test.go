package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestUntracedStartIsZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "engine.predict")
		sp.SetAttr("k", "v")
		sp.SetInt("n", 42)
		child := sp.Child("cache.lookup")
		child.SetBool("hit", true)
		child.End()
		sp.End()
		if c2 != ctx {
			t.Fatal("untraced Start must return ctx unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced span path allocated %.1f/op, want 0", allocs)
	}
}

func TestNilTraceAndZeroSpanAreInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Traceparent() != "" {
		t.Fatal("nil trace must render empty IDs")
	}
	tr.SetName("x")
	tr.Finish(200)
	sp := tr.StartSpan(0, "x")
	if sp.Active() {
		t.Fatal("span from nil trace must be inert")
	}
	sp.End()
	sp.Fail("boom")
	if sp.Child("y").Active() {
		t.Fatal("child of inert span must be inert")
	}
}

func TestRequestTraceAssembly(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour})
	ctx, trace, reqID := tr.StartRequest(context.Background(), "request", "")
	if trace == nil {
		t.Fatal("default sampling must trace every request")
	}
	if reqID != trace.ID() || len(reqID) != 32 {
		t.Fatalf("request ID %q must be the 32-hex trace ID %q", reqID, trace.ID())
	}
	if FromContext(ctx) != trace {
		t.Fatal("context must carry the trace")
	}
	if RequestID(ctx) != reqID {
		t.Fatalf("RequestID(ctx) = %q, want %q", RequestID(ctx), reqID)
	}

	ctx2, eng := Start(ctx, "engine.predict")
	eng.SetAttr("model", "m1")
	eng.SetInt("rows", 128)
	_, chunk := Start(ctx2, "engine.chunk")
	lk := chunk.Child("cache.lookup")
	lk.SetBool("hit", false)
	lk.End()
	chunk.End()
	eng.End()
	trace.SetName("predict")
	trace.Finish(200)
	trace.Finish(200) // idempotent

	recs := tr.Recent()
	if len(recs) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Name != "predict" || rec.Status != 200 || rec.Error {
		t.Fatalf("bad record: %+v", rec)
	}
	names := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		names[s.Name] = s
	}
	for _, want := range []string{"predict", "engine.predict", "engine.chunk", "cache.lookup"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("trace misses span %q; has %+v", want, rec.Spans)
		}
	}
	if names["engine.predict"].Attrs["rows"] != "128" || names["engine.predict"].Attrs["model"] != "m1" {
		t.Fatalf("bad engine attrs: %v", names["engine.predict"].Attrs)
	}
	if names["cache.lookup"].Attrs["hit"] != "false" {
		t.Fatalf("bad lookup attrs: %v", names["cache.lookup"].Attrs)
	}
	// Tree shape: chunk's parent is engine.predict, lookup's parent is chunk.
	if names["engine.chunk"].Parent != names["engine.predict"].ID {
		t.Fatal("chunk span must parent to the engine span")
	}
	if names["cache.lookup"].Parent != names["engine.chunk"].ID {
		t.Fatal("lookup span must parent to the chunk span")
	}
	if rec.Spans[0].Parent != -1 {
		t.Fatal("root span must have parent -1")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, pid, sampled, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok || !sampled || tid != "0af7651916cd43dd8448eb211c80319c" || pid != "b7ad6b7169203331" {
		t.Fatalf("parse: %q %q %v %v", tid, pid, sampled, ok)
	}
	if got := FormatTraceparent(tid, pid, true); got != "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" {
		t.Fatalf("format: %q", got)
	}
	for _, bad := range []string{
		"",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",    // short
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
		"00-0af7651916cd43dd8448eb211c80319C-b7ad6b7169203331-01", // uppercase
		"00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad sep
	} {
		if _, _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestIncomingTraceparentAdoptedAndForcesSampling(t *testing.T) {
	tr := New(Config{SampleFraction: 0.000001, SlowThreshold: time.Hour})
	hdr := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	_, trace, reqID := tr.StartRequest(context.Background(), "r", hdr)
	if trace == nil {
		t.Fatal("sampled traceparent must force tracing")
	}
	if reqID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID not adopted: %q", reqID)
	}
	out := trace.Traceparent()
	if !strings.HasPrefix(out, "00-0af7651916cd43dd8448eb211c80319c-") || !strings.HasSuffix(out, "-01") {
		t.Fatalf("outgoing traceparent %q must keep the trace ID", out)
	}
	trace.Finish(200)
	if rec := tr.Slow(); len(rec) == 0 {
		// Not slow and not errored; with a tiny sample fraction the slow
		// list may legitimately hold it only if admitted as a filler.
		_ = rec
	}
}

func TestUnsampledRequestKeepsRequestID(t *testing.T) {
	tr := New(Config{SampleFraction: 1e-12})
	sampledSeen := false
	for i := 0; i < 50; i++ {
		ctx, trace, reqID := tr.StartRequest(context.Background(), "r", "")
		if trace != nil {
			sampledSeen = true
			trace.Finish(200)
			continue
		}
		if len(reqID) != 32 {
			t.Fatalf("unsampled request ID %q", reqID)
		}
		if FromContext(ctx) != nil {
			t.Fatal("unsampled ctx must carry no trace")
		}
		if RequestID(ctx) != reqID {
			t.Fatal("unsampled ctx must still carry the request ID")
		}
		_, sp := Start(ctx, "x")
		if sp.Active() {
			t.Fatal("span under unsampled ctx must be inert")
		}
	}
	if sampledSeen {
		t.Log("note: sampled at fraction 1e-12 (astronomically unlikely)")
	}
}

func TestMaxSpansCapCountsDropped(t *testing.T) {
	tr := New(Config{MaxSpans: 4, SlowThreshold: time.Hour})
	_, trace, _ := tr.StartRequest(context.Background(), "r", "")
	for i := 0; i < 10; i++ {
		trace.StartSpan(0, "s").End()
	}
	trace.Finish(200)
	rec := tr.Recent()[0]
	if len(rec.Spans) != 4 || rec.Dropped != 7 {
		t.Fatalf("spans=%d dropped=%d, want 4 and 7", len(rec.Spans), rec.Dropped)
	}
}

func TestSpanFailMarksTraceErrored(t *testing.T) {
	tr := New(Config{SlowThreshold: time.Hour})
	_, trace, _ := tr.StartRequest(context.Background(), "r", "")
	sp := trace.StartSpan(0, "admission")
	sp.Fail("rejected")
	sp.End()
	trace.Finish(200)
	rec := tr.Recent()[0]
	if !rec.Error {
		t.Fatal("span Fail must mark the trace errored")
	}
	if rec.Spans[1].Error != "rejected" {
		t.Fatalf("span error = %q", rec.Spans[1].Error)
	}
	// Errored traces are always retained in the slow list.
	if len(tr.Slow()) != 1 {
		t.Fatal("errored trace must land in the slow list")
	}
}

func TestFormatInt(t *testing.T) {
	for v, want := range map[int64]string{0: "0", 7: "7", -3: "-3", 1234567: "1234567", -9007199254740993: "-9007199254740993"} {
		if got := formatInt(v); got != want {
			t.Fatalf("formatInt(%d) = %q, want %q", v, got, want)
		}
	}
}
