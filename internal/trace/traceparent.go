package trace

import "math/rand/v2"

// W3C Trace Context (traceparent) support: version 00 headers of the
// form 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>. Only the
// sampled flag (bit 0) is interpreted.

const hexDigits = "0123456789abcdef"

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header. ok is false for
// malformed headers, unknown versions and all-zero IDs (the spec's
// invalid values), in which case the caller mints a fresh trace ID.
func ParseTraceparent(h string) (traceID, parentSpan string, sampled, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false, false
	}
	ver, tid, pid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if ver != "00" || !isHex(tid) || !isHex(pid) || !isHex(flags) {
		return "", "", false, false
	}
	if allZero(tid) || allZero(pid) {
		return "", "", false, false
	}
	sampledFlag := (hexVal(flags[1]) & 1) == 1
	return tid, pid, sampledFlag, true
}

func hexVal(c byte) int {
	if c >= 'a' {
		return int(c-'a') + 10
	}
	return int(c - '0')
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(traceID, spanID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + spanID + "-" + flags
}

func hex16(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func randNonZero() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// newTraceID mints a random 32-hex-character (128-bit) trace ID.
func newTraceID() string { return hex16(randNonZero()) + hex16(rand.Uint64()) }

// newSpanID mints a random 16-hex-character (64-bit) span ID.
func newSpanID() string { return hex16(randNonZero()) }
