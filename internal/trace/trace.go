// Package trace is a dependency-free, context-propagated tracing layer
// for the serving and training stack: one Trace per request (or training
// pass), nested spans with attributes, W3C traceparent in/out, and a
// bounded in-memory flight recorder (recent-N ring plus slowest-N list
// with tail sampling that always keeps errors and over-threshold
// requests) exported as JSON at /debug/traces and /debug/traces/slow.
//
// The cost discipline mirrors the rest of the hot path: when a context
// carries no sampled trace, Start returns the context unchanged and a
// zero Span whose methods are no-ops — zero allocations, pinned by a
// testing.AllocsPerRun test. When a trace is active, span starts and
// attribute writes take one short mutex on the request's own Trace (no
// global locks); the recorder's lock is taken once per request at
// Finish and at scrape time.
package trace

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Config tunes a Tracer. The zero value selects the defaults below.
type Config struct {
	// SampleFraction is the fraction of requests that record spans
	// (0 < f <= 1). 0 selects 1.0 (trace everything); to turn tracing
	// off entirely, run without a Tracer. A request arriving with a
	// sampled traceparent is always traced, regardless of the fraction.
	SampleFraction float64

	// SlowThreshold is the duration at or above which a finished trace
	// is always offered to the slowest-N list. 0 selects 100ms.
	SlowThreshold time.Duration

	// Recent bounds the most-recent-traces ring. 0 selects 128.
	Recent int

	// Slow bounds the slowest-traces list. 0 selects 64.
	Slow int

	// MaxSpans caps the spans recorded per trace; further starts are
	// counted as dropped instead of growing without bound (a large
	// predict batch can probe thousands of cache entries). 0 selects 512.
	MaxSpans int
}

func (c Config) withDefaults() Config {
	if c.SampleFraction <= 0 || c.SampleFraction > 1 {
		c.SampleFraction = 1
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.Recent <= 0 {
		c.Recent = 128
	}
	if c.Slow <= 0 {
		c.Slow = 64
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// Tracer decides sampling, issues request traces and owns the flight
// recorder. Safe for concurrent use.
type Tracer struct {
	cfg Config
	rec recorder

	requests  counter // StartRequest calls
	sampled   counter // traces that recorded spans
	errCount  counter // finished traces marked errored
	slowCount counter // finished traces at/over SlowThreshold
}

// New builds a Tracer; zero Config fields select defaults.
func New(cfg Config) *Tracer {
	t := &Tracer{cfg: cfg.withDefaults()}
	t.rec.init(t.cfg.Recent, t.cfg.Slow)
	return t
}

// Config returns the tracer's effective (default-filled) configuration.
func (t *Tracer) Config() Config { return t.cfg }

// StartRequest begins a request-scoped trace. parentHeader is the
// incoming W3C traceparent ("" for none): a valid header's trace ID is
// adopted as this request's ID, and its sampled flag forces sampling.
// The returned context always carries the request ID (for logging);
// it carries a live *Trace only when the request was sampled, in which
// case tr is non-nil and the caller must eventually call tr.Finish.
// The request ID doubles as the X-Request-Id response header.
func (t *Tracer) StartRequest(ctx Context, name, parentHeader string) (Context, *Trace, string) {
	tid, parentSpan, forced, ok := ParseTraceparent(parentHeader)
	if !ok {
		tid = newTraceID()
	}
	t.requests.add(1)
	if !forced && !t.sampleHit() {
		return withRef(ctx, &ctxRef{reqID: tid}), nil, tid
	}
	t.sampled.add(1)
	tr := &Trace{
		tracer:     t,
		id:         tid,
		parentSpan: parentSpan,
		rootSpanID: newSpanID(),
		start:      time.Now(),
		spans:      make([]spanData, 1, 16),
	}
	tr.spans[0] = spanData{name: name, parent: -1, durNs: -1}
	return withRef(ctx, &ctxRef{t: tr, span: 0, reqID: tid}), tr, tid
}

func (t *Tracer) sampleHit() bool {
	if t.cfg.SampleFraction >= 1 {
		return true
	}
	return rand.Float64() < t.cfg.SampleFraction
}

// Trace is one request's (or pass's) span tree under assembly. Span
// starts, attribute writes and Finish are safe from concurrent
// goroutines (the engine fans a request across the worker pool).
type Trace struct {
	tracer     *Tracer
	id         string // 32 hex chars
	parentSpan string // incoming parent span ID ("" when this is a root)
	rootSpanID string // 16 hex chars, emitted in Traceparent
	start      time.Time

	mu      sync.Mutex
	spans   []spanData
	dropped int
	err     bool
	status  int
	done    bool
}

type spanData struct {
	name    string
	parent  int32
	startNs int64 // offset from trace start
	durNs   int64 // -1 while open
	attrs   []attr
	errMsg  string
}

type attr struct{ k, v string }

// ID returns the 32-hex-character trace ID (also the request ID).
// Nil-safe: a nil Trace returns "".
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Traceparent renders the outgoing W3C traceparent header for this
// trace (always sampled — an assembled trace is by definition kept).
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return FormatTraceparent(t.id, t.rootSpanID, true)
}

// SetName renames the root span (the HTTP layer resolves the stable
// endpoint label only after routing).
func (t *Trace) SetName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.spans[0].name = name
	}
	t.mu.Unlock()
}

// StartSpan opens a child of the span at index parent (0 is the root).
// Nil-safe: on a nil Trace, or past the MaxSpans cap, the returned zero
// Span is inert.
func (t *Trace) StartSpan(parent int32, name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	if t.done || len(t.spans) >= t.tracer.cfg.MaxSpans {
		if !t.done {
			t.dropped++
		}
		t.mu.Unlock()
		return Span{}
	}
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanData{
		name:    name,
		parent:  parent,
		startNs: time.Since(t.start).Nanoseconds(),
		durNs:   -1,
	})
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// Finish closes the trace with the final HTTP status (0 for non-HTTP
// traces), ends the root span and any span left open, and hands the
// assembled record to the flight recorder. Statuses >= 500 mark the
// trace errored (as does any span's Fail). Finish is idempotent.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.status = status
	if status >= 500 {
		t.err = true
	}
	end := time.Since(t.start).Nanoseconds()
	for i := range t.spans {
		if t.spans[i].durNs < 0 {
			t.spans[i].durNs = end - t.spans[i].startNs
		}
	}
	rec := t.snapshotLocked(end)
	t.mu.Unlock()

	tt := t.tracer
	if rec.Error {
		tt.errCount.add(1)
	}
	slow := end >= tt.cfg.SlowThreshold.Nanoseconds()
	if slow {
		tt.slowCount.add(1)
	}
	tt.rec.keep(rec, rec.Error || slow)
}

// Span is a lightweight handle to one span of a Trace. The zero Span is
// valid and inert: every method is a no-op, so call sites need no nil
// checks and the untraced hot path allocates nothing.
type Span struct {
	t   *Trace
	idx int32
}

// Active reports whether the span records anything (false for the zero
// Span), letting hot paths skip attribute formatting entirely.
func (s Span) Active() bool { return s.t != nil }

// Child opens a sub-span of s. On an inert span it returns an inert span.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.StartSpan(s.idx, name)
}

// End closes the span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if !s.t.done {
		sd := &s.t.spans[s.idx]
		if sd.durNs < 0 {
			sd.durNs = time.Since(s.t.start).Nanoseconds() - sd.startNs
		}
	}
	s.t.mu.Unlock()
}

// SetAttr attaches a string attribute.
func (s Span) SetAttr(k, v string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if !s.t.done {
		sd := &s.t.spans[s.idx]
		sd.attrs = append(sd.attrs, attr{k, v})
	}
	s.t.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s Span) SetInt(k string, v int64) {
	if s.t == nil {
		return
	}
	s.SetAttr(k, formatInt(v))
}

// SetBool attaches a boolean attribute.
func (s Span) SetBool(k string, v bool) {
	if s.t == nil {
		return
	}
	if v {
		s.SetAttr(k, "true")
	} else {
		s.SetAttr(k, "false")
	}
}

// Fail records an error message on the span and marks the whole trace
// errored, which guarantees retention in the flight recorder.
func (s Span) Fail(msg string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if !s.t.done {
		s.t.spans[s.idx].errMsg = msg
		s.t.err = true
	}
	s.t.mu.Unlock()
}

// counter is a tiny mutex-guarded counter (the tracer's bookkeeping is
// far off the hot path, but scrapes race with requests).
type counter struct {
	mu sync.Mutex
	v  uint64
}

func (c *counter) add(n uint64) { c.mu.Lock(); c.v += n; c.mu.Unlock() }
func (c *counter) load() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.v }

func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
