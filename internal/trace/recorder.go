package trace

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"factorml/internal/api"
)

// TraceRecord is the immutable JSON form of a finished trace, as served
// by /debug/traces and /debug/traces/slow.
type TraceRecord struct {
	TraceID    string       `json:"trace_id"`
	RequestID  string       `json:"request_id"` // same value as X-Request-Id
	ParentSpan string       `json:"parent_span,omitempty"`
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationMs float64      `json:"duration_ms"`
	Status     int          `json:"status,omitempty"`
	Error      bool         `json:"error"`
	Dropped    int          `json:"dropped_spans,omitempty"`
	Spans      []SpanRecord `json:"spans"`
}

// SpanRecord is one span of a TraceRecord. Parent is the index of the
// parent span in Spans (-1 for the root), so the tree reconstructs
// without span IDs.
type SpanRecord struct {
	ID      int32             `json:"id"`
	Parent  int32             `json:"parent"`
	Name    string            `json:"name"`
	StartUs float64           `json:"start_us"`
	DurUs   float64           `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// snapshotLocked renders the trace into its immutable record; callers
// hold t.mu.
func (t *Trace) snapshotLocked(endNs int64) *TraceRecord {
	rec := &TraceRecord{
		TraceID:    t.id,
		RequestID:  t.id,
		ParentSpan: t.parentSpan,
		Name:       t.spans[0].name,
		Start:      t.start,
		DurationMs: float64(endNs) / 1e6,
		Status:     t.status,
		Error:      t.err,
		Dropped:    t.dropped,
		Spans:      make([]SpanRecord, len(t.spans)),
	}
	for i, sd := range t.spans {
		sr := SpanRecord{
			ID:      int32(i),
			Parent:  sd.parent,
			Name:    sd.name,
			StartUs: float64(sd.startNs) / 1e3,
			DurUs:   float64(sd.durNs) / 1e3,
			Error:   sd.errMsg,
		}
		if len(sd.attrs) > 0 {
			sr.Attrs = make(map[string]string, len(sd.attrs))
			for _, a := range sd.attrs {
				sr.Attrs[a.k] = a.v
			}
		}
		rec.Spans[i] = sr
	}
	return rec
}

// recorder is the bounded flight recorder: a ring of the most recent
// traces plus a slowest-N list with tail sampling — errored and
// over-threshold traces are always offered a slot and outrank faster,
// healthy ones.
type recorder struct {
	mu      sync.Mutex
	recent  []*TraceRecord // ring, nil until filled
	next    int
	slow    []*TraceRecord
	slowCap int
	total   uint64
}

func (r *recorder) init(recentCap, slowCap int) {
	r.recent = make([]*TraceRecord, recentCap)
	r.slowCap = slowCap
}

// rank orders slow-slot candidates: errors above successes, then by
// duration.
func rank(rec *TraceRecord) (int, float64) {
	e := 0
	if rec.Error {
		e = 1
	}
	return e, rec.DurationMs
}

func rankLess(a, b *TraceRecord) bool {
	ea, da := rank(a)
	eb, db := rank(b)
	if ea != eb {
		return ea < eb
	}
	return da < db
}

func (r *recorder) keep(rec *TraceRecord, forceSlow bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.recent[r.next] = rec
	r.next = (r.next + 1) % len(r.recent)

	if len(r.slow) < r.slowCap {
		if forceSlow || len(r.slow) == 0 || !rankLess(rec, r.slow[minIdx(r.slow)]) {
			r.slow = append(r.slow, rec)
		}
		return
	}
	mi := minIdx(r.slow)
	if forceSlow || !rankLess(rec, r.slow[mi]) {
		r.slow[mi] = rec
	}
}

func minIdx(s []*TraceRecord) int {
	mi := 0
	for i := 1; i < len(s); i++ {
		if rankLess(s[i], s[mi]) {
			mi = i
		}
	}
	return mi
}

// Recent returns the retained most-recent traces, newest first.
func (t *Tracer) Recent() []*TraceRecord {
	t.rec.mu.Lock()
	defer t.rec.mu.Unlock()
	n := len(t.rec.recent)
	out := make([]*TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		if rec := t.rec.recent[(t.rec.next-i+n)%n]; rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// Slow returns the retained slowest traces, worst first (errors above
// successes, then by duration).
func (t *Tracer) Slow() []*TraceRecord {
	t.rec.mu.Lock()
	out := append([]*TraceRecord{}, t.rec.slow...)
	t.rec.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return rankLess(out[j], out[i]) })
	return out
}

// Stats is the tracer's own bookkeeping, embedded in /statsz and the
// debug payloads.
type Stats struct {
	Requests        uint64  `json:"requests"`
	Sampled         uint64  `json:"sampled"`
	Errors          uint64  `json:"errors"`
	Slow            uint64  `json:"slow"`
	Recorded        uint64  `json:"recorded"`
	SampleFraction  float64 `json:"sample_fraction"`
	SlowThresholdMs float64 `json:"slow_threshold_ms"`
}

// Stats returns a snapshot of the tracer's counters.
func (t *Tracer) Stats() Stats {
	t.rec.mu.Lock()
	recorded := t.rec.total
	t.rec.mu.Unlock()
	return Stats{
		Requests:        t.requests.load(),
		Sampled:         t.sampled.load(),
		Errors:          t.errCount.load(),
		Slow:            t.slowCount.load(),
		Recorded:        recorded,
		SampleFraction:  t.cfg.SampleFraction,
		SlowThresholdMs: float64(t.cfg.SlowThreshold) / float64(time.Millisecond),
	}
}

// debugPayload is the JSON body of the /debug/traces endpoints.
type debugPayload struct {
	Stats  Stats          `json:"stats"`
	Traces []*TraceRecord `json:"traces"`
}

// DebugHandler serves the flight recorder as JSON: paths ending in
// /slow render the slowest-N list (worst first); anything else renders
// the recent ring (newest first). Mount it at both /debug/traces and
// /debug/traces/slow.
func (t *Tracer) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var traces []*TraceRecord
		if strings.HasSuffix(r.URL.Path, "/slow") {
			traces = t.Slow()
		} else {
			traces = t.Recent()
		}
		if traces == nil {
			traces = []*TraceRecord{}
		}
		api.WriteJSON(w, http.StatusOK, debugPayload{Stats: t.Stats(), Traces: traces})
	})
}
