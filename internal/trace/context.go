package trace

import "context"

// Context aliases context.Context so the package's own files read
// without importing both names.
type Context = context.Context

// ctxKey is the single context key; the value is a *ctxRef.
type ctxKey struct{}

// ctxRef points a context at its trace: the live *Trace (nil when the
// request was not sampled — the request ID still propagates for logs)
// and the index of the current span, so Start nests correctly.
type ctxRef struct {
	t     *Trace
	span  int32
	reqID string
}

func withRef(ctx Context, ref *ctxRef) Context {
	return context.WithValue(ctx, ctxKey{}, ref)
}

// FromContext returns the live trace carried by ctx, or nil. The nil
// return composes with the nil-safe Trace/Span methods: code that
// plumbs a *Trace explicitly never needs a conditional.
func FromContext(ctx Context) *Trace {
	if ref, ok := ctx.Value(ctxKey{}).(*ctxRef); ok {
		return ref.t
	}
	return nil
}

// RequestID returns the request ID carried by ctx ("" when the request
// did not pass through a Tracer). Unsampled requests keep their ID.
func RequestID(ctx Context) string {
	if ref, ok := ctx.Value(ctxKey{}).(*ctxRef); ok {
		return ref.reqID
	}
	return ""
}

// Start opens a span named name as a child of ctx's current span and
// returns a context whose current span is the new one. When ctx carries
// no sampled trace, ctx is returned unchanged with an inert Span —
// zero allocations, so the predict hot path can call it unconditionally.
func Start(ctx Context, name string) (Context, Span) {
	ref, ok := ctx.Value(ctxKey{}).(*ctxRef)
	if !ok || ref.t == nil {
		return ctx, Span{}
	}
	sp := ref.t.StartSpan(ref.span, name)
	if sp.t == nil { // span cap reached
		return ctx, sp
	}
	return withRef(ctx, &ctxRef{t: ref.t, span: sp.idx, reqID: ref.reqID}), sp
}
