// Package core distills the paper's central idea — exact factorization of
// the matrix computations inside ML training over a join — into reusable
// primitives shared by the GMM (EM) and NN (backprop) trainers:
//
//   - Partition: how the joined feature vector x = [xS xR1 … xRq] splits
//     across the base relations.
//   - BlockedSym: a symmetric d×d matrix (e.g. Σ⁻¹) cut into partition
//     blocks, so quadratic forms decompose per Eq. 7–12 / Eq. 19–21 of the
//     paper.
//   - QuadCache: per-dimension-tuple cached quantities (PD_R, the self term
//     PD_Rᵀ I_RR PD_R, and the cross vector I_SR·PD_R) that are computed
//     once per distinct dimension tuple and reused for every matching fact
//     tuple — the source of F-GMM's savings.
//   - Ops: floating-point operation counters, so the paper's closed-form
//     saving rate Δτ/τ (§V-B) can be verified against measured counts.
//
// Every decomposition here is exact: no approximation is introduced, which
// is why the M-, S- and F- algorithm families produce identical models.
package core
