package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"factorml/internal/linalg"
)

func randSPD(rng *rand.Rand, n int) *linalg.Dense {
	a := linalg.NewDense(n, n)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	spd := linalg.NewMatMul(a, a.Transpose())
	spd.AddDiag(float64(n))
	return spd
}

func TestNewPartition(t *testing.T) {
	p := NewPartition([]int{2, 3, 1})
	if p.D != 6 || p.Parts() != 3 {
		t.Fatalf("partition = %+v", p)
	}
	if p.Offs[0] != 0 || p.Offs[1] != 2 || p.Offs[2] != 5 {
		t.Fatalf("offsets = %v", p.Offs)
	}
	x := []float64{0, 1, 2, 3, 4, 5}
	got := p.Slice(x, 1)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("Slice = %v", got)
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPartition(nil)
}

func TestSlicePanicsOnWidthMismatch(t *testing.T) {
	p := NewPartition([]int{1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Slice([]float64{1, 2, 3}, 0)
}

func TestBlockSymAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPartition([]int{2, 3, 2})
	m := randSPD(rng, p.D)
	bs := BlockSym(m, p)
	if !bs.Assemble().Equalish(m, 0) {
		t.Fatal("Assemble(BlockSym(m)) != m")
	}
	r, c := bs.B[1][2].Dims()
	if r != 3 || c != 2 {
		t.Fatalf("block(1,2) dims = %dx%d", r, c)
	}
}

func TestNewBlockedZeroShapes(t *testing.T) {
	p := NewPartition([]int{1, 4})
	bs := NewBlockedZero(p)
	r, c := bs.B[1][0].Dims()
	if r != 4 || c != 1 {
		t.Fatalf("zero block dims = %dx%d", r, c)
	}
	if !bs.Assemble().Equalish(linalg.NewDense(5, 5), 0) {
		t.Fatal("NewBlockedZero not zero")
	}
}

// The factorized quadratic form must equal the monolithic one for any
// partition — this is the exactness guarantee of F-GMM's E-step.
func TestFactQuadMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		parts := 2 + r.Intn(3) // S + 1..3 dimension relations
		dims := make([]int, parts)
		for i := range dims {
			dims[i] = 1 + r.Intn(4)
		}
		p := NewPartition(dims)
		iMat := randSPD(rng, p.D)
		bs := BlockSym(iMat, p)

		x := make([]float64, p.D)
		mu := make([]float64, p.D)
		for i := range x {
			x[i] = r.NormFloat64()
			mu[i] = r.NormFloat64()
		}
		// Monolithic: (x-µ)ᵀ I (x-µ).
		pd := make([]float64, p.D)
		linalg.VecSub(pd, x, mu)
		want := linalg.QuadForm(iMat, pd)

		// Factorized.
		var ops Ops
		caches := make([]*QuadCache, parts-1)
		for i := 1; i < parts; i++ {
			caches[i-1] = &QuadCache{}
			FillQuadCache(caches[i-1], bs, i, p.Slice(x, i), mu, &ops)
		}
		pds := make([]float64, dims[0])
		linalg.VecSub(pds, p.Slice(x, 0), p.Slice(mu, 0))
		got := FactQuad(bs, pds, caches, &ops)
		scale := math.Max(1, math.Abs(want))
		return math.Abs(got-want) < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFillQuadCacheReusesBuffers(t *testing.T) {
	p := NewPartition([]int{2, 3})
	bs := BlockSym(randSPD(rand.New(rand.NewSource(5)), 5), p)
	mu := make([]float64, 5)
	var ops Ops
	c := &QuadCache{}
	FillQuadCache(c, bs, 1, []float64{1, 2, 3}, mu, &ops)
	pd0 := &c.PD[0]
	FillQuadCache(c, bs, 1, []float64{4, 5, 6}, mu, &ops)
	if &c.PD[0] != pd0 {
		t.Fatal("FillQuadCache reallocated PD despite sufficient capacity")
	}
	if c.PD[0] != 4 {
		t.Fatalf("PD not refreshed: %v", c.PD)
	}
}

func TestOpsAccounting(t *testing.T) {
	var o Ops
	o.AddQuadForm(3)
	if o.Mul != 9 || o.Adds != 8 {
		t.Fatalf("AddQuadForm: %+v", o)
	}
	o = Ops{}
	o.AddMatVec(2, 3)
	if o.Mul != 6 || o.Adds != 4 {
		t.Fatalf("AddMatVec: %+v", o)
	}
	o = Ops{}
	o.AddOuter(2, 3)
	if o.Mul != 8 || o.Adds != 6 {
		t.Fatalf("AddOuter: %+v", o)
	}
	o = Ops{}
	o.AddDot(4)
	if o.Mul != 4 || o.Adds != 3 {
		t.Fatalf("AddDot: %+v", o)
	}
	a := Ops{Mul: 5, Adds: 2}
	b := Ops{Mul: 1, Adds: 1}
	if s := a.Plus(b); s.Mul != 6 || s.Adds != 3 {
		t.Fatalf("Plus: %+v", s)
	}
	if d := a.Minus(b); d.Mul != 4 || d.Adds != 1 {
		t.Fatalf("Minus: %+v", d)
	}
}

func TestOpsMergeScaleTotal(t *testing.T) {
	a := Ops{Mul: 5, Adds: 2}
	a.Add(Ops{Mul: 3, Adds: 7})
	if a.Mul != 8 || a.Adds != 9 {
		t.Fatalf("Add: %+v", a)
	}
	if got := a.Total(); got != 17 {
		t.Fatalf("Total = %d, want 17", got)
	}
	if s := a.Scale(3); s.Mul != 24 || s.Adds != 27 {
		t.Fatalf("Scale: %+v", s)
	}
	// Add over a zero counter is the identity, and composing Add with Scale
	// matches the planner's estimate-building pattern: per-kernel charge,
	// scale by row count, merge into the running total.
	var total Ops
	var kernel Ops
	kernel.AddQuadForm(3) // 9 muls, 8 adds
	total.Add(kernel.Scale(10))
	if total.Mul != 90 || total.Adds != 80 {
		t.Fatalf("Add(Scale): %+v", total)
	}
}
