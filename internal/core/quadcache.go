package core

import (
	"factorml/internal/linalg"
)

// QuadCache holds the per-dimension-tuple quantities of the factorized
// E-step quadratic form (paper Eq. 7–12). For a dimension tuple with
// features x_R, relation part i, Gaussian component mean µ and blocked
// inverse covariance I:
//
//	PD     = x_R − µ_Ri                        (Eq. 8/20)
//	Self   = PDᵀ · I_ii · PD                   (the LR term, Eq. 12)
//	CrossS = I_0i · PD  (length dS)            (so UR+LL = 2·PDS·CrossS)
//
// The whole quadratic form for a joined tuple then needs only
// dS²+O(dS·q) work per fact tuple instead of d².
type QuadCache struct {
	PD     []float64
	Self   float64
	CrossS []float64
}

// FillQuadCache computes the cache for dimension part i (i ≥ 1) of the
// partition, given the dimension tuple's features xr, the component mean µ
// (full joined width) and the blocked inverse covariance. It reuses dst's
// slices when capacities allow and charges the work to ops.
func FillQuadCache(dst *QuadCache, bs *BlockedSym, i int, xr []float64, mu []float64, ops *Ops) {
	p := bs.P
	di := p.Dims[i]
	d0 := p.Dims[0]
	if cap(dst.PD) < di {
		dst.PD = make([]float64, di)
	}
	dst.PD = dst.PD[:di]
	muI := p.Slice(mu, i)
	linalg.VecSub(dst.PD, xr, muI)
	ops.AddSub(di)

	dst.Self = linalg.QuadForm(bs.B[i][i], dst.PD)
	ops.AddQuadForm(di)

	if cap(dst.CrossS) < d0 {
		dst.CrossS = make([]float64, d0)
	}
	dst.CrossS = dst.CrossS[:d0]
	linalg.MatVec(dst.CrossS, bs.B[0][i], dst.PD)
	ops.AddMatVec(d0, di)
}

// FactQuad completes the quadratic form (x−µ)ᵀ I (x−µ) for one fact tuple:
// pds is the fact part PD_S = x_S − µ_S (already formed by the caller),
// caches holds one QuadCache per dimension part (index 0 ↔ part 1).
// Cross terms between two dimension parts (multi-way case, paper Eq. 19
// with i≠j, i,j ≥ 1) are evaluated through the cached PDs.
func FactQuad(bs *BlockedSym, pds []float64, caches []*QuadCache, ops *Ops) float64 {
	q := linalg.QuadForm(bs.B[0][0], pds)
	ops.AddQuadForm(len(pds))
	for _, c := range caches {
		q += 2*linalg.Dot(pds, c.CrossS) + c.Self
		ops.AddDot(len(pds))
		ops.Adds += 3
		ops.Mul++
	}
	for i := 0; i < len(caches); i++ {
		for j := i + 1; j < len(caches); j++ {
			q += 2 * linalg.BilinearForm(caches[i].PD, bs.B[i+1][j+1], caches[j].PD)
			ops.AddBilinear(len(caches[i].PD), len(caches[j].PD))
			ops.Adds++
			ops.Mul++
		}
	}
	return q
}
