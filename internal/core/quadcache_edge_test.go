package core

import (
	"math"
	"math/rand"
	"testing"

	"factorml/internal/linalg"
)

// TestFillQuadCacheZeroWidthDimension pins the degenerate partition the
// incremental-maintenance path can produce: a dimension relation with no
// feature columns. Its cache must be empty-but-valid (zero-length PD,
// zero Self, a zero cross vector) and FactQuad must still match the
// monolithic quadratic form.
func TestFillQuadCacheZeroWidthDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := NewPartition([]int{2, 0, 3})
	iMat := randSPD(rng, p.D)
	bs := BlockSym(iMat, p)

	x := make([]float64, p.D)
	mu := make([]float64, p.D)
	for i := range x {
		x[i] = rng.NormFloat64()
		mu[i] = rng.NormFloat64()
	}

	var ops Ops
	caches := make([]*QuadCache, 2)
	for i := 1; i <= 2; i++ {
		caches[i-1] = &QuadCache{}
		FillQuadCache(caches[i-1], bs, i, p.Slice(x, i), mu, &ops)
	}
	if len(caches[0].PD) != 0 {
		t.Fatalf("zero-width PD has length %d", len(caches[0].PD))
	}
	if caches[0].Self != 0 {
		t.Fatalf("zero-width Self = %g, want 0", caches[0].Self)
	}
	if len(caches[0].CrossS) != 2 {
		t.Fatalf("zero-width CrossS has length %d, want dS=2", len(caches[0].CrossS))
	}
	for i, v := range caches[0].CrossS {
		if v != 0 {
			t.Fatalf("zero-width CrossS[%d] = %g, want 0", i, v)
		}
	}

	pd := make([]float64, p.D)
	linalg.VecSub(pd, x, mu)
	want := linalg.QuadForm(iMat, pd)
	pds := make([]float64, p.Dims[0])
	linalg.VecSub(pds, p.Slice(x, 0), p.Slice(mu, 0))
	got := FactQuad(bs, pds, caches, &ops)
	if d := math.Abs(got - want); d > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("FactQuad with a zero-width part = %g, monolithic = %g (diff %g)", got, want, d)
	}
}

// TestFactQuadNoDimensionCaches covers the other boundary: a partition
// with only the fact part, where FactQuad degenerates to the plain
// quadratic form over PD_S.
func TestFactQuadNoDimensionCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := NewPartition([]int{4})
	iMat := randSPD(rng, 4)
	bs := BlockSym(iMat, p)
	pds := []float64{0.5, -1, 2, 0.25}
	var ops Ops
	got := FactQuad(bs, pds, nil, &ops)
	want := linalg.QuadForm(iMat, pds)
	if got != want {
		t.Fatalf("FactQuad without caches = %g, QuadForm = %g", got, want)
	}
}
