package core

import (
	"fmt"

	"factorml/internal/linalg"
)

// Partition records how a joined feature vector of width D is split across
// the relations [S, R1, …, Rq] (paper notation: dS = Dims[0] = d_{R0}).
type Partition struct {
	Dims []int // feature width per relation part
	Offs []int // offset of each part within the joined vector
	D    int   // total width
}

// NewPartition builds a partition from per-relation widths.
func NewPartition(dims []int) Partition {
	if len(dims) == 0 {
		panic("core: empty partition")
	}
	p := Partition{Dims: append([]int{}, dims...), Offs: make([]int, len(dims))}
	for i, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("core: negative partition dim %d", d))
		}
		p.Offs[i] = p.D
		p.D += d
	}
	return p
}

// Parts returns the number of relation parts (1 + q).
func (p Partition) Parts() int { return len(p.Dims) }

// Slice returns the sub-vector of x belonging to part i.
func (p Partition) Slice(x []float64, i int) []float64 {
	if len(x) != p.D {
		panic(fmt.Sprintf("core: vector length %d does not match partition width %d", len(x), p.D))
	}
	return x[p.Offs[i] : p.Offs[i]+p.Dims[i]]
}

// BlockedSym is a symmetric matrix cut into partition blocks:
// B[i][j] has shape Dims[i]×Dims[j] (paper Eq. 21: I_mn).
type BlockedSym struct {
	P Partition
	B [][]*linalg.Dense
}

// BlockSym partitions the symmetric d×d matrix m.
func BlockSym(m *linalg.Dense, p Partition) *BlockedSym {
	r, c := m.Dims()
	if r != p.D || c != p.D {
		panic(fmt.Sprintf("core: matrix %dx%d does not match partition width %d", r, c, p.D))
	}
	nb := p.Parts()
	bs := &BlockedSym{P: p, B: make([][]*linalg.Dense, nb)}
	for i := 0; i < nb; i++ {
		bs.B[i] = make([]*linalg.Dense, nb)
		for j := 0; j < nb; j++ {
			bs.B[i][j] = m.Block(p.Offs[i], p.Offs[j], p.Dims[i], p.Dims[j])
		}
	}
	return bs
}

// Assemble reconstitutes the full matrix from the blocks (used in tests and
// when writing Σ back from factorized accumulators).
func (bs *BlockedSym) Assemble() *linalg.Dense {
	m := linalg.NewDense(bs.P.D, bs.P.D)
	for i := range bs.B {
		for j := range bs.B[i] {
			m.SetBlock(bs.P.Offs[i], bs.P.Offs[j], bs.B[i][j])
		}
	}
	return m
}

// AssembleInto reconstitutes the full matrix from the blocks into dst
// (which must be D×D), so per-iteration accumulator reads reuse one
// destination instead of allocating a fresh Dense each EM step.
func (bs *BlockedSym) AssembleInto(dst *linalg.Dense) {
	for i := range bs.B {
		for j := range bs.B[i] {
			dst.SetBlock(bs.P.Offs[i], bs.P.Offs[j], bs.B[i][j])
		}
	}
}

// Zero clears every block in place, recycling the accumulator across EM
// iterations.
func (bs *BlockedSym) Zero() {
	for i := range bs.B {
		for j := range bs.B[i] {
			bs.B[i][j].Zero()
		}
	}
}

// NewBlockedZero returns a BlockedSym with zero blocks of the partition's
// shapes (an accumulator for factorized Σ updates, paper Eq. 14/23).
func NewBlockedZero(p Partition) *BlockedSym {
	nb := p.Parts()
	bs := &BlockedSym{P: p, B: make([][]*linalg.Dense, nb)}
	for i := 0; i < nb; i++ {
		bs.B[i] = make([]*linalg.Dense, nb)
		for j := 0; j < nb; j++ {
			bs.B[i][j] = linalg.NewDense(p.Dims[i], p.Dims[j])
		}
	}
	return bs
}
