package core

// Ops counts floating-point operations attributed to the training math
// (join bookkeeping excluded). Trainers charge analytic counts at each
// kernel call site — e.g. a d×d quadratic form charges d² multiplications —
// which is exactly the accounting the paper's §V-B saving-rate analysis
// uses, so the closed form Δτ/τ can be checked against these counters.
//
// The same accounting doubles as the planner's cost model: internal/plan
// composes per-kernel Ops with Scale and Add to price a whole training run
// per strategy before it starts, so estimated and measured counters are
// directly comparable.
type Ops struct {
	Mul  int64 // multiplications
	Adds int64 // additions and subtractions
}

// AddQuadForm charges a d-dimensional quadratic form xᵀAx.
func (o *Ops) AddQuadForm(d int) {
	o.Mul += int64(d) * int64(d)
	o.Adds += int64(d)*int64(d) - 1
}

// AddBilinear charges xᵀAy with len(x)=r, len(y)=c.
func (o *Ops) AddBilinear(r, c int) {
	o.Mul += int64(r) * int64(c)
	o.Adds += int64(r)*int64(c) - 1
}

// AddMatVec charges an r×c matrix-vector product.
func (o *Ops) AddMatVec(r, c int) {
	o.Mul += int64(r) * int64(c)
	o.Adds += int64(r) * int64(c-1)
}

// AddOuter charges a weighted outer-product accumulation w·x·yᵀ into an
// r×c block (one multiply per cell for the product, one add for the
// accumulation, plus r multiplies for w·x).
func (o *Ops) AddOuter(r, c int) {
	o.Mul += int64(r)*int64(c) + int64(r)
	o.Adds += int64(r) * int64(c)
}

// AddOuterPlain charges an unweighted outer-product accumulation x·yᵀ into
// an r×c block (one multiply and one add per cell; no scalar weight).
func (o *Ops) AddOuterPlain(r, c int) {
	o.Mul += int64(r) * int64(c)
	o.Adds += int64(r) * int64(c)
}

// AddDiagQuad charges a diagonal quadratic form Σ (x_i−µ_i)²·w_i over d
// dimensions (the IGMM E-step kernel): one subtraction, one squaring and
// one weighting multiply per dimension.
func (o *Ops) AddDiagQuad(d int) {
	o.Mul += 2 * int64(d)
	o.Adds += 2*int64(d) - 1
}

// AddDot charges an n-dimensional inner product.
func (o *Ops) AddDot(n int) {
	o.Mul += int64(n)
	o.Adds += int64(n - 1)
}

// AddSub charges n element-wise subtractions (e.g. forming PD = x − µ).
func (o *Ops) AddSub(n int) {
	o.Adds += int64(n)
}

// AddAxpy charges y += a·x over n elements.
func (o *Ops) AddAxpy(n int) {
	o.Mul += int64(n)
	o.Adds += int64(n)
}

// Add merges another counter into o in place, so planner estimates and
// measured per-chunk counters compose without field-by-field copying.
func (o *Ops) Add(b Ops) {
	o.Mul += b.Mul
	o.Adds += b.Adds
}

// Plus returns the element-wise sum of two counters.
func (o Ops) Plus(b Ops) Ops {
	return Ops{Mul: o.Mul + b.Mul, Adds: o.Adds + b.Adds}
}

// Minus returns o - b.
func (o Ops) Minus(b Ops) Ops {
	return Ops{Mul: o.Mul - b.Mul, Adds: o.Adds - b.Adds}
}

// Scale returns the counter multiplied by n (e.g. one EM iteration's
// per-row kernel costs scaled to n rows by the planner).
func (o Ops) Scale(n int64) Ops {
	return Ops{Mul: o.Mul * n, Adds: o.Adds * n}
}

// Total returns the combined flop count (multiplications plus additions),
// the scalar the planner ranks strategies by.
func (o Ops) Total() int64 { return o.Mul + o.Adds }
