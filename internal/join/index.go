package join

import (
	"fmt"

	"factorml/internal/storage"
)

// HashIndex maps primary keys of a dimension table to row ids, enabling
// index-probe joins (an extension over the paper's block-nested-loops
// setting; see DESIGN.md §6).
type HashIndex struct {
	table *storage.Table
	rows  map[int64]int64
}

// BuildHashIndex scans the table once and indexes Keys[0] -> rowID.
func BuildHashIndex(t *storage.Table) (*HashIndex, error) {
	idx := &HashIndex{table: t, rows: make(map[int64]int64, t.NumTuples())}
	sc := t.NewScanner()
	var row int64
	for sc.Next() {
		pk := sc.Tuple().PrimaryKey()
		if _, dup := idx.rows[pk]; dup {
			return nil, fmt.Errorf("join: duplicate primary key %d in %q", pk, t.Schema().Name)
		}
		idx.rows[pk] = row
		row++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return idx, nil
}

// Len returns the number of indexed keys.
func (ix *HashIndex) Len() int { return len(ix.rows) }

// Lookup fetches the tuple with the given primary key into dst, returning
// false if the key is absent.
func (ix *HashIndex) Lookup(pk int64, dst *storage.Tuple) (bool, error) {
	row, ok := ix.rows[pk]
	if !ok {
		return false, nil
	}
	if err := ix.table.Get(row, dst); err != nil {
		return false, err
	}
	return true, nil
}

// IndexedStream scans S once and probes every dimension table through a hash
// index, delivering concatenated feature vectors. Unlike Runner, it makes a
// single pass over S regardless of the number of R1 blocks, at the price of
// random page accesses into the dimension tables (absorbed by the buffer
// pool when the dimension tables fit).
func IndexedStream(sp *Spec, fn func(sid int64, x []float64, y float64) error) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	idxs := make([]*HashIndex, len(sp.Rs))
	for i, r := range sp.Rs {
		ix, err := BuildHashIndex(r)
		if err != nil {
			return err
		}
		idxs[i] = ix
	}
	d := sp.JoinedWidth()
	x := make([]float64, d)
	rt := make([]storage.Tuple, len(sp.Rs))
	sc := sp.S.NewScanner()
	for sc.Next() {
		s := sc.Tuple()
		n := copy(x, s.Features)
		matched := true
		for i := range sp.Rs {
			ok, err := idxs[i].Lookup(s.Keys[1+i], &rt[i])
			if err != nil {
				return err
			}
			if !ok {
				matched = false
				break
			}
			n += copy(x[n:], rt[i].Features)
		}
		if !matched {
			continue
		}
		if err := fn(s.Keys[0], x[:n], s.Target); err != nil {
			return err
		}
	}
	return sc.Err()
}
