package join

import (
	"fmt"

	"factorml/internal/storage"
)

// MaterializedName returns the conventional name for the join result of a
// spec, T_<S>, used when the caller does not provide one.
func MaterializedName(sp *Spec) string {
	return "T_" + sp.S.Schema().Name
}

// JoinedSchema builds the schema of the denormalized table
// T(sid, [XS XR1 … XRq], Y?).
func JoinedSchema(sp *Spec, name string) *storage.Schema {
	out := &storage.Schema{
		Name:      name,
		Keys:      []string{sp.S.Schema().Keys[0]},
		HasTarget: sp.S.Schema().HasTarget,
	}
	add := func(prefix string, cols []string) {
		for _, c := range cols {
			out.Features = append(out.Features, prefix+"."+c)
		}
	}
	add(sp.S.Schema().Name, sp.S.Schema().Features)
	for _, r := range sp.Rs {
		add(r.Schema().Name, r.Schema().Features)
	}
	return out
}

// Materialize executes the star join and writes the denormalized result T
// into db under the given name (empty selects MaterializedName). This is
// step 1 of the M-* algorithms. The page writes of T are charged to the
// shared buffer pool's counters.
//
// The returned counts slice holds the number of joined tuples produced per
// R1 block, so a consumer of T can reconstruct the block boundaries (the
// M-NN trainer uses this to form the same mini-batches as S-NN/F-NN).
func Materialize(db *storage.Database, sp *Spec, name string) (*storage.Table, []int64, error) {
	if name == "" {
		name = MaterializedName(sp)
	}
	runner, err := NewRunner(sp)
	if err != nil {
		return nil, nil, err
	}
	tTbl, err := db.CreateTable(JoinedSchema(sp, name))
	if err != nil {
		return nil, nil, err
	}
	d := sp.JoinedWidth()
	out := storage.Tuple{Keys: make([]int64, 1), Features: make([]float64, d)}

	var block []*storage.Tuple
	var counts []int64
	err = runner.Run(Callbacks{
		OnBlockStart: func(b []*storage.Tuple) error {
			block = b
			counts = append(counts, 0)
			return nil
		},
		OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
			out.Keys[0] = s.Keys[0]
			out.Target = s.Target
			n := copy(out.Features, s.Features)
			n += copy(out.Features[n:], block[r1Idx].Features)
			for j, ri := range resIdx {
				n += copy(out.Features[n:], runner.Resident(j)[ri].Features)
			}
			if n != d {
				return fmt.Errorf("join: assembled %d features, want %d", n, d)
			}
			counts[len(counts)-1]++
			return tTbl.Append(&out)
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if err := tTbl.Flush(); err != nil {
		return nil, nil, err
	}
	return tTbl, counts, nil
}

// Stream executes the star join and delivers fully concatenated feature
// vectors to fn, without materializing T. This is the access path of the
// S-* algorithms. The vector passed to fn is reused across calls.
func Stream(sp *Spec, fn func(sid int64, x []float64, y float64) error) error {
	runner, err := NewRunner(sp)
	if err != nil {
		return err
	}
	return StreamWith(runner, fn)
}

// StreamWith is Stream over an existing runner (so repeated passes reuse the
// resident dimension tables, as S-* algorithms do across EM iterations).
func StreamWith(runner *Runner, fn func(sid int64, x []float64, y float64) error) error {
	d := runner.spec.JoinedWidth()
	x := make([]float64, d)
	var block []*storage.Tuple
	return runner.Run(Callbacks{
		OnBlockStart: func(b []*storage.Tuple) error { block = b; return nil },
		OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
			n := copy(x, s.Features)
			n += copy(x[n:], block[r1Idx].Features)
			for j, ri := range resIdx {
				n += copy(x[n:], runner.Resident(j)[ri].Features)
			}
			return fn(s.Keys[0], x, s.Target)
		},
	})
}
