package join

import (
	"testing"

	"factorml/internal/storage"
)

func TestResidentIndex(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(&storage.Schema{
		Name: "r", Keys: []string{"rid"}, Features: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := tbl.Append(&storage.Tuple{Keys: []int64{i * 3}, Features: []float64{float64(i), -float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}

	ix, err := BuildResidentIndex(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 || ix.Width() != 2 || ix.Name() != "r" {
		t.Fatalf("index shape: len=%d width=%d name=%q", ix.Len(), ix.Width(), ix.Name())
	}
	f, ok := ix.Lookup(42 * 3)
	if !ok || f[0] != 42 || f[1] != -42 {
		t.Fatalf("Lookup(126) = %v, %v", f, ok)
	}
	if _, ok := ix.Lookup(1); ok {
		t.Fatal("Lookup(1) found a missing key")
	}

	// Concurrent probing is safe (exercised fully under -race).
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := int64(0); i < 100; i++ {
				if _, ok := ix.Lookup(i * 3); !ok {
					t.Error("missing key during concurrent probe")
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestResidentIndexDuplicateKey(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(&storage.Schema{Name: "items", Keys: []string{"rid"}, Features: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []int64{1, 2, 1} {
		if err := tbl.Append(&storage.Tuple{Keys: []int64{k}, Features: []float64{float64(10 * i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err = BuildResidentIndex(tbl)
	if err == nil {
		t.Fatal("BuildResidentIndex accepted a duplicate primary key")
	}
	// The error must name the table and give both conflicting tuples'
	// context so operators can find the offending rows.
	want := `join: duplicate primary key 1 in table "items": tuple at row 0 has features [0], tuple at row 2 has features [20]`
	if err.Error() != want {
		t.Fatalf("duplicate-key error = %q, want %q", err, want)
	}
}

func TestResidentIndexUpsert(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(&storage.Schema{Name: "r", Keys: []string{"rid"}, Features: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := tbl.Append(&storage.Tuple{Keys: []int64{i}, Features: []float64{float64(i), 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	ix, err := BuildResidentIndex(tbl)
	if err != nil {
		t.Fatal(err)
	}

	old, _ := ix.Lookup(1)
	isNew, err := ix.Upsert(1, nil, []float64{7, 8})
	if err != nil || isNew {
		t.Fatalf("Upsert(existing) = new=%v err=%v", isNew, err)
	}
	cur, _ := ix.Lookup(1)
	if cur[0] != 7 || cur[1] != 8 {
		t.Fatalf("Lookup after update = %v", cur)
	}
	// Copy-on-write contract: the previously returned slice is untouched
	// and the replacement is a distinct slice — slice identity is the
	// freshness token the serving caches rely on.
	if old[0] != 1 || old[1] != 0 {
		t.Fatalf("old slice mutated: %v", old)
	}
	if &old[0] == &cur[0] {
		t.Fatal("Upsert reused the old backing slice")
	}
	// Dense positions are stable across updates; new keys append.
	if p, ok := ix.Pos(1); !ok || p != 1 {
		t.Fatalf("Pos(1) = %d, %v; want 1", p, ok)
	}
	isNew, err = ix.Upsert(99, nil, []float64{1, 2})
	if err != nil || !isNew {
		t.Fatalf("Upsert(new) = new=%v err=%v", isNew, err)
	}
	if p, ok := ix.Pos(99); !ok || p != 3 {
		t.Fatalf("Pos(99) = %d, %v; want 3", p, ok)
	}
	if pk, f := ix.At(3); pk != 99 || f[1] != 2 {
		t.Fatalf("At(3) = %d, %v", pk, f)
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	if _, err := ix.Upsert(5, nil, []float64{1}); err == nil {
		t.Fatal("Upsert accepted a wrong-width vector")
	}
}
