package join

import (
	"testing"

	"factorml/internal/storage"
)

func TestResidentIndex(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(&storage.Schema{
		Name: "r", Keys: []string{"rid"}, Features: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := tbl.Append(&storage.Tuple{Keys: []int64{i * 3}, Features: []float64{float64(i), -float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}

	ix, err := BuildResidentIndex(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 || ix.Width() != 2 || ix.Name() != "r" {
		t.Fatalf("index shape: len=%d width=%d name=%q", ix.Len(), ix.Width(), ix.Name())
	}
	f, ok := ix.Lookup(42 * 3)
	if !ok || f[0] != 42 || f[1] != -42 {
		t.Fatalf("Lookup(126) = %v, %v", f, ok)
	}
	if _, ok := ix.Lookup(1); ok {
		t.Fatal("Lookup(1) found a missing key")
	}

	// Concurrent probing is safe (exercised fully under -race).
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := int64(0); i < 100; i++ {
				if _, ok := ix.Lookup(i * 3); !ok {
					t.Error("missing key during concurrent probe")
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestResidentIndexDuplicateKey(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(&storage.Schema{Name: "r", Keys: []string{"rid"}, Features: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{1, 2, 1} {
		if err := tbl.Append(&storage.Tuple{Keys: []int64{k}, Features: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildResidentIndex(tbl); err == nil {
		t.Fatal("BuildResidentIndex accepted a duplicate primary key")
	}
}
