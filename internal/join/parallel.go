package join

import (
	"sync"

	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// ParallelChunkRows is the number of scanned fact tuples grouped into one
// probe chunk by RunParallel. Like every chunk-geometry constant it is
// independent of the worker count, so the match stream is cut identically
// no matter how many workers run (see internal/parallel).
const ParallelChunkRows = 512

// Match is one joined tuple delivered by RunParallel: the fact tuple (a
// copy owned by the current chunk), the index of its R1 partner within the
// current block, and the indexes of its partners in the resident dimension
// tables. A Match is valid only for the duration of OnMatchChunk.
type Match struct {
	S   *storage.Tuple
	R1  int
	Res []int
}

// ParallelCallbacks drive RunParallel.
//
// OnBlockStart and OnBlockEnd run on the calling goroutine at a full
// barrier: no chunk of the previous (respectively current) block is in
// flight, so they may safely (re)fill shared per-block caches read by
// OnMatchChunk.
//
// NewState produces the per-chunk accumulator. OnMatchChunk receives that
// state with matches in deterministic scan order; it may be invoked once
// per chunk with all of the chunk's matches (worker goroutines) or several
// times with sub-batches (the inline workers<=1 path delivers matches one
// at a time, avoiding tuple copies), so it must carry no per-invocation
// state of its own. Chunks of one block partition the fact-table scan in
// order. OnChunkMerged runs on a single goroutine, strictly in chunk order
// — fold the state into global accumulators there and recycle it.
type ParallelCallbacks struct {
	OnBlockStart  func(block []*storage.Tuple) error
	NewState      func() any
	OnMatchChunk  func(state any, matches []Match) error
	OnChunkMerged func(state any) error
	OnBlockEnd    func() error
}

// sChunk carries one chunk of raw scanned fact tuples to a probe worker,
// plus the backing storage for the matches the worker produces. Pooled.
type sChunk struct {
	tuples  []storage.Tuple
	n       int
	matches []Match
	resBuf  []int
	state   any
}

var sChunkPool = sync.Pool{New: func() any { return new(sChunk) }}

func getSChunk(rows, q int) *sChunk {
	c := sChunkPool.Get().(*sChunk)
	if cap(c.tuples) < rows {
		c.tuples = make([]storage.Tuple, rows)
	}
	c.tuples = c.tuples[:rows]
	if cap(c.matches) < rows {
		c.matches = make([]Match, 0, rows)
	}
	c.matches = c.matches[:0]
	if cap(c.resBuf) < rows*q {
		c.resBuf = make([]int, 0, rows*q)
	}
	c.resBuf = c.resBuf[:0]
	c.n = 0
	c.state = nil
	return c
}

func copyTupleInto(dst, src *storage.Tuple) {
	dst.Keys = append(dst.Keys[:0], src.Keys...)
	dst.Features = append(dst.Features[:0], src.Features...)
	dst.Target = src.Target
}

// RunParallel executes the same block-nested-loops star join as Run, but
// probes the dimension indexes over fact-tuple chunks on a pool of workers.
// The chunk geometry depends only on the data and chunkRows (<= 0 selects
// ParallelChunkRows), never on the worker count, and per-chunk results are
// merged in chunk order — so any downstream reduction sees a reduction
// order, and hence produces floating-point results, independent of
// `workers`. workers <= 1 runs the identical structure inline.
func (r *Runner) RunParallel(workers, chunkRows int, cb ParallelCallbacks) error {
	if err := r.loadResident(); err != nil {
		return err
	}
	if chunkRows <= 0 {
		chunkRows = ParallelChunkRows
	}
	if workers <= 1 {
		return r.runParallelInline(chunkRows, cb)
	}
	sp := r.spec
	q := len(sp.Rs)

	// blockIdx is the key index the workers probe (and curBlock the block
	// tuples whose sub-keys resolve snowflake hops). forEachBlock reuses
	// them between blocks, which is safe because every block ends with a
	// full barrier: no chunk is in flight when they are rebuilt, and the
	// channel hand-offs order the rebuild before any later probe.
	var blockIdx map[int64]int
	var curBlock []*storage.Tuple

	produce := func(f *parallel.Feed[*sChunk]) error {
		return r.forEachBlock(func(blk []*storage.Tuple, idx map[int64]int) error {
			blockIdx = idx
			curBlock = blk
			if cb.OnBlockStart != nil {
				if err := cb.OnBlockStart(blk); err != nil {
					return err
				}
			}
			// Scan S, cutting the raw tuples into fixed-size chunks. The
			// probe itself happens on the workers.
			cur := getSChunk(chunkRows, q)
			sc := sp.S.NewScanner()
			for sc.Next() {
				copyTupleInto(&cur.tuples[cur.n], sc.Tuple())
				cur.n++
				if cur.n == chunkRows {
					if err := f.Emit(cur); err != nil {
						return err
					}
					cur = getSChunk(chunkRows, q)
				}
			}
			if err := sc.Err(); err != nil {
				return err
			}
			if cur.n > 0 {
				if err := f.Emit(cur); err != nil {
					return err
				}
			} else {
				sChunkPool.Put(cur)
			}
			// Block barrier: every chunk of this block is probed, consumed
			// and merged before the block structures are reused.
			return f.Barrier(cb.OnBlockEnd)
		})
	}

	work := func(c *sChunk) (*sChunk, error) {
		c.matches = c.matches[:0]
		c.resBuf = c.resBuf[:0]
		for i := 0; i < c.n; i++ {
			s := &c.tuples[i]
			base := len(c.resBuf)
			c.resBuf = c.resBuf[:base+q-1]
			i1, ok := r.probe(s, curBlock, blockIdx, c.resBuf[base:])
			if !ok {
				c.resBuf = c.resBuf[:base]
				continue
			}
			c.matches = append(c.matches, Match{S: s, R1: i1, Res: c.resBuf[base : base+q-1 : base+q-1]})
		}
		if cb.NewState != nil {
			c.state = cb.NewState()
		}
		if cb.OnMatchChunk != nil {
			if err := cb.OnMatchChunk(c.state, c.matches); err != nil {
				return nil, err
			}
		}
		return c, nil
	}

	merge := func(c *sChunk) error {
		var err error
		if cb.OnChunkMerged != nil {
			err = cb.OnChunkMerged(c.state)
		}
		c.state = nil
		sChunkPool.Put(c)
		return err
	}

	return parallel.Run(workers, produce, work, merge)
}

// runParallelInline is RunParallel without goroutines or tuple copies:
// every scanned fact tuple is probed in place and delivered to
// OnMatchChunk immediately (the Match references the scanner's buffer,
// which the contract already limits to the duration of the call), with
// OnChunkMerged fired at the same fixed scan-count boundaries as the
// pooled path. The callback sequence folds the same values in the same
// order, so the results are bit-identical to any worker count.
func (r *Runner) runParallelInline(chunkRows int, cb ParallelCallbacks) error {
	sp := r.spec
	q := len(sp.Rs)
	resBuf := make([]int, q-1)
	one := make([]Match, 1)
	return r.forEachBlock(func(blk []*storage.Tuple, blockIdx map[int64]int) error {
		if cb.OnBlockStart != nil {
			if err := cb.OnBlockStart(blk); err != nil {
				return err
			}
		}
		var state any
		scanned := 0
		flush := func() error {
			if scanned == 0 {
				return nil
			}
			if state == nil && cb.NewState != nil {
				state = cb.NewState() // chunk had no matches; merge it anyway
			}
			var err error
			if cb.OnChunkMerged != nil {
				err = cb.OnChunkMerged(state)
			}
			state = nil
			scanned = 0
			return err
		}
		sc := sp.S.NewScanner()
		for sc.Next() {
			s := sc.Tuple()
			scanned++
			if i1, ok := r.probe(s, blk, blockIdx, resBuf); ok {
				if state == nil && cb.NewState != nil {
					state = cb.NewState()
				}
				if cb.OnMatchChunk != nil {
					one[0] = Match{S: s, R1: i1, Res: resBuf}
					if err := cb.OnMatchChunk(state, one); err != nil {
						return err
					}
				}
			}
			if scanned == chunkRows {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if err := flush(); err != nil {
			return err
		}
		if cb.OnBlockEnd != nil {
			return cb.OnBlockEnd()
		}
		return nil
	})
}
