package join

import (
	"fmt"

	"factorml/internal/storage"
)

// DimPlan is the flattened layout of a snowflake dimension hierarchy: every
// relation reachable from the fact table, in depth-first preorder (each
// direct dimension followed by its whole subtree, subtrees in foreign-key
// order). The same plan drives the training-side join (Spec), the serving
// engine's per-request probes and the streaming maintenance's group
// resolution, so all three agree on one relation order — and therefore one
// core.Partition of the joined feature vector.
//
// Parent[i] is the node whose tuple carries the foreign key that resolves
// node i: -1 when the key lives on the fact tuple itself, otherwise the
// index of the parent node (always < i, the preorder invariant). Ref[i] is
// the 0-based foreign-key position within the parent's key columns — key
// column 1+Ref[i] of the parent tuple — or, for a direct dimension, the
// position among the fact table's foreign keys.
//
// A table referenced from two places in the hierarchy appears once per
// reference path: the materialized join carries its columns once per path,
// so each path is its own partition part. Per-distinct-tuple work is still
// shared within a path — the factorized caches key on (node, tuple), which
// is exactly the composite dimension-tuple path.
type DimPlan struct {
	Tables []*storage.Table
	Parent []int
	Ref    []int
}

// Spec builds a join spec over the plan rooted at fact.
func (pl *DimPlan) Spec(fact *storage.Table) *Spec {
	return &Spec{S: fact, Rs: pl.Tables, Parent: pl.Parent, Ref: pl.Ref}
}

// BuildIndexes pins one ResidentIndex per plan node, sharing a single
// index per table across every node that references it — so a dimension
// update lands exactly once no matter how many hierarchy positions the
// table occupies. lookup, when non-nil, supplies pre-pinned indexes (e.g.
// a serving engine's) instead of building fresh ones; a supplied index
// must match the table's feature width.
func (pl *DimPlan) BuildIndexes(lookup func(name string) (*ResidentIndex, bool)) ([]*ResidentIndex, error) {
	idxs := make([]*ResidentIndex, 0, len(pl.Tables))
	byName := make(map[string]*ResidentIndex)
	for _, t := range pl.Tables {
		name := t.Schema().Name
		ix, pinned := byName[name]
		if !pinned {
			if lookup != nil {
				var ok bool
				ix, ok = lookup(name)
				if !ok {
					return nil, fmt.Errorf("join: no pinned index for dimension table %q", name)
				}
				if got, want := ix.Width(), t.Schema().NumFeatures(); got != want {
					return nil, fmt.Errorf("join: pinned index %q has width %d, table has %d", name, got, want)
				}
			} else {
				var err error
				ix, err = BuildResidentIndex(t)
				if err != nil {
					return nil, err
				}
			}
			byName[name] = ix
		}
		idxs = append(idxs, ix)
	}
	return idxs, nil
}

// ExpandDims flattens the snowflake hierarchy rooted at the given direct
// dimension tables into a DimPlan, resolving each table's recorded
// sub-dimension references (storage.Schema.Refs) through lookup. A nil
// lookup only accepts leaf dimensions (the pre-snowflake one-hop layout).
// Reference cycles are rejected.
func ExpandDims(direct []*storage.Table, lookup func(name string) (*storage.Table, error)) (*DimPlan, error) {
	if len(direct) == 0 {
		return nil, fmt.Errorf("join: no dimension tables to expand")
	}
	pl := &DimPlan{}
	var walk func(t *storage.Table, parent, ref int, path []string) error
	walk = func(t *storage.Table, parent, ref int, path []string) error {
		name := t.Schema().Name
		for _, anc := range path {
			if anc == name {
				return fmt.Errorf("join: dimension reference cycle through table %q", name)
			}
		}
		node := len(pl.Tables)
		pl.Tables = append(pl.Tables, t)
		pl.Parent = append(pl.Parent, parent)
		pl.Ref = append(pl.Ref, ref)
		refs := t.Schema().Refs
		if got, want := t.Schema().NumKeys()-1, len(refs); got != want {
			return fmt.Errorf("join: dimension table %q has %d foreign-key columns but %d recorded refs",
				name, got, want)
		}
		if len(refs) > 0 && lookup == nil {
			return fmt.Errorf("join: dimension table %q references sub-dimensions %v but no table lookup was provided",
				name, refs)
		}
		for i, sub := range refs {
			st, err := lookup(sub)
			if err != nil {
				return fmt.Errorf("join: resolving sub-dimension %q of %q: %w", sub, name, err)
			}
			if err := walk(st, node, i, append(path, name)); err != nil {
				return err
			}
		}
		return nil
	}
	for i, t := range direct {
		if t == nil {
			return nil, fmt.Errorf("join: direct dimension table %d is nil", i)
		}
		if err := walk(t, -1, i, nil); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// Resolver resolves one fact tuple's foreign keys through a snowflake
// hierarchy against resident indexes: node i's tuple is found by following
// the plan's parent edge (a direct key on the fact row, or a sub-key pinned
// on the parent's resident tuple). The serving engine and the streaming
// statistics share this logic, so both observe the same join semantics as
// the training-side Runner.
type Resolver struct {
	Parent []int
	Ref    []int
	Idxs   []*ResidentIndex // one per node; nodes of one table may share an index
	direct int
}

// NewResolver builds a resolver over per-node resident indexes. The index
// slice must parallel the plan's nodes.
func NewResolver(parent, ref []int, idxs []*ResidentIndex) (*Resolver, error) {
	if len(parent) != len(idxs) || len(ref) != len(idxs) {
		return nil, fmt.Errorf("join: resolver shape mismatch: %d parents, %d refs, %d indexes",
			len(parent), len(ref), len(idxs))
	}
	rv := &Resolver{Parent: parent, Ref: ref, Idxs: idxs}
	for i, p := range parent {
		if p == -1 {
			rv.direct++
		} else if p < 0 || p >= i {
			return nil, fmt.Errorf("join: resolver node %d has parent %d, want -1 or a smaller node index", i, p)
		}
	}
	return rv, nil
}

// NumDirect returns the number of direct (fact-keyed) nodes.
func (rv *Resolver) NumDirect() int { return rv.direct }

// Resolve follows the hierarchy for one fact row: fks holds the row's
// direct foreign keys (one per direct node, in node order), and on success
// pks[i]/pos[i] receive node i's primary key and dense index within its
// resident index. Either output slice may be nil when the caller does not
// need it; non-nil slices must have one slot per node.
func (rv *Resolver) Resolve(fks []int64, pks []int64, pos []int) error {
	if len(fks) != rv.direct {
		return fmt.Errorf("join: %d foreign keys for %d direct dimension tables", len(fks), rv.direct)
	}
	var posBuf [8]int
	p := pos
	if p == nil {
		if len(rv.Idxs) <= len(posBuf) {
			p = posBuf[:len(rv.Idxs)]
		} else {
			p = make([]int, len(rv.Idxs))
		}
	}
	for i := range rv.Idxs {
		var pk int64
		if rv.Parent[i] == -1 {
			pk = fks[rv.Ref[i]]
		} else {
			parent := rv.Parent[i]
			subs := rv.Idxs[parent].SubsAt(p[parent])
			if rv.Ref[i] >= len(subs) {
				return fmt.Errorf("join: tuple %d of dimension table %q has %d sub-keys, resolver wants key %d",
					p[parent], rv.Idxs[parent].Name(), len(subs), rv.Ref[i])
			}
			pk = subs[rv.Ref[i]]
		}
		at, ok := rv.Idxs[i].Pos(pk)
		if !ok {
			return fmt.Errorf("unknown foreign key %d for dimension table %q", pk, rv.Idxs[i].Name())
		}
		p[i] = at
		if pks != nil {
			pks[i] = pk
		}
	}
	return nil
}
