package join

import (
	"fmt"
	"math/rand"

	"factorml/internal/storage"
)

// DefaultBlockPages is the block-nested-loops block size (in pages of the
// first dimension table) when a Spec leaves BlockPages at zero.
const DefaultBlockPages = 64

// Spec describes a star join between a fact table S and dimension tables
// R1…Rq.
//
// S's key columns must be [sid, fk1, …, fkq] where fk_i references
// Rs[i].Keys[0]. Every fk must resolve (joins are primary/foreign-key, so
// the join is lossless on S); a dangling fk is an error.
type Spec struct {
	S  *storage.Table
	Rs []*storage.Table

	// BlockPages is the number of pages of Rs[0] loaded per block of the
	// block-nested-loops join. Zero selects DefaultBlockPages.
	BlockPages int
}

// Validate checks the spec's structural invariants.
func (sp *Spec) Validate() error {
	if sp.S == nil {
		return fmt.Errorf("join: spec has no fact table")
	}
	if len(sp.Rs) == 0 {
		return fmt.Errorf("join: spec has no dimension tables")
	}
	if got, want := sp.S.Schema().NumKeys(), 1+len(sp.Rs); got != want {
		return fmt.Errorf("join: fact table %q has %d key columns, want %d (sid + %d fks)",
			sp.S.Schema().Name, got, want, len(sp.Rs))
	}
	for i, r := range sp.Rs {
		if r == nil {
			return fmt.Errorf("join: dimension table %d is nil", i)
		}
		if r.Schema().NumKeys() != 1 {
			return fmt.Errorf("join: dimension table %q must have exactly one key column", r.Schema().Name)
		}
		if r.Schema().HasTarget {
			return fmt.Errorf("join: dimension table %q must not carry a target", r.Schema().Name)
		}
	}
	return nil
}

func (sp *Spec) blockPages() int {
	if sp.BlockPages <= 0 {
		return DefaultBlockPages
	}
	return sp.BlockPages
}

// JoinedWidth returns the feature dimensionality of the join result:
// dS + Σ dRi.
func (sp *Spec) JoinedWidth() int {
	d := sp.S.Schema().NumFeatures()
	for _, r := range sp.Rs {
		d += r.Schema().NumFeatures()
	}
	return d
}

// FeatureOffsets returns, for each relation in [S, R1, …, Rq] order, the
// offset of its features within the joined feature vector.
func (sp *Spec) FeatureOffsets() []int {
	offs := make([]int, 1+len(sp.Rs))
	offs[0] = 0
	acc := sp.S.Schema().NumFeatures()
	for i, r := range sp.Rs {
		offs[1+i] = acc
		acc += r.Schema().NumFeatures()
	}
	return offs
}

// Callbacks receives the join stream.
//
// OnBlockStart is called once per block of Rs[0] with the block's tuples and
// — on the first block only — the resident tuples of Rs[1:]. Resident slices
// stay valid for the whole run. Block slices are valid until the next
// OnBlockStart.
//
// OnMatch is called for every joined tuple in deterministic order: for each
// block (R1 append order), S scan order. r1Idx indexes into the current
// block's tuples; resIdx[i] indexes into resident table i+1's tuples.
// The s tuple is only valid for the duration of the call.
type Callbacks struct {
	OnBlockStart func(block []*storage.Tuple) error
	OnMatch      func(s *storage.Tuple, r1Idx int, resIdx []int) error
	OnBlockEnd   func() error
}

// Runner executes a block-nested-loops star join.
type Runner struct {
	spec     *Spec
	resident [][]*storage.Tuple // Rs[1:] fully loaded
	resIndex []map[int64]int    // rid -> index into resident[i]
	loaded   bool
	perm     []int64 // optional R1 row permutation (SGD epochs, §VI)
}

// NewRunner prepares a runner for the spec.
func NewRunner(spec *Spec) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Runner{spec: spec}, nil
}

// Spec returns the join specification the runner was built from.
func (r *Runner) Spec() *Spec { return r.spec }

// Shuffle installs a permutation of R1's rows used by subsequent Runs —
// the paper's per-epoch permutation of R's keys for SGD training (§VI):
// "we can permute the keys of R for each training epoch, accessing the
// keys in a different order per epoch while probing relation S". Permuted
// access is random I/O into R1 (one logical page read per tuple, absorbed
// by the buffer pool when R1 fits). Pass nil to restore sequential order.
func (r *Runner) Shuffle(rng *rand.Rand) {
	if rng == nil {
		r.perm = nil
		return
	}
	n := r.spec.Rs[0].NumTuples()
	if int64(len(r.perm)) != n {
		r.perm = make([]int64, n)
		for i := range r.perm {
			r.perm[i] = int64(i)
		}
	}
	rng.Shuffle(len(r.perm), func(i, j int) { r.perm[i], r.perm[j] = r.perm[j], r.perm[i] })
}

// Resident returns the loaded tuples of dimension table i (1-based among
// dimension tables, i.e. Resident(0) is Rs[1]). It is only available after
// Run has started; the slices are shared, do not modify.
func (r *Runner) Resident(i int) []*storage.Tuple { return r.resident[i] }

func (r *Runner) loadResident() error {
	if r.loaded {
		return nil
	}
	rs := r.spec.Rs
	r.resident = make([][]*storage.Tuple, len(rs)-1)
	r.resIndex = make([]map[int64]int, len(rs)-1)
	for i, tbl := range rs[1:] {
		tuples := make([]*storage.Tuple, 0, tbl.NumTuples())
		idx := make(map[int64]int, tbl.NumTuples())
		sc := tbl.NewScanner()
		for sc.Next() {
			tp := sc.Tuple().Clone()
			idx[tp.PrimaryKey()] = len(tuples)
			tuples = append(tuples, tp)
		}
		if err := sc.Err(); err != nil {
			return err
		}
		r.resident[i] = tuples
		r.resIndex[i] = idx
	}
	r.loaded = true
	return nil
}

// forEachBlock loads consecutive R1 blocks — sequential scan, or installed
// permutation — and invokes fn once per block with the block's tuples and
// its key index. The slices and map are reused between blocks; fn must be
// done with them when it returns. Run and RunParallel both drive their
// passes through this iterator, so the two access paths share one block
// geometry (and hence one deterministic match order).
//
// A single scanner over R1 reads each of its pages exactly once per pass,
// matching the |R| term of the paper's block-nested-loops cost model. With
// a shuffle installed, rows are fetched in permuted order instead (random
// access through the buffer pool).
func (r *Runner) forEachBlock(fn func(block []*storage.Tuple, blockIdx map[int64]int) error) error {
	sp := r.spec
	r1 := sp.Rs[0]
	perPage := int64(r1.Schema().RecordsPerPage())
	tuplesPerBlock := int64(sp.blockPages()) * perPage
	nR1 := r1.NumTuples()

	block := make([]*storage.Tuple, 0, tuplesPerBlock)
	blockIdx := make(map[int64]int, tuplesPerBlock)

	var r1Scan *storage.Scanner
	if r.perm == nil {
		r1Scan = r1.NewScanner()
	}
	var permTuple storage.Tuple
	for start := int64(0); start < nR1; start += tuplesPerBlock {
		end := start + tuplesPerBlock
		if end > nR1 {
			end = nR1
		}
		block = block[:0]
		for k := range blockIdx {
			delete(blockIdx, k)
		}
		for row := start; row < end; row++ {
			var c *storage.Tuple
			if r1Scan != nil {
				if !r1Scan.Next() {
					if err := r1Scan.Err(); err != nil {
						return err
					}
					return fmt.Errorf("join: dimension table %q ended early at row %d", r1.Schema().Name, row)
				}
				c = r1Scan.Tuple().Clone()
			} else {
				if err := r1.Get(r.perm[row], &permTuple); err != nil {
					return err
				}
				c = permTuple.Clone()
			}
			blockIdx[c.PrimaryKey()] = len(block)
			block = append(block, c)
		}
		if err := fn(block, blockIdx); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the join, invoking the callbacks. It may be called multiple
// times (e.g. once per EM pass); each call re-reads the base tables, which
// is exactly the repeated I/O the paper's cost model charges.
func (r *Runner) Run(cb Callbacks) error {
	if err := r.loadResident(); err != nil {
		return err
	}
	sp := r.spec
	resIdx := make([]int, len(sp.Rs)-1)
	return r.forEachBlock(func(block []*storage.Tuple, blockIdx map[int64]int) error {
		if cb.OnBlockStart != nil {
			if err := cb.OnBlockStart(block); err != nil {
				return err
			}
		}
		if cb.OnMatch != nil {
			sc := sp.S.NewScanner()
			for sc.Next() {
				s := sc.Tuple()
				i1, ok := blockIdx[s.Keys[1]]
				if !ok {
					continue // fk belongs to another block
				}
				matched := true
				for j := range resIdx {
					ri, ok := r.resIndex[j][s.Keys[2+j]]
					if !ok {
						matched = false // inner-join semantics: skip dangling fks
						break
					}
					resIdx[j] = ri
				}
				if !matched {
					continue
				}
				if err := cb.OnMatch(s, i1, resIdx); err != nil {
					return err
				}
			}
			if err := sc.Err(); err != nil {
				return err
			}
		}
		if cb.OnBlockEnd != nil {
			return cb.OnBlockEnd()
		}
		return nil
	})
}

// NumBlocks returns how many R1 blocks a Run will produce.
func (r *Runner) NumBlocks() int64 {
	r1 := r.spec.Rs[0]
	perPage := int64(r1.Schema().RecordsPerPage())
	tuplesPerBlock := int64(r.spec.blockPages()) * perPage
	n := r1.NumTuples()
	if n == 0 {
		return 0
	}
	return (n + tuplesPerBlock - 1) / tuplesPerBlock
}
