package join

import (
	"fmt"
	"math/rand"

	"factorml/internal/storage"
)

// DefaultBlockPages is the block-nested-loops block size (in pages of the
// first dimension table) when a Spec leaves BlockPages at zero.
const DefaultBlockPages = 64

// Spec describes a join between a fact table S and a flattened hierarchy of
// dimension tables R1…Rq — a one-hop star, or an arbitrary-depth snowflake.
//
// S's key columns must be [sid, fk1, …, fkp] with one foreign key per
// *direct* dimension table. Rs lists every reachable dimension relation in
// depth-first preorder (each direct dimension followed by its whole
// subtree); Parent and Ref record, per relation, where its foreign key
// lives — see DimPlan for the exact contract. Leaving Parent and Ref nil
// selects the classic star layout: every Rs[i] is keyed directly off the
// fact tuple's i-th foreign key.
//
// Every fk must resolve (joins are primary/foreign-key, so the join is
// lossless on S); a dangling fk at any hop skips the fact tuple
// (inner-join semantics), exactly as the flattened/materialized join would.
type Spec struct {
	S  *storage.Table
	Rs []*storage.Table

	// Parent and Ref are the snowflake resolution edges (nil = one-hop
	// star): Parent[i] is -1 when Rs[i] is keyed off the fact tuple, else
	// the index of the relation whose tuple carries the key (always < i);
	// Ref[i] is the 0-based foreign-key position within that tuple's key
	// columns (key column 1+Ref[i]).
	Parent []int
	Ref    []int

	// BlockPages is the number of pages of Rs[0] loaded per block of the
	// block-nested-loops join. Zero selects DefaultBlockPages.
	BlockPages int
}

// edges returns the resolution edges, materializing the one-hop star
// defaults when the spec leaves Parent/Ref nil.
func (sp *Spec) edges() (parent, ref []int) {
	if sp.Parent != nil || sp.Ref != nil {
		return sp.Parent, sp.Ref
	}
	parent = make([]int, len(sp.Rs))
	ref = make([]int, len(sp.Rs))
	for i := range sp.Rs {
		parent[i] = -1
		ref[i] = i
	}
	return parent, ref
}

// Plan returns the spec's dimension plan with the resolution edges
// materialized (the one-hop defaults when Parent/Ref are nil).
func (sp *Spec) Plan() *DimPlan {
	parent, ref := sp.edges()
	return &DimPlan{Tables: sp.Rs, Parent: parent, Ref: ref}
}

// Validate checks the spec's structural invariants.
func (sp *Spec) Validate() error {
	if sp.S == nil {
		return fmt.Errorf("join: spec has no fact table")
	}
	if len(sp.Rs) == 0 {
		return fmt.Errorf("join: spec has no dimension tables")
	}
	if (sp.Parent == nil) != (sp.Ref == nil) || (sp.Parent != nil && (len(sp.Parent) != len(sp.Rs) || len(sp.Ref) != len(sp.Rs))) {
		return fmt.Errorf("join: spec has %d relations but %d parent / %d ref edges",
			len(sp.Rs), len(sp.Parent), len(sp.Ref))
	}
	parent, ref := sp.edges()
	// Children must follow their parent (preorder) and claim its foreign
	// keys in order, so the flattened layout is deterministic and the
	// Runner can resolve left to right.
	nextRef := make([]int, 1+len(sp.Rs)) // nextRef[0] = fact, nextRef[1+i] = Rs[i]
	for i, r := range sp.Rs {
		if r == nil {
			return fmt.Errorf("join: dimension table %d is nil", i)
		}
		if r.Schema().HasTarget {
			return fmt.Errorf("join: dimension table %q must not carry a target", r.Schema().Name)
		}
		p := parent[i]
		if p < -1 || p >= i {
			return fmt.Errorf("join: dimension table %q (relation %d) has parent %d, want -1 or an earlier relation",
				r.Schema().Name, i, p)
		}
		if got, want := ref[i], nextRef[1+p]; got != want {
			return fmt.Errorf("join: dimension table %q (relation %d) claims foreign key %d of its parent, want %d (preorder, key order)",
				r.Schema().Name, i, got, want)
		}
		nextRef[1+p]++
	}
	if got, want := sp.S.Schema().NumKeys(), 1+nextRef[0]; got != want {
		return fmt.Errorf("join: fact table %q has %d key columns, want %d (sid + %d fks)",
			sp.S.Schema().Name, got, want, nextRef[0])
	}
	for i, r := range sp.Rs {
		if got, want := r.Schema().NumKeys(), 1+nextRef[1+i]; got != want {
			return fmt.Errorf("join: dimension table %q has %d key columns, want %d (rid + %d sub-dimension fks)",
				r.Schema().Name, got, want, nextRef[1+i])
		}
	}
	return nil
}

// NewSnowflakeSpec builds a validated spec over fact by expanding the
// direct dimension tables' recorded sub-dimension references
// (storage.Schema.Refs) through lookup. This is the catalog-driven path
// used by cmd/train and the serving facade; callers holding an explicit
// hierarchy can construct a DimPlan directly.
func NewSnowflakeSpec(fact *storage.Table, direct []*storage.Table, lookup func(name string) (*storage.Table, error)) (*Spec, error) {
	pl, err := ExpandDims(direct, lookup)
	if err != nil {
		return nil, err
	}
	sp := pl.Spec(fact)
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *Spec) blockPages() int {
	if sp.BlockPages <= 0 {
		return DefaultBlockPages
	}
	return sp.BlockPages
}

// JoinedWidth returns the feature dimensionality of the join result:
// dS + Σ dRi.
func (sp *Spec) JoinedWidth() int {
	d := sp.S.Schema().NumFeatures()
	for _, r := range sp.Rs {
		d += r.Schema().NumFeatures()
	}
	return d
}

// FeatureOffsets returns, for each relation in [S, R1, …, Rq] order, the
// offset of its features within the joined feature vector.
func (sp *Spec) FeatureOffsets() []int {
	offs := make([]int, 1+len(sp.Rs))
	offs[0] = 0
	acc := sp.S.Schema().NumFeatures()
	for i, r := range sp.Rs {
		offs[1+i] = acc
		acc += r.Schema().NumFeatures()
	}
	return offs
}

// Callbacks receives the join stream.
//
// OnBlockStart is called once per block of Rs[0] with the block's tuples and
// — on the first block only — the resident tuples of Rs[1:]. Resident slices
// stay valid for the whole run. Block slices are valid until the next
// OnBlockStart.
//
// OnMatch is called for every joined tuple in deterministic order: for each
// block (R1 append order), S scan order. r1Idx indexes into the current
// block's tuples; resIdx[i] indexes into resident table i+1's tuples.
// The s tuple is only valid for the duration of the call.
type Callbacks struct {
	OnBlockStart func(block []*storage.Tuple) error
	OnMatch      func(s *storage.Tuple, r1Idx int, resIdx []int) error
	OnBlockEnd   func() error
}

// Runner executes a block-nested-loops join over a star or snowflake spec.
type Runner struct {
	spec     *Spec
	parent   []int              // resolution edges (see Spec.Parent)
	ref      []int              // resolution edges (see Spec.Ref)
	resident [][]*storage.Tuple // Rs[1:] fully loaded
	resIndex []map[int64]int    // rid -> index into resident[i]
	loaded   bool
	perm     []int64 // optional R1 row permutation (SGD epochs, §VI)
}

// NewRunner prepares a runner for the spec.
func NewRunner(spec *Spec) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{spec: spec}
	r.parent, r.ref = spec.edges()
	return r, nil
}

// Spec returns the join specification the runner was built from.
func (r *Runner) Spec() *Spec { return r.spec }

// Shuffle installs a permutation of R1's rows used by subsequent Runs —
// the paper's per-epoch permutation of R's keys for SGD training (§VI):
// "we can permute the keys of R for each training epoch, accessing the
// keys in a different order per epoch while probing relation S". Permuted
// access is random I/O into R1 (one logical page read per tuple, absorbed
// by the buffer pool when R1 fits). Pass nil to restore sequential order.
func (r *Runner) Shuffle(rng *rand.Rand) {
	if rng == nil {
		r.perm = nil
		return
	}
	n := r.spec.Rs[0].NumTuples()
	if int64(len(r.perm)) != n {
		r.perm = make([]int64, n)
		for i := range r.perm {
			r.perm[i] = int64(i)
		}
	}
	rng.Shuffle(len(r.perm), func(i, j int) { r.perm[i], r.perm[j] = r.perm[j], r.perm[i] })
}

// Resident returns the loaded tuples of dimension table i (1-based among
// dimension tables, i.e. Resident(0) is Rs[1]). It is only available after
// Run has started; the slices are shared, do not modify.
func (r *Runner) Resident(i int) []*storage.Tuple { return r.resident[i] }

func (r *Runner) loadResident() error {
	if r.loaded {
		return nil
	}
	rs := r.spec.Rs
	r.resident = make([][]*storage.Tuple, len(rs)-1)
	r.resIndex = make([]map[int64]int, len(rs)-1)
	for i, tbl := range rs[1:] {
		tuples := make([]*storage.Tuple, 0, tbl.NumTuples())
		idx := make(map[int64]int, tbl.NumTuples())
		sc := tbl.NewScanner()
		for sc.Next() {
			tp := sc.Tuple().Clone()
			idx[tp.PrimaryKey()] = len(tuples)
			tuples = append(tuples, tp)
		}
		if err := sc.Err(); err != nil {
			return err
		}
		r.resident[i] = tuples
		r.resIndex[i] = idx
	}
	r.loaded = true
	return nil
}

// forEachBlock loads consecutive R1 blocks — sequential scan, or installed
// permutation — and invokes fn once per block with the block's tuples and
// its key index. The slices and map are reused between blocks; fn must be
// done with them when it returns. Run and RunParallel both drive their
// passes through this iterator, so the two access paths share one block
// geometry (and hence one deterministic match order).
//
// A single scanner over R1 reads each of its pages exactly once per pass,
// matching the |R| term of the paper's block-nested-loops cost model. With
// a shuffle installed, rows are fetched in permuted order instead (random
// access through the buffer pool).
func (r *Runner) forEachBlock(fn func(block []*storage.Tuple, blockIdx map[int64]int) error) error {
	sp := r.spec
	r1 := sp.Rs[0]
	perPage := int64(r1.Schema().RecordsPerPage())
	tuplesPerBlock := int64(sp.blockPages()) * perPage
	nR1 := r1.NumTuples()

	block := make([]*storage.Tuple, 0, tuplesPerBlock)
	blockIdx := make(map[int64]int, tuplesPerBlock)

	var r1Scan *storage.Scanner
	if r.perm == nil {
		r1Scan = r1.NewScanner()
	}
	var permTuple storage.Tuple
	for start := int64(0); start < nR1; start += tuplesPerBlock {
		end := start + tuplesPerBlock
		if end > nR1 {
			end = nR1
		}
		block = block[:0]
		for k := range blockIdx {
			delete(blockIdx, k)
		}
		for row := start; row < end; row++ {
			var c *storage.Tuple
			if r1Scan != nil {
				if !r1Scan.Next() {
					if err := r1Scan.Err(); err != nil {
						return err
					}
					return fmt.Errorf("join: dimension table %q ended early at row %d", r1.Schema().Name, row)
				}
				c = r1Scan.Tuple().Clone()
			} else {
				if err := r1.Get(r.perm[row], &permTuple); err != nil {
					return err
				}
				c = permTuple.Clone()
			}
			blockIdx[c.PrimaryKey()] = len(block)
			block = append(block, c)
		}
		if err := fn(block, blockIdx); err != nil {
			return err
		}
	}
	return nil
}

// probe resolves one fact tuple through the dimension hierarchy: the first
// relation's position within the current block (via blockIdx), then every
// further relation's resident position — keyed off the fact tuple, the
// block tuple or an earlier resident tuple per the spec's resolution edges.
// It returns ok=false when the fact tuple's R1 key belongs to another block
// or any hop dangles (inner-join semantics), with resIdx[j] holding the
// position of relation 1+j on success.
func (r *Runner) probe(s *storage.Tuple, block []*storage.Tuple, blockIdx map[int64]int, resIdx []int) (i1 int, ok bool) {
	i1, ok = blockIdx[s.Keys[1+r.ref[0]]]
	if !ok {
		return 0, false
	}
	for i := 1; i < len(r.spec.Rs); i++ {
		var key int64
		switch p := r.parent[i]; p {
		case -1:
			key = s.Keys[1+r.ref[i]]
		case 0:
			key = block[i1].Keys[1+r.ref[i]]
		default:
			key = r.resident[p-1][resIdx[p-1]].Keys[1+r.ref[i]]
		}
		ri, found := r.resIndex[i-1][key]
		if !found {
			return 0, false // dangling fk at this hop: skip the fact tuple
		}
		resIdx[i-1] = ri
	}
	return i1, true
}

// Run executes the join, invoking the callbacks. It may be called multiple
// times (e.g. once per EM pass); each call re-reads the base tables, which
// is exactly the repeated I/O the paper's cost model charges.
func (r *Runner) Run(cb Callbacks) error {
	if err := r.loadResident(); err != nil {
		return err
	}
	sp := r.spec
	resIdx := make([]int, len(sp.Rs)-1)
	return r.forEachBlock(func(block []*storage.Tuple, blockIdx map[int64]int) error {
		if cb.OnBlockStart != nil {
			if err := cb.OnBlockStart(block); err != nil {
				return err
			}
		}
		if cb.OnMatch != nil {
			sc := sp.S.NewScanner()
			for sc.Next() {
				s := sc.Tuple()
				i1, ok := r.probe(s, block, blockIdx, resIdx)
				if !ok {
					continue
				}
				if err := cb.OnMatch(s, i1, resIdx); err != nil {
					return err
				}
			}
			if err := sc.Err(); err != nil {
				return err
			}
		}
		if cb.OnBlockEnd != nil {
			return cb.OnBlockEnd()
		}
		return nil
	})
}

// NumBlocks returns how many R1 blocks a Run will produce.
func (r *Runner) NumBlocks() int64 {
	r1 := r.spec.Rs[0]
	perPage := int64(r1.Schema().RecordsPerPage())
	tuplesPerBlock := int64(r.spec.blockPages()) * perPage
	n := r1.NumTuples()
	if n == 0 {
		return 0
	}
	return (n + tuplesPerBlock - 1) / tuplesPerBlock
}
