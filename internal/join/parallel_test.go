package join

import (
	"fmt"
	"testing"

	"factorml/internal/storage"
)

// matchKey flattens one joined tuple into a comparable string.
func matchKey(s *storage.Tuple, r1 int, res []int) string {
	return fmt.Sprintf("sid=%d r1=%d res=%v xs=%v y=%v", s.Keys[0], r1, res, s.Features, s.Target)
}

// runSequential collects the match stream of Runner.Run.
func runSequential(t *testing.T, spec *Spec) []string {
	t.Helper()
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	err = runner.Run(Callbacks{
		OnMatch: func(s *storage.Tuple, r1Idx int, resIdx []int) error {
			out = append(out, matchKey(s, r1Idx, resIdx))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runParallelMatches collects the merged match stream of RunParallel.
func runParallelMatches(t *testing.T, spec *Spec, workers, chunkRows int) []string {
	t.Helper()
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	type state struct{ keys []string }
	err = runner.RunParallel(workers, chunkRows, ParallelCallbacks{
		NewState: func() any { return &state{} },
		OnMatchChunk: func(st any, matches []Match) error {
			s := st.(*state)
			for _, m := range matches {
				s.keys = append(s.keys, matchKey(m.S, m.R1, m.Res))
			}
			return nil
		},
		OnChunkMerged: func(st any) error {
			out = append(out, st.(*state).keys...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunParallelMatchesSequential asserts the parallel probe delivers the
// exact sequential match stream — same tuples, same deterministic order —
// for every worker count, on both single- and multi-block, binary and
// multi-way joins.
func TestRunParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name       string
		nS, dS     int
		nR, dR     []int
		blockPages int
	}{
		{"binary/oneblock", 300, 3, []int{40}, []int{2}, 0},
		{"binary/multiblock", 900, 2, []int{600}, []int{3}, 1},
		{"multiway/multiblock", 800, 2, []int{600, 30}, []int{2, 2}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t)
			spec := buildTables(t, db, tc.nS, tc.dS, tc.nR, tc.dR)
			spec.BlockPages = tc.blockPages
			want := runSequential(t, spec)
			if len(want) == 0 {
				t.Fatal("sequential join produced no matches")
			}
			for _, workers := range []int{1, 2, 4} {
				for _, chunk := range []int{0, 7} {
					got := runParallelMatches(t, spec, workers, chunk)
					if len(got) != len(want) {
						t.Fatalf("workers=%d chunk=%d: %d matches, want %d", workers, chunk, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d chunk=%d: match %d = %q, want %q", workers, chunk, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestRunParallelBlockBarriers asserts OnBlockStart/OnBlockEnd run once per
// block, in order, with all of the block's chunks merged in between.
func TestRunParallelBlockBarriers(t *testing.T) {
	db := openDB(t)
	spec := buildTables(t, db, 900, 2, []int{600}, []int{3})
	spec.BlockPages = 1
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	nBlocks := runner.NumBlocks()
	if nBlocks < 2 {
		t.Fatalf("want a multi-block join, got %d blocks", nBlocks)
	}
	starts, ends, merged := 0, 0, 0
	err = runner.RunParallel(4, 16, ParallelCallbacks{
		OnBlockStart: func(block []*storage.Tuple) error {
			if starts != ends {
				t.Errorf("block start %d before block %d ended", starts, ends)
			}
			starts++
			return nil
		},
		NewState:     func() any { return nil },
		OnMatchChunk: func(any, []Match) error { return nil },
		OnChunkMerged: func(any) error {
			merged++
			return nil
		},
		OnBlockEnd: func() error {
			ends++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(starts) != nBlocks || int64(ends) != nBlocks {
		t.Fatalf("starts=%d ends=%d, want %d each", starts, ends, nBlocks)
	}
	if merged == 0 {
		t.Fatal("no chunks merged")
	}
}
