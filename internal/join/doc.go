// Package join implements primary/foreign-key equi-join processing over the
// storage engine, in the three styles the paper compares:
//
//   - Materialize: compute S ⋈ R1 ⋈ … ⋈ Rq with a block-nested-loops join
//     and write the denormalized result T to disk (input to the M-* training
//     algorithms).
//   - Streaming: iterate the join block-by-block without materializing,
//     delivering fully concatenated feature vectors (input to the S-*
//     algorithms).
//   - Factorized: iterate the join block-by-block delivering the S tuple and
//     *references* to the matching dimension tuples, so the training
//     algorithm can reuse per-dimension computation (input to the F-*
//     algorithms).
//
// The block structure follows the paper's cost model (§V-A): the first
// dimension table is read once in blocks of BlockPages pages; for every
// block, S is scanned in full and probed against an in-memory hash of the
// block. Any further dimension tables (multi-way joins, §V-C) are resident:
// loaded once at the start, which matches the paper's experimental setup
// where only R1 grows. Emission order is deterministic — R blocks in append
// order, S scan order within a block — and identical across the three
// styles, which is what makes the M/S/F training algorithms produce
// identical models.
package join
