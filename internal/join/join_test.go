package join

import (
	"fmt"
	"math/rand"
	"testing"

	"factorml/internal/storage"
)

// buildTables creates a fact table S(sid, fk1..fkq; dS features; target) and
// q dimension tables Ri(rid; dRi features). S tuple i references dimension
// key i % nRi in every dimension.
func buildTables(t *testing.T, db *storage.Database, nS int, dS int, nR []int, dR []int) *Spec {
	t.Helper()
	sSchema := &storage.Schema{Name: "S", Keys: []string{"sid"}, HasTarget: true}
	for i := range nR {
		sSchema.Keys = append(sSchema.Keys, fmt.Sprintf("fk%d", i+1))
	}
	for i := 0; i < dS; i++ {
		sSchema.Features = append(sSchema.Features, fmt.Sprintf("xs%d", i))
	}
	sTbl, err := db.CreateTable(sSchema)
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{S: sTbl}
	for q := range nR {
		rSchema := &storage.Schema{Name: fmt.Sprintf("R%d", q+1), Keys: []string{"rid"}}
		for i := 0; i < dR[q]; i++ {
			rSchema.Features = append(rSchema.Features, fmt.Sprintf("xr%d_%d", q+1, i))
		}
		rTbl, err := db.CreateTable(rSchema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nR[q]; i++ {
			feats := make([]float64, dR[q])
			for j := range feats {
				feats[j] = float64(1000*(q+1) + 10*i + j)
			}
			if err := rTbl.Append(&storage.Tuple{Keys: []int64{int64(i)}, Features: feats}); err != nil {
				t.Fatal(err)
			}
		}
		if err := rTbl.Flush(); err != nil {
			t.Fatal(err)
		}
		spec.Rs = append(spec.Rs, rTbl)
	}
	for i := 0; i < nS; i++ {
		keys := []int64{int64(i)}
		for q := range nR {
			keys = append(keys, int64(i%nR[q]))
		}
		feats := make([]float64, dS)
		for j := range feats {
			feats[j] = float64(10*i + j)
		}
		if err := sTbl.Append(&storage.Tuple{Keys: keys, Features: feats, Target: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sTbl.Flush(); err != nil {
		t.Fatal(err)
	}
	return spec
}

func openDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

type joinedRow struct {
	sid int64
	x   []float64
	y   float64
}

func collectStream(t *testing.T, sp *Spec) []joinedRow {
	t.Helper()
	var rows []joinedRow
	err := Stream(sp, func(sid int64, x []float64, y float64) error {
		rows = append(rows, joinedRow{sid, append([]float64{}, x...), y})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestValidate(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 10, 2, []int{3}, []int{2})
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Spec{}).Validate(); err == nil {
		t.Fatal("empty spec should fail")
	}
	if err := (&Spec{S: sp.S}).Validate(); err == nil {
		t.Fatal("spec without dimensions should fail")
	}
	// Wrong fk arity: binary spec reusing a 2-fk fact table.
	db2 := openDB(t)
	sp2 := buildTables(t, db2, 5, 1, []int{2, 2}, []int{1, 1})
	bad := &Spec{S: sp2.S, Rs: sp2.Rs[:1]}
	if err := bad.Validate(); err == nil {
		t.Fatal("fk arity mismatch should fail")
	}
}

func TestBinaryJoinStreamContents(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 20, 2, []int{4}, []int{3})
	rows := collectStream(t, sp)
	if len(rows) != 20 {
		t.Fatalf("joined %d rows, want 20", len(rows))
	}
	for _, r := range rows {
		i := int(r.sid)
		if len(r.x) != 5 {
			t.Fatalf("row %d has %d features, want 5", i, len(r.x))
		}
		if r.x[0] != float64(10*i) || r.x[1] != float64(10*i+1) {
			t.Fatalf("row %d S features wrong: %v", i, r.x[:2])
		}
		ri := i % 4
		for j := 0; j < 3; j++ {
			if r.x[2+j] != float64(1000+10*ri+j) {
				t.Fatalf("row %d R features wrong: %v", i, r.x[2:])
			}
		}
		if r.y != float64(i) {
			t.Fatalf("row %d target %v, want %v", i, r.y, float64(i))
		}
	}
}

func TestMaterializeMatchesStream(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 50, 3, []int{7}, []int{4})
	want := collectStream(t, sp)
	tTbl, counts, err := Materialize(db, sp, "")
	if err != nil {
		t.Fatal(err)
	}
	if tTbl.Schema().Name != "T_S" {
		t.Fatalf("materialized name %q", tTbl.Schema().Name)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(len(want)) {
		t.Fatalf("block counts sum to %d, want %d", total, len(want))
	}
	if tTbl.NumTuples() != int64(len(want)) {
		t.Fatalf("T has %d tuples, want %d", tTbl.NumTuples(), len(want))
	}
	sc := tTbl.NewScanner()
	i := 0
	for sc.Next() {
		tp := sc.Tuple()
		w := want[i]
		if tp.Keys[0] != w.sid || tp.Target != w.y {
			t.Fatalf("row %d: sid/target mismatch: got (%d,%v) want (%d,%v)", i, tp.Keys[0], tp.Target, w.sid, w.y)
		}
		for j := range w.x {
			if tp.Features[j] != w.x[j] {
				t.Fatalf("row %d feature %d: got %v want %v", i, j, tp.Features[j], w.x[j])
			}
		}
		i++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
}

func TestMultiBlockJoinCoversAllTuples(t *testing.T) {
	db := openDB(t)
	// R has 1200 tuples at 16 bytes each => 511/page => 3 pages. BlockPages=1
	// forces 3 blocks.
	sp := buildTables(t, db, 2000, 1, []int{1200}, []int{1})
	sp.BlockPages = 1
	runner, err := NewRunner(sp)
	if err != nil {
		t.Fatal(err)
	}
	if nb := runner.NumBlocks(); nb != 3 {
		t.Fatalf("NumBlocks = %d, want 3", nb)
	}
	seen := make(map[int64]bool)
	blocks := 0
	err = runner.Run(Callbacks{
		OnBlockStart: func(b []*storage.Tuple) error { blocks++; return nil },
		OnMatch: func(s *storage.Tuple, r1Idx int, _ []int) error {
			if seen[s.Keys[0]] {
				return fmt.Errorf("sid %d emitted twice", s.Keys[0])
			}
			seen[s.Keys[0]] = true
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocks != 3 {
		t.Fatalf("saw %d blocks, want 3", blocks)
	}
	if len(seen) != 2000 {
		t.Fatalf("joined %d distinct sids, want 2000", len(seen))
	}
}

func TestMultiBlockMaterializeMatchesStreamOrder(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 1500, 1, []int{1100}, []int{2})
	sp.BlockPages = 1
	want := collectStream(t, sp)
	tTbl, counts, err := Materialize(db, sp, "T_multi")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(sp)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(counts)) != runner.NumBlocks() {
		t.Fatalf("got %d block counts, want %d blocks", len(counts), runner.NumBlocks())
	}
	sc := tTbl.NewScanner()
	i := 0
	for sc.Next() {
		if sc.Tuple().Keys[0] != want[i].sid {
			t.Fatalf("row %d: sid %d, want %d (order must match)", i, sc.Tuple().Keys[0], want[i].sid)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("materialized %d rows, want %d", i, len(want))
	}
}

func TestMultiwayJoin(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 30, 2, []int{5, 3}, []int{2, 4})
	rows := collectStream(t, sp)
	if len(rows) != 30 {
		t.Fatalf("joined %d rows, want 30", len(rows))
	}
	if got, want := sp.JoinedWidth(), 2+2+4; got != want {
		t.Fatalf("JoinedWidth = %d, want %d", got, want)
	}
	offs := sp.FeatureOffsets()
	if offs[0] != 0 || offs[1] != 2 || offs[2] != 4 {
		t.Fatalf("FeatureOffsets = %v", offs)
	}
	for _, r := range rows {
		i := int(r.sid)
		r1 := i % 5
		r2 := i % 3
		if r.x[2] != float64(1000+10*r1) {
			t.Fatalf("row %d R1 feature: %v", i, r.x[2])
		}
		if r.x[4] != float64(2000+10*r2) || r.x[7] != float64(2000+10*r2+3) {
			t.Fatalf("row %d R2 features: %v", i, r.x[4:])
		}
	}
}

func TestDanglingFKSkipped(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 5, 1, []int{3}, []int{1})
	// Append a fact tuple referencing a missing dimension key.
	err := sp.S.Append(&storage.Tuple{Keys: []int64{99, 42}, Features: []float64{0}, Target: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.S.Flush(); err != nil {
		t.Fatal(err)
	}
	rows := collectStream(t, sp)
	if len(rows) != 5 {
		t.Fatalf("joined %d rows, want 5 (dangling fk skipped)", len(rows))
	}
}

func TestIndexedStreamMatchesStream(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 40, 2, []int{6}, []int{3})
	want := collectStream(t, sp) // single block: S order
	var got []joinedRow
	err := IndexedStream(sp, func(sid int64, x []float64, y float64) error {
		got = append(got, joinedRow{sid, append([]float64{}, x...), y})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("IndexedStream %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].sid != want[i].sid || got[i].y != want[i].y {
			t.Fatalf("row %d mismatch", i)
		}
		for j := range want[i].x {
			if got[i].x[j] != want[i].x[j] {
				t.Fatalf("row %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestHashIndexDuplicateKey(t *testing.T) {
	db := openDB(t)
	s := &storage.Schema{Name: "dup", Keys: []string{"rid"}, Features: []string{"f"}}
	tbl, err := db.CreateTable(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := tbl.Append(&storage.Tuple{Keys: []int64{7}, Features: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := BuildHashIndex(tbl); err == nil {
		t.Fatal("duplicate pk should fail index build")
	}
}

func TestHashIndexLookup(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 1, 1, []int{4}, []int{2})
	ix, err := BuildHashIndex(sp.Rs[0])
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	var tp storage.Tuple
	ok, err := ix.Lookup(2, &tp)
	if err != nil || !ok {
		t.Fatalf("Lookup(2) = %v, %v", ok, err)
	}
	if tp.Features[0] != 1020 {
		t.Fatalf("Lookup(2) features = %v", tp.Features)
	}
	ok, err = ix.Lookup(99, &tp)
	if err != nil || ok {
		t.Fatalf("Lookup(99) = %v, %v, want miss", ok, err)
	}
}

// The block-nested-loops cost model of §V-A: one streaming pass costs
// |R| + ceil(|R|/BlockPages)·|S| logical page reads.
func TestBNLLogicalIOCostModel(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 3000, 1, []int{1200}, []int{1})
	sp.BlockPages = 1
	runner, err := NewRunner(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Prime resident load (none here) and measure one pass.
	db.Pool().ResetStats()
	if err := StreamWith(runner, func(int64, []float64, float64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := db.Pool().Stats()
	rPages := sp.Rs[0].NumPages()
	sPages := sp.S.NumPages()
	want := rPages + runner.NumBlocks()*sPages
	if st.LogicalReads != want {
		t.Fatalf("logical reads = %d, want |R| + blocks·|S| = %d + %d·%d = %d",
			st.LogicalReads, rPages, runner.NumBlocks(), sPages, want)
	}
}

func TestJoinedSchemaShape(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 1, 2, []int{2, 2}, []int{1, 3})
	sch := JoinedSchema(sp, "T")
	if sch.NumFeatures() != 6 || !sch.HasTarget || sch.NumKeys() != 1 {
		t.Fatalf("JoinedSchema = %v", sch)
	}
	if sch.Features[0] != "S.xs0" || sch.Features[2] != "R1.xr1_0" || sch.Features[3] != "R2.xr2_0" {
		t.Fatalf("JoinedSchema feature names = %v", sch.Features)
	}
}

func TestShuffleChangesBlockOrderNotContent(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 900, 1, []int{800}, []int{1})
	sp.BlockPages = 1
	runner, err := NewRunner(sp)
	if err != nil {
		t.Fatal(err)
	}
	collect := func() []int64 {
		var sids []int64
		err := runner.Run(Callbacks{
			OnMatch: func(s *storage.Tuple, _ int, _ []int) error {
				sids = append(sids, s.Keys[0])
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sids
	}
	plain := collect()
	rng := rand.New(rand.NewSource(5))
	runner.Shuffle(rng)
	shuffled := collect()
	if len(plain) != len(shuffled) {
		t.Fatalf("shuffle changed row count: %d vs %d", len(plain), len(shuffled))
	}
	// Same multiset of rows…
	seen := make(map[int64]int)
	for _, s := range plain {
		seen[s]++
	}
	for _, s := range shuffled {
		seen[s]--
	}
	for sid, c := range seen {
		if c != 0 {
			t.Fatalf("sid %d appears %+d times after shuffle", sid, c)
		}
	}
	// …in a different order.
	same := true
	for i := range plain {
		if plain[i] != shuffled[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shuffle produced identical emission order")
	}
	// Restoring sequential order reproduces the original stream.
	runner.Shuffle(nil)
	restored := collect()
	for i := range plain {
		if plain[i] != restored[i] {
			t.Fatal("Shuffle(nil) did not restore sequential order")
		}
	}
}

func TestShuffleDeterministicPerSeed(t *testing.T) {
	db := openDB(t)
	sp := buildTables(t, db, 400, 1, []int{350}, []int{1})
	sp.BlockPages = 1
	order := func(seed int64) []int64 {
		runner, err := NewRunner(sp)
		if err != nil {
			t.Fatal(err)
		}
		runner.Shuffle(rand.New(rand.NewSource(seed)))
		var sids []int64
		err = runner.Run(Callbacks{
			OnMatch: func(s *storage.Tuple, _ int, _ []int) error {
				sids = append(sids, s.Keys[0])
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sids
	}
	a := order(7)
	b := order(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
}
