package join

import (
	"fmt"

	"factorml/internal/storage"
)

// ResidentIndex pins a dimension table's feature vectors in memory, keyed
// by primary key. Unlike HashIndex — whose lookups read pages through the
// (single-threaded) buffer pool — a ResidentIndex is immutable after
// construction and safe for concurrent probing, which is what the serving
// path needs: the prediction engine probes one ResidentIndex per dimension
// table from every worker of a request batch. The paper's setting already
// assumes the dimension relations fit in memory (the block-nested-loops
// join keeps Rs[1:] resident); this reuses that assumption at serve time.
type ResidentIndex struct {
	name  string
	width int
	feats map[int64][]float64
}

// BuildResidentIndex scans the table once and pins every tuple's features.
func BuildResidentIndex(t *storage.Table) (*ResidentIndex, error) {
	ix := &ResidentIndex{
		name:  t.Schema().Name,
		width: t.Schema().NumFeatures(),
		feats: make(map[int64][]float64, t.NumTuples()),
	}
	sc := t.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		pk := tp.PrimaryKey()
		if _, dup := ix.feats[pk]; dup {
			return nil, fmt.Errorf("join: duplicate primary key %d in %q", pk, ix.name)
		}
		ix.feats[pk] = append([]float64{}, tp.Features...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Name returns the indexed table's name.
func (ix *ResidentIndex) Name() string { return ix.name }

// Width returns the indexed table's feature width.
func (ix *ResidentIndex) Width() int { return ix.width }

// Len returns the number of indexed tuples.
func (ix *ResidentIndex) Len() int { return len(ix.feats) }

// Lookup returns the features of the tuple with the given primary key. The
// slice is shared and must not be modified.
func (ix *ResidentIndex) Lookup(pk int64) ([]float64, bool) {
	f, ok := ix.feats[pk]
	return f, ok
}
