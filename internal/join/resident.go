package join

import (
	"fmt"
	"sync"

	"factorml/internal/storage"
)

// ResidentIndex pins a dimension table's feature vectors in memory, keyed
// by primary key. Unlike HashIndex — whose lookups read pages through the
// (single-threaded) buffer pool — a ResidentIndex serves concurrent probes,
// which is what the serving path needs: the prediction engine probes one
// ResidentIndex per dimension table from every worker of a request batch.
// The paper's setting already assumes the dimension relations fit in memory
// (the block-nested-loops join keeps Rs[1:] resident); this reuses that
// assumption at serve time.
//
// Since the streaming subsystem (internal/stream) landed, the index is no
// longer immutable: Upsert installs new or replacement feature vectors
// under a write lock, so dimension updates can reach a live server without
// a rebuild. Feature slices themselves stay immutable — a replacement
// installs a FRESH slice — so a reader holding a slice from Lookup never
// observes a mutation, and slice identity doubles as a per-key freshness
// token for caches derived from the index (see internal/serve's dimCache).
//
// Every tuple also gets a dense index in insertion order (Pos/At), stable
// across Upserts of existing keys. The incremental-statistics accumulators
// key their per-dimension-tuple (group) state by this index, which makes
// their assembly order — and hence their floating-point results —
// independent of map iteration order.
type ResidentIndex struct {
	name  string
	width int
	nrefs int // foreign-key columns per tuple (snowflake sub-dimension refs)

	mu    sync.RWMutex
	pks   []int64       // dense index -> primary key, insertion order
	pos   map[int64]int // primary key -> dense index
	feats [][]float64   // dense index -> features (slices are immutable)
	subs  [][]int64     // dense index -> foreign keys (slices are immutable)
}

// BuildResidentIndex scans the table once and pins every tuple's features
// and foreign keys (the latter resolve sub-dimension hops in a snowflake).
func BuildResidentIndex(t *storage.Table) (*ResidentIndex, error) {
	ix := &ResidentIndex{
		name:  t.Schema().Name,
		width: t.Schema().NumFeatures(),
		nrefs: t.Schema().NumKeys() - 1,
		pos:   make(map[int64]int, t.NumTuples()),
	}
	sc := t.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		pk := tp.PrimaryKey()
		if at, dup := ix.pos[pk]; dup {
			return nil, fmt.Errorf(
				"join: duplicate primary key %d in table %q: tuple at row %d has features %v, tuple at row %d has features %v",
				pk, ix.name, at, ix.feats[at], len(ix.feats), tp.Features)
		}
		ix.pos[pk] = len(ix.pks)
		ix.pks = append(ix.pks, pk)
		ix.feats = append(ix.feats, append([]float64{}, tp.Features...))
		ix.subs = append(ix.subs, append([]int64{}, tp.Keys[1:]...))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Name returns the indexed table's name.
func (ix *ResidentIndex) Name() string { return ix.name }

// Width returns the indexed table's feature width.
func (ix *ResidentIndex) Width() int { return ix.width }

// Len returns the number of indexed tuples.
func (ix *ResidentIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.pks)
}

// Lookup returns the features of the tuple with the given primary key. The
// slice is immutable and shared; do not modify it.
func (ix *ResidentIndex) Lookup(pk int64) ([]float64, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	i, ok := ix.pos[pk]
	if !ok {
		return nil, false
	}
	return ix.feats[i], true
}

// Pos returns the dense insertion-order index of the tuple with the given
// primary key. The index is stable: Upserts of existing keys keep it, and
// new keys always append.
func (ix *ResidentIndex) Pos(pk int64) (int, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	i, ok := ix.pos[pk]
	return i, ok
}

// At returns the primary key and features of the tuple with dense index i
// (0 ≤ i < Len). The feature slice is immutable and shared.
func (ix *ResidentIndex) At(i int) (pk int64, feats []float64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.pks[i], ix.feats[i]
}

// NumRefs returns the number of foreign-key columns per indexed tuple.
func (ix *ResidentIndex) NumRefs() int { return ix.nrefs }

// SubsAt returns the foreign keys of the tuple with dense index i. The
// slice is immutable and shared (like Lookup's feature slices, a
// replacement installs a fresh slice).
func (ix *ResidentIndex) SubsAt(i int) []int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.subs[i]
}

// Upsert installs the foreign keys and features for a primary key —
// replacing the existing tuple's vectors, or appending a new tuple at the
// next dense index. Both slices are copied into fresh allocations that are
// never mutated afterwards (the freshness-token contract above). subs may
// be nil for a table without sub-dimension references.
func (ix *ResidentIndex) Upsert(pk int64, subs []int64, feats []float64) (isNew bool, err error) {
	if len(feats) != ix.width {
		return false, fmt.Errorf("join: upsert of key %d into %q has %d features, table has %d",
			pk, ix.name, len(feats), ix.width)
	}
	if len(subs) != ix.nrefs {
		return false, fmt.Errorf("join: upsert of key %d into %q has %d foreign keys, table has %d",
			pk, ix.name, len(subs), ix.nrefs)
	}
	cp := append([]float64{}, feats...)
	scp := append([]int64{}, subs...)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if i, ok := ix.pos[pk]; ok {
		ix.feats[i] = cp
		ix.subs[i] = scp
	} else {
		isNew = true
		ix.pos[pk] = len(ix.pks)
		ix.pks = append(ix.pks, pk)
		ix.feats = append(ix.feats, cp)
		ix.subs = append(ix.subs, scp)
	}
	return isNew, nil
}
