package data

import (
	"math/rand"
	"testing"

	"factorml/internal/join"
	"factorml/internal/storage"
)

func openDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestGenerateBinaryShapes(t *testing.T) {
	db := openDB(t)
	spec, err := Generate(db, "g", SynthConfig{NS: 500, NR: []int{50}, DS: 3, DR: []int{4}, WithTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	if spec.S.NumTuples() != 500 || spec.Rs[0].NumTuples() != 50 {
		t.Fatalf("cardinalities: S=%d R=%d", spec.S.NumTuples(), spec.Rs[0].NumTuples())
	}
	if spec.JoinedWidth() != 7 {
		t.Fatalf("JoinedWidth = %d, want 7", spec.JoinedWidth())
	}
	if !spec.S.Schema().HasTarget {
		t.Fatal("fact table should carry a target")
	}
	// Every fact tuple must join (fk integrity).
	n := 0
	err = join.Stream(spec, func(_ int64, x []float64, y float64) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("join produced %d tuples, want 500", n)
	}
}

func TestGenerateMultiway(t *testing.T) {
	db := openDB(t)
	spec, err := Generate(db, "m", SynthConfig{NS: 300, NR: []int{20, 10}, DS: 2, DR: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rs) != 2 {
		t.Fatalf("got %d dimension tables, want 2", len(spec.Rs))
	}
	if spec.JoinedWidth() != 9 {
		t.Fatalf("JoinedWidth = %d, want 9", spec.JoinedWidth())
	}
	n := 0
	if err := join.Stream(spec, func(int64, []float64, float64) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("join produced %d tuples, want 300", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	db := openDB(t)
	cfg := SynthConfig{NS: 100, NR: []int{10}, DS: 2, DR: []int{2}, Seed: 42, WithTarget: true}
	s1, err := Generate(db, "a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(db, "b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rows1, rows2 [][]float64
	collect := func(sp *join.Spec, dst *[][]float64) {
		err := join.Stream(sp, func(_ int64, x []float64, y float64) error {
			*dst = append(*dst, append(append([]float64{}, x...), y))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	collect(s1, &rows1)
	collect(s2, &rows2)
	for i := range rows1 {
		for j := range rows1[i] {
			if rows1[i][j] != rows2[i][j] {
				t.Fatalf("row %d col %d differs across same-seed generations", i, j)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	db := openDB(t)
	if _, err := Generate(db, "x", SynthConfig{NS: 0, NR: []int{1}, DR: []int{1}}); err == nil {
		t.Fatal("NS=0 should fail")
	}
	if _, err := Generate(db, "y", SynthConfig{NS: 1, NR: []int{1, 2}, DR: []int{1}}); err == nil {
		t.Fatal("NR/DR mismatch should fail")
	}
	if _, err := Generate(db, "z", SynthConfig{NS: 1, NR: []int{0}, DR: []int{1}}); err == nil {
		t.Fatal("NR=0 should fail")
	}
}

func TestShapeByName(t *testing.T) {
	s, err := ShapeByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	if s.NS != 421570 || s.DS != 3 || s.NR != 2340 || s.DR != 9 {
		t.Fatalf("Walmart shape = %+v", s)
	}
	if _, err := ShapeByName("nope"); err == nil {
		t.Fatal("unknown shape should fail")
	}
	m, _ := ShapeByName("Movies3way")
	if !m.Multi() {
		t.Fatal("Movies3way must be multi-way")
	}
}

func TestGenerateShapeScaledPreservesRR(t *testing.T) {
	db := openDB(t)
	shape, _ := ShapeByName("Walmart")
	spec, err := GenerateShape(db, shape, 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	nS := float64(spec.S.NumTuples())
	nR := float64(spec.Rs[0].NumTuples())
	origRR := float64(shape.NS) / float64(shape.NR)
	gotRR := nS / nR
	if gotRR < origRR*0.8 || gotRR > origRR*1.25 {
		t.Fatalf("tuple ratio %v too far from original %v", gotRR, origRR)
	}
}

func TestGenerateShapeSparse(t *testing.T) {
	db := openDB(t)
	shape, _ := ShapeByName("MoviesSparse")
	spec, err := GenerateShape(db, shape, 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every feature must be 0/1 with exactly one 1 per ~8-wide group.
	groups := oneHotGroups(shape.DR)
	wantOnes := len(oneHotGroups(shape.DS)) + len(groups)
	err = join.Stream(spec, func(_ int64, x []float64, _ float64) error {
		ones := 0
		for _, v := range x {
			if v == 1 {
				ones++
			} else if v != 0 {
				t.Fatalf("non-binary feature %v in sparse dataset", v)
			}
		}
		if ones != wantOnes {
			t.Fatalf("got %d ones, want %d", ones, wantOnes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenerateShapeBadScale(t *testing.T) {
	db := openDB(t)
	shape, _ := ShapeByName("Walmart")
	if _, err := GenerateShape(db, shape, 0, 1); err == nil {
		t.Fatal("scale 0 should fail")
	}
	if _, err := GenerateShape(db, shape, 1.5, 1); err == nil {
		t.Fatal("scale > 1 should fail")
	}
}

func TestOneHotGroups(t *testing.T) {
	if got := oneHotGroups(0); got != nil {
		t.Fatalf("oneHotGroups(0) = %v", got)
	}
	sizes := oneHotGroups(21)
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 21 {
		t.Fatalf("group sizes %v do not sum to 21", sizes)
	}
	if len(sizes) != 2 {
		t.Fatalf("oneHotGroups(21) = %v, want 2 groups", sizes)
	}
}

func TestOneHotFill(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 10)
	for i := range x {
		x[i] = 99
	}
	groups := oneHotGroups(10)
	oneHotFill(x, groups, rng)
	ones := 0
	for _, v := range x {
		if v == 1 {
			ones++
		} else if v != 0 {
			t.Fatalf("unexpected value %v", v)
		}
	}
	if ones != len(groups) {
		t.Fatalf("%d ones, want %d", ones, len(groups))
	}
}
