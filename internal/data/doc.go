// Package data generates the workloads of the paper's evaluation (§VII):
//
//   - Synthetic star schemas with controllable tuple ratio rr = nS/nR,
//     feature widths dS/dR(i), and number of underlying Gaussian clusters.
//     Features are sampled from mixtures of Gaussians with added noise,
//     following the paper's §VII-A (which itself follows Kumar et al.).
//   - Simulated stand-ins for the Hamlet real datasets (Expedia, Walmart,
//     Movies, and the augmented Expedia3-5): relations with the exact
//     cardinalities and dimensionalities of Tables IV/V, optionally scaled
//     down by a factor for CI-sized runs. The environment is offline, so
//     the real values are substituted by synthetic ones with the same
//     shape; the training algorithms' costs depend on (nS, nR, dS, dR, rr),
//     not on the feature values, so the performance geometry is preserved
//     (see DESIGN.md §3).
//   - One-hot ("Sparse") encodings for the NN real-dataset experiments
//     (Table VII).
package data
