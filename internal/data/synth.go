package data

import (
	"fmt"
	"math"
	"math/rand"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// SynthConfig describes a synthetic star schema S ⋈ R1 ⋈ … ⋈ Rq — or,
// with Depth > 1, a snowflake in which every dimension table recursively
// references DimsPerLevel sub-dimension tables down to the given depth.
type SynthConfig struct {
	NS int   // fact tuples
	NR []int // dimension tuples per top-level dimension table
	DS int   // fact features
	DR []int // dimension features per top-level dimension table

	// Depth is the dimension-hierarchy depth: 1 (the default) is the
	// classic one-hop star; at Depth d every dimension table above the
	// leaf level references DimsPerLevel sub-dimension tables. Each
	// sub-dimension inherits its parent's feature width and has
	// max(2, parent cardinality / 4) tuples, so deeper levels are shared
	// by ever more parent tuples — the redundancy the factorized trainers
	// exploit at every level.
	Depth int
	// DimsPerLevel is how many sub-dimension tables each non-leaf
	// dimension table references when Depth > 1 (default 1).
	DimsPerLevel int

	Clusters int     // Gaussian clusters features are sampled from (default 5)
	Noise    float64 // additive N(0, Noise²) noise (default 0.1)
	Seed     int64   // RNG seed (default 1)

	WithTarget bool // generate a regression target on S (for NN)
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Clusters == 0 {
		c.Clusters = 5
	}
	if c.Noise == 0 {
		c.Noise = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Depth == 0 {
		c.Depth = 1
	}
	if c.DimsPerLevel == 0 {
		c.DimsPerLevel = 1
	}
	return c
}

func (c SynthConfig) validate() error {
	if c.NS <= 0 || c.DS < 0 {
		return fmt.Errorf("data: invalid fact shape nS=%d dS=%d", c.NS, c.DS)
	}
	if len(c.NR) == 0 || len(c.NR) != len(c.DR) {
		return fmt.Errorf("data: NR/DR length mismatch: %d vs %d", len(c.NR), len(c.DR))
	}
	for i := range c.NR {
		if c.NR[i] <= 0 || c.DR[i] < 0 {
			return fmt.Errorf("data: invalid dimension shape nR%d=%d dR%d=%d", i+1, c.NR[i], i+1, c.DR[i])
		}
	}
	if c.Depth < 1 {
		return fmt.Errorf("data: invalid hierarchy depth %d, want >= 1", c.Depth)
	}
	if c.DimsPerLevel < 1 {
		return fmt.Errorf("data: invalid dims-per-level %d, want >= 1", c.DimsPerLevel)
	}
	return nil
}

// clusterSampler draws feature vectors from a mixture of well-separated
// Gaussians plus noise.
type clusterSampler struct {
	centers [][]float64
	rng     *rand.Rand
	noise   float64
}

func newClusterSampler(rng *rand.Rand, clusters, dim int, noise float64) *clusterSampler {
	cs := &clusterSampler{rng: rng, noise: noise}
	for c := 0; c < clusters; c++ {
		center := make([]float64, dim)
		for i := range center {
			center[i] = 4 * rng.NormFloat64() // spread centers out
		}
		cs.centers = append(cs.centers, center)
	}
	return cs
}

func (cs *clusterSampler) sample(dst []float64) {
	center := cs.centers[cs.rng.Intn(len(cs.centers))]
	for i := range dst {
		v := cs.rng.NormFloat64()
		if i < len(center) {
			v += center[i]
		}
		dst[i] = v + cs.noise*cs.rng.NormFloat64()
	}
}

// Generate creates the fact and dimension tables in db and returns a join
// spec over them. Foreign keys are assigned uniformly at random, so the
// expected group size of dimension tuple matches is rr = nS/nR — the
// redundancy knob of the paper's experiments. With cfg.Depth > 1 each
// dimension table recursively references cfg.DimsPerLevel sub-dimension
// tables (named <parent>_<i>), the references recorded in the catalog, and
// the returned spec covers the flattened snowflake.
func Generate(db *storage.Database, name string, cfg SynthConfig) (*join.Spec, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	q := len(cfg.NR)

	// makeDim creates the dimension table tblName with n tuples of d
	// features — building its sub-dimension subtree first (level counts
	// from 1), so foreign keys are drawn against known cardinalities.
	var makeDim func(tblName, featPrefix string, n, d, level int) (*storage.Table, error)
	makeDim = func(tblName, featPrefix string, n, d, level int) (*storage.Table, error) {
		var subNames []string
		var subNs []int
		if level < cfg.Depth {
			subN := n / 4
			if subN < 2 {
				subN = 2
			}
			for c := 0; c < cfg.DimsPerLevel; c++ {
				subName := fmt.Sprintf("%s_%d", tblName, c+1)
				if _, err := makeDim(subName, fmt.Sprintf("%s_%d", featPrefix, c+1), subN, d, level+1); err != nil {
					return nil, err
				}
				subNames = append(subNames, subName)
				subNs = append(subNs, subN)
			}
		}
		schema := &storage.Schema{Name: tblName, Keys: []string{"rid"}, Refs: subNames}
		for c := range subNames {
			schema.Keys = append(schema.Keys, fmt.Sprintf("fk%d", c+1))
		}
		for i := 0; i < d; i++ {
			schema.Features = append(schema.Features, fmt.Sprintf("%s_%d", featPrefix, i))
		}
		tbl, err := db.CreateTable(schema)
		if err != nil {
			return nil, err
		}
		sampler := newClusterSampler(rng, cfg.Clusters, d, cfg.Noise)
		feats := make([]float64, d)
		keys := make([]int64, 1+len(subNames))
		for i := 0; i < n; i++ {
			sampler.sample(feats)
			keys[0] = int64(i)
			for c, sn := range subNs {
				keys[1+c] = int64(rng.Intn(sn))
			}
			if err := tbl.Append(&storage.Tuple{Keys: keys, Features: feats}); err != nil {
				return nil, err
			}
		}
		if err := tbl.Flush(); err != nil {
			return nil, err
		}
		return tbl, nil
	}

	var direct []*storage.Table
	for j := 0; j < q; j++ {
		tbl, err := makeDim(fmt.Sprintf("%s_R%d", name, j+1), fmt.Sprintf("xr%d", j+1), cfg.NR[j], cfg.DR[j], 1)
		if err != nil {
			return nil, err
		}
		direct = append(direct, tbl)
	}

	sSchema := &storage.Schema{Name: fmt.Sprintf("%s_S", name), Keys: []string{"sid"}, HasTarget: cfg.WithTarget}
	for j := 0; j < q; j++ {
		sSchema.Keys = append(sSchema.Keys, fmt.Sprintf("fk%d", j+1))
		sSchema.Refs = append(sSchema.Refs, direct[j].Schema().Name)
	}
	for i := 0; i < cfg.DS; i++ {
		sSchema.Features = append(sSchema.Features, fmt.Sprintf("xs%d", i))
	}
	sTbl, err := db.CreateTable(sSchema)
	if err != nil {
		return nil, err
	}
	sampler := newClusterSampler(rng, cfg.Clusters, cfg.DS, cfg.Noise)
	feats := make([]float64, cfg.DS)
	keys := make([]int64, 1+q)
	// A fixed random direction defines the regression target, making the NN
	// experiments learnable rather than pure noise.
	wTarget := make([]float64, cfg.DS)
	for i := range wTarget {
		wTarget[i] = rng.NormFloat64()
	}
	for i := 0; i < cfg.NS; i++ {
		sampler.sample(feats)
		keys[0] = int64(i)
		for j := 0; j < q; j++ {
			keys[1+j] = int64(rng.Intn(cfg.NR[j]))
		}
		var y float64
		if cfg.WithTarget {
			for d, v := range feats {
				y += wTarget[d] * v
			}
			y = math.Tanh(y/math.Sqrt(float64(max(cfg.DS, 1)))) + cfg.Noise*rng.NormFloat64()
		}
		if err := sTbl.Append(&storage.Tuple{Keys: keys, Features: feats, Target: y}); err != nil {
			return nil, err
		}
	}
	if err := sTbl.Flush(); err != nil {
		return nil, err
	}
	return join.NewSnowflakeSpec(sTbl, direct, db.Table)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
