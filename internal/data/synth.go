package data

import (
	"fmt"
	"math"
	"math/rand"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// SynthConfig describes a synthetic star schema S ⋈ R1 ⋈ … ⋈ Rq.
type SynthConfig struct {
	NS int   // fact tuples
	NR []int // dimension tuples per dimension table
	DS int   // fact features
	DR []int // dimension features per dimension table

	Clusters int     // Gaussian clusters features are sampled from (default 5)
	Noise    float64 // additive N(0, Noise²) noise (default 0.1)
	Seed     int64   // RNG seed (default 1)

	WithTarget bool // generate a regression target on S (for NN)
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Clusters == 0 {
		c.Clusters = 5
	}
	if c.Noise == 0 {
		c.Noise = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c SynthConfig) validate() error {
	if c.NS <= 0 || c.DS < 0 {
		return fmt.Errorf("data: invalid fact shape nS=%d dS=%d", c.NS, c.DS)
	}
	if len(c.NR) == 0 || len(c.NR) != len(c.DR) {
		return fmt.Errorf("data: NR/DR length mismatch: %d vs %d", len(c.NR), len(c.DR))
	}
	for i := range c.NR {
		if c.NR[i] <= 0 || c.DR[i] < 0 {
			return fmt.Errorf("data: invalid dimension shape nR%d=%d dR%d=%d", i+1, c.NR[i], i+1, c.DR[i])
		}
	}
	return nil
}

// clusterSampler draws feature vectors from a mixture of well-separated
// Gaussians plus noise.
type clusterSampler struct {
	centers [][]float64
	rng     *rand.Rand
	noise   float64
}

func newClusterSampler(rng *rand.Rand, clusters, dim int, noise float64) *clusterSampler {
	cs := &clusterSampler{rng: rng, noise: noise}
	for c := 0; c < clusters; c++ {
		center := make([]float64, dim)
		for i := range center {
			center[i] = 4 * rng.NormFloat64() // spread centers out
		}
		cs.centers = append(cs.centers, center)
	}
	return cs
}

func (cs *clusterSampler) sample(dst []float64) {
	center := cs.centers[cs.rng.Intn(len(cs.centers))]
	for i := range dst {
		v := cs.rng.NormFloat64()
		if i < len(center) {
			v += center[i]
		}
		dst[i] = v + cs.noise*cs.rng.NormFloat64()
	}
}

// Generate creates the fact and dimension tables in db and returns a join
// spec over them. Foreign keys are assigned uniformly at random, so the
// expected group size of dimension tuple matches is rr = nS/nR — the
// redundancy knob of the paper's experiments.
func Generate(db *storage.Database, name string, cfg SynthConfig) (*join.Spec, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	q := len(cfg.NR)

	spec := &join.Spec{}
	for j := 0; j < q; j++ {
		schema := &storage.Schema{Name: fmt.Sprintf("%s_R%d", name, j+1), Keys: []string{"rid"}}
		for i := 0; i < cfg.DR[j]; i++ {
			schema.Features = append(schema.Features, fmt.Sprintf("xr%d_%d", j+1, i))
		}
		tbl, err := db.CreateTable(schema)
		if err != nil {
			return nil, err
		}
		sampler := newClusterSampler(rng, cfg.Clusters, cfg.DR[j], cfg.Noise)
		feats := make([]float64, cfg.DR[j])
		for i := 0; i < cfg.NR[j]; i++ {
			sampler.sample(feats)
			if err := tbl.Append(&storage.Tuple{Keys: []int64{int64(i)}, Features: feats}); err != nil {
				return nil, err
			}
		}
		if err := tbl.Flush(); err != nil {
			return nil, err
		}
		spec.Rs = append(spec.Rs, tbl)
	}

	sSchema := &storage.Schema{Name: fmt.Sprintf("%s_S", name), Keys: []string{"sid"}, HasTarget: cfg.WithTarget}
	for j := 0; j < q; j++ {
		sSchema.Keys = append(sSchema.Keys, fmt.Sprintf("fk%d", j+1))
	}
	for i := 0; i < cfg.DS; i++ {
		sSchema.Features = append(sSchema.Features, fmt.Sprintf("xs%d", i))
	}
	sTbl, err := db.CreateTable(sSchema)
	if err != nil {
		return nil, err
	}
	sampler := newClusterSampler(rng, cfg.Clusters, cfg.DS, cfg.Noise)
	feats := make([]float64, cfg.DS)
	keys := make([]int64, 1+q)
	// A fixed random direction defines the regression target, making the NN
	// experiments learnable rather than pure noise.
	wTarget := make([]float64, cfg.DS)
	for i := range wTarget {
		wTarget[i] = rng.NormFloat64()
	}
	for i := 0; i < cfg.NS; i++ {
		sampler.sample(feats)
		keys[0] = int64(i)
		for j := 0; j < q; j++ {
			keys[1+j] = int64(rng.Intn(cfg.NR[j]))
		}
		var y float64
		if cfg.WithTarget {
			for d, v := range feats {
				y += wTarget[d] * v
			}
			y = math.Tanh(y/math.Sqrt(float64(max(cfg.DS, 1)))) + cfg.Noise*rng.NormFloat64()
		}
		if err := sTbl.Append(&storage.Tuple{Keys: keys, Features: feats, Target: y}); err != nil {
			return nil, err
		}
	}
	if err := sTbl.Flush(); err != nil {
		return nil, err
	}
	spec.S = sTbl
	return spec, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
