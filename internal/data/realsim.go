package data

import (
	"fmt"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// Shape records the cardinalities and dimensionalities of one of the
// paper's real datasets (Tables IV and V). Multi = true marks the
// three-way Movies join (S ⋈ users ⋈ movies).
type Shape struct {
	Name   string
	NS, DS int
	NR, DR int
	// Second dimension table for the 3-way join variants.
	NR2, DR2 int
	Sparse   bool // one-hot encoded features (Table VII datasets)
}

// Multi reports whether the shape is a multi-way join.
func (s Shape) Multi() bool { return s.NR2 > 0 }

// RealShapes reproduces Tables IV and V of the paper, plus the Movies-3way
// dataset used in Tables VI/VII (R1 = users with 29 one-hot features,
// R2 = movies with 21 features, per the MovieLens-1M schema of the Hamlet
// repository).
var RealShapes = []Shape{
	{Name: "Expedia1", NS: 942142, DS: 7, NR: 11938, DR: 8},
	{Name: "Expedia2", NS: 942142, DS: 7, NR: 37021, DR: 14},
	{Name: "Walmart", NS: 421570, DS: 3, NR: 2340, DR: 9},
	{Name: "Movies", NS: 1000209, DS: 1, NR: 3706, DR: 21},
	{Name: "Expedia3", NS: 634133, DS: 7, NR: 2899, DR: 29},
	{Name: "Expedia4", NS: 634133, DS: 7, NR: 2899, DR: 78},
	{Name: "Expedia5", NS: 634133, DS: 7, NR: 2899, DR: 218},
	{Name: "WalmartSparse", NS: 421570, DS: 126, NR: 2340, DR: 175, Sparse: true},
	{Name: "MoviesSparse", NS: 1000209, DS: 1, NR: 3706, DR: 21, Sparse: true},
	{Name: "Movies3way", NS: 1000209, DS: 1, NR: 6040, DR: 29, NR2: 3706, DR2: 21},
	{Name: "Movies3waySparse", NS: 1000209, DS: 1, NR: 6040, DR: 29, NR2: 3706, DR2: 21, Sparse: true},
}

// ShapeByName looks a shape up by name.
func ShapeByName(name string) (Shape, error) {
	for _, s := range RealShapes {
		if s.Name == name {
			return s, nil
		}
	}
	return Shape{}, fmt.Errorf("data: unknown real dataset shape %q", name)
}

// GenerateShape builds a simulated instance of the named real dataset at
// the given scale ∈ (0,1]: the fact cardinality is multiplied by scale
// (dimension cardinalities are scaled too, but never below the point where
// the tuple ratio rr of the original is lost — rr is preserved exactly,
// which is what the algorithms' relative costs depend on).
func GenerateShape(db *storage.Database, shape Shape, scale float64, seed int64) (*join.Spec, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("data: scale %v out of (0,1]", scale)
	}
	nS := scaled(shape.NS, scale)
	nR := scaled(shape.NR, scale)
	nrs := []int{nR}
	drs := []int{shape.DR}
	if shape.Multi() {
		nrs = append(nrs, scaled(shape.NR2, scale))
		drs = append(drs, shape.DR2)
	}
	cfg := SynthConfig{
		NS: nS, NR: nrs,
		DS: shape.DS, DR: drs,
		Seed:       seed,
		WithTarget: true,
	}
	spec, err := Generate(db, shape.Name, cfg)
	if err != nil {
		return nil, err
	}
	if shape.Sparse {
		return sparsify(db, shape.Name, spec, seed)
	}
	return spec, nil
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 2 {
		v = 2
	}
	return v
}
