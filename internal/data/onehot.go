package data

import (
	"fmt"
	"math/rand"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// sparsify rewrites each relation of the spec with one-hot encoded features
// of the same width: the d feature columns are treated as g = max(1, d/8)
// categorical groups and exactly one column per group is set to 1. This
// mimics the "Sparse" representation of Table IV (the paper one-hot encodes
// the categorical attributes for the NN experiments), preserving the
// dimensionality and the high post-encoding redundancy.
func sparsify(db *storage.Database, name string, spec *join.Spec, seed int64) (*join.Spec, error) {
	rng := rand.New(rand.NewSource(seed + 1000003))
	out := &join.Spec{BlockPages: spec.BlockPages}
	rewrite := func(tbl *storage.Table, newName string) (*storage.Table, error) {
		schema := tbl.Schema().Clone(newName)
		dst, err := db.CreateTable(schema)
		if err != nil {
			return nil, err
		}
		d := schema.NumFeatures()
		groups := oneHotGroups(d)
		sc := tbl.NewScanner()
		for sc.Next() {
			tp := sc.Tuple()
			oneHotFill(tp.Features, groups, rng)
			if err := dst.Append(tp); err != nil {
				return nil, err
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if err := dst.Flush(); err != nil {
			return nil, err
		}
		return dst, nil
	}
	var err error
	if out.S, err = rewrite(spec.S, name+"_S_sparse"); err != nil {
		return nil, err
	}
	for j, r := range spec.Rs {
		t, err := rewrite(r, fmt.Sprintf("%s_R%d_sparse", name, j+1))
		if err != nil {
			return nil, err
		}
		out.Rs = append(out.Rs, t)
	}
	// Drop the dense intermediates; the sparse tables are the dataset.
	if err := db.DropTable(spec.S.Schema().Name); err != nil {
		return nil, err
	}
	for _, r := range spec.Rs {
		if err := db.DropTable(r.Schema().Name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// oneHotGroups splits d columns into categorical groups of ~8 columns.
func oneHotGroups(d int) []int {
	if d == 0 {
		return nil
	}
	g := d / 8
	if g < 1 {
		g = 1
	}
	sizes := make([]int, g)
	base := d / g
	rem := d % g
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return sizes
}

// oneHotFill overwrites x with a one-hot encoding: one 1 per group.
func oneHotFill(x []float64, groups []int, rng *rand.Rand) {
	for i := range x {
		x[i] = 0
	}
	off := 0
	for _, sz := range groups {
		x[off+rng.Intn(sz)] = 1
		off += sz
	}
}
