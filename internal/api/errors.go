// Package api defines the wire-level conventions of the HTTP surface:
// one structured error envelope with stable machine-readable codes,
// shared by every endpoint of internal/serve and internal/stream.
//
// The surface is split into two planes:
//
//   - the unversioned control plane — /healthz, /readyz, /statsz,
//     /metrics — whose payloads are operational and may evolve, and
//   - the versioned data plane under /v1/ — models, predict, ingest,
//     refresh — whose request/response shapes and error codes are stable
//     within a major version.
//
// Every non-2xx response from any endpoint is the envelope
//
//	{"error": {"code": "model_not_found",
//	           "message": "no model \"foo\"",
//	           "details": {…}}}
//
// Code is from the fixed catalog below and is what clients should branch
// on; Message is human-readable and may change; Details carries optional
// machine-readable context (the offending row index, the limit that
// tripped, …). Responses with status 429 or 503 additionally carry a
// Retry-After header (seconds).
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Stable machine-readable error codes. These are wire contract: clients
// branch on them, so existing values never change meaning.
const (
	// CodeInvalidRequest marks a request the server could not parse or
	// that fails basic shape validation (malformed JSON, unknown fields,
	// an empty batch).
	CodeInvalidRequest = "invalid_request"
	// CodePayloadTooLarge marks a request body over the endpoint's size
	// cap.
	CodePayloadTooLarge = "payload_too_large"
	// CodeMethodNotAllowed marks a known path hit with the wrong verb.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound marks an unknown route on the data plane.
	CodeNotFound = "not_found"
	// CodeModelNotFound marks an operation on an unregistered model name.
	CodeModelNotFound = "model_not_found"
	// CodeModelIncompatible marks a model whose shape cannot be served
	// over this server's dimension hierarchy.
	CodeModelIncompatible = "model_incompatible"
	// CodeRowWidthMismatch marks a prediction row whose fact feature
	// vector has the wrong width for the model.
	CodeRowWidthMismatch = "row_width_mismatch"
	// CodeFKCountMismatch marks a prediction row carrying the wrong
	// number of foreign keys for the schema.
	CodeFKCountMismatch = "fk_count_mismatch"
	// CodeUnknownForeignKey marks a row referencing a key absent from a
	// dimension table.
	CodeUnknownForeignKey = "unknown_foreign_key"
	// CodePredictOverloaded marks a predict rejected by admission
	// control: the model's in-flight limit was reached before any work
	// was admitted. Safe to retry after the Retry-After hint.
	CodePredictOverloaded = "predict_overloaded"
	// CodeIngestOverloaded marks an ingest rejected by admission control:
	// the bounded ingest queue was full before the batch was read. Safe
	// to retry after the Retry-After hint; nothing was applied.
	CodeIngestOverloaded = "ingest_overloaded"
	// CodeIngestInvalid marks a change batch rejected by validation with
	// no partial effects.
	CodeIngestInvalid = "ingest_invalid"
	// CodeStreamDisabled marks an ingest/refresh against a server booted
	// without a streaming change feed.
	CodeStreamDisabled = "stream_disabled"
	// CodeMonitoringDisabled marks a model-health query against a server
	// booted without the health monitor.
	CodeMonitoringDisabled = "monitoring_disabled"
	// CodeNotReady marks a server still loading its registry at boot.
	CodeNotReady = "not_ready"
	// CodeInternal marks a genuine server-side failure. For ingest the
	// batch may have been partially or fully applied — do not blindly
	// retry.
	CodeInternal = "internal"
)

// Error is the body of the envelope every non-2xx response carries.
type Error struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// Error implements the error interface so an api.Error can travel as a
// Go error where convenient.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Envelope is the top-level non-2xx response shape.
type Envelope struct {
	Error Error `json:"error"`
}

// WriteJSON writes v as an indented JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError writes the structured error envelope. Status 429 and 503
// responses carry a Retry-After header (defaulting to 1 second) so
// clients under admission control know when to come back.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteErrorDetails(w, status, code, nil, format, args...)
}

// WriteErrorDetails is WriteError with an optional details map.
func WriteErrorDetails(w http.ResponseWriter, status int, code string, details map[string]any, format string, args ...any) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfterSeconds))
		}
	}
	WriteJSON(w, status, Envelope{Error: Error{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Details: details,
	}})
}

// DefaultRetryAfterSeconds is the Retry-After hint on 429/503 responses
// when the handler does not set its own.
const DefaultRetryAfterSeconds = 1
