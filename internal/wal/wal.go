// Package wal implements the write-ahead log behind crash-safe
// streaming: every acked ingest batch and explicit refresh is framed,
// CRC-protected, and fsynced (group-committed across concurrent
// writers) before the caller sees success. Alongside the log the
// package manages atomic snapshot rotation (snapshot.go) so recovery
// is "restore last snapshot, replay the tail", and exposes the tail as
// an ordered change feed (Tail) — the replication hook for read
// replicas following a primary.
//
// The log is a directory of segment files named by the LSN of their
// first record (0000000000000001.wal, ...). A record is framed as
//
//	[u32 LE payload length][u32 LE CRC-32 (IEEE) of length‖payload][payload]
//
// LSNs are assigned densely from 1 in append order. On open, every
// segment is scanned: an invalid frame in any position that is
// followed by parseable data is hard corruption (CorruptError naming
// the segment and byte offset — the operator must intervene), while an
// invalid frame with nothing valid after it is a torn tail from a
// crash mid-append and is truncated away silently; such a record was
// never acked, because acks happen only after fsync.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxRecordBytes bounds a single record; longer length prefixes are
// treated as frame corruption rather than attempted allocations.
const maxRecordBytes = 64 << 20

const frameHeaderBytes = 8

// Options configures a Log. The zero value is usable: 4 MiB segments
// with every append group-committed durable before it returns.
type Options struct {
	// SegmentBytes is the rotation threshold: a new segment starts
	// once the active one reaches this many bytes. Default 4 MiB.
	SegmentBytes int64

	// FsyncEvery controls the durability window. At 1 (the default)
	// every Append blocks until its record is fsynced — concurrent
	// appenders share one fsync via group commit, so the cost
	// amortizes under load without weakening the guarantee. At N>1
	// the log fsyncs only every N-th record and Append may return
	// before its record is durable: a deliberate, bounded-loss
	// trade for ingest latency.
	FsyncEvery int

	// NoSync disables fsync entirely (tests and benchmarks that
	// simulate crashes by copying files rather than losing power).
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncEvery < 1 {
		o.FsyncEvery = 1
	}
	return o
}

// CorruptError reports an unrecoverable frame failure: a record whose
// CRC or framing is invalid even though valid data follows it, which a
// crash cannot produce (crashes tear only the tail).
type CorruptError struct {
	Segment string // segment file path
	Offset  int64  // byte offset of the bad frame within the segment
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record in segment %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Stats is a point-in-time snapshot of log health for /statsz and
// /metrics.
type Stats struct {
	LastLSN       int64         `json:"last_lsn"`
	SnapshotLSN   int64         `json:"snapshot_lsn"`
	Segments      int           `json:"segments"`
	ActiveSegment string        `json:"active_segment"`
	Bytes         int64         `json:"bytes"` // live bytes across all segments
	Appends       int64         `json:"appends"`
	AppendedBytes int64         `json:"appended_bytes"`
	Fsyncs        int64         `json:"fsyncs"`
	FsyncTotal    time.Duration `json:"fsync_total_ns"`
	LastFsync     time.Duration `json:"last_fsync_ns"`
}

type segment struct {
	path     string
	firstLSN int64
	bytes    int64 // valid bytes (final size for sealed segments)
}

// Log is an append-only write-ahead log over a directory of segment
// files. All methods are safe for concurrent use; nil-receiver reads
// (Enabled, LastLSN, Stats) are no-ops so disabled-durability hot
// paths stay branch-only.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex // serializes appends, rotation, truncation
	segs      []segment
	active    *os.File
	activeOff int64 // bytes written to the active segment
	basePos   int64 // global byte position where the active segment starts
	lastLSN   int64
	snapLSN   int64
	closed    bool
	frameBuf  []byte // reused append frame

	// Group-commit state. Lock order: mu before sm; the fsync itself
	// runs with neither held so appenders can keep writing.
	sm        sync.Mutex
	syncCond  *sync.Cond
	syncFile  *os.File
	writePos  int64 // global bytes written (mirrors basePos+activeOff)
	syncedPos int64 // global bytes known durable
	syncing   bool
	syncErr   error
	sinceSync int

	statFsyncs     int64
	statFsyncNanos int64
	statLastFsync  int64
	statAppends    int64
	statBytes      int64
}

// Open opens (or creates) the log in dir, verifying every segment. A
// torn tail in the final segment is truncated away; corruption
// anywhere else returns a *CorruptError naming the segment and offset.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	l.syncCond = sync.NewCond(&l.sm)
	if _, lsn, ok, err := CurrentSnapshot(dir); err != nil {
		return nil, err
	} else if ok {
		l.snapLSN = lsn
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		first := l.snapLSN + 1
		f, path, err := createSegment(dir, first, opts.NoSync)
		if err != nil {
			return nil, err
		}
		l.segs = []segment{{path: path, firstLSN: first}}
		l.active = f
		l.lastLSN = l.snapLSN
		l.syncFile = f
		return l, nil
	}

	for i := range segs {
		last := i == len(segs)-1
		count, valid, tearOff, torn, err := scanSegment(segs[i].path, last)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := os.Truncate(segs[i].path, tearOff); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", segs[i].path, err)
			}
			valid = tearOff
		}
		segs[i].bytes = valid
		if !last && segs[i+1].firstLSN != segs[i].firstLSN+int64(count) {
			return nil, &CorruptError{
				Segment: segs[i].path,
				Offset:  valid,
				Reason: fmt.Sprintf("segment holds %d records from LSN %d but next segment starts at %d",
					count, segs[i].firstLSN, segs[i+1].firstLSN),
			}
		}
		if last {
			l.lastLSN = segs[i].firstLSN + int64(count) - 1
		}
	}
	l.segs = segs
	tail := &segs[len(segs)-1]
	f, err := os.OpenFile(tail.path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: reopening %s: %w", tail.path, err)
	}
	if _, err := f.Seek(tail.bytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking %s: %w", tail.path, err)
	}
	for i := range segs[:len(segs)-1] {
		l.basePos += segs[i].bytes
	}
	l.active = f
	l.activeOff = tail.bytes
	l.syncFile = f
	l.writePos = l.basePos + l.activeOff
	l.syncedPos = l.writePos // surviving bytes are what recovery has to work with
	return l, nil
}

// Enabled reports whether durability is on; safe on a nil *Log, which
// is the disabled state compiled into the hot paths.
func (l *Log) Enabled() bool { return l != nil }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastLSN returns the LSN of the most recent record (0 before any
// append). Safe on a nil *Log.
func (l *Log) LastLSN() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// SnapshotLSN returns the LSN covered by the current committed
// snapshot (0 when none). Safe on a nil *Log.
func (l *Log) SnapshotLSN() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapLSN
}

// Stats returns a consistent snapshot of log counters. Safe on a nil
// *Log, where it returns zeros.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		LastLSN:       l.lastLSN,
		SnapshotLSN:   l.snapLSN,
		Segments:      len(l.segs),
		ActiveSegment: filepath.Base(l.segs[len(l.segs)-1].path),
		Bytes:         l.basePos + l.activeOff,
	}
	l.sm.Lock()
	s.Appends = l.statAppends
	s.AppendedBytes = l.statBytes
	s.Fsyncs = l.statFsyncs
	s.FsyncTotal = time.Duration(l.statFsyncNanos)
	s.LastFsync = time.Duration(l.statLastFsync)
	l.sm.Unlock()
	return s
}

// Append writes one record and returns its LSN. With FsyncEvery<=1 the
// record is durable when Append returns; concurrent appenders
// piggyback on a single fsync (group commit).
func (l *Log) Append(payload []byte) (int64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d byte limit", len(payload), maxRecordBytes)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.activeOff > 0 && l.activeOff >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	need := frameHeaderBytes + len(payload)
	if cap(l.frameBuf) < need {
		l.frameBuf = make([]byte, 0, need*2)
	}
	frame := l.frameBuf[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(frame[0:4])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc)
	copy(frame[frameHeaderBytes:], payload)
	if _, err := l.active.Write(frame); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	l.activeOff += int64(need)
	l.segs[len(l.segs)-1].bytes = l.activeOff
	l.lastLSN++
	lsn := l.lastLSN
	pos := l.basePos + l.activeOff
	l.sm.Lock()
	l.writePos = pos
	l.statAppends++
	l.statBytes += int64(need)
	l.sm.Unlock()
	l.mu.Unlock()

	if l.opts.NoSync {
		return lsn, nil
	}
	if l.opts.FsyncEvery <= 1 {
		return lsn, l.waitDurable(pos)
	}
	l.sm.Lock()
	l.sinceSync++
	flush := l.sinceSync >= l.opts.FsyncEvery
	l.sm.Unlock()
	if flush {
		return lsn, l.waitDurable(pos)
	}
	return lsn, nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	if l.opts.NoSync {
		return nil
	}
	l.sm.Lock()
	pos := l.writePos
	l.sm.Unlock()
	return l.waitDurable(pos)
}

// waitDurable blocks until the global byte position pos is fsynced.
// The first blocked appender becomes the syncer for everyone queued
// behind it: it fsyncs up to the current write position and wakes all
// waiters whose records that covers.
func (l *Log) waitDurable(pos int64) error {
	l.sm.Lock()
	defer l.sm.Unlock()
	for l.syncedPos < pos {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.syncing {
			l.syncCond.Wait()
			continue
		}
		l.syncing = true
		target := l.writePos
		f := l.syncFile
		l.sm.Unlock()
		start := time.Now()
		err := f.Sync()
		elapsed := time.Since(start).Nanoseconds()
		l.sm.Lock()
		l.syncing = false
		l.statFsyncs++
		l.statFsyncNanos += elapsed
		l.statLastFsync = elapsed
		l.sinceSync = 0
		if err != nil {
			l.syncErr = fmt.Errorf("wal: fsync: %w", err)
		} else if target > l.syncedPos {
			l.syncedPos = target
		}
		l.syncCond.Broadcast()
	}
	return nil
}

// rotateLocked seals the active segment (draining any in-flight fsync
// and syncing the remainder) and starts a new one. Caller holds mu.
func (l *Log) rotateLocked() error {
	l.sm.Lock()
	for l.syncing {
		l.syncCond.Wait()
	}
	l.sm.Unlock()
	if !l.opts.NoSync {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: syncing sealed segment: %w", err)
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	first := l.lastLSN + 1
	f, path, err := createSegment(l.dir, first, l.opts.NoSync)
	if err != nil {
		return err
	}
	l.segs = append(l.segs, segment{path: path, firstLSN: first})
	l.basePos += l.activeOff
	l.activeOff = 0
	l.active = f
	l.sm.Lock()
	l.syncFile = f
	l.writePos = l.basePos
	if l.basePos > l.syncedPos {
		l.syncedPos = l.basePos // the sealed segment was just fsynced
	}
	l.syncCond.Broadcast()
	l.sm.Unlock()
	return nil
}

// Close syncs outstanding records and closes the active segment.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	if err := l.Sync(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.active.Close()
}

// --- segment files ---------------------------------------------------------

const segmentSuffix = ".wal"

func segmentName(firstLSN int64) string {
	return fmt.Sprintf("%016x%s", firstLSN, segmentSuffix)
}

func createSegment(dir string, firstLSN int64, noSync bool) (*os.File, string, error) {
	path := filepath.Join(dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, "", fmt.Errorf("wal: creating segment: %w", err)
	}
	if !noSync {
		syncDir(dir)
	}
	return f, path, nil
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		hexPart := strings.TrimSuffix(name, segmentSuffix)
		first, err := strconv.ParseInt(hexPart, 16, 64)
		if err != nil || first < 1 || len(hexPart) != 16 {
			return nil, fmt.Errorf("wal: unrecognized segment file name %q", name)
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// parseFrame validates the frame at buf[off:]. ok reports a valid
// frame; n is its total size including the header.
func parseFrame(buf []byte, off int) (payload []byte, n int, ok bool) {
	if len(buf)-off < frameHeaderBytes {
		return nil, 0, false
	}
	plen := binary.LittleEndian.Uint32(buf[off : off+4])
	if plen > maxRecordBytes || off+frameHeaderBytes+int(plen) > len(buf) {
		return nil, 0, false
	}
	want := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	crc := crc32.ChecksumIEEE(buf[off : off+4])
	crc = crc32.Update(crc, crc32.IEEETable, buf[off+frameHeaderBytes:off+frameHeaderBytes+int(plen)])
	if crc != want {
		return nil, 0, false
	}
	return buf[off+frameHeaderBytes : off+frameHeaderBytes+int(plen)], frameHeaderBytes + int(plen), true
}

// scanSegment walks every frame in one segment file. For the final
// segment an invalid frame with no parseable frame anywhere after it
// is a torn tail (torn=true, tearOff = where to truncate); an invalid
// frame followed by recoverable data — in any segment — is hard
// corruption.
func scanSegment(path string, isLast bool) (count int, validBytes int64, tearOff int64, torn bool, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("wal: reading segment: %w", err)
	}
	off := 0
	for off < len(buf) {
		_, n, ok := parseFrame(buf, off)
		if !ok {
			if isLast && !resyncFinds(buf, off+1) {
				return count, int64(off), int64(off), true, nil
			}
			reason := "crc mismatch"
			if len(buf)-off < frameHeaderBytes {
				reason = "truncated frame header"
			}
			return 0, 0, 0, false, &CorruptError{Segment: path, Offset: int64(off), Reason: reason}
		}
		off += n
		count++
	}
	return count, int64(off), 0, false, nil
}

// resyncFinds scans forward byte-by-byte for any parseable frame — the
// discriminator between a torn tail (nothing after the damage) and
// mid-log corruption (valid records stranded behind it).
func resyncFinds(buf []byte, from int) bool {
	for p := from; p+frameHeaderBytes <= len(buf); p++ {
		if _, _, ok := parseFrame(buf, p); ok {
			return true
		}
	}
	return false
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Errors are ignored: not all filesystems support it, and the
// data files themselves are synced separately.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
