package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testOpts() Options {
	return Options{NoSync: true}
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func payload(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", i%7)))
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		lsn, err := l.Append(payload(i))
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if lsn != int64(i+1) {
			t.Fatalf("Append(%d) assigned LSN %d, want %d", i, lsn, i+1)
		}
	}
}

func readAll(t *testing.T, l *Log, from int64) [][]byte {
	t.Helper()
	r, err := l.Tail(from)
	if err != nil {
		t.Fatalf("Tail(%d): %v", from, err)
	}
	var out [][]byte
	want := from
	for {
		lsn, p, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if lsn != want {
			t.Fatalf("Next returned LSN %d, want %d", lsn, want)
		}
		want++
		out = append(out, append([]byte(nil), p...))
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	appendN(t, l, 0, 20)
	if got := l.LastLSN(); got != 20 {
		t.Fatalf("LastLSN = %d, want 20", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOpts())
	if got := l2.LastLSN(); got != 20 {
		t.Fatalf("LastLSN after reopen = %d, want 20", got)
	}
	recs := readAll(t, l2, 1)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(recs))
	}
	for i, p := range recs {
		if !bytes.Equal(p, payload(i)) {
			t.Fatalf("record %d = %q, want %q", i, p, payload(i))
		}
	}
	appendN(t, l2, 20, 5)
	if got := l2.LastLSN(); got != 25 {
		t.Fatalf("LastLSN after reopen+append = %d, want 25", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 64 // force rotation every few records
	l := mustOpen(t, dir, opts)
	appendN(t, l, 0, 40)
	if s := l.Stats(); s.Segments < 3 {
		t.Fatalf("expected multiple segments at a 64-byte threshold, got %d", s.Segments)
	}
	if recs := readAll(t, l, 1); len(recs) != 40 {
		t.Fatalf("tail across segments returned %d records, want 40", len(recs))
	}
	l.Close()

	l2 := mustOpen(t, dir, opts)
	if got := l2.LastLSN(); got != 40 {
		t.Fatalf("LastLSN after multi-segment reopen = %d, want 40", got)
	}
	if recs := readAll(t, l2, 17); len(recs) != 24 {
		t.Fatalf("Tail(17) returned %d records, want 24", len(recs))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 8, 9} { // within header, at header end, mid-payload
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, testOpts())
			appendN(t, l, 0, 5)
			seg := l.Stats().ActiveSegment
			full := l.Stats().Bytes
			l.Close()

			// Tear the final record: keep 4 whole records plus `cut`
			// bytes of the fifth.
			path := filepath.Join(dir, seg)
			lastFrame := int64(frameHeaderBytes + len(payload(4)))
			if err := os.Truncate(path, full-lastFrame+int64(cut)); err != nil {
				t.Fatal(err)
			}

			l2 := mustOpen(t, dir, testOpts())
			if got := l2.LastLSN(); got != 4 {
				t.Fatalf("LastLSN after torn-tail repair = %d, want 4", got)
			}
			// The log must be appendable again and the new record
			// must occupy the reclaimed space cleanly.
			appendN(t, l2, 4, 1)
			recs := readAll(t, l2, 1)
			if len(recs) != 5 || !bytes.Equal(recs[4], payload(4)) {
				t.Fatalf("post-repair append not readable: %d records", len(recs))
			}
		})
	}
}

func TestBitFlipInFinalRecordDiscardsIt(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	appendN(t, l, 0, 3)
	seg := l.Stats().ActiveSegment
	total := l.Stats().Bytes
	l.Close()

	path := filepath.Join(dir, seg)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameHeaderBytes + len(payload(2))
	raw[int(total)-lastFrame+frameHeaderBytes+2] ^= 0x10 // flip one payload bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, testOpts())
	if got := l2.LastLSN(); got != 2 {
		t.Fatalf("LastLSN after final-record bit flip = %d, want 2 (record discarded)", got)
	}
}

func TestMidLogCorruptionNamesSegmentAndOffset(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	appendN(t, l, 0, 6)
	seg := l.Stats().ActiveSegment
	l.Close()

	// Flip a bit inside the SECOND record: records 3..6 remain valid
	// behind it, so this is unrecoverable corruption, not a torn tail.
	path := filepath.Join(dir, seg)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstFrame := frameHeaderBytes + len(payload(0))
	badOff := firstFrame // offset of record 2's frame
	raw[badOff+frameHeaderBytes] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, testOpts())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open on mid-log corruption = %v, want *CorruptError", err)
	}
	if ce.Segment != path || ce.Offset != int64(badOff) {
		t.Fatalf("CorruptError names %s@%d, want %s@%d", ce.Segment, ce.Offset, path, badOff)
	}
	if !strings.Contains(ce.Error(), seg) || !strings.Contains(ce.Error(), fmt.Sprint(badOff)) {
		t.Fatalf("error text %q does not name segment and offset", ce.Error())
	}
}

func TestEmptySegmentOnReopen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	l.Close() // never appended: one empty segment on disk

	l2 := mustOpen(t, dir, testOpts())
	if got := l2.LastLSN(); got != 0 {
		t.Fatalf("LastLSN of empty log = %d, want 0", got)
	}
	if recs := readAll(t, l2, 1); len(recs) != 0 {
		t.Fatalf("empty log tailed %d records", len(recs))
	}
	appendN(t, l2, 0, 2)
}

func TestSnapshotCommitPrunesAndReopens(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 64
	l := mustOpen(t, dir, opts)
	appendN(t, l, 0, 30)

	s, err := l.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir, "state"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(30); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := l.SnapshotLSN(); got != 30 {
		t.Fatalf("SnapshotLSN = %d, want 30", got)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("snapshot at the log end should leave 1 fresh segment, got %d", st.Segments)
	}
	if _, err := l.Tail(1); err == nil {
		t.Fatal("Tail(1) under a snapshot at LSN 30 should report pruned history")
	}

	appendN(t, l, 30, 4)
	if recs := readAll(t, l, 31); len(recs) != 4 {
		t.Fatalf("post-snapshot tail = %d records, want 4", len(recs))
	}
	l.Close()

	// Reopen: snapshot LSN comes from CURRENT, tail records survive.
	l2 := mustOpen(t, dir, opts)
	if got := l2.SnapshotLSN(); got != 30 {
		t.Fatalf("SnapshotLSN after reopen = %d, want 30", got)
	}
	if got := l2.LastLSN(); got != 34 {
		t.Fatalf("LastLSN after reopen = %d, want 34", got)
	}
	path, lsn, ok, err := CurrentSnapshot(dir)
	if err != nil || !ok || lsn != 30 {
		t.Fatalf("CurrentSnapshot = %q,%d,%v,%v", path, lsn, ok, err)
	}
	blob, err := os.ReadFile(filepath.Join(path, "state"))
	if err != nil || string(blob) != "hello" {
		t.Fatalf("snapshot payload = %q,%v", blob, err)
	}
}

func TestSnapshotMidLogKeepsUncoveredSegments(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 64
	l := mustOpen(t, dir, opts)
	appendN(t, l, 0, 30)

	s, err := l.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(10); err != nil {
		t.Fatal(err)
	}
	// Records 11..30 must remain tailable.
	if recs := readAll(t, l, 11); len(recs) != 20 {
		t.Fatalf("tail after mid-log snapshot = %d records, want 20", len(recs))
	}
	l.Close()
	l2 := mustOpen(t, dir, opts)
	if recs := readAll(t, l2, 11); len(recs) != 20 {
		t.Fatalf("tail after reopen = %d records, want 20", len(recs))
	}
}

func TestCleanMarker(t *testing.T) {
	dir := t.TempDir()
	if clean, err := IsClean(dir); err != nil || clean {
		t.Fatalf("IsClean on fresh dir = %v,%v", clean, err)
	}
	if err := MarkClean(dir); err != nil {
		t.Fatal(err)
	}
	if clean, err := IsClean(dir); err != nil || !clean {
		t.Fatalf("IsClean after MarkClean = %v,%v", clean, err)
	}
	if err := ClearClean(dir); err != nil {
		t.Fatal(err)
	}
	if clean, err := IsClean(dir); err != nil || clean {
		t.Fatalf("IsClean after ClearClean = %v,%v", clean, err)
	}
	if err := ClearClean(dir); err != nil {
		t.Fatalf("ClearClean must be idempotent: %v", err)
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{}) // real fsync, FsyncEvery=1
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.LastLSN != writers*perWriter {
		t.Fatalf("LastLSN = %d, want %d", st.LastLSN, writers*perWriter)
	}
	if st.Fsyncs == 0 || st.Fsyncs > st.Appends {
		t.Fatalf("fsyncs = %d for %d appends; group commit should need at most one per append", st.Fsyncs, st.Appends)
	}
	// Every record must be present and distinct after the concurrency.
	seen := make(map[string]bool)
	r, err := l.Tail(1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seen[string(p)] {
			t.Fatalf("duplicate record %q", p)
		}
		seen[string(p)] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("tailed %d distinct records, want %d", len(seen), writers*perWriter)
	}
}

func TestRelaxedFsyncEveryStillSyncsOnClose(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{FsyncEvery: 64})
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, testOpts())
	if got := l2.LastLSN(); got != 10 {
		t.Fatalf("LastLSN = %d, want 10", got)
	}
}

func TestNilLogReadsAreSafe(t *testing.T) {
	var l *Log
	if l.Enabled() {
		t.Fatal("nil log reports enabled")
	}
	if l.LastLSN() != 0 || l.SnapshotLSN() != 0 {
		t.Fatal("nil log reports nonzero LSNs")
	}
	if s := l.Stats(); s != (Stats{}) {
		t.Fatalf("nil log stats = %+v", s)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil log close: %v", err)
	}
}

func TestTailBeyondEndRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, testOpts())
	appendN(t, l, 0, 3)
	if _, err := l.Tail(5); err == nil {
		t.Fatal("Tail(5) on a 3-record log should fail")
	}
	if r, err := l.Tail(4); err != nil {
		t.Fatalf("Tail(end+1) should yield an empty reader: %v", err)
	} else if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty tail Next = %v, want EOF", err)
	}
}
