package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Snapshot rotation. A checkpoint writes its files (catalog, dimension
// heaps, model blobs, stream state) into a staging directory, then
// Commit makes it the recovery point atomically:
//
//	walDir/
//	  0000000000000001.wal      segments
//	  snap-000000000000002a/    committed snapshot covering LSN 0x2a
//	  CURRENT                   names the committed snapshot (tmp+rename)
//	  CLEAN                     present only after a graceful close
//
// Commit fsyncs the staged files, renames the directory into place,
// swaps CURRENT via a temp file + rename, prunes superseded snapshots,
// and drops WAL segments the snapshot fully covers. A crash anywhere
// in that sequence leaves either the old snapshot or the new one
// committed — never a half state — because CURRENT is the single
// commit point.

const (
	currentFile = "CURRENT"
	cleanFile   = "CLEAN"
	snapPrefix  = "snap-"
)

func snapDirName(lsn int64) string {
	return fmt.Sprintf("%s%016x", snapPrefix, lsn)
}

// CurrentSnapshot resolves the committed snapshot in a WAL directory:
// its path and the LSN it covers. ok is false when no snapshot has
// been committed (fresh or absent directory).
func CurrentSnapshot(dir string) (path string, lsn int64, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, currentFile))
	if os.IsNotExist(err) {
		return "", 0, false, nil
	}
	if err != nil {
		return "", 0, false, fmt.Errorf("wal: reading CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(raw))
	hexPart := strings.TrimPrefix(name, snapPrefix)
	if hexPart == name || len(hexPart) != 16 {
		return "", 0, false, fmt.Errorf("wal: CURRENT names malformed snapshot %q", name)
	}
	lsn, perr := strconv.ParseInt(hexPart, 16, 64)
	if perr != nil {
		return "", 0, false, fmt.Errorf("wal: CURRENT names malformed snapshot %q", name)
	}
	path = filepath.Join(dir, name)
	if _, err := os.Stat(path); err != nil {
		return "", 0, false, fmt.Errorf("wal: CURRENT names %s: %w", name, err)
	}
	return path, lsn, true, nil
}

// MarkClean records a graceful shutdown: on the next open the live
// database files can be trusted as-is (they may even be ahead of the
// log, e.g. after an offline training run) instead of restoring the
// snapshot.
func MarkClean(dir string) error {
	path := filepath.Join(dir, cleanFile)
	if err := os.WriteFile(path, []byte("clean\n"), 0o644); err != nil {
		return fmt.Errorf("wal: writing CLEAN: %w", err)
	}
	syncDir(dir)
	return nil
}

// IsClean reports whether the directory carries the graceful-shutdown
// marker.
func IsClean(dir string) (bool, error) {
	_, err := os.Stat(filepath.Join(dir, cleanFile))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("wal: checking CLEAN: %w", err)
	}
	return true, nil
}

// ClearClean removes the graceful-shutdown marker; from here until the
// next MarkClean, an open of this directory takes the crash-recovery
// path.
func ClearClean(dir string) error {
	err := os.Remove(filepath.Join(dir, cleanFile))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: clearing CLEAN: %w", err)
	}
	syncDir(dir)
	return nil
}

// Snapshot is a checkpoint under construction. The caller writes files
// into Dir (subdirectories allowed), then calls Commit or Abort.
type Snapshot struct {
	Dir string
	l   *Log
}

// BeginSnapshot stages a new checkpoint directory.
func (l *Log) BeginSnapshot() (*Snapshot, error) {
	tmp, err := os.MkdirTemp(l.dir, ".tmp-snap-")
	if err != nil {
		return nil, fmt.Errorf("wal: staging snapshot: %w", err)
	}
	return &Snapshot{Dir: tmp, l: l}, nil
}

// Abort discards the staged checkpoint.
func (s *Snapshot) Abort() {
	os.RemoveAll(s.Dir)
}

// Commit publishes the staged checkpoint as covering every record
// through lsn: fsync the staged tree, rename it into place, swap
// CURRENT, then prune superseded snapshots and fully-covered WAL
// segments.
func (s *Snapshot) Commit(lsn int64) error {
	l := s.l
	if !l.opts.NoSync {
		if err := syncTree(s.Dir); err != nil {
			s.Abort()
			return err
		}
	}
	final := filepath.Join(l.dir, snapDirName(lsn))
	if err := os.RemoveAll(final); err != nil {
		s.Abort()
		return fmt.Errorf("wal: clearing stale snapshot %s: %w", final, err)
	}
	if err := os.Rename(s.Dir, final); err != nil {
		s.Abort()
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if !l.opts.NoSync {
		syncDir(l.dir)
	}

	// Swap CURRENT — the commit point.
	tmp := filepath.Join(l.dir, ".CURRENT.tmp")
	if err := os.WriteFile(tmp, []byte(snapDirName(lsn)+"\n"), 0o644); err != nil {
		return fmt.Errorf("wal: staging CURRENT: %w", err)
	}
	if !l.opts.NoSync {
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, currentFile)); err != nil {
		return fmt.Errorf("wal: swapping CURRENT: %w", err)
	}
	if !l.opts.NoSync {
		syncDir(l.dir)
	}

	l.mu.Lock()
	l.snapLSN = lsn
	// Seal the active segment if the snapshot covers all of it, so
	// the covered records can be dropped below.
	if l.lastLSN <= lsn && l.activeOff > 0 {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	// Drop sealed segments whose every record is covered.
	kept := l.segs[:0]
	for i := range l.segs {
		last := i == len(l.segs)-1
		if !last && l.segs[i+1].firstLSN-1 <= lsn {
			os.Remove(l.segs[i].path)
			continue
		}
		kept = append(kept, l.segs[i])
	}
	l.segs = append([]segment(nil), kept...)
	l.mu.Unlock()

	// Remove superseded snapshot directories.
	entries, err := os.ReadDir(l.dir)
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() && strings.HasPrefix(name, snapPrefix) && name != snapDirName(lsn) {
				os.RemoveAll(filepath.Join(l.dir, name))
			}
		}
	}
	if !l.opts.NoSync {
		syncDir(l.dir)
	}
	return nil
}

// syncTree fsyncs every regular file under root, then the directories.
func syncTree(root string) error {
	return filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("wal: syncing snapshot file %s: %w", path, err)
		}
		serr := f.Sync()
		f.Close()
		if serr != nil {
			return fmt.Errorf("wal: syncing snapshot file %s: %w", path, serr)
		}
		return nil
	})
}
