package wal

import (
	"fmt"
	"io"
	"os"
)

// Tail returns an ordered reader over the log's records starting at
// fromLSN (inclusive) and ending at the most recent record appended
// before the call. It is the change-feed hook for crash recovery and
// for read replicas following a primary: a replica bootstraps from the
// current snapshot, then calls Tail(snapshotLSN+1) and applies records
// in LSN order, re-tailing from its high-water mark to poll for new
// traffic.
//
// Records at or below the snapshot LSN may already be pruned;
// requesting one returns an error so the caller knows to re-bootstrap
// from the snapshot instead of silently skipping history.
func (l *Log) Tail(fromLSN int64) (*Reader, error) {
	if fromLSN < 1 {
		fromLSN = 1
	}
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	end := l.lastLSN
	l.mu.Unlock()
	if len(segs) > 0 && fromLSN < segs[0].firstLSN {
		return nil, fmt.Errorf("wal: LSN %d already pruned (earliest retained is %d); bootstrap from the snapshot",
			fromLSN, segs[0].firstLSN)
	}
	if fromLSN > end+1 {
		return nil, fmt.Errorf("wal: LSN %d is beyond the log end %d", fromLSN, end)
	}
	return &Reader{segs: segs, from: fromLSN, end: end}, nil
}

// Reader iterates records in LSN order. It reads a consistent prefix:
// records appended after the Tail call are not returned (re-tail to
// observe them).
type Reader struct {
	segs []segment
	from int64
	end  int64

	seg     int
	buf     []byte
	off     int
	nextLSN int64
}

// Next returns the next record. It returns io.EOF after the last
// record in the tailed range. The payload is only valid until the
// following Next call.
func (r *Reader) Next() (lsn int64, payload []byte, err error) {
	for {
		if r.nextLSN == 0 {
			r.nextLSN = 1
			if len(r.segs) > 0 {
				r.nextLSN = r.segs[0].firstLSN
			}
		}
		if r.nextLSN > r.end {
			return 0, nil, io.EOF
		}
		if r.buf == nil {
			if r.seg >= len(r.segs) {
				return 0, nil, io.EOF
			}
			s := r.segs[r.seg]
			raw, err := os.ReadFile(s.path)
			if err != nil {
				return 0, nil, fmt.Errorf("wal: tailing segment: %w", err)
			}
			if int64(len(raw)) > s.bytes {
				raw = raw[:s.bytes] // ignore bytes appended since the Tail call
			}
			r.buf = raw
			r.off = 0
			r.nextLSN = s.firstLSN
		}
		if r.off >= len(r.buf) {
			r.buf = nil
			r.seg++
			continue
		}
		p, n, ok := parseFrame(r.buf, r.off)
		if !ok {
			// The open-time scan repaired or rejected the log, so a
			// bad frame here means the file changed underneath us.
			return 0, nil, &CorruptError{Segment: r.segs[r.seg].path, Offset: int64(r.off), Reason: "crc mismatch while tailing"}
		}
		r.off += n
		lsn = r.nextLSN
		r.nextLSN++
		if lsn < r.from {
			continue
		}
		return lsn, p, nil
	}
}
