package factor

import (
	"fmt"
	"math/rand"
	"testing"

	"factorml/internal/join"
	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// buildStar creates a tiny star schema (fact(40) ⋈ dim(7)) and returns the
// validated spec.
func buildStar(t *testing.T) (*storage.Database, *join.Spec) {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	dim, err := db.CreateTable(&storage.Schema{Name: "dim", Keys: []string{"rid"}, Features: []string{"d1", "d2"}})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := db.CreateTable(&storage.Schema{
		Name: "fact", Keys: []string{"sid", "fk1"}, Features: []string{"f1"}, Refs: []string{"dim"}, HasTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := int64(0); i < 7; i++ {
		if err := dim.Append(&storage.Tuple{Keys: []int64{i}, Features: []float64{rng.NormFloat64(), rng.NormFloat64()}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 40; i++ {
		tp := &storage.Tuple{Keys: []int64{i, i % 7}, Features: []float64{rng.NormFloat64()}, Target: float64(i)}
		if err := fact.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range []*storage.Table{dim, fact} {
		if err := tb.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := join.NewSnowflakeSpec(fact, []*storage.Table{dim}, db.Table)
	if err != nil {
		t.Fatal(err)
	}
	return db, spec
}

// collectRows drains a source scan into concrete rows.
func collectRows(t *testing.T, scan func(RowFn) error) (rows [][]float64, ys []float64) {
	t.Helper()
	if err := scan(func(x []float64, y float64) error {
		rows = append(rows, append([]float64{}, x...))
		ys = append(ys, y)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rows, ys
}

// TestSourcesAgree: the materialized and streamed sources deliver the
// identical joined rows, targets and group boundaries — the property that
// makes the M and S strategies interchangeable accumulators-side.
func TestSourcesAgree(t *testing.T) {
	db, spec := buildStar(t)
	ms, err := NewMaterializedSource(db, spec, "T_test")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	ss, err := NewStreamedSource(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Width() != ss.Width() || ms.Width() != spec.JoinedWidth() {
		t.Fatalf("widths: materialized %d, streamed %d, spec %d", ms.Width(), ss.Width(), spec.JoinedWidth())
	}
	if ms.NumRows() != 40 || ss.NumRows() != 40 {
		t.Fatalf("rows: materialized %d, streamed %d, want 40", ms.NumRows(), ss.NumRows())
	}

	mRows, mYs := collectRows(t, ms.Scan)
	sRows, sYs := collectRows(t, ss.Scan)
	if len(mRows) != 40 || len(sRows) != 40 {
		t.Fatalf("scan lengths %d / %d", len(mRows), len(sRows))
	}
	for i := range mRows {
		if fmt.Sprint(mRows[i]) != fmt.Sprint(sRows[i]) || mYs[i] != sYs[i] {
			t.Fatalf("row %d differs: %v/%v vs %v/%v", i, mRows[i], mYs[i], sRows[i], sYs[i])
		}
	}

	// Group boundaries coincide (single block here, but the callback
	// cadence must match exactly).
	countGroups := func(scan GroupedScan) (rows, groups int) {
		err := scan(
			func(x []float64, y float64) error { rows++; return nil },
			func() error { groups++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	mr, mg := countGroups(ms.ScanGroups)
	sr, sg := countGroups(ss.ScanGroups)
	if mr != sr || mg != sg {
		t.Fatalf("grouped scans differ: %d rows/%d groups vs %d rows/%d groups", mr, mg, sr, sg)
	}

	// Scans are repeatable.
	again, _ := collectRows(t, ms.Scan)
	if len(again) != 40 {
		t.Fatalf("materialized rescan yielded %d rows", len(again))
	}
}

// TestSourcesAgreeWithLeadingEmptyBlocks: group boundaries still coincide
// when the first join blocks match no fact tuples (a leading zero in the
// materializer's per-block counts used to desynchronize every later
// boundary of the materialized source).
func TestSourcesAgreeWithLeadingEmptyBlocks(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// A very wide dimension (2 rows per page) with BlockPages=1 gives
	// 2-row join blocks; facts reference only rids 2..5, so the first
	// block (rids 0,1) is empty.
	wide := make([]string, 500)
	for i := range wide {
		wide[i] = fmt.Sprintf("w%d", i)
	}
	dim, err := db.CreateTable(&storage.Schema{Name: "dim", Keys: []string{"rid"}, Features: wide})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := db.CreateTable(&storage.Schema{
		Name: "fact", Keys: []string{"sid", "fk1"}, Features: []string{"f1"}, Refs: []string{"dim"}, HasTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	feats := make([]float64, 500)
	for i := int64(0); i < 6; i++ {
		feats[0] = float64(i)
		if err := dim.Append(&storage.Tuple{Keys: []int64{i}, Features: feats}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 20; i++ {
		if err := fact.Append(&storage.Tuple{Keys: []int64{i, 2 + i%4}, Features: []float64{float64(i)}, Target: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tb := range []*storage.Table{dim, fact} {
		if err := tb.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := join.NewSnowflakeSpec(fact, []*storage.Table{dim}, db.Table)
	if err != nil {
		t.Fatal(err)
	}
	spec.BlockPages = 1

	boundaries := func(scan GroupedScan) []int {
		rows := 0
		var cuts []int
		if err := scan(
			func(x []float64, y float64) error { rows++; return nil },
			func() error { cuts = append(cuts, rows); return nil }); err != nil {
			t.Fatal(err)
		}
		return cuts
	}
	ss, err := NewStreamedSource(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMaterializedSource(db, spec, "T_empty")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	sCuts, mCuts := boundaries(ss.ScanGroups), boundaries(ms.ScanGroups)
	if fmt.Sprint(sCuts) != fmt.Sprint(mCuts) {
		t.Fatalf("group boundaries diverge: streamed %v vs materialized %v", sCuts, mCuts)
	}
	if len(sCuts) < 3 || sCuts[0] != 0 {
		t.Fatalf("expected a leading empty block in %v", sCuts)
	}
}

// TestRunRowPassDeterministicAcrossWorkers: the chunked row pass reduces
// identically for every worker count — ordered merges over fixed chunk
// geometry — and reports global row indexes.
func TestRunRowPassDeterministicAcrossWorkers(t *testing.T) {
	const n, d = 1000, 3
	scan := func(onRow RowFn) error {
		x := make([]float64, d)
		for i := 0; i < n; i++ {
			for j := range x {
				x[j] = float64(i*d+j) * 0.25
			}
			if err := onRow(x, 0); err != nil {
				return err
			}
		}
		return nil
	}
	run := func(workers int) (float64, map[int]bool) {
		sum := 0.0
		starts := map[int]bool{}
		type acc struct {
			s     float64
			start int
		}
		err := RunRowPass("test.rowpass", workers, d, scan, PassHooks{
			NewAcc: func() any { return &acc{start: -1} },
			Fold: func(a any, start int, rows, ys []float64, nr int) error {
				ac := a.(*acc)
				if ac.start < 0 {
					ac.start = start
				}
				if ys != nil {
					t.Error("row pass carried targets")
				}
				for i := 0; i < nr; i++ {
					for j := 0; j < d; j++ {
						ac.s += rows[i*d+j]
					}
				}
				return nil
			},
			Merge: func(a any) error {
				ac := a.(*acc)
				sum += ac.s
				starts[ac.start] = true
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum, starts
	}
	ref, refStarts := run(1)
	for _, w := range []int{2, 4} {
		got, starts := run(w)
		if got != ref {
			t.Errorf("workers=%d sum %v != sequential %v", w, got, ref)
		}
		// Chunk geometry is fixed: accumulators begin at multiples of the
		// chunk size regardless of the worker count.
		for s := range starts {
			if s%parallel.DefaultChunkRows != 0 {
				t.Errorf("workers=%d accumulator started mid-chunk at %d", w, s)
			}
		}
		if len(starts) != len(refStarts) {
			t.Errorf("workers=%d merged %d accumulators, sequential %d", w, len(starts), len(refStarts))
		}
	}
}

// TestRunSGDPassGroupBarriers: group boundaries flush the in-flight chunk
// and run the barrier hook in order, for every worker count.
func TestRunSGDPassGroupBarriers(t *testing.T) {
	const d = 2
	groups := [][]float64{{1, 2, 3}, {}, {4, 5}} // ys per group; one empty group
	scan := func(onRow RowFn, onGroup func() error) error {
		x := make([]float64, d)
		for _, g := range groups {
			for _, y := range g {
				if err := onRow(x, y); err != nil {
					return err
				}
			}
			if err := onGroup(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, w := range []int{1, 3} {
		var log []string
		seen := 0.0
		err := RunSGDPass("test.sgd", w, d, scan, true,
			func() error { log = append(log, fmt.Sprintf("step@%g", seen)); return nil },
			PassHooks{
				NewAcc: func() any { s := 0.0; return &s },
				Fold: func(a any, _ int, rows, ys []float64, nr int) error {
					for i := 0; i < nr; i++ {
						*(a.(*float64)) += ys[i]
					}
					return nil
				},
				Merge: func(a any) error { seen += *(a.(*float64)); return nil },
			})
		if err != nil {
			t.Fatal(err)
		}
		want := "[step@6 step@6 step@15]"
		if got := fmt.Sprint(log); got != want {
			t.Errorf("workers=%d barrier log %s, want %s", w, got, want)
		}
	}
}

// TestPartScanSharesInitOrder: PartScan.Scan yields the identical row
// stream as the dense sources — the precondition for all strategies
// starting from the same initial model.
func TestPartScanSharesInitOrder(t *testing.T) {
	db, spec := buildStar(t)
	ps, err := NewPartScan(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.P.D != spec.JoinedWidth() {
		t.Fatalf("partition width %d != joined width %d", ps.P.D, spec.JoinedWidth())
	}
	if ps.NumRows() != 40 {
		t.Fatalf("NumRows = %d", ps.NumRows())
	}
	pRows, pYs := collectRows(t, ps.Scan)
	ms, err := NewMaterializedSource(db, spec, "T_init")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	mRows, mYs := collectRows(t, ms.Scan)
	if fmt.Sprint(pRows) != fmt.Sprint(mRows) || fmt.Sprint(pYs) != fmt.Sprint(mYs) {
		t.Fatal("PartScan.Scan row stream differs from the materialized source")
	}
}
