// Package factor is the strategy-agnostic sufficient-statistics operator
// layer shared by every trainer (M/S/F × GMM/NN) and by the planner's
// measured counterparts.
//
// The paper's three execution strategies differ only in how the joined
// relation is *accessed*, never in the statistics a model accumulates over
// it. This package owns the access paths, so a model family plugs in pure
// accumulator definitions and an EM/SGD driver:
//
//   - Source — a re-scannable stream of joined rows, either read back from
//     a materialized T (MaterializedSource) or re-joined on the fly
//     (StreamedSource). Both expose the same group (R1-block) boundaries,
//     so mini-batch formation is identical across strategies.
//   - RunRowPass / RunSGDPass — the chunked-parallel pass operators: rows
//     are cut into fixed-geometry chunks, each chunk folds into a private
//     accumulator on a worker, and accumulators merge strictly in chunk
//     order. The reduction is therefore bit-identical for every worker
//     count; RunSGDPass adds per-group barrier hooks for Block-mode
//     gradient steps.
//   - PartScan — the factorized access path: the block-nested-loops join
//     runner plus the relation partition, with parallel per-dimension-tuple
//     cache fills (FillCaches) over disjoint index grains and the
//     sequential/chunked match streams the factorized trainers drive their
//     per-match accumulation through.
//
// A new model family (linear models, logistic regression, …) needs only
// its accumulators: the operators here already provide all three strategy
// access paths, deterministic parallelism included.
package factor
