package factor

import (
	"sync"
	"testing"
)

// TestPassObserverEvents: an installed observer receives one event per
// row pass with the pass name, the exact row count, and the chunk count
// of the fixed chunk geometry — and the pass result is unchanged.
func TestPassObserverEvents(t *testing.T) {
	const n, d = 700, 3
	scan := func(onRow RowFn) error {
		x := make([]float64, d)
		for i := 0; i < n; i++ {
			x[0] = float64(i)
			if err := onRow(x, 0); err != nil {
				return err
			}
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var events []PassEvent
		SetObserver(func(ev PassEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		})
		sum := 0.0
		err := RunRowPass("test.observed", workers, d, scan, PassHooks{
			NewAcc: func() any { return new(float64) },
			Fold: func(acc any, start int, rows, _ []float64, nr int) error {
				a := acc.(*float64)
				for i := 0; i < nr; i++ {
					*a += rows[i*d]
				}
				return nil
			},
			Merge: func(acc any) error { sum += *acc.(*float64); return nil },
		})
		SetObserver(nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := float64(n) * float64(n-1) / 2
		if sum != want {
			t.Fatalf("workers=%d: sum = %v, want %v", workers, sum, want)
		}
		if len(events) != 1 {
			t.Fatalf("workers=%d: got %d events, want 1", workers, len(events))
		}
		ev := events[0]
		if ev.Pass != "test.observed" || ev.Phase != "fold" {
			t.Fatalf("workers=%d: event = %+v", workers, ev)
		}
		if ev.Rows != n {
			t.Fatalf("workers=%d: Rows = %d, want %d", workers, ev.Rows, n)
		}
		wantChunks := int64((n + 255) / 256)
		if ev.Chunks != wantChunks {
			t.Fatalf("workers=%d: Chunks = %d, want %d", workers, ev.Chunks, wantChunks)
		}
		if ev.Workers != workers || ev.Err {
			t.Fatalf("workers=%d: event = %+v", workers, ev)
		}
	}
}

// TestPassObserverRemoved: after SetObserver(nil) no events are emitted.
func TestPassObserverRemoved(t *testing.T) {
	SetObserver(func(PassEvent) { t.Error("observer fired after removal") })
	SetObserver(nil)
	scan := func(onRow RowFn) error { return onRow([]float64{1}, 0) }
	err := RunRowPass("test.removed", 1, 1, scan, PassHooks{
		NewAcc: func() any { return new(int) },
		Fold:   func(any, int, []float64, []float64, int) error { return nil },
		Merge:  func(any) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
}
