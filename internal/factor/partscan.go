package factor

import (
	"factorml/internal/core"
	"factorml/internal/join"
	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// PartScan is the factorized access path: the block-nested-loops join
// runner paired with the relation partition [S, R1, …, Rq]. Factorized
// trainers fill per-dimension-tuple caches through FillCaches (parallel,
// disjoint slots, deterministic op accounting), then stream the matches
// sequentially (Run) or in fixed chunks on the worker pool (RunChunks) and
// fold model-specific accumulators per match.
type PartScan struct {
	Runner *join.Runner
	P      core.Partition
}

// NewPartScan prepares the runner and partition for a spec. blockPages
// overrides the spec's block size when the spec leaves it at zero.
func NewPartScan(spec *join.Spec, blockPages int) (*PartScan, error) {
	sp := *spec
	if sp.BlockPages == 0 {
		sp.BlockPages = blockPages
	}
	runner, err := join.NewRunner(&sp)
	if err != nil {
		return nil, err
	}
	dims := []int{sp.S.Schema().NumFeatures()}
	for _, r := range sp.Rs {
		dims = append(dims, r.Schema().NumFeatures())
	}
	return &PartScan{Runner: runner, P: core.NewPartition(dims)}, nil
}

// NumRows returns the fact-table size.
func (ps *PartScan) NumRows() int { return int(ps.Runner.Spec().S.NumTuples()) }

// Resident returns the loaded tuples of dimension relation 1+j (available
// once a scan has started; see join.Runner.Resident).
func (ps *PartScan) Resident(j int) []*storage.Tuple { return ps.Runner.Resident(j) }

// Scan streams the fully concatenated joined rows — the initialization
// pass a factorized trainer shares with the dense strategies, so every
// strategy starts from the identical model.
func (ps *PartScan) Scan(onRow RowFn) error {
	return join.StreamWith(ps.Runner, func(_ int64, x []float64, y float64) error {
		return onRow(x, y)
	})
}

// Run streams one sequential pass over the join.
func (ps *PartScan) Run(cb join.Callbacks) error { return ps.Runner.Run(cb) }

// RunChunks streams one pass with the matches cut into fixed-size chunks
// worked on the pool and merged in chunk order (see join.Runner.RunParallel
// for the determinism contract).
func (ps *PartScan) RunChunks(workers int, cb join.ParallelCallbacks) error {
	return ps.Runner.RunParallel(workers, join.ParallelChunkRows, cb)
}

// FillCaches fills one per-tuple cache slot for every tuple on the worker
// pool: indexes are cut into fixed grains, each grain charges a private op
// counter, and the counters merge in grain order into total — so both the
// cache contents (disjoint slots) and the accounting are identical for
// every worker count.
func (ps *PartScan) FillCaches(workers int, tuples []*storage.Tuple, total *core.Ops,
	fill func(i int, tp *storage.Tuple, ops *core.Ops) error) error {
	return parallel.RunRange(workers, len(tuples), func(s, e int, ops *core.Ops) error {
		for i := s; i < e; i++ {
			if err := fill(i, tuples[i], ops); err != nil {
				return err
			}
		}
		return nil
	}, total)
}
