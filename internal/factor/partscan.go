package factor

import (
	"sync/atomic"
	"time"

	"factorml/internal/core"
	"factorml/internal/join"
	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// PartScan is the factorized access path: the block-nested-loops join
// runner paired with the relation partition [S, R1, …, Rq]. Factorized
// trainers fill per-dimension-tuple caches through FillCaches (parallel,
// disjoint slots, deterministic op accounting), then stream the matches
// sequentially (Run) or in fixed chunks on the worker pool (RunChunks) and
// fold model-specific accumulators per match.
type PartScan struct {
	Runner *join.Runner
	P      core.Partition

	// Pass labels events emitted to the installed pass Observer (see
	// SetObserver): trainers set it before each pass ("fgmm.estep",
	// "fnn.sgd", ...). Unused with no observer installed.
	Pass string
}

// NewPartScan prepares the runner and partition for a spec. blockPages
// overrides the spec's block size when the spec leaves it at zero.
func NewPartScan(spec *join.Spec, blockPages int) (*PartScan, error) {
	sp := *spec
	if sp.BlockPages == 0 {
		sp.BlockPages = blockPages
	}
	runner, err := join.NewRunner(&sp)
	if err != nil {
		return nil, err
	}
	dims := []int{sp.S.Schema().NumFeatures()}
	for _, r := range sp.Rs {
		dims = append(dims, r.Schema().NumFeatures())
	}
	return &PartScan{Runner: runner, P: core.NewPartition(dims)}, nil
}

// NumRows returns the fact-table size.
func (ps *PartScan) NumRows() int { return int(ps.Runner.Spec().S.NumTuples()) }

// Resident returns the loaded tuples of dimension relation 1+j (available
// once a scan has started; see join.Runner.Resident).
func (ps *PartScan) Resident(j int) []*storage.Tuple { return ps.Runner.Resident(j) }

// Scan streams the fully concatenated joined rows — the initialization
// pass a factorized trainer shares with the dense strategies, so every
// strategy starts from the identical model.
func (ps *PartScan) Scan(onRow RowFn) error {
	obs := loadObserver()
	if obs == nil {
		return ps.scan(onRow)
	}
	var rows int64
	start := time.Now()
	err := ps.scan(func(x []float64, y float64) error {
		rows++
		return onRow(x, y)
	})
	obs(PassEvent{Pass: ps.Pass, Phase: "scan", Workers: 1, Rows: rows,
		Wall: time.Since(start), Err: err != nil})
	return err
}

func (ps *PartScan) scan(onRow RowFn) error {
	return join.StreamWith(ps.Runner, func(_ int64, x []float64, y float64) error {
		return onRow(x, y)
	})
}

// Run streams one sequential pass over the join.
func (ps *PartScan) Run(cb join.Callbacks) error {
	obs := loadObserver()
	if obs == nil || cb.OnMatch == nil {
		return ps.Runner.Run(cb)
	}
	var rows int64
	innerMatch := cb.OnMatch
	cb.OnMatch = func(s *storage.Tuple, r1Idx int, resIdx []int) error {
		rows++
		return innerMatch(s, r1Idx, resIdx)
	}
	start := time.Now()
	err := ps.Runner.Run(cb)
	obs(PassEvent{Pass: ps.Pass, Phase: "fold", Workers: 1, Rows: rows,
		Wall: time.Since(start), Err: err != nil})
	return err
}

// RunChunks streams one pass with the matches cut into fixed-size chunks
// worked on the pool and merged in chunk order (see join.Runner.RunParallel
// for the determinism contract).
func (ps *PartScan) RunChunks(workers int, cb join.ParallelCallbacks) error {
	obs := loadObserver()
	if obs == nil || cb.OnMatchChunk == nil {
		return ps.Runner.RunParallel(workers, join.ParallelChunkRows, cb)
	}
	var rows, chunks, foldNs, mergeNs int64
	innerChunk, innerMerged := cb.OnMatchChunk, cb.OnChunkMerged
	cb.OnMatchChunk = func(state any, matches []join.Match) error {
		t0 := time.Now()
		err := innerChunk(state, matches)
		atomic.AddInt64(&foldNs, int64(time.Since(t0)))
		atomic.AddInt64(&rows, int64(len(matches)))
		atomic.AddInt64(&chunks, 1)
		return err
	}
	if innerMerged != nil {
		cb.OnChunkMerged = func(state any) error {
			t0 := time.Now()
			err := innerMerged(state)
			atomic.AddInt64(&mergeNs, int64(time.Since(t0)))
			return err
		}
	}
	start := time.Now()
	err := ps.Runner.RunParallel(workers, join.ParallelChunkRows, cb)
	obs(PassEvent{
		Pass:    ps.Pass,
		Phase:   "fold",
		Workers: workers,
		Rows:    atomic.LoadInt64(&rows),
		Chunks:  atomic.LoadInt64(&chunks),
		Wall:    time.Since(start),
		Fold:    time.Duration(atomic.LoadInt64(&foldNs)),
		Merge:   time.Duration(atomic.LoadInt64(&mergeNs)),
		Err:     err != nil,
	})
	return err
}

// FillCaches fills one per-tuple cache slot for every tuple on the worker
// pool: indexes are cut into fixed grains, each grain charges a private op
// counter, and the counters merge in grain order into total — so both the
// cache contents (disjoint slots) and the accounting are identical for
// every worker count.
func (ps *PartScan) FillCaches(workers int, tuples []*storage.Tuple, total *core.Ops,
	fill func(i int, tp *storage.Tuple, ops *core.Ops) error) error {
	obs := loadObserver()
	var start time.Time
	if obs != nil {
		start = time.Now()
	}
	err := parallel.RunRange(workers, len(tuples), func(s, e int, ops *core.Ops) error {
		for i := s; i < e; i++ {
			if err := fill(i, tuples[i], ops); err != nil {
				return err
			}
		}
		return nil
	}, total)
	if obs != nil {
		obs(PassEvent{Pass: ps.Pass, Phase: "cache_fill", Workers: workers,
			Rows: int64(len(tuples)), Wall: time.Since(start), Err: err != nil})
	}
	return err
}
