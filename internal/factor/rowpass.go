package factor

import (
	"sync/atomic"
	"time"

	"factorml/internal/parallel"
)

// PassHooks is the model-specific accumulator of one chunked pass: NewAcc
// makes (or recycles) a private accumulator, Fold folds a chunk of rows
// into it (start is the global index of the chunk's first row; ys is nil
// for target-less passes), and Merge folds the accumulator into the
// model's running statistics. Merge is always invoked strictly in chunk
// order, so the floating-point reduction is identical for every worker
// count.
type PassHooks struct {
	NewAcc func() any
	Fold   func(acc any, start int, rows, ys []float64, n int) error
	Merge  func(acc any) error
}

// RunRowPass executes one deterministic chunked-parallel pass over a plain
// row scan (no targets, no group structure) — the shape of every GMM EM
// pass. With workers <= 1 rows are blocked into one reused chunk buffer and
// folded as flat row blocks (one Fold per chunk, not per row), with merges
// at the same fixed chunk boundaries — the identical reduction, minus the
// per-row hook and observer overhead. name labels the pass for the
// installed Observer (see SetObserver); with no observer it is unused.
func RunRowPass(name string, workers, d int, scan func(onRow RowFn) error, hooks PassHooks) error {
	grouped := func(onRow RowFn, _ func() error) error { return scan(onRow) }
	return runPass(name, workers, d, false, grouped, false, nil, hooks)
}

// RunSGDPass executes one chunked-parallel pass over a grouped scan,
// carrying per-row targets — the shape of every NN epoch. When cutAtGroups
// is set, each group boundary flushes the current chunk and runs onGroup at
// a full barrier (no worker holds stale parameters across it) — the
// Block-mode gradient step. With cutAtGroups unset the group boundaries are
// ignored and chunks cut only at the fixed chunk size.
func RunSGDPass(name string, workers, d int, scan GroupedScan, cutAtGroups bool, onGroup func() error, hooks PassHooks) error {
	return runPass(name, workers, d, true, scan, cutAtGroups, onGroup, hooks)
}

// runPass dispatches to the shared pass engine, wrapping the hooks with
// observer accounting when a pass observer is installed: Fold and Merge
// times accumulate through atomics (Fold runs concurrently on workers,
// Merge on the single merger goroutine), and one PassEvent is emitted
// after the pass completes. With no observer the hooks run untouched.
func runPass(name string, workers, d int, withY bool, scan GroupedScan, cutAtGroups bool, onGroup func() error, hooks PassHooks) error {
	obs := loadObserver()
	if obs == nil {
		return runPassInner(workers, d, withY, scan, cutAtGroups, onGroup, hooks)
	}
	var rows, chunks, foldNs, mergeNs int64
	inner := hooks
	hooks.Fold = func(acc any, start int, rs, ys []float64, n int) error {
		t0 := time.Now()
		err := inner.Fold(acc, start, rs, ys, n)
		atomic.AddInt64(&foldNs, int64(time.Since(t0)))
		atomic.AddInt64(&rows, int64(n))
		return err
	}
	hooks.Merge = func(acc any) error {
		t0 := time.Now()
		err := inner.Merge(acc)
		atomic.AddInt64(&mergeNs, int64(time.Since(t0)))
		atomic.AddInt64(&chunks, 1)
		return err
	}
	start := time.Now()
	err := runPassInner(workers, d, withY, scan, cutAtGroups, onGroup, hooks)
	obs(PassEvent{
		Pass:    name,
		Phase:   "fold",
		Workers: workers,
		Rows:    atomic.LoadInt64(&rows),
		Chunks:  atomic.LoadInt64(&chunks),
		Wall:    time.Since(start),
		Fold:    time.Duration(atomic.LoadInt64(&foldNs)),
		Merge:   time.Duration(atomic.LoadInt64(&mergeNs)),
		Err:     err != nil,
	})
	return err
}

// runPassInner is the shared engine of RunRowPass and RunSGDPass.
func runPassInner(workers, d int, withY bool, scan GroupedScan, cutAtGroups bool, onGroup func() error, hooks PassHooks) error {
	if workers <= 1 {
		// Rows are blocked into one reused buffer and folded as flat chunks:
		// Fold sees the same contiguous row blocks as the parallel path (so
		// its inner loops run long and flat instead of restarting per row),
		// and the per-row hook/observer overhead collapses to once per chunk.
		// Fold processes rows in order into one accumulator either way, so
		// the reduction is bit-identical to the old per-row streaming.
		buf := make([]float64, parallel.DefaultChunkRows*d)
		var ys []float64
		if withY {
			ys = make([]float64, parallel.DefaultChunkRows)
		}
		n := 0
		row := 0
		chunkStart := 0
		flush := func() error {
			if n == 0 {
				return nil
			}
			acc := hooks.NewAcc()
			if err := hooks.Fold(acc, chunkStart, buf, ys, n); err != nil {
				return err
			}
			n, chunkStart = 0, row
			return hooks.Merge(acc)
		}
		err := scan(
			func(x []float64, y float64) error {
				copy(buf[n*d:(n+1)*d], x)
				if withY {
					ys[n] = y
				}
				n++
				row++
				if n == parallel.DefaultChunkRows {
					return flush()
				}
				return nil
			},
			func() error {
				if !cutAtGroups {
					return nil
				}
				if err := flush(); err != nil {
					return err
				}
				if onGroup == nil {
					return nil
				}
				return onGroup()
			})
		if err != nil {
			return err
		}
		return flush()
	}

	return parallel.Run(workers,
		func(f *parallel.Feed[*parallel.RowChunk]) error {
			cur := parallel.GetRowChunk(0, d, withY)
			next := 0
			flush := func() error {
				if cur.N == 0 {
					return nil
				}
				if err := f.Emit(cur); err != nil {
					return err
				}
				cur = parallel.GetRowChunk(next, d, withY)
				return nil
			}
			err := scan(
				func(x []float64, y float64) error {
					copy(cur.Rows[cur.N*d:(cur.N+1)*d], x)
					if withY {
						cur.Ys[cur.N] = y
					}
					cur.N++
					next++
					if cur.N == parallel.DefaultChunkRows {
						return flush()
					}
					return nil
				},
				func() error {
					if !cutAtGroups {
						return nil
					}
					if err := flush(); err != nil {
						return err
					}
					// Barrier: every emitted chunk is merged, and no worker
					// reads shared state while onGroup mutates it.
					return f.Barrier(onGroup)
				})
			if err != nil {
				return err
			}
			if cur.N > 0 {
				return f.Emit(cur)
			}
			parallel.PutRowChunk(cur)
			return nil
		},
		func(c *parallel.RowChunk) (any, error) {
			acc := hooks.NewAcc()
			if err := hooks.Fold(acc, c.Start, c.Rows, c.Ys, c.N); err != nil {
				return nil, err
			}
			parallel.PutRowChunk(c)
			return acc, nil
		},
		hooks.Merge)
}
