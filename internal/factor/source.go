package factor

import (
	"fmt"
	"math/rand"

	"factorml/internal/join"
	"factorml/internal/storage"
)

// RowFn receives one joined row: the concatenated feature vector (reused
// between calls — clone to retain) and the fact tuple's target (zero when
// the fact table carries none).
type RowFn func(x []float64, y float64) error

// GroupedScan streams every joined row in deterministic order and invokes
// onGroupEnd at each R1-block boundary, so Block-mode mini-batches coincide
// across strategies. Either callback may rely on the other's ordering; a
// scan is one full pass over the joined relation.
type GroupedScan func(onRow RowFn, onGroupEnd func() error) error

// Source is a re-scannable stream of joined rows — the access path of the
// Materialized and Streaming strategies. A Source may be scanned any number
// of times (EM makes three passes per iteration); every scan yields the
// identical row order.
type Source interface {
	// NumRows reports the number of rows one scan delivers — the join
	// result size for a materialized source, the fact-table size for a
	// streamed one (they differ only when a foreign key dangles).
	NumRows() int
	// Width is the joined feature dimensionality.
	Width() int
	// Scan streams every joined row.
	Scan(onRow RowFn) error
	// ScanGroups streams every joined row with group boundaries.
	ScanGroups(onRow RowFn, onGroupEnd func() error) error
	// Close releases anything the source materialized.
	Close() error
}

// MaterializedSource reads joined rows back from a denormalized table T
// written by join.Materialize — the access path of the M-* algorithms. The
// per-block tuple counts recorded at materialization time let ScanGroups
// reconstruct the exact block boundaries of the on-the-fly join.
type MaterializedSource struct {
	db     *storage.Database
	tbl    *storage.Table
	name   string
	counts []int64
	width  int
}

// NewMaterializedSource executes the join and writes T into db under name
// (step 1 of the M-* algorithms). Close drops the temporary table.
func NewMaterializedSource(db *storage.Database, spec *join.Spec, name string) (*MaterializedSource, error) {
	tbl, counts, err := join.Materialize(db, spec, name)
	if err != nil {
		return nil, err
	}
	return &MaterializedSource{
		db: db, tbl: tbl, name: name, counts: counts,
		width: spec.JoinedWidth(),
	}, nil
}

// NumRows returns the number of joined tuples written to T.
func (s *MaterializedSource) NumRows() int { return int(s.tbl.NumTuples()) }

// Width returns the joined feature dimensionality.
func (s *MaterializedSource) Width() int { return s.width }

// Scan reads T front to back.
func (s *MaterializedSource) Scan(onRow RowFn) error {
	sc := s.tbl.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		if err := onRow(tp.Features, tp.Target); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ScanGroups reads T and fires onGroupEnd at the recorded block
// boundaries, including runs of empty blocks (a block whose keys matched
// no fact tuple still ends a mini-batch in the streamed join).
func (s *MaterializedSource) ScanGroups(onRow RowFn, onGroupEnd func() error) error {
	sc := s.tbl.NewScanner()
	blk := 0
	// Leading empty blocks fire their boundaries before the first row —
	// without this the `inBlock == counts[blk]` check below (inBlock >= 1
	// once rows flow) could never match a zero count and every later
	// boundary would land one block late.
	for blk < len(s.counts) && s.counts[blk] == 0 {
		if err := onGroupEnd(); err != nil {
			return err
		}
		blk++
	}
	var inBlock int64
	for sc.Next() {
		tp := sc.Tuple()
		if err := onRow(tp.Features, tp.Target); err != nil {
			return err
		}
		inBlock++
		for blk < len(s.counts) && inBlock == s.counts[blk] {
			if err := onGroupEnd(); err != nil {
				return err
			}
			inBlock = 0
			blk++
			// Skip over empty blocks (possible when a block's keys match
			// no fact tuples).
			for blk < len(s.counts) && s.counts[blk] == 0 {
				if err := onGroupEnd(); err != nil {
					return err
				}
				blk++
			}
		}
	}
	return sc.Err()
}

// Close drops the materialized table.
func (s *MaterializedSource) Close() error { return s.db.DropTable(s.name) }

// StreamedSource re-executes the block-nested-loops join on every scan —
// the access path of the S-* algorithms. The resident dimension relations
// are loaded once and reused across scans.
type StreamedSource struct {
	runner *join.Runner
	width  int
	// xbuf is the assembled-row buffer ScanGroups reuses across scans; a
	// Source is scanned sequentially (EM makes three passes per iteration),
	// so one buffer per source suffices and the per-scan allocation is gone.
	xbuf []float64
}

// NewStreamedSource prepares the join runner. blockPages overrides the
// spec's block size when the spec leaves it at zero.
func NewStreamedSource(spec *join.Spec, blockPages int) (*StreamedSource, error) {
	sp := *spec
	if sp.BlockPages == 0 {
		sp.BlockPages = blockPages
	}
	runner, err := join.NewRunner(&sp)
	if err != nil {
		return nil, err
	}
	w := sp.JoinedWidth()
	return &StreamedSource{runner: runner, width: w, xbuf: make([]float64, w)}, nil
}

// NumRows returns the fact-table size (the join is lossless on S when no
// foreign key dangles).
func (s *StreamedSource) NumRows() int { return int(s.runner.Spec().S.NumTuples()) }

// Width returns the joined feature dimensionality.
func (s *StreamedSource) Width() int { return s.width }

// Scan re-executes the join, assembling each joined feature vector.
func (s *StreamedSource) Scan(onRow RowFn) error {
	return join.StreamWith(s.runner, func(_ int64, x []float64, y float64) error {
		return onRow(x, y)
	})
}

// ScanGroups re-executes the join with block boundaries.
func (s *StreamedSource) ScanGroups(onRow RowFn, onGroupEnd func() error) error {
	x := s.xbuf
	var block []*storage.Tuple
	return s.runner.Run(join.Callbacks{
		OnBlockStart: func(b []*storage.Tuple) error { block = b; return nil },
		OnMatch: func(st *storage.Tuple, r1Idx int, resIdx []int) error {
			n := copy(x, st.Features)
			n += copy(x[n:], block[r1Idx].Features)
			for j, ri := range resIdx {
				n += copy(x[n:], s.runner.Resident(j)[ri].Features)
			}
			if n != s.width {
				return fmt.Errorf("factor: assembled %d features, want %d", n, s.width)
			}
			return onRow(x, st.Target)
		},
		OnBlockEnd: onGroupEnd,
	})
}

// Shuffle installs a per-scan permutation of R1's rows (the paper's §VI
// per-epoch key permutation for SGD); nil restores sequential order. Only
// the streamed source supports this — a materialized T is fixed on disk.
func (s *StreamedSource) Shuffle(rng *rand.Rand) { s.runner.Shuffle(rng) }

// Close is a no-op (nothing was materialized).
func (s *StreamedSource) Close() error { return nil }
