package factor

import (
	"sync/atomic"
	"time"
)

// PassEvent describes one completed phase of a training pass: a chunked
// row pass (RunRowPass / RunSGDPass), a factorized match pass
// (PartScan.Run / RunChunks), a dimension-cache fill, or an
// initialization scan. Pass names the logical pass ("gmm.estep",
// "fnn.sgd", ...), Phase the mechanical stage within it. Fold is the
// cumulative worker time spent folding rows into accumulators (summed
// across workers, so it exceeds Wall when the pass parallelizes well);
// Merge is the single-threaded ordered-merge time.
type PassEvent struct {
	Pass    string
	Phase   string // "scan", "cache_fill", "fold"
	Workers int
	Rows    int64
	Chunks  int64
	Wall    time.Duration
	Fold    time.Duration
	Merge   time.Duration
	Err     bool
}

// Observer receives pass events. It may be called from the training
// goroutine only (events are emitted after a pass completes), but
// passes from concurrent trainings can interleave, so implementations
// must be goroutine-safe.
type Observer func(PassEvent)

var passObserver atomic.Pointer[Observer]

// SetObserver installs the process-wide pass observer (nil removes it).
// With no observer installed the pass operators skip all timing and
// counting work — the hot loops are untouched.
func SetObserver(o Observer) {
	if o == nil {
		passObserver.Store(nil)
		return
	}
	passObserver.Store(&o)
}

func loadObserver() Observer {
	if p := passObserver.Load(); p != nil {
		return *p
	}
	return nil
}
