package stream

import (
	"errors"
	"fmt"
)

// FactRow is one new fact tuple in a change batch: the tuple's own
// features plus one foreign key per dimension table (in join order).
// Target is stored only when the fact table carries a target column.
type FactRow struct {
	SID      int64     `json:"sid"`
	FKs      []int64   `json:"fks"`
	Features []float64 `json:"features"`
	Target   float64   `json:"target,omitempty"`
}

// DimUpdate is one dimension-table change in a batch: an insert when RID
// is new in the table, an in-place update of the tuple's payload when it
// exists. FKs carries the tuple's sub-dimension foreign keys when the
// table sits mid-level in a snowflake hierarchy (one key per recorded
// reference, empty for a leaf table); an update may repoint them. Updates
// reach the serving caches immediately (exactly the entries derived from
// the tuple are invalidated, at every hierarchy position referencing the
// table) and mark incremental GMM statistics for a rebuild on the next
// refresh.
type DimUpdate struct {
	Table    string    `json:"table"`
	RID      int64     `json:"rid"`
	FKs      []int64   `json:"fks,omitempty"`
	Features []float64 `json:"features"`
}

// Batch is one atomic change-feed entry. The whole batch is validated
// before anything is applied: a bad row rejects the batch without partial
// effects. Dimension changes apply before fact rows, so a fact row may
// reference a dimension tuple inserted by the same batch.
type Batch struct {
	Facts []FactRow   `json:"facts,omitempty"`
	Dims  []DimUpdate `json:"dims,omitempty"`
}

// ValidationError marks a batch that was rejected up front: nothing was
// applied. Any other error from Ingest is a server-side failure that may
// have occurred after rows were applied (storage I/O, a triggered
// refresh) — retrying the same batch may duplicate rows.
type ValidationError struct{ msg string }

func (e *ValidationError) Error() string { return e.msg }

// IsValidationError reports whether err is a batch-validation rejection.
func IsValidationError(err error) bool {
	var ve *ValidationError
	return errors.As(err, &ve)
}

func valErrf(format string, args ...any) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// IncompatibleModelError marks an attach rejected because the model does
// not fit the stream's star schema (wrong joined width, or an NN over a
// target-less fact table). Callers attaching a whole registry can skip
// these and keep such models served-but-static, while other attach
// failures (storage I/O, dangling foreign keys found by the base absorb)
// stay hard errors.
type IncompatibleModelError struct{ msg string }

func (e *IncompatibleModelError) Error() string { return e.msg }

// IsIncompatibleModel reports whether err is a schema-incompatibility
// rejection from AttachGMM/AttachNN.
func IsIncompatibleModel(err error) bool {
	var ie *IncompatibleModelError
	return errors.As(err, &ie)
}

func incompatErrf(format string, args ...any) error {
	return &IncompatibleModelError{msg: fmt.Sprintf(format, args...)}
}

// IngestResult reports what one Ingest call did.
type IngestResult struct {
	Facts       int   `json:"facts"`
	DimInserts  int   `json:"dim_inserts"`
	DimUpdates  int   `json:"dim_updates"`
	PendingRows int64 `json:"pending_rows"`
	// RefreshTriggered is set when the batch pushed the pending-row count
	// over Policy.RefreshRows and an automatic refresh ran.
	RefreshTriggered bool `json:"refresh_triggered"`
}

// ModelRefresh reports one model's part of a refresh.
type ModelRefresh struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// RowsAbsorbed is how many fact rows this refresh folded into the
	// model's statistics (GMM) or how many rows the warm-start epochs
	// trained over (NN).
	RowsAbsorbed int64 `json:"rows_absorbed"`
	// LogLikelihood is the data log-likelihood recorded by the maintained
	// statistics (GMM only; responsibilities of earlier rows are as of
	// their absorb-time model).
	LogLikelihood float64 `json:"log_likelihood,omitempty"`
	// Rebaselined is set when the statistics were rebuilt from scratch
	// under the current model (dirty after a dimension update, or the
	// Policy.RebaselineEvery cadence).
	Rebaselined bool `json:"rebaselined,omitempty"`
	// Strategy names how this refresh trained: "incremental" for the GMM
	// sufficient-statistics maintenance, or the planner-chosen execution
	// strategy ("factorized"/"streaming") for an NN warm-start retrain —
	// the refresh reuses the plan computed at attach time (recomputed
	// after dimension updates, when the statistics shift).
	Strategy string `json:"strategy,omitempty"`
}

// RefreshResult reports one refresh across every attached model.
type RefreshResult struct {
	Models []ModelRefresh `json:"models"`
}

// Counters is a snapshot of the stream's cumulative ingestion counters,
// embedded in the serving /statsz payload.
type Counters struct {
	Batches       uint64 `json:"batches"`
	FactsIngested uint64 `json:"facts_ingested"`
	DimInserts    uint64 `json:"dim_inserts"`
	DimUpdates    uint64 `json:"dim_updates"`
	Refreshes     uint64 `json:"refreshes"`
	AutoRefreshes uint64 `json:"auto_refreshes"`
	Rebaselines   uint64 `json:"rebaselines"`
	// Checkpoints counts committed WAL snapshots (explicit Checkpoint
	// calls plus the SnapshotEvery cadence).
	Checkpoints    uint64 `json:"checkpoints"`
	PendingRows    int64  `json:"pending_rows"`
	AttachedModels int    `json:"attached_models"`
	// IngestQueueDepth is the number of admitted-but-unfinished HTTP
	// ingest batches (see Options.MaxQueuedIngest).
	IngestQueueDepth int `json:"ingest_queue_depth"`
	// IngestRejections counts batches the bounded ingest queue rejected
	// with 429 before any work was admitted.
	IngestRejections uint64 `json:"ingest_rejections"`
}
