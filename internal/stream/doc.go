// Package stream is the streaming-ingestion and incremental-maintenance
// subsystem: an append/update change feed over the fact and dimension
// tables of a star schema, plus incremental maintenance of the factorized
// sufficient statistics that let a served model be refreshed from a batch
// of deltas in time proportional to the delta, not the dataset.
//
// The same observation that powers the paper's factorized trainers —
// work that depends only on a dimension tuple is done once per dimension
// tuple, not once per joined row — is what makes incremental maintenance
// cheap: a batch of new fact tuples only perturbs the per-group statistics
// it touches, and a dimension-tuple update invalidates exactly the cached
// partials derived from that tuple.
//
// # Maintained statistics
//
//   - Per-dimension group statistics: for every (dimension relation,
//     dimension tuple, mixture component), the γ-sum w_g = Σ_{n∈g} γ_n
//     (the γ-weighted group count) and the γ-weighted fact-feature sum
//     Σ_{n∈g} γ_n·x_S. The M-step's dimension-block contributions are
//     assembled from these in time proportional to the number of groups.
//   - GMM QuadCache contributions: the E-step over delta rows scores
//     through gmm.Scorer with per-dimension-tuple core.QuadCache fills —
//     once per distinct dimension tuple referenced by the batch.
//   - NN layer-1 partial pre-activations: maintained by the serving engine
//     as per-dimension-tuple LRU entries; a dimension update surgically
//     invalidates exactly the entries keyed by the updated tuple
//     (serve.Engine.ApplyDimUpdate), and the factorized warm-start refresh
//     recomputes them once per dimension tuple per parameter state.
//
// # Refresh semantics
//
// For a GMM, Refresh performs one incremental EM step: the E-step runs
// over the rows absorbed since the last refresh only (cost ∝ delta), its
// statistics fold into the maintained sums, and the M-step produces the
// new model from the folded totals. When the maintained statistics are
// fresh (first refresh after attach or after a rebaseline), this is
// EXACTLY one EM iteration over base ∪ delta warm-started at the current
// model — and the accumulator geometry below makes it bit-identical to
// recomputing the statistics from scratch over the union, for every
// worker count. Across consecutive refreshes the responsibilities of
// previously absorbed rows are not revised (they were computed under the
// model current at absorb time) — the classic incremental-EM scheme of
// Neal & Hinton; Policy.RebaselineEvery bounds the staleness by
// periodically rebuilding the statistics from scratch under the current
// model. A dimension-tuple update marks the statistics dirty and forces
// that rebuild on the next refresh, because the stored γ-sums were
// computed against the old features.
//
// For an NN, Refresh warm-starts the factorized trainer (nn.Config.Init)
// from the served network and runs Policy.NNEpochs SGD epochs over
// base ∪ delta — equal to dense warm-start retraining on the union up to
// floating-point summation order, and bit-identical for every worker
// count.
//
// # Bit-identical incremental absorption
//
// The statistics accumulator cuts the fact table into chunks of
// StatChunkRows at absolute row indexes — chunk i always covers rows
// [i·C, (i+1)·C) no matter when, or under how many workers, those rows
// are absorbed. Complete chunks fold into a merged accumulator strictly
// in chunk order; the trailing partial chunk is kept as a separate "tail"
// accumulator that later absorbs extend sequentially, and is folded only
// into snapshots. Within a chunk rows accumulate sequentially in scan
// order. Every floating-point reduction order is therefore a function of
// the data alone: absorbing base then delta (in any number of batches)
// performs literally the same additions in the same order as one
// from-scratch pass over the union, so the refreshed model is
// bit-identical to "full retraining on base+delta" (one warm-start EM
// step computed the expensive way) — the property the tests pin.
package stream
