package stream

import (
	"math"
	"math/rand"
	"testing"

	"factorml/internal/core"
	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/linalg"
	"factorml/internal/storage"
)

// genStar creates a small synthetic star schema and returns the database,
// the join spec and the relation partition.
func genStar(t *testing.T, nS int, nR []int, dS int, dR []int, seed int64) (*storage.Database, *join.Spec, core.Partition) {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	spec, err := data.Generate(db, "st", data.SynthConfig{
		NS: nS, NR: nR, DS: dS, DR: dR, Seed: seed, WithTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{dS}
	dims = append(dims, dR...)
	return db, spec, core.NewPartition(dims)
}

func buildIndexes(t *testing.T, spec *join.Spec) []*join.ResidentIndex {
	t.Helper()
	var idxs []*join.ResidentIndex
	for _, r := range spec.Rs {
		ix, err := join.BuildResidentIndex(r)
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, ix)
	}
	return idxs
}

// resolverFor wraps the per-relation indexes in a hierarchy resolver (the
// one-hop star edges for these fixtures).
func resolverFor(t *testing.T, spec *join.Spec, idxs []*join.ResidentIndex) *join.Resolver {
	t.Helper()
	plan := spec.Plan()
	rv, err := join.NewResolver(plan.Parent, plan.Ref, idxs)
	if err != nil {
		t.Fatal(err)
	}
	return rv
}

func trainBase(t *testing.T, db *storage.Database, spec *join.Spec, k int) *gmm.Model {
	t.Helper()
	res, err := gmm.TrainF(db, spec, gmm.Config{K: k, MaxIter: 3, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Model
}

// appendDeltaFacts appends n new fact rows with keys drawn from the
// existing dimension tuples (and targets/features from a seeded RNG).
func appendDeltaFacts(t *testing.T, spec *join.Spec, idxs []*join.ResidentIndex, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dS := spec.S.Schema().NumFeatures()
	base := spec.S.NumTuples()
	for i := 0; i < n; i++ {
		keys := []int64{base + int64(i)}
		for _, ix := range idxs {
			g := rng.Intn(ix.Len())
			pk, _ := ix.At(g)
			keys = append(keys, pk)
		}
		feats := make([]float64, dS)
		for d := range feats {
			feats[d] = rng.NormFloat64()
		}
		if err := spec.S.Append(&storage.Tuple{Keys: keys, Features: feats, Target: rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := spec.S.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestGMMIncrementalMatchesFullRecompute pins the tentpole property: after
// any split of the data into absorb batches, and under every worker
// count, the maintained statistics produce a refreshed model bit-identical
// to recomputing the statistics from scratch over base ∪ delta (the
// "full retraining" baseline: one warm-start EM step computed the
// expensive way). Covers the binary and the multi-way join (which
// exercises the cross-dimension group-pair stats), plus dimension-tuple
// inserts arriving mid-stream.
func TestGMMIncrementalMatchesFullRecompute(t *testing.T) {
	cases := []struct {
		name string
		nR   []int
		dR   []int
	}{
		{"binary", []int{24}, []int{2}},
		{"3way", []int{24, 10}, []int{2, 3}},
	}
	workerSweep := []int{1, 2, 3, 8}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, spec, p := genStar(t, 580, tc.nR, 3, tc.dR, 7)
			model := trainBase(t, db, spec, 3)
			idxs := buildIndexes(t, spec)

			// One stats object per worker count, all absorbing the base
			// now — before any delta exists.
			incs := make([]*GMMStats, len(workerSweep))
			for i, w := range workerSweep {
				incs[i] = NewGMMStats(p, model.K)
				if err := incs[i].Absorb(model, spec.S, resolverFor(t, spec, idxs), w); err != nil {
					t.Fatal(err)
				}
			}

			// Delta batch 1: 137 fact rows (odd size, so chunk boundaries
			// straddle the base/delta seam).
			appendDeltaFacts(t, spec, idxs, 137, 11)
			for i, w := range workerSweep {
				if err := incs[i].Absorb(model, spec.S, resolverFor(t, spec, idxs), w); err != nil {
					t.Fatal(err)
				}
			}

			// Delta batch 2: a brand-new dimension tuple in every relation
			// plus 61 more fact rows, some referencing the new tuples.
			for j, ix := range idxs {
				feats := make([]float64, ix.Width())
				for d := range feats {
					feats[d] = 0.25 * float64(j+d+1)
				}
				newPK := int64(100000 + j)
				if err := spec.Rs[j].Append(&storage.Tuple{Keys: []int64{newPK}, Features: feats}); err != nil {
					t.Fatal(err)
				}
				if err := spec.Rs[j].Flush(); err != nil {
					t.Fatal(err)
				}
				if _, err := ix.Upsert(newPK, nil, feats); err != nil {
					t.Fatal(err)
				}
			}
			base := spec.S.NumTuples()
			for i := 0; i < 61; i++ {
				keys := []int64{base + int64(i)}
				for j, ix := range idxs {
					if i%5 == 0 {
						keys = append(keys, int64(100000+j)) // new dimension tuple
					} else {
						pk, _ := ix.At(i % (ix.Len() - 1))
						keys = append(keys, pk)
					}
				}
				feats := []float64{float64(i) * 0.01, -float64(i) * 0.02, 1}
				if err := spec.S.Append(&storage.Tuple{Keys: keys, Features: feats, Target: 0}); err != nil {
					t.Fatal(err)
				}
			}
			if err := spec.S.Flush(); err != nil {
				t.Fatal(err)
			}
			for i, w := range workerSweep {
				if err := incs[i].Absorb(model, spec.S, resolverFor(t, spec, idxs), w); err != nil {
					t.Fatal(err)
				}
			}

			// Baseline: fresh statistics recomputed from scratch over the
			// union, per worker count.
			refModel, err := incs[0].Step(model, idxs, 1e-6)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range workerSweep {
				mInc, err := incs[i].Step(model, idxs, 1e-6)
				if err != nil {
					t.Fatal(err)
				}
				if d := mInc.MaxParamDiff(refModel); d != 0 {
					t.Fatalf("incremental model (workers=%d) differs from workers=%d by %g", w, workerSweep[0], d)
				}
				full := NewGMMStats(p, model.K)
				if err := full.Absorb(model, spec.S, resolverFor(t, spec, idxs), w); err != nil {
					t.Fatal(err)
				}
				if full.Rows() != incs[i].Rows() {
					t.Fatalf("row counts: full=%d inc=%d", full.Rows(), incs[i].Rows())
				}
				mFull, err := full.Step(model, idxs, 1e-6)
				if err != nil {
					t.Fatal(err)
				}
				if d := mInc.MaxParamDiff(mFull); d != 0 {
					t.Fatalf("incremental vs full-recompute model (workers=%d) differ by %g (want bit-identical)", w, d)
				}
				if ll1, ll2 := incs[i].LogLikelihood(), full.LogLikelihood(); ll1 != ll2 {
					t.Fatalf("log-likelihoods differ: inc=%v full=%v", ll1, ll2)
				}
			}
		})
	}
}

// TestGMMRefreshMatchesWarmStartTrainer ties the incremental refresh to
// the real trainers: a stream refresh (fresh statistics + one M-step)
// must agree with one warm-started F-GMM EM iteration over the same data
// (gmm.Config.Init) up to floating-point rearrangement — the trainer
// accumulates centered moments in join-block order, the stream raw
// moments in scan order, so the comparison is 1e-8, not bitwise.
func TestGMMRefreshMatchesWarmStartTrainer(t *testing.T) {
	db, spec, p := genStar(t, 450, []int{18}, 3, []int{2}, 19)
	model := trainBase(t, db, spec, 3)
	idxs := buildIndexes(t, spec)
	appendDeltaFacts(t, spec, idxs, 90, 23)

	st := NewGMMStats(p, model.K)
	if err := st.Absorb(model, spec.S, resolverFor(t, spec, idxs), 2); err != nil {
		t.Fatal(err)
	}
	got, err := st.Step(model, idxs, 1e-6)
	if err != nil {
		t.Fatal(err)
	}

	wres, err := gmm.TrainF(db, spec, gmm.Config{
		K: model.K, MaxIter: 1, Tol: 1e-300, Init: model, NumWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxParamDiff(wres.Model); !(d <= 1e-8) {
		t.Fatalf("stream refresh vs warm-started F-GMM iteration differ by %g, want <= 1e-8", d)
	}
	// Warm starting must not mutate the caller's model.
	if model.D != p.D || wres.Model == model {
		t.Fatal("warm start returned the caller's model")
	}
}

// TestGMMStreamStepMatchesDenseEM checks the refresh M-step against a
// plain dense single EM step (raw-moment form) computed by scanning the
// fact table and assembling every joined row — same semantics, none of
// the factorized machinery.
func TestGMMStreamStepMatchesDenseEM(t *testing.T) {
	db, spec, p := genStar(t, 400, []int{16, 8}, 3, []int{2, 2}, 5)
	model := trainBase(t, db, spec, 3)
	idxs := buildIndexes(t, spec)

	st := NewGMMStats(p, model.K)
	if err := st.Absorb(model, spec.S, resolverFor(t, spec, idxs), 4); err != nil {
		t.Fatal(err)
	}
	got, err := st.Step(model, idxs, 1e-6)
	if err != nil {
		t.Fatal(err)
	}

	// Dense reference.
	k := model.K
	D := p.D
	nk := make([]float64, k)
	s1 := make([][]float64, k)
	s2 := make([]*linalg.Dense, k)
	for c := 0; c < k; c++ {
		s1[c] = make([]float64, D)
		s2[c] = linalg.NewDense(D, D)
	}
	n := 0
	sc := spec.S.NewScanner()
	x := make([]float64, D)
	for sc.Next() {
		tp := sc.Tuple()
		nc := copy(x, tp.Features)
		for j, ix := range idxs {
			feats, ok := ix.Lookup(tp.Keys[1+j])
			if !ok {
				t.Fatalf("unknown fk %d", tp.Keys[1+j])
			}
			nc += copy(x[nc:], feats)
		}
		gamma := model.Responsibilities(x)
		for c := 0; c < k; c++ {
			nk[c] += gamma[c]
			linalg.Axpy(gamma[c], x, s1[c])
			linalg.OuterAccum(s2[c], gamma[c], x, x)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := model.Clone()
	for c := 0; c < k; c++ {
		want.Weights[c] = nk[c] / float64(n)
		mu := make([]float64, D)
		linalg.VecScale(mu, 1/nk[c], s1[c])
		copy(want.Means[c], mu)
		cov := s2[c].Clone()
		dd := cov.Data()
		for i := 0; i < D; i++ {
			for j := 0; j < D; j++ {
				dd[i*D+j] = dd[i*D+j]/nk[c] - mu[i]*mu[j]
			}
		}
		cov.AddDiag(1e-6)
		want.Covs[c] = cov
	}
	if d := got.MaxParamDiff(want); !(d <= 1e-9) {
		t.Fatalf("stream step vs dense EM step differ by %g, want <= 1e-9", d)
	}
	if math.IsNaN(st.LogLikelihood()) {
		t.Fatal("NaN log-likelihood")
	}
}
