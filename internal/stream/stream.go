package stream

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"factorml/internal/core"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/monitor"
	"factorml/internal/nn"
	"factorml/internal/plan"
	"factorml/internal/serve"
	"factorml/internal/storage"
	"factorml/internal/trace"
	"factorml/internal/wal"
)

// Policy tunes when and how refreshes run.
type Policy struct {
	// RefreshRows triggers an automatic refresh of every attached model
	// once that many fact rows are pending (ingested since the last
	// refresh). 0 means manual refreshes only.
	RefreshRows int

	// RebaselineEvery rebuilds a GMM's statistics from scratch under its
	// current model on every Nth refresh, bounding the staleness of
	// frozen responsibilities (see the package comment). 0 never
	// rebaselines on a cadence (dimension updates still force one).
	RebaselineEvery int

	// NumWorkers sizes the worker pool of absorbs and refresh training:
	// 0 = all CPUs, 1 = sequential. Refreshed models are bit-identical
	// for every value.
	NumWorkers int

	// NNEpochs is how many warm-start SGD epochs an NN refresh runs over
	// base ∪ delta (default 1).
	NNEpochs int

	// NNLearningRate is the refresh gradient step size (default 0.05).
	NNLearningRate float64

	// GMMRegEps is the covariance diagonal regularizer of the refresh
	// M-step (default 1e-6, matching the trainers).
	GMMRegEps float64
}

func (p Policy) withDefaults() Policy {
	if p.NNEpochs == 0 {
		p.NNEpochs = 1
	}
	if p.NNLearningRate == 0 {
		p.NNLearningRate = 0.05
	}
	if p.GMMRegEps == 0 {
		p.GMMRegEps = 1e-6
	}
	return p
}

// Options wires a Stream into its surroundings.
type Options struct {
	// Engine, when set, shares its resident dimension indexes with the
	// stream: dimension updates flow through serve.Engine.ApplyDimUpdate,
	// which surgically invalidates the cached partials of the updated
	// tuple, so a live server observes the change immediately.
	Engine *serve.Engine

	// Registry, when set, receives every refreshed model under its
	// attached name (version bump), which is how a serving engine picks
	// up refreshed parameters without a restart.
	Registry *serve.Registry

	// MaxQueuedIngest bounds admitted-but-unfinished HTTP ingest batches
	// (the bounded ingest queue): a batch arriving while the queue is
	// full is rejected by Handler with 429 ingest_overloaded before its
	// body is read. 0 = unlimited. Direct Ingest calls bypass the queue —
	// the bound is HTTP admission control, not a correctness gate.
	MaxQueuedIngest int

	// Monitor, when set, rides the change feed: every ingested fact row
	// is resolved to its joined feature vector and folded into the
	// per-model drift sketches (O(1) per row), dimension updates feed
	// the affected columns, refreshes advance the persisted baselines,
	// and attached models are registered with their lineage. Monitoring
	// is passive — it never changes what the stream trains or saves.
	Monitor *monitor.Monitor

	// WAL, when set, makes ingest durable: every validated batch and
	// explicit refresh is appended (and fsynced, per the log's group-
	// commit options) to the write-ahead log BEFORE it is applied, so
	// an acked batch survives a crash at any point. With a WAL the
	// stream also skips per-batch heap flushes — durability comes from
	// the log, and checkpoints (Checkpoint / SnapshotEvery) write the
	// heaps back in bulk.
	WAL *wal.Log

	// SnapshotEvery takes an automatic checkpoint once the WAL has
	// grown that many records past the last snapshot. 0 disables
	// automatic checkpoints (Checkpoint can still be called directly).
	SnapshotEvery int

	Policy Policy
}

// attached is one model under incremental maintenance.
type attached struct {
	name  string
	kind  serve.Kind
	gmdl  *gmm.Model
	stats *GMMStats
	dirty bool // dimension update since the last refresh touched the data
	net   *nn.Network
	// lastRows is the fact-table size the model was last refreshed over
	// (NN), so a refresh with no new data and no dimension change can
	// skip the full-dataset warm-start epochs.
	lastRows int64
	// plan is the cost-based strategy decision an NN refresh reuses
	// (computed at attach time from the catalog statistics, recomputed
	// when a dimension update dirties the model). Nil falls back to the
	// factorized trainer.
	plan *plan.Plan
}

// Stream is the change feed over one star schema: it appends fact and
// dimension deltas to the underlying tables, keeps the resident indexes
// and serving caches coherent, and maintains the attached models'
// factorized sufficient statistics incrementally. All methods are safe
// for concurrent use; ingest and refresh serialize on one mutex while
// serving reads proceed through the (independently locked) resident
// indexes and LRUs.
type Stream struct {
	mu   sync.Mutex
	db   *storage.Database
	spec *join.Spec
	p    core.Partition
	idxs []*join.ResidentIndex // one per plan node (shared per table)
	rv   *join.Resolver
	dimJ map[string][]int // dimension table name -> plan node positions
	// direct[d] is the plan node of the fact table's d-th foreign key.
	direct []int
	eng    *serve.Engine
	reg    *serve.Registry
	pol    Policy
	mon    *monitor.Monitor
	// Monitor scratch (allocated once when a monitor is attached): the
	// joined-row buffer and per-node resolution outputs, reused across
	// every ingested fact row so the observe path allocates nothing.
	monX   []float64
	monPKs []int64
	monPos []int

	models map[string]*attached
	// refreshSeq counts refreshes for the rebaseline cadence.
	refreshSeq uint64

	// ingestLim is the bounded ingest queue (nil = unlimited): Handler
	// holds a slot from before the body is read until the batch is done,
	// so len(ingestLim) is the queue depth and a full queue answers 429.
	ingestLim        *serve.Limiter
	maxQueued        int
	ingestRejections atomic.Uint64

	// Durability state (nil wal = off). replaying suppresses re-logging
	// and checkpoint triggers while Recover re-applies the WAL tail;
	// walBuf is the reused record-encoding buffer (all appends run
	// under mu, so one buffer suffices).
	wal       *wal.Log
	snapEvery int
	replaying bool
	walBuf    []byte

	// cmu guards the plain-integer observability state (counters,
	// pending-row count) separately from mu, so Counters() and Pending()
	// — the /statsz path — never block behind a refresh that holds mu
	// for an O(dataset) training pass. Writers always hold mu first;
	// lock order is mu → cmu.
	cmu      sync.Mutex
	pending  int64
	counters Counters
	// plannerSnap is the current per-model strategy decisions, rebuilt
	// under mu whenever a plan changes (attach, refresh replan) and read
	// under cmu — so the /statsz planner section, like Counters, never
	// blocks behind a refresh holding mu for an O(dataset) pass.
	plannerSnap []PlannerDecision
}

// New builds a stream over the (star or snowflake) join spec. When
// opts.Engine is set it must serve every dimension table of the spec (the
// indexes are shared); otherwise the stream pins its own copy of the
// dimension relations — one copy per table, shared by every hierarchy
// position that references it, so a dimension update lands exactly once.
func New(db *storage.Database, spec *join.Spec, opts Options) (*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dims := []int{spec.S.Schema().NumFeatures()}
	for _, r := range spec.Rs {
		dims = append(dims, r.Schema().NumFeatures())
	}
	s := &Stream{
		db:        db,
		spec:      spec,
		p:         core.NewPartition(dims),
		dimJ:      make(map[string][]int, len(spec.Rs)),
		eng:       opts.Engine,
		reg:       opts.Registry,
		pol:       opts.Policy.withDefaults(),
		models:    make(map[string]*attached),
		ingestLim: serve.NewLimiter(opts.MaxQueuedIngest),
		maxQueued: opts.MaxQueuedIngest,
		mon:       opts.Monitor,
		wal:       opts.WAL,
		snapEvery: opts.SnapshotEvery,
	}
	plan := spec.Plan()
	var lookup func(name string) (*join.ResidentIndex, bool)
	if s.eng != nil {
		lookup = s.eng.Index
	}
	idxs, err := plan.BuildIndexes(lookup)
	if err != nil {
		return nil, err
	}
	s.idxs = idxs
	for j, r := range spec.Rs {
		name := r.Schema().Name
		s.dimJ[name] = append(s.dimJ[name], j)
		if plan.Parent[j] == -1 {
			s.direct = append(s.direct, j)
		}
	}
	rv, err := join.NewResolver(plan.Parent, plan.Ref, s.idxs)
	if err != nil {
		return nil, err
	}
	s.rv = rv
	if s.mon != nil {
		s.monX = make([]float64, s.p.D)
		s.monPKs = make([]int64, len(s.idxs))
		s.monPos = make([]int, len(s.idxs))
	}
	return s, nil
}

// Partition returns the stream's relation partition.
func (s *Stream) Partition() core.Partition { return s.p }

// AttachGMM puts a mixture model under incremental maintenance: the base
// statistics are built with one full absorb under the model (cost ∝ the
// current fact table), after which refreshes cost time proportional to
// the ingested delta.
func (s *Stream) AttachGMM(name string, m *gmm.Model) error {
	if m == nil {
		return fmt.Errorf("stream: nil GMM model")
	}
	if m.D != s.p.D {
		return incompatErrf("stream: model %q has dimension %d, star schema joins to %d", name, m.D, s.p.D)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.attachGMMLocked(name, m); err != nil {
		return err
	}
	return s.logAttachLocked(walAttachGMM, name, m.Save)
}

func (s *Stream) attachGMMLocked(name string, m *gmm.Model) error {
	if _, ok := s.models[name]; ok {
		return fmt.Errorf("stream: model %q already attached", name)
	}
	st := NewGMMStats(s.p, m.K)
	if err := st.Absorb(m, s.spec.S, s.rv, s.pol.NumWorkers); err != nil {
		return err
	}
	s.models[name] = &attached{name: name, kind: serve.KindGMM, gmdl: m.Clone(), stats: st}
	s.attachMonitorLocked(name, serve.KindGMM)
	s.cmu.Lock()
	s.counters.AttachedModels = len(s.models)
	s.cmu.Unlock()
	s.snapshotPlansLocked()
	return nil
}

// logAttachLocked appends a walOpAttach record for a model that was
// just attached. Attach mutates only memory, so apply-then-log is safe:
// a crash between the two loses an attach that was never acknowledged.
func (s *Stream) logAttachLocked(kind byte, name string, save func(io.Writer) error) error {
	if s.wal == nil || s.replaying {
		return nil
	}
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return fmt.Errorf("stream: serializing model %q for the WAL: %w", name, err)
	}
	var err error
	s.walBuf, err = appendAttachRecord(s.walBuf[:0], kind, name, buf.Bytes())
	if err != nil {
		return err
	}
	if _, err := s.wal.Append(s.walBuf); err != nil {
		return fmt.Errorf("stream: WAL append: %w", err)
	}
	return nil
}

// attachMonitorLocked registers a just-attached model with the health
// monitor, carrying the lineage (baseline statistics) its registry
// version was persisted with.
func (s *Stream) attachMonitorLocked(name string, kind serve.Kind) {
	if s.mon == nil {
		return
	}
	version := 0
	var lin *monitor.Lineage
	if s.reg != nil {
		if info, ok := s.reg.Get(name); ok {
			version = info.Version
			lin = info.Lineage
		}
	}
	s.mon.Attach(name, string(kind), version, lin)
}

// AttachNN puts a network under incremental maintenance: refreshes
// warm-start the factorized trainer from the current parameters over
// base ∪ delta (Policy.NNEpochs epochs).
func (s *Stream) AttachNN(name string, net *nn.Network) error {
	if net == nil {
		return fmt.Errorf("stream: nil NN model")
	}
	if got := net.InputDim(); got != s.p.D {
		return incompatErrf("stream: network %q has input dim %d, star schema joins to %d", name, got, s.p.D)
	}
	if !s.spec.S.Schema().HasTarget {
		return incompatErrf("stream: fact table %q has no target column; NN refresh needs one", s.spec.S.Schema().Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.attachNNLocked(name, net); err != nil {
		return err
	}
	return s.logAttachLocked(walAttachNN, name, net.Save)
}

func (s *Stream) attachNNLocked(name string, net *nn.Network) error {
	if _, ok := s.models[name]; ok {
		return fmt.Errorf("stream: model %q already attached", name)
	}
	m := &attached{name: name, kind: serve.KindNN, net: net.Clone()}
	m.plan = s.planNN(context.Background(), m.net) // the strategy every refresh reuses
	s.models[name] = m
	s.attachMonitorLocked(name, serve.KindNN)
	s.cmu.Lock()
	s.counters.AttachedModels = len(s.models)
	s.cmu.Unlock()
	s.snapshotPlansLocked()
	return nil
}

// planNN consults the cost-based planner for one attached network's
// refresh: Policy.NNEpochs warm-start epochs over the current catalog
// statistics. A nil return (degenerate architecture, statistics
// unavailable) falls back to the factorized trainer.
func (s *Stream) planNN(ctx context.Context, net *nn.Network) *plan.Plan {
	hidden := net.Sizes[1 : len(net.Sizes)-1]
	ss, err := plan.Collect(s.spec)
	if err != nil {
		return nil
	}
	pol := s.pol
	p, err := plan.ChooseCtx(ctx, ss, plan.ModelSpec{
		Family: plan.FamilyNN,
		Hidden: hidden,
		Epochs: pol.NNEpochs,
	}, plan.Options{})
	if err != nil {
		return nil
	}
	return p
}

// GMM returns the current refreshed parameters of an attached mixture.
// The model is a copy: mutating it cannot disturb the maintenance state
// (mirroring the defensive clone Attach takes on the way in).
func (s *Stream) GMM(name string) (*gmm.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[name]
	if !ok || m.kind != serve.KindGMM {
		return nil, fmt.Errorf("stream: no attached GMM %q", name)
	}
	return m.gmdl.Clone(), nil
}

// NN returns the current refreshed parameters of an attached network.
// The network is a copy: mutating it cannot disturb the maintenance
// state.
func (s *Stream) NN(name string) (*nn.Network, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[name]
	if !ok || m.kind != serve.KindNN {
		return nil, fmt.Errorf("stream: no attached NN %q", name)
	}
	return m.net.Clone(), nil
}

// Attached returns the names of the models under incremental
// maintenance, sorted.
func (s *Stream) Attached() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.models))
	for name := range s.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PlannerDecision reports the cost-based strategy decision one attached
// model's next refresh will reuse (see internal/plan): "incremental" for
// the GMM sufficient-statistics maintenance, or the planner-chosen
// strategy with its full estimate table for an NN warm-start retrain.
type PlannerDecision struct {
	Model     string          `json:"model"`
	Kind      string          `json:"kind"`
	Strategy  string          `json:"strategy"`
	Estimates []plan.Estimate `json:"estimates,omitempty"`
}

// PlannerDecisions lists the per-model strategy decisions, sorted by
// model name — the "planner" section of /statsz. Like Counters, it reads
// a snapshot under the small counters lock only, so the endpoint stays
// responsive while a refresh or attach holds the stream lock.
func (s *Stream) PlannerDecisions() []PlannerDecision {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return append([]PlannerDecision{}, s.plannerSnap...)
}

// snapshotPlansLocked rebuilds the planner-decision snapshot. Callers
// hold mu (lock order mu → cmu).
func (s *Stream) snapshotPlansLocked() {
	names := make([]string, 0, len(s.models))
	for name := range s.models {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := make([]PlannerDecision, 0, len(names))
	for _, name := range names {
		m := s.models[name]
		d := PlannerDecision{Model: name, Kind: string(m.kind)}
		switch m.kind {
		case serve.KindGMM:
			d.Strategy = "incremental"
		case serve.KindNN:
			strat := plan.Factorized
			if m.plan != nil {
				strat = m.plan.CheapestNonMaterializing()
				d.Estimates = m.plan.Estimates
			}
			d.Strategy = strat.String()
		}
		snap = append(snap, d)
	}
	s.cmu.Lock()
	s.plannerSnap = snap
	s.cmu.Unlock()
}

// Pending returns the number of fact rows ingested since the last
// refresh. Like Counters, it never blocks behind an in-flight refresh.
func (s *Stream) Pending() int64 {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.pending
}

// Counters returns a snapshot of the cumulative ingestion counters. It
// takes only the small counters lock, so /statsz stays responsive while
// a refresh or attach holds the stream for an O(dataset) pass.
func (s *Stream) Counters() Counters {
	s.cmu.Lock()
	c := s.counters
	c.PendingRows = s.pending
	s.cmu.Unlock()
	c.IngestQueueDepth = s.ingestLim.InFlight()
	c.IngestRejections = s.ingestRejections.Load()
	return c
}

// Ingest validates and applies one change batch: dimension changes first
// (inserts append; updates rewrite the stored tuple, patch the resident
// index and surgically invalidate the serving caches), then fact appends.
// Nothing is applied when any row fails validation. When the pending-row
// count reaches Policy.RefreshRows, a refresh runs before Ingest returns.
func (s *Stream) Ingest(b Batch) (IngestResult, error) {
	return s.IngestCtx(context.Background(), b)
}

// IngestCtx is Ingest with request-trace propagation: a sampled trace
// records phase spans for validation, dimension application, fact
// appends and (when the threshold fires) the auto-refresh, so a slow
// ingest can be attributed to the phase that ate the time.
func (s *Stream) IngestCtx(ctx context.Context, b Batch) (IngestResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestLocked(ctx, b)
}

// ingestLocked is the body of IngestCtx; WAL replay re-enters it (with
// s.replaying set) so recovered batches take the exact code path live
// ones did. Caller holds mu.
func (s *Stream) ingestLocked(ctx context.Context, b Batch) (IngestResult, error) {
	ctx, isp := trace.Start(ctx, "stream.ingest")
	defer isp.End()
	if isp.Active() {
		isp.SetInt("dims", int64(len(b.Dims)))
		isp.SetInt("facts", int64(len(b.Facts)))
	}
	var res IngestResult

	// Validate the whole batch up front — atomicity of rejection. Every
	// failure here is a ValidationError: nothing has been applied. New rids
	// are collected per table first, so a mid-level tuple may reference a
	// sub-dimension tuple inserted anywhere in the same batch. (A span
	// left open by an early validation return is closed by the trace's
	// Finish with the request's end time, which is also when it failed.)
	_, vsp := trace.Start(ctx, "stream.validate")
	newRids := make(map[string]map[int64]bool)
	for _, du := range b.Dims {
		js, ok := s.dimJ[du.Table]
		if !ok {
			continue // reported with its index in the validation pass below
		}
		if _, exists := s.idxs[js[0]].Pos(du.RID); !exists {
			if newRids[du.Table] == nil {
				newRids[du.Table] = make(map[int64]bool)
			}
			newRids[du.Table][du.RID] = true
		}
	}
	known := func(table string, key int64) bool {
		if js, ok := s.dimJ[table]; ok {
			if _, ok := s.idxs[js[0]].Pos(key); ok {
				return true
			}
		}
		return newRids[table][key]
	}
	for i, du := range b.Dims {
		js, ok := s.dimJ[du.Table]
		if !ok {
			return res, valErrf("stream: batch dim %d: no dimension table %q in this stream", i, du.Table)
		}
		j := js[0]
		if len(du.Features) != s.p.Dims[1+j] {
			return res, valErrf("stream: batch dim %d: table %q takes %d features, got %d",
				i, du.Table, s.p.Dims[1+j], len(du.Features))
		}
		refs := s.spec.Rs[j].Schema().Refs
		if len(du.FKs) != len(refs) {
			return res, valErrf("stream: batch dim %d: table %q takes %d sub-dimension keys, got %d",
				i, du.Table, len(refs), len(du.FKs))
		}
		for k, fk := range du.FKs {
			if !known(refs[k], fk) {
				return res, valErrf("stream: batch dim %d: table %q references unknown key %d in sub-dimension table %q",
					i, du.Table, fk, refs[k])
			}
		}
	}
	hasTarget := s.spec.S.Schema().HasTarget
	for i, fr := range b.Facts {
		if len(fr.Features) != s.p.Dims[0] {
			return res, valErrf("stream: batch fact %d (sid %d): fact table takes %d features, got %d",
				i, fr.SID, s.p.Dims[0], len(fr.Features))
		}
		if !hasTarget && fr.Target != 0 {
			return res, valErrf("stream: batch fact %d (sid %d): fact table %q has no target column, got target %g",
				i, fr.SID, s.spec.S.Schema().Name, fr.Target)
		}
		if len(fr.FKs) != len(s.direct) {
			return res, valErrf("stream: batch fact %d (sid %d): %d foreign keys for %d direct dimension tables",
				i, fr.SID, len(fr.FKs), len(s.direct))
		}
		for d, fk := range fr.FKs {
			if name := s.idxs[s.direct[d]].Name(); !known(name, fk) {
				return res, valErrf("stream: batch fact %d (sid %d): unknown key %d in dimension table %q",
					i, fr.SID, fk, name)
			}
		}
	}

	vsp.End()

	// Write-ahead: the validated batch is logged — and, per the log's
	// fsync policy, durable — before any of it is applied. A crash past
	// this point replays the batch on recovery; a crash before it loses
	// a batch that was never acked.
	if s.wal != nil && !s.replaying {
		_, wsp := trace.Start(ctx, "stream.wal_append")
		var werr error
		s.walBuf, werr = appendBatchRecord(s.walBuf[:0], &b)
		if werr != nil {
			wsp.End()
			return res, werr
		}
		if _, err := s.wal.Append(s.walBuf); err != nil {
			wsp.End()
			return res, fmt.Errorf("stream: WAL append: %w", err)
		}
		wsp.End()
	}

	// Apply dimension changes.
	_, dsp := trace.Start(ctx, "stream.apply_dims")
	touchedDims := make(map[int]bool)
	anyDimUpdate := false
	for _, du := range b.Dims {
		j := s.dimJ[du.Table][0]
		tbl := s.spec.Rs[j]
		keys := make([]int64, 1+len(du.FKs))
		keys[0] = du.RID
		copy(keys[1:], du.FKs)
		tp := &storage.Tuple{Keys: keys, Features: du.Features}
		if pos, exists := s.idxs[j].Pos(du.RID); exists {
			// The resident index is loaded in append order, so the dense
			// index is the heap row id.
			if err := tbl.UpdateAt(int64(pos), tp); err != nil {
				return res, err
			}
			anyDimUpdate = true
			res.DimUpdates++
		} else {
			if err := tbl.Append(tp); err != nil {
				return res, err
			}
			touchedDims[j] = true
			res.DimInserts++
		}
		if s.eng != nil {
			if _, err := s.eng.ApplyDimUpdate(du.Table, du.RID, du.FKs, du.Features); err != nil {
				return res, err
			}
		} else {
			if _, err := s.idxs[j].Upsert(du.RID, du.FKs, du.Features); err != nil {
				return res, err
			}
		}
		s.mon.ObserveDimUpdate(du.Table, du.Features)
	}
	// With a WAL the per-batch heap flush is skipped: the log already
	// made the batch durable, and checkpoints write the heaps in bulk.
	if s.wal == nil {
		for j := range touchedDims {
			if err := s.spec.Rs[j].Flush(); err != nil {
				return res, err
			}
		}
	}
	if anyDimUpdate {
		// The stored per-group γ-sums were computed against the old
		// features: force a full GMM statistics rebuild at the next
		// refresh. NNs are marked too, so the next refresh retrains them
		// even without new fact rows.
		for _, m := range s.models {
			m.dirty = true
		}
	}
	s.cmu.Lock()
	s.counters.DimUpdates += uint64(res.DimUpdates)
	s.counters.DimInserts += uint64(res.DimInserts)
	s.cmu.Unlock()
	if dsp.Active() {
		dsp.SetInt("inserts", int64(res.DimInserts))
		dsp.SetInt("updates", int64(res.DimUpdates))
	}
	dsp.End()

	// Append fact rows.
	_, fsp := trace.Start(ctx, "stream.append_facts")
	for i := range b.Facts {
		fr := &b.Facts[i]
		keys := make([]int64, 1+len(fr.FKs))
		keys[0] = fr.SID
		copy(keys[1:], fr.FKs)
		if err := s.spec.S.Append(&storage.Tuple{Keys: keys, Features: fr.Features, Target: fr.Target}); err != nil {
			return res, err
		}
		s.observeFactLocked(fr)
	}
	if len(b.Facts) > 0 && s.wal == nil {
		if err := s.spec.S.Flush(); err != nil {
			return res, err
		}
	}
	res.Facts = len(b.Facts)
	s.cmu.Lock()
	s.pending += int64(len(b.Facts))
	s.counters.FactsIngested += uint64(len(b.Facts))
	s.counters.Batches++
	pending := s.pending
	s.cmu.Unlock()
	res.PendingRows = pending
	if fsp.Active() {
		fsp.SetInt("facts", int64(res.Facts))
	}
	fsp.End()

	if s.pol.RefreshRows > 0 && pending >= int64(s.pol.RefreshRows) {
		if _, err := s.refreshLocked(ctx, true); err != nil {
			return res, err
		}
		res.RefreshTriggered = true
		res.PendingRows = s.Pending()
	}
	// Re-evaluate every model's health verdict so a drift or staleness
	// transition fires with the batch that caused it, not at the next
	// scrape.
	s.mon.CheckAll()
	if err := s.maybeCheckpointLocked(); err != nil {
		return res, err
	}
	return res, nil
}

// observeFactLocked resolves one just-validated fact row to its full
// joined feature vector — through the same resident indexes serving
// uses — and folds it into the monitor's live drift sketches. The
// scratch buffers are reused under s.mu, so the observe path is O(1)
// per row with zero allocations; without a monitor it is a single nil
// check.
func (s *Stream) observeFactLocked(fr *FactRow) {
	if s.mon == nil {
		return
	}
	if err := s.rv.Resolve(fr.FKs, s.monPKs, s.monPos); err != nil {
		return // validated above; unreachable, but never fail an ingest for telemetry
	}
	copy(s.monX, fr.Features)
	for j := range s.idxs {
		feats, ok := s.idxs[j].Lookup(s.monPKs[j])
		if !ok {
			return
		}
		copy(s.monX[s.p.Offs[1+j]:], feats)
	}
	s.mon.ObserveJoined(s.monX)
}

// Refresh folds everything ingested so far into every attached model —
// one incremental EM step per GMM (cost ∝ rows absorbed this refresh),
// Policy.NNEpochs warm-start epochs per NN — and publishes the refreshed
// models to the registry (version bump) when one is attached.
func (s *Stream) Refresh() (RefreshResult, error) {
	return s.RefreshCtx(context.Background())
}

// RefreshCtx is Refresh with request-trace propagation: a sampled trace
// records one span per refreshed model, keyed by the strategy the
// planner picked and the rows absorbed.
func (s *Stream) RefreshCtx(ctx context.Context) (RefreshResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Explicit refreshes are logged (automatic ones re-fire from their
	// triggering batch during replay, so they are not).
	if s.wal != nil && !s.replaying {
		s.walBuf = appendRefreshRecord(s.walBuf[:0])
		if _, err := s.wal.Append(s.walBuf); err != nil {
			return RefreshResult{}, fmt.Errorf("stream: WAL append: %w", err)
		}
	}
	res, err := s.refreshLocked(ctx, false)
	if err != nil {
		return res, err
	}
	return res, s.maybeCheckpointLocked()
}

// WAL returns the stream's write-ahead log (nil when durability is off).
func (s *Stream) WAL() *wal.Log { return s.wal }

// WALStats reports the write-ahead log's counters for /statsz and
// /metrics; zeros when durability is off.
func (s *Stream) WALStats() wal.Stats { return s.wal.Stats() }

// refreshLineageLocked advances the monitor's baseline for a
// just-refreshed model — folding the live window in with an exact
// sketch merge, no rescan — and returns the lineage to persist with the
// about-to-be-bumped registry version (nil without a monitor, which
// makes the registry carry the previous lineage forward).
func (s *Stream) refreshLineageLocked(name, strategy string, rows int64) *monitor.Lineage {
	if s.mon == nil {
		return nil
	}
	version := 1
	if s.reg != nil {
		if info, ok := s.reg.Get(name); ok {
			version = info.Version + 1
		}
	} else {
		version = 0 // no registry: keep the monitor's current version
	}
	return s.mon.NoteRefresh(name, version, strategy, rows)
}

func (s *Stream) refreshLocked(ctx context.Context, auto bool) (RefreshResult, error) {
	ctx, rsp := trace.Start(ctx, "stream.refresh")
	defer rsp.End()
	rsp.SetBool("auto", auto)
	var res RefreshResult
	s.refreshSeq++
	names := make([]string, 0, len(s.models))
	for name := range s.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := s.models[name]
		mr := ModelRefresh{Name: name, Kind: string(m.kind)}
		_, msp := trace.Start(ctx, "stream.refresh.model")
		if msp.Active() {
			msp.SetAttr("model", name)
			msp.SetAttr("kind", string(m.kind))
		}
		switch m.kind {
		case serve.KindGMM:
			mr.Strategy = "incremental" // O(delta) sufficient-statistics maintenance
			rebase := m.dirty || (s.pol.RebaselineEvery > 0 && s.refreshSeq%uint64(s.pol.RebaselineEvery) == 0)
			if rebase {
				m.stats.Reset()
				s.cmu.Lock()
				s.counters.Rebaselines++
				s.cmu.Unlock()
				mr.Rebaselined = true
			}
			before := m.stats.Rows()
			if err := m.stats.Absorb(m.gmdl, s.spec.S, s.rv, s.pol.NumWorkers); err != nil {
				return res, err
			}
			mr.RowsAbsorbed = m.stats.Rows() - before
			if m.stats.Rows() == 0 {
				msp.End()
				continue // nothing to refresh from yet
			}
			if mr.RowsAbsorbed == 0 && !rebase {
				// Nothing changed since the last refresh: skip the
				// M-step and the registry version bump, which would
				// republish identical parameters and needlessly flush
				// the serving engine's warm per-dimension caches.
				msp.End()
				continue
			}
			model, err := m.stats.Step(m.gmdl, s.idxs, s.pol.GMMRegEps)
			if err != nil {
				return res, err
			}
			m.gmdl = model
			m.dirty = false
			mr.LogLikelihood = m.stats.LogLikelihood()
			lin := s.refreshLineageLocked(name, mr.Strategy, m.stats.Rows())
			if s.reg != nil {
				if err := s.reg.SaveGMMLineage(name, model, lin); err != nil {
					return res, err
				}
			}
		case serve.KindNN:
			n := s.spec.S.NumTuples()
			if n == m.lastRows && !m.dirty && m.lastRows > 0 {
				// No new rows and no dimension change: more warm-start
				// epochs would silently drift the network with no new
				// information.
				msp.End()
				continue
			}
			if m.dirty || m.plan == nil {
				// Dimension updates shift the statistics the attach-time
				// plan was priced on; replan once, then keep reusing it.
				m.plan = s.planNN(ctx, m.net)
			}
			// The refresh reuses the plan, restricted to non-materializing
			// strategies: writing a join table into a live serving database
			// would race concurrent readers for no payoff.
			strat := plan.Factorized
			if m.plan != nil {
				strat = m.plan.CheapestNonMaterializing()
			}
			cfg := nn.Config{
				Init:         m.net,
				Epochs:       s.pol.NNEpochs,
				LearningRate: s.pol.NNLearningRate,
				NumWorkers:   s.pol.NumWorkers,
			}
			var tres *nn.Result
			var err error
			if strat == plan.Streaming {
				tres, err = nn.TrainS(s.db, s.spec, cfg)
			} else {
				tres, err = nn.TrainF(s.db, s.spec, cfg)
			}
			if err != nil {
				return res, err
			}
			mr.Strategy = strat.String()
			m.net = tres.Net
			m.dirty = false
			m.lastRows = n
			mr.RowsAbsorbed = n
			lin := s.refreshLineageLocked(name, mr.Strategy, n)
			if s.reg != nil {
				if err := s.reg.SaveNNLineage(name, tres.Net, lin); err != nil {
					return res, err
				}
			}
		}
		if msp.Active() {
			msp.SetAttr("strategy", mr.Strategy)
			msp.SetInt("rows_absorbed", mr.RowsAbsorbed)
		}
		msp.End()
		res.Models = append(res.Models, mr)
	}
	s.cmu.Lock()
	s.pending = 0
	s.counters.Refreshes++
	if auto {
		s.counters.AutoRefreshes++
	}
	s.cmu.Unlock()
	s.snapshotPlansLocked() // replans above may have changed the decisions
	return res, nil
}
