package stream

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"factorml/internal/gmm"
	"factorml/internal/monitor"
	"factorml/internal/nn"
	"factorml/internal/serve"
	"factorml/internal/storage"
	"factorml/internal/wal"
)

// Checkpointing and recovery. A checkpoint stages a consistent image of
// everything the WAL protects into a wal.Snapshot directory:
//
//	snap-XXXX/
//	  manifest.json        what was staged and how to restore it
//	  stream-state.json    maintained model state (statistics, monitor…)
//	  files/               catalog, dimension heaps, model blobs
//
// The fact heap is the one file NOT copied: it is append-only and can be
// huge, so the manifest records its full-page count plus the raw bytes
// of the buffered tail page. Restore truncates the live heap to the
// recorded page boundary and re-appends the saved tail page — correct
// even though post-checkpoint appends rewrite that tail page in place.
//
// Recovery is then: restore the snapshot files over the database
// directory (RestoreSnapshotFiles, before storage.Open), load
// stream-state.json (Stream.Recover), and replay every WAL record past
// the snapshot LSN through the exact same ingest/refresh code paths the
// live system uses — which, by the repo-wide determinism guarantee,
// rebuilds bit-identical model state.

const (
	streamStateFormat = 1
	manifestFormat    = 1

	manifestFile    = "manifest.json"
	streamStateFile = "stream-state.json"
	stagedFilesDir  = "files"
)

// --- serialized stream state ----------------------------------------------

// groupState is one dimension group's accumulator (see groupAcc).
type groupState struct {
	G    int    `json:"g"`
	W    string `json:"w"`
	GVec string `json:"gvec"`
}

// pairState is one cross-dimension group pair's γ-sums.
type pairState struct {
	A int    `json:"a"`
	B int    `json:"b"`
	W string `json:"w"`
}

// statAccState is a statAcc with every float sum base64-bit-packed
// (floatsToB64), so the checkpointed statistics restore bit-exactly.
type statAccState struct {
	Rows  int64          `json:"rows"`
	LL    string         `json:"ll"`
	NK    string         `json:"nk"`
	S1S   string         `json:"s1s"`
	B00   []string       `json:"b00"`
	Grp   [][]groupState `json:"grp"`
	Pairs [][]pairState  `json:"pairs"`
}

// gmmStatsState is one attached mixture's maintained statistics.
type gmmStatsState struct {
	K      int           `json:"k"`
	Merged *statAccState `json:"merged"`
	Tail   *statAccState `json:"tail"`
}

// walModelState is one attached model: parameters (the gmm/nn JSON
// serialization, exact for finite floats) plus maintenance state.
type walModelState struct {
	Name     string          `json:"name"`
	Kind     string          `json:"kind"`
	Dirty    bool            `json:"dirty"`
	LastRows int64           `json:"last_rows"`
	Params   json.RawMessage `json:"params"`
	Stats    *gmmStatsState  `json:"stats,omitempty"`
}

// walStreamState is everything a Stream must carry across a crash that
// is not derivable from the database files: attached models with their
// incremental statistics, the refresh cadence position, counters, and
// the monitor's live sketches.
type walStreamState struct {
	Format     int             `json:"format"`
	RefreshSeq uint64          `json:"refresh_seq"`
	Pending    int64           `json:"pending"`
	Counters   Counters        `json:"counters"`
	Models     []walModelState `json:"models"`
	Monitor    *monitor.State  `json:"monitor,omitempty"`
}

func packStatAcc(a *statAcc) *statAccState {
	st := &statAccState{
		Rows: a.rows,
		LL:   floatsToB64([]float64{a.ll}),
		NK:   floatsToB64(a.nk),
		S1S:  floatsToB64(a.s1S),
	}
	for _, m := range a.b00 {
		st.B00 = append(st.B00, floatsToB64(m.Data()))
	}
	st.Grp = make([][]groupState, len(a.grp))
	for j := range a.grp {
		gs := make([]groupState, 0, len(a.grp[j]))
		keys := make([]int, 0, len(a.grp[j]))
		for g := range a.grp[j] {
			keys = append(keys, g)
		}
		sort.Ints(keys)
		for _, g := range keys {
			ga := a.grp[j][g]
			gs = append(gs, groupState{G: g, W: floatsToB64(ga.w), GVec: floatsToB64(ga.gvec)})
		}
		st.Grp[j] = gs
	}
	st.Pairs = make([][]pairState, len(a.pairs))
	for pi := range a.pairs {
		ps := make([]pairState, 0, len(a.pairs[pi]))
		keys := make([]pairKey, 0, len(a.pairs[pi]))
		for key := range a.pairs[pi] {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(x, y int) bool {
			if keys[x].a != keys[y].a {
				return keys[x].a < keys[y].a
			}
			return keys[x].b < keys[y].b
		})
		for _, key := range keys {
			ps = append(ps, pairState{A: key.a, B: key.b, W: floatsToB64(a.pairs[pi][key])})
		}
		st.Pairs[pi] = ps
	}
	return st
}

func unpackStatAcc(dst *statAcc, st *statAccState) error {
	if st == nil {
		return fmt.Errorf("stream: checkpoint statistics accumulator missing")
	}
	dst.rows = st.Rows
	ll, err := b64ToFloats(st.LL, 1)
	if err != nil {
		return err
	}
	dst.ll = ll[0]
	nk, err := b64ToFloats(st.NK, dst.k)
	if err != nil {
		return err
	}
	copy(dst.nk, nk)
	s1S, err := b64ToFloats(st.S1S, dst.k*dst.dS)
	if err != nil {
		return err
	}
	copy(dst.s1S, s1S)
	if len(st.B00) != dst.k {
		return fmt.Errorf("stream: checkpoint has %d fact-moment blocks, want %d", len(st.B00), dst.k)
	}
	for c, blob := range st.B00 {
		vals, err := b64ToFloats(blob, dst.dS*dst.dS)
		if err != nil {
			return err
		}
		copy(dst.b00[c].Data(), vals)
	}
	if len(st.Grp) != len(dst.grp) {
		return fmt.Errorf("stream: checkpoint has %d dimension group maps, want %d", len(st.Grp), len(dst.grp))
	}
	for j := range st.Grp {
		for _, gs := range st.Grp[j] {
			ga := dst.group(j, gs.G)
			w, err := b64ToFloats(gs.W, dst.k)
			if err != nil {
				return err
			}
			copy(ga.w, w)
			gvec, err := b64ToFloats(gs.GVec, dst.k*dst.dS)
			if err != nil {
				return err
			}
			copy(ga.gvec, gvec)
		}
	}
	if len(st.Pairs) != len(dst.pairs) {
		return fmt.Errorf("stream: checkpoint has %d pair maps, want %d", len(st.Pairs), len(dst.pairs))
	}
	for pi := range st.Pairs {
		for _, ps := range st.Pairs[pi] {
			w, err := b64ToFloats(ps.W, dst.k)
			if err != nil {
				return err
			}
			copy(dst.pairW(pi, pairKey{a: ps.A, b: ps.B}), w)
		}
	}
	return nil
}

// stateLocked captures the stream's full recovery state. Caller holds mu.
func (s *Stream) stateLocked() (*walStreamState, error) {
	st := &walStreamState{Format: streamStateFormat, RefreshSeq: s.refreshSeq}
	s.cmu.Lock()
	st.Pending = s.pending
	st.Counters = s.counters
	s.cmu.Unlock()
	st.Counters.IngestRejections = s.ingestRejections.Load()
	names := make([]string, 0, len(s.models))
	for name := range s.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := s.models[name]
		ms := walModelState{Name: name, Kind: string(m.kind), Dirty: m.dirty, LastRows: m.lastRows}
		var buf bytes.Buffer
		switch m.kind {
		case serve.KindGMM:
			if err := m.gmdl.Save(&buf); err != nil {
				return nil, err
			}
			ms.Stats = &gmmStatsState{
				K:      m.stats.k,
				Merged: packStatAcc(m.stats.merged),
				Tail:   packStatAcc(m.stats.tail),
			}
		case serve.KindNN:
			if err := m.net.Save(&buf); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("stream: cannot checkpoint model %q of kind %q", name, m.kind)
		}
		ms.Params = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		st.Models = append(st.Models, ms)
	}
	st.Monitor = s.mon.Snapshot()
	return st, nil
}

// restoreStateLocked rebuilds the stream from a checkpointed state.
// Caller holds mu; the database files must already be the snapshot's
// (RestoreSnapshotFiles ran before storage.Open on a crash boot).
func (s *Stream) restoreStateLocked(ctx context.Context, st *walStreamState) error {
	if st.Format != streamStateFormat {
		return fmt.Errorf("stream: unsupported checkpoint state format %d", st.Format)
	}
	s.refreshSeq = st.RefreshSeq
	for _, ms := range st.Models {
		m := &attached{name: ms.Name, kind: serve.Kind(ms.Kind), dirty: ms.Dirty, lastRows: ms.LastRows}
		switch m.kind {
		case serve.KindGMM:
			gm, err := gmm.LoadModel(bytes.NewReader(ms.Params))
			if err != nil {
				return fmt.Errorf("stream: restoring model %q: %w", ms.Name, err)
			}
			m.gmdl = gm
			if ms.Stats == nil {
				return fmt.Errorf("stream: checkpointed GMM %q has no statistics", ms.Name)
			}
			stats := NewGMMStats(s.p, ms.Stats.K)
			if err := unpackStatAcc(stats.merged, ms.Stats.Merged); err != nil {
				return fmt.Errorf("stream: restoring model %q: %w", ms.Name, err)
			}
			if err := unpackStatAcc(stats.tail, ms.Stats.Tail); err != nil {
				return fmt.Errorf("stream: restoring model %q: %w", ms.Name, err)
			}
			m.stats = stats
		case serve.KindNN:
			net, err := nn.LoadNetwork(bytes.NewReader(ms.Params))
			if err != nil {
				return fmt.Errorf("stream: restoring model %q: %w", ms.Name, err)
			}
			m.net = net
			m.plan = s.planNN(ctx, net)
		default:
			return fmt.Errorf("stream: checkpointed model %q has unknown kind %q", ms.Name, ms.Kind)
		}
		s.models[ms.Name] = m
	}
	s.mon.Restore(st.Monitor)
	s.cmu.Lock()
	s.pending = st.Pending
	s.counters = st.Counters
	s.counters.AttachedModels = len(s.models)
	s.cmu.Unlock()
	s.ingestRejections.Store(st.Counters.IngestRejections)
	s.snapshotPlansLocked()
	return nil
}

// --- file checkpoint -------------------------------------------------------

// factManifest records how to restore the (append-only, never copied)
// fact heap: truncate to FullPages, then re-append the saved tail page.
type factManifest struct {
	File      string `json:"file"`
	FullPages int64  `json:"full_pages"`
	TailPage  string `json:"tail_page,omitempty"` // base64 of one raw page
}

// walManifest indexes a snapshot directory: Files are database-dir-
// relative paths staged whole under files/; Fact (when present)
// restores the fact heap in place.
type walManifest struct {
	Format int           `json:"format"`
	Files  []string      `json:"files"`
	Fact   *factManifest `json:"fact,omitempty"`
}

func copyFile(src, dst string) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// stageCommon copies the catalog and every model blob into the staging
// directory, returning their database-relative paths.
func stageCommon(db *storage.Database, stageDir string) ([]string, error) {
	files := []string{"catalog.json"}
	blobNames, err := db.BlobNames()
	if err != nil {
		return nil, err
	}
	for _, name := range blobNames {
		files = append(files, filepath.Join("blobs", name))
	}
	for _, rel := range files {
		if err := copyFile(filepath.Join(db.Dir(), rel), filepath.Join(stageDir, rel)); err != nil {
			return nil, fmt.Errorf("stream: staging %s: %w", rel, err)
		}
	}
	return files, nil
}

func writeJSONFile(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// checkpointLocked takes a full checkpoint: flush + fsync the database,
// stage the snapshot (dimension heaps whole, fact heap by reference,
// stream state), and commit it — after which the WAL prefix it covers
// is pruned. Caller holds mu.
func (s *Stream) checkpointLocked() error {
	if s.wal == nil {
		return nil
	}
	lsn := s.wal.LastLSN()
	if err := s.db.CheckpointSync(); err != nil {
		return err
	}
	snap, err := s.wal.BeginSnapshot()
	if err != nil {
		return err
	}
	if err := s.stageLocked(snap.Dir); err != nil {
		snap.Abort()
		return err
	}
	if err := snap.Commit(lsn); err != nil {
		return err
	}
	s.cmu.Lock()
	s.counters.Checkpoints++
	s.cmu.Unlock()
	return nil
}

func (s *Stream) stageLocked(snapDir string) error {
	stageDir := filepath.Join(snapDir, stagedFilesDir)
	files, err := stageCommon(s.db, stageDir)
	if err != nil {
		return err
	}
	// Dimension heaps are staged whole (they are small and updated in
	// place); snowflake positions can share a table, so dedup by name.
	seen := map[string]bool{}
	for _, r := range s.spec.Rs {
		rel := filepath.Base(r.Path())
		if seen[rel] {
			continue
		}
		seen[rel] = true
		if err := copyFile(r.Path(), filepath.Join(stageDir, rel)); err != nil {
			return fmt.Errorf("stream: staging %s: %w", rel, err)
		}
		files = append(files, rel)
	}
	fullPages, tailPage := s.spec.S.TailPageState()
	fm := &factManifest{File: filepath.Base(s.spec.S.Path()), FullPages: fullPages}
	if tailPage != nil {
		fm.TailPage = base64.StdEncoding.EncodeToString(tailPage)
	}
	man := walManifest{Format: manifestFormat, Files: files, Fact: fm}
	if err := writeJSONFile(filepath.Join(snapDir, manifestFile), &man); err != nil {
		return err
	}
	st, err := s.stateLocked()
	if err != nil {
		return err
	}
	return writeJSONFile(filepath.Join(snapDir, streamStateFile), st)
}

// Checkpoint takes a checkpoint now (regardless of SnapshotEvery). It
// is a no-op without a WAL.
func (s *Stream) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// maybeCheckpointLocked checkpoints when the WAL has grown by
// SnapshotEvery records since the last snapshot. Caller holds mu.
func (s *Stream) maybeCheckpointLocked() error {
	if s.wal == nil || s.replaying || s.snapEvery <= 0 {
		return nil
	}
	if s.wal.LastLSN()-s.wal.SnapshotLSN() < int64(s.snapEvery) {
		return nil
	}
	return s.checkpointLocked()
}

// CheckpointDB takes a files-only checkpoint of a database with no
// stream attached (catalog, every heap whole, blobs — no stream state).
// The graceful-close path of a facade that never built a stream uses it
// so the next boot has a snapshot matching the final on-disk state.
func CheckpointDB(db *storage.Database, l *wal.Log) error {
	if l == nil {
		return nil
	}
	lsn := l.LastLSN()
	if err := db.CheckpointSync(); err != nil {
		return err
	}
	snap, err := l.BeginSnapshot()
	if err != nil {
		return err
	}
	stage := func() error {
		stageDir := filepath.Join(snap.Dir, stagedFilesDir)
		files, err := stageCommon(db, stageDir)
		if err != nil {
			return err
		}
		for _, name := range db.TableNames() {
			t, err := db.Table(name)
			if err != nil {
				return err
			}
			rel := filepath.Base(t.Path())
			if err := copyFile(t.Path(), filepath.Join(stageDir, rel)); err != nil {
				return fmt.Errorf("stream: staging %s: %w", rel, err)
			}
			files = append(files, rel)
		}
		man := walManifest{Format: manifestFormat, Files: files}
		return writeJSONFile(filepath.Join(snap.Dir, manifestFile), &man)
	}
	if err := stage(); err != nil {
		snap.Abort()
		return err
	}
	return snap.Commit(lsn)
}

// --- restore ---------------------------------------------------------------

// RestoreSnapshotFiles rewinds a database directory to the committed
// snapshot in walDir: staged files are copied back whole, the model
// blob directory is cleared of post-checkpoint writes first, and the
// fact heap is truncated to the recorded page boundary with the saved
// tail page re-appended. It must run before storage.Open on a crash
// boot, and is idempotent; with no committed snapshot it is a no-op.
func RestoreSnapshotFiles(dbDir, walDir string) error {
	snapPath, _, ok, err := wal.CurrentSnapshot(walDir)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	raw, err := os.ReadFile(filepath.Join(snapPath, manifestFile))
	if err != nil {
		return fmt.Errorf("stream: reading snapshot manifest: %w", err)
	}
	var man walManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("stream: parsing snapshot manifest: %w", err)
	}
	if man.Format != manifestFormat {
		return fmt.Errorf("stream: unsupported snapshot manifest format %d", man.Format)
	}
	// Clear post-checkpoint blobs (e.g. model versions saved after the
	// snapshot) so the registry reloads exactly the checkpointed set.
	if err := os.RemoveAll(filepath.Join(dbDir, "blobs")); err != nil {
		return fmt.Errorf("stream: clearing stale blobs: %w", err)
	}
	for _, rel := range man.Files {
		src := filepath.Join(snapPath, stagedFilesDir, rel)
		if err := copyFile(src, filepath.Join(dbDir, rel)); err != nil {
			return fmt.Errorf("stream: restoring %s: %w", rel, err)
		}
	}
	if man.Fact != nil {
		if err := restoreFactHeap(filepath.Join(dbDir, man.Fact.File), man.Fact); err != nil {
			return err
		}
	}
	return nil
}

func restoreFactHeap(path string, fm *factManifest) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("stream: restoring fact heap: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	boundary := fm.FullPages * storage.PageSize
	if info.Size() < boundary {
		return fmt.Errorf("stream: fact heap %s has %d bytes but the snapshot covers %d — cannot restore",
			path, info.Size(), boundary)
	}
	if err := f.Truncate(boundary); err != nil {
		return fmt.Errorf("stream: truncating fact heap: %w", err)
	}
	if fm.TailPage != "" {
		page, err := base64.StdEncoding.DecodeString(fm.TailPage)
		if err != nil {
			return fmt.Errorf("stream: decoding snapshot tail page: %w", err)
		}
		if len(page) != storage.PageSize {
			return fmt.Errorf("stream: snapshot tail page has %d bytes, want %d", len(page), storage.PageSize)
		}
		if _, err := f.WriteAt(page, boundary); err != nil {
			return fmt.Errorf("stream: restoring fact tail page: %w", err)
		}
	}
	return f.Sync()
}

// --- recovery --------------------------------------------------------------

// Recover rebuilds the stream's maintained state after a boot: restore
// the checkpointed model statistics, counters, and monitor sketches
// from the committed snapshot (if any), then replay every WAL record
// past the snapshot LSN through the live ingest/refresh paths. On a
// clean boot the tail is empty and this only reloads the checkpointed
// state. It must run before models are attached or batches ingested.
func (s *Stream) Recover(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	snapPath, snapLSN, ok, err := wal.CurrentSnapshot(s.wal.Dir())
	if err != nil {
		return err
	}
	if ok {
		raw, err := os.ReadFile(filepath.Join(snapPath, streamStateFile))
		switch {
		case err == nil:
			var st walStreamState
			if err := json.Unmarshal(raw, &st); err != nil {
				return fmt.Errorf("stream: parsing checkpoint state: %w", err)
			}
			if err := s.restoreStateLocked(ctx, &st); err != nil {
				return err
			}
		case !os.IsNotExist(err):
			return fmt.Errorf("stream: reading checkpoint state: %w", err)
		}
		// A missing stream-state.json is a files-only snapshot
		// (CheckpointDB): nothing to restore beyond the database files.
	}
	return s.replayLocked(ctx, snapLSN)
}

// replayLocked re-applies WAL records (snapLSN, last] through the same
// ingest/refresh paths as live traffic, with re-logging and checkpoint
// triggers suppressed. Auto-refreshes re-fire deterministically from
// the replayed batches, so only batches and explicit refreshes are in
// the log.
func (s *Stream) replayLocked(ctx context.Context, snapLSN int64) error {
	r, err := s.wal.Tail(snapLSN + 1)
	if err != nil {
		return err
	}
	s.replaying = true
	defer func() { s.replaying = false }()
	for {
		lsn, payload, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return fmt.Errorf("stream: WAL record %d: %w", lsn, err)
		}
		switch rec.op {
		case walOpBatch:
			if _, err := s.ingestLocked(ctx, rec.batch); err != nil {
				return fmt.Errorf("stream: replaying WAL record %d: %w", lsn, err)
			}
		case walOpRefresh:
			if _, err := s.refreshLocked(ctx, false); err != nil {
				return fmt.Errorf("stream: replaying WAL record %d (refresh): %w", lsn, err)
			}
		case walOpAttach:
			if err := s.replayAttachLocked(rec); err != nil {
				return fmt.Errorf("stream: replaying WAL record %d (attach %q): %w", lsn, rec.name, err)
			}
		}
	}
}

// replayAttachLocked re-attaches a model from the parameters its attach
// record carried: the rebuilt base statistics see exactly the rows that
// were live when the original attach ran, because the record sits at
// the same log position.
func (s *Stream) replayAttachLocked(rec walRecord) error {
	switch rec.kind {
	case walAttachGMM:
		m, err := gmm.LoadModel(bytes.NewReader(rec.params))
		if err != nil {
			return err
		}
		return s.attachGMMLocked(rec.name, m)
	case walAttachNN:
		net, err := nn.LoadNetwork(bytes.NewReader(rec.params))
		if err != nil {
			return err
		}
		return s.attachNNLocked(rec.name, net)
	default:
		return fmt.Errorf("stream: unknown attach kind %d", rec.kind)
	}
}
