package stream

import (
	"testing"

	"factorml/internal/gmm"
	"factorml/internal/nn"
)

// TestPlannerDecisionsAndRefreshStrategy: attached models carry a
// cost-based strategy decision — "incremental" maintenance for GMMs, a
// planner-chosen non-materializing strategy for NN warm-start retrains —
// reported by PlannerDecisions (the /statsz "planner" section) and
// stamped on every ModelRefresh.
func TestPlannerDecisionsAndRefreshStrategy(t *testing.T) {
	db, spec, _ := genStar(t, 300, []int{12}, 3, []int{2}, 21)
	gres, err := gmm.TrainF(db, spec, gmm.Config{K: 2, MaxIter: 2, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	nres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{4}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1, NNEpochs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("g", gres.Model); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachNN("n", nres.Net); err != nil {
		t.Fatal(err)
	}

	ds := s.PlannerDecisions()
	if len(ds) != 2 {
		t.Fatalf("%d decisions, want 2", len(ds))
	}
	if ds[0].Model != "g" || ds[0].Strategy != "incremental" || len(ds[0].Estimates) != 0 {
		t.Fatalf("GMM decision = %+v", ds[0])
	}
	if ds[1].Model != "n" {
		t.Fatalf("NN decision = %+v", ds[1])
	}
	if got := ds[1].Strategy; got != "factorized" && got != "streaming" {
		t.Fatalf("NN refresh strategy %q, want a non-materializing strategy", got)
	}
	if len(ds[1].Estimates) != 3 {
		t.Fatalf("NN decision carries %d estimates, want 3", len(ds[1].Estimates))
	}

	// The provider shape matches what the server embeds.
	if v := s.PlannerProvider()(); v == nil {
		t.Fatal("PlannerProvider returned nil")
	}

	if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 5, 9)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 2 {
		t.Fatalf("%d refreshed models, want 2", len(res.Models))
	}
	for _, mr := range res.Models {
		switch mr.Kind {
		case "gmm":
			if mr.Strategy != "incremental" {
				t.Errorf("GMM refresh strategy %q, want incremental", mr.Strategy)
			}
		case "nn":
			if mr.Strategy != ds[1].Strategy {
				t.Errorf("NN refresh used %q, planner decision says %q (refresh must reuse the plan)", mr.Strategy, ds[1].Strategy)
			}
		}
	}
}
