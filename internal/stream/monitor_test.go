package stream

import (
	"math/rand"
	"testing"

	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/monitor"
	"factorml/internal/serve"
)

// inDistBatch builds a delta of n fact rows whose features are copied
// from existing base facts (so they match the training distribution,
// which deltaBatch's standard normals do not — the synthetic generator
// spreads cluster centers well away from zero).
func inDistBatch(t *testing.T, spec *join.Spec, idxs []*join.ResidentIndex, n int, seed int64) Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dS := spec.S.Schema().NumFeatures()
	base := spec.S.NumTuples()
	var feats [][]float64
	var ys []float64
	err := join.Stream(spec, func(sid int64, x []float64, y float64) error {
		feats = append(feats, append([]float64(nil), x[:dS]...))
		ys = append(ys, y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < n; i++ {
		fr := FactRow{SID: base + int64(i)}
		for _, ix := range idxs {
			pk, _ := ix.At(rng.Intn(ix.Len()))
			fr.FKs = append(fr.FKs, pk)
		}
		j := rng.Intn(len(feats))
		fr.Features = append([]float64(nil), feats[j]...)
		fr.Target = ys[j]
		b.Facts = append(b.Facts, fr)
	}
	return b
}

// TestMonitorRidesChangeFeed pins the tentpole property end to end at
// the stream layer: a baseline captured at train time and persisted
// with the model's lineage, live sketches fed O(1) per ingested row by
// the change feed, a drifting verdict after a shifted delta, and a
// refresh that folds the window into the baseline (no rescan),
// republishes the model with advanced lineage, and resets the verdict.
func TestMonitorRidesChangeFeed(t *testing.T) {
	db, spec, _ := genStar(t, 400, []int{16}, 3, []int{2}, 5)
	gres, err := gmm.TrainF(db, spec, gmm.Config{K: 2, MaxIter: 2, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := monitor.CaptureBaseline(spec, 0,
		func(x []float64, y float64) float64 { return gres.Model.LogProb(x) }, "log_likelihood")
	if err != nil {
		t.Fatal(err)
	}
	lin := &monitor.Lineage{
		TrainedAtUnix: base.CapturedAtUnix, TrainingRows: base.Rows,
		Strategy: "factorized", Baseline: base,
	}
	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveGMMLineage("g", gres.Model, lin); err != nil {
		t.Fatal(err)
	}
	if info, _ := reg.Get("g"); info.Lineage == nil || info.Lineage.TrainingRows != 400 {
		t.Fatalf("registry lost the lineage: %+v", info.Lineage)
	}

	mon := monitor.New(monitor.Config{MinWindowRows: 20})
	s, err := New(db, spec, Options{Registry: reg, Monitor: mon, Policy: Policy{NumWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("g", gres.Model); err != nil {
		t.Fatal(err)
	}
	h, ok := mon.Health("g")
	if !ok || h.Verdict != monitor.VerdictFresh || h.Version != 1 {
		t.Fatalf("attach health = %+v (ok=%v), want fresh v1", h, ok)
	}
	if len(h.Columns) != 5 {
		t.Fatalf("joined columns monitored = %d, want 5 (3 fact + 2 dim)", len(h.Columns))
	}

	// An in-distribution delta keeps the verdict fresh while counting
	// staleness. The window needs a few hundred rows for sampling noise
	// alone to sit well under the 0.25 drift threshold.
	if _, err := s.Ingest(inDistBatch(t, spec, s.idxs, 400, 31)); err != nil {
		t.Fatal(err)
	}
	h, _ = mon.Health("g")
	if h.Verdict != monitor.VerdictFresh || h.RowsSinceRefresh != 400 {
		t.Fatalf("in-distribution health = %q with %d rows, want fresh/400", h.Verdict, h.RowsSinceRefresh)
	}

	// A deliberately shifted delta flips the verdict to drifting with
	// the shifted fact column named.
	shifted := inDistBatch(t, spec, s.idxs, 200, 32)
	for i := range shifted.Facts {
		shifted.Facts[i].Features[0] += 25
	}
	if _, err := s.Ingest(shifted); err != nil {
		t.Fatal(err)
	}
	h, _ = mon.Health("g")
	if h.Verdict != monitor.VerdictDrifting {
		t.Fatalf("shifted health = %q (max PSI %v), want drifting", h.Verdict, h.MaxPSI)
	}
	if h.Columns[0].Status != "drift" {
		t.Fatalf("shifted fact column status = %q, want drift; columns %+v", h.Columns[0].Status, h.Columns)
	}

	// Refresh: the registry version bumps carrying lineage whose
	// baseline absorbed the 600-row window via the exact sketch merge.
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	info, _ := reg.Get("g")
	if info.Version != 2 {
		t.Fatalf("post-refresh version = %d, want 2", info.Version)
	}
	if info.Lineage == nil || info.Lineage.Baseline == nil {
		t.Fatal("refreshed version lost its lineage")
	}
	if got := info.Lineage.Baseline.Rows; got != 1000 {
		t.Fatalf("refreshed baseline rows = %d, want 1000 (400 base + 600 window)", got)
	}
	if info.Lineage.TrainingRows != 1000 {
		t.Fatalf("refreshed training rows = %d, want 1000", info.Lineage.TrainingRows)
	}
	h, _ = mon.Health("g")
	if h.Verdict != monitor.VerdictFresh || h.RowsSinceRefresh != 0 || h.Version != 2 {
		t.Fatalf("post-refresh health = %+v, want fresh v2 with 0 rows", h)
	}
}

// TestMonitorObservesDimUpdates pins the dimension-update path: an
// in-place update feeds the updated table's columns.
func TestMonitorObservesDimUpdates(t *testing.T) {
	db, spec, _ := genStar(t, 100, []int{8}, 3, []int{2}, 7)
	model := trainBase(t, db, spec, 2)
	base, err := monitor.CaptureBaseline(spec, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	lin := &monitor.Lineage{TrainedAtUnix: base.CapturedAtUnix, TrainingRows: base.Rows, Baseline: base}
	if err := reg.SaveGMMLineage("g", model, lin); err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(monitor.Config{MinWindowRows: 1})
	s, err := New(db, spec, Options{Registry: reg, Monitor: mon, Policy: Policy{NumWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("g", model); err != nil {
		t.Fatal(err)
	}
	pk, _ := s.idxs[0].At(0)
	if _, err := s.Ingest(Batch{Dims: []DimUpdate{
		{Table: spec.Rs[0].Schema().Name, RID: pk, Features: []float64{4.5, -4.5}},
	}}); err != nil {
		t.Fatal(err)
	}
	h, _ := mon.Health("g")
	if h.DimUpdatesSinceRefresh != 1 {
		t.Fatalf("dim updates since refresh = %d, want 1", h.DimUpdatesSinceRefresh)
	}
	if h.Columns[3].LiveRows != 1 || h.Columns[0].LiveRows != 0 {
		t.Fatalf("dim update fed wrong columns: %+v", h.Columns)
	}
}
