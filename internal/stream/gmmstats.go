package stream

import (
	"fmt"
	"sort"

	"factorml/internal/core"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/linalg"
	"factorml/internal/parallel"
	"factorml/internal/storage"
)

// StatChunkRows is the absolute-indexed chunk size of the incremental
// statistics accumulator: chunk i always covers fact rows
// [i·StatChunkRows, (i+1)·StatChunkRows), no matter when or under how
// many workers those rows are absorbed. Like every chunk-geometry
// constant in this codebase it is independent of the worker count,
// because it fixes the floating-point reduction order (see the package
// comment).
const StatChunkRows = 256

// collapseFloor mirrors the trainers' responsibility-mass floor below
// which a component's parameters are frozen for the step.
const collapseFloor = 1e-12

// pairKey identifies one (group in relation i, group in relation j) pair
// of a cross-dimension second-moment block.
type pairKey struct{ a, b int }

// groupAcc is the per-group (per dimension tuple) slice of the factorized
// sufficient statistics: for each mixture component, the γ-sum (the
// γ-weighted group count) and the γ-weighted fact-feature sum. Everything
// the M-step needs from a group that is linear or quadratic in the
// group's own features is reconstructed from these at assembly time, so
// the per-row absorb cost never touches dimension feature vectors.
type groupAcc struct {
	w    []float64 // K γ-sums
	gvec []float64 // K×dS flattened Σ_{n∈g} γ_n·x_S
}

// statAcc is one accumulation unit of the raw-moment sufficient
// statistics — either a chunk's private partial or the global merged/tail
// state. All sums are raw (uncentered) moments, which makes them
// independent of the model parameters: statistics absorbed under
// different refresh generations compose additively.
type statAcc struct {
	k, dS int
	rows  int64
	ll    float64
	nk    []float64               // K component masses Σγ
	s1S   []float64               // K×dS flattened Σγ·x_S
	b00   []*linalg.Dense         // K fact-block raw moments Σγ·x_S x_Sᵀ
	grp   []map[int]*groupAcc     // per dimension relation: dense group index -> sums
	pairs []map[pairKey][]float64 // per (i<j) relation pair: group pair -> K γ-sums
}

func newStatAcc(k, dS, q, npairs int) *statAcc {
	a := &statAcc{
		k: k, dS: dS,
		nk:  make([]float64, k),
		s1S: make([]float64, k*dS),
	}
	for c := 0; c < k; c++ {
		a.b00 = append(a.b00, linalg.NewDense(dS, dS))
	}
	a.grp = make([]map[int]*groupAcc, q)
	for j := range a.grp {
		a.grp[j] = make(map[int]*groupAcc)
	}
	a.pairs = make([]map[pairKey][]float64, npairs)
	for i := range a.pairs {
		a.pairs[i] = make(map[pairKey][]float64)
	}
	return a
}

func (a *statAcc) group(j, g int) *groupAcc {
	ga, ok := a.grp[j][g]
	if !ok {
		ga = &groupAcc{w: make([]float64, a.k), gvec: make([]float64, a.k*a.dS)}
		a.grp[j][g] = ga
	}
	return ga
}

func (a *statAcc) pairW(pi int, key pairKey) []float64 {
	pw, ok := a.pairs[pi][key]
	if !ok {
		pw = make([]float64, a.k)
		a.pairs[pi][key] = pw
	}
	return pw
}

// fold adds o into a. Field order is fixed; additions into distinct
// groups/pairs are independent, so only the (fixed) chunk fold order
// determines the floating-point result.
func (a *statAcc) fold(o *statAcc) {
	a.rows += o.rows
	a.ll += o.ll
	for c := 0; c < a.k; c++ {
		a.nk[c] += o.nk[c]
	}
	linalg.Axpy(1, o.s1S, a.s1S)
	for c := 0; c < a.k; c++ {
		a.b00[c].Add(o.b00[c])
	}
	for j := range a.grp {
		for g, oga := range o.grp[j] {
			ga := a.group(j, g)
			linalg.Axpy(1, oga.w, ga.w)
			linalg.Axpy(1, oga.gvec, ga.gvec)
		}
	}
	for pi := range a.pairs {
		for key, opw := range o.pairs[pi] {
			linalg.Axpy(1, opw, a.pairW(pi, key))
		}
	}
}

// clone deep-copies the accumulator (snapshot assembly works on a copy so
// folding the tail never disturbs the maintained state).
func (a *statAcc) clone() *statAcc {
	c := newStatAcc(a.k, a.dS, len(a.grp), len(a.pairs))
	c.fold(a)
	return c
}

// GMMStats is the maintained factorized sufficient statistics of one
// attached mixture model: a merged accumulator of complete absolute
// chunks plus the trailing partial-chunk tail (see the package comment
// for why this split makes incremental absorption bit-identical to a
// from-scratch pass).
type GMMStats struct {
	p        core.Partition
	k        int
	pairList [][2]int // dimension-relation index pairs (i<j)
	merged   *statAcc
	tail     *statAcc
	ops      core.Ops
}

// NewGMMStats builds empty statistics for a K-component mixture over the
// relation partition p (part 0 = fact relation).
func NewGMMStats(p core.Partition, k int) *GMMStats {
	q := p.Parts() - 1
	st := &GMMStats{p: p, k: k}
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			st.pairList = append(st.pairList, [2]int{i, j})
		}
	}
	st.Reset()
	return st
}

// Rows returns how many fact rows have been absorbed.
func (st *GMMStats) Rows() int64 { return st.merged.rows + st.tail.rows }

// LogLikelihood returns the accumulated data log-likelihood (each row's
// contribution is as of its absorb-time model).
func (st *GMMStats) LogLikelihood() float64 { return st.merged.ll + st.tail.ll }

// Reset drops every absorbed row, so the next absorb rebuilds from
// scratch (the rebaseline path).
func (st *GMMStats) Reset() {
	q := st.p.Parts() - 1
	st.merged = newStatAcc(st.k, st.p.Dims[0], q, len(st.pairList))
	st.tail = newStatAcc(st.k, st.p.Dims[0], q, len(st.pairList))
}

// scoreCtx bundles one absorb pass's frozen-model scoring state: the
// factorized scorer plus the per-dimension-tuple QuadCaches of every
// group referenced by the pass, computed once per distinct group.
type scoreCtx struct {
	scorer *gmm.Scorer
	caches []map[int][]core.QuadCache // per dim relation: group index -> K caches
}

// absorbScratch is per-goroutine absorb scratch.
type absorbScratch struct {
	sc    *gmm.ScoreScratch
	gamma []float64
	gidx  []int
	cbuf  [][]core.QuadCache
}

func (st *GMMStats) newScratch(ctx *scoreCtx) *absorbScratch {
	q := st.p.Parts() - 1
	return &absorbScratch{
		sc:    ctx.scorer.NewScratch(),
		gamma: make([]float64, st.k),
		gidx:  make([]int, q),
		cbuf:  make([][]core.QuadCache, q),
	}
}

// accumulateRow scores one fact tuple under the frozen model and folds it
// into acc. This single function is the row path of the sequential tail
// extension AND of every parallel chunk worker, so the arithmetic per row
// is identical no matter how the absorb is batched. Group indexes are
// resolved through the snowflake hierarchy: direct keys from the fact
// tuple, sub-dimension keys from the pinned parent tuples.
func (st *GMMStats) accumulateRow(acc *statAcc, ctx *scoreCtx, ws *absorbScratch, rv *join.Resolver, s *storage.Tuple) error {
	q := st.p.Parts() - 1
	if err := rv.Resolve(s.Keys[1:], nil, ws.gidx); err != nil {
		return fmt.Errorf("stream: fact tuple %d: %w", s.PrimaryKey(), err)
	}
	for j := 0; j < q; j++ {
		ws.cbuf[j] = ctx.caches[j][ws.gidx[j]]
	}
	xs := s.Features
	acc.ll += ctx.scorer.Responsibilities(xs, ws.cbuf, ws.sc, ws.gamma)
	acc.rows++
	dS := st.p.Dims[0]
	for c := 0; c < st.k; c++ {
		g := ws.gamma[c]
		acc.nk[c] += g
		linalg.Axpy(g, xs, acc.s1S[c*dS:(c+1)*dS])
		linalg.OuterAccum(acc.b00[c], g, xs, xs)
		for j := 0; j < q; j++ {
			ga := acc.group(j, ws.gidx[j])
			ga.w[c] += g
			linalg.Axpy(g, xs, ga.gvec[c*dS:(c+1)*dS])
		}
	}
	for pi, pr := range st.pairList {
		pw := acc.pairW(pi, pairKey{ws.gidx[pr[0]], ws.gidx[pr[1]]})
		for c := 0; c < st.k; c++ {
			pw[c] += ws.gamma[c]
		}
	}
	return nil
}

// Absorb scores fact rows [Rows(), fact.NumTuples()) under model and folds
// them into the statistics, in time proportional to that range. rv
// resolves each fact tuple's dimension positions through the (star or
// snowflake) hierarchy. The chunk geometry is anchored at absolute row
// indexes, so absorbing in any batch split — and under any worker count —
// produces bit-identical sums.
func (st *GMMStats) Absorb(model *gmm.Model, fact *storage.Table, rv *join.Resolver, workers int) error {
	if model.K != st.k || model.D != st.p.D {
		return fmt.Errorf("stream: model (K=%d, D=%d) does not match statistics (K=%d, D=%d)",
			model.K, model.D, st.k, st.p.D)
	}
	r0 := st.Rows()
	r1 := fact.NumTuples()
	if r0 > r1 {
		return fmt.Errorf("stream: statistics cover %d rows but fact table %q has %d — rows are append-only", r0, fact.Schema().Name, r1)
	}
	if r0 == r1 {
		return nil
	}
	scorer, err := model.NewScorer(st.p)
	if err != nil {
		return err
	}
	nw := parallel.Workers(workers)
	q := st.p.Parts() - 1

	// Pre-scan the new rows once: validate every foreign-key chain and
	// collect the set of referenced groups per dimension relation, so the
	// QuadCache fills below touch exactly the dimension tuples the batch
	// needs (cost ∝ delta, not ∝ dimension-table size).
	refs := make([]map[int]struct{}, q)
	for j := range refs {
		refs[j] = make(map[int]struct{})
	}
	sc, err := fact.NewScannerAt(r0)
	if err != nil {
		return err
	}
	row := r0
	gidx := make([]int, q)
	for sc.Next() {
		t := sc.Tuple()
		if err := rv.Resolve(t.Keys[1:], nil, gidx); err != nil {
			return fmt.Errorf("stream: fact row %d (sid %d): %w", row, t.PrimaryKey(), err)
		}
		for j := 0; j < q; j++ {
			refs[j][gidx[j]] = struct{}{}
		}
		row++
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Fill the per-dimension-tuple QuadCaches of every referenced group —
	// once per distinct group, over disjoint grains on the worker pool.
	ctx := &scoreCtx{scorer: scorer, caches: make([]map[int][]core.QuadCache, q)}
	for j := 0; j < q; j++ {
		list := make([]int, 0, len(refs[j]))
		for g := range refs[j] {
			list = append(list, g)
		}
		sort.Ints(list)
		cm := make(map[int][]core.QuadCache, len(list))
		for _, g := range list {
			cm[g] = make([]core.QuadCache, st.k)
		}
		ctx.caches[j] = cm
		part := 1 + j
		ix := rv.Idxs[j]
		err := parallel.RunRange(nw, len(list), func(a, b int, ops *core.Ops) error {
			for i := a; i < b; i++ {
				g := list[i]
				_, xg := ix.At(g)
				scorer.FillDimCaches(cm[g], part, xg, ops)
			}
			return nil
		}, &st.ops)
		if err != nil {
			return err
		}
	}
	return st.absorbRows(ctx, fact, rv, r0, r1, nw)
}

// absorbChunk carries one aligned chunk of copied fact tuples to a worker.
type absorbChunk struct {
	tuples []storage.Tuple
	n      int
	acc    *statAcc
}

// absorbRows runs the chunked accumulation of rows [r0, r1): a sequential
// extension of the trailing partial chunk up to its absolute boundary,
// then aligned chunks fanned over the worker pool and folded in chunk
// order.
func (st *GMMStats) absorbRows(ctx *scoreCtx, fact *storage.Table, rv *join.Resolver, r0, r1 int64, nw int) error {
	const C = int64(StatChunkRows)
	if st.tail.rows != r0%C {
		return fmt.Errorf("stream: internal: tail holds %d rows at absolute row %d", st.tail.rows, r0)
	}
	q := st.p.Parts() - 1
	r := r0
	if rem := r0 % C; rem != 0 {
		seqEnd := r0 - rem + C
		if seqEnd > r1 {
			seqEnd = r1
		}
		ws := st.newScratch(ctx)
		sc, err := fact.NewScannerAt(r)
		if err != nil {
			return err
		}
		for r < seqEnd && sc.Next() {
			if err := st.accumulateRow(st.tail, ctx, ws, rv, sc.Tuple()); err != nil {
				return err
			}
			r++
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if r < seqEnd {
			return fmt.Errorf("stream: fact table %q ended early at row %d", fact.Schema().Name, r)
		}
		if st.tail.rows == C {
			st.merged.fold(st.tail)
			st.tail = newStatAcc(st.k, st.p.Dims[0], q, len(st.pairList))
		}
	}
	if r == r1 {
		return nil
	}

	produce := func(f *parallel.Feed[*absorbChunk]) error {
		sc, err := fact.NewScannerAt(r)
		if err != nil {
			return err
		}
		cur := &absorbChunk{tuples: make([]storage.Tuple, StatChunkRows)}
		emit := func() error {
			if cur.n == 0 {
				return nil
			}
			if err := f.Emit(cur); err != nil {
				return err
			}
			cur = &absorbChunk{tuples: make([]storage.Tuple, StatChunkRows)}
			return nil
		}
		for row := r; row < r1; row++ {
			if !sc.Next() {
				if err := sc.Err(); err != nil {
					return err
				}
				return fmt.Errorf("stream: fact table %q ended early at row %d", fact.Schema().Name, row)
			}
			t := sc.Tuple()
			dst := &cur.tuples[cur.n]
			dst.Keys = append(dst.Keys[:0], t.Keys...)
			dst.Features = append(dst.Features[:0], t.Features...)
			dst.Target = t.Target
			cur.n++
			if cur.n == StatChunkRows {
				if err := emit(); err != nil {
					return err
				}
			}
		}
		return emit()
	}
	work := func(c *absorbChunk) (*absorbChunk, error) {
		c.acc = newStatAcc(st.k, st.p.Dims[0], q, len(st.pairList))
		ws := st.newScratch(ctx)
		for i := 0; i < c.n; i++ {
			if err := st.accumulateRow(c.acc, ctx, ws, rv, &c.tuples[i]); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	merge := func(c *absorbChunk) error {
		if c.acc.rows == C {
			st.merged.fold(c.acc)
		} else {
			// The final partial chunk becomes the new tail; a later absorb
			// extends it sequentially up to its absolute boundary.
			st.tail = c.acc
		}
		return nil
	}
	return parallel.Run(nw, produce, work, merge)
}

// Step runs the M-step over a snapshot of the statistics and returns the
// refreshed model (prev supplies the parameters of collapsed components,
// mirroring the trainers' collapse handling). The assembly iterates
// groups in dense index order and cross-group pairs in sorted order, so
// the result is a pure function of the absorbed rows and the dimension
// features — independent of map iteration and worker count.
func (st *GMMStats) Step(prev *gmm.Model, idxs []*join.ResidentIndex, regEps float64) (*gmm.Model, error) {
	snap := st.merged.clone()
	snap.fold(st.tail)
	n := snap.rows
	if n == 0 {
		return nil, fmt.Errorf("stream: no absorbed rows to refresh from")
	}
	if regEps <= 0 {
		regEps = 1e-6
	}
	q := st.p.Parts() - 1
	dS := st.p.Dims[0]
	D := st.p.D
	out := prev.Clone()
	mu := make([]float64, D)
	for c := 0; c < st.k; c++ {
		nk := snap.nk[c]
		out.Weights[c] = nk / float64(n)
		if nk < collapseFloor {
			continue // frozen: keep prev mean and covariance
		}
		// Mean: fact part from the direct sum; each dimension part from
		// the per-group γ-sums times the group's (current) features.
		for i := 0; i < dS; i++ {
			mu[i] = snap.s1S[c*dS+i] / nk
		}
		for j := 0; j < q; j++ {
			off := st.p.Offs[1+j]
			dR := st.p.Dims[1+j]
			sum := make([]float64, dR)
			for g := 0; g < idxs[j].Len(); g++ {
				ga, ok := snap.grp[j][g]
				if !ok {
					continue
				}
				_, xg := idxs[j].At(g)
				linalg.Axpy(ga.w[c], xg, sum)
			}
			for i := 0; i < dR; i++ {
				mu[off+i] = sum[i] / nk
			}
		}
		// Raw second moment, assembled block-wise: the fact block was
		// accumulated per row; every block touching a dimension relation
		// is reconstructed from the per-group (or per group-pair) γ-sums.
		raw := linalg.NewDense(D, D)
		raw.SetBlock(0, 0, snap.b00[c])
		for j := 0; j < q; j++ {
			off := st.p.Offs[1+j]
			dR := st.p.Dims[1+j]
			b0j := linalg.NewDense(dS, dR)
			bjj := linalg.NewDense(dR, dR)
			for g := 0; g < idxs[j].Len(); g++ {
				ga, ok := snap.grp[j][g]
				if !ok {
					continue
				}
				_, xg := idxs[j].At(g)
				linalg.OuterAccum(b0j, 1, ga.gvec[c*dS:(c+1)*dS], xg)
				linalg.OuterAccum(bjj, ga.w[c], xg, xg)
			}
			raw.SetBlock(0, off, b0j)
			raw.SetBlock(off, 0, b0j.Transpose())
			raw.SetBlock(off, off, bjj)
		}
		for pi, pr := range st.pairList {
			i, j := pr[0], pr[1]
			offI, offJ := st.p.Offs[1+i], st.p.Offs[1+j]
			bij := linalg.NewDense(st.p.Dims[1+i], st.p.Dims[1+j])
			keys := make([]pairKey, 0, len(snap.pairs[pi]))
			for key := range snap.pairs[pi] {
				keys = append(keys, key)
			}
			sort.Slice(keys, func(a, b int) bool {
				if keys[a].a != keys[b].a {
					return keys[a].a < keys[b].a
				}
				return keys[a].b < keys[b].b
			})
			for _, key := range keys {
				_, xi := idxs[i].At(key.a)
				_, xj := idxs[j].At(key.b)
				linalg.OuterAccum(bij, snap.pairs[pi][key][c], xi, xj)
			}
			raw.SetBlock(offI, offJ, bij)
			raw.SetBlock(offJ, offI, bij.Transpose())
		}
		// Σ = E_γ[x xᵀ]/nk − µµᵀ (+ regularizer). Products commute, so
		// the matrix stays exactly symmetric.
		data := raw.Data()
		for i := 0; i < D; i++ {
			for jj := 0; jj < D; jj++ {
				data[i*D+jj] = data[i*D+jj]/nk - mu[i]*mu[jj]
			}
		}
		raw.AddDiag(regEps)
		copy(out.Means[c], mu)
		out.Covs[c] = raw
	}
	return out, nil
}
