package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// maxIngestBody bounds an ingest request body (32 MiB).
const maxIngestBody = 32 << 20

// Handler returns the HTTP handler of the change feed, meant to be
// mounted at POST /v1/ingest by serve.Server.SetIngestHandler. The wire
// format is the JSON encoding of Batch:
//
//	{"facts": [{"sid": 9, "fks": [3], "features": [0.1, 0.2], "target": 1.5}],
//	 "dims":  [{"table": "items", "rid": 3, "features": [0.7, 0.8, 0.9]}]}
//
// The response is the IngestResult, including whether the batch tripped
// an automatic refresh. Validation failures answer 400 with no partial
// effects; server-side failures (storage I/O, a failing triggered
// refresh) answer 500 and may have applied the batch.
func (s *Stream) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "ingest takes POST, got %s", r.Method)
			return
		}
		var b Batch
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&b); err != nil {
			httpError(w, http.StatusBadRequest, "decoding batch: %v", err)
			return
		}
		if len(b.Facts) == 0 && len(b.Dims) == 0 {
			httpError(w, http.StatusBadRequest, "batch has no facts and no dims")
			return
		}
		res, err := s.Ingest(b)
		if err != nil {
			// Validation rejections are the client's fault and applied
			// nothing; anything else is a server-side failure that may
			// have landed after rows were applied — tell the client not
			// to blindly retry.
			if IsValidationError(err) {
				httpError(w, http.StatusBadRequest, "%v", err)
			} else {
				httpError(w, http.StatusInternalServerError, "%v", err)
			}
			return
		}
		httpJSON(w, http.StatusOK, res)
	})
}

// StatsProvider adapts Counters for serve.Server.SetStreamStats.
func (s *Stream) StatsProvider() func() any {
	return func() any { return s.Counters() }
}

// PlannerProvider adapts PlannerDecisions for
// serve.Server.SetPlannerStats (the "planner" section of /statsz).
func (s *Stream) PlannerProvider() func() any {
	return func() any { return s.PlannerDecisions() }
}

func httpJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	httpJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
