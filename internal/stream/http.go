package stream

import (
	"encoding/json"
	"errors"
	"net/http"

	"factorml/internal/api"
	"factorml/internal/metrics"
)

// maxIngestBody bounds an ingest request body (32 MiB).
const maxIngestBody = 32 << 20

// Handler returns the HTTP handler of the change feed, meant to be
// mounted at POST /v1/ingest by serve.Server.SetIngestHandler. The wire
// format is the JSON encoding of Batch:
//
//	{"facts": [{"sid": 9, "fks": [3], "features": [0.1, 0.2], "target": 1.5}],
//	 "dims":  [{"table": "items", "rid": 3, "features": [0.7, 0.8, 0.9]}]}
//
// The response is the IngestResult, including whether the batch tripped
// an automatic refresh. Admission control runs first: when the bounded
// ingest queue (Options.MaxQueuedIngest) is full, the batch is rejected
// with 429 ingest_overloaded before its body is read — no partial
// effects, safe to retry after the Retry-After hint. Validation failures
// answer 400 ingest_invalid with no partial effects; server-side
// failures (storage I/O, a failing triggered refresh) answer 500
// internal and may have applied the batch.
func (s *Stream) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				"ingest takes POST, got %s", r.Method)
			return
		}
		// The queue bound counts admitted-but-unfinished batches: every
		// admitted batch proceeds to completion (rejection happens only
		// here, before any byte of the body is read), so overload turns
		// into fast 429s instead of an unbounded pile-up on the stream
		// mutex.
		if !s.ingestLim.TryAcquire() {
			s.ingestRejections.Add(1)
			api.WriteErrorDetails(w, http.StatusTooManyRequests, api.CodeIngestOverloaded,
				map[string]any{"max_queued": s.maxQueued},
				"ingest queue is full (%d batches queued); retry later", s.maxQueued)
			return
		}
		defer s.ingestLim.Release()
		var b Batch
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&b); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				api.WriteErrorDetails(w, http.StatusRequestEntityTooLarge, api.CodePayloadTooLarge,
					map[string]any{"limit_bytes": tooBig.Limit}, "batch body over %d bytes", tooBig.Limit)
				return
			}
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest, "decoding batch: %v", err)
			return
		}
		if len(b.Facts) == 0 && len(b.Dims) == 0 {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest, "batch has no facts and no dims")
			return
		}
		res, err := s.IngestCtx(r.Context(), b)
		if err != nil {
			// Validation rejections are the client's fault and applied
			// nothing; anything else is a server-side failure that may
			// have landed after rows were applied — tell the client not
			// to blindly retry.
			if IsValidationError(err) {
				api.WriteError(w, http.StatusBadRequest, api.CodeIngestInvalid, "%v", err)
			} else {
				api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
			}
			return
		}
		api.WriteJSON(w, http.StatusOK, res)
	})
}

// RefreshHandler returns the on-demand refresh handler, meant to be
// mounted at POST /v1/refresh by serve.Server.SetRefreshHandler: it
// folds everything ingested so far into every attached model and
// responds with the RefreshResult.
func (s *Stream) RefreshHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				"refresh takes POST, got %s", r.Method)
			return
		}
		res, err := s.RefreshCtx(r.Context())
		if err != nil {
			api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
			return
		}
		api.WriteJSON(w, http.StatusOK, res)
	})
}

// StatsProvider adapts Counters for serve.Server.SetStreamStats.
func (s *Stream) StatsProvider() func() any {
	return func() any { return s.Counters() }
}

// PlannerProvider adapts PlannerDecisions for
// serve.Server.SetPlannerStats (the "planner" section of /statsz).
func (s *Stream) PlannerProvider() func() any {
	return func() any { return s.PlannerDecisions() }
}

// WALStatsProvider adapts WALStats for serve.Server.SetWALStats (the
// "wal" section of /statsz). It returns nil when durability is off, so
// the caller can skip registering the section.
func (s *Stream) WALStatsProvider() func() any {
	if s.wal == nil {
		return nil
	}
	return func() any { return s.WALStats() }
}

// MetricsCollector adapts the stream's counters — including the bounded
// ingest queue's depth and rejection count — and the per-model planner
// decisions into Prometheus samples at scrape time. Like the engine
// collector it reads snapshot state only, adding no locks to the ingest
// path.
func (s *Stream) MetricsCollector() metrics.Collector {
	return func(emit func(metrics.Sample)) {
		c := s.Counters()
		gauge := func(name, help string, v float64) {
			emit(metrics.Sample{Name: name, Help: help, Value: v})
		}
		counter := func(name, help string, v float64) {
			emit(metrics.Sample{Name: name, Help: help, Type: "counter", Value: v})
		}
		counter("factorml_stream_batches_total", "Ingest batches applied.", float64(c.Batches))
		counter("factorml_stream_facts_total", "Fact rows ingested.", float64(c.FactsIngested))
		counter("factorml_stream_dim_inserts_total", "Dimension tuples inserted.", float64(c.DimInserts))
		counter("factorml_stream_dim_updates_total", "Dimension tuples updated in place.", float64(c.DimUpdates))
		counter("factorml_stream_refreshes_total", "Model refreshes run.", float64(c.Refreshes))
		counter("factorml_stream_auto_refreshes_total", "Refreshes triggered by the refresh-rows policy.", float64(c.AutoRefreshes))
		counter("factorml_stream_rebaselines_total", "GMM statistics rebuilds from scratch.", float64(c.Rebaselines))
		counter("factorml_stream_checkpoints_total", "Committed WAL snapshots.", float64(c.Checkpoints))
		counter("factorml_stream_ingest_rejections_total", "Batches rejected by the bounded ingest queue.", float64(c.IngestRejections))
		gauge("factorml_stream_pending_rows", "Fact rows ingested since the last refresh.", float64(c.PendingRows))
		gauge("factorml_stream_ingest_queue_depth", "Admitted-but-unfinished ingest batches.", float64(c.IngestQueueDepth))
		gauge("factorml_stream_attached_models", "Models under incremental maintenance.", float64(c.AttachedModels))
		if s.wal != nil {
			ws := s.WALStats()
			gauge("factorml_wal_last_lsn", "LSN of the most recent WAL record.", float64(ws.LastLSN))
			gauge("factorml_wal_snapshot_lsn", "LSN covered by the committed snapshot.", float64(ws.SnapshotLSN))
			gauge("factorml_wal_segments", "Live WAL segment files.", float64(ws.Segments))
			gauge("factorml_wal_bytes", "Live bytes across WAL segments.", float64(ws.Bytes))
			counter("factorml_wal_appends_total", "WAL records appended.", float64(ws.Appends))
			counter("factorml_wal_fsyncs_total", "WAL fsyncs (group commits).", float64(ws.Fsyncs))
			counter("factorml_wal_fsync_seconds_total", "Cumulative WAL fsync time.", ws.FsyncTotal.Seconds())
			gauge("factorml_wal_last_fsync_seconds", "Duration of the most recent WAL fsync.", ws.LastFsync.Seconds())
		}
		for _, d := range s.PlannerDecisions() {
			emit(metrics.Sample{
				Name: "factorml_planner_strategy",
				Help: "Cost-based strategy decision each attached model's next refresh reuses (value is always 1; the decision is in the labels).",
				Labels: [][2]string{
					{"model", d.Model}, {"kind", d.Kind}, {"strategy", d.Strategy},
				},
				Value: 1,
			})
		}
	}
}
