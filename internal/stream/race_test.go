package stream

import (
	"sync"
	"testing"

	"factorml/internal/serve"
)

// TestConcurrentServeAndIngest hammers the serving hot path while the
// change feed applies dimension updates, fact appends and refreshes.
// Run under -race (CI does) this pins the locking contract: predictions,
// index upserts, cache invalidations and model republications never race.
func TestConcurrentServeAndIngest(t *testing.T) {
	_, spec, _, eng, _, s := serveFixture(t, Policy{NumWorkers: 2})
	dimTable := spec.Rs[0].Schema().Name
	pk0, _ := s.idxs[0].At(0)
	pk1, _ := s.idxs[0].At(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: batched predictions against both models.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rows := []serve.Row{
				{Fact: []float64{0.1, 0.2, 0.3}, FKs: []int64{pk0}},
				{Fact: []float64{-1, 0, 1}, FKs: []int64{pk1}},
			}
			name := "g"
			if g%2 == 1 {
				name = "n"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := eng.Predict(name, rows); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	// Writer: dimension updates, fact appends, refreshes.
	for i := 0; i < 15; i++ {
		if _, err := s.Ingest(Batch{Dims: []DimUpdate{
			{Table: dimTable, RID: pk0, Features: []float64{float64(i), -float64(i)}},
		}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 5, int64(1000+i))); err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			if _, err := s.Refresh(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
