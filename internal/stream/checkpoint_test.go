package stream

// In-package tests for the checkpoint/recovery machinery: the
// snapshot round-trip (stateLocked/stageLocked → RestoreSnapshotFiles/
// restoreStateLocked), WAL replay of batch/refresh/attach records, the
// files-only CheckpointDB path, the SnapshotEvery cadence, and the
// record codec's error branches. The facade-level harness proves the
// end-to-end guarantee; these pin the pieces.

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"factorml/internal/data"
	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/storage"
	"factorml/internal/wal"
)

func ckptCopyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ckptStar builds a star schema in a caller-visible directory (the
// crash copies need the path, which genStar hides).
func ckptStar(t *testing.T, dbDir string, seed int64) (*storage.Database, *join.Spec) {
	t.Helper()
	db, err := storage.Open(dbDir, storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	spec, err := data.Generate(db, "st", data.SynthConfig{
		NS: 300, NR: []int{12}, DS: 3, DR: []int{2}, Seed: seed, WithTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, spec
}

func ckptWAL(t *testing.T, walDir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(walDir, wal.Options{NoSync: true, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// ckptModelBytes refreshes the stream and serializes both attached
// models — byte equality is bit equality of every parameter.
func ckptModelBytes(t *testing.T, s *Stream) []byte {
	t.Helper()
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gm, err := s.GMM("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := gm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	net, err := s.NN("n")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointRecoverRoundTrip drives the full cycle in-package: a
// durable stream with both model kinds attached checkpoints mid-run,
// ingests and refreshes past the checkpoint, and is then "crashed" by
// copying its directories. Recovery restores the snapshot, replays the
// WAL tail (batch, explicit-refresh, and attach records), and the
// recovered stream's refreshed models are bit-identical to the
// original's.
func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dbDir, walDir := t.TempDir(), t.TempDir()
	db, spec := ckptStar(t, dbDir, 5)
	model := trainBase(t, db, spec, 3)
	nres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{4}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := ckptWAL(t, walDir)
	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1}, WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("g", model); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachNN("n", nres.Net); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 9, 31)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(); err != nil { // logged as an explicit-refresh record
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snapLSN := l.SnapshotLSN()
	if snapLSN == 0 {
		t.Fatal("Checkpoint committed no snapshot")
	}
	// Tail past the checkpoint: a fact batch and a dimension update that
	// replay must re-apply on top of the restored snapshot.
	if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 7, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(Batch{Dims: []DimUpdate{{
		Table: spec.Rs[0].Schema().Name, RID: 3, Features: []float64{4.5, -1.5},
	}}}); err != nil {
		t.Fatal(err)
	}
	if l.LastLSN() <= snapLSN {
		t.Fatalf("no WAL tail past the snapshot (last %d, snapshot %d)", l.LastLSN(), snapLSN)
	}
	wantPending := s.Pending()

	// Crash: copy both directories while the original is still open.
	dbDir2, walDir2 := t.TempDir(), t.TempDir()
	ckptCopyTree(t, dbDir, dbDir2)
	ckptCopyTree(t, walDir, walDir2)

	if err := RestoreSnapshotFiles(dbDir2, walDir2); err != nil {
		t.Fatal(err)
	}
	db2, err := storage.Open(dbDir2, storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	fact, err := db2.Table("st_S")
	if err != nil {
		t.Fatal(err)
	}
	dim, err := db2.Table("st_R1")
	if err != nil {
		t.Fatal(err)
	}
	spec2 := &join.Spec{S: fact, Rs: []*storage.Table{dim}}
	l2 := ckptWAL(t, walDir2)
	s2, err := New(db2, spec2, Options{Policy: Policy{NumWorkers: 1}, WAL: l2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s2.Pending(); got != wantPending {
		t.Fatalf("recovered pending = %d, want %d", got, wantPending)
	}
	if got := len(s2.Attached()); got != 2 {
		t.Fatalf("recovered attached = %v, want both models", s2.Attached())
	}
	if got, want := ckptModelBytes(t, s2), ckptModelBytes(t, s); !bytes.Equal(got, want) {
		t.Fatal("recovered models diverged from the original after refresh")
	}
}

// TestRecoverWithoutSnapshotReplaysFromGenesis recovers a WAL whose
// snapshot was never committed: replay starts from LSN 1 over the live
// database files.
func TestRecoverWithoutSnapshotReplaysFromGenesis(t *testing.T) {
	dbDir, walDir := t.TempDir(), t.TempDir()
	db, spec := ckptStar(t, dbDir, 6)
	l := ckptWAL(t, walDir)
	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1}, WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	base := spec.S.NumTuples()
	if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 5, 41)); err != nil {
		t.Fatal(err)
	}

	walDir2 := t.TempDir()
	ckptCopyTree(t, walDir, walDir2)
	// Fresh db content identical to pre-ingest state: regenerate.
	dbDir2 := t.TempDir()
	db2, spec2 := ckptStar(t, dbDir2, 6)
	_ = db2
	l2 := ckptWAL(t, walDir2)
	s2, err := New(db2, spec2, Options{Policy: Policy{NumWorkers: 1}, WAL: l2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := spec2.S.NumTuples(); got != base+5 {
		t.Fatalf("replayed fact rows = %d, want %d", got, base+5)
	}
	if got := s2.Pending(); got != 5 {
		t.Fatalf("replayed pending = %d, want 5", got)
	}
}

// TestCheckpointDBFilesOnly covers the stream-less checkpoint: database
// files snapshot + WAL truncation, restorable byte-for-byte.
func TestCheckpointDBFilesOnly(t *testing.T) {
	dbDir, walDir := t.TempDir(), t.TempDir()
	db, spec := ckptStar(t, dbDir, 7)
	if err := db.CheckpointSync(); err != nil {
		t.Fatal(err)
	}
	l := ckptWAL(t, walDir)
	if err := CheckpointDB(db, l); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := wal.CurrentSnapshot(walDir); err != nil || !ok {
		t.Fatalf("CheckpointDB committed no snapshot (ok=%v, err=%v)", ok, err)
	}
	rows := spec.S.NumTuples()

	dbDir2, walDir2 := t.TempDir(), t.TempDir()
	ckptCopyTree(t, walDir, walDir2)
	if err := os.MkdirAll(dbDir2, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := RestoreSnapshotFiles(dbDir2, walDir2); err != nil {
		t.Fatal(err)
	}
	db2, err := storage.Open(dbDir2, storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	fact, err := db2.Table("st_S")
	if err != nil {
		t.Fatal(err)
	}
	if got := fact.NumTuples(); got != rows {
		t.Fatalf("restored fact rows = %d, want %d", got, rows)
	}
}

// TestSnapshotEveryCadence lets the automatic checkpoint trigger fire
// and verifies the WAL is truncated behind it.
func TestSnapshotEveryCadence(t *testing.T) {
	dbDir, walDir := t.TempDir(), t.TempDir()
	db, spec := ckptStar(t, dbDir, 8)
	l := ckptWAL(t, walDir)
	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1}, WAL: l, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 2, 50+i)); err != nil {
			t.Fatal(err)
		}
	}
	if snap := l.SnapshotLSN(); snap < 2 {
		t.Fatalf("SnapshotEvery=2 never checkpointed after 5 records (snapshot LSN %d)", snap)
	}
	if c := s.Counters(); c.Checkpoints < 2 {
		t.Fatalf("Checkpoints = %d, want >= 2", c.Checkpoints)
	}
}

// TestWALRecordCodecRoundTrip pins the batch/refresh/attach encodings
// through decodeWALRecord.
func TestWALRecordCodecRoundTrip(t *testing.T) {
	b := Batch{
		Dims: []DimUpdate{{Table: "items", RID: 7, FKs: []int64{1, 2}, Features: []float64{1.5, -2.5}}},
		Facts: []FactRow{
			{SID: 9, FKs: []int64{3}, Features: []float64{0.25}, Target: -4},
			{SID: 10, FKs: []int64{4}, Features: []float64{0.5}, Target: 8},
		},
	}
	enc, err := appendBatchRecord(nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := decodeWALRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if rec.op != walOpBatch || len(rec.batch.Dims) != 1 || len(rec.batch.Facts) != 2 {
		t.Fatalf("decoded %+v", rec)
	}
	if rec.batch.Dims[0].Table != "items" || rec.batch.Facts[1].Target != 8 {
		t.Fatalf("decoded %+v", rec.batch)
	}

	rec, err = decodeWALRecord(appendRefreshRecord(nil))
	if err != nil || rec.op != walOpRefresh {
		t.Fatalf("refresh decode: %+v, %v", rec, err)
	}

	enc, err = appendAttachRecord(nil, walAttachNN, "net", []byte("params"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err = decodeWALRecord(enc)
	if err != nil || rec.op != walOpAttach || rec.kind != walAttachNN ||
		rec.name != "net" || string(rec.params) != "params" {
		t.Fatalf("attach decode: %+v, %v", rec, err)
	}
}

// TestWALRecordCodecErrors pins the decoder's hard-error branches:
// version skew, unknown op, truncation, trailing bytes, and the
// element-count bound.
func TestWALRecordCodecErrors(t *testing.T) {
	valid, err := appendAttachRecord(nil, walAttachGMM, "g", []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"bad version", []byte{99, walOpRefresh}, "version 99"},
		{"unknown op", []byte{walRecordVersion, 42}, "unknown WAL record op 42"},
		{"truncated attach", valid[:len(valid)-1], "attach params"},
		{"trailing bytes", append(append([]byte{}, valid...), 0), "trailing bytes"},
		{"count over limit", []byte{walRecordVersion, walOpBatch, 0xff, 0xff, 0xff, 0xff}, "exceeds limit"},
	}
	for _, tc := range cases {
		_, err := decodeWALRecord(tc.p)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	long := strings.Repeat("x", 1<<17)
	if _, err := appendAttachRecord(nil, walAttachGMM, long, nil); err == nil {
		t.Error("oversized model name accepted")
	}
	if _, err := appendAttachRecord(nil, walAttachGMM, "g", make([]byte, walBatchLimit+1)); err == nil {
		t.Error("oversized model params accepted")
	}

	// Floats round-trip bit-exactly through the checkpoint codec.
	vs := []float64{0, -0.0, 1.5, -2.25}
	got, err := b64ToFloats(floatsToB64(vs), len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("float %d: %v != %v", i, got[i], vs[i])
		}
	}
	if _, err := b64ToFloats(floatsToB64(vs), 3); err == nil {
		t.Error("wrong float count accepted")
	}
	if _, err := b64ToFloats("!!!", -1); err == nil {
		t.Error("invalid base64 accepted")
	}
}
