package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/serve"
	"factorml/internal/storage"
)

// deltaBatch builds a batch of n fact rows over the existing dimension
// keys of the stream's tables.
func deltaBatch(t *testing.T, spec *join.Spec, idxs []*join.ResidentIndex, n int, seed int64) Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dS := spec.S.Schema().NumFeatures()
	base := spec.S.NumTuples()
	var b Batch
	for i := 0; i < n; i++ {
		fr := FactRow{SID: base + int64(i)}
		for _, ix := range idxs {
			pk, _ := ix.At(rng.Intn(ix.Len()))
			fr.FKs = append(fr.FKs, pk)
		}
		fr.Features = make([]float64, dS)
		for d := range fr.Features {
			fr.Features[d] = rng.NormFloat64()
		}
		fr.Target = rng.NormFloat64()
		b.Facts = append(b.Facts, fr)
	}
	return b
}

// TestStreamRefreshBitIdentical drives the whole Stream path: attach a
// trained model, ingest delta batches through the change feed, refresh,
// and verify the result is bit-identical to the full-retraining baseline
// (fresh statistics over base ∪ delta + the same warm-start M-step).
func TestStreamRefreshBitIdentical(t *testing.T) {
	db, spec, p := genStar(t, 500, []int{20}, 3, []int{2}, 3)
	model := trainBase(t, db, spec, 3)

	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("m", model); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("m", model); err == nil {
		t.Fatal("double attach accepted")
	}

	// Two delta batches, one of them inserting a new dimension tuple that
	// the same batch's fact rows reference.
	res, err := s.Ingest(deltaBatch(t, spec, s.idxs, 83, 21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts != 83 || res.PendingRows != 83 || res.RefreshTriggered {
		t.Fatalf("ingest result: %+v", res)
	}
	b2 := Batch{
		Dims: []DimUpdate{{Table: spec.Rs[0].Schema().Name, RID: 7777, Features: []float64{1.5, -2.5}}},
	}
	for i := 0; i < 40; i++ {
		b2.Facts = append(b2.Facts, FactRow{
			SID: spec.S.NumTuples() + int64(i), FKs: []int64{7777},
			Features: []float64{0.1 * float64(i), 0.2, -0.3}, Target: 1,
		})
	}
	res, err = s.Ingest(b2)
	if err != nil {
		t.Fatal(err)
	}
	if res.DimInserts != 1 || res.Facts != 40 {
		t.Fatalf("ingest result: %+v", res)
	}

	rres, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Models) != 1 || rres.Models[0].RowsAbsorbed != 123 || rres.Models[0].Rebaselined {
		t.Fatalf("refresh result: %+v", rres)
	}
	got, err := s.GMM("m")
	if err != nil {
		t.Fatal(err)
	}

	// Full-retraining baseline over the union, several worker counts.
	for _, w := range []int{1, 4} {
		full := NewGMMStats(p, model.K)
		if err := full.Absorb(model, spec.S, s.rv, w); err != nil {
			t.Fatal(err)
		}
		want, err := full.Step(model, s.idxs, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if d := got.MaxParamDiff(want); d != 0 {
			t.Fatalf("stream refresh vs full retrain (workers=%d) differ by %g, want bit-identical", w, d)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("pending after refresh = %d", s.Pending())
	}

	// A refresh with nothing new is a no-op: no M-step, no model change
	// (and on a registry-attached stream, no version churn).
	rres, err = s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(rres.Models) != 0 {
		t.Fatalf("no-op refresh still refreshed: %+v", rres)
	}
	again, err := s.GMM("m")
	if err != nil {
		t.Fatal(err)
	}
	if d := again.MaxParamDiff(got); d != 0 {
		t.Fatalf("no-op refresh changed the model by %g", d)
	}
}

// TestNNWarmStartRefresh checks the NN refresh path: the stream's
// factorized warm-start epochs over base ∪ delta are bit-identical across
// worker counts and match dense warm-start retraining on the
// materialized union to 1e-9.
func TestNNWarmStartRefresh(t *testing.T) {
	db, spec, _ := genStar(t, 400, []int{16}, 3, []int{2}, 9)
	bres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{6}, Epochs: 2, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := bres.Net

	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 3, NNEpochs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachNN("net", base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 77, 31)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	got, err := s.NN("net")
	if err != nil {
		t.Fatal(err)
	}

	// The same warm start retrained over the union must agree bitwise for
	// every worker count, and with the dense materialized baseline to 1e-9.
	for _, w := range []int{1, 4} {
		fres, err := nn.TrainF(db, spec, nn.Config{Init: base, Epochs: 2, LearningRate: 0.05, NumWorkers: w})
		if err != nil {
			t.Fatal(err)
		}
		if d := got.MaxParamDiff(fres.Net); d != 0 {
			t.Fatalf("stream NN refresh vs warm-start F-NN (workers=%d) differ by %g", w, d)
		}
	}
	mres, err := nn.TrainM(db, spec, nn.Config{Init: base, Epochs: 2, LearningRate: 0.05, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxParamDiff(mres.Net); !(d <= 1e-9) {
		t.Fatalf("stream NN refresh vs dense warm-start retrain differ by %g, want <= 1e-9", d)
	}
}

// serveFixture builds the full serving stack over a trained star schema:
// registry with both model kinds, engine, server and a stream wired into
// all of them.
func serveFixture(t *testing.T, pol Policy) (*storage.Database, *join.Spec, *serve.Registry, *serve.Engine, *serve.Server, *Stream) {
	t.Helper()
	db, spec, _ := genStar(t, 420, []int{18}, 3, []int{2}, 13)
	gres, err := gmm.TrainF(db, spec, gmm.Config{K: 2, MaxIter: 2, Tol: 1e-300, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	nres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{5}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveGMM("g", gres.Model); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveNN("n", nres.Net); err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(reg, spec.Plan(), serve.EngineConfig{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(eng)
	s, err := New(db, spec, Options{Engine: eng, Registry: reg, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("g", gres.Model); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachNN("n", nres.Net); err != nil {
		t.Fatal(err)
	}
	srv.SetIngestHandler(s.Handler())
	srv.SetStreamStats(s.StatsProvider())
	return db, spec, reg, eng, srv, s
}

// TestDimUpdateChangesServedPredictions pins the serving-coherence
// property: an ingested dimension-tuple update changes the predictions of
// rows referencing that tuple immediately — no refresh, no restart — and
// leaves every other row untouched.
func TestDimUpdateChangesServedPredictions(t *testing.T) {
	_, spec, _, eng, _, s := serveFixture(t, Policy{NumWorkers: 1})

	pk0, _ := s.idxs[0].At(0)
	pk1, _ := s.idxs[0].At(1)
	rows := []serve.Row{
		{Fact: []float64{0.1, 0.2, 0.3}, FKs: []int64{pk0}},
		{Fact: []float64{0.1, 0.2, 0.3}, FKs: []int64{pk1}},
	}
	before, _, err := eng.Predict("g", rows)
	if err != nil {
		t.Fatal(err)
	}
	nnBefore, _, err := eng.Predict("n", rows)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Ingest(Batch{Dims: []DimUpdate{
		{Table: spec.Rs[0].Schema().Name, RID: pk0, Features: []float64{9.5, -9.5}},
	}}); err != nil {
		t.Fatal(err)
	}

	after, _, err := eng.Predict("g", rows)
	if err != nil {
		t.Fatal(err)
	}
	nnAfter, _, err := eng.Predict("n", rows)
	if err != nil {
		t.Fatal(err)
	}
	if before[0].LogProb == after[0].LogProb {
		t.Fatal("GMM prediction of the updated dimension tuple did not change")
	}
	if before[1].LogProb != after[1].LogProb {
		t.Fatal("GMM prediction of an untouched dimension tuple changed")
	}
	if nnBefore[0].Output == nnAfter[0].Output {
		t.Fatal("NN prediction of the updated dimension tuple did not change")
	}
	if nnBefore[1].Output != nnAfter[1].Output {
		t.Fatal("NN prediction of an untouched dimension tuple changed")
	}
	if st := eng.Stats(); st.DimInvalidations == 0 {
		t.Fatalf("expected dim-cache invalidations, stats = %+v", st)
	}

	// The dirty statistics rebaseline on the next refresh and the result
	// still matches a from-scratch recompute bitwise.
	rres, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range rres.Models {
		if mr.Kind == string(serve.KindGMM) && !mr.Rebaselined {
			t.Fatalf("GMM refresh after a dimension update must rebaseline: %+v", mr)
		}
	}
}

// TestIngestHTTPAndAutoRefresh drives the HTTP ingest endpoint mounted on
// the serving mux: deltas are POSTed, the refresh-rows policy trips an
// automatic refresh, the registry version bumps, and /statsz reports the
// stream counters.
func TestIngestHTTPAndAutoRefresh(t *testing.T) {
	_, spec, reg, _, srv, s := serveFixture(t, Policy{NumWorkers: 1, RefreshRows: 60})

	v0, _ := reg.Get("g")
	dimTable := spec.Rs[0].Schema().Name
	post := func(body string) (int, map[string]any) {
		req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewBufferString(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		var m map[string]any
		_ = json.Unmarshal(rec.Body.Bytes(), &m)
		return rec.Code, m
	}

	pk0, _ := s.idxs[0].At(0)
	mkFacts := func(n int, startSID int64) string {
		var buf bytes.Buffer
		buf.WriteString(`{"facts":[`)
		for i := 0; i < n; i++ {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, `{"sid":%d,"fks":[%d],"features":[0.1,0.2,0.3],"target":1}`, startSID+int64(i), pk0)
		}
		buf.WriteString(`]}`)
		return buf.String()
	}

	sid := spec.S.NumTuples()
	code, body := post(mkFacts(40, sid))
	if code != 200 || body["refresh_triggered"] == true {
		t.Fatalf("first batch: code=%d body=%v", code, body)
	}
	code, body = post(mkFacts(40, sid+40))
	if code != 200 || body["refresh_triggered"] != true {
		t.Fatalf("second batch should trip the 60-row policy: code=%d body=%v", code, body)
	}
	v1, _ := reg.Get("g")
	if v1.Version != v0.Version+1 {
		t.Fatalf("registry version after auto refresh = %d, want %d", v1.Version, v0.Version+1)
	}

	// Dimension update over HTTP.
	code, body = post(fmt.Sprintf(`{"dims":[{"table":%q,"rid":%d,"features":[3,4]}]}`, dimTable, pk0))
	if code != 200 || body["dim_updates"] != float64(1) {
		t.Fatalf("dim update: code=%d body=%v", code, body)
	}

	// Bad batches are rejected atomically.
	before := spec.S.NumTuples()
	code, _ = post(`{"facts":[{"sid":1,"fks":[0],"features":[1]}]}`)
	if code != 400 {
		t.Fatalf("wrong-width fact accepted: %d", code)
	}
	code, _ = post(`{"dims":[{"table":"nope","rid":1,"features":[1,2]}]}`)
	if code != 400 {
		t.Fatalf("unknown dim table accepted: %d", code)
	}
	code, _ = post(`{}`)
	if code != 400 {
		t.Fatalf("empty batch accepted: %d", code)
	}
	if spec.S.NumTuples() != before {
		t.Fatal("rejected batch left partial fact rows behind")
	}

	// /statsz carries the stream section.
	req := httptest.NewRequest("GET", "/statsz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var stats struct {
		Stream Counters `json:"stream"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stream.FactsIngested != 80 || stats.Stream.DimUpdates != 1 ||
		stats.Stream.Refreshes == 0 || stats.Stream.AutoRefreshes == 0 {
		t.Fatalf("stream stats = %+v", stats.Stream)
	}
	if stats.Stream.AttachedModels != 2 {
		t.Fatalf("attached models = %d", stats.Stream.AttachedModels)
	}
}

// TestTargetlessFactTable pins two contracts of a star schema without a
// target column: an NN cannot be attached (schema-incompatible, so the
// streaming server leaves it served-but-static), and a fact row carrying
// a non-zero target is rejected instead of silently dropping the value.
func TestTargetlessFactTable(t *testing.T) {
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	spec, err := data.Generate(db, "nt", data.SynthConfig{
		NS: 200, NR: []int{8}, DS: 3, DR: []int{2}, Seed: 3, WithTarget: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork([]int{5, 4, 1}, nn.Sigmoid, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = s.AttachNN("n", net)
	if err == nil || !IsIncompatibleModel(err) {
		t.Fatalf("AttachNN on a target-less schema = %v, want IncompatibleModelError", err)
	}
	wrong, err := nn.NewNetwork([]int{9, 4, 1}, nn.Sigmoid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachNN("w", wrong); !IsIncompatibleModel(err) {
		t.Fatalf("AttachNN with wrong input dim = %v, want IncompatibleModelError", err)
	}

	pk, _ := s.idxs[0].At(0)
	_, err = s.Ingest(Batch{Facts: []FactRow{{SID: 200, FKs: []int64{pk}, Features: []float64{1, 2, 3}, Target: 5}}})
	if err == nil || !IsValidationError(err) {
		t.Fatalf("non-zero target on a target-less table = %v, want ValidationError", err)
	}
	if _, err := s.Ingest(Batch{Facts: []FactRow{{SID: 200, FKs: []int64{pk}, Features: []float64{1, 2, 3}}}}); err != nil {
		t.Fatalf("target-less fact row rejected: %v", err)
	}
}

// TestRebaselineCadence checks Policy.RebaselineEvery.
func TestRebaselineCadence(t *testing.T) {
	db, spec, _ := genStar(t, 300, []int{12}, 3, []int{2}, 17)
	model := trainBase(t, db, spec, 2)
	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1, RebaselineEvery: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AttachGMM("m", model); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := s.Ingest(deltaBatch(t, spec, s.idxs, 10, int64(100+i))); err != nil {
			t.Fatal(err)
		}
		rres, err := s.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		wantRebase := i%2 == 0
		if rres.Models[0].Rebaselined != wantRebase {
			t.Fatalf("refresh %d: rebaselined=%v, want %v", i, rres.Models[0].Rebaselined, wantRebase)
		}
	}
	if c := s.Counters(); c.Rebaselines != 2 || c.Refreshes != 4 {
		t.Fatalf("counters = %+v", c)
	}
}
