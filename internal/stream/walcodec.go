package stream

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"math"
)

// WAL record encoding. Every acked mutation of the stream is one
// record: a validated change batch (walOpBatch), an explicit refresh
// (walOpRefresh), or a model attach (walOpAttach — replay re-attaches
// the named model from the registry at the same log position, so the
// base statistics it rebuilds see exactly the rows the original attach
// saw). Automatic refreshes are deliberately NOT logged — they re-fire
// deterministically when the triggering batch is replayed, so logging
// them would double-refresh on recovery.
//
// The format is little-endian binary (floats as Float64bits, so every
// value — including NaN and infinities — round-trips exactly):
//
//	[u8 version][u8 op][op-specific body]
//
// walOpBatch body: dims first, then facts, mirroring apply order:
//
//	u32 ndims  { u16 len|table  i64 rid  u16 nfks i64…  u16 nfeat f64… }…
//	u32 nfacts { i64 sid  u16 nfks i64…  u16 nfeat f64…  f64 target }…
//
// The encoder appends into a caller-owned buffer (the stream reuses
// one under its mutex), so WAL-on ingest adds no per-batch garbage
// beyond the first growth to the high-water batch size.

const (
	walRecordVersion = 1

	walOpBatch   = 1
	walOpRefresh = 2
	walOpAttach  = 3
)

// walOpAttach model kinds.
const (
	walAttachGMM = 1
	walAttachNN  = 2
)

// walBatchLimit bounds the decoded element counts so a corrupt-but-
// CRC-valid record cannot drive huge allocations.
const walBatchLimit = 16 << 20

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendI64s(dst []byte, vs []int64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(vs)))
	for _, v := range vs {
		dst = appendI64(dst, v)
	}
	return dst
}

func appendF64s(dst []byte, vs []float64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

// appendBatchRecord encodes b as a walOpBatch record, appending to dst.
func appendBatchRecord(dst []byte, b *Batch) ([]byte, error) {
	for _, du := range b.Dims {
		if len(du.Table) > math.MaxUint16 || len(du.FKs) > math.MaxUint16 || len(du.Features) > math.MaxUint16 {
			return dst, fmt.Errorf("stream: dim update of table %q too wide to log", du.Table)
		}
	}
	for i := range b.Facts {
		fr := &b.Facts[i]
		if len(fr.FKs) > math.MaxUint16 || len(fr.Features) > math.MaxUint16 {
			return dst, fmt.Errorf("stream: fact row (sid %d) too wide to log", fr.SID)
		}
	}
	dst = append(dst, walRecordVersion, walOpBatch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Dims)))
	for _, du := range b.Dims {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(du.Table)))
		dst = append(dst, du.Table...)
		dst = appendI64(dst, du.RID)
		dst = appendI64s(dst, du.FKs)
		dst = appendF64s(dst, du.Features)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Facts)))
	for i := range b.Facts {
		fr := &b.Facts[i]
		dst = appendI64(dst, fr.SID)
		dst = appendI64s(dst, fr.FKs)
		dst = appendF64s(dst, fr.Features)
		dst = appendF64(dst, fr.Target)
	}
	return dst, nil
}

// appendRefreshRecord encodes an explicit-refresh record.
func appendRefreshRecord(dst []byte) []byte {
	return append(dst, walRecordVersion, walOpRefresh)
}

// appendAttachRecord encodes a walOpAttach record. The record carries
// the attached model's serialized parameters, not a registry reference:
// the instance handed to Attach need not match any saved copy, and
// replay must rebuild statistics under exactly the parameters the
// original attach used.
func appendAttachRecord(dst []byte, kind byte, name string, params []byte) ([]byte, error) {
	if len(name) > math.MaxUint16 {
		return dst, fmt.Errorf("stream: model name of %d bytes too long to log", len(name))
	}
	if len(params) > walBatchLimit {
		return dst, fmt.Errorf("stream: model %q parameters of %d bytes too large to log", name, len(params))
	}
	dst = append(dst, walRecordVersion, walOpAttach, kind)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(params)))
	dst = append(dst, params...)
	return dst, nil
}

// walDecoder is a bounds-checked cursor over one record payload.
type walDecoder struct {
	p   []byte
	off int
	err error
}

func (d *walDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("stream: truncated WAL record reading %s at offset %d", what, d.off)
	}
}

func (d *walDecoder) u8(what string) byte {
	if d.err != nil || d.off+1 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := d.p[d.off]
	d.off++
	return v
}

func (d *walDecoder) u16(what string) int {
	if d.err != nil || d.off+2 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(d.p[d.off:])
	d.off += 2
	return int(v)
}

func (d *walDecoder) u32(what string) int {
	if d.err != nil || d.off+4 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p[d.off:])
	d.off += 4
	if v > walBatchLimit {
		d.err = fmt.Errorf("stream: WAL record %s count %d exceeds limit", what, v)
		return 0
	}
	return int(v)
}

func (d *walDecoder) i64(what string) int64 {
	if d.err != nil || d.off+8 > len(d.p) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return int64(v)
}

func (d *walDecoder) f64(what string) float64 {
	return math.Float64frombits(uint64(d.i64(what)))
}

func (d *walDecoder) str(what string) string {
	n := d.u16(what)
	if d.err != nil || d.off+n > len(d.p) {
		d.fail(what)
		return ""
	}
	s := string(d.p[d.off : d.off+n])
	d.off += n
	return s
}

func (d *walDecoder) i64s(what string) []int64 {
	n := d.u16(what)
	if d.err != nil {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.i64(what)
	}
	return vs
}

func (d *walDecoder) f64s(what string) []float64 {
	n := d.u16(what)
	if d.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.f64(what)
	}
	return vs
}

// walRecord is one decoded WAL record.
type walRecord struct {
	op     byte
	batch  Batch  // walOpBatch
	kind   byte   // walOpAttach: walAttachGMM/walAttachNN
	name   string // walOpAttach: model name
	params []byte // walOpAttach: serialized model parameters
}

// decodeWALRecord parses one record payload. The CRC layer below
// already rejected bit rot, so a decode failure here means a version
// skew or an encoder bug — both hard errors for recovery to surface.
func decodeWALRecord(p []byte) (walRecord, error) {
	var rec walRecord
	d := &walDecoder{p: p}
	if v := d.u8("version"); d.err == nil && v != walRecordVersion {
		return rec, fmt.Errorf("stream: unsupported WAL record version %d", v)
	}
	rec.op = d.u8("op")
	switch {
	case d.err != nil:
	case rec.op == walOpRefresh:
		// no body
	case rec.op == walOpAttach:
		rec.kind = d.u8("attach kind")
		rec.name = d.str("attach name")
		if n := d.u32("attach params"); d.err == nil {
			if d.off+n > len(p) {
				d.fail("attach params")
			} else {
				rec.params = p[d.off : d.off+n]
				d.off += n
			}
		}
	case rec.op == walOpBatch:
		b := &rec.batch
		ndims := d.u32("dim count")
		for i := 0; i < ndims && d.err == nil; i++ {
			b.Dims = append(b.Dims, DimUpdate{
				Table:    d.str("dim table"),
				RID:      d.i64("dim rid"),
				FKs:      d.i64s("dim fks"),
				Features: d.f64s("dim features"),
			})
		}
		nfacts := d.u32("fact count")
		for i := 0; i < nfacts && d.err == nil; i++ {
			b.Facts = append(b.Facts, FactRow{
				SID:      d.i64("fact sid"),
				FKs:      d.i64s("fact fks"),
				Features: d.f64s("fact features"),
				Target:   d.f64("fact target"),
			})
		}
	default:
		return rec, fmt.Errorf("stream: unknown WAL record op %d", rec.op)
	}
	if d.err == nil && d.off != len(p) {
		d.err = fmt.Errorf("stream: %d trailing bytes after WAL record (op %d)", len(p)-d.off, rec.op)
	}
	return rec, d.err
}

// floatsToB64 encodes a float slice as base64 of the little-endian
// IEEE-754 bit patterns: exact round-trips (including NaN/±Inf, which
// plain JSON numbers cannot carry) for the checkpointed statistics.
func floatsToB64(vs []float64) string {
	buf := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// b64ToFloats decodes floatsToB64 output, checking the element count
// when want >= 0.
func b64ToFloats(s string, want int) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("stream: decoding checkpoint floats: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("stream: checkpoint float blob has %d bytes (not a multiple of 8)", len(buf))
	}
	n := len(buf) / 8
	if want >= 0 && n != want {
		return nil, fmt.Errorf("stream: checkpoint float blob has %d values, want %d", n, want)
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return vs, nil
}
