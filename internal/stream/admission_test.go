package stream

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestIngestAdmissionControl pins the bounded ingest queue: with every
// queue slot held (as admitted in-flight batches would), a new batch is
// rejected with a structured 429 ingest_overloaded + Retry-After before
// its body is read, and releasing a slot re-admits the next batch with
// no partial effects from the rejected one.
func TestIngestAdmissionControl(t *testing.T) {
	db, spec, _ := genStar(t, 200, []int{10}, 3, []int{2}, 11)
	defer db.Close()

	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1}, MaxQueuedIngest: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := deltaBatch(t, spec, s.idxs, 5, 33)
	payload, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the queue deterministically.
	if !s.ingestLim.TryAcquire() {
		t.Fatal("fresh ingest queue refused a slot")
	}
	resp, err := http.Post(ts.URL, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error struct {
			Code    string         `json:"code"`
			Message string         `json:"message"`
			Details map[string]any `json:"details"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if envelope.Error.Code != "ingest_overloaded" {
		t.Fatalf("429 code = %q, want ingest_overloaded", envelope.Error.Code)
	}
	if got, ok := envelope.Error.Details["max_queued"].(float64); !ok || got != 1 {
		t.Fatalf("429 details = %v, want max_queued 1", envelope.Error.Details)
	}

	// Rejection happened before any work: nothing was applied, and the
	// rejection is counted.
	c := s.Counters()
	if c.Batches != 0 || c.FactsIngested != 0 {
		t.Fatalf("rejected batch left effects: %+v", c)
	}
	if c.IngestRejections != 1 {
		t.Fatalf("IngestRejections = %d, want 1", c.IngestRejections)
	}
	if c.IngestQueueDepth != 1 {
		t.Fatalf("IngestQueueDepth = %d, want 1 (held slot)", c.IngestQueueDepth)
	}

	// Releasing the slot re-admits; the same batch applies cleanly.
	s.ingestLim.Release()
	resp, err = http.Post(ts.URL, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var res IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Facts != 5 {
		t.Fatalf("post-release ingest: status %d result %+v", resp.StatusCode, res)
	}
	if c := s.Counters(); c.IngestQueueDepth != 0 {
		t.Fatalf("queue depth after completion = %d, want 0", c.IngestQueueDepth)
	}

	// Validation failures still answer the envelope (ingest_invalid), and
	// an unbounded stream (MaxQueuedIngest 0) never rejects.
	resp, err = http.Post(ts.URL, "application/json", strings.NewReader(`{"facts":[],"dims":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", resp.StatusCode)
	}
}

// TestIngestUnbounded confirms the zero value keeps the pre-limits
// behavior: no queue bound, nothing rejected.
func TestIngestUnbounded(t *testing.T) {
	db, spec, _ := genStar(t, 150, []int{8}, 3, []int{2}, 13)
	defer db.Close()
	s, err := New(db, spec, Options{Policy: Policy{NumWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.ingestLim != nil {
		t.Fatal("MaxQueuedIngest 0 should leave the limiter nil (unlimited)")
	}
	if c := s.Counters(); c.IngestQueueDepth != 0 || c.IngestRejections != 0 {
		t.Fatalf("unbounded counters: %+v", c)
	}
}
