package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"factorml/internal/serve"
	"factorml/internal/trace"
)

// Mirror of the /debug/traces JSON payload (internal/trace debugPayload).
type debugTraces struct {
	Stats struct {
		Requests uint64 `json:"requests"`
		Sampled  uint64 `json:"sampled"`
		Recorded uint64 `json:"recorded"`
	} `json:"stats"`
	Traces []struct {
		TraceID    string  `json:"trace_id"`
		RequestID  string  `json:"request_id"`
		Name       string  `json:"name"`
		DurationMs float64 `json:"duration_ms"`
		Status     int     `json:"status"`
		Spans      []struct {
			ID     int32             `json:"id"`
			Parent int32             `json:"parent"`
			Name   string            `json:"name"`
			Attrs  map[string]string `json:"attrs"`
		} `json:"spans"`
	} `json:"traces"`
}

func getTraces(t *testing.T, url string) *debugTraces {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	var out debugTraces
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return &out
}

var requestIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// TestTracedPredictEndToEnd drives a predict over HTTP with tracing on
// and checks the full observability contract: the response carries an
// X-Request-Id and a traceparent, the flight recorder exports the trace
// at /debug/traces under that same request id, and the span tree covers
// the admission, engine-batch, worker-chunk and cache-lookup levels.
func TestTracedPredictEndToEnd(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 4, BatchRows: 8})
	if err := reg.SaveNN("m-nn", net); err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Config{SampleFraction: 1, SlowThreshold: time.Nanosecond})
	ts := httptest.NewServer(serve.NewServer(eng, serve.WithTracer(tracer)))
	defer ts.Close()

	rows, _ := factRows(t, spec, 32)
	resp, out := postPredict(t, ts, "m-nn", rows)
	if out == nil {
		t.Fatalf("predict failed with status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if !requestIDRe.MatchString(reqID) {
		t.Fatalf("X-Request-Id = %q, want 32 hex chars", reqID)
	}
	tp := resp.Header.Get("traceparent")
	if len(tp) != 55 || tp[:3] != "00-" || tp[3:35] != reqID {
		t.Fatalf("traceparent = %q, want version 00 carrying trace id %s", tp, reqID)
	}

	for _, path := range []string{"/debug/traces", "/debug/traces/slow"} {
		payload := getTraces(t, ts.URL+path)
		if payload.Stats.Sampled == 0 || payload.Stats.Recorded == 0 {
			t.Fatalf("%s stats = %+v, want sampled and recorded traces", path, payload.Stats)
		}
		var found bool
		for _, tr := range payload.Traces {
			if tr.RequestID != reqID {
				continue
			}
			found = true
			if tr.TraceID != reqID {
				t.Errorf("%s: trace_id %q != request_id %q", path, tr.TraceID, tr.RequestID)
			}
			if tr.Name != "predict" {
				t.Errorf("%s: root name = %q, want endpoint label \"predict\"", path, tr.Name)
			}
			if tr.Status != http.StatusOK {
				t.Errorf("%s: status = %d, want 200", path, tr.Status)
			}
			// The acceptance bar: one trace must cover admission,
			// engine-batch, per-worker chunk and cache-lookup levels.
			counts := map[string]int{}
			for _, sp := range tr.Spans {
				counts[sp.Name]++
			}
			for _, want := range []string{"admission", "engine.predict", "engine.chunk", "cache.lookup"} {
				if counts[want] == 0 {
					t.Errorf("%s: trace %s has no %q span (got %v)", path, reqID, want, counts)
				}
			}
			// 32 rows at 8 rows/chunk fan out over 4 chunks.
			if counts["engine.chunk"] != 4 {
				t.Errorf("%s: engine.chunk spans = %d, want 4", path, counts["engine.chunk"])
			}
		}
		if !found {
			t.Fatalf("%s: no trace with request id %s", path, reqID)
		}
	}
}

// TestTraceparentPropagation sends a sampled W3C traceparent and checks
// the server adopts the caller's trace id: X-Request-Id, the echoed
// traceparent, and the recorded trace all carry it, so a loadgen-side id
// can be joined against the flight recorder.
func TestTraceparentPropagation(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 2})
	_ = reg
	// SampleFraction well below 1: the sampled flag on the incoming
	// traceparent must force recording regardless.
	tracer := trace.New(trace.Config{SampleFraction: 0.0001, SlowThreshold: time.Nanosecond})
	ts := httptest.NewServer(serve.NewServer(eng, serve.WithTracer(tracer)))
	defer ts.Close()

	const upstreamTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+upstreamTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != upstreamTrace {
		t.Fatalf("X-Request-Id = %q, want adopted upstream trace id %q", got, upstreamTrace)
	}
	if tp := resp.Header.Get("traceparent"); len(tp) != 55 || tp[3:35] != upstreamTrace {
		t.Fatalf("traceparent = %q, want upstream trace id retained", tp)
	}
	payload := getTraces(t, ts.URL+"/debug/traces")
	var found bool
	for _, tr := range payload.Traces {
		if tr.TraceID == upstreamTrace {
			found = true
			if tr.Name != "healthz" {
				t.Errorf("adopted trace root name = %q, want \"healthz\"", tr.Name)
			}
		}
	}
	if !found {
		t.Fatalf("flight recorder has no trace with adopted id %s", upstreamTrace)
	}
}
