package serve

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary predict wire format ("FMB1"), negotiated per request via
// Content-Type: application/x-factorml-binary on POST
// /v1/models/{name}/predict. It exists for one reason: at production row
// rates the JSON predict path is dominated by number formatting and
// parsing, not by the factorized math. The binary format is fixed-layout
// little-endian, so encoding is a straight memory walk.
//
// Request (after the shared admission and size checks; every multi-byte
// integer little-endian):
//
//	magic   "FMB1"                       4 bytes
//	type    1 (predict request)          1 byte
//	pad     0 0 0                        3 bytes
//	nRows   uint32
//	factW   uint32  fact features per row
//	nFKs    uint32  foreign keys per row
//	rows    nRows × (factW × float64, nFKs × int64)
//
// Response (status 200; request-level failures keep the JSON error
// envelope with its stable codes, whatever the request encoding):
//
//	magic   "FMB1"
//	type    2 (predict response)         1 byte
//	kind    0 = NN, 1 = GMM              1 byte
//	pad     0 0                          2 bytes
//	nameLen uint16, name bytes
//	version uint32
//	nRows   uint32
//	rows    nRows × row result
//
// Row result: one status byte; 0 = ok followed by the kind's payload
// (NN: float64 output; GMM: float64 log-prob + int32 cluster), 1 = row
// error followed by uint16-length code and uint16-length message (the
// same stable api.Code* values as the JSON predictions carry).
// BinaryContentType selects the binary predict wire format when sent as
// a request's Content-Type; responses to binary requests carry it back.
const BinaryContentType = "application/x-factorml-binary"

const (
	wireMagic        = "FMB1"
	wireTypeRequest  = 1
	wireTypeResponse = 2

	wireKindNN  = 0
	wireKindGMM = 1

	wireRowOK  = 0
	wireRowErr = 1
)

// wireHeaderLen is the fixed request preamble: magic, type, pad, three
// uint32 counts.
const wireHeaderLen = 4 + 1 + 3 + 4 + 4 + 4

// AppendBinaryRequest encodes rows as one binary predict request appended
// to dst. All rows must share one shape (that of rows[0]); the format has
// a single per-batch width header. Exported for wire clients (cmd/loadgen
// and tests).
func AppendBinaryRequest(dst []byte, rows []Row) ([]byte, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("serve: binary request needs at least one row")
	}
	factW, nFKs := len(rows[0].Fact), len(rows[0].FKs)
	for i := range rows {
		if len(rows[i].Fact) != factW || len(rows[i].FKs) != nFKs {
			return nil, fmt.Errorf("serve: binary request row %d has shape (%d,%d), batch header says (%d,%d)",
				i, len(rows[i].Fact), len(rows[i].FKs), factW, nFKs)
		}
	}
	dst = append(dst, wireMagic...)
	dst = append(dst, wireTypeRequest, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(factW))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(nFKs))
	for i := range rows {
		for _, v := range rows[i].Fact {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		for _, k := range rows[i].FKs {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(k))
		}
	}
	return dst, nil
}

// decodeBinaryRequest parses a binary predict request into the pooled
// buffers: bufs.rows alias flat backing arrays (bufs.facts/bufs.fks), so
// a warm steady state decodes without allocating. Every length is
// validated against the actual body size before a single row is read —
// a truncated or padded body is rejected whole.
func decodeBinaryRequest(data []byte, bufs *predictBuffers) error {
	if len(data) < wireHeaderLen {
		return fmt.Errorf("body is %d bytes, shorter than the %d-byte header", len(data), wireHeaderLen)
	}
	if string(data[:4]) != wireMagic {
		return fmt.Errorf("bad magic %q, want %q", data[:4], wireMagic)
	}
	if data[4] != wireTypeRequest {
		return fmt.Errorf("message type %d, want %d (predict request)", data[4], wireTypeRequest)
	}
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return fmt.Errorf("nonzero padding bytes")
	}
	nRows := int(binary.LittleEndian.Uint32(data[8:]))
	factW := int(binary.LittleEndian.Uint32(data[12:]))
	nFKs := int(binary.LittleEndian.Uint32(data[16:]))
	rowBytes := 8 * (factW + nFKs)
	if nRows <= 0 {
		return fmt.Errorf("request has no rows")
	}
	if rowBytes == 0 {
		return fmt.Errorf("request rows are empty (no features, no keys)")
	}
	want := wireHeaderLen + nRows*rowBytes
	if len(data) != want {
		return fmt.Errorf("body is %d bytes, header (%d rows × %d bytes) requires %d",
			len(data), nRows, rowBytes, want)
	}
	if cap(bufs.facts) < nRows*factW {
		bufs.facts = make([]float64, nRows*factW)
	}
	bufs.facts = bufs.facts[:nRows*factW]
	if cap(bufs.fks) < nRows*nFKs {
		bufs.fks = make([]int64, nRows*nFKs)
	}
	bufs.fks = bufs.fks[:nRows*nFKs]
	if cap(bufs.rows) < nRows {
		bufs.rows = make([]Row, nRows)
	}
	bufs.rows = bufs.rows[:nRows]
	off := wireHeaderLen
	for i := 0; i < nRows; i++ {
		fact := bufs.facts[i*factW : (i+1)*factW]
		for j := range fact {
			fact[j] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		fks := bufs.fks[i*nFKs : (i+1)*nFKs]
		for j := range fks {
			fks[j] = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		bufs.rows[i] = Row{Fact: fact, FKs: fks}
	}
	return nil
}

// appendBinaryResponse encodes the predict success response appended to
// dst — the binary twin of appendPredictResponse, carrying the identical
// per-row values and error codes.
func appendBinaryResponse(dst []byte, info ModelInfo, preds []Prediction) []byte {
	dst = append(dst, wireMagic...)
	kind := byte(wireKindGMM)
	if info.Kind == KindNN {
		kind = wireKindNN
	}
	dst = append(dst, wireTypeResponse, kind, 0, 0)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(info.Name)))
	dst = append(dst, info.Name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(info.Version))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(preds)))
	for i := range preds {
		p := &preds[i]
		if p.Err != "" {
			dst = append(dst, wireRowErr)
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Code)))
			dst = append(dst, p.Code...)
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Err)))
			dst = append(dst, p.Err...)
			continue
		}
		dst = append(dst, wireRowOK)
		if info.Kind == KindNN {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Output))
		} else {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.LogProb))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(p.Cluster)))
		}
	}
	return dst
}

// DecodeBinaryResponse parses a binary predict response. Exported for
// wire clients (cmd/loadgen and the equivalence tests).
func DecodeBinaryResponse(data []byte) (info ModelInfo, preds []Prediction, err error) {
	fail := func(format string, args ...any) (ModelInfo, []Prediction, error) {
		return ModelInfo{}, nil, fmt.Errorf("serve: binary response: "+format, args...)
	}
	if len(data) < 8 {
		return fail("body is %d bytes, shorter than the 8-byte preamble", len(data))
	}
	if string(data[:4]) != wireMagic {
		return fail("bad magic %q, want %q", data[:4], wireMagic)
	}
	if data[4] != wireTypeResponse {
		return fail("message type %d, want %d (predict response)", data[4], wireTypeResponse)
	}
	switch data[5] {
	case wireKindNN:
		info.Kind = KindNN
	case wireKindGMM:
		info.Kind = KindGMM
	default:
		return fail("unknown model kind %d", data[5])
	}
	if data[6] != 0 || data[7] != 0 {
		return fail("nonzero padding bytes")
	}
	off := 8
	need := func(n int) bool { return len(data)-off >= n }
	if !need(2) {
		return fail("truncated at model name length")
	}
	nameLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	if !need(nameLen + 8) {
		return fail("truncated at model name/version")
	}
	info.Name = string(data[off : off+nameLen])
	off += nameLen
	info.Version = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	nRows := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	preds = make([]Prediction, nRows)
	for i := 0; i < nRows; i++ {
		if !need(1) {
			return fail("truncated at row %d status", i)
		}
		status := data[off]
		off++
		switch status {
		case wireRowOK:
			if info.Kind == KindNN {
				if !need(8) {
					return fail("truncated at row %d output", i)
				}
				preds[i].Output = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			} else {
				if !need(12) {
					return fail("truncated at row %d log-prob/cluster", i)
				}
				preds[i].LogProb = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				preds[i].Cluster = int(int32(binary.LittleEndian.Uint32(data[off+8:])))
				off += 12
			}
		case wireRowErr:
			if !need(2) {
				return fail("truncated at row %d error code length", i)
			}
			codeLen := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if !need(codeLen + 2) {
				return fail("truncated at row %d error code", i)
			}
			preds[i].Code = string(data[off : off+codeLen])
			off += codeLen
			msgLen := int(binary.LittleEndian.Uint16(data[off:]))
			off += 2
			if !need(msgLen) {
				return fail("truncated at row %d error message", i)
			}
			preds[i].Err = string(data[off : off+msgLen])
			off += msgLen
		default:
			return fail("row %d has unknown status %d", i, status)
		}
	}
	if off != len(data) {
		return fail("%d trailing bytes after the last row", len(data)-off)
	}
	return info, preds, nil
}
