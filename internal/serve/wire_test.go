package serve

import (
	"math"
	"math/rand"
	"testing"
)

// TestBinaryRequestRoundTrip is the codec property test: random batches
// of every shape survive encode → decode bit-exactly, including NaN,
// infinities and negative keys (the wire format is raw IEEE bits, so no
// value is unrepresentable).
func TestBinaryRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	specials := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	var bufs predictBuffers
	for trial := 0; trial < 200; trial++ {
		nRows := 1 + rng.Intn(20)
		factW := rng.Intn(6)
		nFKs := rng.Intn(4)
		if factW == 0 && nFKs == 0 {
			factW = 1
		}
		rows := make([]Row, nRows)
		for i := range rows {
			rows[i].Fact = make([]float64, factW)
			for j := range rows[i].Fact {
				if rng.Intn(10) == 0 {
					rows[i].Fact[j] = specials[rng.Intn(len(specials))]
				} else {
					rows[i].Fact[j] = rng.NormFloat64()
				}
			}
			rows[i].FKs = make([]int64, nFKs)
			for j := range rows[i].FKs {
				rows[i].FKs[j] = rng.Int63() - rng.Int63()
			}
		}
		enc, err := AppendBinaryRequest(nil, rows)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		if err := decodeBinaryRequest(enc, &bufs); err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(bufs.rows) != nRows {
			t.Fatalf("trial %d: decoded %d rows, want %d", trial, len(bufs.rows), nRows)
		}
		for i := range rows {
			for j := range rows[i].Fact {
				if math.Float64bits(bufs.rows[i].Fact[j]) != math.Float64bits(rows[i].Fact[j]) {
					t.Fatalf("trial %d row %d fact %d: %v != %v", trial, i, j, bufs.rows[i].Fact[j], rows[i].Fact[j])
				}
			}
			for j := range rows[i].FKs {
				if bufs.rows[i].FKs[j] != rows[i].FKs[j] {
					t.Fatalf("trial %d row %d fk %d: %d != %d", trial, i, j, bufs.rows[i].FKs[j], rows[i].FKs[j])
				}
			}
		}
	}
}

// TestBinaryResponseRoundTrip round-trips responses across both model
// kinds, mixed success and error rows.
func TestBinaryResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		info := ModelInfo{Name: "m", Kind: KindGMM, Version: 1 + rng.Intn(100)}
		if rng.Intn(2) == 0 {
			info.Kind = KindNN
		}
		preds := make([]Prediction, rng.Intn(20))
		for i := range preds {
			switch rng.Intn(3) {
			case 0:
				preds[i] = Prediction{Code: "unknown_foreign_key", Err: "unknown foreign key 99"}
			case 1:
				preds[i] = Prediction{Output: rng.NormFloat64(), LogProb: rng.NormFloat64(), Cluster: rng.Intn(8)}
			default:
				preds[i] = Prediction{LogProb: -math.MaxFloat64, Cluster: 0}
			}
		}
		enc := appendBinaryResponse(nil, info, preds)
		got, gotPreds, err := DecodeBinaryResponse(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got.Name != info.Name || got.Kind != info.Kind || got.Version != info.Version {
			t.Fatalf("trial %d: info %+v != %+v", trial, got, info)
		}
		if len(gotPreds) != len(preds) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(gotPreds), len(preds))
		}
		for i := range preds {
			w, g := &preds[i], &gotPreds[i]
			if w.Err != "" {
				if g.Err != w.Err || g.Code != w.Code {
					t.Fatalf("trial %d row %d: error (%q,%q) != (%q,%q)", trial, i, g.Code, g.Err, w.Code, w.Err)
				}
				continue
			}
			if info.Kind == KindNN {
				if math.Float64bits(g.Output) != math.Float64bits(w.Output) {
					t.Fatalf("trial %d row %d: output %v != %v", trial, i, g.Output, w.Output)
				}
			} else if math.Float64bits(g.LogProb) != math.Float64bits(w.LogProb) || g.Cluster != w.Cluster {
				t.Fatalf("trial %d row %d: (%v,%d) != (%v,%d)", trial, i, g.LogProb, g.Cluster, w.LogProb, w.Cluster)
			}
		}
	}
}

// FuzzDecodeBinaryRequest throws arbitrary bytes at the request decoder:
// it must reject or accept cleanly — never panic, never over-read — and
// anything it accepts must re-encode to the identical bytes.
func FuzzDecodeBinaryRequest(f *testing.F) {
	seed, _ := AppendBinaryRequest(nil, []Row{{Fact: []float64{1, 2}, FKs: []int64{3}}})
	f.Add(seed)
	f.Add([]byte(wireMagic))
	f.Add([]byte("FMB1\x01\x00\x00\x00\xff\xff\xff\xff\x01\x00\x00\x00\x01\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var bufs predictBuffers
		if err := decodeBinaryRequest(data, &bufs); err != nil {
			return
		}
		enc, err := AppendBinaryRequest(nil, bufs.rows)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		if string(enc) != string(data) {
			t.Fatalf("round-trip mismatch: %d bytes in, %d out", len(data), len(enc))
		}
	})
}

// FuzzDecodeBinaryResponse is the response-side decoder fuzz: no input
// may panic it, and accepted inputs round-trip.
func FuzzDecodeBinaryResponse(f *testing.F) {
	f.Add(appendBinaryResponse(nil, ModelInfo{Name: "m", Kind: KindGMM, Version: 1},
		[]Prediction{{LogProb: -1.5, Cluster: 2}, {Code: "x", Err: "y"}}))
	f.Add([]byte("FMB1\x02\x01\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		info, preds, err := DecodeBinaryResponse(data)
		if err != nil {
			return
		}
		enc := appendBinaryResponse(nil, info, preds)
		if string(enc) != string(data) {
			t.Fatalf("round-trip mismatch: %d bytes in, %d out", len(data), len(enc))
		}
	})
}
