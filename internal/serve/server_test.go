package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"factorml/internal/serve"
)

type httpPredictionError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type httpPrediction struct {
	Output  *float64             `json:"output"`
	LogProb *float64             `json:"log_prob"`
	Cluster *int                 `json:"cluster"`
	Err     *httpPredictionError `json:"error"`
}

type httpPredictResponse struct {
	Model       string           `json:"model"`
	Kind        string           `json:"kind"`
	Version     int              `json:"version"`
	Predictions []httpPrediction `json:"predictions"`
}

func postPredict(t *testing.T, ts *httptest.Server, model string, rows []serve.Row) (*http.Response, *httpPredictResponse) {
	t.Helper()
	payload := new(bytes.Buffer)
	if err := json.NewEncoder(payload).Encode(map[string]any{"rows": rowsJSON(rows)}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/"+model+"/predict", "application/json", payload)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var out httpPredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, &out
}

func rowsJSON(rows []serve.Row) []map[string]any {
	out := make([]map[string]any, len(rows))
	for i, r := range rows {
		out[i] = map[string]any{"fact": r.Fact, "fks": r.FKs}
	}
	return out
}

func TestServerEndToEnd(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, model := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 2})
	if err := reg.SaveNN("m-nn", net); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveGMM("m-gmm", model); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(eng))
	defer ts.Close()

	// healthz
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string   `json:"status"`
		Models int      `json:"models"`
		Dims   []string `json:"dimensions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Models != 2 || len(health.Dims) != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// model listing and lookup
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []serve.ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Models) != 2 || list.Models[0].Name != "m-gmm" || list.Models[1].Name != "m-nn" {
		t.Fatalf("models = %+v", list.Models)
	}
	resp, err = http.Get(ts.URL + "/v1/models/m-nn")
	if err != nil {
		t.Fatal(err)
	}
	var info serve.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Name != "m-nn" || info.Kind != serve.KindNN || info.Version != 1 {
		t.Fatalf("model info = %+v", info)
	}

	// NN predict: bit-identical to the in-process engine (JSON float64
	// encoding round-trips exactly).
	rows, _ := factRows(t, spec, 50)
	want, _, err := eng.Predict("m-nn", rows)
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postPredict(t, ts, "m-nn", rows)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	if got.Model != "m-nn" || got.Kind != "nn" || len(got.Predictions) != len(rows) {
		t.Fatalf("response header = %+v", got)
	}
	for i, p := range got.Predictions {
		if p.Output == nil || p.LogProb != nil || p.Cluster != nil {
			t.Fatalf("row %d: nn response fields = %+v", i, p)
		}
		if *p.Output != want[i].Output {
			t.Fatalf("row %d: HTTP %v vs engine %v, want bit-identical", i, *p.Output, want[i].Output)
		}
	}

	// GMM predict carries log_prob + cluster.
	gwant, _, err := eng.Predict("m-gmm", rows)
	if err != nil {
		t.Fatal(err)
	}
	resp, ggot := postPredict(t, ts, "m-gmm", rows)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gmm predict status %d", resp.StatusCode)
	}
	for i, p := range ggot.Predictions {
		if p.LogProb == nil || p.Cluster == nil || p.Output != nil {
			t.Fatalf("row %d: gmm response fields = %+v", i, p)
		}
		if *p.LogProb != gwant[i].LogProb || *p.Cluster != gwant[i].Cluster {
			t.Fatalf("row %d: HTTP %v/%d vs engine %v/%d", i, *p.LogProb, *p.Cluster, gwant[i].LogProb, gwant[i].Cluster)
		}
	}

	// statsz reports a non-zero dimension-cache hit rate after batches with
	// repeated foreign keys.
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.DimCacheHitRate == 0 || stats.Rows == 0 || stats.Requests == 0 {
		t.Fatalf("statsz = %+v", stats)
	}

	// Error paths.
	resp, _ = postPredict(t, ts, "absent", rows)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/models/m-nn/predict", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/models/m-nn/predict", "application/json", strings.NewReader(`{"rows":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty rows status %d", resp.StatusCode)
	}

	// Per-row error surfaces in the row, not the status.
	bad := []serve.Row{rows[0], {Fact: rows[0].Fact, FKs: []int64{12345, rows[0].FKs[1]}}}
	resp, bgot := postPredict(t, ts, "m-nn", bad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("per-row error status %d", resp.StatusCode)
	}
	if bgot.Predictions[0].Err != nil || bgot.Predictions[1].Err == nil {
		t.Fatalf("per-row errors = %+v", bgot.Predictions)
	}
	if code := bgot.Predictions[1].Err.Code; code != "unknown_foreign_key" {
		t.Fatalf("per-row error code = %q, want unknown_foreign_key", code)
	}

	// DELETE unregisters.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/m-gmm", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, _ = postPredict(t, ts, "m-gmm", rows)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict after delete status %d", resp.StatusCode)
	}
}

// TestServerConcurrentRequests hits the HTTP layer from many goroutines;
// with -race this pins the full serving stack's concurrency safety.
func TestServerConcurrentRequests(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 2, CacheEntries: 16})
	if err := reg.SaveNN("m", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(eng))
	defer ts.Close()
	rows, _ := factRows(t, spec, 64)
	_, want := postPredict(t, ts, "m", rows)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if g%4 == 3 {
					resp, err := http.Get(ts.URL + "/statsz")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					continue
				}
				payload := new(bytes.Buffer)
				if err := json.NewEncoder(payload).Encode(map[string]any{"rows": rowsJSON(rows)}); err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/v1/models/m/predict", "application/json", payload)
				if err != nil {
					t.Error(err)
					return
				}
				var got httpPredictResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for r := range got.Predictions {
					if *got.Predictions[r].Output != *want.Predictions[r].Output {
						t.Errorf("goroutine %d: row %d diverged", g, r)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var stats serve.Stats
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.DimCacheHitRate == 0 {
		t.Fatalf("stats after concurrent load: %+v", stats)
	}
}
