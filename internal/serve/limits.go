package serve

import (
	"sync"
	"time"

	"factorml/internal/api"
)

// Limits configures admission control on the HTTP surface. Every limit
// rejects *before* any work is admitted — the body is not read, no
// engine or stream state is touched — so overload degrades into fast
// structured 429 responses instead of unbounded queueing, and an
// admitted batch always runs to completion (the bit-identical-results
// discipline: a limit can refuse work, never truncate it mid-batch).
type Limits struct {
	// MaxInFlightPerModel bounds concurrently admitted predict requests
	// per model name. A request over the limit is rejected with 429
	// predict_overloaded and a Retry-After hint before its body is read.
	// 0 = unlimited.
	MaxInFlightPerModel int

	// MaxQueuedIngest bounds admitted-but-unfinished ingest batches
	// (the bounded ingest queue; enforced by internal/stream). A batch
	// over the limit is rejected with 429 ingest_overloaded before its
	// body is read, with no partial effects. 0 = unlimited.
	MaxQueuedIngest int

	// RetryAfterSeconds is the Retry-After hint carried by 429/503
	// responses. 0 selects api.DefaultRetryAfterSeconds.
	RetryAfterSeconds int

	// BatchWindow, when positive, enables dynamic cross-request batching:
	// the first predict request against a model opens a batch and waits up
	// to this long for concurrent requests to coalesce into one engine
	// call (see batcher.go). Per-row results are bit-identical to
	// unbatched serving — batching trades bounded added latency for
	// amortized per-batch overhead. 0 disables batching.
	BatchWindow time.Duration

	// MaxBatchRows caps a coalescing batch: a batch reaching this many
	// rows flushes immediately instead of waiting out the window, and a
	// single request at or over the cap bypasses the batcher entirely.
	// 0 = no cap (batches flush on the window alone). Only meaningful
	// with BatchWindow > 0.
	MaxBatchRows int
}

func (l Limits) retryAfter() int {
	if l.RetryAfterSeconds <= 0 {
		return api.DefaultRetryAfterSeconds
	}
	return l.RetryAfterSeconds
}

// Limiter is a fixed-capacity admission token pool. TryAcquire never
// blocks: admission control answers immediately rather than queueing.
// A nil *Limiter admits everything.
type Limiter struct{ sem chan struct{} }

// NewLimiter returns a limiter with n slots, or nil (unlimited) when
// n <= 0.
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		return nil
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// TryAcquire takes a slot if one is free, reporting whether it did.
func (l *Limiter) TryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by TryAcquire.
func (l *Limiter) Release() {
	if l != nil {
		<-l.sem
	}
}

// InFlight returns the number of currently held slots.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// modelLimiters hands out one Limiter per model name. Lookup after
// first use is a lock-free sync.Map load, keeping admission off the
// request path's lock budget.
type modelLimiters struct {
	capacity int
	m        sync.Map // model name -> *Limiter
	mu       sync.Mutex
}

func newModelLimiters(capacity int) *modelLimiters {
	if capacity <= 0 {
		return nil
	}
	return &modelLimiters{capacity: capacity}
}

func (ml *modelLimiters) get(model string) *Limiter {
	if ml == nil {
		return nil
	}
	if l, ok := ml.m.Load(model); ok {
		return l.(*Limiter)
	}
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if l, ok := ml.m.Load(model); ok {
		return l.(*Limiter)
	}
	l := NewLimiter(ml.capacity)
	ml.m.Store(model, l)
	return l
}
