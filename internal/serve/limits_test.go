package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"factorml/internal/data"
	"factorml/internal/nn"
	"factorml/internal/storage"
)

func TestLimiter(t *testing.T) {
	if l := NewLimiter(0); l != nil {
		t.Fatal("NewLimiter(0) should be nil (unlimited)")
	}
	var nilLim *Limiter
	if !nilLim.TryAcquire() {
		t.Fatal("nil limiter must admit everything")
	}
	nilLim.Release() // must not panic
	if nilLim.InFlight() != 0 {
		t.Fatal("nil limiter in-flight != 0")
	}

	l := NewLimiter(2)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("limiter of 2 refused its first two slots")
	}
	if l.TryAcquire() {
		t.Fatal("limiter admitted over capacity")
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestLimiterConcurrent(t *testing.T) {
	// Under arbitrary concurrency the number of simultaneously held slots
	// never exceeds capacity, and every acquired slot is released.
	const cap = 4
	l := NewLimiter(cap)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if l.TryAcquire() {
					if n := l.InFlight(); n > cap {
						t.Errorf("in-flight %d over capacity %d", n, cap)
					}
					l.Release()
				}
			}
		}()
	}
	wg.Wait()
	if n := l.InFlight(); n != 0 {
		t.Fatalf("leaked %d slots", n)
	}
}

// newLimitsServer stands up a server over a tiny star schema with one
// trained model and the given limits.
func newLimitsServer(t *testing.T, limits Limits) (*Server, *httptest.Server) {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	spec, err := data.Generate(db, "synth", data.SynthConfig{
		NS: 200, NR: []int{10}, DS: 2, DR: []int{2}, Seed: 7, WithTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{4}, Epochs: 1, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveNN("lim-nn", res.Net); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(reg, spec.Plan(), EngineConfig{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, WithLimits(limits))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestPredictAdmissionControl pins the per-model in-flight limit: a
// saturated model answers a structured 429 predict_overloaded with
// Retry-After before reading the request body, other models are
// unaffected, and a released slot admits the next request — so overload
// degrades into fast rejections within a bounded deadline instead of
// unbounded queueing.
func TestPredictAdmissionControl(t *testing.T) {
	srv, ts := newLimitsServer(t, Limits{MaxInFlightPerModel: 1, RetryAfterSeconds: 3})

	body := `{"rows":[{"fact":[0.1,0.2],"fks":[3]}]}`
	post := func(model string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/models/"+model+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&payload)
		return resp, payload
	}

	// Saturate the model deterministically by holding its only slot, as
	// an in-flight request would.
	lim := srv.predictLims.get("lim-nn")
	if !lim.TryAcquire() {
		t.Fatal("fresh limiter refused a slot")
	}
	resp, payload := post("lim-nn")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated predict status = %d, want 429 (payload %v)", resp.StatusCode, payload)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want the configured 3", ra)
	}
	errObj, _ := payload["error"].(map[string]any)
	if errObj == nil || errObj["code"] != "predict_overloaded" {
		t.Fatalf("429 payload = %v, want error.code predict_overloaded", payload)
	}
	details, _ := errObj["details"].(map[string]any)
	if details["model"] != "lim-nn" {
		t.Fatalf("429 details = %v, want the model name", details)
	}

	// The limit is per model: an unknown model's request is admitted (and
	// then 404s on lookup) while lim-nn is saturated.
	if resp, _ := post("other-model"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("other model status = %d, want 404 (admission is per model)", resp.StatusCode)
	}

	// Releasing the slot re-admits immediately.
	lim.Release()
	resp, payload = post("lim-nn")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release predict status = %d, want 200 (payload %v)", resp.StatusCode, payload)
	}

	// The slot taken by a completed request was returned.
	if n := srv.predictLims.get("lim-nn").InFlight(); n != 0 {
		t.Fatalf("in-flight after completion = %d, want 0", n)
	}
}

// TestPredictAdmissionUnderConcurrency drives many concurrent predicts
// at a limit of 1 and checks the invariant that matters: every request
// answers either 200 or a structured 429 — never a 5xx, never a hang —
// and at least the requests that raced an in-flight one got through.
func TestPredictAdmissionUnderConcurrency(t *testing.T) {
	_, ts := newLimitsServer(t, Limits{MaxInFlightPerModel: 1})

	rows := make([]string, 256)
	for i := range rows {
		rows[i] = fmt.Sprintf(`{"fact":[%g,%g],"fks":[%d]}`, float64(i)*0.01, 0.5, i%10)
	}
	body := `{"rows":[` + strings.Join(rows, ",") + `]}`

	const n = 16
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/models/lim-nn/predict", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				var payload struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil || payload.Error.Code != "predict_overloaded" {
					t.Errorf("429 without predict_overloaded envelope: %v %+v", err, payload)
				}
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != n {
		t.Fatalf("status mix %v, want only 200s and 429s", counts)
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("status mix %v: no request ever succeeded", counts)
	}
}
