package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"factorml/internal/serve"
)

// TestStatszPlannerSection: a provider installed with SetPlannerStats is
// embedded as the "planner" section of /statsz, and the section is absent
// until one is installed.
func TestStatszPlannerSection(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	_, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	srv := serve.NewServer(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	statsz := func() map[string]any {
		resp, err := http.Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("statsz status %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if _, ok := statsz()["planner"]; ok {
		t.Fatal("planner section present before SetPlannerStats")
	}
	srv.SetPlannerStats(func() any {
		return []map[string]any{{"model": "m-nn", "strategy": "factorized"}}
	})
	got, ok := statsz()["planner"]
	if !ok {
		t.Fatal("planner section missing after SetPlannerStats")
	}
	list, ok := got.([]any)
	if !ok || len(list) != 1 {
		t.Fatalf("planner section = %v", got)
	}
	if entry := list[0].(map[string]any); entry["strategy"] != "factorized" {
		t.Fatalf("planner entry = %v", entry)
	}
}
