package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factorml/internal/gmm"
	"factorml/internal/linalg"
	"factorml/internal/serve"
)

// envelope mirrors api.Envelope for black-box decoding.
type envelope struct {
	Error struct {
		Code    string         `json:"code"`
		Message string         `json:"message"`
		Details map[string]any `json:"details"`
	} `json:"error"`
}

// checkEnvelope asserts the unified error shape: the given status, a
// non-empty message, and the expected stable code.
func checkEnvelope(t *testing.T, resp *http.Response, body []byte, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, status, body)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope error body %s: %v", body, err)
	}
	if env.Error.Code != code {
		t.Fatalf("error code %q, want %q (body %s)", env.Error.Code, code, body)
	}
	if env.Error.Message == "" {
		t.Fatalf("empty error message in %s", body)
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%d response carries no Retry-After header", status)
		}
	}
}

// TestServerHTTPErrorPaths pins the unified error envelope
// {"error":{"code","message","details"}} with its stable machine-readable
// code on every endpoint failure mode: client mistakes are 4xx, per-row
// data problems are 200 with a structured row-level error, overload and
// not-enabled subsystems are 429/503 with Retry-After. Nothing here
// should ever surface as a 500 — that status is reserved for genuine
// server-side failures.
func TestServerHTTPErrorPaths(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	if err := reg.SaveNN("err-nn", net); err != nil {
		t.Fatal(err)
	}
	// A registered model too narrow for the engine's dimension tables:
	// predicts against it must answer model_incompatible, not 500.
	if err := reg.SaveGMM("err-narrow", &gmm.Model{K: 1, D: 1,
		Weights: []float64{1}, Means: [][]float64{{0}},
		Covs: []*linalg.Dense{linalg.NewDenseData(1, 1, []float64{1})}}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(eng))
	defer ts.Close()

	do := func(t *testing.T, method, path, body string) (*http.Response, []byte) {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		dec := json.NewDecoder(resp.Body)
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == nil {
			buf.Write(raw)
		}
		return resp, []byte(buf.String())
	}
	rows, _ := factRows(t, spec, 2)
	goodRow := fmt.Sprintf(`{"fact":[%g,%g,%g],"fks":[%d,%d]}`,
		rows[0].Fact[0], rows[0].Fact[1], rows[0].Fact[2], rows[0].FKs[0], rows[0].FKs[1])

	t.Run("malformed JSON body", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/models/err-nn/predict", `{"rows": [ {`)
		checkEnvelope(t, resp, body, http.StatusBadRequest, "invalid_request")
	})
	t.Run("unknown request field", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/models/err-nn/predict", `{"rows":[`+goodRow+`],"nonsense":1}`)
		checkEnvelope(t, resp, body, http.StatusBadRequest, "invalid_request")
	})
	t.Run("empty rows", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/models/err-nn/predict", `{"rows":[]}`)
		checkEnvelope(t, resp, body, http.StatusBadRequest, "invalid_request")
	})
	t.Run("unknown model name", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/models/no-such-model/predict", `{"rows":[`+goodRow+`]}`)
		checkEnvelope(t, resp, body, http.StatusNotFound, "model_not_found")
	})
	t.Run("incompatible model shape", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/models/err-narrow/predict", `{"rows":[`+goodRow+`]}`)
		checkEnvelope(t, resp, body, http.StatusBadRequest, "model_incompatible")
	})
	t.Run("oversized batch", func(t *testing.T) {
		// 33 MiB of leading whitespace trips the 32 MiB request-body cap
		// while staying valid JSON, so the rejection is attributable to
		// MaxBytesReader alone: a structured 413, not a 500.
		body := strings.Repeat(" ", 33<<20) + `{"rows":[` + goodRow + `]}`
		resp, got := do(t, "POST", "/v1/models/err-nn/predict", body)
		checkEnvelope(t, resp, got, http.StatusRequestEntityTooLarge, "payload_too_large")
	})
	t.Run("wrong feature width is a structured row error", func(t *testing.T) {
		// Shape problems are per-row data errors: the batch succeeds (200)
		// and the offending row carries the coded error, so one bad row
		// cannot fail a whole micro-batched request.
		resp, body := do(t, "POST", "/v1/models/err-nn/predict",
			`{"rows":[`+goodRow+`,{"fact":[1],"fks":[0,0]}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 with a row-level error", resp.StatusCode)
		}
		var payload struct {
			Predictions []struct {
				Err *struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			} `json:"predictions"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Fatal(err)
		}
		if payload.Predictions[0].Err != nil {
			t.Fatalf("good row has error %+v", payload.Predictions[0].Err)
		}
		if e := payload.Predictions[1].Err; e == nil || e.Code != "row_width_mismatch" {
			t.Fatalf("bad row error = %+v, want code row_width_mismatch", e)
		}
	})
	t.Run("wrong foreign key count is a structured row error", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/models/err-nn/predict", `{"rows":[{"fact":[1,2,3],"fks":[0]}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 with a row-level error", resp.StatusCode)
		}
		var payload struct {
			Predictions []struct {
				Err *struct {
					Code string `json:"code"`
				} `json:"error"`
			} `json:"predictions"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Fatal(err)
		}
		if e := payload.Predictions[0].Err; e == nil || e.Code != "fk_count_mismatch" {
			t.Fatalf("row error = %+v, want code fk_count_mismatch", e)
		}
	})
	t.Run("unknown foreign key is a structured row error", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/models/err-nn/predict",
			fmt.Sprintf(`{"rows":[{"fact":[1,2,3],"fks":[999999,%d]}]}`, rows[0].FKs[1]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 with a row-level error", resp.StatusCode)
		}
		var payload struct {
			Predictions []struct {
				Err *struct {
					Code string `json:"code"`
				} `json:"error"`
			} `json:"predictions"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Fatal(err)
		}
		if e := payload.Predictions[0].Err; e == nil || e.Code != "unknown_foreign_key" {
			t.Fatalf("row error = %+v, want code unknown_foreign_key", e)
		}
	})
	t.Run("ingest without a stream", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/ingest", `{"facts":[]}`)
		checkEnvelope(t, resp, body, http.StatusServiceUnavailable, "stream_disabled")
	})
	t.Run("refresh without a stream", func(t *testing.T) {
		resp, body := do(t, "POST", "/v1/refresh", `{}`)
		checkEnvelope(t, resp, body, http.StatusServiceUnavailable, "stream_disabled")
	})
	t.Run("get unknown model", func(t *testing.T) {
		resp, body := do(t, "GET", "/v1/models/no-such-model", "")
		checkEnvelope(t, resp, body, http.StatusNotFound, "model_not_found")
	})
	t.Run("delete unknown model", func(t *testing.T) {
		resp, body := do(t, "DELETE", "/v1/models/no-such-model", "")
		checkEnvelope(t, resp, body, http.StatusNotFound, "model_not_found")
	})
	t.Run("unknown route", func(t *testing.T) {
		resp, body := do(t, "GET", "/v2/nothing", "")
		checkEnvelope(t, resp, body, http.StatusNotFound, "not_found")
	})
	t.Run("wrong method on a known route", func(t *testing.T) {
		resp, body := do(t, "PUT", "/v1/ingest", "")
		checkEnvelope(t, resp, body, http.StatusMethodNotAllowed, "method_not_allowed")
	})
}

// TestServerReadiness pins the /readyz contract: not-ready answers a
// structured 503 not_ready (what the boot window serves), ready answers
// 200, and /healthz always answers 200 with the readiness flag.
func TestServerReadiness(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	_, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	srv := serve.NewServer(eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var raw json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&raw)
		return resp, raw
	}

	resp, _ := get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d, want 200", resp.StatusCode)
	}
	srv.SetReady(false)
	resp, body := get("/readyz")
	checkEnvelope(t, resp, body, http.StatusServiceUnavailable, "not_ready")
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while not ready = %d, want 200 (liveness != readiness)", resp.StatusCode)
	}
	var health struct {
		Ready bool `json:"ready"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Ready {
		t.Fatal("healthz reports ready while SetReady(false)")
	}
	srv.SetReady(true)
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after SetReady(true) = %d, want 200", resp.StatusCode)
	}
}

// TestBootingHandler pins the pre-construction boot window: alive on
// /healthz with ready:false, structured 503 not_ready everywhere else —
// what cmd/serve serves between opening its listener and finishing the
// registry load.
func TestBootingHandler(t *testing.T) {
	ts := httptest.NewServer(serve.BootingHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Ready  bool   `json:"ready"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Ready || health.Status != "booting" {
		t.Fatalf("booting /healthz = %d %+v, want 200 booting/not-ready", resp.StatusCode, health)
	}
	for _, path := range []string{"/readyz", "/v1/models", "/statsz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var raw json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&raw)
		resp.Body.Close()
		checkEnvelope(t, resp, raw, http.StatusServiceUnavailable, "not_ready")
	}
}
