package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factorml/internal/serve"
)

// TestServerHTTPErrorPaths pins the typed status codes of every predict
// failure mode: client mistakes are 4xx (400 for malformed or oversized
// bodies and shape mismatches, 404 for unknown models), per-row data
// problems are 200 with a row-level error, and the streaming endpoint
// answers 503 until a stream is mounted. Nothing here should ever surface
// as a 500 — that status is reserved for genuine server-side failures.
func TestServerHTTPErrorPaths(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	if err := reg.SaveNN("err-nn", net); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(eng))
	defer ts.Close()

	post := func(t *testing.T, path, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&payload)
		return resp, payload
	}
	rows, _ := factRows(t, spec, 2)
	goodRow := fmt.Sprintf(`{"fact":[%g,%g,%g],"fks":[%d,%d]}`,
		rows[0].Fact[0], rows[0].Fact[1], rows[0].Fact[2], rows[0].FKs[0], rows[0].FKs[1])

	t.Run("malformed JSON body", func(t *testing.T) {
		resp, payload := post(t, "/v1/models/err-nn/predict", `{"rows": [ {`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if payload["error"] == "" {
			t.Fatalf("payload %v carries no error", payload)
		}
	})
	t.Run("unknown request field", func(t *testing.T) {
		resp, _ := post(t, "/v1/models/err-nn/predict", `{"rows":[`+goodRow+`],"nonsense":1}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown model name", func(t *testing.T) {
		resp, _ := post(t, "/v1/models/no-such-model/predict", `{"rows":[`+goodRow+`]}`)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
	t.Run("wrong feature width", func(t *testing.T) {
		// Shape problems are per-row data errors: the batch succeeds (200)
		// and the offending row carries the error, so one bad row cannot
		// fail a whole micro-batched request.
		resp, payload := post(t, "/v1/models/err-nn/predict",
			`{"rows":[`+goodRow+`,{"fact":[1],"fks":[0,0]}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 with a row-level error", resp.StatusCode)
		}
		preds := payload["predictions"].([]any)
		if e := preds[0].(map[string]any)["error"]; e != nil {
			t.Fatalf("good row has error %v", e)
		}
		if e, _ := preds[1].(map[string]any)["error"].(string); !strings.Contains(e, "fact features") {
			t.Fatalf("bad row error = %q, want a feature-width message", e)
		}
	})
	t.Run("wrong foreign key count", func(t *testing.T) {
		resp, payload := post(t, "/v1/models/err-nn/predict",
			`{"rows":[{"fact":[1,2,3],"fks":[0]}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 with a row-level error", resp.StatusCode)
		}
		preds := payload["predictions"].([]any)
		if e, _ := preds[0].(map[string]any)["error"].(string); !strings.Contains(e, "direct dimension tables") {
			t.Fatalf("row error = %q, want a foreign-key-count message", e)
		}
	})
	t.Run("oversized batch", func(t *testing.T) {
		// 33 MiB of leading whitespace trips the 32 MiB request-body cap
		// while staying valid JSON, so the rejection is attributable to
		// MaxBytesReader alone: a 400, not a 500.
		body := strings.Repeat(" ", 33<<20) + `{"rows":[` + goodRow + `]}`
		resp, _ := post(t, "/v1/models/err-nn/predict", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("empty rows", func(t *testing.T) {
		resp, _ := post(t, "/v1/models/err-nn/predict", `{"rows":[]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("ingest without a stream", func(t *testing.T) {
		resp, _ := post(t, "/v1/ingest", `{"facts":[]}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", resp.StatusCode)
		}
	})
	t.Run("delete unknown model", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/no-such-model", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
}
