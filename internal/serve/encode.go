package serve

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// This file holds the append-style predict-response encoder of the
// raw-speed pass: the success path of POST /v1/models/{name}/predict is
// serialized by appending into one pooled byte buffer instead of
// reflecting over freshly-built pointer-field structs with json.Marshal.
// The output is compact JSON with the same field names and float
// formatting as encoding/json (predictionJSON stays the documented
// response shape, and the JSON-vs-binary equivalence tests decode through
// it); non-finite values — which encoding/json cannot represent at all —
// encode as null instead of failing the whole response.

// predictBuffers is the per-request scratch of handlePredict: decoded
// rows (with their flat backing arrays on the binary path), the engine's
// result buffer, the request body and the response bytes. Pooled so a
// steady-state predict request reuses one warm set end to end.
type predictBuffers struct {
	rows  []Row
	preds []Prediction
	facts []float64
	fks   []int64
	body  []byte
	out   []byte
}

var predictBufPool = sync.Pool{New: func() any { return new(predictBuffers) }}

func getPredictBuffers() *predictBuffers  { return predictBufPool.Get().(*predictBuffers) }
func putPredictBuffers(b *predictBuffers) { predictBufPool.Put(b) }

// sizedPreds returns the buffers' prediction slice resized to n rows,
// growing the backing array only when a bigger batch than any before
// arrives.
func (b *predictBuffers) sizedPreds(n int) []Prediction {
	if cap(b.preds) < n {
		b.preds = make([]Prediction, n)
	}
	b.preds = b.preds[:n]
	return b.preds
}

// appendJSONFloat appends f exactly as encoding/json would ('f' format
// inside [1e-6, 1e21), shortest 'e' format with a trimmed exponent
// outside), so hand-encoded and reflected responses are byte-identical
// for every finite value. NaN and infinities append null.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim the leading zero of a two-digit exponent: e-09 → e-9.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes and control characters (the only inputs here are model
// names and error messages, which are plain text).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch {
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r < 0x20:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[r>>4], hex[r&0xf])
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}

// appendPredictResponse encodes the predict success envelope — the same
// shape as predictResponse/predictionJSON — into dst and returns it.
func appendPredictResponse(dst []byte, info ModelInfo, preds []Prediction) []byte {
	dst = append(dst, `{"model":`...)
	dst = appendJSONString(dst, info.Name)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, string(info.Kind))
	dst = append(dst, `,"version":`...)
	dst = strconv.AppendInt(dst, int64(info.Version), 10)
	dst = append(dst, `,"predictions":[`...)
	for i := range preds {
		if i > 0 {
			dst = append(dst, ',')
		}
		p := &preds[i]
		switch {
		case p.Err != "":
			dst = append(dst, `{"error":{"code":`...)
			dst = appendJSONString(dst, p.Code)
			dst = append(dst, `,"message":`...)
			dst = appendJSONString(dst, p.Err)
			dst = append(dst, `,"details":{"row":`...)
			dst = strconv.AppendInt(dst, int64(i), 10)
			dst = append(dst, `}}}`...)
		case info.Kind == KindNN:
			dst = append(dst, `{"output":`...)
			dst = appendJSONFloat(dst, p.Output)
			dst = append(dst, '}')
		default: // KindGMM
			dst = append(dst, `{"log_prob":`...)
			dst = appendJSONFloat(dst, p.LogProb)
			dst = append(dst, `,"cluster":`...)
			dst = strconv.AppendInt(dst, int64(p.Cluster), 10)
			dst = append(dst, '}')
		}
	}
	return append(dst, `]}`...)
}
