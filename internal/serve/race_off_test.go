//go:build !race

package serve_test

// raceEnabled reports whether the race detector is compiled in. The
// zero-alloc pin skips under -race: the race runtime instruments
// sync.Pool operations with bookkeeping allocations that do not exist in
// production builds. The pin is enforced by the regular (non-race) test
// run, which CI always executes alongside the race run.
const raceEnabled = false
