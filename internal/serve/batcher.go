package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"factorml/internal/metrics"
)

// Dynamic cross-request batching: concurrent small predict requests
// against one model are coalesced into one engine batch, so the fan-out
// and per-batch bookkeeping amortize across requests instead of being
// paid per HTTP call. Correctness rests on a property the engine already
// guarantees — every prediction is a pure per-row function of (model
// version, row), independent of its neighbors in the batch — so a
// coalesced request's rows produce bit-identical results to a solo
// request's; TestBatchingEquivalence pins it.
//
// Semantics: the first request to arrive opens a pending batch and arms
// the window timer (Limits.BatchWindow); requests landing inside the
// window append their rows. The batch flushes when the window expires or
// its rows reach Limits.MaxBatchRows, whichever is first; each waiter
// receives exactly its own rows' slice of the result. Admission control
// is unchanged — limiter slots are taken before a request enters the
// batcher and held until its response, so MaxInFlightPerModel still
// bounds admitted requests, not batches. A batch outlives any single
// request's context, so a flush scores under context.Background() — a
// client disconnect never cancels a batch other requests are riding on.

// batcherSet hands out one batcher per model name, mirroring
// modelLimiters' lock-free steady state.
type batcherSet struct {
	eng     *Engine
	window  time.Duration
	maxRows int

	m  sync.Map // model name -> *batcher
	mu sync.Mutex

	// sizeHist, when metrics are installed, observes flushed batch sizes
	// (rows per engine call) per model.
	sizeHist *metrics.HistogramVec

	batches    atomic.Uint64
	requests   atomic.Uint64
	coalesced  atomic.Uint64 // requests that shared their batch with another
	rows       atomic.Uint64
	waitNs     atomic.Uint64 // batch open → flush, summed
	lastWaitNs atomic.Uint64
}

func newBatcherSet(eng *Engine, window time.Duration, maxRows int) *batcherSet {
	return &batcherSet{eng: eng, window: window, maxRows: maxRows}
}

func (bs *batcherSet) get(model string) *batcher {
	if b, ok := bs.m.Load(model); ok {
		return b.(*batcher)
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b, ok := bs.m.Load(model); ok {
		return b.(*batcher)
	}
	b := &batcher{set: bs, name: model}
	bs.m.Store(model, b)
	return b
}

// submit coalesces one request's rows into the model's pending batch and
// blocks until the batch containing them is scored.
func (bs *batcherSet) submit(model string, rows []Row) ([]Prediction, ModelInfo, error) {
	return bs.get(model).submit(rows)
}

// BatchingStats is the /statsz "batching" section.
type BatchingStats struct {
	Window            string  `json:"window"`
	MaxBatchRows      int     `json:"max_batch_rows,omitempty"`
	Batches           uint64  `json:"batches"`
	Requests          uint64  `json:"requests"`
	CoalescedRequests uint64  `json:"coalesced_requests"`
	Rows              uint64  `json:"rows"`
	AvgBatchRows      float64 `json:"avg_batch_rows"`
	AvgWaitMs         float64 `json:"avg_wait_ms"`
	LastWaitMs        float64 `json:"last_wait_ms"`
}

func (bs *batcherSet) stats() BatchingStats {
	s := BatchingStats{
		Window:            bs.window.String(),
		MaxBatchRows:      bs.maxRows,
		Batches:           bs.batches.Load(),
		Requests:          bs.requests.Load(),
		CoalescedRequests: bs.coalesced.Load(),
		Rows:              bs.rows.Load(),
		LastWaitMs:        float64(bs.lastWaitNs.Load()) / 1e6,
	}
	if s.Batches > 0 {
		s.AvgBatchRows = float64(s.Rows) / float64(s.Batches)
		s.AvgWaitMs = float64(bs.waitNs.Load()) / 1e6 / float64(s.Batches)
	}
	return s
}

// Collector adapts the batcher counters into Prometheus samples at
// scrape time (the batch-size histogram is a live instrument and needs
// no collector).
func (bs *batcherSet) Collector() metrics.Collector {
	return func(emit func(metrics.Sample)) {
		s := bs.stats()
		emit(metrics.Sample{Name: "factorml_batch_batches_total",
			Help: "Coalesced engine batches flushed.", Type: "counter", Value: float64(s.Batches)})
		emit(metrics.Sample{Name: "factorml_batch_requests_total",
			Help: "Predict requests routed through the batcher.", Type: "counter", Value: float64(s.Requests)})
		emit(metrics.Sample{Name: "factorml_batch_coalesced_requests_total",
			Help: "Predict requests that shared an engine batch with at least one other request.",
			Type: "counter", Value: float64(s.CoalescedRequests)})
		emit(metrics.Sample{Name: "factorml_batch_rows_total",
			Help: "Rows scored through coalesced batches.", Type: "counter", Value: float64(s.Rows)})
		emit(metrics.Sample{Name: "factorml_batch_wait_seconds",
			Help:  "Open-to-flush wait of the most recently flushed batch.",
			Value: float64(s.LastWaitMs) / 1e3})
	}
}

// pendingBatch is one forming batch: rows from every rider, one done
// latch, and the shared results the riders slice their answers out of.
type pendingBatch struct {
	rows    []Row
	nSubs   int
	opened  time.Time
	timer   *time.Timer
	flushed bool
	done    chan struct{}

	preds []Prediction
	info  ModelInfo
	err   error
}

// batcher coalesces requests for one model.
type batcher struct {
	set  *batcherSet
	name string

	mu      sync.Mutex
	pending *pendingBatch
}

func (b *batcher) submit(rows []Row) ([]Prediction, ModelInfo, error) {
	b.set.requests.Add(1)
	b.mu.Lock()
	pb := b.pending
	if pb == nil {
		pb = &pendingBatch{opened: time.Now(), done: make(chan struct{})}
		pb.timer = time.AfterFunc(b.set.window, func() { b.flush(pb) })
		b.pending = pb
	}
	off := len(pb.rows)
	pb.rows = append(pb.rows, rows...)
	pb.nSubs++
	full := b.set.maxRows > 0 && len(pb.rows) >= b.set.maxRows
	b.mu.Unlock()
	if full {
		b.flush(pb)
	}
	<-pb.done
	if pb.err != nil {
		return nil, ModelInfo{}, pb.err
	}
	return pb.preds[off : off+len(rows)], pb.info, nil
}

// flush scores the batch once, whether the window timer or a size
// trigger (or both, racing) got here first.
func (b *batcher) flush(pb *pendingBatch) {
	b.mu.Lock()
	if pb.flushed {
		b.mu.Unlock()
		return
	}
	pb.flushed = true
	if b.pending == pb {
		b.pending = nil
	}
	b.mu.Unlock()
	pb.timer.Stop()

	wait := time.Since(pb.opened)
	set := b.set
	set.batches.Add(1)
	set.rows.Add(uint64(len(pb.rows)))
	set.waitNs.Add(uint64(wait.Nanoseconds()))
	set.lastWaitNs.Store(uint64(wait.Nanoseconds()))
	if pb.nSubs > 1 {
		set.coalesced.Add(uint64(pb.nSubs))
	}
	if set.sizeHist != nil {
		set.sizeHist.With(b.name).Observe(float64(len(pb.rows)))
	}
	pb.preds, pb.info, pb.err = set.eng.PredictCtx(context.Background(), b.name, pb.rows)
	close(pb.done)
}
