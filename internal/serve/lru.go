package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// dimCache is a bounded LRU of per-dimension-tuple partial results, keyed
// by the tuple's primary key. Values are immutable once inserted (they are
// pure functions of the model and the dimension tuple), so concurrent
// readers may share them freely; the map and recency list are guarded by a
// mutex. Two goroutines that miss on the same key may both compute the
// value — the results are bit-identical, so whichever insert lands last
// wins without affecting any prediction.
type dimCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[int64]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type dimCacheItem struct {
	key int64
	val any
}

func newDimCache(capacity int) *dimCache {
	if capacity < 1 {
		capacity = 1
	}
	return &dimCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[int64]*list.Element, capacity),
	}
}

// get returns the cached value for key, marking it most recently used.
func (c *dimCache) get(key int64) (any, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var val any
	if ok {
		c.ll.MoveToFront(el)
		// Read val inside the critical section: put's existing-key branch
		// overwrites it under the same lock.
		val = el.Value.(*dimCacheItem).val
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return val, true
	}
	c.misses.Add(1)
	return nil, false
}

// put inserts a value, evicting the least recently used entry when full.
func (c *dimCache) put(key int64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*dimCacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*dimCacheItem).key)
	}
	c.items[key] = c.ll.PushFront(&dimCacheItem{key: key, val: val})
}

// len returns the number of cached entries.
func (c *dimCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns the cumulative hit/miss counts.
func (c *dimCache) counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
