package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// dimCache is a bounded LRU of per-dimension-tuple partial results, keyed
// by the tuple's primary key. Values are immutable once inserted (they are
// pure functions of the model and the dimension tuple), so concurrent
// readers may share them freely; the map and recency list are guarded by a
// mutex. Two goroutines that miss on the same key may both compute the
// value — the results are bit-identical, so whichever insert lands last
// wins without affecting any prediction.
//
// Every entry records the feature slice it was computed from. The
// resident index replaces (never mutates) a tuple's slice on update, so
// slice identity is a per-key freshness token: a get whose caller holds a
// different slice than the entry was derived from is a miss. This closes
// the race where a predictor computes a partial from pre-update features
// and inserts it after the update's invalidation — the stale entry can
// land, but it can never be served again.
type dimCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[int64]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type dimCacheItem struct {
	key int64
	val any
	src []float64 // the feature slice val was computed from
}

// sameFeats reports whether two feature slices are the identical
// copy-on-write snapshot (zero-width features have no content to go
// stale).
func sameFeats(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

func newDimCache(capacity int) *dimCache {
	if capacity < 1 {
		capacity = 1
	}
	return &dimCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[int64]*list.Element, capacity),
	}
}

// get returns the cached value for key, marking it most recently used.
// src must be the caller's current feature slice for the key: an entry
// derived from a different (stale) slice is a miss.
func (c *dimCache) get(key int64, src []float64) (any, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var val any
	if ok {
		item := el.Value.(*dimCacheItem)
		if sameFeats(item.src, src) {
			c.ll.MoveToFront(el)
			// Read val inside the critical section: put's existing-key
			// branch overwrites it under the same lock.
			val = item.val
		} else {
			ok = false
		}
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return val, true
	}
	c.misses.Add(1)
	return nil, false
}

// put inserts a value computed from src, evicting the least recently used
// entry when full.
func (c *dimCache) put(key int64, val any, src []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		item := el.Value.(*dimCacheItem)
		item.val = val
		item.src = src
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*dimCacheItem).key)
	}
	c.items[key] = c.ll.PushFront(&dimCacheItem{key: key, val: val, src: src})
}

// remove drops the entry for key if present, reporting whether it existed.
// The streaming path calls this when a dimension tuple is updated, so
// exactly the cached partials derived from the stale tuple are discarded.
func (c *dimCache) remove(key int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	return true
}

// len returns the number of cached entries.
func (c *dimCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// counters returns the cumulative hit/miss counts.
func (c *dimCache) counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
