package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factorml/internal/api"
	"factorml/internal/metrics"
	"factorml/internal/monitor"
	"factorml/internal/trace"
	"factorml/internal/xlog"
)

// maxPredictBody bounds a predict request body (32 MiB).
const maxPredictBody = 32 << 20

// Server is the HTTP front end over a Registry and an Engine. The
// surface is split into the unversioned control plane and the versioned
// data plane (see internal/api):
//
//	GET    /healthz                  — liveness + model count + readiness flag
//	GET    /readyz                   — readiness (503 not_ready until SetReady)
//	GET    /statsz                   — engine counters (cache hit rate, latency)
//	GET    /metrics                  — Prometheus text format (with WithMetrics)
//	GET    /v1/models                — list registered models
//	GET    /v1/models/{name}         — one model's metadata (incl. lineage)
//	GET    /v1/models/{name}/health  — drift/staleness verdict (with WithMonitor)
//	DELETE /v1/models/{name}         — unregister and delete a model
//	POST   /v1/models/{name}/predict — score a batch of normalized rows
//	POST   /v1/ingest                — streaming deltas (when enabled)
//	POST   /v1/refresh               — fold ingested deltas into the models (when enabled)
//
// Every non-2xx response is the structured api.Envelope; 429/503 carry
// Retry-After.
type Server struct {
	reg    *Registry
	eng    *Engine
	start  time.Time
	mux    *http.ServeMux
	ready  atomic.Bool
	limits Limits

	// predictLims hands out per-model in-flight limiters (nil when
	// Limits.MaxInFlightPerModel is 0).
	predictLims *modelLimiters

	// batchers coalesces concurrent predict requests per model (nil when
	// Limits.BatchWindow is 0).
	batchers *batcherSet

	// Metrics instruments (nil without WithMetrics). Updated with atomics
	// only — the registry lock is never taken on the request path.
	mreg       *metrics.Registry
	httpReqs   *metrics.CounterVec   // {endpoint, code}
	httpLat    *metrics.HistogramVec // {endpoint}
	rejections *metrics.CounterVec   // {endpoint, reason}

	// tracer assembles per-request traces (nil without WithTracer);
	// logger writes structured access/error logs (nil without WithLogger).
	tracer *trace.Tracer
	logger *xlog.Logger

	// mon is the model-health monitor (nil without WithMonitor).
	mon *monitor.Monitor

	ingestMu     sync.RWMutex
	ingest       http.Handler // nil until SetIngestHandler
	refresh      http.Handler // nil until SetRefreshHandler
	streamStats  func() any   // nil until SetStreamStats
	plannerStats func() any   // nil until SetPlannerStats
	walStats     func() any   // nil until SetWALStats
}

// Option customizes NewServer.
type Option func(*Server)

// WithLimits installs admission control (see Limits). The ingest-queue
// bound is enforced by the streaming subsystem; it is carried here so
// one Limits value configures the whole surface.
func WithLimits(l Limits) Option {
	return func(s *Server) { s.limits = l }
}

// WithTracer installs a request tracer: every response gains an
// X-Request-Id (and traceparent) header, sampled requests assemble a
// span tree across handler → admission → engine fan-out → cache
// lookups, and the flight recorder is exported at GET /debug/traces
// and GET /debug/traces/slow.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithLogger installs a leveled JSON access logger; request lines carry
// the same trace ID as the X-Request-Id header and /debug/traces.
func WithLogger(l *xlog.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithMonitor installs the model-health monitor: GET
// /v1/models/{name}/health serves its verdicts, /statsz gains a
// "health" section, and — with WithMetrics — drift/staleness gauges are
// exported at scrape time. The monitor is also installed into the
// engine for sampled prediction-quality telemetry.
func WithMonitor(m *monitor.Monitor) Option {
	return func(s *Server) { s.mon = m }
}

// WithMetrics mounts reg's Prometheus exposition at GET /metrics,
// instruments every endpoint with request counters and latency
// histograms, and registers a scrape-time collector over the engine's
// counters. Hot-path updates are atomic adds on pre-created children —
// no new locks.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) { s.mreg = reg }
}

// NewServer wires the handlers. The engine's registry is used for the
// model endpoints. The server starts ready; a boot sequence that wants a
// not-ready window serves BootingHandler until construction finishes
// (see cmd/serve).
func NewServer(eng *Engine, opts ...Option) *Server {
	s := &Server{reg: eng.Registry(), eng: eng, start: time.Now(), mux: http.NewServeMux()}
	s.ready.Store(true)
	for _, opt := range opts {
		opt(s)
	}
	s.predictLims = newModelLimiters(s.limits.MaxInFlightPerModel)
	if s.limits.BatchWindow > 0 {
		s.batchers = newBatcherSet(eng, s.limits.BatchWindow, s.limits.MaxBatchRows)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleGetModel)
	s.mux.HandleFunc("GET /v1/models/{name}/health", s.handleModelHealth)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleDeleteModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/refresh", s.handleRefresh)
	s.mux.HandleFunc("/", s.handleFallback)
	if s.mreg != nil {
		s.mux.Handle("GET /metrics", s.mreg.Handler())
		s.httpReqs = s.mreg.CounterVec("factorml_http_requests_total",
			"HTTP requests served, by endpoint and status code.", "endpoint", "code")
		s.httpLat = s.mreg.HistogramVec("factorml_http_request_duration_seconds",
			"HTTP request latency in seconds, by endpoint.", nil, "endpoint")
		s.rejections = s.mreg.CounterVec("factorml_admission_rejections_total",
			"Requests rejected by admission control before any work was admitted.", "endpoint", "reason")
		s.mreg.Collect(EngineCollector(s.eng))
		s.mreg.Collect(BuildInfoCollector(s.start))
		if s.batchers != nil {
			s.batchers.sizeHist = s.mreg.HistogramVec("factorml_batch_size",
				"Rows per coalesced engine batch, by model.",
				[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, "model")
			s.mreg.Collect(s.batchers.Collector())
		}
		if s.mon != nil {
			s.mreg.Collect(s.mon.MetricsCollector())
		}
	}
	if s.mon != nil {
		s.eng.SetMonitor(s.mon)
	}
	if s.tracer != nil {
		h := s.tracer.DebugHandler()
		s.mux.Handle("GET /debug/traces", h)
		s.mux.Handle("GET /debug/traces/slow", h)
	}
	return s
}

// Tracer returns the request tracer installed by WithTracer (nil
// without one), so a debug listener can mount the same flight recorder
// off the data-plane port.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// EngineCollector adapts the engine's /statsz counters into Prometheus
// samples at scrape time — the snapshot path already synchronizes, so
// the predict hot path gains no new locks.
func EngineCollector(eng *Engine) metrics.Collector {
	return func(emit func(metrics.Sample)) {
		st := eng.Stats()
		g := func(name, help string, v float64) {
			emit(metrics.Sample{Name: name, Help: help, Value: v})
		}
		c := func(name, help string, v float64) {
			emit(metrics.Sample{Name: name, Help: help, Type: "counter", Value: v})
		}
		g("factorml_engine_models", "Registered models.", float64(st.Models))
		c("factorml_engine_predict_requests_total", "Predict batches scored.", float64(st.Requests))
		c("factorml_engine_predict_rows_total", "Prediction rows scored.", float64(st.Rows))
		c("factorml_engine_dim_cache_hits_total", "Per-dimension-tuple partial cache hits.", float64(st.DimCacheHits))
		c("factorml_engine_dim_cache_misses_total", "Per-dimension-tuple partial cache misses.", float64(st.DimCacheMisses))
		g("factorml_engine_dim_cache_hit_rate", "Cache hit fraction since boot.", st.DimCacheHitRate)
		g("factorml_engine_dim_cache_entries", "Live cache entries across models.", float64(st.DimCacheEntries))
		c("factorml_engine_dim_invalidations_total", "Cache entries dropped by streaming dimension updates.", float64(st.DimInvalidations))
		c("factorml_engine_predict_seconds_total", "Cumulative in-engine predict time.", float64(st.PredictNsTotal)/1e9)
	}
}

// SetReady flips the readiness state reported by /readyz and /healthz.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetIngestHandler mounts h at POST /v1/ingest. The handler is owned by
// the streaming subsystem (internal/stream), which defines the wire
// format and enforces the bounded ingest queue; until one is installed
// the endpoint answers 503 stream_disabled.
func (s *Server) SetIngestHandler(h http.Handler) {
	s.ingestMu.Lock()
	s.ingest = h
	s.ingestMu.Unlock()
}

// SetRefreshHandler mounts h at POST /v1/refresh (the on-demand model
// refresh of the streaming subsystem); until one is installed the
// endpoint answers 503 stream_disabled.
func (s *Server) SetRefreshHandler(h http.Handler) {
	s.ingestMu.Lock()
	s.refresh = h
	s.ingestMu.Unlock()
}

// SetStreamStats installs a provider whose value is embedded as the
// "stream" section of /statsz (deltas applied, refreshes triggered, …).
func (s *Server) SetStreamStats(fn func() any) {
	s.ingestMu.Lock()
	s.streamStats = fn
	s.ingestMu.Unlock()
}

// SetPlannerStats installs a provider whose value is embedded as the
// "planner" section of /statsz — the cost-based strategy decisions the
// attached models' refreshes reuse (chosen strategy and per-strategy
// estimates; see internal/plan).
func (s *Server) SetPlannerStats(fn func() any) {
	s.ingestMu.Lock()
	s.plannerStats = fn
	s.ingestMu.Unlock()
}

// SetWALStats installs a provider whose value is embedded as the "wal"
// section of /statsz — the write-ahead log's durability watermarks (last
// LSN, snapshot LSN, segment/byte footprint, fsync totals).
func (s *Server) SetWALStats(fn func() any) {
	s.ingestMu.Lock()
	s.walStats = fn
	s.ingestMu.Unlock()
}

// Metrics returns the Prometheus registry installed by WithMetrics (nil
// without one), so callers can register additional collectors —
// internal/stream contributes queue depth and planner decisions.
func (s *Server) Metrics() *metrics.Registry { return s.mreg }

// Monitor returns the health monitor installed by WithMonitor (nil
// without one), so the boot sequence can attach models and the
// streaming subsystem can feed it the change feed.
func (s *Server) Monitor() *monitor.Monitor { return s.mon }

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.ingestMu.RLock()
	h := s.ingest
	s.ingestMu.RUnlock()
	if h == nil {
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeStreamDisabled,
			"streaming ingestion is not enabled on this server")
		return
	}
	h.ServeHTTP(w, r)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	s.ingestMu.RLock()
	h := s.refresh
	s.ingestMu.RUnlock()
	if h == nil {
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeStreamDisabled,
			"streaming ingestion is not enabled on this server")
		return
	}
	h.ServeHTTP(w, r)
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// endpointLabel maps a ServeMux pattern to a stable metric label.
var endpointLabels = map[string]string{
	"GET /healthz":                   "healthz",
	"GET /readyz":                    "readyz",
	"GET /statsz":                    "statsz",
	"GET /metrics":                   "metrics",
	"GET /v1/models":                 "models_list",
	"GET /v1/models/{name}":          "model_get",
	"GET /v1/models/{name}/health":   "model_health",
	"DELETE /v1/models/{name}":       "model_delete",
	"POST /v1/models/{name}/predict": "predict",
	"POST /v1/ingest":                "ingest",
	"POST /v1/refresh":               "refresh",
	"GET /debug/traces":              "debug_traces",
	"GET /debug/traces/slow":         "debug_traces_slow",
}

// ServeHTTP implements http.Handler. With a tracer installed, every
// request is assigned an X-Request-Id (the trace ID, adopted from an
// incoming W3C traceparent when present); sampled requests assemble a
// trace whose root span is renamed to the stable endpoint label once
// routing has resolved it, and land in the flight recorder at Finish.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.httpReqs == nil && s.tracer == nil && s.logger == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	var tr *trace.Trace
	if s.tracer != nil {
		ctx, t, reqID := s.tracer.StartRequest(r.Context(), r.Method+" "+r.URL.Path, r.Header.Get("traceparent"))
		tr = t
		w.Header().Set("X-Request-Id", reqID)
		if tr != nil {
			w.Header().Set("traceparent", tr.Traceparent())
		}
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(rec, r)
	elapsed := time.Since(start)
	endpoint, ok := endpointLabels[r.Pattern]
	if !ok {
		endpoint = "other"
	}
	if s.httpReqs != nil {
		s.httpReqs.With(endpoint, strconv.Itoa(rec.status)).Inc()
		s.httpLat.With(endpoint).Observe(elapsed.Seconds())
	}
	if tr != nil {
		tr.SetName(endpoint)
		tr.Finish(rec.status)
	}
	if s.logger != nil {
		lvl := s.logger.Info
		if rec.status >= 500 {
			lvl = s.logger.Error
		}
		lvl(r.Context(), "http_request",
			"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"status", rec.status, "duration_ms", float64(elapsed.Microseconds())/1e3)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) { api.WriteJSON(w, status, v) }

// knownPaths are the routes the fallback distinguishes a wrong-method
// hit (405) from an unknown route (404) on. Predict and model paths are
// matched by prefix.
var knownPaths = map[string]bool{
	"/healthz": true, "/readyz": true, "/statsz": true, "/metrics": true,
	"/v1/models": true, "/v1/ingest": true, "/v1/refresh": true,
}

// handleFallback unifies the mux's built-in plain-text 404/405 responses
// into the structured envelope: a known path hit with an unregistered
// method answers 405 method_not_allowed, anything else 404 not_found.
func (s *Server) handleFallback(w http.ResponseWriter, r *http.Request) {
	if knownPaths[r.URL.Path] || strings.HasPrefix(r.URL.Path, "/v1/models/") {
		api.WriteError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method %s is not allowed for %s", r.Method, r.URL.Path)
		return
	}
	api.WriteError(w, http.StatusNotFound, api.CodeNotFound, "no route %s %s", r.Method, r.URL.Path)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"ready":          s.ready.Load(),
		"models":         s.reg.Len(),
		"dimensions":     s.eng.DimensionTables(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeNotReady,
			"server is loading models; not ready to serve")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "models": s.reg.Len()})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.ingestMu.RLock()
	streamStats := s.streamStats
	plannerStats := s.plannerStats
	walStats := s.walStats
	s.ingestMu.RUnlock()
	payload := struct {
		Stats
		UptimeSeconds float64   `json:"uptime_seconds"`
		Build         BuildInfo `json:"build"`
		Trace         any       `json:"trace,omitempty"`
		Batching      any       `json:"batching,omitempty"`
		Stream        any       `json:"stream,omitempty"`
		Planner       any       `json:"planner,omitempty"`
		WAL           any       `json:"wal,omitempty"`
		Health        any       `json:"health,omitempty"`
	}{
		Stats:         s.eng.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         CurrentBuild(),
	}
	if s.tracer != nil {
		payload.Trace = s.tracer.Stats()
	}
	if s.batchers != nil {
		payload.Batching = s.batchers.stats()
	}
	if s.mon != nil {
		payload.Health = s.mon.HealthAll()
	}
	if streamStats != nil {
		payload.Stream = streamStats()
	}
	if plannerStats != nil {
		payload.Planner = plannerStats()
	}
	if walStats != nil {
		payload.WAL = walStats()
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.List()})
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := s.reg.Get(name)
	if !ok {
		api.WriteError(w, http.StatusNotFound, api.CodeModelNotFound, "no model %q", name)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleModelHealth serves the monitor's verdict for one model: 503
// monitoring_disabled without a monitor, 404 for a model the registry
// does not hold, and an "unmonitored" verdict for a registered model
// the monitor has no baseline for.
func (s *Server) handleModelHealth(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.mon == nil {
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeMonitoringDisabled,
			"model health monitoring is not enabled on this server")
		return
	}
	info, ok := s.reg.Get(name)
	if !ok {
		api.WriteError(w, http.StatusNotFound, api.CodeModelNotFound, "no model %q", name)
		return
	}
	h, ok := s.mon.Health(name)
	if !ok {
		h = monitor.Health{
			Model: name, Kind: string(info.Kind), Version: info.Version,
			Verdict: monitor.VerdictUnmonitored,
			Reasons: []string{"model is not attached to the health monitor"},
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Delete(name); err != nil {
		if IsUnknownModel(err) {
			api.WriteError(w, http.StatusNotFound, api.CodeModelNotFound, "%v", err)
			return
		}
		api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// predictRequest is the POST /v1/models/{name}/predict body.
type predictRequest struct {
	Rows []predictRowJSON `json:"rows"`
}

type predictRowJSON struct {
	Fact []float64 `json:"fact"`
	FKs  []int64   `json:"fks"`
}

// predictionJSON is one row's result. Value fields are pointers so the
// response carries exactly the fields meaningful for the model kind;
// a failed row carries the structured error (code + message) while the
// rest of the batch proceeds.
type predictionJSON struct {
	Output  *float64   `json:"output,omitempty"`
	LogProb *float64   `json:"log_prob,omitempty"`
	Cluster *int       `json:"cluster,omitempty"`
	Err     *api.Error `json:"error,omitempty"`
}

type predictResponse struct {
	Model       string           `json:"model"`
	Kind        Kind             `json:"kind"`
	Version     int              `json:"version"`
	Predictions []predictionJSON `json:"predictions"`
}

// rejectOverloaded answers a 429 with the configured Retry-After hint
// and counts the rejection.
func (s *Server) rejectOverloaded(w http.ResponseWriter, endpoint, code string, details map[string]any, format string, args ...any) {
	if s.rejections != nil {
		s.rejections.With(endpoint, code).Inc()
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.limits.retryAfter()))
	api.WriteErrorDetails(w, http.StatusTooManyRequests, code, details, format, args...)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Admission first, before a byte of the body is read: overload is
	// rejected with zero work admitted, never mid-batch. The admission
	// decision is a root-level span so a traced rejection (always kept by
	// the flight recorder's error retention) shows where the request died.
	_, asp := trace.Start(r.Context(), "admission")
	asp.SetAttr("model", name)
	if lim := s.predictLims.get(name); lim != nil {
		if !lim.TryAcquire() {
			asp.SetBool("admitted", false)
			asp.Fail(api.CodePredictOverloaded)
			asp.End()
			s.rejectOverloaded(w, "predict", api.CodePredictOverloaded,
				map[string]any{"model": name, "max_in_flight": s.limits.MaxInFlightPerModel},
				"model %q has %d predict requests in flight; retry later", name, s.limits.MaxInFlightPerModel)
			return
		}
		defer lim.Release()
	}
	asp.SetBool("admitted", true)
	asp.End()
	binary := isBinaryContentType(r.Header.Get("Content-Type"))
	bufs := getPredictBuffers()
	defer putPredictBuffers(bufs)
	var rows []Row
	if binary {
		buf := bytes.NewBuffer(bufs.body[:0])
		_, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxPredictBody))
		bufs.body = buf.Bytes()[:0] // retain grown capacity for reuse
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				api.WriteErrorDetails(w, http.StatusRequestEntityTooLarge, api.CodePayloadTooLarge,
					map[string]any{"limit_bytes": tooBig.Limit}, "request body over %d bytes", tooBig.Limit)
				return
			}
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest, "reading request: %v", err)
			return
		}
		if err := decodeBinaryRequest(buf.Bytes(), bufs); err != nil {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest, "decoding binary request: %v", err)
			return
		}
		rows = bufs.rows
	} else {
		var req predictRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPredictBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				api.WriteErrorDetails(w, http.StatusRequestEntityTooLarge, api.CodePayloadTooLarge,
					map[string]any{"limit_bytes": tooBig.Limit}, "request body over %d bytes", tooBig.Limit)
				return
			}
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest, "decoding request: %v", err)
			return
		}
		if len(req.Rows) == 0 {
			api.WriteError(w, http.StatusBadRequest, api.CodeInvalidRequest, "request has no rows")
			return
		}
		if cap(bufs.rows) < len(req.Rows) {
			bufs.rows = make([]Row, len(req.Rows))
		}
		bufs.rows = bufs.rows[:len(req.Rows)]
		for i, rr := range req.Rows {
			bufs.rows[i] = Row{Fact: rr.Fact, FKs: rr.FKs}
		}
		rows = bufs.rows
	}
	// Score: through the batcher when coalescing is on and the request is
	// small enough to benefit (a request at or over the batch cap would
	// flush alone anyway — it goes straight to the engine with its own
	// context), otherwise directly into the pooled result buffer.
	var preds []Prediction
	var info ModelInfo
	var err error
	if s.batchers != nil && (s.limits.MaxBatchRows <= 0 || len(rows) < s.limits.MaxBatchRows) {
		preds, info, err = s.batchers.submit(name, rows)
	} else {
		preds = bufs.sizedPreds(len(rows))
		info, err = s.eng.PredictIntoCtx(r.Context(), name, rows, preds)
	}
	if err != nil {
		switch {
		case IsUnknownModel(err):
			api.WriteError(w, http.StatusNotFound, api.CodeModelNotFound, "%v", err)
		case IsIncompatibleModel(err):
			api.WriteError(w, http.StatusBadRequest, api.CodeModelIncompatible, "%v", err)
		default:
			api.WriteError(w, http.StatusInternalServerError, api.CodeInternal, "%v", err)
		}
		return
	}
	if binary {
		bufs.out = appendBinaryResponse(bufs.out[:0], info, preds)
		w.Header().Set("Content-Type", BinaryContentType)
	} else {
		bufs.out = appendPredictResponse(bufs.out[:0], info, preds)
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(bufs.out)
}

// isBinaryContentType reports whether ct selects the binary predict wire
// format (parameters after a ';' are ignored).
func isBinaryContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == BinaryContentType
}

// BootingHandler answers for a server that is still constructing its
// real handler (loading the registry, pinning dimension tables,
// attaching models): /healthz reports alive-but-not-ready, and
// everything else answers 503 not_ready with Retry-After — so a process
// can open its listener before the (potentially long) boot completes
// and load balancers see an honest readiness signal instead of refused
// connections.
func BootingHandler() http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, map[string]any{
			"status":         "booting",
			"ready":          false,
			"uptime_seconds": time.Since(start).Seconds(),
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, http.StatusServiceUnavailable, api.CodeNotReady,
			"server is loading models; not ready to serve")
	})
	return mux
}
