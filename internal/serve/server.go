package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// maxPredictBody bounds a predict request body (32 MiB).
const maxPredictBody = 32 << 20

// Server is the HTTP JSON front end over a Registry and an Engine.
//
//	GET    /healthz                  — liveness + model count
//	GET    /statsz                   — engine counters (cache hit rate, latency)
//	GET    /v1/models                — list registered models
//	GET    /v1/models/{name}         — one model's metadata
//	DELETE /v1/models/{name}         — unregister and delete a model
//	POST   /v1/models/{name}/predict — score a batch of normalized rows
//	POST   /v1/ingest                — streaming deltas (when enabled)
type Server struct {
	reg   *Registry
	eng   *Engine
	start time.Time
	mux   *http.ServeMux

	ingestMu     sync.RWMutex
	ingest       http.Handler // nil until SetIngestHandler
	streamStats  func() any   // nil until SetStreamStats
	plannerStats func() any   // nil until SetPlannerStats
}

// NewServer wires the handlers. The engine's registry is used for the
// model endpoints.
func NewServer(eng *Engine) *Server {
	s := &Server{reg: eng.Registry(), eng: eng, start: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleGetModel)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleDeleteModel)
	s.mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	return s
}

// SetIngestHandler mounts h at POST /v1/ingest. The handler is owned by
// the streaming subsystem (internal/stream), which defines the wire
// format; until one is installed the endpoint answers 503.
func (s *Server) SetIngestHandler(h http.Handler) {
	s.ingestMu.Lock()
	s.ingest = h
	s.ingestMu.Unlock()
}

// SetStreamStats installs a provider whose value is embedded as the
// "stream" section of /statsz (deltas applied, refreshes triggered, …).
func (s *Server) SetStreamStats(fn func() any) {
	s.ingestMu.Lock()
	s.streamStats = fn
	s.ingestMu.Unlock()
}

// SetPlannerStats installs a provider whose value is embedded as the
// "planner" section of /statsz — the cost-based strategy decisions the
// attached models' refreshes reuse (chosen strategy and per-strategy
// estimates; see internal/plan).
func (s *Server) SetPlannerStats(fn func() any) {
	s.ingestMu.Lock()
	s.plannerStats = fn
	s.ingestMu.Unlock()
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.ingestMu.RLock()
	h := s.ingest
	s.ingestMu.RUnlock()
	if h == nil {
		writeError(w, http.StatusServiceUnavailable, "streaming ingestion is not enabled on this server")
		return
	}
	h.ServeHTTP(w, r)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"models":         s.reg.Len(),
		"dimensions":     s.eng.DimensionTables(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.ingestMu.RLock()
	streamStats := s.streamStats
	plannerStats := s.plannerStats
	s.ingestMu.RUnlock()
	payload := struct {
		Stats
		Stream  any `json:"stream,omitempty"`
		Planner any `json:"planner,omitempty"`
	}{Stats: s.eng.Stats()}
	if streamStats != nil {
		payload.Stream = streamStats()
	}
	if plannerStats != nil {
		payload.Planner = plannerStats()
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.reg.List()})
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no model %q", name)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Delete(name); err != nil {
		status := http.StatusInternalServerError
		if IsUnknownModel(err) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// predictRequest is the POST /v1/models/{name}/predict body.
type predictRequest struct {
	Rows []predictRowJSON `json:"rows"`
}

type predictRowJSON struct {
	Fact []float64 `json:"fact"`
	FKs  []int64   `json:"fks"`
}

// predictionJSON is one row's result. Value fields are pointers so the
// response carries exactly the fields meaningful for the model kind.
type predictionJSON struct {
	Output  *float64 `json:"output,omitempty"`
	LogProb *float64 `json:"log_prob,omitempty"`
	Cluster *int     `json:"cluster,omitempty"`
	Err     string   `json:"error,omitempty"`
}

type predictResponse struct {
	Model       string           `json:"model"`
	Kind        Kind             `json:"kind"`
	Version     int              `json:"version"`
	Predictions []predictionJSON `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPredictBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "request has no rows")
		return
	}
	rows := make([]Row, len(req.Rows))
	for i, rr := range req.Rows {
		rows[i] = Row{Fact: rr.Fact, FKs: rr.FKs}
	}
	preds, info, err := s.eng.Predict(name, rows)
	if err != nil {
		status := http.StatusBadRequest
		if IsUnknownModel(err) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	resp := predictResponse{
		Model: info.Name, Kind: info.Kind, Version: info.Version,
		Predictions: make([]predictionJSON, len(preds)),
	}
	for i := range preds {
		p := &preds[i]
		if p.Err != "" {
			resp.Predictions[i].Err = p.Err
			continue
		}
		switch info.Kind {
		case KindNN:
			resp.Predictions[i].Output = &p.Output
		case KindGMM:
			resp.Predictions[i].LogProb = &p.LogProb
			resp.Predictions[i].Cluster = &p.Cluster
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
