package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"factorml/internal/gmm"
	"factorml/internal/monitor"
	"factorml/internal/nn"
	"factorml/internal/storage"
)

// Kind identifies a model family in the registry.
type Kind string

const (
	// KindGMM is a Gaussian mixture (gmm.Model).
	KindGMM Kind = "gmm"
	// KindNN is a feed-forward network (nn.Network).
	KindNN Kind = "nn"
)

// ModelInfo describes one registered model.
type ModelInfo struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Version counts saves under this name, starting at 1; it bumps on
	// every overwrite, which is what lets the engine invalidate its cached
	// per-model state.
	Version int `json:"version"`
	// Dim is the model's joined feature width.
	Dim int `json:"dim"`
	// SavedAt is when this version was written.
	SavedAt time.Time `json:"saved_at"`
	// Lineage is the version's provenance — trained-at, training row
	// count, planner decision, and the baseline statistics drift scoring
	// compares against. Optional: models saved before lineage existed
	// (or without monitoring) load with a nil Lineage.
	Lineage *monitor.Lineage `json:"lineage,omitempty"`
}

// envelopeFormat versions the blob wrapper around the model payloads (the
// payloads carry their own format versions via gmm/nn serialization).
const envelopeFormat = 1

// modelBlobPrefix namespaces model blobs within the database's blob store.
const modelBlobPrefix = "model."

type envelope struct {
	Format      int              `json:"format"`
	Name        string           `json:"name"`
	Kind        Kind             `json:"kind"`
	Version     int              `json:"version"`
	SavedAtUnix int64            `json:"saved_at_unix"`
	Lineage     *monitor.Lineage `json:"lineage,omitempty"`
	Payload     json.RawMessage  `json:"payload"`
}

type entry struct {
	info ModelInfo
	gmm  *gmm.Model  // set when info.Kind == KindGMM
	nn   *nn.Network // set when info.Kind == KindNN
}

// Registry is a concurrency-safe catalog of named, versioned models
// persisted as blobs in a storage database directory. Every model is kept
// deserialized in memory; saving writes through to disk, and NewRegistry
// loads everything back on boot.
type Registry struct {
	mu     sync.RWMutex
	db     *storage.Database
	models map[string]*entry
}

var modelNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]{0,63}$`)

// ValidModelName reports whether name is acceptable to the registry:
// 1-64 characters, alphanumeric plus '_' and '-', starting alphanumeric.
func ValidModelName(name string) bool { return modelNameRE.MatchString(name) }

// NewRegistry opens the model registry of a database directory, loading
// every persisted model into memory.
func NewRegistry(db *storage.Database) (*Registry, error) {
	r := &Registry{db: db, models: make(map[string]*entry)}
	names, err := db.BlobNames()
	if err != nil {
		return nil, err
	}
	for _, blobName := range names {
		if !strings.HasPrefix(blobName, modelBlobPrefix) {
			continue
		}
		blob, err := db.GetBlob(blobName)
		if err != nil {
			return nil, err
		}
		e, err := decodeEnvelope(blob)
		if err != nil {
			return nil, fmt.Errorf("serve: loading %q: %w", blobName, err)
		}
		if blobName != modelBlobPrefix+e.info.Name {
			return nil, fmt.Errorf("serve: blob %q contains model %q", blobName, e.info.Name)
		}
		r.models[e.info.Name] = e
	}
	return r, nil
}

func decodeEnvelope(blob []byte) (*entry, error) {
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("decoding model envelope: %w", err)
	}
	if env.Format != envelopeFormat {
		return nil, fmt.Errorf("unsupported model envelope format %d", env.Format)
	}
	if !ValidModelName(env.Name) {
		return nil, fmt.Errorf("invalid model name %q in envelope", env.Name)
	}
	e := &entry{info: ModelInfo{
		Name: env.Name, Kind: env.Kind, Version: env.Version,
		SavedAt: time.Unix(env.SavedAtUnix, 0).UTC(),
		Lineage: env.Lineage,
	}}
	switch env.Kind {
	case KindGMM:
		m, err := gmm.LoadModel(bytes.NewReader(env.Payload))
		if err != nil {
			return nil, err
		}
		e.gmm = m
		e.info.Dim = m.D
	case KindNN:
		n, err := nn.LoadNetwork(bytes.NewReader(env.Payload))
		if err != nil {
			return nil, err
		}
		e.nn = n
		e.info.Dim = n.InputDim()
	default:
		return nil, fmt.Errorf("unknown model kind %q", env.Kind)
	}
	return e, nil
}

// save persists a model under name, bumping its version. savePayload must
// write the model's serialized form. lin, when non-nil, replaces the
// version's lineage; a nil lin carries the previous version's lineage
// forward, so a plain re-save never loses provenance.
func (r *Registry) save(name string, kind Kind, dim int, lin *monitor.Lineage, savePayload func(io.Writer) error, attach func(*entry)) error {
	if !ValidModelName(name) {
		return fmt.Errorf("serve: invalid model name %q (want %s)", name, modelNameRE)
	}
	var payload bytes.Buffer
	if err := savePayload(&payload); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	version := 1
	if prev, ok := r.models[name]; ok {
		version = prev.info.Version + 1
		if lin == nil && prev.info.Kind == kind {
			lin = prev.info.Lineage
		}
	}
	now := time.Now().UTC().Truncate(time.Second)
	env := envelope{
		Format: envelopeFormat, Name: name, Kind: kind, Version: version,
		SavedAtUnix: now.Unix(), Lineage: lin, Payload: bytes.TrimSpace(payload.Bytes()),
	}
	blob, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return err
	}
	if err := r.db.PutBlob(modelBlobPrefix+name, blob); err != nil {
		return err
	}
	e := &entry{info: ModelInfo{Name: name, Kind: kind, Version: version, Dim: dim, SavedAt: now, Lineage: lin}}
	attach(e)
	r.models[name] = e
	return nil
}

// SaveGMM persists a mixture model under name (creating version 1, or
// bumping the version of an existing model of any kind). The registry keeps
// a reference to m; callers must not mutate it afterwards. Lineage of a
// previous same-kind version carries forward unchanged.
func (r *Registry) SaveGMM(name string, m *gmm.Model) error {
	return r.SaveGMMLineage(name, m, nil)
}

// SaveGMMLineage is SaveGMM with fresh per-version lineage metadata
// (trained-at, training rows, planner decision, baseline statistics).
func (r *Registry) SaveGMMLineage(name string, m *gmm.Model, lin *monitor.Lineage) error {
	if m == nil {
		return fmt.Errorf("serve: nil GMM model")
	}
	return r.save(name, KindGMM, m.D, lin, m.Save, func(e *entry) { e.gmm = m })
}

// SaveNN persists a network under name. The registry keeps a reference to
// n; callers must not mutate it afterwards. Lineage of a previous
// same-kind version carries forward unchanged.
func (r *Registry) SaveNN(name string, n *nn.Network) error {
	return r.SaveNNLineage(name, n, nil)
}

// SaveNNLineage is SaveNN with fresh per-version lineage metadata.
func (r *Registry) SaveNNLineage(name string, n *nn.Network, lin *monitor.Lineage) error {
	if n == nil {
		return fmt.Errorf("serve: nil NN model")
	}
	return r.save(name, KindNN, n.InputDim(), lin, n.Save, func(e *entry) { e.nn = n })
}

// errUnknownModel marks lookups of unregistered names (mapped to 404 by the
// HTTP layer).
type errUnknownModel struct{ name string }

func (e errUnknownModel) Error() string { return fmt.Sprintf("serve: no model %q", e.name) }

// IsUnknownModel reports whether err is a lookup of an unregistered model.
func IsUnknownModel(err error) bool {
	_, ok := err.(errUnknownModel)
	return ok
}

// GMM returns the named mixture model. The model is shared: treat it as
// read-only.
func (r *Registry) GMM(name string) (*gmm.Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	if !ok {
		return nil, errUnknownModel{name}
	}
	if e.info.Kind != KindGMM {
		return nil, fmt.Errorf("serve: model %q is a %s, not a gmm", name, e.info.Kind)
	}
	return e.gmm, nil
}

// NN returns the named network. The network is shared: treat it as
// read-only.
func (r *Registry) NN(name string) (*nn.Network, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	if !ok {
		return nil, errUnknownModel{name}
	}
	if e.info.Kind != KindNN {
		return nil, fmt.Errorf("serve: model %q is a %s, not a nn", name, e.info.Kind)
	}
	return e.nn, nil
}

// Get returns the named model's metadata.
func (r *Registry) Get(name string) (ModelInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	if !ok {
		return ModelInfo{}, false
	}
	return e.info, true
}

// List returns the metadata of every registered model, sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Delete removes the named model from memory and disk.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; !ok {
		return errUnknownModel{name}
	}
	if err := r.db.DeleteBlob(modelBlobPrefix + name); err != nil {
		return err
	}
	delete(r.models, name)
	return nil
}

// lookup returns the full entry for the engine's hot path.
func (r *Registry) lookup(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	return e, ok
}
