package serve_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/serve"
	"factorml/internal/storage"
)

// TestEngineRoundTrip is the end-to-end contract: train → save → close →
// reopen → serve, asserting served predictions against in-process dense
// evaluation (exact to summation order) and bit-identical behaviour across
// worker counts and cache states.
func TestEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, spec := testStar(t, dir)
	net, model := trainModels(t, db, spec)
	rows, joined := factRows(t, spec, 0)

	// In-process expectations over the assembled joined vectors, computed
	// before anything is serialized.
	wantNN := make([]float64, len(rows))
	wantLP := make([]float64, len(rows))
	wantCl := make([]int, len(rows))
	for i, x := range joined {
		wantNN[i] = net.Predict(x)
		wantLP[i] = model.LogProb(x)
		wantCl[i] = model.Predict(x)
	}

	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveNN("m-nn", net); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveGMM("m-gmm", model); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot from disk.
	db2, err := storage.Open(dir, storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var dims []*storage.Table
	for _, r := range spec.Rs {
		tbl, err := db2.Table(r.Schema().Name)
		if err != nil {
			t.Fatal(err)
		}
		dims = append(dims, tbl)
	}
	reg2, err := serve.NewRegistry(db2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(reg2, mustPlan(t, dims), serve.EngineConfig{NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}

	preds, info, err := eng.Predict("m-nn", rows)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != serve.KindNN {
		t.Fatalf("info = %+v", info)
	}
	for i := range preds {
		if preds[i].Err != "" {
			t.Fatalf("row %d: %s", i, preds[i].Err)
		}
		if d := math.Abs(preds[i].Output - wantNN[i]); d > 1e-9*(1+math.Abs(wantNN[i])) {
			t.Fatalf("row %d: served %v, dense in-process %v (diff %g)", i, preds[i].Output, wantNN[i], d)
		}
	}
	gpreds, _, err := eng.Predict("m-gmm", rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gpreds {
		if d := math.Abs(gpreds[i].LogProb - wantLP[i]); d > 1e-9*(1+math.Abs(wantLP[i])) {
			t.Fatalf("row %d: served log-prob %v, dense %v (diff %g)", i, gpreds[i].LogProb, wantLP[i], d)
		}
		if gpreds[i].Cluster != wantCl[i] {
			t.Fatalf("row %d: served cluster %d, dense %d", i, gpreds[i].Cluster, wantCl[i])
		}
	}

	// Worker-count and cache-state sweeps are bit-identical to the
	// sequential, cold-cache run above — including a cache small enough to
	// evict constantly and a warm repeat of the same batch.
	for _, cfg := range []serve.EngineConfig{
		{NumWorkers: 2},
		{NumWorkers: 4, BatchRows: 7},
		{NumWorkers: 8, CacheEntries: 2},
		{NumWorkers: 3, CacheEntries: 1, BatchRows: 1},
	} {
		eng2, err := serve.NewEngine(reg2, mustPlan(t, dims), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // cold, then warm
			p2, _, err := eng2.Predict("m-nn", rows)
			if err != nil {
				t.Fatal(err)
			}
			g2, _, err := eng2.Predict("m-gmm", rows)
			if err != nil {
				t.Fatal(err)
			}
			for i := range p2 {
				if p2[i].Output != preds[i].Output {
					t.Fatalf("cfg %+v pass %d row %d: nn output %v vs %v, want bit-identical",
						cfg, pass, i, p2[i].Output, preds[i].Output)
				}
				if g2[i].LogProb != gpreds[i].LogProb || g2[i].Cluster != gpreds[i].Cluster {
					t.Fatalf("cfg %+v pass %d row %d: gmm %v/%d vs %v/%d, want bit-identical",
						cfg, pass, i, g2[i].LogProb, g2[i].Cluster, gpreds[i].LogProb, gpreds[i].Cluster)
				}
			}
		}
	}
}

// TestEngineCacheHitRate checks the factorization payoff signal: a batch
// with repeated foreign keys must hit the dimension cache.
func TestEngineCacheHitRate(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	if err := reg.SaveNN("m", net); err != nil {
		t.Fatal(err)
	}
	rows, _ := factRows(t, spec, 0) // 600 rows over 25 and 10 dimension tuples
	if _, _, err := eng.Predict("m", rows); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.DimCacheHitRate == 0 {
		t.Fatalf("hit rate is zero on a batch with repeated fks: %+v", s)
	}
	// 600 rows × 2 dims with 35 distinct dimension tuples: at most 35
	// misses, everything else hits.
	if s.DimCacheMisses > 35 || s.DimCacheHits < 1000 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Requests != 1 || s.Rows != 600 || s.Models != 1 {
		t.Fatalf("request counters: %+v", s)
	}
	if s.PredictNsTotal == 0 || s.AvgRowMicros == 0 {
		t.Fatalf("latency counters: %+v", s)
	}
}

// TestEnginePerRowErrors checks that bad rows fail individually without
// failing the batch.
func TestEnginePerRowErrors(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	if err := reg.SaveNN("m", net); err != nil {
		t.Fatal(err)
	}
	rows, _ := factRows(t, spec, 1)
	good := rows[0]
	batch := []serve.Row{
		good,
		{Fact: good.Fact, FKs: []int64{9999, good.FKs[1]}}, // dangling fk
		{Fact: good.Fact[:1], FKs: good.FKs},               // wrong fact width
		{Fact: good.Fact, FKs: good.FKs[:1]},               // wrong fk count
		good,
	}
	preds, _, err := eng.Predict("m", batch)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Err != "" || preds[4].Err != "" {
		t.Fatalf("good rows failed: %q / %q", preds[0].Err, preds[4].Err)
	}
	if preds[0].Output != preds[4].Output {
		t.Fatal("identical rows scored differently")
	}
	if !strings.Contains(preds[1].Err, "unknown foreign key 9999") {
		t.Fatalf("dangling fk error = %q", preds[1].Err)
	}
	if !strings.Contains(preds[2].Err, "fact features") {
		t.Fatalf("width error = %q", preds[2].Err)
	}
	if !strings.Contains(preds[3].Err, "foreign keys") {
		t.Fatalf("fk count error = %q", preds[3].Err)
	}

	// Batch-level failures.
	if _, _, err := eng.Predict("absent", batch); !serve.IsUnknownModel(err) {
		t.Fatalf("unknown model: %v", err)
	}
	tiny, err := nn.NewNetwork([]int{2, 3, 1}, nn.Sigmoid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveNN("tiny", tiny); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Predict("tiny", batch); err == nil {
		t.Fatal("engine accepted a model narrower than the dimension tables")
	}
}

// TestEngineInvalidation checks that re-saving a model under the same name
// invalidates the engine's cached partials.
func TestEngineInvalidation(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	if err := reg.SaveNN("m", net); err != nil {
		t.Fatal(err)
	}
	rows, joined := factRows(t, spec, 10)
	p1, info1, err := eng.Predict("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	// Replace with a freshly initialized (untrained) network: predictions
	// must change and match the new model, not the stale caches.
	fresh, err := nn.NewNetwork([]int{net.InputDim(), 8, 1}, nn.Sigmoid, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveNN("m", fresh); err != nil {
		t.Fatal(err)
	}
	p2, info2, err := eng.Predict("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != info1.Version+1 {
		t.Fatalf("versions: %d then %d", info1.Version, info2.Version)
	}
	for i := range p2 {
		want := fresh.Predict(joined[i])
		if d := math.Abs(p2[i].Output - want); d > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("row %d after re-save: %v, want %v", i, p2[i].Output, want)
		}
	}
	if p1[0].Output == p2[0].Output {
		t.Fatal("re-saved model served identical predictions — stale state?")
	}

	// Delete + re-save restarts version numbering at 1; the engine must
	// still notice the replacement (entry identity, not version number).
	if err := reg.Delete("m"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Predict("m", rows); !serve.IsUnknownModel(err) {
		t.Fatalf("predict after delete: %v", err)
	}
	other, err := nn.NewNetwork([]int{net.InputDim(), 8, 1}, nn.Sigmoid, 123)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveNN("m", other); err != nil {
		t.Fatal(err)
	}
	if info, _ := reg.Get("m"); info.Version != 1 {
		t.Fatalf("version after delete + re-save = %d, want 1", info.Version)
	}
	p3, _, err := eng.Predict("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p3 {
		want := other.Predict(joined[i])
		if d := math.Abs(p3[i].Output - want); d > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("row %d after delete + re-save: %v, want %v (stale state served)", i, p3[i].Output, want)
		}
	}

	// Deleting a model prunes its engine state: no phantom cache counters
	// survive in Stats.
	if err := reg.Delete("m"); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Models != 0 || s.DimCacheEntries != 0 || s.DimCacheHits != 0 || s.DimCacheMisses != 0 {
		t.Fatalf("stats after deleting the only model: %+v", s)
	}
}

// TestEngineConcurrentPredict fires concurrent batches (and a concurrent
// re-save) at one engine; with -race this pins the engine's locking.
func TestEngineConcurrentPredict(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, model := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 2, CacheEntries: 8})
	if err := reg.SaveNN("m-nn", net); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveGMM("m-gmm", model); err != nil {
		t.Fatal(err)
	}
	rows, _ := factRows(t, spec, 200)
	want, _, err := eng.Predict("m-nn", rows)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch g % 3 {
				case 0, 1:
					got, _, err := eng.Predict("m-nn", rows)
					if err != nil {
						t.Error(err)
						return
					}
					for r := range got {
						if got[r].Output != want[r].Output {
							t.Errorf("concurrent predict diverged at row %d", r)
							return
						}
					}
				case 2:
					if _, _, err := eng.Predict("m-gmm", rows); err != nil {
						t.Error(err)
						return
					}
					eng.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

// mustPlan wraps leaf dimension tables in a one-hop dimension plan.
func mustPlan(t *testing.T, dims []*storage.Table) *join.DimPlan {
	t.Helper()
	pl, err := join.ExpandDims(dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}
