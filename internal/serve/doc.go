// Package serve is the factorized inference subsystem: it turns models
// trained by the gmm/nn packages into a persistent, queryable service while
// carrying the paper's core trick — do dimension-tuple work once, not once
// per joined row — from training into prediction.
//
// Three layers:
//
//	Registry — named, versioned GMM/NN models persisted as blobs in the
//	           storage catalog directory; models saved by one process are
//	           loaded on boot by the next.
//	Engine   — batched prediction over normalized fact tuples without
//	           materializing the join: foreign keys are resolved against
//	           resident dimension indexes (internal/join), per-dimension-
//	           tuple partial results (NN layer-1 partial pre-activations,
//	           GMM quadratic-form contributions) are memoized in a bounded
//	           LRU, and request batches fan out across the internal/parallel
//	           worker pool in fixed-size chunks.
//	Server   — an HTTP JSON API: POST /v1/models/{name}/predict,
//	           GET /v1/models, GET /healthz, GET /statsz.
//
// Determinism contract: chunk geometry never depends on the worker count,
// per-row outputs land at their row index, and every cached partial is a
// pure function of (model, dimension tuple) — so a batch's predictions are
// bit-identical for every EngineConfig.NumWorkers value and for every cache
// state (cold, warm, or evicted-and-refilled). Factorized scoring is exact
// versus in-process dense evaluation (nn.Network.Predict, gmm.Model.LogProb)
// up to floating-point summation order; the round-trip tests pin both
// properties.
package serve
