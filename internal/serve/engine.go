package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"factorml/internal/api"
	"factorml/internal/core"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/monitor"
	"factorml/internal/nn"
	"factorml/internal/parallel"
	"factorml/internal/trace"
)

// errIncompatibleModel marks a registered model whose shape cannot be
// scored over this engine's dimension hierarchy (mapped to 400
// model_incompatible by the HTTP layer, versus 500 for genuine faults).
type errIncompatibleModel struct{ msg string }

func (e errIncompatibleModel) Error() string { return e.msg }

// IsIncompatibleModel reports whether err marks a model/hierarchy shape
// mismatch.
func IsIncompatibleModel(err error) bool {
	_, ok := err.(errIncompatibleModel)
	return ok
}

// DefaultCacheEntries is the per-(model, dimension relation) LRU capacity
// when EngineConfig.CacheEntries is zero.
const DefaultCacheEntries = 4096

// DefaultBatchRows is the micro-batch chunk size when
// EngineConfig.BatchRows is zero. Like every chunk-geometry constant in
// this codebase it is independent of the worker count.
const DefaultBatchRows = 64

// EngineConfig tunes the prediction engine.
type EngineConfig struct {
	// NumWorkers sizes the worker pool a request batch fans out over:
	// 0 = all CPUs, 1 = sequential, n > 1 = n workers. Predictions are
	// bit-identical for every value.
	NumWorkers int

	// CacheEntries bounds each per-(model, dimension relation) LRU of
	// cached partial results (entries, not bytes). 0 selects
	// DefaultCacheEntries. Cache hits and misses never change a prediction
	// — cached partials are pure functions of the model and the dimension
	// tuple — only its cost.
	CacheEntries int

	// BatchRows is the number of request rows per worker chunk. 0 selects
	// DefaultBatchRows. The chunk geometry depends only on this knob and
	// the batch size, never on NumWorkers.
	BatchRows int

	// Float32 selects float32 storage for the GMM scoring kernel's
	// per-component matrices (means, blocked inverse covariances) with
	// float64 accumulation — roughly halving the kernel's memory traffic at
	// a bounded accuracy cost (≤1e-5 relative on log-densities for
	// well-conditioned models; see gmm.NewScorerF32). Off by default: the
	// float64 path is the one covered by the bit-identical equivalence
	// guarantees. NN models are unaffected.
	Float32 bool
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.BatchRows <= 0 {
		c.BatchRows = DefaultBatchRows
	}
	return c
}

// Row is one normalized prediction request: the fact tuple's own features
// plus one foreign key per *direct* dimension table (in the engine's
// dimension order). Sub-dimension hops of a snowflake hierarchy are
// resolved by the engine from the pinned dimension tuples; the joined
// feature vector is never materialized.
type Row struct {
	Fact []float64
	FKs  []int64
}

// Prediction is the engine's result for one row. Exactly one of the value
// fields is meaningful, selected by the model kind; Err is set when the row
// failed (unknown foreign key, wrong width) while the rest of the batch
// proceeded.
type Prediction struct {
	// Output is the network output (KindNN).
	Output float64
	// LogProb is ln p(x) under the mixture (KindGMM).
	LogProb float64
	// Cluster is the most responsible mixture component (KindGMM).
	Cluster int
	// Err describes a per-row failure; empty on success.
	Err string
	// Code is the stable machine-readable code of the failure (one of the
	// api.Code* row-error constants); empty on success.
	Code string
}

// modelState is the engine's prepared per-model-version scoring state.
type modelState struct {
	info ModelInfo
	// ent is the registry entry this state was built from. Staleness is
	// detected by entry identity, not version number: every save installs
	// a fresh (immutable) entry, and a delete followed by a re-save under
	// the same name restarts version numbering at 1, which version
	// comparison alone would miss.
	ent     *entry
	p       core.Partition
	net     *nn.Network // KindNN
	scorer  *gmm.Scorer // KindGMM
	caches  []*dimCache // one per dimension relation
	scratch sync.Pool   // *predScratch
}

// predScratch is per-goroutine scoring scratch.
type predScratch struct {
	fwd     *nn.ForwardScratch
	parts   [][]float64
	qcaches [][]core.QuadCache
	gsc     *gmm.ScoreScratch
	pks     []int64
	pos     []int
	ops     core.Ops
}

// Engine scores request batches against registered models over a fixed
// dimension hierarchy (a one-hop star or a flattened snowflake plan),
// without materializing the join. It is safe for concurrent use.
type Engine struct {
	reg *Registry
	cfg EngineConfig
	// idxs holds one resident index per plan node; nodes referencing the
	// same table share one index (and hence one in-memory copy), while
	// cached partials stay per node — each node is its own partition part.
	idxs    []*join.ResidentIndex
	rv      *join.Resolver
	nDirect int
	// dimWidths[j] is the feature width of plan node j; sumDR is their
	// total, so a model of dimension D has a fact part of D - sumDR.
	dimWidths []int
	sumDR     int

	mu     sync.Mutex
	states map[string]*modelState

	// mon, when set, receives sampled prediction-quality telemetry
	// (atomic pointer: a nil load costs one branch and zero allocations,
	// keeping the monitoring-off hot path untouched).
	mon atomic.Pointer[monitor.Monitor]

	requests         atomic.Uint64
	rows             atomic.Uint64
	predictNs        atomic.Uint64
	dimInvalidations atomic.Uint64
}

// NewEngine builds an engine over the flattened dimension hierarchy (join
// order: the model's feature layout must be [fact features, node 0
// features, …] — the same preorder the training-side join streams). The
// dimension tables are pinned in memory, mirroring the resident-relation
// assumption of the training-side block-nested-loops join; a table
// referenced from several places in the hierarchy is pinned once and
// shared. Use join.ExpandDims to build the plan from the direct dimension
// tables.
func NewEngine(reg *Registry, plan *join.DimPlan, cfg EngineConfig) (*Engine, error) {
	if reg == nil {
		return nil, fmt.Errorf("serve: engine needs a registry")
	}
	if plan == nil || len(plan.Tables) == 0 {
		return nil, fmt.Errorf("serve: engine needs at least one dimension table")
	}
	e := &Engine{reg: reg, cfg: cfg.withDefaults(), states: make(map[string]*modelState)}
	idxs, err := plan.BuildIndexes(nil)
	if err != nil {
		return nil, err
	}
	e.idxs = idxs
	for _, ix := range idxs {
		e.dimWidths = append(e.dimWidths, ix.Width())
		e.sumDR += ix.Width()
	}
	rv, err := join.NewResolver(plan.Parent, plan.Ref, e.idxs)
	if err != nil {
		return nil, err
	}
	e.rv = rv
	e.nDirect = rv.NumDirect()
	return e, nil
}

// Registry returns the registry the engine serves from.
func (e *Engine) Registry() *Registry { return e.reg }

// SetMonitor installs (or, with nil, removes) the health monitor that
// receives sampled prediction-quality values. Recording is passive:
// predictions are bit-identical with and without a monitor.
func (e *Engine) SetMonitor(m *monitor.Monitor) { e.mon.Store(m) }

// DimensionTables returns the names of the engine's dimension tables in
// join order.
func (e *Engine) DimensionTables() []string {
	names := make([]string, len(e.idxs))
	for i, ix := range e.idxs {
		names[i] = ix.Name()
	}
	return names
}

// Index returns the engine's resident index over the named dimension
// table, so the streaming subsystem can share one in-memory copy of the
// dimension data instead of building its own.
func (e *Engine) Index(table string) (*join.ResidentIndex, bool) {
	for _, ix := range e.idxs {
		if ix.Name() == table {
			return ix, true
		}
	}
	return nil, false
}

// ApplyDimUpdate installs new foreign keys and features for one dimension
// tuple in the engine's resident index and invalidates exactly the cached
// partials derived from it: the (model, node, key) LRU entries of every
// prepared model state, at every plan node referencing the table (a
// mid-level snowflake table may appear under several parents). Later
// predictions probing that key recompute against the new features, so a
// dimension update is observable without a restart — and without touching
// any other cache entry. subs must carry the tuple's sub-dimension keys
// when the table has any (nil for a leaf table).
func (e *Engine) ApplyDimUpdate(table string, rid int64, subs []int64, feats []float64) (isNew bool, err error) {
	first := -1
	for i, ix := range e.idxs {
		if ix.Name() == table {
			first = i
			break
		}
	}
	if first < 0 {
		return false, fmt.Errorf("serve: engine has no dimension table %q", table)
	}
	isNew, err = e.idxs[first].Upsert(rid, subs, feats)
	if err != nil {
		return false, err
	}
	if !isNew {
		e.mu.Lock()
		for _, st := range e.states {
			for j, ix := range e.idxs {
				if ix.Name() == table && st.caches[j].remove(rid) {
					e.dimInvalidations.Add(1)
				}
			}
		}
		e.mu.Unlock()
	}
	return isNew, nil
}

// state returns the prepared scoring state for the named model, rebuilding
// it when the registry holds a newer version (saves bump versions, so a
// re-saved model invalidates its cached partials).
func (e *Engine) state(name string) (*modelState, error) {
	ent, ok := e.reg.lookup(name)
	if !ok {
		// Drop any state left over from a deleted model so its caches are
		// reclaimed (Stats prunes the remaining cases).
		e.mu.Lock()
		delete(e.states, name)
		e.mu.Unlock()
		return nil, errUnknownModel{name}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.states[name]; ok && st.ent == ent {
		return st, nil
	}
	dS := ent.info.Dim - e.sumDR
	if dS < 0 {
		return nil, errIncompatibleModel{fmt.Sprintf("serve: model %q has dimension %d, smaller than the %d dimension-table features",
			name, ent.info.Dim, e.sumDR)}
	}
	p := core.NewPartition(append([]int{dS}, e.dimWidths...))
	st := &modelState{info: ent.info, ent: ent, p: p}
	switch ent.info.Kind {
	case KindNN:
		st.net = ent.nn
	case KindGMM:
		var scorer *gmm.Scorer
		var err error
		if e.cfg.Float32 {
			scorer, err = ent.gmm.NewScorerF32(p)
		} else {
			scorer, err = ent.gmm.NewScorer(p)
		}
		if err != nil {
			return nil, err
		}
		st.scorer = scorer
	default:
		return nil, fmt.Errorf("serve: model %q has unknown kind %q", name, ent.info.Kind)
	}
	st.caches = make([]*dimCache, len(e.idxs))
	for j := range st.caches {
		st.caches[j] = newDimCache(e.cfg.CacheEntries)
	}
	q := len(e.idxs)
	st.scratch.New = func() any {
		sc := &predScratch{
			parts:   make([][]float64, q),
			qcaches: make([][]core.QuadCache, q),
			pks:     make([]int64, q),
			pos:     make([]int, q),
		}
		if st.net != nil {
			sc.fwd = st.net.NewForwardScratch()
		}
		if st.scorer != nil {
			sc.gsc = st.scorer.NewScratch()
		}
		return sc
	}
	e.states[name] = st
	return st, nil
}

// dimPartial returns dimension relation j's cached partial for the tuple
// with primary key fk, computing and caching it on a miss: the NN layer-1
// partial pre-activation t_m (§VI-A1) or the K GMM quadratic-form caches
// (Eq. 7-12). The value is a pure function of (model version, dimension
// features), so hits, misses and racing double-computations all yield
// identical bits. The current features are looked up first and passed to
// the cache as its freshness token (see dimCache): an entry computed from
// a since-replaced feature slice — including one racing a streaming
// dimension update — is never served.
// A traced request additionally records one "cache.lookup" span per
// probe (table + hit/miss), the deepest level of the request trace; the
// zero Span passed on the untraced path makes every span call a no-op.
func (e *Engine) dimPartial(st *modelState, sc *predScratch, j int, fk int64, psp trace.Span) (any, error) {
	var lsp trace.Span
	if psp.Active() {
		lsp = psp.Child("cache.lookup")
		lsp.SetAttr("table", e.idxs[j].Name())
	}
	feats, ok := e.idxs[j].Lookup(fk)
	if !ok {
		lsp.Fail("unknown foreign key")
		lsp.End()
		return nil, fmt.Errorf("unknown foreign key %d for dimension table %q", fk, e.idxs[j].Name())
	}
	if v, ok := st.caches[j].get(fk, feats); ok {
		lsp.SetBool("hit", true)
		lsp.End()
		return v, nil
	}
	var v any
	if st.net != nil {
		t := make([]float64, st.net.HiddenWidth())
		st.net.PartialPreAct(t, st.p.Offs[1+j], feats)
		v = t
	} else {
		qc := make([]core.QuadCache, st.scorer.K())
		st.scorer.FillDimCaches(qc, 1+j, feats, &sc.ops)
		v = qc
	}
	st.caches[j].put(fk, v, feats)
	lsp.SetBool("hit", false)
	lsp.End()
	return v, nil
}

// scoreRow fills out for one row. Row-level failures land in out.Err with
// a stable machine-readable code in out.Code. out is fully overwritten —
// callers may hand in recycled Prediction buffers.
func (e *Engine) scoreRow(st *modelState, sc *predScratch, row *Row, out *Prediction, sp trace.Span) {
	*out = Prediction{}
	if len(row.Fact) != st.p.Dims[0] {
		out.Err = fmt.Sprintf("row has %d fact features, model %q wants %d", len(row.Fact), st.info.Name, st.p.Dims[0])
		out.Code = api.CodeRowWidthMismatch
		return
	}
	if len(row.FKs) != e.nDirect {
		out.Err = fmt.Sprintf("row has %d foreign keys, engine probes %d direct dimension tables", len(row.FKs), e.nDirect)
		out.Code = api.CodeFKCountMismatch
		return
	}
	if err := e.rv.Resolve(row.FKs, sc.pks, sc.pos); err != nil {
		out.Err = err.Error()
		out.Code = api.CodeUnknownForeignKey
		return
	}
	for j, fk := range sc.pks {
		v, err := e.dimPartial(st, sc, j, fk, sp)
		if err != nil {
			out.Err = err.Error()
			out.Code = api.CodeUnknownForeignKey
			return
		}
		if st.net != nil {
			sc.parts[j] = v.([]float64)
		} else {
			sc.qcaches[j] = v.([]core.QuadCache)
		}
	}
	if st.net != nil {
		out.Output = st.net.ForwardFactorized(sc.fwd, row.Fact, sc.parts)
		return
	}
	out.LogProb, out.Cluster = st.scorer.Score(row.Fact, sc.qcaches, sc.gsc)
}

// Predict scores a batch of rows against the named model. The batch is cut
// into fixed-size chunks (EngineConfig.BatchRows) and fanned across the
// worker pool; each prediction lands at its row's index, so the response
// order — and, because every cached partial is pure, every floating-point
// result — is bit-identical for any worker count. Per-row failures are
// reported in Prediction.Err without failing the batch; batch-level
// failures (unknown model, model/table shape mismatch) return an error.
func (e *Engine) Predict(name string, rows []Row) ([]Prediction, ModelInfo, error) {
	return e.PredictCtx(context.Background(), name, rows)
}

// PredictCtx is Predict with request-trace propagation: when ctx
// carries a sampled trace (internal/trace), the batch records an
// "engine.predict" span, one "engine.chunk" span per worker chunk and
// one "cache.lookup" span per dimension probe. On an untraced context
// the span calls are no-ops and the hot path allocates nothing extra.
func (e *Engine) PredictCtx(ctx context.Context, name string, rows []Row) ([]Prediction, ModelInfo, error) {
	out := make([]Prediction, len(rows))
	info, err := e.PredictIntoCtx(ctx, name, rows, out)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return out, info, nil
}

// PredictInto is PredictIntoCtx with a background context.
func (e *Engine) PredictInto(name string, rows []Row, out []Prediction) (ModelInfo, error) {
	return e.PredictIntoCtx(context.Background(), name, rows, out)
}

// PredictIntoCtx is PredictCtx writing into a caller-owned result slice
// (len(out) must equal len(rows); every element is overwritten) — the
// zero-allocation variant the HTTP layer's pooled response buffers drive.
// With one worker the chunk loop runs inline on the calling goroutine —
// no fan-out machinery, no closures, nothing on the heap — and the steady
// state (warm dimension caches, pooled scratch) performs zero allocations
// per call, pinned by TestPredictZeroAlloc. The chunk geometry and
// per-row arithmetic are identical to the fanned-out path, so results are
// bit-identical for every worker count.
func (e *Engine) PredictIntoCtx(ctx context.Context, name string, rows []Row, out []Prediction) (ModelInfo, error) {
	if len(out) != len(rows) {
		return ModelInfo{}, fmt.Errorf("serve: result buffer has %d slots for %d rows", len(out), len(rows))
	}
	start := time.Now()
	st, err := e.state(name)
	if err != nil {
		return ModelInfo{}, err
	}
	batch := e.cfg.BatchRows
	chunks := (len(rows) + batch - 1) / batch
	nw := parallel.Workers(e.cfg.NumWorkers)
	if nw > chunks {
		nw = chunks // tiny batches run inline; geometry is unchanged
	}
	_, esp := trace.Start(ctx, "engine.predict")
	if esp.Active() {
		esp.SetAttr("model", name)
		esp.SetInt("rows", int64(len(rows)))
		esp.SetInt("chunks", int64(chunks))
		esp.SetInt("workers", int64(nw))
		esp.SetInt("batch_rows", int64(batch))
	}
	if nw <= 1 {
		sc := st.scratch.Get().(*predScratch)
		for s := 0; s < len(rows); s += batch {
			end := s + batch
			if end > len(rows) {
				end = len(rows)
			}
			csp := esp.Child("engine.chunk")
			if csp.Active() {
				csp.SetInt("row_start", int64(s))
				csp.SetInt("rows", int64(end-s))
			}
			for i := s; i < end; i++ {
				e.scoreRow(st, sc, &rows[i], &out[i], csp)
			}
			csp.End()
		}
		st.scratch.Put(sc)
	} else {
		err = parallel.Run(nw,
			func(f *parallel.Feed[[2]int]) error {
				for s := 0; s < len(rows); s += batch {
					end := s + batch
					if end > len(rows) {
						end = len(rows)
					}
					if err := f.Emit([2]int{s, end}); err != nil {
						return err
					}
				}
				return nil
			},
			func(rg [2]int) (struct{}, error) {
				csp := esp.Child("engine.chunk")
				if csp.Active() {
					csp.SetInt("row_start", int64(rg[0]))
					csp.SetInt("rows", int64(rg[1]-rg[0]))
				}
				sc := st.scratch.Get().(*predScratch)
				for i := rg[0]; i < rg[1]; i++ {
					e.scoreRow(st, sc, &rows[i], &out[i], csp)
				}
				st.scratch.Put(sc)
				csp.End()
				return struct{}{}, nil
			},
			nil)
	}
	if err != nil {
		esp.Fail(err.Error())
		esp.End()
		return ModelInfo{}, err
	}
	esp.End()
	e.requests.Add(1)
	e.rows.Add(uint64(len(rows)))
	e.predictNs.Add(uint64(time.Since(start).Nanoseconds()))
	// Sampled prediction-quality telemetry, after scoring: the scored
	// values feed the model's live quality sketch (GMM per-row
	// log-likelihood, NN output) without touching a single prediction.
	if m := e.mon.Load(); m != nil && m.SampleQuality(name) {
		for i := range out {
			if out[i].Err != "" {
				continue
			}
			if st.scorer != nil {
				m.ObserveQuality(name, out[i].LogProb)
			} else {
				m.ObserveQuality(name, out[i].Output)
			}
		}
	}
	return st.info, nil
}

// Stats is a snapshot of the engine's serving counters.
type Stats struct {
	Models          int     `json:"models"`
	Requests        uint64  `json:"requests"`
	Rows            uint64  `json:"rows"`
	DimCacheHits    uint64  `json:"dim_cache_hits"`
	DimCacheMisses  uint64  `json:"dim_cache_misses"`
	DimCacheHitRate float64 `json:"dim_cache_hit_rate"`
	DimCacheEntries int     `json:"dim_cache_entries"`
	// DimInvalidations counts cache entries surgically dropped by
	// streaming dimension updates (ApplyDimUpdate).
	DimInvalidations uint64  `json:"dim_invalidations"`
	PredictNsTotal   uint64  `json:"predict_ns_total"`
	AvgRowMicros     float64 `json:"avg_row_micros"`
}

// Stats returns cumulative serving counters across all models. States of
// models that have been deleted from the registry are pruned (their caches
// reclaimed and their counters dropped) rather than reported as phantom
// cache traffic.
func (e *Engine) Stats() Stats {
	s := Stats{
		Models: e.reg.Len(), Requests: e.requests.Load(), Rows: e.rows.Load(),
		DimInvalidations: e.dimInvalidations.Load(), PredictNsTotal: e.predictNs.Load(),
	}
	e.mu.Lock()
	for name, st := range e.states {
		if _, ok := e.reg.lookup(name); !ok {
			delete(e.states, name)
			continue
		}
		for _, c := range st.caches {
			h, m := c.counters()
			s.DimCacheHits += h
			s.DimCacheMisses += m
			s.DimCacheEntries += c.len()
		}
	}
	e.mu.Unlock()
	if total := s.DimCacheHits + s.DimCacheMisses; total > 0 {
		s.DimCacheHitRate = float64(s.DimCacheHits) / float64(total)
	}
	if s.Rows > 0 {
		s.AvgRowMicros = float64(s.PredictNsTotal) / 1e3 / float64(s.Rows)
	}
	return s
}
