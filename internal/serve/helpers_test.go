package serve_test

import (
	"testing"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/serve"
	"factorml/internal/storage"
)

// testStar generates a small two-dimension star schema with a target.
func testStar(t testing.TB, dir string) (*storage.Database, *join.Spec) {
	t.Helper()
	db, err := storage.Open(dir, storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := data.Generate(db, "synth", data.SynthConfig{
		NS: 600, NR: []int{25, 10}, DS: 3, DR: []int{2, 2}, Seed: 2, WithTarget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, spec
}

// trainModels trains one NN and one GMM over the spec (factorized,
// sequential — the serving tests own the worker-count sweeps).
func trainModels(t testing.TB, db *storage.Database, spec *join.Spec) (*nn.Network, *gmm.Model) {
	t.Helper()
	nres, err := nn.TrainF(db, spec, nn.Config{Hidden: []int{8}, Epochs: 2, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := gmm.TrainF(db, spec, gmm.Config{K: 3, MaxIter: 3, Tol: 1e-12, NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return nres.Net, gres.Model
}

// factRows scans the fact table into engine request rows and, for expected-
// value computation, the assembled joined feature vectors.
func factRows(t testing.TB, spec *join.Spec, limit int) (rows []serve.Row, joined [][]float64) {
	t.Helper()
	var idxs []*join.ResidentIndex
	for _, r := range spec.Rs {
		ix, err := join.BuildResidentIndex(r)
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, ix)
	}
	sc := spec.S.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		row := serve.Row{
			Fact: append([]float64{}, tp.Features...),
			FKs:  append([]int64{}, tp.Keys[1:]...),
		}
		x := append([]float64{}, tp.Features...)
		for j, fk := range row.FKs {
			feats, ok := idxs[j].Lookup(fk)
			if !ok {
				t.Fatalf("fact tuple references missing fk %d in dim %d", fk, j)
			}
			x = append(x, feats...)
		}
		rows = append(rows, row)
		joined = append(joined, x)
		if limit > 0 && len(rows) == limit {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows, joined
}

// newTestEngine builds a registry+engine over the spec's dimension tables.
func newTestEngine(t testing.TB, db *storage.Database, spec *join.Spec, cfg serve.EngineConfig) (*serve.Registry, *serve.Engine) {
	t.Helper()
	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.NewEngine(reg, spec.Plan(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, eng
}
