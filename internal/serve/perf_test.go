package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"factorml/internal/serve"
)

// TestPredictZeroAlloc pins the raw-speed pass's zero-allocation serving
// guarantee: a warm single-worker engine scores a batch into a
// caller-owned result buffer without touching the heap — for both model
// kinds. Any regression (a stray closure, a scratch that stopped pooling,
// a trace span on the unsampled path) fails this test and therefore CI.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race runtime allocates inside sync.Pool; the pin runs in the non-race suite")
	}
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, model := trainModels(t, db, spec)
	reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	if err := reg.SaveNN("m-nn", net); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveGMM("m-gmm", model); err != nil {
		t.Fatal(err)
	}
	rows, _ := factRows(t, spec, 64)
	out := make([]serve.Prediction, len(rows))
	for _, name := range []string{"m-nn", "m-gmm"} {
		// Warm: fill the dimension-partial caches and the scratch pool.
		for i := 0; i < 3; i++ {
			if _, err := eng.PredictInto(name, rows, out); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := eng.PredictInto(name, rows, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state PredictInto allocates %.1f objects per call, want 0", name, allocs)
		}
	}
}

// predictJSON posts a JSON predict request and decodes the response.
func predictJSON(t *testing.T, url, model string, rows []serve.Row) (map[string]any, int) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"rows": toJSONRows(rows)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/models/"+model+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return payload, resp.StatusCode
}

func toJSONRows(rows []serve.Row) []map[string]any {
	out := make([]map[string]any, len(rows))
	for i, r := range rows {
		out[i] = map[string]any{"fact": r.Fact, "fks": r.FKs}
	}
	return out
}

// TestBatchingEquivalence drives concurrent small predict requests
// through a batching server at workers {1,4} and pins every row's result
// bit-identical to the unbatched engine's answer for the same row — the
// purity guarantee dynamic coalescing rests on. Run under -race this also
// exercises the batcher's flush/timer races.
func TestBatchingEquivalence(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	_, model := trainModels(t, db, spec)
	rows, _ := factRows(t, spec, 48)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: workers})
			if err := reg.SaveGMM("m", model); err != nil {
				t.Fatal(err)
			}
			// Reference: unbatched, straight through the engine.
			want, _, err := eng.Predict("m", rows)
			if err != nil {
				t.Fatal(err)
			}
			srv := serve.NewServer(eng, serve.WithLimits(serve.Limits{
				BatchWindow:  2 * time.Millisecond,
				MaxBatchRows: 16,
			}))
			ts := httptest.NewServer(srv)
			defer ts.Close()
			// Fire one concurrent request per 3-row slice so the window
			// genuinely coalesces neighbors.
			const per = 3
			var wg sync.WaitGroup
			errs := make(chan error, len(rows)/per+1)
			for s := 0; s < len(rows); s += per {
				end := s + per
				if end > len(rows) {
					end = len(rows)
				}
				wg.Add(1)
				go func(s, end int) {
					defer wg.Done()
					payload, status := predictJSON(t, ts.URL, "m", rows[s:end])
					if status != http.StatusOK {
						errs <- fmt.Errorf("rows [%d,%d): status %d", s, end, status)
						return
					}
					preds := payload["predictions"].([]any)
					if len(preds) != end-s {
						errs <- fmt.Errorf("rows [%d,%d): %d predictions", s, end, len(preds))
						return
					}
					for i, pv := range preds {
						p := pv.(map[string]any)
						lp := p["log_prob"].(float64)
						cl := int(p["cluster"].(float64))
						w := want[s+i]
						if math.Float64bits(lp) != math.Float64bits(w.LogProb) || cl != w.Cluster {
							errs <- fmt.Errorf("row %d: batched (%v,%d) != unbatched (%v,%d)",
								s+i, lp, cl, w.LogProb, w.Cluster)
							return
						}
					}
				}(s, end)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestBinaryWireEquivalence pins the binary predict path bit-identical
// to the JSON path — per-row values, per-row error codes, and model
// metadata — at workers {1,4}, including a row with an unknown foreign
// key so both encodings carry a row error side by side.
func TestBinaryWireEquivalence(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, model := trainModels(t, db, spec)
	rows, _ := factRows(t, spec, 24)
	bad := serve.Row{Fact: append([]float64{}, rows[0].Fact...), FKs: []int64{999999, 999999}}
	rows = append(rows, bad)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg, eng := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: workers})
			if err := reg.SaveNN("m-nn", net); err != nil {
				t.Fatal(err)
			}
			if err := reg.SaveGMM("m-gmm", model); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(serve.NewServer(eng))
			defer ts.Close()
			for _, name := range []string{"m-nn", "m-gmm"} {
				jsonPayload, status := predictJSON(t, ts.URL, name, rows)
				if status != http.StatusOK {
					t.Fatalf("%s: JSON status %d", name, status)
				}
				body, err := serve.AppendBinaryRequest(nil, rows)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.Post(ts.URL+"/v1/models/"+name+"/predict",
					"application/x-factorml-binary", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					t.Fatalf("%s: binary status %d", name, resp.StatusCode)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "application/x-factorml-binary" {
					t.Fatalf("%s: binary response Content-Type %q", name, ct)
				}
				var raw bytes.Buffer
				if _, err := raw.ReadFrom(resp.Body); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				info, preds, err := serve.DecodeBinaryResponse(raw.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				if info.Name != jsonPayload["model"].(string) || string(info.Kind) != jsonPayload["kind"].(string) ||
					float64(info.Version) != jsonPayload["version"].(float64) {
					t.Fatalf("%s: binary metadata %+v != JSON %v", name, info, jsonPayload)
				}
				jp := jsonPayload["predictions"].([]any)
				if len(jp) != len(preds) {
					t.Fatalf("%s: binary %d rows, JSON %d", name, len(preds), len(jp))
				}
				for i := range preds {
					p := jp[i].(map[string]any)
					if e, ok := p["error"].(map[string]any); ok {
						if preds[i].Code != e["code"].(string) || preds[i].Err != e["message"].(string) {
							t.Fatalf("%s row %d: binary error (%s,%s) != JSON %v",
								name, i, preds[i].Code, preds[i].Err, e)
						}
						continue
					}
					if preds[i].Err != "" {
						t.Fatalf("%s row %d: binary error %q, JSON success", name, i, preds[i].Err)
					}
					if name == "m-nn" {
						if math.Float64bits(preds[i].Output) != math.Float64bits(p["output"].(float64)) {
							t.Fatalf("%s row %d: binary output %v != JSON %v", name, i, preds[i].Output, p["output"])
						}
					} else {
						if math.Float64bits(preds[i].LogProb) != math.Float64bits(p["log_prob"].(float64)) ||
							preds[i].Cluster != int(p["cluster"].(float64)) {
							t.Fatalf("%s row %d: binary (%v,%d) != JSON (%v,%v)",
								name, i, preds[i].LogProb, preds[i].Cluster, p["log_prob"], p["cluster"])
						}
					}
				}
			}
		})
	}
}

// TestFloat32EngineOptIn exercises the Float32 engine flag end to end:
// the float32-storage GMM kernel serves answers within 1e-5 relative of
// the float64 engine's for every row.
func TestFloat32EngineOptIn(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	_, model := trainModels(t, db, spec)
	rows, _ := factRows(t, spec, 32)
	reg64, eng64 := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1})
	if err := reg64.SaveGMM("m", model); err != nil {
		t.Fatal(err)
	}
	reg32, eng32 := newTestEngine(t, db, spec, serve.EngineConfig{NumWorkers: 1, Float32: true})
	if err := reg32.SaveGMM("m", model); err != nil {
		t.Fatal(err)
	}
	p64, _, err := eng64.Predict("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	p32, _, err := eng32.Predict("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p64 {
		d := math.Abs(p32[i].LogProb - p64[i].LogProb)
		if d > 1e-5*math.Max(1, math.Abs(p64[i].LogProb)) {
			t.Errorf("row %d: float32 log-prob %v vs float64 %v (diff %g)", i, p32[i].LogProb, p64[i].LogProb, d)
		}
	}
}
