package serve

import (
	"runtime"
	"time"

	"factorml/internal/metrics"
)

// Version identifies the serving build in /statsz, /healthz and the
// factorml_build_info metric, so a fleet replica can report what it is
// running. Bump alongside releases.
const Version = "0.7.0"

// BuildInfo is the build identity block embedded in /statsz.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// CurrentBuild returns this binary's build identity.
func CurrentBuild() BuildInfo {
	return BuildInfo{Version: Version, GoVersion: runtime.Version()}
}

// BuildInfoCollector emits the standard fleet-debugging gauges: a
// constant factorml_build_info{version,go_version} 1 and the process
// uptime measured from start.
func BuildInfoCollector(start time.Time) metrics.Collector {
	return func(emit func(metrics.Sample)) {
		b := CurrentBuild()
		emit(metrics.Sample{
			Name: "factorml_build_info",
			Help: "Build identity; the value is always 1, the labels carry the versions.",
			Labels: [][2]string{
				{"version", b.Version},
				{"go_version", b.GoVersion},
			},
			Value: 1,
		})
		emit(metrics.Sample{
			Name:  "factorml_uptime_seconds",
			Help:  "Seconds since the server was constructed.",
			Value: time.Since(start).Seconds(),
		})
	}
}
