package serve_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"factorml/internal/serve"
	"factorml/internal/storage"
)

func TestRegistrySaveLoadList(t *testing.T) {
	dir := t.TempDir()
	db, spec := testStar(t, dir)
	net, model := trainModels(t, db, spec)

	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("fresh registry has %d models", reg.Len())
	}
	if err := reg.SaveNN("m-nn", net); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveGMM("m-gmm", model); err != nil {
		t.Fatal(err)
	}

	infos := reg.List()
	if len(infos) != 2 || infos[0].Name != "m-gmm" || infos[1].Name != "m-nn" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Kind != serve.KindGMM || infos[0].Version != 1 || infos[0].Dim != model.D {
		t.Fatalf("gmm info = %+v", infos[0])
	}
	if infos[1].Kind != serve.KindNN || infos[1].Dim != net.InputDim() {
		t.Fatalf("nn info = %+v", infos[1])
	}

	// Overwriting bumps the version.
	if err := reg.SaveNN("m-nn", net); err != nil {
		t.Fatal(err)
	}
	if info, _ := reg.Get("m-nn"); info.Version != 2 {
		t.Fatalf("version after re-save = %d, want 2", info.Version)
	}

	// Kind-mismatched lookups fail clearly.
	if _, err := reg.GMM("m-nn"); err == nil || !strings.Contains(err.Error(), "not a gmm") {
		t.Fatalf("GMM(m-nn) = %v", err)
	}
	if _, err := reg.NN("m-gmm"); err == nil || !strings.Contains(err.Error(), "not a nn") {
		t.Fatalf("NN(m-gmm) = %v", err)
	}
	if _, err := reg.NN("absent"); !serve.IsUnknownModel(err) {
		t.Fatalf("NN(absent) = %v, want unknown-model", err)
	}

	// Reboot: a fresh registry over a reopened database loads everything,
	// bit-for-bit.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := storage.Open(dir, storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	reg2, err := serve.NewRegistry(db2)
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Len() != 2 {
		t.Fatalf("rebooted registry has %d models, want 2", reg2.Len())
	}
	net2, err := reg2.NN("m-nn")
	if err != nil {
		t.Fatal(err)
	}
	if d := net.MaxParamDiff(net2); d != 0 {
		t.Fatalf("reloaded network differs by %g, want bit-identical", d)
	}
	model2, err := reg2.GMM("m-gmm")
	if err != nil {
		t.Fatal(err)
	}
	if d := model.MaxParamDiff(model2); d != 0 {
		t.Fatalf("reloaded mixture differs by %g, want bit-identical", d)
	}
	if info, _ := reg2.Get("m-nn"); info.Version != 2 {
		t.Fatalf("rebooted version = %d, want 2", info.Version)
	}

	// Delete removes from memory and disk.
	if err := reg2.Delete("m-gmm"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.GMM("m-gmm"); !serve.IsUnknownModel(err) {
		t.Fatalf("GMM after delete = %v", err)
	}
	if err := reg2.Delete("m-gmm"); !serve.IsUnknownModel(err) {
		t.Fatalf("double delete = %v", err)
	}
	names, err := db2.BlobNames()
	if err != nil || len(names) != 1 {
		t.Fatalf("blobs after delete = %v, %v", names, err)
	}
}

func TestRegistryNameValidation(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, _ := trainModels(t, db, spec)
	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "-leading", "_x", "has space", "a/b", strings.Repeat("x", 65)} {
		if err := reg.SaveNN(bad, net); err == nil {
			t.Errorf("SaveNN(%q) accepted an invalid name", bad)
		}
	}
	for _, good := range []string{"m1", "My-Model_2", "0"} {
		if err := reg.SaveNN(good, net); err != nil {
			t.Errorf("SaveNN(%q): %v", good, err)
		}
	}
}

// TestRegistryConcurrentAccess hammers the registry from many goroutines;
// run with -race this pins the locking discipline.
func TestRegistryConcurrentAccess(t *testing.T) {
	db, spec := testStar(t, t.TempDir())
	defer db.Close()
	net, model := trainModels(t, db, spec)
	reg, err := serve.NewRegistry(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveNN("shared", net); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("own-%d", g)
			for i := 0; i < 20; i++ {
				switch g % 4 {
				case 0:
					if err := reg.SaveNN(name, net); err != nil {
						t.Error(err)
					}
				case 1:
					if err := reg.SaveGMM(name, model); err != nil {
						t.Error(err)
					}
				case 2:
					if _, err := reg.NN("shared"); err != nil {
						t.Error(err)
					}
				case 3:
					reg.List()
					reg.Get("shared")
					reg.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if info, ok := reg.Get("own-0"); !ok || info.Version != 20 {
		t.Fatalf("own-0 info = %+v, %v (want version 20)", info, ok)
	}
}
