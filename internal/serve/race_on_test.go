//go:build race

package serve_test

// raceEnabled: see race_off_test.go.
const raceEnabled = true
