package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps the given backing slice (row-major, length r*c) without
// copying. The caller must not alias the slice unexpectedly.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the underlying row-major backing slice.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom copies src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("linalg: copy dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Scale multiplies every element of m by a.
func (m *Dense) Scale(a float64) {
	for i := range m.data {
		m.data[i] *= a
	}
}

// Add adds b into m element-wise. Dimensions must match.
func (m *Dense) Add(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: add dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i, v := range b.data {
		m.data[i] += v
	}
}

// Sub subtracts b from m element-wise. Dimensions must match.
func (m *Dense) Sub(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: sub dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i, v := range b.data {
		m.data[i] -= v
	}
}

// AddScaled adds a*b into m element-wise.
func (m *Dense) AddScaled(a float64, b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: addScaled dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i, v := range b.data {
		m.data[i] += a * v
	}
}

// AddDiag adds a to every diagonal element of the (square) matrix.
func (m *Dense) AddDiag(a float64) {
	if m.rows != m.cols {
		panic(fmt.Sprintf("linalg: AddDiag on non-square %dx%d matrix", m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += a
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

// Block copies the r×c sub-matrix whose top-left corner is (i0, j0) into a
// new matrix.
func (m *Dense) Block(i0, j0, r, c int) *Dense {
	if i0 < 0 || j0 < 0 || r < 0 || c < 0 || i0+r > m.rows || j0+c > m.cols {
		panic(fmt.Sprintf("linalg: block (%d,%d,%d,%d) out of bounds for %dx%d matrix", i0, j0, r, c, m.rows, m.cols))
	}
	out := NewDense(r, c)
	for i := 0; i < r; i++ {
		copy(out.Row(i), m.data[(i0+i)*m.cols+j0:(i0+i)*m.cols+j0+c])
	}
	return out
}

// SetBlock copies b into m with its top-left corner at (i0, j0).
func (m *Dense) SetBlock(i0, j0 int, b *Dense) {
	if i0 < 0 || j0 < 0 || i0+b.rows > m.rows || j0+b.cols > m.cols {
		panic(fmt.Sprintf("linalg: setBlock at (%d,%d) of %dx%d into %dx%d out of bounds", i0, j0, b.rows, b.cols, m.rows, m.cols))
	}
	for i := 0; i < b.rows; i++ {
		copy(m.data[(i0+i)*m.cols+j0:(i0+i)*m.cols+j0+b.cols], b.Row(i))
	}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with v on its diagonal.
func Diag(v []float64) *Dense {
	m := NewDense(len(v), len(v))
	for i, x := range v {
		m.data[i*len(v)+i] = x
	}
	return m
}

// Symmetrize overwrites m with (m + mᵀ)/2. m must be square.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("linalg: Symmetrize on non-square %dx%d matrix", m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := 0.5 * (m.data[i*m.cols+j] + m.data[j*m.cols+i])
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and b. Dimensions must match.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("linalg: diff dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	max := 0.0
	for i, v := range m.data {
		d := math.Abs(v - b.data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Equalish reports whether all elements of m and b differ by at most tol.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	return m.MaxAbsDiff(b) <= tol
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%v\n", m.Row(i))
	}
	return s
}
