// Package linalg provides the dense linear-algebra kernels used by the
// factorized learning algorithms: row-major dense matrices, vectors,
// matrix/vector products, symmetric positive-definite factorizations
// (Cholesky), determinants, inverses, quadratic forms and outer-product
// accumulation.
//
// It replaces NumPy in the original paper's artifact. The kernels are
// deliberately simple and allocation-conscious: every hot-path routine has a
// destination-passing variant so training loops can run allocation-free.
//
// Dimension mismatches are programmer errors and panic, mirroring the
// convention of mainstream Go numeric libraries. Data-dependent failures
// (e.g. a matrix that is not positive definite) return errors.
package linalg
