package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// VecAdd computes dst = x + y.
func VecAdd(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("linalg: add length mismatch %d, %d, %d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// VecSub computes dst = x - y.
func VecSub(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("linalg: sub length mismatch %d, %d, %d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// VecScale computes dst = a*x.
func VecScale(dst []float64, a float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("linalg: scale length mismatch %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] = a * v
	}
}

// VecZero sets every element of x to zero.
func VecZero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// MaxAbsDiffVec returns the largest absolute element-wise difference.
func MaxAbsDiffVec(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: diff length mismatch %d vs %d", len(x), len(y)))
	}
	max := 0.0
	for i, v := range x {
		d := math.Abs(v - y[i])
		if d > max {
			max = d
		}
	}
	return max
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - max)
	}
	return max + math.Log(s)
}
