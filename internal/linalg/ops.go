package linalg

import "fmt"

// MatVec computes dst = A·x. dst must have length A.Rows() and must not
// alias x.
func MatVec(dst []float64, a *Dense, x []float64) {
	if len(x) != a.cols || len(dst) != a.rows {
		panic(fmt.Sprintf("linalg: matvec dimension mismatch A=%dx%d x=%d dst=%d", a.rows, a.cols, len(x), len(dst)))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatVecAdd computes dst += A·x.
func MatVecAdd(dst []float64, a *Dense, x []float64) {
	if len(x) != a.cols || len(dst) != a.rows {
		panic(fmt.Sprintf("linalg: matvecadd dimension mismatch A=%dx%d x=%d dst=%d", a.rows, a.cols, len(x), len(dst)))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] += s
	}
}

// MatVecRange computes dst = A[:, j0:j0+len(x)]·x — a matrix-vector product
// against a contiguous column range of A (used by the factorized NN layer-1
// forward pass, where the weight matrix is column-partitioned by relation).
func MatVecRange(dst []float64, a *Dense, j0 int, x []float64) {
	if j0 < 0 || j0+len(x) > a.cols || len(dst) != a.rows {
		panic(fmt.Sprintf("linalg: matvecrange A=%dx%d j0=%d x=%d dst=%d", a.rows, a.cols, j0, len(x), len(dst)))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols+j0 : i*a.cols+j0+len(x)]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatVecRangeAdd computes dst += A[:, j0:j0+len(x)]·x.
func MatVecRangeAdd(dst []float64, a *Dense, j0 int, x []float64) {
	if j0 < 0 || j0+len(x) > a.cols || len(dst) != a.rows {
		panic(fmt.Sprintf("linalg: matvecrangeadd A=%dx%d j0=%d x=%d dst=%d", a.rows, a.cols, j0, len(x), len(dst)))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols+j0 : i*a.cols+j0+len(x)]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] += s
	}
}

// VecMat computes dst = xᵀ·A (a row vector of length A.Cols()).
func VecMat(dst []float64, x []float64, a *Dense) {
	if len(x) != a.rows || len(dst) != a.cols {
		panic(fmt.Sprintf("linalg: vecmat dimension mismatch x=%d A=%dx%d dst=%d", len(x), a.rows, a.cols, len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// MatMul computes C = A·B into dst, which must be A.Rows()×B.Cols() and must
// not alias a or b.
func MatMul(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: matmul inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("linalg: matmul destination %dx%d for %dx%d result", dst.rows, dst.cols, a.rows, b.cols))
	}
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// NewMatMul allocates and returns A·B.
func NewMatMul(a, b *Dense) *Dense {
	dst := NewDense(a.rows, b.cols)
	MatMul(dst, a, b)
	return dst
}

// OuterAccum accumulates dst += w · x·yᵀ. dst must be len(x)×len(y).
func OuterAccum(dst *Dense, w float64, x, y []float64) {
	if dst.rows != len(x) || dst.cols != len(y) {
		panic(fmt.Sprintf("linalg: outer dimension mismatch dst=%dx%d x=%d y=%d", dst.rows, dst.cols, len(x), len(y)))
	}
	for i, xi := range x {
		wx := w * xi
		if wx == 0 {
			continue
		}
		row := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j, yj := range y {
			row[j] += wx * yj
		}
	}
}

// OuterAccumAt accumulates dst[i0+i][j0+j] += w·x[i]·y[j] — an outer-product
// accumulation into a sub-block of dst (used by the factorized NN gradient,
// whose layer-1 weight matrix is column-partitioned across relations).
func OuterAccumAt(dst *Dense, i0, j0 int, w float64, x, y []float64) {
	if i0 < 0 || j0 < 0 || i0+len(x) > dst.rows || j0+len(y) > dst.cols {
		panic(fmt.Sprintf("linalg: outerAt (%d,%d)+%dx%d out of bounds for %dx%d", i0, j0, len(x), len(y), dst.rows, dst.cols))
	}
	for i, xi := range x {
		wx := w * xi
		if wx == 0 {
			continue
		}
		row := dst.data[(i0+i)*dst.cols : (i0+i+1)*dst.cols]
		for j, yj := range y {
			row[j0+j] += wx * yj
		}
	}
}

// QuadForm returns xᵀ·A·x for square A.
func QuadForm(a *Dense, x []float64) float64 {
	if a.rows != a.cols || len(x) != a.rows {
		panic(fmt.Sprintf("linalg: quadform dimension mismatch A=%dx%d x=%d", a.rows, a.cols, len(x)))
	}
	var s float64
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		var r float64
		for j, v := range row {
			r += v * x[j]
		}
		s += xi * r
	}
	return s
}

// BilinearForm returns xᵀ·A·y for an r×c matrix A with len(x)==r, len(y)==c.
func BilinearForm(x []float64, a *Dense, y []float64) float64 {
	if len(x) != a.rows || len(y) != a.cols {
		panic(fmt.Sprintf("linalg: bilinear dimension mismatch x=%d A=%dx%d y=%d", len(x), a.rows, a.cols, len(y)))
	}
	var s float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		var r float64
		for j, v := range row {
			r += v * y[j]
		}
		s += xi * r
	}
	return s
}
