package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization is
// attempted on a matrix that is not (numerically) symmetric positive
// definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l *Dense // lower triangular, upper part zero
}

// NewCholesky factorizes the symmetric positive definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("linalg: Cholesky of non-square %dx%d matrix", a.rows, a.cols))
	}
	n := a.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li := l.Row(i)
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Size returns the order of the factorized matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns the lower-triangular factor (a view; do not modify).
func (c *Cholesky) L() *Dense { return c.l }

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveVec solves A·x = b in place into dst (dst may alias b).
func (c *Cholesky) SolveVec(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("linalg: cholesky solve length mismatch n=%d b=%d dst=%d", c.n, len(b), len(dst)))
	}
	copy(dst, b)
	// Forward substitution: L·y = b.
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		s := dst[i]
		for k := 0; k < i; k++ {
			s -= row[k] * dst[k]
		}
		dst[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := c.n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * dst[k]
		}
		dst[i] = s / c.l.At(i, i)
	}
}

// Inverse returns A⁻¹ as a newly allocated symmetric matrix.
func (c *Cholesky) Inverse() *Dense {
	inv := NewDense(c.n, c.n)
	e := make([]float64, c.n)
	col := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		VecZero(e)
		e[j] = 1
		c.SolveVec(col, e)
		for i := 0; i < c.n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	inv.Symmetrize()
	return inv
}

// SPDInverse factorizes a and returns its inverse and log-determinant.
func SPDInverse(a *Dense) (inv *Dense, logDet float64, err error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, 0, err
	}
	return ch.Inverse(), ch.LogDet(), nil
}
