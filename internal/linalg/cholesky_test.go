package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSPD returns a random symmetric positive definite n×n matrix.
func randomSPD(rng *rand.Rand, n int) *Dense {
	a := randomDense(rng, n, n)
	spd := NewMatMul(a, a.Transpose())
	spd.AddDiag(float64(n)) // well-conditioned
	return spd
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8, 17} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		llt := NewMatMul(ch.L(), ch.L().Transpose())
		if !llt.Equalish(a, 1e-9) {
			t.Fatalf("n=%d: L·Lᵀ differs from A by %v", n, llt.MaxAbsDiff(a))
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	_, err := NewCholesky(a)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyNaN(t *testing.T) {
	a := NewDenseData(2, 2, []float64{math.NaN(), 0, 0, 1})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected error on NaN input")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 6} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		MatVec(b, a, want)
		got := make([]float64, n)
		ch.SolveVec(got, b)
		if MaxAbsDiffVec(got, want) > 1e-9 {
			t.Fatalf("n=%d: solve error %v", n, MaxAbsDiffVec(got, want))
		}
	}
}

func TestCholeskySolveInPlace(t *testing.T) {
	a := NewDenseData(2, 2, []float64{4, 0, 0, 9})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{8, 27}
	ch.SolveVec(b, b) // aliased
	if math.Abs(b[0]-2) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Fatalf("in-place solve = %v, want [2 3]", b)
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 4, 9} {
		a := randomSPD(rng, n)
		inv, logDet, err := SPDInverse(a)
		if err != nil {
			t.Fatal(err)
		}
		prod := NewMatMul(a, inv)
		if !prod.Equalish(Eye(n), 1e-8) {
			t.Fatalf("n=%d: A·A⁻¹ differs from I by %v", n, prod.MaxAbsDiff(Eye(n)))
		}
		// Cross-check log-det against the product of diagonal entries of L.
		ch, _ := NewCholesky(a)
		if math.Abs(logDet-ch.LogDet()) > 1e-12 {
			t.Fatalf("logdet mismatch")
		}
	}
}

func TestLogDetDiagonal(t *testing.T) {
	a := Diag([]float64{2, 3, 4})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(24)
	if math.Abs(ch.LogDet()-want) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", ch.LogDet(), want)
	}
}

func TestCholeskyNonSquarePanics(t *testing.T) {
	defer expectPanic(t, "non-square cholesky")
	NewCholesky(NewDense(2, 3)) //nolint:errcheck
}

func TestInverseSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomSPD(rng, 6)
	inv, _, err := SPDInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equalish(inv.Transpose(), 1e-12) {
		t.Fatal("inverse of SPD matrix must be symmetric")
	}
}
