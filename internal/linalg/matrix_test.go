package linalg

import (
	"math"
	"testing"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseDataWraps(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewDenseData(2, 3, d)
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 42)
	if d[0] != 42 {
		t.Fatalf("backing slice not shared: d[0] = %v", d[0])
	}
}

func TestNewDenseDataBadLength(t *testing.T) {
	defer expectPanic(t, "length mismatch")
	NewDenseData(2, 3, []float64{1, 2, 3})
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer expectPanic(t, "index out of bounds")
	NewDense(2, 2).At(2, 0)
}

func TestSetOutOfBoundsPanics(t *testing.T) {
	defer expectPanic(t, "index out of bounds")
	NewDense(2, 2).Set(0, -1, 1)
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatalf("Row must be a view, got At(1,0)=%v", m.At(1, 0))
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	n := m.Clone()
	n.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatalf("Clone aliased original: m(0,0)=%v", m.At(0, 0))
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{10, 20, 30, 40})
	a.Add(b)
	want := []float64{11, 22, 33, 44}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("Add: data[%d]=%v, want %v", i, a.Data()[i], w)
		}
	}
	a.Sub(b)
	want = []float64{1, 2, 3, 4}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("Sub: data[%d]=%v, want %v", i, a.Data()[i], w)
		}
	}
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Fatalf("Scale: At(1,1)=%v, want 8", a.At(1, 1))
	}
}

func TestAddScaled(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 1, 1})
	b := NewDenseData(1, 3, []float64{1, 2, 3})
	a.AddScaled(0.5, b)
	want := []float64{1.5, 2, 2.5}
	for i, w := range want {
		if a.Data()[i] != w {
			t.Fatalf("AddScaled: data[%d]=%v, want %v", i, a.Data()[i], w)
		}
	}
}

func TestAddDiag(t *testing.T) {
	a := Eye(3)
	a.AddDiag(2)
	for i := 0; i < 3; i++ {
		if a.At(i, i) != 3 {
			t.Fatalf("AddDiag: At(%d,%d)=%v, want 3", i, i, a.At(i, i))
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.Transpose()
	r, c := mt.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("Transpose dims = (%d,%d), want (3,2)", r, c)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("Transpose values wrong: %v", mt)
	}
}

func TestBlockAndSetBlock(t *testing.T) {
	m := NewDenseData(3, 3, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	b := m.Block(1, 1, 2, 2)
	want := NewDenseData(2, 2, []float64{5, 6, 8, 9})
	if !b.Equalish(want, 0) {
		t.Fatalf("Block = %v, want %v", b, want)
	}
	m.SetBlock(0, 0, NewDenseData(2, 2, []float64{0, 0, 0, 0}))
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 || m.At(2, 2) != 9 {
		t.Fatalf("SetBlock wrong: %v", m)
	}
}

func TestBlockOutOfBoundsPanics(t *testing.T) {
	defer expectPanic(t, "out of bounds block")
	NewDense(2, 2).Block(1, 1, 2, 2)
}

func TestEyeAndDiag(t *testing.T) {
	if Eye(2).At(0, 1) != 0 || Eye(2).At(1, 1) != 1 {
		t.Fatal("Eye wrong")
	}
	d := Diag([]float64{3, 4})
	if d.At(0, 0) != 3 || d.At(1, 1) != 4 || d.At(0, 1) != 0 {
		t.Fatal("Diag wrong")
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 3, 5, 2})
	m.Symmetrize()
	if m.At(0, 1) != 4 || m.At(1, 0) != 4 {
		t.Fatalf("Symmetrize: off-diagonals %v, %v, want 4", m.At(0, 1), m.At(1, 0))
	}
}

func TestMaxAbsDiffAndEqualish(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{1.5, 2})
	if got := a.MaxAbsDiff(b); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("MaxAbsDiff = %v, want 0.5", got)
	}
	if !a.Equalish(b, 0.5) {
		t.Fatal("Equalish(0.5) = false, want true")
	}
	if a.Equalish(b, 0.4) {
		t.Fatal("Equalish(0.4) = true, want false")
	}
	if a.Equalish(NewDense(2, 2), 10) {
		t.Fatal("Equalish across shapes must be false")
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	a.CopyFrom(b)
	if !a.Equalish(b, 0) {
		t.Fatal("CopyFrom did not copy")
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
