package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	MatVec(dst, a, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", dst)
	}
}

func TestMatVecAdd(t *testing.T) {
	a := Eye(2)
	dst := []float64{10, 20}
	MatVecAdd(dst, a, []float64{1, 2})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("MatVecAdd = %v, want [11 22]", dst)
	}
}

func TestVecMat(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 1}
	dst := make([]float64, 3)
	VecMat(dst, x, a)
	want := []float64{5, 7, 9}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("VecMat = %v, want %v", dst, want)
		}
	}
}

func TestMatMul(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := NewMatMul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !c.Equalish(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 4)
	c := NewMatMul(a, Eye(4))
	if !c.Equalish(a, 1e-12) {
		t.Fatal("A·I != A")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer expectPanic(t, "matmul mismatch")
	NewMatMul(NewDense(2, 3), NewDense(2, 3))
}

func TestOuterAccum(t *testing.T) {
	dst := NewDense(2, 3)
	OuterAccum(dst, 2, []float64{1, 2}, []float64{3, 4, 5})
	want := NewDenseData(2, 3, []float64{6, 8, 10, 12, 16, 20})
	if !dst.Equalish(want, 1e-12) {
		t.Fatalf("OuterAccum = %v, want %v", dst, want)
	}
	// Accumulation adds on top.
	OuterAccum(dst, -2, []float64{1, 2}, []float64{3, 4, 5})
	if !dst.Equalish(NewDense(2, 3), 1e-12) {
		t.Fatalf("OuterAccum accumulate = %v, want zero", dst)
	}
}

func TestQuadForm(t *testing.T) {
	a := NewDenseData(2, 2, []float64{2, 1, 1, 3})
	x := []float64{1, -1}
	// xᵀAx = 2 - 1 - 1 + 3 = 3
	if got := QuadForm(a, x); math.Abs(got-3) > 1e-12 {
		t.Fatalf("QuadForm = %v, want 3", got)
	}
}

func TestBilinearForm(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 1}
	y := []float64{1, 0, 1}
	// xᵀAy = (1+3) + (4+6) = 14
	if got := BilinearForm(x, a, y); math.Abs(got-14) > 1e-12 {
		t.Fatalf("BilinearForm = %v, want 14", got)
	}
}

func TestDotAxpyNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("Axpy = %v", y)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
}

func TestVecAddSubScaleZero(t *testing.T) {
	dst := make([]float64, 2)
	VecAdd(dst, []float64{1, 2}, []float64{3, 4})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("VecAdd = %v", dst)
	}
	VecSub(dst, []float64{1, 2}, []float64{3, 4})
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("VecSub = %v", dst)
	}
	VecScale(dst, 3, []float64{1, 2})
	if dst[0] != 3 || dst[1] != 6 {
		t.Fatalf("VecScale = %v", dst)
	}
	VecZero(dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("VecZero = %v", dst)
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(x); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want log 6", got)
	}
	// Stability: huge values must not overflow.
	if got := LogSumExp([]float64{1000, 1000}); math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp stability: got %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) should be -Inf")
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1)}), -1) {
		t.Fatal("LogSumExp(-Inf) should be -Inf")
	}
}

func TestMaxAbsDiffVec(t *testing.T) {
	if got := MaxAbsDiffVec([]float64{1, 5}, []float64{1, 2}); got != 3 {
		t.Fatalf("MaxAbsDiffVec = %v, want 3", got)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestMatVecRange(t *testing.T) {
	a := NewDenseData(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	dst := make([]float64, 2)
	MatVecRange(dst, a, 1, []float64{1, -1}) // columns 1..2
	if dst[0] != 2-3 || dst[1] != 6-7 {
		t.Fatalf("MatVecRange = %v", dst)
	}
	MatVecRangeAdd(dst, a, 3, []float64{2}) // column 3
	if dst[0] != -1+8 || dst[1] != -1+16 {
		t.Fatalf("MatVecRangeAdd = %v", dst)
	}
}

func TestMatVecRangeEqualsBlockMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		r := 1 + rng.Intn(6)
		c := 2 + rng.Intn(8)
		a := randomDense(rng, r, c)
		j0 := rng.Intn(c - 1)
		w := 1 + rng.Intn(c-j0)
		x := make([]float64, w)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, r)
		MatVec(want, a.Block(0, j0, r, w), x)
		got := make([]float64, r)
		MatVecRange(got, a, j0, x)
		if MaxAbsDiffVec(got, want) > 1e-12 {
			t.Fatalf("trial %d: MatVecRange differs from block MatVec", trial)
		}
	}
}

func TestMatVecRangeBoundsPanic(t *testing.T) {
	defer expectPanic(t, "matvecrange out of bounds")
	MatVecRange(make([]float64, 2), NewDense(2, 3), 2, []float64{1, 1})
}

func TestOuterAccumAt(t *testing.T) {
	dst := NewDense(3, 4)
	OuterAccumAt(dst, 1, 2, 1, []float64{1, 2}, []float64{3, 4})
	if dst.At(1, 2) != 3 || dst.At(1, 3) != 4 || dst.At(2, 2) != 6 || dst.At(2, 3) != 8 {
		t.Fatalf("OuterAccumAt wrote wrong block: %v", dst)
	}
	if dst.At(0, 0) != 0 || dst.At(0, 2) != 0 {
		t.Fatalf("OuterAccumAt touched outside block: %v", dst)
	}
	// Accumulates rather than overwrites.
	OuterAccumAt(dst, 1, 2, 2, []float64{1, 2}, []float64{3, 4})
	if dst.At(1, 2) != 9 {
		t.Fatalf("OuterAccumAt did not accumulate: %v", dst.At(1, 2))
	}
}

func TestOuterAccumAtBoundsPanic(t *testing.T) {
	defer expectPanic(t, "outerAt out of bounds")
	OuterAccumAt(NewDense(2, 2), 1, 1, 1, []float64{1, 1}, []float64{1})
}
