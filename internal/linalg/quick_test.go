package linalg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests on core algebraic identities, using testing/quick to
// drive random shapes and values.

type smallVec []float64

func (smallVec) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(8)
	v := make(smallVec, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 3
	}
	return reflect.ValueOf(v)
}

func TestQuickDotSymmetry(t *testing.T) {
	f := func(v smallVec) bool {
		y := make([]float64, len(v))
		for i := range y {
			y[i] = float64(i) - 1.5
		}
		return math.Abs(Dot(v, y)-Dot(y, v)) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuadFormMatchesBilinear(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(v smallVec) bool {
		n := len(v)
		a := randomSPD(rng, n)
		q := QuadForm(a, v)
		b := BilinearForm(v, a, v)
		return closeRel(q, b, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Blocked quadratic form: for symmetric A split at s,
// xᵀAx = xSᵀ A_SS xS + 2 xSᵀ A_SR xR + xRᵀ A_RR xR.
// This is the exact identity underpinning F-GMM (paper Eq. 7-12).
func TestQuickBlockedQuadFormIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := func(v smallVec) bool {
		n := len(v)
		if n < 2 {
			return true
		}
		s := 1 + rng.Intn(n-1)
		a := randomSPD(rng, n)
		whole := QuadForm(a, v)
		xs, xr := v[:s], v[s:]
		ass := a.Block(0, 0, s, s)
		asr := a.Block(0, s, s, n-s)
		arr := a.Block(s, s, n-s, n-s)
		blocked := QuadForm(ass, xs) + 2*BilinearForm(xs, asr, xr) + QuadForm(arr, xr)
		return closeRel(whole, blocked, 1e-8)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Blocked outer product: (x xᵀ) assembled from [xS xR] blocks equals the
// whole outer product (paper Eq. 14-18).
func TestQuickBlockedOuterProductIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(v smallVec) bool {
		n := len(v)
		if n < 2 {
			return true
		}
		s := 1 + rng.Intn(n-1)
		whole := NewDense(n, n)
		OuterAccum(whole, 1, v, v)

		xs, xr := v[:s], v[s:]
		assembled := NewDense(n, n)
		ul := NewDense(s, s)
		OuterAccum(ul, 1, xs, xs)
		ur := NewDense(s, n-s)
		OuterAccum(ur, 1, xs, xr)
		ll := NewDense(n-s, s)
		OuterAccum(ll, 1, xr, xs)
		lr := NewDense(n-s, n-s)
		OuterAccum(lr, 1, xr, xr)
		assembled.SetBlock(0, 0, ul)
		assembled.SetBlock(0, s, ur)
		assembled.SetBlock(s, 0, ll)
		assembled.SetBlock(s, s, lr)
		return assembled.Equalish(whole, 1e-10)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Blocked mat-vec: W·x = W_S·xS + W_R·xR — the identity behind F-NN's
// layer-1 forward pass (paper §VI-A1).
func TestQuickBlockedMatVecIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := func(v smallVec) bool {
		n := len(v)
		if n < 2 {
			return true
		}
		s := 1 + rng.Intn(n-1)
		nh := 1 + rng.Intn(6)
		w := randomDense(rng, nh, n)
		whole := make([]float64, nh)
		MatVec(whole, w, v)

		ws := w.Block(0, 0, nh, s)
		wr := w.Block(0, s, nh, n-s)
		part := make([]float64, nh)
		MatVec(part, ws, v[:s])
		MatVecAdd(part, wr, v[s:])
		return MaxAbsDiffVec(whole, part) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(v smallVec) bool {
		n := len(v)
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		MatVec(b, a, v)
		got := make([]float64, n)
		ch.SolveVec(got, b)
		return MaxAbsDiffVec(got, v) < 1e-7
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(v smallVec) bool {
		r := 1 + rng.Intn(5)
		c := 1 + rng.Intn(5)
		m := randomDense(rng, r, c)
		return m.Transpose().Transpose().Equalish(m, 0)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func closeRel(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}
}
