package linalg

// Fused, bounds-check-hoisted kernel helpers for the hot training and
// serving loops. Each routine re-slices its operands to the exact length
// up front (the `x = x[:n]` idiom) so the compiler proves every inner
// access in range and emits no per-element bounds checks. DotN and AxpyN
// evaluate in exactly the same floating-point order as Dot and Axpy, so
// swapping one for the other anywhere preserves bit-identical results;
// SyrkAccum is the exception and says so below.

// DotN returns the inner product of x[:n] and y[:n]. The summation order
// matches Dot element for element, so DotN(x, y, len(x)) is bit-identical
// to Dot(x, y); the explicit length lets callers keep oversized scratch
// buffers without re-slicing at every call site.
func DotN(x, y []float64, n int) float64 {
	x = x[:n]
	y = y[:n]
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// AxpyN computes y[:n] += a·x[:n] in the same element order as Axpy.
func AxpyN(a float64, x, y []float64, n int) {
	x = x[:n]
	y = y[:n]
	for i, v := range x {
		y[i] += a * v
	}
}

// SyrkAccum accumulates the weighted symmetric rank-1 update A += w·x·xᵀ,
// computing each strictly-upper product once and mirroring it into the
// lower triangle — half the multiplies of OuterAccum(A, w, x, x).
//
// Not bit-identical to OuterAccum: OuterAccum derives A[j][i] from
// fl(fl(w·x[j])·x[i]) while the mirror copies fl(fl(w·x[i])·x[j]), which
// can differ by one ulp. Use it only on paths whose outputs are not pinned
// bit-identical against an OuterAccum-based twin (the cross-strategy
// harnesses tolerate rounding; the streaming incremental-vs-full pin does
// not, so internal/stream and the factorized M-step keep OuterAccum).
func SyrkAccum(a *Dense, w float64, x []float64) {
	if a.rows != a.cols || len(x) != a.rows {
		panic("linalg: syrk dimension mismatch")
	}
	n := len(x)
	for i := 0; i < n; i++ {
		wx := w * x[i]
		if wx == 0 {
			continue
		}
		row := a.data[i*n : i*n+n]
		row[i] += wx * x[i]
		for j := i + 1; j < n; j++ {
			v := wx * x[j]
			row[j] += v
			a.data[j*n+i] += v
		}
	}
}
