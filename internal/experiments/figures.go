package experiments

import (
	"fmt"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/nn"
)

// Paper defaults shared by the synthetic sweeps (Tables II/III): dS = 5,
// K = 5 clusters, nh = 50 hidden units.
const (
	sweepDS = 5
	sweepK  = 5
	sweepNH = 50
)

// Fig3a: GMM binary join, varying the tuple ratio rr = nS/nR for
// dR ∈ {5, 15}.
func (h *Harness) Fig3a() ([]Row, error) {
	var rows []Row
	for _, dR := range []int{5, 15} {
		for _, rr := range h.P.RRs {
			row, err := h.runGMM(fmt.Sprintf("fig3a_%d_%d", dR, rr),
				data.SynthConfig{NS: rr * h.P.NR, NR: []int{h.P.NR}, DS: sweepDS, DR: []int{dR}},
				gmm.Config{K: sweepK, MaxIter: h.P.GMMIters},
				"Fig3a", fmt.Sprintf("dR=%d", dR), float64(rr))
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig3b: GMM binary join, varying dR for two fact cardinalities.
func (h *Harness) Fig3b() ([]Row, error) {
	var rows []Row
	for _, mult := range []int{1, 5} {
		nS := mult * h.P.NSFixed
		for _, dR := range h.P.DRs {
			row, err := h.runGMM(fmt.Sprintf("fig3b_%d_%d", mult, dR),
				data.SynthConfig{NS: nS, NR: []int{h.P.NR}, DS: sweepDS, DR: []int{dR}},
				gmm.Config{K: sweepK, MaxIter: h.P.GMMIters},
				"Fig3b", fmt.Sprintf("nS=%d", nS), float64(dR))
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig3c: GMM binary join, varying the number of components K.
func (h *Harness) Fig3c() ([]Row, error) {
	var rows []Row
	for _, k := range h.P.Ks {
		row, err := h.runGMM(fmt.Sprintf("fig3c_%d", k),
			data.SynthConfig{NS: h.P.NSFixed, NR: []int{h.P.NR}, DS: sweepDS, DR: []int{15}},
			gmm.Config{K: k, MaxIter: h.P.GMMIters},
			"Fig3c", "dR=15", float64(k))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// multiCfg builds the 3-way star schema of Figs 4/6: R1 is the varied
// dimension table, R2 stays fixed (the paper's Movies-3way construction).
func (h *Harness) multiCfg(nS, nR1, dR1 int) data.SynthConfig {
	return data.SynthConfig{
		NS: nS,
		NR: []int{nR1, h.P.NR2},
		DS: sweepDS,
		DR: []int{dR1, h.P.DR2},
	}
}

// Fig4a: GMM multi-way join, varying rr = nS/nR1.
func (h *Harness) Fig4a() ([]Row, error) {
	var rows []Row
	for _, rr := range h.P.RRs {
		row, err := h.runGMM(fmt.Sprintf("fig4a_%d", rr),
			h.multiCfg(rr*h.P.NR, h.P.NR, 15),
			gmm.Config{K: sweepK, MaxIter: h.P.GMMIters},
			"Fig4a", "dR1=15", float64(rr))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4b: GMM multi-way join, varying dR1.
func (h *Harness) Fig4b() ([]Row, error) {
	var rows []Row
	for _, dR1 := range h.P.DRs {
		row, err := h.runGMM(fmt.Sprintf("fig4b_%d", dR1),
			h.multiCfg(h.P.NSFixed, h.P.NR, dR1),
			gmm.Config{K: sweepK, MaxIter: h.P.GMMIters},
			"Fig4b", fmt.Sprintf("nS=%d", h.P.NSFixed), float64(dR1))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4c: GMM multi-way join, varying K.
func (h *Harness) Fig4c() ([]Row, error) {
	var rows []Row
	for _, k := range h.P.Ks {
		row, err := h.runGMM(fmt.Sprintf("fig4c_%d", k),
			h.multiCfg(h.P.NSFixed, h.P.NR, 15),
			gmm.Config{K: k, MaxIter: h.P.GMMIters},
			"Fig4c", "dR1=15", float64(k))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5a: NN binary join, varying rr for dR ∈ {5, 15}.
func (h *Harness) Fig5a() ([]Row, error) {
	var rows []Row
	for _, dR := range []int{5, 15} {
		for _, rr := range h.P.RRs {
			row, err := h.runNN(fmt.Sprintf("fig5a_%d_%d", dR, rr),
				data.SynthConfig{NS: rr * h.P.NR, NR: []int{h.P.NR}, DS: sweepDS, DR: []int{dR}},
				nn.Config{Hidden: []int{sweepNH}, Epochs: h.P.NNEpochs},
				"Fig5a", fmt.Sprintf("dR=%d", dR), float64(rr))
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig5b: NN binary join, varying dR.
func (h *Harness) Fig5b() ([]Row, error) {
	var rows []Row
	for _, mult := range []int{1, 5} {
		nS := mult * h.P.NSFixed
		for _, dR := range h.P.DRs {
			row, err := h.runNN(fmt.Sprintf("fig5b_%d_%d", mult, dR),
				data.SynthConfig{NS: nS, NR: []int{h.P.NR}, DS: sweepDS, DR: []int{dR}},
				nn.Config{Hidden: []int{sweepNH}, Epochs: h.P.NNEpochs},
				"Fig5b", fmt.Sprintf("nS=%d", nS), float64(dR))
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig5c: NN binary join, varying the hidden width nh.
func (h *Harness) Fig5c() ([]Row, error) {
	var rows []Row
	for _, nh := range h.P.NHs {
		row, err := h.runNN(fmt.Sprintf("fig5c_%d", nh),
			data.SynthConfig{NS: h.P.NSFixed, NR: []int{h.P.NR}, DS: sweepDS, DR: []int{15}},
			nn.Config{Hidden: []int{nh}, Epochs: h.P.NNEpochs},
			"Fig5c", "dR=15", float64(nh))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6a: NN multi-way join, varying rr.
func (h *Harness) Fig6a() ([]Row, error) {
	var rows []Row
	for _, rr := range h.P.RRs {
		row, err := h.runNN(fmt.Sprintf("fig6a_%d", rr),
			h.multiCfg(rr*h.P.NR, h.P.NR, 15),
			nn.Config{Hidden: []int{sweepNH}, Epochs: h.P.NNEpochs},
			"Fig6a", "dR1=15", float64(rr))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6b: NN multi-way join, varying dR1.
func (h *Harness) Fig6b() ([]Row, error) {
	var rows []Row
	for _, dR1 := range h.P.DRs {
		row, err := h.runNN(fmt.Sprintf("fig6b_%d", dR1),
			h.multiCfg(h.P.NSFixed, h.P.NR, dR1),
			nn.Config{Hidden: []int{sweepNH}, Epochs: h.P.NNEpochs},
			"Fig6b", fmt.Sprintf("nS=%d", h.P.NSFixed), float64(dR1))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6c: NN multi-way join, varying nh.
func (h *Harness) Fig6c() ([]Row, error) {
	var rows []Row
	for _, nh := range h.P.NHs {
		row, err := h.runNN(fmt.Sprintf("fig6c_%d", nh),
			h.multiCfg(h.P.NSFixed, h.P.NR, 15),
			nn.Config{Hidden: []int{nh}, Epochs: h.P.NNEpochs},
			"Fig6c", "dR1=15", float64(nh))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
