package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteCSV emits rows as CSV with a header.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"figure", "series", "x",
		"m_seconds", "s_seconds", "f_seconds",
		"m_mults", "s_mults", "f_mults",
		"m_reads", "s_reads", "f_reads", "m_writes",
		"speedup_s_over_f", "speedup_m_over_f",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Series, strconv.FormatFloat(r.X, 'g', -1, 64),
			fsec(r.MTime), fsec(r.STime), fsec(r.FTime),
			strconv.FormatInt(r.MMul, 10), strconv.FormatInt(r.SMul, 10), strconv.FormatInt(r.FMul, 10),
			strconv.FormatInt(r.MIO, 10), strconv.FormatInt(r.SIO, 10), strconv.FormatInt(r.FIO, 10),
			strconv.FormatInt(r.MWrites, 10),
			fmt.Sprintf("%.3f", r.SpeedupSF), fmt.Sprintf("%.3f", r.SpeedupMF),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fsec(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 4, 64)
}

// WriteMarkdown renders rows as a GitHub-flavoured markdown table, grouped
// the way the paper's figures present them.
func WriteMarkdown(w io.Writer, title string, rows []Row) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", title); err != nil {
		return err
	}
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "_no rows_")
		return err
	}
	fmt.Fprintln(w, "| series | x | M time | S time | F time | S/F | M/F | F mult-savings vs S |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|")
	for _, r := range rows {
		saving := "-"
		if r.SMul > 0 {
			saving = fmt.Sprintf("%.1f%%", 100*float64(r.SMul-r.FMul)/float64(r.SMul))
		}
		fmt.Fprintf(w, "| %s | %g | %s | %s | %s | %.2f× | %.2f× | %s |\n",
			r.Series, r.X,
			r.MTime.Round(time.Millisecond), r.STime.Round(time.Millisecond), r.FTime.Round(time.Millisecond),
			r.SpeedupSF, r.SpeedupMF, saving)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteAllMarkdown renders a full result set in paper order.
func WriteAllMarkdown(w io.Writer, results map[string][]Row) error {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	order := map[string]int{}
	for i, n := range Experiments() {
		order[n] = i
	}
	sort.Slice(names, func(i, j int) bool { return order[names[i]] < order[names[j]] })
	for _, n := range names {
		if err := WriteMarkdown(w, n, results[n]); err != nil {
			return err
		}
	}
	return nil
}
