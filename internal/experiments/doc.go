// Package experiments reproduces the paper's evaluation (§VII): every
// figure (3a-c, 4a-c, 5a-c, 6a-c) and both real-dataset tables (VI, VII).
//
// Each experiment sweeps one knob of the star schema — tuple ratio
// rr = nS/nR, dimension feature width dR, component count K, hidden width
// nh — generates the synthetic workload, trains the M-/S-/F- variant of the
// model, and records wall-clock time, multiplication counts and page I/O.
// The absolute numbers differ from the paper's testbed (Python+NumPy+
// PostgreSQL on a Xeon cluster vs. pure Go here); the deliverable is the
// shape: F wins everywhere redundancy exists, and its advantage grows with
// rr, dR and the number of joined relations.
//
// Two profiles are provided: Quick (CI-sized, seconds per figure) and Paper
// (the paper's parameters; hours). Both preserve the tuple ratios, which is
// what the relative costs depend on.
package experiments
