package experiments

import (
	"bytes"
	"strings"
	"testing"

	"factorml/internal/data"
	"factorml/internal/join"
	"factorml/internal/storage"
)

// tiny is a micro profile so experiment plumbing can be tested in
// milliseconds.
var tiny = Profile{
	Name:      "tiny",
	NR:        20,
	RRs:       []int{5, 10},
	DRs:       []int{2, 4},
	Ks:        []int{2},
	NHs:       []int{4},
	NSFixed:   200,
	NR2:       8,
	DR2:       2,
	GMMIters:  1,
	NNEpochs:  1,
	RealScale: 0.0005,
}

func newTinyHarness(t *testing.T) *Harness {
	t.Helper()
	return New(t.TempDir(), tiny, nil)
}

func TestFig3aProducesRows(t *testing.T) {
	h := newTinyHarness(t)
	rows, err := h.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(tiny.RRs) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(tiny.RRs))
	}
	for _, r := range rows {
		if r.FTime <= 0 || r.STime <= 0 || r.MTime <= 0 {
			t.Fatalf("row with zero time: %+v", r)
		}
		if r.FMul >= r.SMul {
			t.Fatalf("F mults %d not below S mults %d at rr=%g", r.FMul, r.SMul, r.X)
		}
	}
}

// The defining shape of Fig 3a: F's multiplication saving grows with rr.
func TestFig3aSavingsGrowWithRR(t *testing.T) {
	h := newTinyHarness(t)
	rows, err := h.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	// Within each series, the S/F mult ratio must be non-decreasing in rr.
	bySeries := map[string][]Row{}
	for _, r := range rows {
		bySeries[r.Series] = append(bySeries[r.Series], r)
	}
	for series, rs := range bySeries {
		prev := 0.0
		for _, r := range rs {
			ratio := float64(r.SMul) / float64(r.FMul)
			if ratio < prev-0.01 {
				t.Fatalf("%s: op ratio fell from %.3f to %.3f at rr=%g", series, prev, ratio, r.X)
			}
			prev = ratio
		}
	}
}

func TestMultiwayFigures(t *testing.T) {
	h := newTinyHarness(t)
	rows, err := h.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tiny.RRs) {
		t.Fatalf("Fig4a rows = %d", len(rows))
	}
	rows, err = h.Fig6c()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tiny.NHs) {
		t.Fatalf("Fig6c rows = %d", len(rows))
	}
}

func TestNNFigures(t *testing.T) {
	h := newTinyHarness(t)
	rows, err := h.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FMul >= r.SMul {
			t.Fatalf("F-NN mults %d not below S-NN %d", r.FMul, r.SMul)
		}
	}
}

func TestTables(t *testing.T) {
	h := newTinyHarness(t)
	rows, err := h.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tableVIDatasets) {
		t.Fatalf("TableVI rows = %d, want %d", len(rows), len(tableVIDatasets))
	}
	rows, err = h.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tableVIIDatasets) {
		t.Fatalf("TableVII rows = %d, want %d", len(rows), len(tableVIIDatasets))
	}
}

func TestRunDispatch(t *testing.T) {
	h := newTinyHarness(t)
	if _, err := h.Run("Fig3c"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run("nope"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if len(Experiments()) != 14 {
		t.Fatalf("Experiments() = %v", Experiments())
	}
}

func TestReportWriters(t *testing.T) {
	h := newTinyHarness(t)
	rows, err := h.Fig3c()
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+len(rows) {
		t.Fatalf("csv has %d lines, want %d", len(lines), 1+len(rows))
	}
	if !strings.HasPrefix(lines[0], "figure,series,x") {
		t.Fatalf("csv header: %q", lines[0])
	}

	var mdBuf bytes.Buffer
	if err := WriteMarkdown(&mdBuf, "Fig3c", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mdBuf.String(), "| series |") {
		t.Fatalf("markdown: %q", mdBuf.String())
	}
	if err := WriteMarkdown(&mdBuf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteAllMarkdown(&mdBuf, map[string][]Row{"Fig3c": rows}); err != nil {
		t.Fatal(err)
	}
}

// The §V-A analytic I/O model must match the measured logical page reads.
func TestIOModelMatchesMeasured(t *testing.T) {
	dir := t.TempDir()
	db, err := storage.Open(dir, storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	spec, err := data.Generate(db, "io", data.SynthConfig{
		NS: 3000, NR: []int{1200}, DS: 1, DR: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec.BlockPages = 1
	const iters = 2
	model := ModelFor(spec, iters)

	// Measure S-GMM's reads (init pass excluded by measuring around EM: we
	// instead measure 3·iter passes directly).
	runner, err := join.NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Prime resident load.
	if err := join.StreamWith(runner, func(int64, []float64, float64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	db.Pool().ResetStats()
	for p := int64(0); p < 3*model.Iters; p++ {
		if err := join.StreamWith(runner, func(int64, []float64, float64) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Pool().Stats().LogicalReads
	if got != model.SGMM() {
		t.Fatalf("measured S reads %d, model %d", got, model.SGMM())
	}

	// Measure the M strategy: join+materialize then 3·iter scans of T.
	db.Pool().ResetStats()
	tTbl, _, err := join.Materialize(db, spec, "T_io")
	if err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < 3*model.Iters; p++ {
		sc := tTbl.NewScanner()
		for sc.Next() {
		}
		if sc.Err() != nil {
			t.Fatal(sc.Err())
		}
	}
	st := db.Pool().Stats()
	// Model: join pass reads + 3·iter·|T| reads; writes = |T| pages.
	wantReads := model.JoinPass() + 3*model.Iters*model.TPages
	if st.LogicalReads != wantReads {
		t.Fatalf("measured M reads %d, model %d", st.LogicalReads, wantReads)
	}
	if st.PageWrites != model.TPages {
		t.Fatalf("measured M writes %d, model |T|=%d", st.PageWrites, model.TPages)
	}
}

// §V-A crossover: with a small BlockSize and many iterations, streaming
// re-reads S so often that materializing wins; with a large BlockSize
// streaming wins.
func TestIOCrossover(t *testing.T) {
	m := IOModel{RPages: 100, SPages: 1000, TPages: 2000, Iters: 5}
	m.BlockPages = 1 // 100 blocks: S scanned 100× per pass
	if m.SWins() {
		t.Fatalf("tiny blocks: S should lose (S=%d M=%d)", m.SGMM(), m.MGMM())
	}
	m.BlockPages = 100 // single block
	if !m.SWins() {
		t.Fatalf("whole-R block: S should win (S=%d M=%d)", m.SGMM(), m.MGMM())
	}
}
