package experiments

import (
	"fmt"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/nn"
	"factorml/internal/storage"
)

// tableVIDatasets are the rows of Table VI (GMM, dense representation).
var tableVIDatasets = []string{
	"Expedia1", "Expedia2", "Walmart", "Movies",
	"Expedia3", "Expedia4", "Expedia5", "Movies3way",
}

// tableVIIDatasets are the rows of Table VII (NN, one-hot representation).
var tableVIIDatasets = []string{"WalmartSparse", "MoviesSparse", "Movies3waySparse"}

// TableVI reproduces the GMM real-dataset comparison. Datasets are
// simulated at the profile's RealScale (see DESIGN.md §3 for the
// substitution rationale).
func (h *Harness) TableVI() ([]Row, error) {
	var rows []Row
	for _, name := range tableVIDatasets {
		shape, err := data.ShapeByName(name)
		if err != nil {
			return rows, err
		}
		row := Row{Figure: "TableVI", Series: name}
		err = h.withDB("t6_"+name, func(db *storage.Database) error {
			spec, err := data.GenerateShape(db, shape, h.P.RealScale, 7)
			if err != nil {
				return err
			}
			gcfg := gmm.Config{K: sweepK, MaxIter: h.P.GMMIters, Tol: 1e-300, NumWorkers: 1}
			m, err := gmm.TrainM(db, spec, gcfg)
			if err != nil {
				return err
			}
			s, err := gmm.TrainS(db, spec, gcfg)
			if err != nil {
				return err
			}
			f, err := gmm.TrainF(db, spec, gcfg)
			if err != nil {
				return err
			}
			fillRow(&row, m.Stats.TrainTime, s.Stats.TrainTime, f.Stats.TrainTime,
				m.Stats.Ops.Mul, s.Stats.Ops.Mul, f.Stats.Ops.Mul,
				m.Stats.IO, s.Stats.IO, f.Stats.IO)
			return nil
		})
		if err != nil {
			return rows, fmt.Errorf("experiments: TableVI %s: %w", name, err)
		}
		h.logf("%s", row)
		rows = append(rows, row)
	}
	return rows, nil
}

// TableVII reproduces the NN real-dataset comparison over one-hot encoded
// (sparse) datasets.
func (h *Harness) TableVII() ([]Row, error) {
	var rows []Row
	for _, name := range tableVIIDatasets {
		shape, err := data.ShapeByName(name)
		if err != nil {
			return rows, err
		}
		row := Row{Figure: "TableVII", Series: name}
		err = h.withDB("t7_"+name, func(db *storage.Database) error {
			spec, err := data.GenerateShape(db, shape, h.P.RealScale, 7)
			if err != nil {
				return err
			}
			return h.trainNN3(db, spec, nn.Config{Hidden: []int{sweepNH}, Epochs: h.P.NNEpochs}, &row)
		})
		if err != nil {
			return rows, fmt.Errorf("experiments: TableVII %s: %w", name, err)
		}
		h.logf("%s", row)
		rows = append(rows, row)
	}
	return rows, nil
}

// All runs every figure and table of the evaluation, in paper order.
func (h *Harness) All() (map[string][]Row, error) {
	out := make(map[string][]Row)
	type exp struct {
		name string
		fn   func() ([]Row, error)
	}
	for _, e := range []exp{
		{"Fig3a", h.Fig3a}, {"Fig3b", h.Fig3b}, {"Fig3c", h.Fig3c},
		{"Fig4a", h.Fig4a}, {"Fig4b", h.Fig4b}, {"Fig4c", h.Fig4c},
		{"Fig5a", h.Fig5a}, {"Fig5b", h.Fig5b}, {"Fig5c", h.Fig5c},
		{"Fig6a", h.Fig6a}, {"Fig6b", h.Fig6b}, {"Fig6c", h.Fig6c},
		{"TableVI", h.TableVI}, {"TableVII", h.TableVII},
	} {
		rows, err := e.fn()
		if err != nil {
			return out, err
		}
		out[e.name] = rows
	}
	return out, nil
}

// Experiments lists the runnable experiment names in paper order.
func Experiments() []string {
	return []string{
		"Fig3a", "Fig3b", "Fig3c", "Fig4a", "Fig4b", "Fig4c",
		"Fig5a", "Fig5b", "Fig5c", "Fig6a", "Fig6b", "Fig6c",
		"TableVI", "TableVII",
	}
}

// Run dispatches one experiment by name.
func (h *Harness) Run(name string) ([]Row, error) {
	switch name {
	case "Fig3a":
		return h.Fig3a()
	case "Fig3b":
		return h.Fig3b()
	case "Fig3c":
		return h.Fig3c()
	case "Fig4a":
		return h.Fig4a()
	case "Fig4b":
		return h.Fig4b()
	case "Fig4c":
		return h.Fig4c()
	case "Fig5a":
		return h.Fig5a()
	case "Fig5b":
		return h.Fig5b()
	case "Fig5c":
		return h.Fig5c()
	case "Fig6a":
		return h.Fig6a()
	case "Fig6b":
		return h.Fig6b()
	case "Fig6c":
		return h.Fig6c()
	case "TableVI":
		return h.TableVI()
	case "TableVII":
		return h.TableVII()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (choose from %v)", name, Experiments())
	}
}
