package experiments

import (
	"factorml/internal/join"
)

// IOModel is the paper's §V-A analytic I/O cost model, in logical page
// reads, for `iter` EM iterations (3 passes per iteration).
type IOModel struct {
	RPages, SPages, TPages int64
	BlockPages             int64
	Iters                  int64
}

func (m IOModel) blocks() int64 {
	if m.RPages == 0 {
		return 0
	}
	return (m.RPages + m.BlockPages - 1) / m.BlockPages
}

// JoinPass is the cost of one streaming pass over the join:
// |R| + ceil(|R|/B)·|S|.
func (m IOModel) JoinPass() int64 {
	return m.RPages + m.blocks()*m.SPages
}

// MGMM is the materialized strategy's total: one join pass, write |T|, then
// 3·iter reads of T.
func (m IOModel) MGMM() int64 {
	return m.JoinPass() + m.TPages + 3*m.Iters*m.TPages
}

// SGMM is the streaming strategy's total: 3·iter join passes (F-GMM has the
// identical I/O profile, §V-B).
func (m IOModel) SGMM() int64 {
	return 3 * m.Iters * m.JoinPass()
}

// SWins reports whether the streaming strategy reads fewer pages than the
// materialized one under this model — the crossover condition of §V-A.
func (m IOModel) SWins() bool { return m.SGMM() < m.MGMM() }

// ModelFor builds the analytic model for a join spec (binary joins only:
// the formula of §V-A is stated for two relations).
func ModelFor(spec *join.Spec, iters int) IOModel {
	blockPages := int64(spec.BlockPages)
	if blockPages <= 0 {
		blockPages = int64(join.DefaultBlockPages)
	}
	tPages := estimateTPages(spec)
	return IOModel{
		RPages:     spec.Rs[0].NumPages(),
		SPages:     spec.S.NumPages(),
		TPages:     tPages,
		BlockPages: blockPages,
		Iters:      int64(iters),
	}
}

// estimateTPages computes the exact page count of the materialized join
// result from its record width and the fact cardinality (PK/FK join: one
// output row per fact row).
func estimateTPages(spec *join.Spec) int64 {
	schema := join.JoinedSchema(spec, "estimate")
	perPage := int64(schema.RecordsPerPage())
	n := spec.S.NumTuples()
	return (n + perPage - 1) / perPage
}
