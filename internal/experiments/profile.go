package experiments

// Profile fixes the workload sizes of a full experiment run.
type Profile struct {
	Name string

	NR  int   // dimension-table cardinality for the synthetic sweeps
	RRs []int // tuple ratios swept in Fig 3a/4a/5a/6a
	DRs []int // dimension widths swept in Fig 3b/4b/5b/6b
	Ks  []int // GMM component counts swept in Fig 3c/4c
	NHs []int // NN hidden widths swept in Fig 5c/6c

	NSFixed  int // fact cardinality for the vary-dR/K/nh sweeps
	NR2      int // second dimension table cardinality (multi-way sweeps)
	DR2      int // second dimension table width (multi-way sweeps)
	GMMIters int // EM iterations (Tol forced to 0 so all run)
	NNEpochs int

	RealScale float64 // scale applied to the Table VI/VII dataset shapes
}

// Quick is a CI-sized profile: every figure regenerates in seconds while
// preserving the tuple ratios that drive the relative costs.
var Quick = Profile{
	Name:     "quick",
	NR:       100,
	RRs:      []int{50, 100, 200, 500},
	DRs:      []int{2, 5, 10, 15},
	Ks:       []int{2, 3, 5},
	NHs:      []int{10, 25, 50},
	NSFixed:  10000,
	NR2:      40,
	DR2:      4,
	GMMIters: 2,
	NNEpochs: 2,

	RealScale: 0.002,
}

// PaperProfile matches the parameters of Tables II/III (nR = 1000,
// nS up to 5·10⁶, 10 NN epochs). Running it takes hours.
var PaperProfile = Profile{
	Name:     "paper",
	NR:       1000,
	RRs:      []int{100, 200, 500, 1000, 2000, 5000},
	DRs:      []int{5, 10, 15, 20, 30},
	Ks:       []int{2, 3, 5, 8, 10},
	NHs:      []int{10, 25, 50, 100},
	NSFixed:  1000000,
	NR2:      400,
	DR2:      21,
	GMMIters: 5,
	NNEpochs: 10,

	RealScale: 1,
}
