package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"factorml/internal/data"
	"factorml/internal/gmm"
	"factorml/internal/join"
	"factorml/internal/nn"
	"factorml/internal/storage"
)

// Row is one measured point of an experiment: one workload configuration
// trained with all three algorithms.
type Row struct {
	Figure string  // e.g. "Fig3a", "TableVI"
	Series string  // sub-series label, e.g. "dR=5" or the dataset name
	X      float64 // swept parameter value (0 for table rows)

	MTime, STime, FTime time.Duration
	MMul, SMul, FMul    int64 // multiplication counters
	MIO, SIO, FIO       int64 // logical page reads
	MWrites             int64 // pages written by materialization

	SpeedupSF float64 // S time / F time
	SpeedupMF float64 // M time / F time
}

func (r Row) String() string {
	return fmt.Sprintf("%-8s %-14s x=%-8g M=%-10v S=%-10v F=%-10v S/F=%.2f M/F=%.2f",
		r.Figure, r.Series, r.X, r.MTime.Round(time.Millisecond),
		r.STime.Round(time.Millisecond), r.FTime.Round(time.Millisecond),
		r.SpeedupSF, r.SpeedupMF)
}

// Harness runs experiments in temporary databases under BaseDir.
type Harness struct {
	BaseDir string
	P       Profile
	Log     io.Writer // optional progress log
}

// New returns a harness writing databases under baseDir.
func New(baseDir string, p Profile, log io.Writer) *Harness {
	return &Harness{BaseDir: baseDir, P: p, Log: log}
}

func (h *Harness) logf(format string, args ...any) {
	if h.Log != nil {
		fmt.Fprintf(h.Log, format+"\n", args...)
	}
}

// withDB runs fn in a fresh database directory that is removed afterwards.
func (h *Harness) withDB(name string, fn func(db *storage.Database) error) error {
	dir := filepath.Join(h.BaseDir, name)
	db, err := storage.Open(dir, storage.Options{PoolPages: -1})
	if err != nil {
		return err
	}
	defer func() {
		db.Close()
		os.RemoveAll(dir)
	}()
	return fn(db)
}

// runGMM trains M/S/F GMM over a freshly generated workload and fills a Row.
func (h *Harness) runGMM(name string, dcfg data.SynthConfig, gcfg gmm.Config, figure, series string, x float64) (Row, error) {
	row := Row{Figure: figure, Series: series, X: x}
	gcfg.Tol = 1e-300 // effectively disable early stopping: compare fixed work
	// Single-threaded: the figure rows compare M/S/F algorithmic cost, and
	// the worker pool parallelizes the three variants asymmetrically (the
	// factorized M-step stays sequential), which would distort the ratios.
	gcfg.NumWorkers = 1
	err := h.withDB(name, func(db *storage.Database) error {
		spec, err := data.Generate(db, name, dcfg)
		if err != nil {
			return err
		}
		m, err := gmm.TrainM(db, spec, gcfg)
		if err != nil {
			return err
		}
		s, err := gmm.TrainS(db, spec, gcfg)
		if err != nil {
			return err
		}
		f, err := gmm.TrainF(db, spec, gcfg)
		if err != nil {
			return err
		}
		fillRow(&row, m.Stats.TrainTime, s.Stats.TrainTime, f.Stats.TrainTime,
			m.Stats.Ops.Mul, s.Stats.Ops.Mul, f.Stats.Ops.Mul,
			m.Stats.IO, s.Stats.IO, f.Stats.IO)
		return nil
	})
	if err != nil {
		return row, fmt.Errorf("experiments: %s %s x=%g: %w", figure, series, x, err)
	}
	h.logf("%s", row)
	return row, nil
}

// runNN is runGMM's NN counterpart.
func (h *Harness) runNN(name string, dcfg data.SynthConfig, ncfg nn.Config, figure, series string, x float64) (Row, error) {
	row := Row{Figure: figure, Series: series, X: x}
	dcfg.WithTarget = true
	err := h.withDB(name, func(db *storage.Database) error {
		spec, err := data.Generate(db, name, dcfg)
		if err != nil {
			return err
		}
		return h.trainNN3(db, spec, ncfg, &row)
	})
	if err != nil {
		return row, fmt.Errorf("experiments: %s %s x=%g: %w", figure, series, x, err)
	}
	h.logf("%s", row)
	return row, nil
}

func (h *Harness) trainNN3(db *storage.Database, spec *join.Spec, ncfg nn.Config, row *Row) error {
	ncfg.NumWorkers = 1 // single-threaded, same reason as runGMM
	m, err := nn.TrainM(db, spec, ncfg)
	if err != nil {
		return err
	}
	s, err := nn.TrainS(db, spec, ncfg)
	if err != nil {
		return err
	}
	f, err := nn.TrainF(db, spec, ncfg)
	if err != nil {
		return err
	}
	fillRow(row, m.Stats.TrainTime, s.Stats.TrainTime, f.Stats.TrainTime,
		m.Stats.Ops.Mul, s.Stats.Ops.Mul, f.Stats.Ops.Mul,
		m.Stats.IO, s.Stats.IO, f.Stats.IO)
	return nil
}

func fillRow(row *Row, mt, st, ft time.Duration, mm, sm, fm int64, mio, sio, fio storage.IOStats) {
	row.MTime, row.STime, row.FTime = mt, st, ft
	row.MMul, row.SMul, row.FMul = mm, sm, fm
	row.MIO, row.SIO, row.FIO = mio.LogicalReads, sio.LogicalReads, fio.LogicalReads
	row.MWrites = mio.PageWrites
	if ft > 0 {
		row.SpeedupSF = float64(st) / float64(ft)
		row.SpeedupMF = float64(mt) / float64(ft)
	}
}
