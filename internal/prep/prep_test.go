package prep

import (
	"math"
	"testing"

	"factorml/internal/data"
	"factorml/internal/join"
	"factorml/internal/linalg"
	"factorml/internal/storage"
)

func openDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := storage.Open(t.TempDir(), storage.Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestFactorizedStatsMatchDense(t *testing.T) {
	db := openDB(t)
	spec, err := data.Generate(db, "p", data.SynthConfig{
		NS: 800, NR: []int{30, 12}, DS: 3, DR: []int{4, 2}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := DenseStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := FactorizedStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dense.N != fact.N {
		t.Fatalf("N: dense %d vs fact %d", dense.N, fact.N)
	}
	if d := linalg.MaxAbsDiffVec(dense.Mean, fact.Mean); d > 1e-9 {
		t.Fatalf("means differ by %v", d)
	}
	if d := linalg.MaxAbsDiffVec(dense.Std, fact.Std); d > 1e-9 {
		t.Fatalf("stds differ by %v", d)
	}
}

func TestFactorizedStatsSkipDanglingFK(t *testing.T) {
	db := openDB(t)
	spec, err := data.Generate(db, "p", data.SynthConfig{
		NS: 100, NR: []int{10}, DS: 2, DR: []int{2}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Add a fact row referencing a missing dimension key with extreme
	// feature values; both paths must exclude it.
	err = spec.S.Append(&storage.Tuple{Keys: []int64{999, 555}, Features: []float64{1e9, 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.S.Flush(); err != nil {
		t.Fatal(err)
	}
	dense, err := DenseStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := FactorizedStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dense.N != 100 || fact.N != 100 {
		t.Fatalf("dangling row counted: dense %d fact %d", dense.N, fact.N)
	}
	if math.Abs(dense.Mean[0]) > 1e6 || math.Abs(fact.Mean[0]) > 1e6 {
		t.Fatal("dangling row leaked into moments")
	}
	if d := linalg.MaxAbsDiffVec(dense.Mean, fact.Mean); d > 1e-9 {
		t.Fatalf("means differ by %v", d)
	}
}

func TestApplyStandardizes(t *testing.T) {
	db := openDB(t)
	spec, err := data.Generate(db, "p", data.SynthConfig{
		NS: 500, NR: []int{20}, DS: 2, DR: []int{3}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := FactorizedStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	// After standardizing the whole stream, every column has mean ~0, var ~1.
	d := spec.JoinedWidth()
	sum := make([]float64, d)
	sumSq := make([]float64, d)
	var n float64
	err = join.Stream(spec, func(_ int64, x []float64, _ float64) error {
		buf := append([]float64{}, x...)
		st.Apply(buf)
		for i, v := range buf {
			sum[i] += v
			sumSq[i] += v * v
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d; i++ {
		mean := sum[i] / n
		variance := sumSq[i]/n - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v after standardization", i, mean)
		}
		if math.Abs(variance-1) > 1e-6 {
			t.Fatalf("column %d variance %v after standardization", i, variance)
		}
	}
}

func TestApplyDimMismatchPanics(t *testing.T) {
	st := &Stats{Mean: []float64{0}, Std: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Apply([]float64{1, 2})
}

func TestConstantColumnFloored(t *testing.T) {
	db := openDB(t)
	s := &storage.Schema{Name: "S", Keys: []string{"sid", "fk1"}, Features: []string{"c"}}
	sTbl, err := db.CreateTable(s)
	if err != nil {
		t.Fatal(err)
	}
	r := &storage.Schema{Name: "R", Keys: []string{"rid"}, Features: []string{"f"}}
	rTbl, err := db.CreateTable(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := rTbl.Append(&storage.Tuple{Keys: []int64{0}, Features: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sTbl.Append(&storage.Tuple{Keys: []int64{int64(i), 0}, Features: []float64{7}}); err != nil {
			t.Fatal(err)
		}
	}
	spec := &join.Spec{S: sTbl, Rs: []*storage.Table{rTbl}}
	st, err := FactorizedStats(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Std[0] != MinStd || st.Std[1] != MinStd {
		t.Fatalf("constant columns not floored: %v", st.Std)
	}
	x := []float64{7, 5}
	st.Apply(x)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("standardized constants should be 0: %v", x)
	}
}

func TestStatsEmptyFails(t *testing.T) {
	db := openDB(t)
	s := &storage.Schema{Name: "S", Keys: []string{"sid", "fk1"}, Features: []string{"c"}}
	sTbl, _ := db.CreateTable(s)
	r := &storage.Schema{Name: "R", Keys: []string{"rid"}, Features: []string{"f"}}
	rTbl, _ := db.CreateTable(r)
	spec := &join.Spec{S: sTbl, Rs: []*storage.Table{rTbl}}
	if _, err := FactorizedStats(spec); err == nil {
		t.Fatal("empty dataset should fail")
	}
	if _, err := DenseStats(spec); err == nil {
		t.Fatal("empty dataset should fail")
	}
}
