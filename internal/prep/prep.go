// Package prep computes feature statistics of the (virtual) joined table
// for standardization, in both a dense and a factorized way.
//
// The factorized path applies the paper's core idea to preprocessing: a
// dimension tuple's features appear once per matching fact tuple, so the
// joined-table mean and variance of a dimension column are weighted moments
// over the base relation,
//
//	mean = Σ_r cnt(r)·x_r / N,  E[x²] = Σ_r cnt(r)·x_r² / N,
//
// where cnt(r) is the number of fact tuples matching dimension tuple r.
// One key-only pass over the fact table collects the counts, one pass per
// dimension table finishes the moments — no join is executed and no
// dimension feature is touched more than once.
package prep

import (
	"fmt"
	"math"

	"factorml/internal/join"
)

// Stats holds per-column moments of the joined feature space.
type Stats struct {
	N    int64
	Mean []float64
	Std  []float64 // population standard deviation, floored at MinStd
}

// MinStd is the floor applied to standard deviations so constant columns do
// not divide by zero when standardizing.
const MinStd = 1e-12

// Apply standardizes x in place: x_i ← (x_i − mean_i)/std_i.
func (st *Stats) Apply(x []float64) {
	if len(x) != len(st.Mean) {
		panic(fmt.Sprintf("prep: vector dim %d, stats dim %d", len(x), len(st.Mean)))
	}
	for i := range x {
		x[i] = (x[i] - st.Mean[i]) / st.Std[i]
	}
}

// DenseStats computes the moments by streaming the join — the baseline.
func DenseStats(spec *join.Spec) (*Stats, error) {
	d := spec.JoinedWidth()
	sum := make([]float64, d)
	sumSq := make([]float64, d)
	var n int64
	err := join.Stream(spec, func(_ int64, x []float64, _ float64) error {
		for i, v := range x {
			sum[i] += v
			sumSq[i] += v * v
		}
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return finish(n, sum, sumSq)
}

// FactorizedStats computes the same moments without joining. Fact rows with
// a dangling foreign key are excluded, matching the inner-join semantics of
// DenseStats.
func FactorizedStats(spec *join.Spec) (*Stats, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := spec.JoinedWidth()
	offs := spec.FeatureOffsets()
	sum := make([]float64, d)
	sumSq := make([]float64, d)

	// Phase 1: dimension key sets (key-only scans of the small tables).
	keySets := make([]map[int64]bool, len(spec.Rs))
	for j, r := range spec.Rs {
		keySets[j] = make(map[int64]bool, r.NumTuples())
		sc := r.NewScanner()
		for sc.Next() {
			keySets[j][sc.Tuple().PrimaryKey()] = true
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}

	// Phase 2: one pass over the fact table — its own feature moments plus
	// per-dimension-tuple match counts, skipping rows that would not join.
	counts := make([]map[int64]int64, len(spec.Rs))
	for j := range counts {
		counts[j] = make(map[int64]int64)
	}
	var n int64
	sc := spec.S.NewScanner()
	for sc.Next() {
		tp := sc.Tuple()
		joins := true
		for j := range spec.Rs {
			if !keySets[j][tp.Keys[1+j]] {
				joins = false
				break
			}
		}
		if !joins {
			continue
		}
		for i, v := range tp.Features {
			sum[i] += v
			sumSq[i] += v * v
		}
		for j := range spec.Rs {
			counts[j][tp.Keys[1+j]]++
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Phase 3: weighted moments over each dimension relation.
	for j, r := range spec.Rs {
		off := offs[1+j]
		rsc := r.NewScanner()
		for rsc.Next() {
			tp := rsc.Tuple()
			w := float64(counts[j][tp.PrimaryKey()])
			if w == 0 {
				continue
			}
			for i, v := range tp.Features {
				sum[off+i] += w * v
				sumSq[off+i] += w * v * v
			}
		}
		if err := rsc.Err(); err != nil {
			return nil, err
		}
	}
	return finish(n, sum, sumSq)
}

func finish(n int64, sum, sumSq []float64) (*Stats, error) {
	if n == 0 {
		return nil, fmt.Errorf("prep: no rows")
	}
	st := &Stats{N: n, Mean: make([]float64, len(sum)), Std: make([]float64, len(sum))}
	for i := range sum {
		mean := sum[i] / float64(n)
		variance := sumSq[i]/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		st.Mean[i] = mean
		st.Std[i] = math.Sqrt(variance)
		if st.Std[i] < MinStd {
			st.Std[i] = MinStd
		}
	}
	return st, nil
}
