package parallel

import (
	"sync/atomic"
	"time"
)

// WorkerEvent reports one pool worker's share of a completed Run: how
// many chunks it worked and how long it spent inside the work callback.
// Comparing Busy across workers of one pass diagnoses worker skew (one
// slow worker stalling the in-order merge window).
type WorkerEvent struct {
	Worker int
	Chunks int64
	Busy   time.Duration
}

// WorkerObserver receives one event per worker when a parallel Run
// drains. Events from concurrent runs interleave, so implementations
// must be goroutine-safe.
type WorkerObserver func(WorkerEvent)

var workerObserver atomic.Pointer[WorkerObserver]

// SetWorkerObserver installs the process-wide worker observer (nil
// removes it). With no observer installed workers skip all timing.
func SetWorkerObserver(o WorkerObserver) {
	if o == nil {
		workerObserver.Store(nil)
		return
	}
	workerObserver.Store(&o)
}

func loadWorkerObserver() WorkerObserver {
	if p := workerObserver.Load(); p != nil {
		return *p
	}
	return nil
}
