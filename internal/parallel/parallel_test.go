package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// sumRun runs a chunked sum of 1/(i+1) over n rows with the given worker
// count, returning the merged total. The chunk geometry is fixed, so every
// worker count must produce the identical float.
func sumRun(t *testing.T, workers, n, chunk int) float64 {
	t.Helper()
	total := 0.0
	err := Run(workers,
		func(f *Feed[[2]int]) error {
			for start := 0; start < n; start += chunk {
				end := start + chunk
				if end > n {
					end = n
				}
				if err := f.Emit([2]int{start, end}); err != nil {
					return err
				}
			}
			return nil
		},
		func(r [2]int) (float64, error) {
			s := 0.0
			for i := r[0]; i < r[1]; i++ {
				s += 1 / float64(i+1)
			}
			return s, nil
		},
		func(s float64) error {
			total += s
			return nil
		})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return total
}

func TestRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	const n, chunk = 100000, 256
	want := sumRun(t, 1, n, chunk)
	for _, w := range []int{2, 3, 4, 8} {
		if got := sumRun(t, w, n, chunk); got != want {
			t.Fatalf("workers=%d: sum %v, want bit-identical %v", w, got, want)
		}
	}
}

func TestRunMergesInEmissionOrder(t *testing.T) {
	const chunks = 200
	for _, w := range []int{1, 4} {
		var order []int
		err := Run(w,
			func(f *Feed[int]) error {
				for i := 0; i < chunks; i++ {
					if err := f.Emit(i); err != nil {
						return err
					}
				}
				return nil
			},
			func(i int) (int, error) { return i, nil },
			func(i int) error {
				order = append(order, i)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != chunks {
			t.Fatalf("workers=%d: merged %d chunks, want %d", w, len(order), chunks)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("workers=%d: merge order[%d] = %d", w, i, v)
			}
		}
	}
}

func TestRunBarrierQuiescesPool(t *testing.T) {
	for _, w := range []int{1, 4} {
		var inFlight, maxSeen atomic.Int64
		merged := 0
		phase := 0 // written only inside barriers and read by workers
		err := Run(w,
			func(f *Feed[int]) error {
				for block := 0; block < 5; block++ {
					for i := 0; i < 37; i++ {
						if err := f.Emit(block); err != nil {
							return err
						}
					}
					if err := f.Barrier(func() error {
						if got := inFlight.Load(); got != 0 {
							return fmt.Errorf("barrier entered with %d workers in flight", got)
						}
						phase++
						return nil
					}); err != nil {
						return err
					}
				}
				return nil
			},
			func(block int) (int, error) {
				v := inFlight.Add(1)
				if m := maxSeen.Load(); v > m {
					maxSeen.Store(v)
				}
				if phase != block {
					inFlight.Add(-1)
					return 0, fmt.Errorf("worker saw phase %d during block %d", phase, block)
				}
				inFlight.Add(-1)
				return 1, nil
			},
			func(v int) error {
				merged += v
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if merged != 5*37 {
			t.Fatalf("workers=%d: merged %d, want %d", w, merged, 5*37)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		// Worker error.
		err := Run(w,
			func(f *Feed[int]) error {
				for i := 0; i < 1000; i++ {
					if err := f.Emit(i); err != nil {
						return err
					}
				}
				return nil
			},
			func(i int) (int, error) {
				if i == 13 {
					return 0, boom
				}
				return i, nil
			},
			func(int) error { return nil })
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: worker error = %v, want %v", w, err, boom)
		}
		// Merge error.
		err = Run(w,
			func(f *Feed[int]) error {
				for i := 0; i < 1000; i++ {
					if err := f.Emit(i); err != nil {
						return err
					}
				}
				return nil
			},
			func(i int) (int, error) { return i, nil },
			func(i int) error {
				if i == 7 {
					return boom
				}
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: merge error = %v, want %v", w, err, boom)
		}
		// Producer error.
		err = Run(w,
			func(f *Feed[int]) error { return boom },
			func(i int) (int, error) { return i, nil },
			nil)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: produce error = %v, want %v", w, err, boom)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must be at least 1")
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(6); got != 6 {
		t.Fatalf("Workers(6) = %d, want 6", got)
	}
}
