package parallel

import (
	"sync"
	"testing"
)

// TestWorkerObserverAccountsAllChunks: a parallel Run with a worker
// observer installed emits one event per worker, and the per-worker
// chunk counts sum to the number of emitted chunks.
func TestWorkerObserverAccountsAllChunks(t *testing.T) {
	const workers, chunks = 4, 64
	var mu sync.Mutex
	var events []WorkerEvent
	SetWorkerObserver(func(ev WorkerEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	defer SetWorkerObserver(nil)

	total := 0
	err := Run(workers,
		func(f *Feed[int]) error {
			for i := 0; i < chunks; i++ {
				if err := f.Emit(i); err != nil {
					return err
				}
			}
			return nil
		},
		func(c int) (int, error) { return c, nil },
		func(r int) error { total += r; return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if want := chunks * (chunks - 1) / 2; total != want {
		t.Fatalf("merge total = %d, want %d", total, want)
	}
	if len(events) != workers {
		t.Fatalf("got %d worker events, want %d", len(events), workers)
	}
	var sum int64
	seen := map[int]bool{}
	for _, ev := range events {
		if seen[ev.Worker] {
			t.Fatalf("worker %d reported twice", ev.Worker)
		}
		seen[ev.Worker] = true
		sum += ev.Chunks
	}
	if sum != chunks {
		t.Fatalf("worker chunk counts sum to %d, want %d", sum, chunks)
	}
}
